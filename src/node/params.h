#pragma once

#include <algorithm>

#include "container/keep_alive.h"
#include "core/policy.h"
#include "sim/time.h"

namespace whisk::node {

// Calibrated model constants for one worker node. The defaults reproduce
// the paper's measured behaviour; every experiment can override them (the
// ablation benches sweep several).
//
// Two modelling insights drive the constants (DESIGN.md Sec. 5):
//
// 1. Per-activation management is nearly free on an idle node (Table I
//    shows ~10 ms total overhead) but inflates under concurrent load — the
//    paper notes that at intensity 30 "managing [the] container executing
//    the function [may require] more time, on average per call, than
//    executing the function itself". Serialized management ops therefore
//    have an idle and a loaded cost, interpolated by the node's in-flight
//    activity (`ramp`).
//
// 2. In the paper's approach the dominant serialized cost is proportional
//    to the call's runtime (result/log processing, container pause/resume
//    bookkeeping scale with what the call produced). This reproduces two
//    signatures of the paper's data at once: the burst drain time scales
//    with the number of requests and barely with the core count (Table II),
//    and the *average* response improves several-fold under SEPT/FC —
//    impossible with an order-independent bottleneck cost.
struct NodeParams {
  int cores = 10;
  double memory_limit_mb = 32.0 * 1024.0;

  // --- activity ramp -------------------------------------------------------
  // Management costs ramp linearly from idle to loaded as the number of
  // in-flight activations (executing + queued + creating) crosses
  // [ramp_low, ramp_high].
  double ramp_low = 2.0;
  double ramp_high = 8.0;

  // --- our approach (CPU-based scheduling, Sec. IV) ------------------------
  // Dispatch the next pending call only while the management pipeline's
  // backlog is below this many ops, so waiting calls stay in the policy's
  // priority queue rather than in a FIFO daemon queue.
  int dispatch_daemon_gate = 3;
  // Serialized pre-dispatch op (unpause + cpu-limit bookkeeping).
  double our_preop_idle_s = 0.003;
  double our_preop_loaded_s = 0.04;
  double our_preop_sigma = 0.25;
  // Serialized post-execution op: result/log processing proportional to the
  // call's execution time, plus a small constant part.
  double our_post_factor_idle = 0.0;
  double our_post_factor_loaded = 0.36;
  double our_post_base_idle_s = 0.001;
  double our_post_base_loaded_s = 0.02;
  double our_post_sigma = 0.20;

  // --- baseline OpenWhisk ---------------------------------------------------
  // Warm dispatch barely touches dockerd (the unpause is cheap and the
  // activation record write is asynchronous in the stock blocking path).
  double base_dispatch_idle_s = 0.002;
  double base_dispatch_loaded_s = 0.085;
  double base_dispatch_sigma = 0.20;
  // Serialized docker pause op after a container goes idle (the stock
  // invoker pauses idle containers; the next warm start unpauses them, so
  // every warm call costs the daemon a dispatch *and* a pause op).
  double base_pause_idle_s = 0.002;
  double base_pause_loaded_s = 0.085;
  double base_pause_sigma = 0.20;
  // Serialized part of docker create/start for a new container.
  double base_create_idle_s = 0.050;
  double base_create_loaded_s = 0.20;
  double base_create_sigma = 0.25;
  // Dockerd strain: every serialized baseline op is additionally stretched
  // by (1 + strain_per_container * live_containers). Our approach keeps a
  // fixed container set and leaves dockerd alone, so no strain applies.
  double strain_per_container = 0.005;
  // Parallel post-execution handling in the baseline (holds the container,
  // not the daemon).
  double base_post_idle_s = 0.001;
  double base_post_loaded_s = 0.60;
  double base_post_sigma = 0.25;
  // The stock warm-up leaves roughly ceil(c * s / (s + overlap)) containers
  // for a function with service time s: queued warm-up calls reuse the
  // first container of a fast function instead of forcing new ones
  // (Sec. VI discussion). `overlap` is the effective creation latency.
  double warmup_creation_overlap_s = 3.0;

  // --- container initialization (parallel, delays only its own call) -------
  double cold_init_median_s = 0.80;
  double cold_init_sigma = 0.35;
  double cold_init_min_s = 0.40;
  double cold_init_max_s = 2.20;
  double prewarm_init_median_s = 0.25;
  double prewarm_init_sigma = 0.30;

  // --- OS / CPU model -------------------------------------------------------
  double context_switch_beta = 0.30;  // baseline proportional-share penalty

  // --- policy ----------------------------------------------------------------
  core::PolicyParams policy;
  std::size_t history_window = 10;

  // Baseline prewarm ("stem cell") containers kept per node.
  int prewarm_target = 2;

  // --- container keep-alive --------------------------------------------------
  // Which idle containers the pool keeps warm: any spec accepted by
  // container::KeepAlivePolicyRegistry ("lru", "ttl?idle-s=600",
  // "pool-target?floor=2", ...). The cluster layer stamps the deployment's
  // ClusterSpec keep-alive here; the default reproduces the paper's
  // LRU-under-pressure rule.
  container::KeepAliveSpec keep_alive;

  // Linear idle->loaded interpolation factor for an activity level x.
  [[nodiscard]] double ramp(double x) const {
    if (ramp_high <= ramp_low) return x >= ramp_high ? 1.0 : 0.0;
    return std::clamp((x - ramp_low) / (ramp_high - ramp_low), 0.0, 1.0);
  }
};

}  // namespace whisk::node
