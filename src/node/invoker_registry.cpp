#include "node/invoker_registry.h"

#include <memory>

#include "node/baseline_invoker.h"
#include "node/our_invoker.h"

namespace whisk::node {
namespace {

void register_builtin_invokers(InvokerRegistry& registry) {
  registry.register_factory("baseline", [](const InvokerArgs& args) {
    return std::make_unique<BaselineInvoker>(args.engine, args.catalog,
                                             args.params, args.rng,
                                             args.delivery);
  });
  registry.register_factory("ours", [](const InvokerArgs& args) {
    return std::make_unique<OurInvoker>(args.engine, args.catalog,
                                        args.params, args.rng, args.delivery,
                                        args.policy);
  });
  registry.register_alias("our", "ours");
}

}  // namespace

InvokerRegistry& InvokerRegistry::instance() {
  static InvokerRegistry* registry = [] {
    auto* r = new InvokerRegistry();
    register_builtin_invokers(*r);
    return r;
  }();
  return *registry;
}

}  // namespace whisk::node
