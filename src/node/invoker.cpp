#include "node/invoker.h"

#include "container/docker_daemon.h"
#include "container/pool.h"

namespace whisk::node {

void Invoker::sync_station_telemetry(
    const container::ContainerPool& pool,
    const container::DockerDaemon& daemon) const {
  stats_.evictions = pool.evictions();
  stats_.expirations = pool.expirations();
  stats_.daemon_busy_seconds = daemon.busy_seconds();
  stats_.daemon_max_queue_length = daemon.max_queue_length();
  stats_.daemon_queue_wait_seconds = daemon.queue_wait_seconds();
  stats_.daemon_max_queue_wait_seconds = daemon.max_queue_wait_seconds();
}

}  // namespace whisk::node
