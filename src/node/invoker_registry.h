#pragma once

#include <string>

#include "node/invoker.h"
#include "util/registry.h"
#include "workload/function.h"

namespace whisk::node {

// Everything an invoker factory gets to work with. Built by the cluster
// layer once per node; references outlive the factory call.
struct InvokerArgs {
  sim::Engine& engine;
  const workload::FunctionCatalog& catalog;
  NodeParams params;
  sim::Rng rng;
  Invoker::DeliveryFn delivery;
  // Scheduling policy name for policy-driven invokers (the baseline
  // ignores it).
  std::string policy = "fifo";
};

// The open set of node-level resource managers, keyed by canonical
// lowercase name. Built-ins ("baseline", "ours" with alias "our") are
// registered on first use; new invoker variants can be added at runtime:
//
//   InvokerRegistry::instance().register_factory(
//       "my-invoker", [](const InvokerArgs& args) {
//         return std::make_unique<MyInvoker>(args.engine, ...);
//       });
//
// Unknown names abort with a message listing every registered name.
class InvokerRegistry final
    : public util::FactoryRegistry<Invoker, const InvokerArgs&> {
 public:
  static InvokerRegistry& instance();

 private:
  InvokerRegistry() : FactoryRegistry("invoker") {}
};

}  // namespace whisk::node
