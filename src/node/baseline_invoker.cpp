#include "node/baseline_invoker.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace whisk::node {

BaselineInvoker::BaselineInvoker(sim::Engine& engine,
                                 const workload::FunctionCatalog& catalog,
                                 NodeParams params, sim::Rng rng,
                                 DeliveryFn delivery)
    : Invoker(engine, catalog, params, rng, std::move(delivery)),
      pool_(params.memory_limit_mb,
            container::make_keep_alive(params.keep_alive)),
      daemon_(engine),
      cpu_(engine,
           os::CpuParams{os::ExecMode::kProportionalShare, params.cores,
                         params.context_switch_beta},
           [this](os::CpuSystem::TaskId task) { on_exec_complete(task); }) {
  // Dockerd strains as it juggles more live containers; the baseline churns
  // the container set constantly, so all its serialized ops slow down with
  // the container count (Sec. VI: at 128 GiB "Docker had problems running
  // them").
  daemon_.set_load_factor([this] {
    return 1.0 + params_.strain_per_container *
                     static_cast<double>(pool_.total_containers());
  });
}

void BaselineInvoker::warmup() {
  // The paper's warm-up issues c parallel calls per function, but the stock
  // invoker queues requests that arrive while others are pending: queued
  // warm-up calls of a *fast* function simply reuse the first container
  // once it is up, so short functions end the warm-up with only one or two
  // containers, while long functions get close to c. This under-warming of
  // short functions is what seeds the baseline's cold starts during the
  // measured burst (Fig. 2a). We reproduce the outcome administratively:
  //   containers(f) ~= ceil(c * s_f / (s_f + overlap)),
  // with s_f the function's warm service time and `overlap` the effective
  // container-creation latency. The stamps sit just before t=0 (the
  // warm-up's minute), keeping TTL keep-alive from treating the warm set
  // as arbitrarily stale; LRU only uses the relative order.
  const sim::SimTime ancient = -60.0;
  int filled = 0;
  for (const auto& spec : catalog_->specs()) {
    const double s = spec.warm_median_ms() / 1000.0;
    const double frac = s / (s + params_.warmup_creation_overlap_s);
    const int want = std::clamp(
        static_cast<int>(params_.cores * frac) + 1, 1, params_.cores);
    for (int k = 0; k < want; ++k) {
      auto cid = pool_.begin_creation(spec.memory_mb);
      if (!cid) break;
      pool_.finish_creation_busy(*cid, spec.id);
      pool_.release(*cid, ancient + 0.001 * filled);
      ++filled;
    }
  }
  for (int k = 0; k < params_.prewarm_target; ++k) {
    auto cid = pool_.begin_creation(256.0);
    if (!cid) break;
    pool_.finish_creation_prewarm(*cid);
  }
}

const InvokerStats& BaselineInvoker::stats() const {
  sync_station_telemetry(pool_, daemon_);
  return stats_;
}

void BaselineInvoker::on_submit(const workload::CallRequest& call) {
  ++stats_.calls_received;
  metrics::CallRecord rec;
  rec.id = call.id;
  rec.function = call.function;
  rec.node = node_index_;
  rec.release = call.release;
  rec.received = engine_->now();
  queue_.push_back(rec);
  process_queue();
}

void BaselineInvoker::process_queue() {
  if (dead()) return;
  // Reclaim keep-alive-lapsed idle containers before any pool decision
  // (free for policies without expiry).
  pool_.sweep_expired(engine_->now());
  while (!queue_.empty()) {
    metrics::CallRecord rec = queue_.front();
    const auto& spec = catalog_->spec(rec.function);

    // 1. Free-pool container initialized with this function.
    if (auto warm = pool_.acquire_warm(rec.function)) {
      queue_.pop_front();
      dispatch(rec, *warm, metrics::StartKind::kWarm);
      continue;
    }
    // 2. Prewarm container (runtime up, function injected on demand).
    if (auto prewarm = pool_.acquire_prewarm()) {
      queue_.pop_front();
      pool_.assign_function(*prewarm, rec.function);
      dispatch(rec, *prewarm, metrics::StartKind::kPrewarm);
      continue;
    }
    // 3. Create a new container, evicting idle ones (keep-alive policy's
    // pick) if memory is short.
    if (pool_.memory_free_mb() < spec.memory_mb) {
      pool_.evict_idle_until_free(spec.memory_mb);
    }
    if (auto created = pool_.begin_creation(spec.memory_mb)) {
      queue_.pop_front();
      dispatch(rec, *created, metrics::StartKind::kCold);
      continue;
    }
    // 4. Memory exhausted and nothing evictable: the call stays queued
    // (head-of-line) until a container is released.
    break;
  }
}

void BaselineInvoker::dispatch(metrics::CallRecord rec,
                               container::ContainerId cid,
                               metrics::StartKind start) {
  rec.start_kind = start;
  const double act = activity();
  double op = 0.0;
  sim::SimTime init_delay = 0.0;

  switch (start) {
    case metrics::StartKind::kWarm:
      ++stats_.warm_starts;
      op = ramped_op(params_.base_dispatch_idle_s,
                     params_.base_dispatch_loaded_s,
                     params_.base_dispatch_sigma, act);
      break;
    case metrics::StartKind::kPrewarm:
      ++stats_.prewarm_starts;
      op = ramped_op(params_.base_dispatch_idle_s,
                     params_.base_dispatch_loaded_s,
                     params_.base_dispatch_sigma, act);
      init_delay = sample_lognormal(params_.prewarm_init_median_s,
                                    params_.prewarm_init_sigma);
      replenish_prewarm();
      break;
    case metrics::StartKind::kCold:
      ++stats_.cold_starts;
      op = ramped_op(params_.base_dispatch_idle_s,
                     params_.base_dispatch_loaded_s,
                     params_.base_dispatch_sigma, act) +
           ramped_op(params_.base_create_idle_s,
                     params_.base_create_loaded_s, params_.base_create_sigma,
                     act);
      init_delay =
          std::clamp(sample_lognormal(params_.cold_init_median_s,
                                      params_.cold_init_sigma),
                     params_.cold_init_min_s, params_.cold_init_max_s);
      break;
  }

  ActiveCall active{rec, cid};
  daemon_.submit(op, [this, active = std::move(active), init_delay]() mutable {
    if (dead()) return;
    if (active.record.start_kind == metrics::StartKind::kCold) {
      pool_.finish_creation_busy(active.cid, active.record.function);
    }
    if (init_delay > 0.0) {
      engine_->schedule_in(init_delay,
                           [this, active = std::move(active)]() mutable {
                             begin_exec(std::move(active));
                           });
    } else {
      begin_exec(std::move(active));
    }
  });
}

void BaselineInvoker::begin_exec(ActiveCall active) {
  if (dead()) return;
  active.record.exec_start = engine_->now();
  active.record.service =
      catalog_->sample_service(active.record.function, rng_);
  const auto& spec = catalog_->spec(active.record.function);
  // OpenWhisk assigns CPU shares proportional to container memory; with our
  // homogeneous 256 MB actions the weights are equal.
  const double weight = spec.memory_mb / 256.0;
  const auto task =
      cpu_.start(scaled(active.record.service), spec.cpu_fraction, weight);
  running_.emplace(task, std::move(active));
}

void BaselineInvoker::on_exec_complete(os::CpuSystem::TaskId task) {
  if (dead()) return;
  auto it = running_.find(task);
  WHISK_CHECK(it != running_.end(), "completion for unknown task");
  ActiveCall active = std::move(it->second);
  running_.erase(it);
  active.record.exec_end = engine_->now();

  const double post =
      ramped_op(params_.base_post_idle_s, params_.base_post_loaded_s,
                params_.base_post_sigma, activity());
  engine_->schedule_in(post, [this, active = std::move(active)]() mutable {
    finish_call(std::move(active));
  });
}

void BaselineInvoker::finish_call(ActiveCall active) {
  if (dead()) return;
  pool_.release(active.cid, engine_->now());
  ++stats_.calls_completed;
  active.record.completion = engine_->now();
  deliver(active.record);
  // The stock invoker pauses the now-idle container; the op consumes the
  // daemon but blocks nobody directly (the container can still be claimed
  // while the pause is queued).
  daemon_.submit(ramped_op(params_.base_pause_idle_s,
                           params_.base_pause_loaded_s,
                           params_.base_pause_sigma, activity()),
                 [] {});
  process_queue();
}

void BaselineInvoker::replenish_prewarm() {
  if (static_cast<int>(pool_.prewarm_count()) + prewarm_creating_ >=
      params_.prewarm_target) {
    return;
  }
  auto cid = pool_.begin_creation(256.0);
  if (!cid) return;
  ++prewarm_creating_;
  const double op = ramped_op(params_.base_create_idle_s,
                              params_.base_create_loaded_s,
                              params_.base_create_sigma, activity());
  const double init =
      std::clamp(sample_lognormal(params_.cold_init_median_s,
                                  params_.cold_init_sigma),
                 params_.cold_init_min_s, params_.cold_init_max_s);
  daemon_.submit(op, [this, cid = *cid, init] {
    if (dead()) return;
    engine_->schedule_in(init, [this, cid] {
      if (dead()) return;
      pool_.finish_creation_prewarm(cid);
      --prewarm_creating_;
      process_queue();
    });
  });
}

}  // namespace whisk::node
