#pragma once

#include <deque>
#include <unordered_map>

#include "container/docker_daemon.h"
#include "container/pool.h"
#include "node/invoker.h"
#include "os/cpu_system.h"

namespace whisk::node {

// Stock OpenWhisk node-level resource management (paper Sec. III):
//
//   * pending calls are handled in FIFO order;
//   * a request with no matching free-pool container greedily triggers a
//     prewarm take-over or a brand-new container, evicting idle containers
//     of other functions when memory is short (the source of the eviction
//     thrash and cold-start storms of Fig. 2a);
//   * busy concurrency is bounded only by the memory pool, so the OS
//     preempts freely: execution runs under weighted processor sharing with
//     a context-switch penalty (ExecMode::kProportionalShare);
//   * dockerd ops slow down as the live-container count grows
//     (strain_per_container), reproducing the baseline's superlinear
//     degradation at higher core counts / request totals.
class BaselineInvoker final : public Invoker {
 public:
  BaselineInvoker(sim::Engine& engine,
                  const workload::FunctionCatalog& catalog, NodeParams params,
                  sim::Rng rng, DeliveryFn delivery);

  void warmup() override;

  [[nodiscard]] std::size_t queue_length() const override {
    return queue_.size();
  }
  [[nodiscard]] std::size_t executing() const override {
    return running_.size();
  }
  [[nodiscard]] std::string_view approach() const override {
    return "baseline";
  }

  // Base counters plus the daemon-station and pool telemetry.
  [[nodiscard]] const InvokerStats& stats() const override;

  // Introspection for tests and telemetry.
  [[nodiscard]] const container::ContainerPool& pool() const { return pool_; }
  [[nodiscard]] const container::DockerDaemon& daemon() const {
    return daemon_;
  }

 private:
  struct ActiveCall {
    metrics::CallRecord record;
    container::ContainerId cid = container::kInvalidContainer;
  };

  [[nodiscard]] double activity() const {
    return static_cast<double>(running_.size()) +
           static_cast<double>(queue_.size()) +
           static_cast<double>(pool_.creating_count());
  }

  void on_submit(const workload::CallRequest& call) override;

  void process_queue();
  void dispatch(metrics::CallRecord rec, container::ContainerId cid,
                metrics::StartKind start);
  void begin_exec(ActiveCall active);
  void on_exec_complete(os::CpuSystem::TaskId task);
  void finish_call(ActiveCall active);
  void replenish_prewarm();

  container::ContainerPool pool_;
  container::DockerDaemon daemon_;
  os::CpuSystem cpu_;

  std::deque<metrics::CallRecord> queue_;
  std::unordered_map<os::CpuSystem::TaskId, ActiveCall> running_;
  int prewarm_creating_ = 0;
};

}  // namespace whisk::node
