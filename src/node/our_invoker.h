#pragma once

#include <memory>
#include <unordered_map>

#include "container/docker_daemon.h"
#include "container/pool.h"
#include "core/history.h"
#include "core/pending_queue.h"
#include "core/policy.h"
#include "node/invoker.h"
#include "os/cpu_system.h"

namespace whisk::node {

// The paper's node-level resource manager (Sec. IV):
//
//   * pending calls wait in a priority queue keyed by the selected policy
//     (FIFO / SEPT / EECT / RECT / FC), priorities computed once on receive
//     from node-local history;
//   * at most `cores` containers are busy at any time and each busy
//     container owns exactly one core (ExecMode::kPinnedCore), eliminating
//     OS preemption;
//   * per-dispatch container management serializes through the node's
//     Docker daemon station.
//
// With sufficient memory the warm-up set (cores containers per function)
// never gets evicted and the node performs zero cold starts (Sec. VI).
class OurInvoker final : public Invoker {
 public:
  // `policy` is any name registered with core::PolicyRegistry ("fifo",
  // "sept", "eect", "rect", "fc", "sjf-aging", ...).
  OurInvoker(sim::Engine& engine, const workload::FunctionCatalog& catalog,
             NodeParams params, sim::Rng rng, DeliveryFn delivery,
             std::string_view policy);

  void warmup() override;

  [[nodiscard]] std::size_t queue_length() const override {
    return pending_.size();
  }
  [[nodiscard]] std::size_t executing() const override {
    return static_cast<std::size_t>(busy_slots_);
  }
  [[nodiscard]] std::string_view approach() const override { return "our"; }

  // Base counters plus the daemon-station and pool telemetry.
  [[nodiscard]] const InvokerStats& stats() const override;

  [[nodiscard]] std::string_view policy_name() const {
    return policy_->name();
  }

  // Introspection for tests and telemetry.
  [[nodiscard]] const container::ContainerPool& pool() const { return pool_; }
  [[nodiscard]] const container::DockerDaemon& daemon() const {
    return daemon_;
  }
  [[nodiscard]] const core::RuntimeHistory& history() const {
    return history_;
  }

 private:
  struct PendingCall {
    metrics::CallRecord record;
    double priority = 0.0;  // computed once on receive, never recomputed
  };

  struct ActiveCall {
    metrics::CallRecord record;
    container::ContainerId cid = container::kInvalidContainer;
    sim::SimTime dispatch_time = 0.0;  // popped from the pending queue
  };

  // Current in-flight activity driving the idle->loaded management ramp.
  [[nodiscard]] double activity() const {
    return static_cast<double>(busy_slots_) +
           static_cast<double>(pending_.size());
  }

  void on_submit(const workload::CallRequest& call) override;

  void try_dispatch();
  // Returns false when the node is resource-blocked (memory too small for
  // another container and nothing evictable).
  bool dispatch_one();
  void begin_exec(ActiveCall active);
  void on_exec_complete(os::CpuSystem::TaskId task);
  void finish_call(ActiveCall active);

  std::unique_ptr<core::Policy> policy_;
  core::RuntimeHistory history_;
  container::ContainerPool pool_;
  container::DockerDaemon daemon_;
  os::CpuSystem cpu_;
  core::PendingQueue<PendingCall> pending_;

  int busy_slots_ = 0;
  bool resource_blocked_ = false;
  std::unordered_map<os::CpuSystem::TaskId, ActiveCall> running_;
};

}  // namespace whisk::node
