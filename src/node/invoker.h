#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "metrics/record.h"
#include "node/params.h"
#include "sim/engine.h"
#include "sim/random.h"
#include "util/check.h"
#include "workload/function.h"
#include "workload/scenario.h"

namespace whisk::container {
class ContainerPool;
class DockerDaemon;
}  // namespace whisk::container

namespace whisk::node {

// Counters every invoker maintains for the cold-start experiment (Fig. 2)
// and general telemetry. Start-kind counts cover only measured calls;
// warm-up is excluded, as in the paper. The daemon_* fields mirror the
// node's DockerDaemon station telemetry (synced on stats()), so daemon
// contention is visible per cell in sweeps without reaching into the
// invoker internals.
struct InvokerStats {
  std::size_t calls_received = 0;
  std::size_t calls_completed = 0;
  std::size_t calls_lost = 0;  // in flight when the node failed
  std::size_t cold_starts = 0;
  std::size_t prewarm_starts = 0;
  std::size_t warm_starts = 0;
  std::size_t evictions = 0;          // memory-pressure victims
  std::size_t expirations = 0;        // keep-alive lapses (ttl sweeps)
  double daemon_busy_seconds = 0.0;
  std::size_t daemon_max_queue_length = 0;
  double daemon_queue_wait_seconds = 0.0;      // sum over started ops
  double daemon_max_queue_wait_seconds = 0.0;  // single worst wait

  // Fold another node's (or cell's) counters into this rollup: counts and
  // seconds add, high-water marks take the max. The single spot that
  // knows which is which — every aggregator goes through here.
  void merge(const InvokerStats& other) {
    calls_received += other.calls_received;
    calls_completed += other.calls_completed;
    calls_lost += other.calls_lost;
    cold_starts += other.cold_starts;
    prewarm_starts += other.prewarm_starts;
    warm_starts += other.warm_starts;
    evictions += other.evictions;
    expirations += other.expirations;
    daemon_busy_seconds += other.daemon_busy_seconds;
    daemon_max_queue_length =
        std::max(daemon_max_queue_length, other.daemon_max_queue_length);
    daemon_queue_wait_seconds += other.daemon_queue_wait_seconds;
    daemon_max_queue_wait_seconds = std::max(
        daemon_max_queue_wait_seconds, other.daemon_max_queue_wait_seconds);
  }
};

// A worker node's resource manager. Two implementations:
//   * BaselineInvoker — stock OpenWhisk (Sec. III): FIFO handling, greedy
//     container creation bounded by memory, memory-proportional CPU shares.
//   * OurInvoker — the paper's approach (Sec. IV): policy priority queue,
//     busy containers capped at the core count, one core per container.
//
// The invoker's `submit` is called at the moment the request is pulled from
// Kafka (r'(i)); `delivery` fires when the response leaves the node, with
// exec_* timestamps and the start kind filled in. The cluster layer adds the
// return-path latency and stamps c(i).
//
// Node lifecycle: a node is live until the cluster fails it via shutdown(),
// which returns every call received but not yet delivered (so the
// controller can re-submit them) and turns all of the node's future engine
// callbacks into no-ops. Draining is a cluster-level routing decision — a
// draining node simply stops receiving new submits and finishes its
// backlog through the normal path.
class Invoker {
 public:
  using DeliveryFn = std::function<void(const metrics::CallRecord&)>;

  Invoker(sim::Engine& engine, const workload::FunctionCatalog& catalog,
          NodeParams params, sim::Rng rng, DeliveryFn delivery)
      : engine_(&engine),
        catalog_(&catalog),
        params_(params),
        rng_(rng),
        delivery_(std::move(delivery)) {}

  virtual ~Invoker() = default;
  Invoker(const Invoker&) = delete;
  Invoker& operator=(const Invoker&) = delete;

  // Pre-populate the node as the paper's warm-up phase does: up to `cores`
  // containers per function (memory permitting) and a primed runtime
  // history. Administrative: costs no simulated time and no cold-start
  // counts.
  virtual void warmup() = 0;

  // Receive a call (now == r'(i)); hands off to the implementation's
  // on_submit. With in-flight tracking enabled the call is also remembered
  // until delivery so a failure can return it.
  void submit(const workload::CallRequest& call);

  // Opt in to per-call in-flight bookkeeping (one hash-map insert + erase
  // per call). The cluster enables it only on deployments that schedule
  // drain/fail events, so the common churn-free run pays nothing.
  void enable_in_flight_tracking() { track_in_flight_ = true; }
  [[nodiscard]] bool tracks_in_flight() const { return track_in_flight_; }

  // Fail the node: every future callback of this invoker becomes a no-op
  // and the calls received but not yet delivered are returned (ordered by
  // call id) for the controller to re-submit. Requires in-flight tracking;
  // idempotent-hostile on purpose: failing a node twice is a caller bug
  // and aborts.
  [[nodiscard]] std::vector<workload::CallRequest> shutdown();

  [[nodiscard]] bool failed() const { return failed_; }
  // Calls received and not yet delivered (queued, executing, or in
  // post-processing). Always 0 when tracking is disabled.
  [[nodiscard]] std::size_t in_flight() const { return in_flight_.size(); }

  [[nodiscard]] virtual std::size_t queue_length() const = 0;
  [[nodiscard]] virtual std::size_t executing() const = 0;
  [[nodiscard]] virtual std::string_view approach() const = 0;

  // Implementations override to fold live telemetry (daemon station, pool
  // counters) into the returned snapshot.
  [[nodiscard]] virtual const InvokerStats& stats() const { return stats_; }
  [[nodiscard]] const NodeParams& params() const { return params_; }

  // Node index stamped into call records (set by the cluster layer).
  void set_node_index(int index) { node_index_ = index; }
  [[nodiscard]] int node_index() const { return node_index_; }

  // Straggler control (slow-node fault): every sampled duration — service
  // times and management ops alike — is multiplied by `factor`. 1.0 is
  // nominal speed; already-running executions keep their sampled length,
  // only durations drawn after the change are affected.
  void set_speed_factor(double factor) {
    WHISK_CHECK(factor >= 1.0, "speed factor must be >= 1");
    speed_factor_ = factor;
  }
  [[nodiscard]] double speed_factor() const { return speed_factor_; }

 protected:
  // Implementation hook behind submit().
  virtual void on_submit(const workload::CallRequest& call) = 0;

  // Deliver a finished record to the cluster layer and drop it from the
  // in-flight set. Implementations must route completions through here
  // (never through delivery_ directly) or failed-node re-submission would
  // double-count.
  void deliver(const metrics::CallRecord& record);

  // True once shutdown() ran; every engine callback re-entering the
  // invoker checks this first and bails.
  [[nodiscard]] bool dead() const { return failed_; }

  // Fold the node's pool and daemon-station telemetry into stats_ — the
  // one block both stats() overrides share, so a new field cannot be
  // synced for one invoker and silently report 0 for the other. Defined
  // in invoker.cpp: the base header stays forward-declaration-only on the
  // container layer.
  void sync_station_telemetry(const container::ContainerPool& pool,
                              const container::DockerDaemon& daemon) const;

  // Lognormal sample around `median` with spread `sigma`, stretched by the
  // current straggler factor.
  double sample_lognormal(double median, double sigma) {
    return scaled(rng_.lognormal(std::log(median), sigma));
  }

  // Apply the straggler factor to a duration that bypasses
  // sample_lognormal (pre-sampled service times handed to the CPU). The
  // multiply-by-1.0 is IEEE-exact, so fault-free runs stay byte-identical.
  [[nodiscard]] double scaled(double duration) const {
    return duration * speed_factor_;
  }

  // Idle->loaded interpolated op duration for the current activity level.
  double ramped_op(double idle_median, double loaded_median, double sigma,
                   double activity) {
    const double f = params_.ramp(activity);
    const double median = idle_median + (loaded_median - idle_median) * f;
    return sample_lognormal(median, sigma);
  }

  sim::Engine* engine_;
  const workload::FunctionCatalog* catalog_;
  NodeParams params_;
  sim::Rng rng_;
  mutable InvokerStats stats_;
  int node_index_ = 0;
  double speed_factor_ = 1.0;

 private:
  DeliveryFn delivery_;
  std::unordered_map<workload::CallId, workload::CallRequest> in_flight_;
  bool failed_ = false;
  bool track_in_flight_ = false;
};

inline void Invoker::submit(const workload::CallRequest& call) {
  WHISK_CHECK(!failed_, "submit to a failed node");
  if (track_in_flight_) in_flight_.emplace(call.id, call);
  on_submit(call);
}

inline void Invoker::deliver(const metrics::CallRecord& record) {
  if (track_in_flight_) in_flight_.erase(record.id);
  delivery_(record);
}

inline std::vector<workload::CallRequest> Invoker::shutdown() {
  WHISK_CHECK(!failed_, "node failed twice");
  WHISK_CHECK(track_in_flight_,
              "shutdown without in-flight tracking enabled");
  failed_ = true;
  std::vector<workload::CallRequest> lost;
  lost.reserve(in_flight_.size());
  for (const auto& [id, call] : in_flight_) lost.push_back(call);
  std::sort(lost.begin(), lost.end(),
            [](const workload::CallRequest& a,
               const workload::CallRequest& b) { return a.id < b.id; });
  stats_.calls_lost += lost.size();
  in_flight_.clear();
  return lost;
}

}  // namespace whisk::node
