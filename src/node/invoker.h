#pragma once

#include <cmath>
#include <functional>
#include <string_view>

#include "metrics/record.h"
#include "node/params.h"
#include "sim/engine.h"
#include "sim/random.h"
#include "workload/function.h"
#include "workload/scenario.h"

namespace whisk::node {

// Counters every invoker maintains for the cold-start experiment (Fig. 2)
// and general telemetry. Start-kind counts cover only measured calls;
// warm-up is excluded, as in the paper.
struct InvokerStats {
  std::size_t calls_received = 0;
  std::size_t calls_completed = 0;
  std::size_t cold_starts = 0;
  std::size_t prewarm_starts = 0;
  std::size_t warm_starts = 0;
  std::size_t evictions = 0;
};

// A worker node's resource manager. Two implementations:
//   * BaselineInvoker — stock OpenWhisk (Sec. III): FIFO handling, greedy
//     container creation bounded by memory, memory-proportional CPU shares.
//   * OurInvoker — the paper's approach (Sec. IV): policy priority queue,
//     busy containers capped at the core count, one core per container.
//
// The invoker's `submit` is called at the moment the request is pulled from
// Kafka (r'(i)); `delivery` fires when the response leaves the node, with
// exec_* timestamps and the start kind filled in. The cluster layer adds the
// return-path latency and stamps c(i).
class Invoker {
 public:
  using DeliveryFn = std::function<void(const metrics::CallRecord&)>;

  Invoker(sim::Engine& engine, const workload::FunctionCatalog& catalog,
          NodeParams params, sim::Rng rng, DeliveryFn delivery)
      : engine_(&engine),
        catalog_(&catalog),
        params_(params),
        rng_(rng),
        delivery_(std::move(delivery)) {}

  virtual ~Invoker() = default;
  Invoker(const Invoker&) = delete;
  Invoker& operator=(const Invoker&) = delete;

  // Pre-populate the node as the paper's warm-up phase does: up to `cores`
  // containers per function (memory permitting) and a primed runtime
  // history. Administrative: costs no simulated time and no cold-start
  // counts.
  virtual void warmup() = 0;

  // Receive a call (now == r'(i)).
  virtual void submit(const workload::CallRequest& call) = 0;

  [[nodiscard]] virtual std::size_t queue_length() const = 0;
  [[nodiscard]] virtual std::size_t executing() const = 0;
  [[nodiscard]] virtual std::string_view approach() const = 0;

  [[nodiscard]] const InvokerStats& stats() const { return stats_; }
  [[nodiscard]] const NodeParams& params() const { return params_; }

  // Node index stamped into call records (set by the cluster layer).
  void set_node_index(int index) { node_index_ = index; }
  [[nodiscard]] int node_index() const { return node_index_; }

 protected:
  // Lognormal sample around `median` with spread `sigma`.
  double sample_lognormal(double median, double sigma) {
    return rng_.lognormal(std::log(median), sigma);
  }

  // Idle->loaded interpolated op duration for the current activity level.
  double ramped_op(double idle_median, double loaded_median, double sigma,
                   double activity) {
    const double f = params_.ramp(activity);
    const double median = idle_median + (loaded_median - idle_median) * f;
    return sample_lognormal(median, sigma);
  }

  sim::Engine* engine_;
  const workload::FunctionCatalog* catalog_;
  NodeParams params_;
  sim::Rng rng_;
  DeliveryFn delivery_;
  InvokerStats stats_;
  int node_index_ = 0;
};

}  // namespace whisk::node
