#include "node/our_invoker.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace whisk::node {

OurInvoker::OurInvoker(sim::Engine& engine,
                       const workload::FunctionCatalog& catalog,
                       NodeParams params, sim::Rng rng, DeliveryFn delivery,
                       std::string_view policy)
    : Invoker(engine, catalog, params, rng, std::move(delivery)),
      policy_(core::make_policy(policy, params.policy)),
      history_(params.history_window),
      pool_(params.memory_limit_mb,
            container::make_keep_alive(params.keep_alive)),
      daemon_(engine),
      cpu_(engine,
           os::CpuParams{os::ExecMode::kPinnedCore, params.cores,
                         params.context_switch_beta},
           [this](os::CpuSystem::TaskId task) { on_exec_complete(task); }) {
  // Our approach keeps a steady container set and leaves dockerd alone
  // between calls, so no live-container strain applies to its ops.

  // FC queries never reach past the configured sliding window, so let the
  // history prune completion timestamps beyond it — bounded memory on
  // arbitrarily long runs.
  history_.register_fc_window(params.policy.fc_window);
}

void OurInvoker::warmup() {
  // Under our invoker the paper's warm-up (c parallel calls per function,
  // Sec. V-A) results in up to `cores` containers per function: each of the
  // c parallel calls is popped into its own slot, finds no warm container
  // and creates one. Administrative: no simulated time passes. The warm-up
  // happens in the minute before the burst, so last_used sits just before
  // t=0: LRU only compares relative order, and TTL keep-alive sees a warm
  // set that is one minute old, not arbitrarily stale.
  const sim::SimTime ancient = -60.0;
  int filled = 0;
  for (int round = 0; round < params_.cores; ++round) {
    for (const auto& spec : catalog_->specs()) {
      auto cid = pool_.begin_creation(spec.memory_mb);
      if (!cid) continue;  // memory exhausted; later rounds may still fail
      pool_.finish_creation_busy(*cid, spec.id);
      // Stagger last_used so LRU eviction order is deterministic.
      pool_.release(*cid, ancient + 0.001 * filled);
      ++filled;
    }
  }
  // Warm-up calls also seed the runtime history: up to min(cores, window)
  // observed processing times per function. The warm-up spans the minute
  // before the measured burst, so its completions sit towards the stale end
  // of FC's sliding window at t=0 and age out during the early burst: FC
  // neither starts blind (all counts zero would degenerate to FIFO) nor
  // holds warm-up counts against rarely-called functions all burst long.
  const int samples =
      std::min(params_.cores, static_cast<int>(params_.history_window));
  const double span = 30.0;
  for (const auto& spec : catalog_->specs()) {
    for (int k = 0; k < samples; ++k) {
      const double when =
          -55.0 + span * static_cast<double>(k) /
                      static_cast<double>(std::max(samples - 1, 1));
      history_.record_runtime(spec.id, catalog_->sample_service(spec.id, rng_),
                              when);
    }
  }
}

const InvokerStats& OurInvoker::stats() const {
  sync_station_telemetry(pool_, daemon_);
  return stats_;
}

void OurInvoker::on_submit(const workload::CallRequest& call) {
  ++stats_.calls_received;
  metrics::CallRecord rec;
  rec.id = call.id;
  rec.function = call.function;
  rec.node = node_index_;
  rec.release = call.release;
  rec.received = engine_->now();

  // Priority is computed once, now, from node-local history (Sec. IV), and
  // the arrival is recorded afterwards so RECT's r-bar(i) refers to the
  // *previous* call of the same function.
  const core::PolicyContext ctx{rec.received, rec.function, &history_,
                                call.cp_hint};
  const double priority = policy_->priority(ctx);
  history_.record_arrival(rec.function, rec.received);

  pending_.push(priority, PendingCall{rec, priority});
  try_dispatch();
}

void OurInvoker::try_dispatch() {
  if (dead()) return;
  // Reclaim idle containers whose keep-alive lapsed before taking any
  // dispatch decision, so a stale warm container cold-starts instead of
  // serving. Free for policies without expiry (lru).
  pool_.sweep_expired(engine_->now());
  // Two gates: the paper's busy-container cap (<= cores) and a shallow
  // daemon backlog. The second keeps the waiting calls in the *priority*
  // queue where the policy can reorder them, instead of burying them in the
  // FIFO management pipeline — the real invoker likewise pops the next call
  // only when it can process it promptly.
  while (!resource_blocked_ && busy_slots_ < params_.cores &&
         daemon_.queue_length() <
             static_cast<std::size_t>(params_.dispatch_daemon_gate) &&
         !pending_.empty()) {
    if (!dispatch_one()) {
      resource_blocked_ = true;
      break;
    }
  }
}

bool OurInvoker::dispatch_one() {
  PendingCall pending = pending_.pop();
  metrics::CallRecord& rec = pending.record;
  const auto& spec = catalog_->spec(rec.function);
  const double act = activity();

  container::ContainerId cid = container::kInvalidContainer;
  sim::SimTime init_delay = 0.0;
  // Serialized pre-dispatch management (unpause, cpu-limit bookkeeping).
  double op = ramped_op(params_.our_preop_idle_s, params_.our_preop_loaded_s,
                        params_.our_preop_sigma, act);

  if (auto warm = pool_.acquire_warm(rec.function)) {
    rec.start_kind = metrics::StartKind::kWarm;
    cid = *warm;
  } else if (auto prewarm = pool_.acquire_prewarm()) {
    rec.start_kind = metrics::StartKind::kPrewarm;
    cid = *prewarm;
    pool_.assign_function(cid, rec.function);
    init_delay = sample_lognormal(params_.prewarm_init_median_s,
                                  params_.prewarm_init_sigma);
  } else {
    // Need a fresh container; the keep-alive policy picks eviction victims
    // if memory is short. (stats() folds the pool's eviction counters in.)
    if (pool_.memory_free_mb() < spec.memory_mb) {
      pool_.evict_idle_until_free(spec.memory_mb);
    }
    auto created = pool_.begin_creation(spec.memory_mb);
    if (!created) {
      // All memory is pinned under busy containers; wait for a release.
      const double priority = pending.priority;
      pending_.push(priority, std::move(pending));
      return false;
    }
    rec.start_kind = metrics::StartKind::kCold;
    cid = *created;
    op += ramped_op(params_.base_create_idle_s, params_.base_create_loaded_s,
                    params_.base_create_sigma, act);
    init_delay = std::clamp(
        sample_lognormal(params_.cold_init_median_s, params_.cold_init_sigma),
        params_.cold_init_min_s, params_.cold_init_max_s);
  }

  switch (rec.start_kind) {
    case metrics::StartKind::kWarm:
      ++stats_.warm_starts;
      break;
    case metrics::StartKind::kPrewarm:
      ++stats_.prewarm_starts;
      break;
    case metrics::StartKind::kCold:
      ++stats_.cold_starts;
      break;
  }

  ++busy_slots_;
  ActiveCall active{rec, cid, engine_->now()};
  // Serialized management op, then (for cold/prewarm starts) the container
  // initialization which delays only this call. Dispatch ops take priority
  // over queued background result/log processing.
  daemon_.submit(op, [this, active = std::move(active), init_delay]() mutable {
    if (dead()) return;
    if (active.record.start_kind == metrics::StartKind::kCold) {
      pool_.finish_creation_busy(active.cid, active.record.function);
    }
    if (init_delay > 0.0) {
      engine_->schedule_in(init_delay,
                           [this, active = std::move(active)]() mutable {
                             begin_exec(std::move(active));
                           });
    } else {
      begin_exec(std::move(active));
    }
  }, /*urgent=*/true);
  return true;
}

void OurInvoker::begin_exec(ActiveCall active) {
  if (dead()) return;
  active.record.exec_start = engine_->now();
  active.record.service =
      catalog_->sample_service(active.record.function, rng_);
  const auto& spec = catalog_->spec(active.record.function);
  const auto task = cpu_.start(scaled(active.record.service), spec.cpu_fraction);
  running_.emplace(task, std::move(active));
}

void OurInvoker::on_exec_complete(os::CpuSystem::TaskId task) {
  if (dead()) return;
  auto it = running_.find(task);
  WHISK_CHECK(it != running_.end(), "completion for unknown task");
  ActiveCall active = std::move(it->second);
  running_.erase(it);

  active.record.exec_end = engine_->now();

  // Serialized post-execution result/log processing, proportional to what
  // the call produced (its execution time). This is the order-dependent
  // bottleneck cost that makes short-first policies win on *average*
  // response time (DESIGN.md Sec. 5).
  const double act = activity();
  const double exec_s = active.record.exec_end - active.record.exec_start;
  const double f = params_.ramp(act);
  const double factor =
      params_.our_post_factor_idle +
      (params_.our_post_factor_loaded - params_.our_post_factor_idle) * f;
  const double base = ramped_op(params_.our_post_base_idle_s,
                                params_.our_post_base_loaded_s,
                                params_.our_post_sigma, act);
  const double post =
      base + factor * exec_s * sample_lognormal(1.0, params_.our_post_sigma);

  // The node-level "processing time" the scheduler learns from covers the
  // dispatch decision to the moment the result is processed — the call's
  // own management and execution, but not time spent queued behind other
  // calls' result processing (which would let load leak into E(p) and bias
  // the policies). Never includes network latency (Sec. IV).
  history_.record_runtime(active.record.function,
                          engine_->now() - active.dispatch_time + post,
                          engine_->now());

  daemon_.submit(post, [this, active = std::move(active)]() mutable {
    finish_call(std::move(active));
  });
}

void OurInvoker::finish_call(ActiveCall active) {
  if (dead()) return;
  pool_.release(active.cid, engine_->now());
  --busy_slots_;
  resource_blocked_ = false;
  ++stats_.calls_completed;
  active.record.completion = engine_->now();
  deliver(active.record);
  try_dispatch();
}

}  // namespace whisk::node
