#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace whisk::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double percentile_sorted(std::span<const double> sorted, double q) {
  WHISK_CHECK(q >= 0.0 && q <= 100.0, "percentile rank out of range");
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, q);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = percentile_sorted(sorted, 25.0);
  s.p50 = percentile_sorted(sorted, 50.0);
  s.p75 = percentile_sorted(sorted, 75.0);
  s.p95 = percentile_sorted(sorted, 95.0);
  s.p99 = percentile_sorted(sorted, 99.0);
  return s;
}

void StreamingStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const std::size_t n = n_ + other.n_;
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = n;
}

double StreamingStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

}  // namespace whisk::util
