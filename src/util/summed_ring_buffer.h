#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/ring_buffer.h"

namespace whisk::util {

// RingBuffer<double> that maintains a running sum over the retained window,
// so mean() is O(1) regardless of capacity instead of a per-call scan.
//
// The sum is kept with Neumaier compensation: each push adds the new value
// and subtracts the evicted one through an error-free transformation, so the
// running sum stays within an ulp of the exact window sum over arbitrarily
// long runs — no drift, and no periodic O(window) re-scan needed.
class SummedRingBuffer {
 public:
  explicit SummedRingBuffer(std::size_t capacity) : buf_(capacity) {}

  void push(double value) {
    if (const auto evicted = buf_.push(value)) add(-*evicted);
    add(value);
  }

  // Sum over the retained window.
  [[nodiscard]] double sum() const { return sum_ + comp_; }

  // Mean over the retained window; 0 when empty.
  [[nodiscard]] double mean() const {
    return buf_.empty() ? 0.0 : sum() / static_cast<double>(buf_.size());
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::size_t capacity() const { return buf_.capacity(); }
  [[nodiscard]] bool empty() const { return buf_.empty(); }
  [[nodiscard]] const std::vector<double>& values() const {
    return buf_.values();
  }
  [[nodiscard]] double newest() const { return buf_.newest(); }

  void clear() {
    buf_.clear();
    sum_ = 0.0;
    comp_ = 0.0;
  }

 private:
  void add(double v) {
    const double t = sum_ + v;
    if (std::abs(sum_) >= std::abs(v)) {
      comp_ += (sum_ - t) + v;
    } else {
      comp_ += (v - t) + sum_;
    }
    sum_ = t;
  }

  RingBuffer<double> buf_;
  double sum_ = 0.0;
  double comp_ = 0.0;  // Neumaier compensation term
};

}  // namespace whisk::util
