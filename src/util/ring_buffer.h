#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "util/check.h"

namespace whisk::util {

// Fixed-capacity ring buffer keeping the most recent `capacity` pushed
// values. This is the backing store for the per-function runtime history the
// paper's policies rely on ("the average processing time over last 10
// finished calls of the same function", Sec. IV).
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : capacity_(capacity) {
    WHISK_CHECK(capacity > 0, "ring buffer capacity must be positive");
    data_.reserve(capacity);
  }

  // Push `value`; once the buffer is full, returns the value it evicted so
  // callers (e.g. SummedRingBuffer) can maintain running aggregates without
  // re-scanning the window.
  std::optional<T> push(const T& value) {
    if (data_.size() < capacity_) {
      data_.push_back(value);
      return std::nullopt;
    }
    std::optional<T> evicted(std::in_place, std::move(data_[head_]));
    data_[head_] = value;
    ++head_;
    if (head_ == capacity_) head_ = 0;  // wrap branch beats the div in `%`
    return evicted;
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  // Oldest-to-newest is not needed by any caller; values() exposes the
  // retained window in unspecified order (sufficient for averaging).
  [[nodiscard]] const std::vector<T>& values() const { return data_; }

  // Most recently pushed element.
  [[nodiscard]] const T& newest() const {
    WHISK_CHECK(!data_.empty(), "newest() on empty ring buffer");
    if (data_.size() < capacity_) return data_.back();
    return data_[head_ == 0 ? capacity_ - 1 : head_ - 1];
  }

  void clear() {
    data_.clear();
    head_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // next slot to overwrite once full
  std::vector<T> data_;
};

}  // namespace whisk::util
