#pragma once

#include <cstdio>
#include <cstdlib>

// Lightweight invariant checking used across the simulator. Unlike assert(),
// WHISK_CHECK stays active in release builds: a simulator that silently
// continues after a broken invariant produces plausible-looking garbage,
// which is worse than a crash.
#define WHISK_CHECK(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "WHISK_CHECK failed at %s:%d: %s\n  %s\n",       \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)
