#pragma once

#include <string>
#include <vector>

namespace whisk::util {

// Minimal fixed-layout ASCII table printer for the paper-reproduction
// benches. Columns are right-aligned; header separated by a dash rule.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Render the table with per-column widths fitted to contents.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Format a double with fixed precision (default 2), trimming to a compact
// representation suitable for table cells.
[[nodiscard]] std::string fmt(double value, int precision = 2);

// Format a ratio range like the paper's Table II cells ("0.59-0.66").
[[nodiscard]] std::string fmt_range(double lo, double hi, int precision = 2);

// Shortest %.10g form — the one rendering of grid numbers (memory sizes,
// override values) shared by CampaignSpec::to_string and the cell
// exporters, so printed specs round-trip through parse.
[[nodiscard]] std::string fmt_g(double value);

}  // namespace whisk::util
