#include "util/thread_pool.h"

#include <utility>

#include "util/check.h"

namespace whisk::util {
namespace {

// Set once at worker start; a thread belongs to at most one pool.
thread_local int tl_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(int threads) {
  WHISK_CHECK(threads >= 1, "a thread pool needs at least one worker");
  queues_.resize(static_cast<std::size_t>(threads));
  threads_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t count, const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < count; ++i) {
    submit([&body, i] { body(i); });
  }
  wait_idle();
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ThreadPool::worker_index() { return tl_worker_index; }

void ThreadPool::worker_loop(std::size_t index) {
  tl_worker_index = static_cast<int>(index);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    std::function<void()> task;
    if (!queues_[index].empty()) {
      task = std::move(queues_[index].front());  // own work: oldest first
      queues_[index].pop_front();
    } else {
      for (std::size_t j = 1; j < queues_.size(); ++j) {
        auto& victim = queues_[(index + j) % queues_.size()];
        if (!victim.empty()) {
          task = std::move(victim.front());  // stolen work: oldest first
          victim.pop_front();
          break;
        }
      }
    }
    if (task) {
      lock.unlock();
      task();
      task = nullptr;  // destroy captures outside the lock
      lock.lock();
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (stop_) return;
    work_cv_.wait(lock);
  }
}

}  // namespace whisk::util
