#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace whisk::util {

// Fixed-capacity uniform sample of an unbounded stream (Vitter's
// Algorithm R): the first `capacity` values are kept verbatim, after which
// the i-th value replaces a random slot with probability capacity/i. Used by
// the bounded-memory metrics sinks to estimate quantiles without retaining
// every observation.
//
// Deterministic: replacement decisions come from an inline SplitMix64 stream
// seeded at construction, so the same input sequence always yields the same
// sample — campaign output must not depend on thread schedule. Exact while
// seen() <= capacity(): the sample then *is* the stream, in arrival order.
class Reservoir {
 public:
  // No up-front allocation: the sample grows with the stream (short streams
  // stay small; campaigns hold one reservoir per cell).
  explicit Reservoir(std::size_t capacity, std::uint64_t seed = 0)
      : capacity_(capacity), state_(seed + 0x9e3779b97f4a7c15ULL) {}

  void add(double x) {
    ++seen_;
    if (samples_.size() < capacity_) {
      samples_.push_back(x);
      return;
    }
    // j uniform in [0, seen); keep x iff j lands inside the reservoir. The
    // modulo bias is < 2^-53 for any realistic stream length.
    const std::uint64_t j = next_u64() % seen_;
    if (j < capacity_) samples_[static_cast<std::size_t>(j)] = x;
  }

  // Fold another reservoir's sample into this one, deterministically: the
  // samples are concatenated (and the seen counts summed); when the result
  // overflows the capacity it is thinned to evenly spaced elements. An
  // approximation of a true weighted merge — good enough for reporting
  // quantiles over a campaign group, and exact while both inputs are exact
  // and the union still fits.
  void merge(const Reservoir& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    seen_ += other.seen_;
    if (samples_.size() > capacity_ && capacity_ > 0) {
      std::vector<double> thinned;
      thinned.reserve(capacity_);
      const std::size_t n = samples_.size();
      for (std::size_t k = 0; k < capacity_; ++k) {
        thinned.push_back(samples_[k * n / capacity_]);
      }
      samples_ = std::move(thinned);
    }
  }

  // Values observed so far (not the retained count).
  [[nodiscard]] std::size_t seen() const { return seen_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }

  // True while the sample still holds every observed value.
  [[nodiscard]] bool exact() const { return seen_ <= capacity_; }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

  // Rebuild a reservoir from transported state (distributed-campaign group
  // summaries crossing a worker pipe). The SplitMix64 stream restarts from
  // the seed, NOT from where the source reservoir left off — fine for the
  // intended use, where rebuilt reservoirs are only merge()d and read,
  // never add()ed to.
  [[nodiscard]] static Reservoir from_state(std::size_t capacity,
                                            std::size_t seen,
                                            std::vector<double> samples) {
    Reservoir out(capacity);
    out.seen_ = seen;
    out.samples_ = std::move(samples);
    return out;
  }

 private:
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::vector<double> samples_;
  std::size_t capacity_;
  std::size_t seen_ = 0;
  std::uint64_t state_;
};

}  // namespace whisk::util
