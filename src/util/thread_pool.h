#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace whisk::util {

// Work-stealing thread pool sized for campaign cells: tasks are whole
// simulation runs (milliseconds to seconds each), so queue operations are
// nowhere near the critical path and all deques share one lock. Each worker
// owns a deque; it drains its own queue oldest-first and, when empty,
// steals the oldest task from the next busy worker. Oldest-first matters to
// run_campaign's streaming pipeline: cells flush in ascending index order,
// so executing near submission order keeps the reorder buffer at O(threads)
// cells instead of stalling the lowest index behind a worker's whole queue
// (the classic LIFO own-pop would do exactly that; its cache-warmth
// rationale is irrelevant for tasks this coarse).
//
// Determinism contract: the pool guarantees nothing about execution order —
// callers must make tasks independent and write to pre-assigned slots.
// run_campaign does exactly that, which is why its output is byte-identical
// for any thread count.
class ThreadPool {
 public:
  // Spawns `threads` workers (>= 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int threads() const {
    return static_cast<int>(threads_.size());
  }

  // Enqueue one task (round-robin over the worker deques). May be called
  // while the pool is busy, including from inside a task.
  void submit(std::function<void()> task);

  // Block until every submitted task has finished. The pool is reusable
  // afterwards.
  void wait_idle();

  // submit + wait_idle over [0, count): body(i) runs exactly once per index,
  // in unspecified order, on unspecified threads.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  // std::thread::hardware_concurrency with the zero-means-unknown case
  // clamped to 1.
  [[nodiscard]] static int hardware_threads();

  // Index of the calling thread within its owning pool (0-based), or -1
  // off any pool worker. Lets a task pick its per-worker slot (e.g.
  // run_campaign's one-CellWorkspace-per-worker array) without threading an
  // index through every submit.
  [[nodiscard]] static int worker_index();

 private:
  void worker_loop(std::size_t index);

  std::vector<std::deque<std::function<void()>>> queues_;  // one per worker
  std::mutex mutex_;                  // guards queues_, pending_, stop_
  std::condition_variable work_cv_;   // task queued or stop
  std::condition_variable idle_cv_;   // pending_ hit zero
  std::size_t pending_ = 0;           // queued + running tasks
  std::size_t next_queue_ = 0;        // round-robin submit cursor
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace whisk::util
