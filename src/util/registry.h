#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/check.h"

namespace whisk::util {

// ASCII-only lowercase; registry keys must not depend on the locale.
[[nodiscard]] inline std::string ascii_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

[[nodiscard]] inline std::string join(const std::vector<std::string>& parts,
                                      std::string_view sep = ", ") {
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += sep;
    out += p;
  }
  return out;
}

// String-keyed factory registry — the open extension surface behind the
// policy / balancer / invoker APIs. Names are case-insensitive and stored
// in registration order, so `names()` doubles as the canonical
// presentation order (the paper's figure order for the built-ins).
//
// Unknown names and duplicate registrations abort with a message that
// echoes the offending input and enumerates every registered name; a bare
// "unknown kind" failure buried in a sweep is hostile to debug.
template <typename Product, typename... Args>
class FactoryRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Product>(Args...)>;

  // `kind` names what the registry holds ("policy", "balancer", ...) and
  // prefixes every diagnostic.
  explicit FactoryRegistry(std::string kind) : kind_(std::move(kind)) {}

  FactoryRegistry(const FactoryRegistry&) = delete;
  FactoryRegistry& operator=(const FactoryRegistry&) = delete;

  void register_factory(std::string_view name, Factory factory) {
    const std::string key = ascii_lower(name);
    WHISK_CHECK(!key.empty(), (kind_ + " name must not be empty").c_str());
    WHISK_CHECK(factory != nullptr,
                (kind_ + " \"" + key + "\" needs a non-null factory").c_str());
    WHISK_CHECK(find(key) == nullptr,
                (kind_ + " \"" + key + "\" is already registered; " +
                 known_names_clause())
                    .c_str());
    entries_.push_back(Entry{key, std::move(factory), /*alias_of=*/""});
  }

  // A secondary spelling for an already-registered name (e.g. the paper
  // writes FC as "fair-choice"). Aliases resolve to the canonical name and
  // are excluded from names().
  void register_alias(std::string_view alias, std::string_view target) {
    const std::string key = ascii_lower(alias);
    const std::string canon = ascii_lower(target);
    WHISK_CHECK(find(key) == nullptr,
                (kind_ + " alias \"" + key + "\" collides with a registered " +
                 kind_)
                    .c_str());
    const Entry* t = find(canon);
    WHISK_CHECK(t != nullptr && t->alias_of.empty(),
                (kind_ + " alias \"" + key + "\" targets unknown " + kind_ +
                 " \"" + canon + "\"; " + known_names_clause())
                    .c_str());
    entries_.push_back(Entry{key, t->factory, canon});
  }

  [[nodiscard]] bool contains(std::string_view name) const {
    return find(ascii_lower(name)) != nullptr;
  }

  // Canonical name for `name` (resolving aliases), or abort listing the
  // registered names when it is unknown.
  [[nodiscard]] std::string resolve(std::string_view name) const {
    const std::string key = ascii_lower(name);
    const Entry* e = find(key);
    if (e == nullptr) {
      WHISK_CHECK(false, unknown_message(name).c_str());
    }
    return e->alias_of.empty() ? e->name : e->alias_of;
  }

  [[nodiscard]] std::unique_ptr<Product> create(std::string_view name,
                                                Args... args) const {
    const Entry* e = find(ascii_lower(name));
    if (e == nullptr) {
      WHISK_CHECK(false, unknown_message(name).c_str());
    }
    auto product = e->factory(std::forward<Args>(args)...);
    WHISK_CHECK(product != nullptr,
                (kind_ + " \"" + std::string(name) +
                 "\" factory returned nullptr")
                    .c_str());
    return product;
  }

  // Canonical names in registration order (aliases excluded).
  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) {
      if (e.alias_of.empty()) out.push_back(e.name);
    }
    return out;
  }

  [[nodiscard]] const std::string& kind() const { return kind_; }

 private:
  struct Entry {
    std::string name;
    Factory factory;
    std::string alias_of;  // empty for canonical entries
  };

  [[nodiscard]] const Entry* find(const std::string& key) const {
    for (const auto& e : entries_) {
      if (e.name == key) return &e;
    }
    return nullptr;
  }

  [[nodiscard]] std::string known_names_clause() const {
    return "registered " + kind_ + " names: " + join(names());
  }

  [[nodiscard]] std::string unknown_message(std::string_view name) const {
    return "unknown " + kind_ + " \"" + std::string(name) + "\"; " +
           known_names_clause();
  }

  std::string kind_;
  std::vector<Entry> entries_;
};

}  // namespace whisk::util
