#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace whisk::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  WHISK_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  WHISK_CHECK(row.size() == header_.size(),
              "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      out << std::string(width[c] - row[c].size(), ' ') << row[c];
    }
    out << '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_range(double lo, double hi, int precision) {
  return fmt(lo, precision) + "-" + fmt(hi, precision);
}

std::string fmt_g(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

}  // namespace whisk::util
