#pragma once

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>
#include <string_view>

namespace whisk::util {

// Strict numeric field parsing shared by the spec / trace / weights
// surfaces. "Strict" means: the whole field must be consumed (no trailing
// garbage, no embedded whitespace the C parsers would skip) and the value
// must be finite — "inf" rates would spin arrival generators forever.
[[nodiscard]] inline bool parse_finite_double(std::string_view field,
                                              double* out) {
  if (field.empty() || field.front() == ' ' || field.front() == '\t') {
    return false;
  }
  const std::string s(field);
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || !std::isfinite(value)) return false;
  *out = value;
  return true;
}

// Digits-only whole number: no sign, no whitespace, no exponent; rejects
// fields that overflow unsigned long long (strtoull's ERANGE clamp would
// otherwise turn "9...9" into ULLONG_MAX silently).
[[nodiscard]] inline bool parse_whole_number(std::string_view field,
                                             unsigned long long* out) {
  if (field.empty()) return false;
  for (const char c : field) {
    if (c < '0' || c > '9') return false;
  }
  const std::string s(field);
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = value;
  return true;
}

}  // namespace whisk::util
