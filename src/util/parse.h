#pragma once

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"
#include "util/registry.h"

namespace whisk::util {

// ASCII space/tab trim shared by the spec parsers (registry keys and spec
// grammar must not depend on the locale).
[[nodiscard]] inline std::string_view trim_ws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Split on any of the characters in `seps`, keeping empty segments (the
// caller decides whether to tolerate them). Shared by the spec grammars,
// several of which accept a canonical separator plus a grid-safe alias.
[[nodiscard]] inline std::vector<std::string_view> split_any(
    std::string_view text, std::string_view seps) {
  std::vector<std::string_view> out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find_first_of(seps, begin);
    out.push_back(text.substr(
        begin, (end == std::string_view::npos ? text.size() : end) - begin));
    if (end == std::string_view::npos) break;
    begin = end + 1;
  }
  return out;
}

// The `key=value[&key=value]...` tail of the established
// "name[?params]" spec idiom (ScenarioSpec, KeepAliveSpec, ClusterSpec
// groups). Keys are lowercased; values kept verbatim. Aborts — prefixing
// `context` — on a piece that is not key=value or a key set twice.
inline void parse_param_list(std::string_view text,
                             const std::string& context,
                             std::map<std::string, std::string>* out) {
  std::string_view rest = text;
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view piece = rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    const std::size_t eq = piece.find('=');
    if (piece.empty() || eq == 0 || eq == std::string_view::npos) {
      WHISK_CHECK(false, (context + ": parameter \"" + std::string(piece) +
                          "\" is not key=value")
                             .c_str());
    }
    const std::string key = ascii_lower(piece.substr(0, eq));
    WHISK_CHECK(out->count(key) == 0,
                (context + " sets parameter \"" + key + "\" twice").c_str());
    (*out)[key] = std::string(piece.substr(eq + 1));
  }
}

// Strict numeric field parsing shared by the spec / trace / weights
// surfaces. "Strict" means: the whole field must be consumed (no trailing
// garbage, no embedded whitespace the C parsers would skip) and the value
// must be finite — "inf" rates would spin arrival generators forever.
[[nodiscard]] inline bool parse_finite_double(std::string_view field,
                                              double* out) {
  if (field.empty() || field.front() == ' ' || field.front() == '\t') {
    return false;
  }
  const std::string s(field);
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || !std::isfinite(value)) return false;
  *out = value;
  return true;
}

// Digits-only whole number: no sign, no whitespace, no exponent; rejects
// fields that overflow unsigned long long (strtoull's ERANGE clamp would
// otherwise turn "9...9" into ULLONG_MAX silently).
[[nodiscard]] inline bool parse_whole_number(std::string_view field,
                                             unsigned long long* out) {
  if (field.empty()) return false;
  for (const char c : field) {
    if (c < '0' || c > '9') return false;
  }
  const std::string s(field);
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = value;
  return true;
}

// Render half of the "name[?key=value&...]" spec idiom: append the sorted
// parameter map to `head`. Inverse of parse_param_list, shared so the
// round-trip grammar lives in one place.
[[nodiscard]] inline std::string render_params(
    std::string head, const std::map<std::string, std::string>& params) {
  char sep = '?';
  for (const auto& [key, value] : params) {
    head += sep;
    head += key;
    head += '=';
    head += value;
    sep = '&';
  }
  return head;
}

}  // namespace whisk::util
