#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace whisk::util {

// Summary statistics over a sample, in the shape the paper reports:
// average, order statistics (50/75/95/99th percentile) and max.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double stddev = 0.0;
};

// Arithmetic mean; 0 for an empty sample.
[[nodiscard]] double mean(std::span<const double> xs);

// Sample standard deviation (n-1 denominator); 0 for n < 2.
[[nodiscard]] double stddev(std::span<const double> xs);

// Percentile with linear interpolation between closest ranks
// (the numpy default). `q` in [0, 100]. Sorts a copy.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

// Percentile over an already-sorted sample (no copy).
[[nodiscard]] double percentile_sorted(std::span<const double> sorted,
                                       double q);

// Full summary; sorts a copy once and derives all quantiles from it.
[[nodiscard]] Summary summarize(std::span<const double> xs);

// The exact internal state of a StreamingStats accumulator — what a
// distributed-campaign worker ships over its pipe so the driver can resume
// the accumulator bit-for-bit (doubles travel as hexfloats).
struct StreamingStatsState {
  std::size_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

// Welford-style streaming accumulator for mean/variance. Used where
// retaining every observation would be wasteful (e.g. ablation sweeps).
class StreamingStats {
 public:
  void add(double x);
  // Fold another accumulator in (Chan et al.'s pairwise combination):
  // merging in a fixed order is deterministic, which is how campaign groups
  // aggregate per-cell stats independently of the thread schedule.
  void merge(const StreamingStats& other);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // sample variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  // Exact-state transport: from_state(state()) is indistinguishable from
  // the original accumulator for every further add/merge.
  [[nodiscard]] StreamingStatsState state() const {
    return {n_, mean_, m2_, min_, max_};
  }
  [[nodiscard]] static StreamingStats from_state(
      const StreamingStatsState& s) {
    StreamingStats out;
    out.n_ = s.n;
    out.mean_ = s.mean;
    out.m2_ = s.m2;
    out.min_ = s.min;
    out.max_ = s.max;
    return out;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace whisk::util
