#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/record.h"
#include "workload/function.h"

namespace whisk::metrics {

// CSV export of per-call records for offline analysis (pandas/R). One row
// per call with the paper's notation in the header:
//   id,function,node,release,received,exec_start,exec_end,completion,
//   service,start_kind,response,stretch
void write_csv(std::ostream& out, const std::vector<CallRecord>& records,
               const workload::FunctionCatalog& catalog);

// Convenience: render to a string (used by tests and small tools).
[[nodiscard]] std::string to_csv(const std::vector<CallRecord>& records,
                                 const workload::FunctionCatalog& catalog);

}  // namespace whisk::metrics
