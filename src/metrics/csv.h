#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/record.h"
#include "workload/function.h"

namespace whisk::metrics {

// The per-call record columns, in the paper's notation. Shared by write_csv
// and CsvSink so every exporter emits the same schema.
inline constexpr const char* kCallRecordCsvHeader =
    "id,function,node,release,received,exec_start,exec_end,completion,"
    "service,start_kind,response,stretch";

// One record as one CSV row (terminated by '\n'), matching the header.
void write_csv_row(std::ostream& out, const CallRecord& r,
                   const workload::FunctionCatalog& catalog);

// CSV-quote a free-form field only when it needs it (spec strings can hold
// commas, e.g. a weighted mix's weights=1,2). Shared by every CSV emitter.
[[nodiscard]] std::string csv_field(const std::string& value);

// CSV export of per-call records for offline analysis (pandas/R). One row
// per call with the paper's notation in the header.
void write_csv(std::ostream& out, const std::vector<CallRecord>& records,
               const workload::FunctionCatalog& catalog);

// Convenience: render to a string (used by tests and small tools).
[[nodiscard]] std::string to_csv(const std::vector<CallRecord>& records,
                                 const workload::FunctionCatalog& catalog);

}  // namespace whisk::metrics
