#include "metrics/csv.h"

#include <ostream>
#include <sstream>

namespace whisk::metrics {

void write_csv(std::ostream& out, const std::vector<CallRecord>& records,
               const workload::FunctionCatalog& catalog) {
  out << "id,function,node,release,received,exec_start,exec_end,completion,"
         "service,start_kind,response,stretch\n";
  for (const auto& r : records) {
    const double stretch = r.response() / catalog.reference_median(r.function);
    out << r.id << ',' << catalog.spec(r.function).name << ',' << r.node
        << ',' << r.release << ',' << r.received << ',' << r.exec_start
        << ',' << r.exec_end << ',' << r.completion << ',' << r.service
        << ',' << to_string(r.start_kind) << ',' << r.response() << ','
        << stretch << '\n';
  }
}

std::string to_csv(const std::vector<CallRecord>& records,
                   const workload::FunctionCatalog& catalog) {
  std::ostringstream out;
  write_csv(out, records, catalog);
  return out.str();
}

}  // namespace whisk::metrics
