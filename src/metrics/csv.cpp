#include "metrics/csv.h"

#include <ostream>
#include <sstream>

namespace whisk::metrics {

void write_csv_row(std::ostream& out, const CallRecord& r,
                   const workload::FunctionCatalog& catalog) {
  const double stretch = r.response() / catalog.reference_median(r.function);
  out << r.id << ',' << catalog.spec(r.function).name << ',' << r.node << ','
      << r.release << ',' << r.received << ',' << r.exec_start << ','
      << r.exec_end << ',' << r.completion << ',' << r.service << ','
      << to_string(r.start_kind) << ',' << r.response() << ',' << stretch
      << '\n';
}

std::string csv_field(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) return value;
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void write_csv(std::ostream& out, const std::vector<CallRecord>& records,
               const workload::FunctionCatalog& catalog) {
  out << kCallRecordCsvHeader << '\n';
  for (const auto& r : records) write_csv_row(out, r, catalog);
}

std::string to_csv(const std::vector<CallRecord>& records,
                   const workload::FunctionCatalog& catalog) {
  std::ostringstream out;
  write_csv(out, records, catalog);
  return out.str();
}

}  // namespace whisk::metrics
