#include "metrics/sink.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "metrics/csv.h"
#include "util/check.h"

namespace whisk::metrics {

std::string json_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        // RFC 8259: every control character below 0x20 must be escaped.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Sink* MetricsPipeline::add(std::unique_ptr<Sink> sink) {
  WHISK_CHECK(sink != nullptr, "cannot add a null sink");
  sinks_.push_back(std::move(sink));
  return sinks_.back().get();
}

void MetricsPipeline::begin_run(const RunContext& ctx) {
  for (auto& s : sinks_) s->begin_run(ctx);
}

void MetricsPipeline::consume(const CallRecord& record) {
  for (auto& s : sinks_) s->on_record(record);
}

void MetricsPipeline::end_run() {
  for (auto& s : sinks_) s->end_run();
}

// --- CsvSink -----------------------------------------------------------------

void CsvSink::begin_run(const RunContext& ctx) {
  std::vector<std::string> keys;
  keys.reserve(ctx.fields.size());
  for (const auto& field : ctx.fields) keys.push_back(field.key);
  if (!header_written_) {
    header_keys_ = keys;
    for (const auto& key : header_keys_) *out_ << csv_field(key) << ',';
    *out_ << kCallRecordCsvHeader << '\n';
    header_written_ = true;
  } else {
    WHISK_CHECK(keys == header_keys_,
                "CsvSink: run context keys changed between runs; one "
                "pipeline writes one schema");
  }
  prefix_.clear();
  for (const auto& field : ctx.fields) {
    prefix_ += csv_field(field.value);
    prefix_ += ',';
  }
}

void CsvSink::on_record(const CallRecord& record) {
  if (!header_written_) {
    // Used without begin_run (plain per-run export): plain record schema.
    *out_ << kCallRecordCsvHeader << '\n';
    header_written_ = true;
  }
  *out_ << prefix_;
  write_csv_row(*out_, record, *catalog_);
}

// --- JsonlSink ---------------------------------------------------------------

void JsonlSink::begin_run(const RunContext& ctx) {
  prefix_.clear();
  for (const auto& field : ctx.fields) {
    prefix_ += '"';
    prefix_ += json_escape(field.key);
    prefix_ += "\":";
    if (field.numeric) {
      prefix_ += field.value;  // same typed form as cells_jsonl
    } else {
      prefix_ += '"';
      prefix_ += json_escape(field.value);
      prefix_ += '"';
    }
    prefix_ += ',';
  }
}

void JsonlSink::on_record(const CallRecord& record) {
  const double stretch =
      record.response() / catalog_->reference_median(record.function);
  std::ostringstream row;
  row << '{' << prefix_ << "\"id\":" << record.id << ",\"function\":\""
      << json_escape(catalog_->spec(record.function).name)
      << "\",\"node\":" << record.node << ",\"release\":" << record.release
      << ",\"received\":" << record.received
      << ",\"exec_start\":" << record.exec_start
      << ",\"exec_end\":" << record.exec_end
      << ",\"completion\":" << record.completion
      << ",\"service\":" << record.service << ",\"start_kind\":\""
      << to_string(record.start_kind) << "\",\"attempts\":" << record.attempts
      << ",\"response\":" << record.response() << ",\"stretch\":" << stretch;
  // Emitted only on shed/dropped records so fault-free runs stay
  // byte-identical to the pre-disposition output.
  if (record.disposition != Disposition::kOk) {
    row << ",\"disposition\":\"" << to_string(record.disposition) << '"';
  }
  row << "}\n";
  *out_ << row.str();
}

// --- StreamingSummary --------------------------------------------------------

util::Summary StreamingSummary::summary() const {
  util::Summary s;
  s.count = stats.count();
  if (s.count == 0) return s;
  s.mean = stats.mean();
  s.min = stats.min();
  s.max = stats.max();
  s.stddev = stats.stddev();
  std::vector<double> sorted = reservoir.samples();
  std::sort(sorted.begin(), sorted.end());
  s.p25 = util::percentile_sorted(sorted, 25.0);
  s.p50 = util::percentile_sorted(sorted, 50.0);
  s.p75 = util::percentile_sorted(sorted, 75.0);
  s.p95 = util::percentile_sorted(sorted, 95.0);
  s.p99 = util::percentile_sorted(sorted, 99.0);
  return s;
}

void StreamingSummarySink::on_record(const CallRecord& record) {
  // Shed/dropped calls have no latency; only ok records enter the
  // distributions (mirrors Collector).
  if (record.disposition != Disposition::kOk) return;
  const double r = record.response();
  response_.add(r);
  stretch_.add(r / catalog_->reference_median(record.function));
  max_completion_ = std::max(max_completion_, record.completion);
}

// --- FunctionIndexSink -------------------------------------------------------

void FunctionIndexSink::on_record(const CallRecord& record) {
  WHISK_CHECK(record.function >= 0, "record without a function id");
  if (record.disposition != Disposition::kOk) return;
  const auto f = static_cast<std::size_t>(record.function);
  if (f >= by_function_.size()) by_function_.resize(f + 1);
  if (by_function_[f] == nullptr) {
    by_function_[f] = std::make_unique<PerFunction>(reservoir_capacity_);
  }
  const double r = record.response();
  by_function_[f]->response.add(r);
  by_function_[f]->stretch.add(
      r / catalog_->reference_median(record.function));
}

std::size_t FunctionIndexSink::calls_of(workload::FunctionId f) const {
  const auto* s = response_of(f);
  return s == nullptr ? 0 : s->stats.count();
}

const StreamingSummary* FunctionIndexSink::response_of(
    workload::FunctionId f) const {
  if (f < 0 || static_cast<std::size_t>(f) >= by_function_.size() ||
      by_function_[static_cast<std::size_t>(f)] == nullptr) {
    return nullptr;
  }
  return &by_function_[static_cast<std::size_t>(f)]->response;
}

const StreamingSummary* FunctionIndexSink::stretch_of(
    workload::FunctionId f) const {
  if (f < 0 || static_cast<std::size_t>(f) >= by_function_.size() ||
      by_function_[static_cast<std::size_t>(f)] == nullptr) {
    return nullptr;
  }
  return &by_function_[static_cast<std::size_t>(f)]->stretch;
}

}  // namespace whisk::metrics
