#include "metrics/collector.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace whisk::metrics {

void Collector::add(const CallRecord& record) {
  WHISK_CHECK(record.completion >= record.release,
              "completion before release");
  WHISK_CHECK(record.exec_end >= record.exec_start,
              "execution ends before it starts");
  WHISK_CHECK(record.function >= 0, "record without a function id");
  WHISK_CHECK(record.attempts >= 1, "record with attempts < 1");
  WHISK_CHECK(completion_.size() < std::numeric_limits<std::uint32_t>::max(),
              "per-run record index overflow");

  const auto position = static_cast<std::uint32_t>(completion_.size());
  id_.push_back(record.id);
  function_.push_back(record.function);
  node_.push_back(record.node);
  release_.push_back(record.release);
  received_.push_back(record.received);
  exec_start_.push_back(record.exec_start);
  exec_end_.push_back(record.exec_end);
  completion_.push_back(record.completion);
  service_.push_back(record.service);
  start_kind_.push_back(record.start_kind);
  attempts_.push_back(record.attempts);
  disposition_.push_back(record.disposition);
  workflow_root_.push_back(record.workflow);
  stage_.push_back(record.stage);

  if (record.attempts > 1) {
    ++resubmitted_calls_;
    resubmissions_ += static_cast<std::size_t>(record.attempts - 1);
  }
  if (record.disposition != Disposition::kOk) {
    // Shed/dropped calls never executed: an empty execution interval is the
    // invariant that keeps them out of every latency distribution below.
    WHISK_CHECK(record.exec_end == record.exec_start,
                "shed/dropped record claims an execution interval");
    if (record.disposition == Disposition::kShed) {
      ++shed_;
    } else {
      ++dropped_;
    }
    return;
  }

  ++ok_;
  const auto f = static_cast<std::size_t>(record.function);
  if (f >= by_function_.size()) by_function_.resize(f + 1);
  by_function_[f].push_back(position);

  max_completion_ = std::max(max_completion_, record.completion);
  switch (record.start_kind) {
    case StartKind::kCold:
      ++cold_;
      break;
    case StartKind::kPrewarm:
      ++prewarm_;
      break;
    case StartKind::kWarm:
      ++warm_;
      break;
  }
}

void Collector::reserve(std::size_t n) {
  id_.reserve(n);
  function_.reserve(n);
  node_.reserve(n);
  release_.reserve(n);
  received_.reserve(n);
  exec_start_.reserve(n);
  exec_end_.reserve(n);
  completion_.reserve(n);
  service_.reserve(n);
  start_kind_.reserve(n);
  attempts_.reserve(n);
  disposition_.reserve(n);
  workflow_root_.reserve(n);
  stage_.reserve(n);
}

void Collector::reset(const workload::FunctionCatalog& catalog) {
  catalog_ = &catalog;
  id_.clear();
  function_.clear();
  node_.clear();
  release_.clear();
  received_.clear();
  exec_start_.clear();
  exec_end_.clear();
  completion_.clear();
  service_.clear();
  start_kind_.clear();
  attempts_.clear();
  disposition_.clear();
  workflow_root_.clear();
  stage_.clear();
  // Keep the per-function buckets themselves (and their capacity); only
  // their contents belong to the finished run.
  for (auto& bucket : by_function_) bucket.clear();
  max_completion_ = 0.0;
  ok_ = shed_ = dropped_ = 0;
  cold_ = prewarm_ = warm_ = 0;
  resubmitted_calls_ = 0;
  resubmissions_ = 0;
  workflows_.clear();
}

CallRecord Collector::record(std::size_t i) const {
  WHISK_CHECK(i < completion_.size(), "record index out of range");
  CallRecord out;
  out.id = id_[i];
  out.function = function_[i];
  out.node = node_[i];
  out.release = release_[i];
  out.received = received_[i];
  out.exec_start = exec_start_[i];
  out.exec_end = exec_end_[i];
  out.completion = completion_[i];
  out.service = service_[i];
  out.start_kind = start_kind_[i];
  out.attempts = attempts_[i];
  out.disposition = disposition_[i];
  out.workflow = workflow_root_[i];
  out.stage = stage_[i];
  return out;
}

std::vector<CallRecord> Collector::records() const {
  std::vector<CallRecord> out;
  out.reserve(completion_.size());
  for (std::size_t i = 0; i < completion_.size(); ++i) {
    out.push_back(record(i));
  }
  return out;
}

std::vector<double> Collector::response_times() const {
  std::vector<double> out;
  out.reserve(ok_);
  for (std::size_t i = 0; i < completion_.size(); ++i) {
    if (disposition_[i] == Disposition::kOk) {
      out.push_back(completion_[i] - release_[i]);
    }
  }
  return out;
}

std::vector<double> Collector::stretches() const {
  std::vector<double> out;
  out.reserve(ok_);
  for (std::size_t i = 0; i < completion_.size(); ++i) {
    if (disposition_[i] != Disposition::kOk) continue;
    out.push_back((completion_[i] - release_[i]) /
                  catalog_->reference_median(function_[i]));
  }
  return out;
}

const std::vector<std::uint32_t>* Collector::bucket(
    workload::FunctionId f) const {
  if (f < 0 || static_cast<std::size_t>(f) >= by_function_.size()) {
    return nullptr;
  }
  return &by_function_[static_cast<std::size_t>(f)];
}

std::vector<double> Collector::response_times_of(
    workload::FunctionId f) const {
  std::vector<double> out;
  const auto* idx = bucket(f);
  if (idx == nullptr) return out;
  out.reserve(idx->size());
  for (std::uint32_t i : *idx) out.push_back(completion_[i] - release_[i]);
  return out;
}

std::vector<double> Collector::stretches_of(workload::FunctionId f) const {
  std::vector<double> out;
  const auto* idx = bucket(f);
  if (idx == nullptr) return out;
  out.reserve(idx->size());
  const double ref = catalog_->reference_median(f);
  for (std::uint32_t i : *idx) {
    out.push_back((completion_[i] - release_[i]) / ref);
  }
  return out;
}

util::Summary Collector::response_summary() const {
  const auto rs = response_times();
  return util::summarize(rs);
}

util::Summary Collector::stretch_summary() const {
  const auto ss = stretches();
  return util::summarize(ss);
}

std::size_t Collector::calls_of(workload::FunctionId f) const {
  const auto* idx = bucket(f);
  return idx == nullptr ? 0 : idx->size();
}

void Collector::add_workflow(const WorkflowRecord& record) {
  WHISK_CHECK(record.stages >= 1, "workflow record with no stages");
  WHISK_CHECK(record.ok + record.shed + record.dropped == record.stages,
              "workflow record dispositions do not partition its stages");
  WHISK_CHECK(record.finish >= record.start,
              "workflow finishes before it starts");
  WHISK_CHECK(record.critical_path_s >= 0.0,
              "workflow with a negative critical path");
  // The critical path sums execution intervals along one released chain;
  // every link also paid queueing and network time, so e2e dominates it
  // (tiny epsilon for the float summation).
  WHISK_CHECK(record.critical_path_s <= record.e2e() + 1e-9,
              "workflow critical path exceeds its end-to-end latency");
  workflows_.push_back(record);
}

std::vector<double> Collector::workflow_e2e() const {
  std::vector<double> out;
  out.reserve(workflows_.size());
  for (const auto& w : workflows_) out.push_back(w.e2e());
  return out;
}

double Collector::workflow_e2e_p99() const {
  if (workflows_.empty()) return 0.0;
  const auto e2e = workflow_e2e();
  return util::percentile(e2e, 99.0);
}

double Collector::workflow_critical_path_mean() const {
  if (workflows_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& w : workflows_) total += w.critical_path_s;
  return total / static_cast<double>(workflows_.size());
}

double Collector::workflow_slack_mean() const {
  if (workflows_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& w : workflows_) total += w.slack();
  return total / static_cast<double>(workflows_.size());
}

std::vector<double> concat(const std::vector<std::vector<double>>& reps) {
  std::vector<double> out;
  std::size_t total = 0;
  for (const auto& r : reps) total += r.size();
  out.reserve(total);
  for (const auto& r : reps) out.insert(out.end(), r.begin(), r.end());
  return out;
}

}  // namespace whisk::metrics
