#include "metrics/collector.h"

#include <algorithm>

#include "util/check.h"

namespace whisk::metrics {

void Collector::add(const CallRecord& record) {
  WHISK_CHECK(record.completion >= record.release,
              "completion before release");
  WHISK_CHECK(record.exec_end >= record.exec_start,
              "execution ends before it starts");
  records_.push_back(record);
}

std::vector<double> Collector::response_times() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(r.response());
  return out;
}

std::vector<double> Collector::stretches() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) {
    out.push_back(r.response() / catalog_->reference_median(r.function));
  }
  return out;
}

std::vector<double> Collector::response_times_of(
    workload::FunctionId f) const {
  std::vector<double> out;
  for (const auto& r : records_) {
    if (r.function == f) out.push_back(r.response());
  }
  return out;
}

std::vector<double> Collector::stretches_of(workload::FunctionId f) const {
  std::vector<double> out;
  for (const auto& r : records_) {
    if (r.function == f) {
      out.push_back(r.response() / catalog_->reference_median(f));
    }
  }
  return out;
}

util::Summary Collector::response_summary() const {
  const auto rs = response_times();
  return util::summarize(rs);
}

util::Summary Collector::stretch_summary() const {
  const auto ss = stretches();
  return util::summarize(ss);
}

double Collector::max_completion() const {
  double m = 0.0;
  for (const auto& r : records_) m = std::max(m, r.completion);
  return m;
}

std::size_t Collector::cold_starts() const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(), [](const CallRecord& r) {
        return r.start_kind == StartKind::kCold;
      }));
}

std::size_t Collector::prewarm_starts() const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(), [](const CallRecord& r) {
        return r.start_kind == StartKind::kPrewarm;
      }));
}

std::size_t Collector::warm_starts() const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(), [](const CallRecord& r) {
        return r.start_kind == StartKind::kWarm;
      }));
}

std::size_t Collector::calls_of(workload::FunctionId f) const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [f](const CallRecord& r) { return r.function == f; }));
}

std::vector<double> concat(const std::vector<std::vector<double>>& reps) {
  std::vector<double> out;
  std::size_t total = 0;
  for (const auto& r : reps) total += r.size();
  out.reserve(total);
  for (const auto& r : reps) out.insert(out.end(), r.begin(), r.end());
  return out;
}

}  // namespace whisk::metrics
