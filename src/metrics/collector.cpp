#include "metrics/collector.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace whisk::metrics {

void Collector::add(const CallRecord& record) {
  WHISK_CHECK(record.completion >= record.release,
              "completion before release");
  WHISK_CHECK(record.exec_end >= record.exec_start,
              "execution ends before it starts");
  WHISK_CHECK(record.function >= 0, "record without a function id");
  WHISK_CHECK(record.attempts >= 1, "record with attempts < 1");
  WHISK_CHECK(records_.size() < std::numeric_limits<std::uint32_t>::max(),
              "per-run record index overflow");

  const auto position = static_cast<std::uint32_t>(records_.size());
  records_.push_back(record);

  if (record.attempts > 1) {
    ++resubmitted_calls_;
    resubmissions_ += static_cast<std::size_t>(record.attempts - 1);
  }
  if (record.disposition != Disposition::kOk) {
    // Shed/dropped calls never executed: an empty execution interval is the
    // invariant that keeps them out of every latency distribution below.
    WHISK_CHECK(record.exec_end == record.exec_start,
                "shed/dropped record claims an execution interval");
    if (record.disposition == Disposition::kShed) {
      ++shed_;
    } else {
      ++dropped_;
    }
    return;
  }

  ++ok_;
  const auto f = static_cast<std::size_t>(record.function);
  if (f >= by_function_.size()) by_function_.resize(f + 1);
  by_function_[f].push_back(position);

  max_completion_ = std::max(max_completion_, record.completion);
  switch (record.start_kind) {
    case StartKind::kCold:
      ++cold_;
      break;
    case StartKind::kPrewarm:
      ++prewarm_;
      break;
    case StartKind::kWarm:
      ++warm_;
      break;
  }
}

std::vector<double> Collector::response_times() const {
  std::vector<double> out;
  out.reserve(ok_);
  for (const auto& r : records_) {
    if (r.disposition == Disposition::kOk) out.push_back(r.response());
  }
  return out;
}

std::vector<double> Collector::stretches() const {
  std::vector<double> out;
  out.reserve(ok_);
  for (const auto& r : records_) {
    if (r.disposition != Disposition::kOk) continue;
    out.push_back(r.response() / catalog_->reference_median(r.function));
  }
  return out;
}

const std::vector<std::uint32_t>* Collector::bucket(
    workload::FunctionId f) const {
  if (f < 0 || static_cast<std::size_t>(f) >= by_function_.size()) {
    return nullptr;
  }
  return &by_function_[static_cast<std::size_t>(f)];
}

std::vector<double> Collector::response_times_of(
    workload::FunctionId f) const {
  std::vector<double> out;
  const auto* idx = bucket(f);
  if (idx == nullptr) return out;
  out.reserve(idx->size());
  for (std::uint32_t i : *idx) out.push_back(records_[i].response());
  return out;
}

std::vector<double> Collector::stretches_of(workload::FunctionId f) const {
  std::vector<double> out;
  const auto* idx = bucket(f);
  if (idx == nullptr) return out;
  out.reserve(idx->size());
  const double ref = catalog_->reference_median(f);
  for (std::uint32_t i : *idx) out.push_back(records_[i].response() / ref);
  return out;
}

util::Summary Collector::response_summary() const {
  const auto rs = response_times();
  return util::summarize(rs);
}

util::Summary Collector::stretch_summary() const {
  const auto ss = stretches();
  return util::summarize(ss);
}

std::size_t Collector::calls_of(workload::FunctionId f) const {
  const auto* idx = bucket(f);
  return idx == nullptr ? 0 : idx->size();
}

void Collector::add_workflow(const WorkflowRecord& record) {
  WHISK_CHECK(record.stages >= 1, "workflow record with no stages");
  WHISK_CHECK(record.ok + record.shed + record.dropped == record.stages,
              "workflow record dispositions do not partition its stages");
  WHISK_CHECK(record.finish >= record.start,
              "workflow finishes before it starts");
  WHISK_CHECK(record.critical_path_s >= 0.0,
              "workflow with a negative critical path");
  // The critical path sums execution intervals along one released chain;
  // every link also paid queueing and network time, so e2e dominates it
  // (tiny epsilon for the float summation).
  WHISK_CHECK(record.critical_path_s <= record.e2e() + 1e-9,
              "workflow critical path exceeds its end-to-end latency");
  workflows_.push_back(record);
}

std::vector<double> Collector::workflow_e2e() const {
  std::vector<double> out;
  out.reserve(workflows_.size());
  for (const auto& w : workflows_) out.push_back(w.e2e());
  return out;
}

double Collector::workflow_e2e_p99() const {
  if (workflows_.empty()) return 0.0;
  const auto e2e = workflow_e2e();
  return util::percentile(e2e, 99.0);
}

double Collector::workflow_critical_path_mean() const {
  if (workflows_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& w : workflows_) total += w.critical_path_s;
  return total / static_cast<double>(workflows_.size());
}

double Collector::workflow_slack_mean() const {
  if (workflows_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& w : workflows_) total += w.slack();
  return total / static_cast<double>(workflows_.size());
}

std::vector<double> concat(const std::vector<std::vector<double>>& reps) {
  std::vector<double> out;
  std::size_t total = 0;
  for (const auto& r : reps) total += r.size();
  out.reserve(total);
  for (const auto& r : reps) out.insert(out.end(), r.begin(), r.end());
  return out;
}

}  // namespace whisk::metrics
