#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "metrics/record.h"
#include "util/reservoir.h"
#include "util/stats.h"
#include "workload/function.h"

namespace whisk::metrics {

// One key/value pair describing the run to the sinks. `numeric` marks
// values that are numbers, so JSON emitters can write "seed":3 instead of
// "seed":"3" (matching cells_jsonl); CSV output is unaffected.
struct RunContextField {
  std::string key;
  std::string value;
  bool numeric = false;
};

// Identifies one run (e.g. a campaign cell) to the sinks: ordered fields
// like {"cell","7"}, {"scheduler","ours/sept"}, {"seed","3"}. File sinks
// render them as leading CSV columns / JSON fields; the key schema must be
// identical across every run of one pipeline.
struct RunContext {
  std::vector<RunContextField> fields;
};

// Escape a string for embedding in a JSON string literal (quotes,
// backslashes, control characters). Shared by every JSONL emitter — spec
// values are verbatim user input (trace file paths can hold anything).
[[nodiscard]] std::string json_escape(const std::string& value);

// One consumer of completed-call records. A run is a begin_run/on_record*/
// end_run bracket; sinks are fed strictly in run order (the campaign runner
// reorders parallel cells back into cell-index order before flushing), so a
// sink never needs locking.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void begin_run(const RunContext& ctx) { (void)ctx; }
  virtual void on_record(const CallRecord& record) = 0;
  virtual void end_run() {}
};

// Fan-out over an owned set of sinks — the composable replacement for
// "buffer everything in a Collector, query later": each record is offered
// to every sink once and can then be dropped.
class MetricsPipeline {
 public:
  // Returns a borrowed pointer for querying the sink after the run.
  Sink* add(std::unique_ptr<Sink> sink);

  template <typename T, typename... Args>
  T* emplace(Args&&... args) {
    auto sink = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = sink.get();
    add(std::move(sink));
    return raw;
  }

  void begin_run(const RunContext& ctx);
  void consume(const CallRecord& record);
  void end_run();

  [[nodiscard]] std::size_t size() const { return sinks_.size(); }

 private:
  std::vector<std::unique_ptr<Sink>> sinks_;
};

// --- full-record file sinks --------------------------------------------------

// Per-call CSV rows. With an empty RunContext the output is byte-identical
// to metrics::write_csv (the paper-pin format); context fields become
// leading columns. The header is written on the first begin_run.
class CsvSink final : public Sink {
 public:
  CsvSink(std::ostream& out, const workload::FunctionCatalog& catalog)
      : out_(&out), catalog_(&catalog) {}

  void begin_run(const RunContext& ctx) override;
  void on_record(const CallRecord& record) override;

 private:
  std::ostream* out_;
  const workload::FunctionCatalog* catalog_;
  std::string prefix_;  // rendered context columns for the current run
  bool header_written_ = false;
  std::vector<std::string> header_keys_;  // schema check across runs
};

// Per-call JSON Lines: one self-describing object per record, context
// fields inlined. The format downstream notebooks stream without caring
// about column order.
class JsonlSink final : public Sink {
 public:
  JsonlSink(std::ostream& out, const workload::FunctionCatalog& catalog)
      : out_(&out), catalog_(&catalog) {}

  void begin_run(const RunContext& ctx) override;
  void on_record(const CallRecord& record) override;

 private:
  std::ostream* out_;
  const workload::FunctionCatalog* catalog_;
  std::string prefix_;  // rendered context members for the current run
};

// --- bounded-memory summaries ------------------------------------------------

// StreamingStats (exact count/mean/min/max/stddev) plus a fixed-size
// reservoir for the order statistics — the bounded-memory stand-in for
// util::summarize over a retained sample. Exact while the stream fits the
// reservoir; beyond that the quantiles are estimates over a uniform
// subsample.
struct StreamingSummary {
  explicit StreamingSummary(std::size_t reservoir_capacity = 4096,
                            std::uint64_t seed = 0)
      : reservoir(reservoir_capacity, seed) {}

  void add(double x) {
    stats.add(x);
    reservoir.add(x);
  }

  // Deterministic fold (merge groups in cell order).
  void merge(const StreamingSummary& other) {
    stats.merge(other.stats);
    reservoir.merge(other.reservoir);
  }

  [[nodiscard]] bool exact() const { return reservoir.exact(); }
  [[nodiscard]] util::Summary summary() const;

  util::StreamingStats stats;
  util::Reservoir reservoir;
};

// Response-time and stretch summaries of everything that flows past,
// without retaining records. O(1) memory in the record count.
class StreamingSummarySink final : public Sink {
 public:
  explicit StreamingSummarySink(const workload::FunctionCatalog& catalog,
                                std::size_t reservoir_capacity = 4096)
      : catalog_(&catalog),
        response_(reservoir_capacity),
        stretch_(reservoir_capacity) {}

  void on_record(const CallRecord& record) override;

  [[nodiscard]] const StreamingSummary& response() const { return response_; }
  [[nodiscard]] const StreamingSummary& stretch() const { return stretch_; }
  [[nodiscard]] double max_completion() const { return max_completion_; }
  [[nodiscard]] std::size_t calls() const { return response_.stats.count(); }

 private:
  const workload::FunctionCatalog* catalog_;
  StreamingSummary response_;
  StreamingSummary stretch_;
  double max_completion_ = 0.0;
};

// Per-function streaming summaries, indexed by FunctionId for O(1) lookup —
// the pipeline's answer to the fairness experiment's per-function queries,
// with memory bounded by (functions x reservoir), not the call count.
class FunctionIndexSink final : public Sink {
 public:
  explicit FunctionIndexSink(const workload::FunctionCatalog& catalog,
                             std::size_t reservoir_capacity = 1024)
      : catalog_(&catalog), reservoir_capacity_(reservoir_capacity) {}

  void on_record(const CallRecord& record) override;

  [[nodiscard]] std::size_t calls_of(workload::FunctionId f) const;
  // nullptr when the function has no recorded call.
  [[nodiscard]] const StreamingSummary* response_of(
      workload::FunctionId f) const;
  [[nodiscard]] const StreamingSummary* stretch_of(
      workload::FunctionId f) const;

 private:
  struct PerFunction {
    StreamingSummary response;
    StreamingSummary stretch;
    explicit PerFunction(std::size_t cap) : response(cap), stretch(cap) {}
  };

  const workload::FunctionCatalog* catalog_;
  std::size_t reservoir_capacity_;
  // FunctionIds are dense catalog indices, so a plain vector is the index.
  std::vector<std::unique_ptr<PerFunction>> by_function_;
};

}  // namespace whisk::metrics
