#pragma once

#include <cstddef>
#include <vector>

#include "metrics/record.h"
#include "util/stats.h"
#include "workload/function.h"

namespace whisk::metrics {

// Collects completed-call records for one experiment run and derives the
// paper's metrics: response time R(i), stretch S(i) (w.r.t. the Table I
// idle-system medians), cold-start counts and the maximum completion time.
class Collector {
 public:
  explicit Collector(const workload::FunctionCatalog& catalog)
      : catalog_(&catalog) {}

  void add(const CallRecord& record);
  void reserve(std::size_t n) { records_.reserve(n); }

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::vector<CallRecord>& records() const {
    return records_;
  }

  // R(i) for every completed call, seconds.
  [[nodiscard]] std::vector<double> response_times() const;

  // S(i) = R(i) / reference_median(f(i)). Can be < 1 because the reference
  // is a client-side median, not the true processing time (Sec. V-A).
  [[nodiscard]] std::vector<double> stretches() const;

  // Metrics restricted to one function (for the fairness experiment and the
  // per-function discrimination check, Sec. II/VII-D).
  [[nodiscard]] std::vector<double> response_times_of(
      workload::FunctionId f) const;
  [[nodiscard]] std::vector<double> stretches_of(
      workload::FunctionId f) const;

  [[nodiscard]] util::Summary response_summary() const;
  [[nodiscard]] util::Summary stretch_summary() const;

  // max c(i): the request completion time of the whole burst (Table II).
  [[nodiscard]] double max_completion() const;

  [[nodiscard]] std::size_t cold_starts() const;
  [[nodiscard]] std::size_t prewarm_starts() const;
  [[nodiscard]] std::size_t warm_starts() const;

  [[nodiscard]] std::size_t calls_of(workload::FunctionId f) const;

 private:
  const workload::FunctionCatalog* catalog_;
  std::vector<CallRecord> records_;
};

// Merge the samples of several repetitions into one flat vector (the paper
// aggregates "all individual calls from all 5 sequences of calls").
[[nodiscard]] std::vector<double> concat(
    const std::vector<std::vector<double>>& reps);

}  // namespace whisk::metrics
