#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "metrics/record.h"
#include "util/stats.h"
#include "workload/function.h"

namespace whisk::metrics {

// Collects completed-call records for one experiment run and derives the
// paper's metrics: response time R(i), stretch S(i) (w.r.t. the Table I
// idle-system medians), cold-start counts and the maximum completion time.
//
// add() maintains a per-function index and the scalar aggregates, so the
// per-function queries and the counters are O(answer)/O(1) instead of a
// full-record scan per call (the fairness experiment queries them per
// function per repetition).
//
// Storage is struct-of-arrays: add() appends each CallRecord field to its
// own dense column. The metric scans (response_times, stretches) touch only
// the two or three columns they read instead of striding over 96-byte
// records, and a recycled collector (experiments::CellWorkspace) keeps
// every column's capacity across runs — with the reserve() hint Cluster
// plumbs from the scenario's expected call count, add() never allocates on
// the campaign steady state. Whole records are materialized on demand.
class Collector {
 public:
  // Recyclable empty shell (CellWorkspace parks storage in one between
  // runs); reset() must point it at a catalog before use.
  Collector() = default;
  explicit Collector(const workload::FunctionCatalog& catalog)
      : catalog_(&catalog) {}

  void add(const CallRecord& record);
  // Capacity hints — plumbed from the scenario's expected call count (and
  // expected workflow instances) by Cluster::run_scenario so the columns
  // never grow mid-run.
  void reserve(std::size_t n);
  void reserve_workflows(std::size_t n) { workflows_.reserve(n); }

  // Clear every container but keep its capacity, and re-point the catalog:
  // the workspace-reuse primitive (clear-not-free).
  void reset(const workload::FunctionCatalog& catalog);

  // Every resolved call — completed, shed or dropped. The latency metrics
  // below cover only ok records; shed/dropped calls have no meaningful
  // response time and would poison the distributions.
  [[nodiscard]] std::size_t size() const { return completion_.size(); }

  // Record i reassembled from the columns.
  [[nodiscard]] CallRecord record(std::size_t i) const;
  // All records, insertion order, in one exact-sized allocation.
  [[nodiscard]] std::vector<CallRecord> records() const;

  [[nodiscard]] std::size_t ok_calls() const { return ok_; }
  [[nodiscard]] std::size_t shed_calls() const { return shed_; }
  [[nodiscard]] std::size_t dropped_calls() const { return dropped_; }

  // R(i) for every completed call, seconds.
  [[nodiscard]] std::vector<double> response_times() const;

  // S(i) = R(i) / reference_median(f(i)). Can be < 1 because the reference
  // is a client-side median, not the true processing time (Sec. V-A).
  [[nodiscard]] std::vector<double> stretches() const;

  // Metrics restricted to one function (for the fairness experiment and the
  // per-function discrimination check, Sec. II/VII-D). Values come back in
  // insertion order, exactly as the pre-index full scans returned them.
  [[nodiscard]] std::vector<double> response_times_of(
      workload::FunctionId f) const;
  [[nodiscard]] std::vector<double> stretches_of(
      workload::FunctionId f) const;

  [[nodiscard]] util::Summary response_summary() const;
  [[nodiscard]] util::Summary stretch_summary() const;

  // max c(i): the request completion time of the whole burst (Table II).
  [[nodiscard]] double max_completion() const { return max_completion_; }

  [[nodiscard]] std::size_t cold_starts() const { return cold_; }
  [[nodiscard]] std::size_t prewarm_starts() const { return prewarm_; }
  [[nodiscard]] std::size_t warm_starts() const { return warm_; }

  // Failure accounting (node fail lifecycle events): completed calls that
  // needed more than one submission, and the total extra submissions.
  [[nodiscard]] std::size_t resubmitted_calls() const {
    return resubmitted_calls_;
  }
  [[nodiscard]] std::size_t resubmissions() const { return resubmissions_; }

  [[nodiscard]] std::size_t calls_of(workload::FunctionId f) const;

  // Workflow-level accounting (clusters running a workflow DAG; empty
  // otherwise). add_workflow enforces the instance invariants loudly:
  // ok/shed/dropped partition the stage count, finish >= start, and the
  // end-to-end latency dominates the realized critical path.
  void add_workflow(const WorkflowRecord& record);
  [[nodiscard]] const std::vector<WorkflowRecord>& workflows() const {
    return workflows_;
  }
  // End-to-end latency of every workflow instance, insertion order.
  [[nodiscard]] std::vector<double> workflow_e2e() const;
  [[nodiscard]] double workflow_e2e_p99() const;
  // Mean realized critical path / mean slack (e2e minus critical path)
  // over all instances; 0 with no workflows.
  [[nodiscard]] double workflow_critical_path_mean() const;
  [[nodiscard]] double workflow_slack_mean() const;

 private:
  [[nodiscard]] const std::vector<std::uint32_t>* bucket(
      workload::FunctionId f) const;

  const workload::FunctionCatalog* catalog_ = nullptr;

  // Column store, index-aligned: entry i of every column is record i.
  std::vector<workload::CallId> id_;
  std::vector<workload::FunctionId> function_;
  std::vector<int> node_;
  std::vector<sim::SimTime> release_;
  std::vector<sim::SimTime> received_;
  std::vector<sim::SimTime> exec_start_;
  std::vector<sim::SimTime> exec_end_;
  std::vector<sim::SimTime> completion_;
  std::vector<sim::SimTime> service_;
  std::vector<StartKind> start_kind_;
  std::vector<int> attempts_;
  std::vector<Disposition> disposition_;
  std::vector<workload::CallId> workflow_root_;
  std::vector<int> stage_;

  // Record positions per function, ok records only; FunctionIds are dense
  // catalog indices.
  std::vector<std::vector<std::uint32_t>> by_function_;
  double max_completion_ = 0.0;
  std::size_t ok_ = 0;
  std::size_t shed_ = 0;
  std::size_t dropped_ = 0;
  std::size_t cold_ = 0;
  std::size_t prewarm_ = 0;
  std::size_t warm_ = 0;
  std::size_t resubmitted_calls_ = 0;
  std::size_t resubmissions_ = 0;
  std::vector<WorkflowRecord> workflows_;
};

// Merge the samples of several repetitions into one flat vector (the paper
// aggregates "all individual calls from all 5 sequences of calls").
[[nodiscard]] std::vector<double> concat(
    const std::vector<std::vector<double>>& reps);

}  // namespace whisk::metrics
