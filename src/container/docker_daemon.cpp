#include "container/docker_daemon.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace whisk::container {

DockerDaemon::DockerDaemon(sim::Engine& engine) : engine_(&engine) {}

void DockerDaemon::submit(sim::SimTime base_duration, Callback done,
                          bool urgent) {
  WHISK_CHECK(base_duration >= 0.0, "negative op duration");
  WHISK_CHECK(static_cast<bool>(done), "null op callback");
  auto& q = urgent ? urgent_queue_ : queue_;
  q.push_back(Op{base_duration, std::move(done), engine_->now()});
  max_queue_length_ = std::max(max_queue_length_, queue_length());
  if (!busy_) start_next();
}

void DockerDaemon::start_next() {
  auto& q = !urgent_queue_.empty() ? urgent_queue_ : queue_;
  if (q.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Op op = std::move(q.front());
  q.pop_front();

  const sim::SimTime waited = engine_->now() - op.enqueued;
  queue_wait_seconds_ += waited;
  max_queue_wait_seconds_ = std::max(max_queue_wait_seconds_, waited);

  double factor = 1.0;
  if (load_factor_) factor = std::max(1.0, load_factor_());
  const sim::SimTime duration = op.base_duration * factor;
  busy_seconds_ += duration;

  inflight_ = std::move(op.done);
  engine_->schedule_in(duration, [this] { finish_inflight(); });
}

void DockerDaemon::finish_inflight() {
  ++ops_completed_;
  Callback done = std::move(inflight_);
  // Run the completion first so it can enqueue follow-up ops that then
  // start immediately in submission order.
  done();
  start_next();
}

}  // namespace whisk::container
