#include "container/keep_alive.h"

#include <limits>
#include <mutex>

#include "util/check.h"
#include "util/parse.h"

namespace whisk::container {
namespace {

// Declared parameters per canonical policy name. Cached so normalized()
// does not construct a probe instance on every call (registrations are
// append-only, so a cached entry never goes stale). Mutex-guarded: specs
// are normalized from campaign worker threads too, and map node addresses
// are stable, so the returned reference outlives the lock safely.
const std::vector<KeepAliveParam>& declared_params(const std::string& canon) {
  static auto* mutex = new std::mutex();
  static auto* cache =
      new std::map<std::string, std::vector<KeepAliveParam>>();
  std::lock_guard<std::mutex> lock(*mutex);
  auto it = cache->find(canon);
  if (it == cache->end()) {
    const auto probe = KeepAlivePolicyRegistry::instance().create(
        canon, KeepAliveSpec{canon, {}});
    it = cache->emplace(canon, probe->params()).first;
  }
  return it->second;
}

// Lowercase, duplicate-check and declared-key-validate `params` for the
// canonical policy `canon` — the shared half of normalized() and
// make_keep_alive() (parameter *values* are validated by constructing the
// policy).
std::map<std::string, std::string> fold_params(
    const std::string& canon,
    const std::map<std::string, std::string>& params) {
  const auto& valid = declared_params(canon);
  std::map<std::string, std::string> out;
  for (const auto& [raw_key, value] : params) {
    const std::string key = util::ascii_lower(raw_key);
    WHISK_CHECK(out.count(key) == 0, ("keep-alive policy \"" + canon +
                                      "\" sets parameter \"" + key +
                                      "\" twice")
                                         .c_str());
    bool known = false;
    for (const auto& p : valid) {
      if (p.name == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::vector<std::string> names;
      names.reserve(valid.size());
      for (const auto& p : valid) names.push_back(p.name);
      WHISK_CHECK(false,
                  ("keep-alive policy \"" + canon +
                   "\" does not take parameter \"" + raw_key +
                   "\"; valid parameters: " +
                   (names.empty() ? "(none)" : util::join(names)))
                      .c_str());
    }
    out[key] = value;
  }
  return out;
}

}  // namespace

KeepAliveSpec KeepAliveSpec::parse(std::string_view text) {
  WHISK_CHECK(!text.empty(),
              "empty keep-alive spec; expected \"name[?key=value[&...]]\" "
              "like \"ttl?idle-s=600\"");
  KeepAliveSpec spec;
  const std::size_t q = text.find('?');
  spec.name = std::string(text.substr(0, q));
  WHISK_CHECK(!spec.name.empty(),
              ("keep-alive spec \"" + std::string(text) +
               "\" has an empty name before the '?'")
                  .c_str());
  if (q != std::string_view::npos) {
    util::parse_param_list(text.substr(q + 1),
                           "keep-alive spec \"" + std::string(text) + "\"",
                           &spec.params);
  }
  return spec.normalized();
}

std::string KeepAliveSpec::to_string() const {
  return util::render_params(name, params);
}

KeepAliveSpec KeepAliveSpec::normalized() const {
  auto& registry = KeepAlivePolicyRegistry::instance();
  KeepAliveSpec out;
  out.name = registry.resolve(name);
  out.params = fold_params(out.name, params);
  // Constructing the policy validates the parameter *values* too, so a bad
  // value dies at parse time, not mid-sweep.
  (void)registry.create(out.name, out);
  return out;
}

bool KeepAliveSpec::has(std::string_view key) const {
  return params.count(util::ascii_lower(key)) != 0;
}

double KeepAliveSpec::number(std::string_view key, double fallback) const {
  const auto it = params.find(util::ascii_lower(key));
  if (it == params.end()) return fallback;
  double value = 0.0;
  if (!util::parse_finite_double(it->second, &value)) {
    WHISK_CHECK(false, ("keep-alive policy \"" + name + "\" parameter " +
                        std::string(key) + "=\"" + it->second +
                        "\" is not a finite number")
                           .c_str());
  }
  return value;
}

std::size_t KeepAliveSpec::count(std::string_view key,
                                 std::size_t fallback) const {
  const auto it = params.find(util::ascii_lower(key));
  if (it == params.end()) return fallback;
  unsigned long long value = 0;
  if (!util::parse_whole_number(it->second, &value)) {
    WHISK_CHECK(false, ("keep-alive policy \"" + name + "\" parameter " +
                        std::string(key) + "=\"" + it->second +
                        "\" is not a whole number >= 0")
                           .c_str());
  }
  return static_cast<std::size_t>(value);
}

namespace {

// Least-recently-used among the candidates satisfying `pred`:
// strict-minimum scan in presentation order, first candidate winning ties
// — exactly the rule the pool hardcoded before the registry existed (the
// paper-pinned behaviour). Returns the candidate count of
// std::span::size() when nothing satisfies the predicate.
template <typename Pred>
std::size_t lru_scan_where(std::span<const IdleCandidate> candidates,
                           Pred pred) {
  std::size_t best = candidates.size();
  sim::SimTime oldest = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!pred(candidates[i])) continue;
    if (best == candidates.size() || candidates[i].last_used < oldest) {
      best = i;
      oldest = candidates[i].last_used;
    }
  }
  return best;
}

std::size_t lru_scan(std::span<const IdleCandidate> candidates) {
  return lru_scan_where(candidates, [](const IdleCandidate&) { return true; });
}

// The stock rule: keep everything until memory pressure, then evict the
// least recently used idle container first.
class LruKeepAlive final : public KeepAlivePolicy {
 public:
  std::string_view name() const override { return "lru"; }
  std::size_t victim(std::span<const IdleCandidate> candidates) override {
    return lru_scan(candidates);
  }
};

// Fixed keep-alive (OpenWhisk-style TTL): an idle container is reclaimed
// once it has sat unused for `idle-s` seconds, cold-starting the next call
// of its function; pressure evictions still go oldest-first.
class TtlKeepAlive final : public KeepAlivePolicy {
 public:
  explicit TtlKeepAlive(const KeepAliveSpec& spec)
      : idle_s_(spec.number("idle-s", 600.0)) {
    WHISK_CHECK(idle_s_ > 0.0, ("keep-alive policy \"ttl\": idle-s = " +
                                std::to_string(idle_s_) + " must be > 0")
                                   .c_str());
  }

  std::string_view name() const override { return "ttl"; }
  std::vector<KeepAliveParam> params() const override {
    return {{"idle-s", "600",
             "seconds an idle container survives before reclamation"}};
  }
  std::size_t victim(std::span<const IdleCandidate> candidates) override {
    return lru_scan(candidates);
  }
  bool may_expire() const override { return true; }
  double min_idle_s() const override { return idle_s_; }
  bool expired(const IdleCandidate& candidate,
               sim::SimTime now) const override {
    return now - candidate.last_used > idle_s_;
  }

 private:
  double idle_s_;
};

// Prewarm floor: keep at least `floor` idle containers per function warm.
// Pressure evictions pick the LRU container among functions above their
// floor; when every candidate is at or below the floor the floor goes soft
// and plain LRU applies (a hard floor could deadlock a fully-pinned pool).
class PoolTargetKeepAlive final : public KeepAlivePolicy {
 public:
  explicit PoolTargetKeepAlive(const KeepAliveSpec& spec)
      : floor_(spec.count("floor", 1)) {}

  std::string_view name() const override { return "pool-target"; }
  std::vector<KeepAliveParam> params() const override {
    return {{"floor", "1",
             "idle containers per function shielded from eviction"}};
  }
  std::size_t victim(std::span<const IdleCandidate> candidates) override {
    const std::size_t above_floor =
        lru_scan_where(candidates, [this](const IdleCandidate& c) {
          return c.idle_of_function > floor_;
        });
    return above_floor < candidates.size() ? above_floor
                                           : lru_scan(candidates);
  }

 private:
  std::size_t floor_;
};

void register_builtin_keep_alive(KeepAlivePolicyRegistry& registry) {
  registry.register_factory("lru", [](const KeepAliveSpec&) {
    return std::make_unique<LruKeepAlive>();
  });
  registry.register_factory("ttl", [](const KeepAliveSpec& spec) {
    return std::make_unique<TtlKeepAlive>(spec);
  });
  registry.register_factory("pool-target", [](const KeepAliveSpec& spec) {
    return std::make_unique<PoolTargetKeepAlive>(spec);
  });
  registry.register_alias("fixed", "ttl");
}

}  // namespace

KeepAlivePolicyRegistry& KeepAlivePolicyRegistry::instance() {
  static KeepAlivePolicyRegistry* registry = [] {
    auto* r = new KeepAlivePolicyRegistry();
    register_builtin_keep_alive(*r);
    return r;
  }();
  return *registry;
}

std::unique_ptr<KeepAlivePolicy> make_keep_alive(const KeepAliveSpec& spec) {
  // Same canonicalization and key validation as normalized(), but without
  // its throwaway validation instance: the returned construction validates
  // the parameter values itself. One policy object per call — this runs
  // once per node per campaign cell.
  auto& registry = KeepAlivePolicyRegistry::instance();
  KeepAliveSpec normalized;
  normalized.name = registry.resolve(spec.name);
  normalized.params = fold_params(normalized.name, spec.params);
  return registry.create(normalized.name, normalized);
}

}  // namespace whisk::container
