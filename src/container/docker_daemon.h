#pragma once

#include <cstddef>
#include <deque>
#include <functional>

#include "sim/engine.h"
#include "sim/event_fn.h"
#include "sim/time.h"

namespace whisk::container {

// The node's serialized container-management station.
//
// Docker daemon operations (create/start/pause/update) and the invoker's
// per-activation bookkeeping execute one at a time. This station is the
// hidden bottleneck behind the paper's observation that "managing [the]
// container executing the function [may require] more time, on average per
// call, than executing the function itself" (Sec. V-B), and behind the
// baseline's meltdown when cold-start storms flood the daemon (Sec. VI:
// "Docker had problems running them").
//
// Callers sample the base duration of each op themselves (so different op
// kinds can use different distributions); the daemon stretches it by a
// caller-provided load factor evaluated when the op actually starts, which
// models dockerd slowing down as it juggles more live containers.
class DockerDaemon {
 public:
  // Completion callbacks ride the engine's SBO callable so the per-op
  // dispatch cycle allocates nothing for small captures and accepts
  // move-only lambdas.
  using Callback = sim::EventFn;
  using LoadFactorFn = std::function<double()>;

  explicit DockerDaemon(sim::Engine& engine);

  DockerDaemon(const DockerDaemon&) = delete;
  DockerDaemon& operator=(const DockerDaemon&) = delete;

  // Install a function returning the current op-duration multiplier
  // (>= 1.0). Default: no strain (factor 1.0).
  void set_load_factor(LoadFactorFn fn) { load_factor_ = std::move(fn); }

  // Enqueue an operation with the given base duration; `done` fires when it
  // finishes. Ops run in submission order within a class; `urgent` ops
  // (dispatch path) run before any queued normal ops (background
  // result/log processing) but never preempt the op in progress.
  void submit(sim::SimTime base_duration, Callback done, bool urgent = false);

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::size_t queue_length() const {
    return urgent_queue_.size() + queue_.size();
  }

  // Telemetry.
  [[nodiscard]] std::size_t ops_completed() const { return ops_completed_; }
  [[nodiscard]] double busy_seconds() const { return busy_seconds_; }
  [[nodiscard]] std::size_t max_queue_length() const {
    return max_queue_length_;
  }
  // How long ops sat queued behind the op in progress before starting —
  // the direct measure of daemon contention (busy_seconds says how much
  // work the station did; queue wait says how much everything else paid
  // for it). Sum over all started ops, and the single worst wait.
  [[nodiscard]] double queue_wait_seconds() const {
    return queue_wait_seconds_;
  }
  [[nodiscard]] double max_queue_wait_seconds() const {
    return max_queue_wait_seconds_;
  }

 private:
  struct Op {
    sim::SimTime base_duration;
    Callback done;
    sim::SimTime enqueued = 0.0;
  };

  void start_next();
  void finish_inflight();

  sim::Engine* engine_;
  LoadFactorFn load_factor_;
  std::deque<Op> urgent_queue_;
  std::deque<Op> queue_;
  // Completion of the single op in progress. Held here (not captured in the
  // engine lambda) so the scheduled callback is just `this` — inline in the
  // event slot, no allocation per op.
  Callback inflight_;
  bool busy_ = false;

  std::size_t ops_completed_ = 0;
  double busy_seconds_ = 0.0;
  std::size_t max_queue_length_ = 0;
  double queue_wait_seconds_ = 0.0;
  double max_queue_wait_seconds_ = 0.0;
};

}  // namespace whisk::container
