#include "container/pool.h"

#include <algorithm>

#include "util/check.h"

namespace whisk::container {

ContainerPool::ContainerPool(double memory_limit_mb)
    : memory_limit_mb_(memory_limit_mb) {
  WHISK_CHECK(memory_limit_mb > 0.0, "non-positive memory pool");
}

ContainerInfo& ContainerPool::mutable_info(ContainerId id) {
  auto it = containers_.find(id);
  WHISK_CHECK(it != containers_.end(), "unknown container id");
  return it->second;
}

const ContainerInfo& ContainerPool::info(ContainerId id) const {
  auto it = containers_.find(id);
  WHISK_CHECK(it != containers_.end(), "unknown container id");
  return it->second;
}

void ContainerPool::count_state(ContainerState s, int delta) {
  auto apply = [delta](std::size_t& counter) {
    if (delta > 0) {
      counter += static_cast<std::size_t>(delta);
    } else {
      WHISK_CHECK(counter >= static_cast<std::size_t>(-delta),
                  "state counter underflow");
      counter -= static_cast<std::size_t>(-delta);
    }
  };
  switch (s) {
    case ContainerState::kCreating:
      apply(creating_count_);
      break;
    case ContainerState::kPrewarm:
      apply(prewarm_count_);
      break;
    case ContainerState::kIdle:
      apply(idle_count_);
      break;
    case ContainerState::kBusy:
      apply(busy_count_);
      break;
  }
}

std::optional<ContainerId> ContainerPool::acquire_warm(
    workload::FunctionId fn) {
  auto it = idle_.find(fn);
  if (it == idle_.end() || it->second.empty()) return std::nullopt;
  // Most recently used first: keeps the working set hot and leaves the
  // stalest containers as eviction candidates.
  const ContainerId id = it->second.back();
  it->second.pop_back();
  ContainerInfo& c = mutable_info(id);
  count_state(c.state, -1);
  c.state = ContainerState::kBusy;
  count_state(c.state, +1);
  return id;
}

std::optional<ContainerId> ContainerPool::acquire_prewarm() {
  if (prewarm_.empty()) return std::nullopt;
  const ContainerId id = prewarm_.back();
  prewarm_.pop_back();
  ContainerInfo& c = mutable_info(id);
  count_state(c.state, -1);
  c.state = ContainerState::kBusy;
  count_state(c.state, +1);
  return id;
}

std::optional<ContainerId> ContainerPool::begin_creation(double memory_mb) {
  WHISK_CHECK(memory_mb > 0.0, "non-positive container memory");
  if (memory_used_mb_ + memory_mb > memory_limit_mb_) return std::nullopt;
  const ContainerId id = next_id_++;
  ContainerInfo c;
  c.id = id;
  c.memory_mb = memory_mb;
  c.state = ContainerState::kCreating;
  containers_.emplace(id, c);
  memory_used_mb_ += memory_mb;
  count_state(ContainerState::kCreating, +1);
  ++creations_;
  return id;
}

void ContainerPool::finish_creation_busy(ContainerId id,
                                         workload::FunctionId fn) {
  ContainerInfo& c = mutable_info(id);
  WHISK_CHECK(c.state == ContainerState::kCreating,
              "finish_creation on a non-creating container");
  count_state(c.state, -1);
  c.state = ContainerState::kBusy;
  c.function = fn;
  count_state(c.state, +1);
}

void ContainerPool::finish_creation_prewarm(ContainerId id) {
  ContainerInfo& c = mutable_info(id);
  WHISK_CHECK(c.state == ContainerState::kCreating,
              "finish_creation on a non-creating container");
  count_state(c.state, -1);
  c.state = ContainerState::kPrewarm;
  count_state(c.state, +1);
  prewarm_.push_back(id);
}

void ContainerPool::cancel_creation(ContainerId id) {
  const ContainerInfo& c = info(id);
  WHISK_CHECK(c.state == ContainerState::kCreating,
              "cancel_creation on a non-creating container");
  destroy(id);
}

void ContainerPool::assign_function(ContainerId id, workload::FunctionId fn) {
  ContainerInfo& c = mutable_info(id);
  WHISK_CHECK(c.state == ContainerState::kBusy,
              "assign_function expects a busy (prewarm-origin) container");
  c.function = fn;
}

void ContainerPool::release(ContainerId id, sim::SimTime now) {
  ContainerInfo& c = mutable_info(id);
  WHISK_CHECK(c.state == ContainerState::kBusy,
              "release on a container that is not busy");
  WHISK_CHECK(c.function != workload::kInvalidFunction,
              "released container has no function");
  count_state(c.state, -1);
  c.state = ContainerState::kIdle;
  c.last_used = now;
  count_state(c.state, +1);
  idle_[c.function].push_back(id);
}

std::size_t ContainerPool::evict_idle_until_free(double memory_mb) {
  std::size_t evicted = 0;
  while (memory_free_mb() < memory_mb && idle_count_ > 0) {
    // Find the least recently used idle container across all functions.
    ContainerId victim = kInvalidContainer;
    sim::SimTime oldest = 0.0;
    for (const auto& [fn, list] : idle_) {
      for (const ContainerId id : list) {
        const ContainerInfo& c = info(id);
        if (victim == kInvalidContainer || c.last_used < oldest) {
          victim = id;
          oldest = c.last_used;
        }
      }
    }
    WHISK_CHECK(victim != kInvalidContainer, "idle_count_ out of sync");
    destroy(victim);
    ++evicted;
    ++evictions_;
  }
  return evicted;
}

void ContainerPool::destroy(ContainerId id) {
  auto it = containers_.find(id);
  WHISK_CHECK(it != containers_.end(), "destroy of unknown container");
  const ContainerInfo& c = it->second;
  WHISK_CHECK(c.state != ContainerState::kBusy,
              "cannot destroy a busy container");
  if (c.state == ContainerState::kIdle) {
    auto& list = idle_[c.function];
    list.erase(std::remove(list.begin(), list.end(), id), list.end());
  } else if (c.state == ContainerState::kPrewarm) {
    prewarm_.erase(std::remove(prewarm_.begin(), prewarm_.end(), id),
                   prewarm_.end());
  }
  count_state(c.state, -1);
  memory_used_mb_ -= c.memory_mb;
  WHISK_CHECK(memory_used_mb_ > -1e-6, "memory accounting underflow");
  memory_used_mb_ = std::max(0.0, memory_used_mb_);
  containers_.erase(it);
}

double ContainerPool::memory_reclaimable_mb() const {
  double reclaimable = memory_free_mb();
  for (const auto& [fn, list] : idle_) {
    for (const ContainerId id : list) {
      reclaimable += info(id).memory_mb;
    }
  }
  return reclaimable;
}

std::size_t ContainerPool::idle_count_of(workload::FunctionId fn) const {
  auto it = idle_.find(fn);
  return it == idle_.end() ? 0 : it->second.size();
}

}  // namespace whisk::container
