#include "container/pool.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace whisk::container {

ContainerPool::ContainerPool(double memory_limit_mb,
                             std::unique_ptr<KeepAlivePolicy> policy)
    : policy_(policy != nullptr ? std::move(policy)
                                : make_keep_alive(KeepAliveSpec{})),
      memory_limit_mb_(memory_limit_mb) {
  WHISK_CHECK(memory_limit_mb > 0.0, "non-positive memory pool");
}

ContainerInfo& ContainerPool::mutable_info(ContainerId id) {
  auto it = containers_.find(id);
  WHISK_CHECK(it != containers_.end(), "unknown container id");
  return it->second;
}

const ContainerInfo& ContainerPool::info(ContainerId id) const {
  auto it = containers_.find(id);
  WHISK_CHECK(it != containers_.end(), "unknown container id");
  return it->second;
}

void ContainerPool::count_state(ContainerState s, int delta) {
  auto apply = [delta](std::size_t& counter) {
    if (delta > 0) {
      counter += static_cast<std::size_t>(delta);
    } else {
      WHISK_CHECK(counter >= static_cast<std::size_t>(-delta),
                  "state counter underflow");
      counter -= static_cast<std::size_t>(-delta);
    }
  };
  switch (s) {
    case ContainerState::kCreating:
      apply(creating_count_);
      break;
    case ContainerState::kPrewarm:
      apply(prewarm_count_);
      break;
    case ContainerState::kIdle:
      apply(idle_count_);
      break;
    case ContainerState::kBusy:
      apply(busy_count_);
      break;
  }
}

std::optional<ContainerId> ContainerPool::acquire_warm(
    workload::FunctionId fn) {
  auto it = idle_.find(fn);
  if (it == idle_.end() || it->second.empty()) return std::nullopt;
  // Most recently used first: keeps the working set hot and leaves the
  // stalest containers as eviction candidates.
  const ContainerId id = it->second.back();
  it->second.pop_back();
  ContainerInfo& c = mutable_info(id);
  count_state(c.state, -1);
  c.state = ContainerState::kBusy;
  count_state(c.state, +1);
  return id;
}

std::optional<ContainerId> ContainerPool::acquire_prewarm() {
  if (prewarm_.empty()) return std::nullopt;
  const ContainerId id = prewarm_.back();
  prewarm_.pop_back();
  ContainerInfo& c = mutable_info(id);
  count_state(c.state, -1);
  c.state = ContainerState::kBusy;
  count_state(c.state, +1);
  return id;
}

std::optional<ContainerId> ContainerPool::begin_creation(double memory_mb) {
  WHISK_CHECK(memory_mb > 0.0, "non-positive container memory");
  if (memory_used_mb_ + memory_mb > memory_limit_mb_) return std::nullopt;
  const ContainerId id = next_id_++;
  ContainerInfo c;
  c.id = id;
  c.memory_mb = memory_mb;
  c.state = ContainerState::kCreating;
  containers_.emplace(id, c);
  memory_used_mb_ += memory_mb;
  count_state(ContainerState::kCreating, +1);
  ++creations_;
  return id;
}

void ContainerPool::finish_creation_busy(ContainerId id,
                                         workload::FunctionId fn) {
  ContainerInfo& c = mutable_info(id);
  WHISK_CHECK(c.state == ContainerState::kCreating,
              "finish_creation on a non-creating container");
  count_state(c.state, -1);
  c.state = ContainerState::kBusy;
  c.function = fn;
  count_state(c.state, +1);
}

void ContainerPool::finish_creation_prewarm(ContainerId id) {
  ContainerInfo& c = mutable_info(id);
  WHISK_CHECK(c.state == ContainerState::kCreating,
              "finish_creation on a non-creating container");
  count_state(c.state, -1);
  c.state = ContainerState::kPrewarm;
  count_state(c.state, +1);
  prewarm_.push_back(id);
}

void ContainerPool::cancel_creation(ContainerId id) {
  const ContainerInfo& c = info(id);
  WHISK_CHECK(c.state == ContainerState::kCreating,
              "cancel_creation on a non-creating container");
  destroy(id);
}

void ContainerPool::assign_function(ContainerId id, workload::FunctionId fn) {
  ContainerInfo& c = mutable_info(id);
  WHISK_CHECK(c.state == ContainerState::kBusy,
              "assign_function expects a busy (prewarm-origin) container");
  c.function = fn;
}

void ContainerPool::release(ContainerId id, sim::SimTime now) {
  ContainerInfo& c = mutable_info(id);
  WHISK_CHECK(c.state == ContainerState::kBusy,
              "release on a container that is not busy");
  WHISK_CHECK(c.function != workload::kInvalidFunction,
              "released container has no function");
  count_state(c.state, -1);
  c.state = ContainerState::kIdle;
  c.last_used = now;
  count_state(c.state, +1);
  idle_[c.function].push_back(id);
  earliest_idle_bound_ = std::min(earliest_idle_bound_, now);
}

std::vector<IdleCandidate> ContainerPool::idle_candidates() const {
  std::vector<IdleCandidate> out;
  out.reserve(idle_count_);
  for (const auto& [fn, list] : idle_) {
    for (const ContainerId id : list) {
      const ContainerInfo& c = info(id);
      out.push_back(
          IdleCandidate{id, c.function, c.memory_mb, c.last_used,
                        list.size()});
    }
  }
  return out;
}

std::size_t ContainerPool::evict_idle_until_free(double memory_mb) {
  if (memory_free_mb() >= memory_mb || idle_count_ == 0) return 0;
  // One candidate snapshot per call; evictions remove from it in place
  // (erase keeps the presentation order, so a policy's scan sees the same
  // sequence a per-iteration rebuild would) instead of re-scanning and
  // re-allocating per evicted container.
  std::vector<IdleCandidate> candidates = idle_candidates();
  std::size_t evicted = 0;
  while (memory_free_mb() < memory_mb && !candidates.empty()) {
    const std::size_t pick = policy_->victim(candidates);
    WHISK_CHECK(pick < candidates.size(),
                "keep-alive policy picked a bad victim index");
    const IdleCandidate victim = candidates[pick];
    destroy(victim.id);
    ++evicted;
    ++evictions_;
    candidates.erase(candidates.begin() +
                     static_cast<std::ptrdiff_t>(pick));
    for (IdleCandidate& c : candidates) {
      if (c.function == victim.function) --c.idle_of_function;
    }
  }
  return evicted;
}

std::size_t ContainerPool::sweep_expired(sim::SimTime now) {
  if (!policy_->may_expire() || idle_count_ == 0) return 0;
  // The sweep is called on every dispatch round; skip the scan while even
  // the (conservatively tracked) oldest idle container is too young to
  // expire under the policy's min_idle_s() contract. Policies that do not
  // declare a bound (the +inf default) always pay the scan — skipping on
  // +inf would silently disable their expiry forever.
  const double min_idle = policy_->min_idle_s();
  if (std::isfinite(min_idle) && now - earliest_idle_bound_ <= min_idle) {
    return 0;
  }
  std::vector<ContainerId> lapsed;
  sim::SimTime earliest = std::numeric_limits<double>::infinity();
  for (const auto& [fn, list] : idle_) {
    for (const ContainerId id : list) {
      const ContainerInfo& c = info(id);
      const IdleCandidate candidate{id, c.function, c.memory_mb,
                                    c.last_used, list.size()};
      if (policy_->expired(candidate, now)) {
        lapsed.push_back(id);
      } else {
        earliest = std::min(earliest, c.last_used);
      }
    }
  }
  for (const ContainerId id : lapsed) destroy(id);
  earliest_idle_bound_ = earliest;  // exact again until the next release
  expirations_ += lapsed.size();
  return lapsed.size();
}

void ContainerPool::destroy(ContainerId id) {
  auto it = containers_.find(id);
  WHISK_CHECK(it != containers_.end(), "destroy of unknown container");
  const ContainerInfo& c = it->second;
  WHISK_CHECK(c.state != ContainerState::kBusy,
              "cannot destroy a busy container");
  if (c.state == ContainerState::kIdle) {
    auto& list = idle_[c.function];
    list.erase(std::remove(list.begin(), list.end(), id), list.end());
  } else if (c.state == ContainerState::kPrewarm) {
    prewarm_.erase(std::remove(prewarm_.begin(), prewarm_.end(), id),
                   prewarm_.end());
  }
  count_state(c.state, -1);
  memory_used_mb_ -= c.memory_mb;
  WHISK_CHECK(memory_used_mb_ > -1e-6, "memory accounting underflow");
  memory_used_mb_ = std::max(0.0, memory_used_mb_);
  containers_.erase(it);
}

double ContainerPool::memory_reclaimable_mb() const {
  double reclaimable = memory_free_mb();
  for (const auto& [fn, list] : idle_) {
    for (const ContainerId id : list) {
      reclaimable += info(id).memory_mb;
    }
  }
  return reclaimable;
}

std::size_t ContainerPool::idle_count_of(workload::FunctionId fn) const {
  auto it = idle_.find(fn);
  return it == idle_.end() ? 0 : it->second.size();
}

}  // namespace whisk::container
