#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"
#include "util/registry.h"
#include "workload/function.h"

namespace whisk::container {

using ContainerId = std::int64_t;

inline constexpr ContainerId kInvalidContainer = -1;

// A keep-alive policy by registry name plus named parameters — the
// container-layer mirror of workload::ScenarioSpec:
//
//   auto spec = KeepAliveSpec::parse("ttl?idle-s=600");
//   spec.to_string()  -> "ttl?idle-s=600"
//
// Grammar: name[?key=value[&key=value]...]. Names and keys are
// case-insensitive; parameters are stored sorted so to_string() is
// canonical and parse(to_string()) round-trips exactly. normalized()
// resolves the name against the KeepAlivePolicyRegistry and rejects unknown
// parameter keys with an error that lists the policy's valid keys.
struct KeepAliveSpec {
  std::string name = "lru";
  std::map<std::string, std::string> params;

  [[nodiscard]] static KeepAliveSpec parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  // Abort with a name-listing error if the policy or any parameter key is
  // unknown; returns a copy with the name canonicalized and keys lowercased.
  [[nodiscard]] KeepAliveSpec normalized() const;

  [[nodiscard]] bool has(std::string_view key) const;
  // Typed parameter access with a fallback for absent keys. Unparsable
  // values abort, naming the policy, the key, and the offending value.
  [[nodiscard]] double number(std::string_view key, double fallback) const;
  [[nodiscard]] std::size_t count(std::string_view key,
                                  std::size_t fallback) const;

  friend bool operator==(const KeepAliveSpec& a, const KeepAliveSpec& b) {
    return a.name == b.name && a.params == b.params;
  }
  friend bool operator!=(const KeepAliveSpec& a, const KeepAliveSpec& b) {
    return !(a == b);
  }
};

// One declared parameter of a registered keep-alive policy; surfaced by the
// unknown-key diagnostics and by `whisk_sweep --list`.
struct KeepAliveParam {
  std::string name;
  std::string default_value;
  std::string help;
};

// One idle-container eviction candidate, as the pool presents it to the
// policy. Candidates are listed in the pool's internal free-pool order,
// which is stable within a run.
struct IdleCandidate {
  ContainerId id = kInvalidContainer;
  workload::FunctionId function = workload::kInvalidFunction;
  double memory_mb = 0.0;
  sim::SimTime last_used = 0.0;
  // Idle containers of the same function currently in the pool (including
  // this one) — what floor-keeping policies compare against.
  std::size_t idle_of_function = 0;
};

// Decides which idle containers a node keeps warm and which it reclaims —
// the previously-hardcoded LRU rule, now an open registry surface. Two
// hooks:
//
//   * victim() picks the next container to evict under memory pressure
//     (the pool evicts one at a time until the requested memory is free);
//   * expired() marks idle containers whose keep-alive lapsed at `now`;
//     the invoker sweeps them out before each dispatch round, so a warm
//     container idle past its TTL yields a cold start, as on a real fleet.
//
// Policies are constructed per node (per ContainerPool), so they may keep
// state.
class KeepAlivePolicy {
 public:
  virtual ~KeepAlivePolicy() = default;

  // Canonical registry name ("lru", "ttl", "pool-target", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::vector<KeepAliveParam> params() const {
    return {};
  }

  // Index of the eviction victim among `candidates` (never empty). The
  // pool destroys the chosen container; busy/creating/prewarm containers
  // are never offered.
  [[nodiscard]] virtual std::size_t victim(
      std::span<const IdleCandidate> candidates) = 0;

  // Fast gate: false means expired() never returns true, letting the pool
  // skip the sweep entirely (the LRU hot path pays nothing).
  [[nodiscard]] virtual bool may_expire() const { return false; }
  // Optional sweep-skip bound for expiring policies: expired() must never
  // return true for a candidate idle for less than min_idle_s() seconds —
  // the pool uses it to skip whole sweeps while even its oldest idle
  // container is young. Policies that leave the +infinity default simply
  // pay a scan per sweep; expiry still works.
  [[nodiscard]] virtual double min_idle_s() const {
    return std::numeric_limits<double>::infinity();
  }
  [[nodiscard]] virtual bool expired(const IdleCandidate& candidate,
                                     sim::SimTime now) const {
    (void)candidate;
    (void)now;
    return false;
  }
};

// The open set of keep-alive policies, keyed by canonical lowercase name.
// Built-ins ("lru", "ttl", "pool-target") are registered on first use; new
// policies can be added at runtime:
//
//   KeepAlivePolicyRegistry::instance().register_factory(
//       "my-policy", [](const KeepAliveSpec& spec) {
//         return std::make_unique<MyPolicy>(spec);
//       });
//
// Factory contract: spec validation discovers a policy's declared keys by
// constructing a probe with an *empty* parameter set, so every parameter
// must have a usable default (read it with spec.number(key, fallback) /
// spec.count(key, fallback), never require presence). Out-of-range
// *values* should still abort loudly — that check runs with the user's
// actual parameters.
//
// Unknown names abort with a message listing every registered name.
class KeepAlivePolicyRegistry final
    : public util::FactoryRegistry<KeepAlivePolicy, const KeepAliveSpec&> {
 public:
  static KeepAlivePolicyRegistry& instance();

 private:
  KeepAlivePolicyRegistry() : FactoryRegistry("keep-alive policy") {}
};

// Validate `spec` against the registry and construct the policy — the
// one-call surface used by the container pool.
[[nodiscard]] std::unique_ptr<KeepAlivePolicy> make_keep_alive(
    const KeepAliveSpec& spec);

}  // namespace whisk::container
