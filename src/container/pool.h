#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "container/keep_alive.h"
#include "sim/time.h"
#include "workload/function.h"

namespace whisk::container {

// Lifecycle of an action container on a worker node.
enum class ContainerState {
  kCreating,  // docker create/init in flight (memory already reserved)
  kPrewarm,   // runtime environment up, no function injected yet
  kIdle,      // initialized with a function, waiting in the free pool
  kBusy,      // executing a call
};

struct ContainerInfo {
  ContainerId id = kInvalidContainer;
  workload::FunctionId function = workload::kInvalidFunction;
  double memory_mb = 0.0;
  ContainerState state = ContainerState::kCreating;
  sim::SimTime last_used = 0.0;  // for LRU eviction of idle containers
};

// The node's container pool with memory accounting (paper Sec. III):
// free-pool (idle, function-initialized) containers, prewarm containers,
// busy containers, plus in-flight creations. Which idle container is
// reclaimed — under memory pressure or by keep-alive expiry — is delegated
// to a KeepAlivePolicy (keep_alive.h); the default "lru" policy reproduces
// the previously hardcoded LRU-under-pressure rule exactly.
class ContainerPool {
 public:
  // A null policy means the default "lru".
  explicit ContainerPool(double memory_limit_mb,
                         std::unique_ptr<KeepAlivePolicy> policy = nullptr);

  // --- acquisition -------------------------------------------------------

  // Pop an idle container already initialized with `fn`; marks it busy.
  std::optional<ContainerId> acquire_warm(workload::FunctionId fn);

  // Pop any prewarm container; marks it busy (caller injects the function
  // via assign_function once initialization completes).
  std::optional<ContainerId> acquire_prewarm();

  // --- creation ----------------------------------------------------------

  // Reserve memory for a new container; returns nullopt when the free
  // memory (ignoring evictable idle containers) is insufficient.
  std::optional<ContainerId> begin_creation(double memory_mb);

  // Transition a creating container to busy with the target function.
  void finish_creation_busy(ContainerId id, workload::FunctionId fn);

  // Transition a creating container to the prewarm pool.
  void finish_creation_prewarm(ContainerId id);

  // Abort an in-flight creation, releasing its reservation.
  void cancel_creation(ContainerId id);

  // --- release / eviction -------------------------------------------------

  // Inject a function into a (busy) prewarm-origin container.
  void assign_function(ContainerId id, workload::FunctionId fn);

  // Busy -> idle; records `now` for LRU ordering.
  void release(ContainerId id, sim::SimTime now);

  // Evict idle containers — the keep-alive policy picks each victim —
  // until at least `memory_mb` is free or no idle containers remain.
  // Returns the number evicted.
  std::size_t evict_idle_until_free(double memory_mb);

  // Destroy idle containers whose keep-alive lapsed at `now` (policies with
  // may_expire()). Returns the number reclaimed; free for "lru".
  std::size_t sweep_expired(sim::SimTime now);

  // Remove a container outright (any non-busy state).
  void destroy(ContainerId id);

  // --- queries ------------------------------------------------------------

  [[nodiscard]] double memory_limit_mb() const { return memory_limit_mb_; }
  [[nodiscard]] double memory_used_mb() const { return memory_used_mb_; }
  [[nodiscard]] double memory_free_mb() const {
    return memory_limit_mb_ - memory_used_mb_;
  }

  // Free memory counting evictable (idle) containers as reclaimable.
  [[nodiscard]] double memory_reclaimable_mb() const;

  [[nodiscard]] std::size_t total_containers() const {
    return containers_.size();
  }
  [[nodiscard]] std::size_t busy_count() const { return busy_count_; }
  [[nodiscard]] std::size_t idle_count() const { return idle_count_; }
  [[nodiscard]] std::size_t prewarm_count() const { return prewarm_count_; }
  [[nodiscard]] std::size_t creating_count() const { return creating_count_; }
  [[nodiscard]] std::size_t idle_count_of(workload::FunctionId fn) const;

  [[nodiscard]] const ContainerInfo& info(ContainerId id) const;

  // Lifetime counters. `evictions` are memory-pressure victims;
  // `expirations` are keep-alive lapses swept by sweep_expired.
  [[nodiscard]] std::size_t evictions() const { return evictions_; }
  [[nodiscard]] std::size_t expirations() const { return expirations_; }
  [[nodiscard]] std::size_t creations() const { return creations_; }

  [[nodiscard]] const KeepAlivePolicy& keep_alive() const { return *policy_; }

 private:
  ContainerInfo& mutable_info(ContainerId id);
  void count_state(ContainerState s, int delta);
  // Every idle container, in the free-pool's internal order (the order the
  // pre-registry LRU scan used).
  [[nodiscard]] std::vector<IdleCandidate> idle_candidates() const;

  std::unique_ptr<KeepAlivePolicy> policy_;
  double memory_limit_mb_;
  double memory_used_mb_ = 0.0;
  ContainerId next_id_ = 1;

  std::unordered_map<ContainerId, ContainerInfo> containers_;
  // Idle containers per function, most recently used last.
  std::unordered_map<workload::FunctionId, std::vector<ContainerId>> idle_;
  std::vector<ContainerId> prewarm_;

  // Lower bound on the smallest last_used among idle containers (may lag
  // low after the oldest is acquired/destroyed — that only costs an extra
  // sweep scan, never skips a due expiry). Exact after each full sweep.
  sim::SimTime earliest_idle_bound_ =
      std::numeric_limits<double>::infinity();

  std::size_t busy_count_ = 0;
  std::size_t idle_count_ = 0;
  std::size_t prewarm_count_ = 0;
  std::size_t creating_count_ = 0;

  std::size_t evictions_ = 0;
  std::size_t expirations_ = 0;
  std::size_t creations_ = 0;
};

}  // namespace whisk::container
