#include "workload/function.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace whisk::workload {
namespace {

// 95th percentile of the standard normal; used to fit the lognormal sigma
// from the median/p95 ratio.
constexpr double kZ95 = 1.6448536269514722;

// Warm processing time never drops below this, even for the ~12 ms graph
// functions whose client-side figures are dominated by the constant
// overhead.
constexpr double kMinWarmMs = 1.5;

}  // namespace

double FunctionSpec::warm_median_ms() const {
  return std::max(median_ms - kClientOverheadMs, kMinWarmMs);
}

double FunctionSpec::lognormal_mu() const {
  return std::log(warm_median_ms() / 1000.0);
}

double FunctionSpec::lognormal_sigma() const {
  // Fit sigma to the overhead-stripped p95/median ratio. For the very short
  // functions the stripped ratio is noisy; clamp to a sane band.
  const double p95 = std::max(p95_ms - kClientOverheadMs, kMinWarmMs);
  const double ratio = std::max(p95 / warm_median_ms(), 1.001);
  return std::clamp(std::log(ratio) / kZ95, 0.01, 0.8);
}

FunctionCatalog::FunctionCatalog(std::vector<FunctionSpec> specs)
    : specs_(std::move(specs)) {
  WHISK_CHECK(!specs_.empty(), "empty function catalog");
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    specs_[i].id = static_cast<FunctionId>(i);
    WHISK_CHECK(specs_[i].median_ms > 0.0, "non-positive median");
    WHISK_CHECK(specs_[i].p5_ms <= specs_[i].median_ms &&
                    specs_[i].median_ms <= specs_[i].p95_ms,
                "percentiles out of order");
    WHISK_CHECK(specs_[i].cpu_fraction >= 0.0 &&
                    specs_[i].cpu_fraction <= 1.0,
                "cpu_fraction out of [0,1]");
    WHISK_CHECK(specs_[i].memory_mb > 0.0, "non-positive memory");
  }
}

const FunctionSpec& FunctionCatalog::spec(FunctionId id) const {
  WHISK_CHECK(id >= 0 && static_cast<std::size_t>(id) < specs_.size(),
              "function id out of range");
  return specs_[static_cast<std::size_t>(id)];
}

std::optional<FunctionId> FunctionCatalog::find(
    const std::string& name) const {
  for (const auto& s : specs_) {
    if (s.name == name) return s.id;
  }
  return std::nullopt;
}

sim::SimTime FunctionCatalog::sample_service(FunctionId id,
                                             sim::Rng& rng) const {
  const FunctionSpec& s = spec(id);
  const double median_s = s.warm_median_ms() / 1000.0;
  const double draw = rng.lognormal(s.lognormal_mu(), s.lognormal_sigma());
  // Clamp to a generous envelope: a draw far outside the measured
  // percentiles would represent a failure mode SeBS did not observe.
  return std::clamp(draw, 0.25 * median_s, 8.0 * median_s);
}

sim::SimTime FunctionCatalog::reference_median(FunctionId id) const {
  return spec(id).median_ms / 1000.0;
}

double FunctionCatalog::mean_reference_median_s() const {
  double sum = 0.0;
  for (const auto& s : specs_) sum += s.median_ms;
  return sum / 1000.0 / static_cast<double>(specs_.size());
}

FunctionCatalog sebs_catalog() {
  // Table I of the paper, client side, on-premises idle setup.
  // cpu_fraction: dna-visualisation, compression, video-processing and the
  // graph suite are compute-bound; sleep is a pure wait; uploader strains
  // network/storage; thumbnailer and image-recognition mix CPU with I/O
  // (paper: "roughly half of these functions are computationally-intensive,
  // while others strain I/O and network").
  std::vector<FunctionSpec> specs = {
      {kInvalidFunction, "dna-visualisation", 8415.0, 8552.0, 8847.0, 0.95,
       160.0},
      {kInvalidFunction, "sleep", 1020.0, 1022.0, 1026.0, 0.02, 160.0},
      {kInvalidFunction, "compression", 793.0, 807.0, 832.0, 0.90, 160.0},
      {kInvalidFunction, "video-processing", 586.0, 593.0, 605.0, 0.90,
       160.0},
      {kInvalidFunction, "uploader", 184.0, 192.0, 405.0, 0.15, 160.0},
      {kInvalidFunction, "image-recognition", 117.0, 121.0, 237.0, 0.80,
       160.0},
      {kInvalidFunction, "thumbnailer", 112.0, 118.0, 124.0, 0.50, 160.0},
      {kInvalidFunction, "dynamic-html", 18.0, 19.0, 22.0, 0.90, 160.0},
      {kInvalidFunction, "graph-pagerank", 11.0, 12.0, 15.0, 1.00, 160.0},
      {kInvalidFunction, "graph-bfs", 11.0, 12.0, 13.0, 1.00, 160.0},
      {kInvalidFunction, "graph-mst", 11.0, 12.0, 13.0, 1.00, 160.0},
  };
  return FunctionCatalog(std::move(specs));
}

}  // namespace whisk::workload
