#include "workload/scenario.h"

#include <algorithm>

#include "util/check.h"

namespace whisk::workload {

Scenario ScenarioGenerator::finalize(std::vector<CallRequest> calls,
                                     sim::SimTime window) const {
  std::sort(calls.begin(), calls.end(),
            [](const CallRequest& a, const CallRequest& b) {
              if (a.release != b.release) return a.release < b.release;
              return a.function < b.function;
            });
  for (std::size_t i = 0; i < calls.size(); ++i) {
    calls[i].id = static_cast<CallId>(i);
  }
  Scenario s;
  s.calls = std::move(calls);
  s.window = window;
  return s;
}

Scenario ScenarioGenerator::uniform_burst(int cores, int intensity,
                                          sim::Rng& rng,
                                          sim::SimTime window) const {
  WHISK_CHECK(cores > 0, "cores must be positive");
  WHISK_CHECK(intensity > 0, "intensity must be positive");
  // 1.1 * c * v requests over nf functions -> 0.1 * c * v calls per function
  // for the 11-function SeBS catalog (paper Sec. V-B).
  const std::size_t nf = catalog_->size();
  const std::size_t total =
      static_cast<std::size_t>(1.1 * cores * intensity + 0.5);
  const std::size_t per_function = total / nf;
  WHISK_CHECK(per_function * nf == total,
              "intensity/core combination does not split evenly across "
              "functions; use multiples of 10 as the paper does");

  std::vector<CallRequest> calls;
  calls.reserve(total);
  for (std::size_t f = 0; f < nf; ++f) {
    for (std::size_t k = 0; k < per_function; ++k) {
      calls.push_back(CallRequest{-1, static_cast<FunctionId>(f),
                                  rng.uniform(0.0, window)});
    }
  }
  return finalize(std::move(calls), window);
}

Scenario ScenarioGenerator::fixed_total_burst(std::size_t total_requests,
                                              sim::Rng& rng,
                                              sim::SimTime window) const {
  WHISK_CHECK(total_requests > 0, "empty burst");
  const std::size_t nf = catalog_->size();
  std::vector<CallRequest> calls;
  calls.reserve(total_requests);
  for (std::size_t i = 0; i < total_requests; ++i) {
    calls.push_back(CallRequest{-1, static_cast<FunctionId>(i % nf),
                                rng.uniform(0.0, window)});
  }
  return finalize(std::move(calls), window);
}

Scenario ScenarioGenerator::fairness_burst(int cores, int intensity,
                                           FunctionId rare_function,
                                           std::size_t rare_calls,
                                           sim::Rng& rng,
                                           sim::SimTime window) const {
  const std::size_t total =
      static_cast<std::size_t>(1.1 * cores * intensity + 0.5);
  WHISK_CHECK(rare_calls <= total, "more rare calls than total requests");
  catalog_->spec(rare_function);  // bounds check

  std::vector<CallRequest> calls;
  calls.reserve(total);
  for (std::size_t k = 0; k < rare_calls; ++k) {
    calls.push_back(
        CallRequest{-1, rare_function, rng.uniform(0.0, window)});
  }
  // Remaining calls: uniformly random over the other functions (the paper
  // drops the equal-counts assumption here).
  const std::size_t nf = catalog_->size();
  for (std::size_t k = rare_calls; k < total; ++k) {
    FunctionId f;
    do {
      f = static_cast<FunctionId>(rng.uniform_index(nf));
    } while (f == rare_function);
    calls.push_back(CallRequest{-1, f, rng.uniform(0.0, window)});
  }
  return finalize(std::move(calls), window);
}

}  // namespace whisk::workload
