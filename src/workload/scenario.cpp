#include "workload/scenario.h"

#include <algorithm>

#include "util/check.h"
#include "workload/arrival_process.h"
#include "workload/function_mix.h"

namespace whisk::workload {

Scenario finalize_scenario(std::vector<CallRequest> calls,
                           sim::SimTime window) {
  std::sort(calls.begin(), calls.end(),
            [](const CallRequest& a, const CallRequest& b) {
              if (a.release != b.release) return a.release < b.release;
              return a.function < b.function;
            });
  for (std::size_t i = 0; i < calls.size(); ++i) {
    calls[i].id = static_cast<CallId>(i);
  }
  Scenario s;
  s.calls = std::move(calls);
  s.window = window;
  return s;
}

Scenario compose_scenario(const ArrivalProcess& arrivals,
                          const FunctionMix& mix, std::size_t total,
                          sim::SimTime window, sim::Rng& rng) {
  WHISK_CHECK(window > 0.0, "scenario window must be positive");
  std::vector<CallRequest> calls;
  if (arrivals.rate_driven()) {
    const auto times = arrivals.schedule(window, rng);
    calls.reserve(times.size());
    for (std::size_t i = 0; i < times.size(); ++i) {
      calls.push_back(
          CallRequest{-1, mix.assign(i, times.size(), rng), times[i]});
    }
  } else {
    WHISK_CHECK(total > 0, "count-driven scenario needs a positive total");
    calls.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
      // Mix draw before release draw: the seed generators' stream order.
      // Reordering would change every seeded scenario.
      const FunctionId f = mix.assign(i, total, rng);
      calls.push_back(CallRequest{-1, f, arrivals.sample(window, rng)});
    }
  }
  return finalize_scenario(std::move(calls), window);
}

}  // namespace whisk::workload
