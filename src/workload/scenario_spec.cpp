#include "workload/scenario_spec.h"

#include "util/check.h"
#include "util/parse.h"
#include "util/registry.h"
#include "workload/scenario_registry.h"

namespace whisk::workload {

ScenarioSpec ScenarioSpec::parse(std::string_view text) {
  WHISK_CHECK(!text.empty(),
              "empty scenario spec; expected \"name[?key=value[&...]]\" "
              "like \"uniform?intensity=60\"");
  ScenarioSpec spec;
  const std::size_t q = text.find('?');
  spec.name = std::string(text.substr(0, q));
  WHISK_CHECK(!spec.name.empty(),
              ("scenario spec \"" + std::string(text) + "\" has an empty "
               "name before the '?'")
                  .c_str());
  if (q != std::string_view::npos) {
    util::parse_param_list(text.substr(q + 1),
                           "scenario spec \"" + std::string(text) + "\"",
                           &spec.params);
  }
  return spec.normalized();
}

std::string ScenarioSpec::to_string() const {
  return util::render_params(name, params);
}

ScenarioSpec ScenarioSpec::normalized() const {
  auto& registry = ScenarioRegistry::instance();
  ScenarioSpec out;
  out.name = registry.resolve(name);
  const auto def = registry.create(out.name);
  const auto valid = def->params();
  for (const auto& [raw_key, value] : params) {
    const std::string key = util::ascii_lower(raw_key);
    bool known = false;
    for (const auto& p : valid) {
      if (p.name == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::vector<std::string> names;
      names.reserve(valid.size());
      for (const auto& p : valid) names.push_back(p.name);
      WHISK_CHECK(false, ("scenario \"" + out.name +
                          "\" does not take parameter \"" + raw_key +
                          "\"; valid parameters: " + util::join(names))
                             .c_str());
    }
    WHISK_CHECK(out.params.count(key) == 0,
                ("scenario \"" + out.name + "\" sets parameter \"" + key +
                 "\" twice")
                    .c_str());
    out.params[key] = value;
  }
  return out;
}

bool ScenarioSpec::has(std::string_view key) const {
  return params.count(util::ascii_lower(key)) != 0;
}

double ScenarioSpec::number(std::string_view key, double fallback) const {
  const auto it = params.find(util::ascii_lower(key));
  if (it == params.end()) return fallback;
  double value = 0.0;
  if (!util::parse_finite_double(it->second, &value)) {
    WHISK_CHECK(false, ("scenario \"" + name + "\" parameter " +
                        std::string(key) + "=\"" + it->second +
                        "\" is not a finite number")
                           .c_str());
  }
  return value;
}

std::size_t ScenarioSpec::count(std::string_view key,
                                std::size_t fallback) const {
  const auto it = params.find(util::ascii_lower(key));
  if (it == params.end()) return fallback;
  unsigned long long value = 0;
  if (!util::parse_whole_number(it->second, &value)) {
    WHISK_CHECK(false, ("scenario \"" + name + "\" parameter " +
                        std::string(key) + "=\"" + it->second +
                        "\" is not a whole number >= 0")
                           .c_str());
  }
  return static_cast<std::size_t>(value);
}

std::string ScenarioSpec::text(std::string_view key,
                               std::string_view fallback) const {
  const auto it = params.find(util::ascii_lower(key));
  return it == params.end() ? std::string(fallback) : it->second;
}

}  // namespace whisk::workload
