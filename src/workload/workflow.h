#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/registry.h"

namespace whisk::workload {

// Declarative workflow selection in the established "name[?key=value&...]"
// spec idiom (ScenarioSpec, FaultSpec, ...): "chain?stages=4",
// "fanout?width=8&join=all", "dag?edges=a>b+a>c+b>d+c>d". The reserved
// name "none" (the default) means calls stay independent — the simulator's
// pre-workflow behavior, bit for bit.
//
// Parse accepts any case; normalized() resolves aliases, lowercases keys,
// validates every key against the shape's declared parameters and builds
// the DAG once so a bad spec dies loudly at parse time, not mid-sweep.
// to_string() renders the canonical grid-safe form and round-trips through
// parse().
struct WorkflowSpec {
  std::string name = "none";
  std::map<std::string, std::string> params;

  [[nodiscard]] static WorkflowSpec parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] WorkflowSpec normalized() const;

  // False for the reserved no-op spec "none".
  [[nodiscard]] bool enabled() const { return name != "none"; }

  [[nodiscard]] bool has(std::string_view key) const;
  [[nodiscard]] double number(std::string_view key, double fallback) const;
  [[nodiscard]] std::size_t count(std::string_view key,
                                  std::size_t fallback) const;
  [[nodiscard]] std::string text(std::string_view key) const;

  friend bool operator==(const WorkflowSpec& a, const WorkflowSpec& b) {
    return a.name == b.name && a.params == b.params;
  }
  friend bool operator!=(const WorkflowSpec& a, const WorkflowSpec& b) {
    return !(a == b);
  }
};

// One declared parameter of a workflow shape, for --list / catalog output.
struct WorkflowParam {
  std::string name;
  std::string default_value;
  std::string help;
};

// One stage of an instantiated workflow DAG. Stages are stored in
// topological order with stage 0 the unique source (the root call of the
// scenario); edges only point forward.
struct WorkflowStage {
  std::string label;

  // The stage runs function (root_function + offset) mod catalog size, so
  // a DAG instantiates against whatever function the scenario drew for the
  // root call. functions=root keeps every offset 0; functions=rotate gives
  // stage s offset s (asymmetric branches).
  int function_offset = 0;

  std::vector<int> successors;  // topo indices, strictly > this stage's
  int preds = 0;                // in-degree
  // Ok predecessors required to release this stage: preds for join=all
  // fan-ins, k for k-of-n scatter-gather joins, 0 only for the source.
  int join_k = 0;
};

// A validated workflow shape: topologically ordered stages, one source.
struct WorkflowDag {
  std::vector<WorkflowStage> stages;

  [[nodiscard]] std::size_t size() const { return stages.size(); }
};

// A registered workflow shape: metadata for catalogs plus the DAG builder.
class WorkflowDef {
 public:
  virtual ~WorkflowDef() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::string help() const = 0;
  [[nodiscard]] virtual std::vector<WorkflowParam> params() const = 0;

  // Build the DAG for `spec` (parameter values are validated here, so
  // every parameter needs a usable default — the registry probes shapes
  // with an empty parameter map).
  [[nodiscard]] virtual WorkflowDag build(const WorkflowSpec& spec) const = 0;
};

// The open extension surface for workflow shapes, mirroring the fault /
// scenario / policy registries: register a WorkflowDef under a name and
// `workflows=` campaign axes, whisk_sweep --list and workflow_catalog
// discover it.
class WorkflowRegistry : public util::FactoryRegistry<WorkflowDef> {
 public:
  static WorkflowRegistry& instance();

 private:
  WorkflowRegistry() : FactoryRegistry("workflow") {}
};

// Validate structural invariants (non-empty, single source at index 0,
// forward-only edges, consistent preds/join_k, unique labels) and abort
// with a loud message naming `context` when one fails. Every DAG funnels
// through this in make_workflow_dag; exposed for shape authors' tests.
void validate_workflow_dag(const WorkflowDag& dag, const std::string& context);

// Build + validate the DAG for an enabled spec. Aborts on "none".
[[nodiscard]] WorkflowDag make_workflow_dag(const WorkflowSpec& spec);

}  // namespace whisk::workload
