// The built-in workload scenarios, registered on first ScenarioRegistry
// use. The paper's three scenarios (uniform, fixed-total, fairness) are
// expressed as ArrivalProcess x FunctionMix compositions whose rng stream
// order matches the pre-registry generators draw for draw, so a given
// (spec, seed) keeps producing the byte-identical call sequence. The
// synthetic processes (poisson, bursty, diurnal) and CSV trace replay are
// new surfaces with no compatibility constraint.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <utility>

#include "util/check.h"
#include "util/parse.h"
#include "workload/arrival_process.h"
#include "workload/function_mix.h"
#include "workload/scenario_registry.h"
#include "workload/trace_reader.h"

namespace whisk::workload {
namespace {

constexpr double kDefaultWindowS = 60.0;

// --- shared parameter plumbing ---------------------------------------------

sim::SimTime window_param(const ScenarioSpec& spec) {
  const double window = spec.number("window", kDefaultWindowS);
  WHISK_CHECK(window > 0.0, ("scenario \"" + spec.name +
                             "\": window must be positive seconds")
                                .c_str());
  return window;
}

int effective_intensity(const ScenarioSpec& spec, const ScenarioContext& ctx) {
  const std::size_t raw = spec.count(
      "intensity", static_cast<std::size_t>(std::max(ctx.intensity, 0)));
  WHISK_CHECK(raw > 0 && raw <= static_cast<std::size_t>(
                                    std::numeric_limits<int>::max()),
              ("scenario \"" + spec.name +
               "\": intensity must be a positive (sane) integer")
                  .c_str());
  return static_cast<int>(raw);
}

// 1.1 * c * v requests for c total cores at intensity v (paper Sec. V-B).
std::size_t paper_total(const ScenarioSpec& spec, const ScenarioContext& ctx) {
  const int cores = ctx.cores * ctx.nodes;
  WHISK_CHECK(cores > 0, ("scenario \"" + spec.name +
                          "\": deployment cores must be positive")
                             .c_str());
  const int intensity = effective_intensity(spec, ctx);
  return static_cast<std::size_t>(1.1 * cores * intensity + 0.5);
}

const ScenarioParam kWindowParam{
    "window", "60", "burst duration in seconds", false};
const ScenarioParam kIntensityParam{
    "intensity", "experiment intensity",
    "load knob v: 1.1 * cores * v requests", false};
const ScenarioParam kMixParam{
    "mix", "round-robin",
    "function mix: round-robin | random | weighted", false};
const ScenarioParam kWeightsParam{
    "weights", "", "comma-separated per-function weights for mix=weighted",
    false};

// The `mix` / `weights` parameter pair shared by the rate-driven scenarios.
std::unique_ptr<FunctionMix> make_mix(const ScenarioSpec& spec,
                                      const FunctionCatalog& catalog) {
  const std::string mix = util::ascii_lower(spec.text("mix", "round-robin"));
  if (mix == "round-robin") {
    return std::make_unique<RoundRobinMix>(catalog.size());
  }
  if (mix == "random") {
    return std::make_unique<UniformRandomMix>(catalog.size());
  }
  if (mix == "weighted") {
    const std::string raw = spec.text("weights", "");
    WHISK_CHECK(!raw.empty(),
                ("scenario \"" + spec.name + "\": mix=weighted needs "
                 "weights=w0,w1,... with one weight per catalog function")
                    .c_str());
    std::vector<double> weights;
    std::size_t begin = 0;
    while (begin <= raw.size()) {
      const std::size_t comma = raw.find(',', begin);
      const std::size_t end = comma == std::string::npos ? raw.size() : comma;
      const std::string field = raw.substr(begin, end - begin);
      double w = 0.0;
      const bool ok = util::parse_finite_double(field, &w) && w >= 0.0;
      WHISK_CHECK(ok, ("scenario \"" + spec.name + "\": weight \"" + field +
                       "\" is not a number >= 0")
                          .c_str());
      weights.push_back(w);
      if (comma == std::string::npos) break;
      begin = comma + 1;
    }
    WHISK_CHECK(weights.size() == catalog.size(),
                ("scenario \"" + spec.name + "\": got " +
                 std::to_string(weights.size()) + " weights for " +
                 std::to_string(catalog.size()) + " catalog functions")
                    .c_str());
    return std::make_unique<WeightedMix>(std::move(weights));
  }
  WHISK_CHECK(false, ("scenario \"" + spec.name + "\": unknown mix \"" + mix +
                      "\"; valid mixes: round-robin, random, weighted")
                         .c_str());
  return nullptr;
}

// --- the paper's three scenarios --------------------------------------------

class UniformScenario final : public ScenarioDef {
 public:
  std::string help() const override {
    return "the standard measured burst (Sec. V-B): 1.1 * cores * intensity "
           "requests, the same number of calls per function, releases "
           "uniform over the window";
  }
  std::vector<ScenarioParam> params() const override {
    return {kIntensityParam, kWindowParam};
  }
  Scenario generate(const ScenarioSpec& spec, const ScenarioContext& ctx,
                    sim::Rng& rng) const override {
    const std::size_t nf = ctx.catalog->size();
    const std::size_t total = paper_total(spec, ctx);
    const std::size_t per_function = total / nf;
    WHISK_CHECK(per_function * nf == total,
                "intensity/core combination does not split evenly across "
                "functions; use multiples of 10 as the paper does");
    return compose_scenario(UniformArrivals{}, EqualBlockMix{per_function},
                            total, window_param(spec), rng);
  }
};

class FixedTotalScenario final : public ScenarioDef {
 public:
  std::string help() const override {
    return "an explicit request count split round-robin among the functions "
           "(the multi-node experiments' constant load, Sec. VIII)";
  }
  std::vector<ScenarioParam> params() const override {
    return {{"total", "1320", "exact number of requests", false},
            kWindowParam};
  }
  Scenario generate(const ScenarioSpec& spec, const ScenarioContext& ctx,
                    sim::Rng& rng) const override {
    const std::size_t total = spec.count("total", 1320);
    WHISK_CHECK(total > 0, "empty burst");
    return compose_scenario(UniformArrivals{},
                            RoundRobinMix{ctx.catalog->size()}, total,
                            window_param(spec), rng);
  }
};

class FairnessScenario final : public ScenarioDef {
 public:
  std::string help() const override {
    return "the fairness burst (Sec. VII-D): exactly rare-calls calls of "
           "rare-function, the rest uniform over the other functions";
  }
  std::vector<ScenarioParam> params() const override {
    return {kIntensityParam,
            {"rare-function", "dna-visualisation",
             "catalog name of the rare long function", false},
            {"rare-calls", "10", "exact calls of the rare function", false},
            kWindowParam};
  }
  Scenario generate(const ScenarioSpec& spec, const ScenarioContext& ctx,
                    sim::Rng& rng) const override {
    const std::size_t total = paper_total(spec, ctx);
    const std::size_t rare_calls = spec.count("rare-calls", 10);
    const std::string rare_name =
        spec.text("rare-function", "dna-visualisation");
    const auto rare = ctx.catalog->find(rare_name);
    WHISK_CHECK(rare.has_value(),
                ("scenario \"fairness\": unknown rare-function \"" +
                 rare_name + "\"")
                    .c_str());
    // A rare-calls beyond the request budget would underflow the remaining
    // uniform count; refuse loudly instead of clamping into a different
    // scenario than the one asked for.
    if (rare_calls > total) {
      WHISK_CHECK(false,
                  ("scenario \"fairness\": rare-calls=" +
                   std::to_string(rare_calls) + " exceeds the burst's " +
                   std::to_string(total) +
                   " requests (1.1 * cores * intensity); lower rare-calls "
                   "or raise intensity")
                      .c_str());
    }
    return compose_scenario(
        UniformArrivals{},
        RareFirstMix{*rare, rare_calls, ctx.catalog->size()}, total,
        window_param(spec), rng);
  }
};

// --- synthetic arrival processes --------------------------------------------

class PoissonScenario final : public ScenarioDef {
 public:
  std::string help() const override {
    return "homogeneous Poisson arrivals at a fixed rate, crossed with a "
           "configurable function mix";
  }
  std::vector<ScenarioParam> params() const override {
    return {{"rate", "30", "mean arrivals per second", false}, kWindowParam,
            kMixParam, kWeightsParam};
  }
  Scenario generate(const ScenarioSpec& spec, const ScenarioContext& ctx,
                    sim::Rng& rng) const override {
    const double rate = spec.number("rate", 30.0);
    const auto mix = make_mix(spec, *ctx.catalog);
    return compose_scenario(PoissonArrivals{rate}, *mix, 0,
                            window_param(spec), rng);
  }
};

class BurstyScenario final : public ScenarioDef {
 public:
  std::string help() const override {
    return "two-state on-off arrivals (MMPP-2): Poisson bursts at rate-on "
           "during exponential ON phases, a rate-off trickle in between";
  }
  std::vector<ScenarioParam> params() const override {
    return {{"rate-on", "120", "arrivals per second during ON phases",
             false},
            {"rate-off", "5", "arrivals per second during OFF phases (may "
                              "be 0)",
             false},
            {"mean-on", "5", "mean ON-phase duration in seconds", false},
            {"mean-off", "10", "mean OFF-phase duration in seconds", false},
            kWindowParam, kMixParam, kWeightsParam};
  }
  Scenario generate(const ScenarioSpec& spec, const ScenarioContext& ctx,
                    sim::Rng& rng) const override {
    const OnOffArrivals arrivals{
        spec.number("rate-on", 120.0), spec.number("rate-off", 5.0),
        spec.number("mean-on", 5.0), spec.number("mean-off", 10.0)};
    const auto mix = make_mix(spec, *ctx.catalog);
    return compose_scenario(arrivals, *mix, 0, window_param(spec), rng);
  }
};

class DiurnalScenario final : public ScenarioDef {
 public:
  std::string help() const override {
    return "inhomogeneous Poisson arrivals on a sinusoidal rate curve "
           "(an Azure-Functions-style diurnal cycle compressed into the "
           "window)";
  }
  std::vector<ScenarioParam> params() const override {
    return {{"rate", "30", "mean arrivals per second over a full cycle",
             false},
            {"amplitude", "0.9", "peak-to-mean swing in [0, 1]", false},
            {"period", "window", "cycle length in seconds", false},
            kWindowParam, kMixParam, kWeightsParam};
  }
  Scenario generate(const ScenarioSpec& spec, const ScenarioContext& ctx,
                    sim::Rng& rng) const override {
    const sim::SimTime window = window_param(spec);
    const DiurnalArrivals arrivals{spec.number("rate", 30.0),
                                   spec.number("amplitude", 0.9),
                                   spec.number("period", window)};
    const auto mix = make_mix(spec, *ctx.catalog);
    return compose_scenario(arrivals, *mix, 0, window, rng);
  }
};

// --- CSV trace replay --------------------------------------------------------

class TraceScenario final : public ScenarioDef {
 public:
  std::string help() const override {
    return "replays a CSV call trace (release_seconds[,function] per line); "
           "rows without a function name are assigned by the mix";
  }
  std::vector<ScenarioParam> params() const override {
    return {{"file", "", "path to the trace CSV", true},
            {"window", "last release", "burst duration; rows at or past it "
                                       "are dropped",
             false},
            kMixParam, kWeightsParam};
  }
  Scenario generate(const ScenarioSpec& spec, const ScenarioContext& ctx,
                    sim::Rng& rng) const override {
    const std::string file = spec.text("file", "");
    WHISK_CHECK(!file.empty(),
                "scenario \"trace\" needs file=<path> (CSV: "
                "release_seconds[,function] per line)");
    const auto entries = TraceReader::read_file(file);
    WHISK_CHECK(!entries.empty(),
                ("trace file \"" + file + "\" holds no calls").c_str());

    sim::SimTime last = 0.0;
    bool any_named = false;
    for (const auto& e : entries) {
      last = std::max(last, e.release);
      any_named = any_named || !e.function.empty();
    }
    // Derived windows sit one ULP past the last release so the final row
    // survives the strict `release < window` clip.
    const sim::SimTime window =
        spec.has("window")
            ? window_param(spec)
            : std::nextafter(std::max(last, 1e-9),
                             std::numeric_limits<double>::max());

    const auto mix = make_mix(spec, *ctx.catalog);
    if (!any_named) {
      std::vector<sim::SimTime> times;
      times.reserve(entries.size());
      for (const auto& e : entries) times.push_back(e.release);
      Scenario s = compose_scenario(TraceArrivals{std::move(times)}, *mix, 0,
                                    window, rng);
      WHISK_CHECK(!s.calls.empty(),
                  ("trace file \"" + file +
                   "\": every row fell outside the window")
                      .c_str());
      return s;
    }

    // Mixed rows: named entries are pinned to their function, unnamed ones
    // go through the mix in trace order.
    std::vector<CallRequest> calls;
    calls.reserve(entries.size());
    std::size_t unnamed = 0;
    for (const auto& e : entries) {
      if (e.function.empty()) ++unnamed;
    }
    std::size_t mix_index = 0;
    for (const auto& e : entries) {
      if (spec.has("window") && e.release >= window) continue;
      FunctionId fn = kInvalidFunction;
      if (e.function.empty()) {
        fn = mix->assign(mix_index++, unnamed, rng);
      } else {
        const auto found = ctx.catalog->find(e.function);
        WHISK_CHECK(found.has_value(),
                    ("trace file \"" + file + "\" names unknown function \"" +
                     e.function + "\"")
                        .c_str());
        fn = *found;
      }
      calls.push_back(CallRequest{-1, fn, e.release});
    }
    WHISK_CHECK(!calls.empty(),
                ("trace file \"" + file +
                 "\": every row fell outside the window")
                    .c_str());
    return finalize_scenario(std::move(calls), window);
  }
};

}  // namespace

namespace detail {

void register_builtin_scenarios(ScenarioRegistry& registry) {
  registry.register_factory(
      "uniform", [] { return std::make_unique<UniformScenario>(); });
  registry.register_factory(
      "fixed-total", [] { return std::make_unique<FixedTotalScenario>(); });
  registry.register_factory(
      "fairness", [] { return std::make_unique<FairnessScenario>(); });
  registry.register_factory(
      "poisson", [] { return std::make_unique<PoissonScenario>(); });
  registry.register_factory(
      "bursty", [] { return std::make_unique<BurstyScenario>(); });
  registry.register_factory(
      "diurnal", [] { return std::make_unique<DiurnalScenario>(); });
  registry.register_factory(
      "trace", [] { return std::make_unique<TraceScenario>(); });
  registry.register_alias("uniform-burst", "uniform");
  registry.register_alias("fixed", "fixed-total");
  registry.register_alias("mmpp", "bursty");
}

}  // namespace detail
}  // namespace whisk::workload
