#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"
#include "workload/function.h"

namespace whisk::workload {

class ArrivalProcess;  // workload/arrival_process.h
class FunctionMix;     // workload/function_mix.h

using CallId = std::int64_t;

// A single end-user request in a test scenario: function f(i) is invoked at
// client release time r(i).
struct CallRequest {
  CallId id = -1;
  FunctionId function = kInvalidFunction;
  sim::SimTime release = 0.0;  // r(i), seconds from experiment start

  // Expected remaining work (reference medians along the longest downstream
  // path, this call inclusive) when the call is a workflow stage; 0 for
  // independent calls. Critical-path-aware policies sort by it; everything
  // else ignores it.
  double cp_hint = 0.0;
};

// A full test scenario: the measured burst (paper Sec. V-A). Requests are
// sorted by release time.
struct Scenario {
  std::vector<CallRequest> calls;
  sim::SimTime window = 60.0;  // burst duration

  [[nodiscard]] std::size_t size() const { return calls.size(); }
};

// Sort by (release, function) and assign sequential call ids. Every
// generator funnels through this, so ids always match release order.
[[nodiscard]] Scenario finalize_scenario(std::vector<CallRequest> calls,
                                         sim::SimTime window);

// Cross an ArrivalProcess with a FunctionMix — the open workload surface,
// mirroring scheduler = invoker x policy x balancer. All draws come from
// the provided Rng, so a (composition, seed) pair fully determines the call
// sequence — the paper's "5 different random sequences of calls" are seeds
// 0..4.
//
// Count-driven processes emit exactly `total` calls; per call, the mix's
// draw happens *before* the release draw — exactly the seed generators'
// stream order, which is what keeps the registered paper scenarios
// byte-identical to the pre-registry implementations. Rate-driven processes
// (Poisson, on-off, diurnal, traces) ignore `total`: they emit their full
// schedule first and functions are assigned in generation order afterwards.
[[nodiscard]] Scenario compose_scenario(const ArrivalProcess& arrivals,
                                        const FunctionMix& mix,
                                        std::size_t total,
                                        sim::SimTime window, sim::Rng& rng);

}  // namespace whisk::workload
