#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"
#include "workload/function.h"

namespace whisk::workload {

using CallId = std::int64_t;

// A single end-user request in a test scenario: function f(i) is invoked at
// client release time r(i).
struct CallRequest {
  CallId id = -1;
  FunctionId function = kInvalidFunction;
  sim::SimTime release = 0.0;  // r(i), seconds from experiment start
};

// A full test scenario: the measured burst (paper Sec. V-A). Requests are
// sorted by release time.
struct Scenario {
  std::vector<CallRequest> calls;
  sim::SimTime window = 60.0;  // burst duration

  [[nodiscard]] std::size_t size() const { return calls.size(); }
};

// Generators for the paper's scenarios. All draws come from the provided
// Rng, so a (seed, parameters) pair fully determines the call sequence —
// the paper's "5 different random sequences of calls" are seeds 0..4.
class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(const FunctionCatalog& catalog)
      : catalog_(&catalog) {}

  // The standard burst (Sec. V-B): intensity v and c CPU cores yield exactly
  // 1.1 * c * v requests, the same number of calls per function, all release
  // times uniform in the 60 s window.
  [[nodiscard]] Scenario uniform_burst(int cores, int intensity,
                                       sim::Rng& rng,
                                       sim::SimTime window = 60.0) const;

  // A burst with an explicit total request count, split equally among the
  // functions (used by the multi-node experiments: 1320 or 2376 requests
  // regardless of the number of worker VMs, Sec. VIII).
  [[nodiscard]] Scenario fixed_total_burst(std::size_t total_requests,
                                           sim::Rng& rng,
                                           sim::SimTime window = 60.0) const;

  // The fairness scenario (Sec. VII-D): exactly `rare_calls` calls of
  // `rare_function`; the remaining requests drawn uniformly at random from
  // the other functions (no partial-uniformity assumption).
  [[nodiscard]] Scenario fairness_burst(int cores, int intensity,
                                        FunctionId rare_function,
                                        std::size_t rare_calls,
                                        sim::Rng& rng,
                                        sim::SimTime window = 60.0) const;

 private:
  [[nodiscard]] Scenario finalize(std::vector<CallRequest> calls,
                                  sim::SimTime window) const;

  const FunctionCatalog* catalog_;
};

}  // namespace whisk::workload
