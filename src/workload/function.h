#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"

namespace whisk::workload {

using FunctionId = int;

inline constexpr FunctionId kInvalidFunction = -1;

// A FaaS function (OpenWhisk "action") as characterized by the SeBS
// benchmark in the paper's Table I. Client-side response-time percentiles
// were measured on an idle on-premises node and include ~10 ms of Kafka
// overhead; the warm *processing* time distribution is derived by stripping
// that overhead.
struct FunctionSpec {
  FunctionId id = kInvalidFunction;
  std::string name;

  // Client-side response time on an idle system (Table I), milliseconds.
  double p5_ms = 0.0;
  double median_ms = 0.0;
  double p95_ms = 0.0;

  // Fraction of the wall-clock processing time that is CPU-bound work
  // (1.0 = compute-bound, ~0 = pure I/O or sleep). Roughly half of the SeBS
  // functions are computationally intensive (paper Sec. V).
  double cpu_fraction = 1.0;

  // Container memory requirement. OpenWhisk's default action memory is
  // 256 MB; we keep it homogeneous so 11 functions x cores containers fit in
  // the paper's 32 GiB pool (Sec. VI).
  double memory_mb = 256.0;

  // Warm processing-time median with the constant client/Kafka overhead
  // stripped (never below a small floor for the sub-20 ms functions).
  [[nodiscard]] double warm_median_ms() const;

  // Parameters of the fitted lognormal warm service-time distribution.
  [[nodiscard]] double lognormal_mu() const;
  [[nodiscard]] double lognormal_sigma() const;
};

// Constant client-observable overhead baked into Table I measurements
// (Kafka hop + HTTP path), milliseconds.
inline constexpr double kClientOverheadMs = 10.0;

// The set of functions an experiment runs. Provides deterministic service
// time sampling and reference medians for stretch computation.
class FunctionCatalog {
 public:
  explicit FunctionCatalog(std::vector<FunctionSpec> specs);

  [[nodiscard]] std::size_t size() const { return specs_.size(); }
  [[nodiscard]] const FunctionSpec& spec(FunctionId id) const;
  [[nodiscard]] const std::vector<FunctionSpec>& specs() const {
    return specs_;
  }

  [[nodiscard]] std::optional<FunctionId> find(const std::string& name) const;

  // Sample a warm processing time (seconds on a dedicated core) from the
  // fitted lognormal, clamped to a plausible envelope around the measured
  // percentiles so a single outlier draw cannot dominate an experiment.
  [[nodiscard]] sim::SimTime sample_service(FunctionId id, sim::Rng& rng) const;

  // Reference response time used as p(i) in the stretch metric: the paper
  // substitutes the client-side idle-system median (Sec. V-A), so stretch
  // can be < 1.
  [[nodiscard]] sim::SimTime reference_median(FunctionId id) const;

  // Mean of the client-side medians over all functions; the paper reports
  // ~1.042 s for Table I and derives intensity-to-utilization from it.
  [[nodiscard]] double mean_reference_median_s() const;

 private:
  std::vector<FunctionSpec> specs_;
};

// The 11 SeBS functions used in the paper (Table I): all benchmark functions
// except the Node.js variants and the network microbenchmarks.
[[nodiscard]] FunctionCatalog sebs_catalog();

}  // namespace whisk::workload
