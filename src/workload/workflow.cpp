#include "workload/workflow.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "util/check.h"
#include "util/parse.h"

namespace whisk::workload {
namespace {

// Probe-derived parameter tables per canonical shape name, cached exactly
// like the fault registry's (registrations are append-only so entries never
// go stale; mutex-guarded because campaign workers normalize specs
// concurrently and map nodes give stable addresses).
const std::vector<WorkflowParam>& workflow_params(const std::string& canon) {
  static auto* mutex = new std::mutex();
  static auto* cache = new std::map<std::string, std::vector<WorkflowParam>>();
  std::lock_guard<std::mutex> lock(*mutex);
  auto it = cache->find(canon);
  if (it == cache->end()) {
    const auto probe = WorkflowRegistry::instance().create(canon);
    it = cache->emplace(canon, probe->params()).first;
  }
  return it->second;
}

// Lowercase, duplicate-check and declared-key-validate `params` for the
// canonical shape `canon` — parameter *values* are validated by building
// the DAG.
std::map<std::string, std::string> fold_params(
    const std::string& canon,
    const std::map<std::string, std::string>& params) {
  const auto& valid = workflow_params(canon);
  std::map<std::string, std::string> out;
  for (const auto& [raw_key, value] : params) {
    const std::string key = util::ascii_lower(raw_key);
    WHISK_CHECK(out.count(key) == 0, ("workflow \"" + canon +
                                      "\" sets parameter \"" + key +
                                      "\" twice")
                                         .c_str());
    bool known = false;
    for (const auto& p : valid) {
      if (p.name == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::vector<std::string> names;
      names.reserve(valid.size());
      for (const auto& p : valid) names.push_back(p.name);
      WHISK_CHECK(false, ("workflow \"" + canon +
                          "\" does not take parameter \"" + raw_key +
                          "\"; valid parameters: " + util::join(names))
                             .c_str());
    }
    out[key] = value;
  }
  return out;
}

// The shared `functions=root|rotate` knob: root (default) runs every stage
// as the root call's function; rotate gives stage s function offset s, so
// branches draw different service distributions (asymmetric DAGs).
bool parse_rotate(const WorkflowSpec& spec) {
  const std::string mode =
      spec.has("functions") ? util::ascii_lower(spec.text("functions"))
                            : std::string("root");
  if (mode == "root") return false;
  if (mode == "rotate") return true;
  WHISK_CHECK(false, ("workflow \"" + spec.name + "\" parameter functions=\"" +
                      spec.text("functions") +
                      "\" must be \"root\" or \"rotate\"")
                         .c_str());
  return false;
}

void apply_rotate(WorkflowDag* dag, bool rotate) {
  for (std::size_t s = 0; s < dag->stages.size(); ++s) {
    dag->stages[s].function_offset = rotate ? static_cast<int>(s) : 0;
  }
}

const WorkflowParam kFunctionsParam{
    "functions", "root",
    "stage functions: root (all run the root call's function) or rotate "
    "(stage s runs root+s mod catalog)"};

// Linear pipeline: s0 -> s1 -> ... -> s{k-1}.
class ChainWorkflow final : public WorkflowDef {
 public:
  std::string_view name() const override { return "chain"; }
  std::string help() const override {
    return "linear pipeline: each stage releases the next on completion";
  }
  std::vector<WorkflowParam> params() const override {
    return {{"stages", "4", "number of stages in the chain (>= 1)"},
            kFunctionsParam};
  }
  WorkflowDag build(const WorkflowSpec& spec) const override {
    const std::size_t stages = spec.count("stages", 4);
    WHISK_CHECK(stages >= 1, ("workflow \"chain\": stages = " +
                              std::to_string(stages) + " must be >= 1")
                                 .c_str());
    WorkflowDag dag;
    dag.stages.resize(stages);
    for (std::size_t s = 0; s < stages; ++s) {
      dag.stages[s].label = "s" + std::to_string(s);
      if (s + 1 < stages) {
        dag.stages[s].successors.push_back(static_cast<int>(s + 1));
      }
      if (s > 0) {
        dag.stages[s].preds = 1;
        dag.stages[s].join_k = 1;
      }
    }
    apply_rotate(&dag, parse_rotate(spec));
    return dag;
  }
};

// Scatter-gather: src -> width parallel branches -> join. join=all waits
// for every branch; join=<k> releases the gather after k ok branches
// (stragglers still run, the join just stops waiting for them).
class FanoutWorkflow final : public WorkflowDef {
 public:
  std::string_view name() const override { return "fanout"; }
  std::string help() const override {
    return "scatter-gather: source fans out to `width` branches, a join "
           "waits for all (or k) of them";
  }
  std::vector<WorkflowParam> params() const override {
    return {{"width", "4", "parallel branches between source and join"},
            {"join", "all",
             "branches the join waits for: all, or an integer k (k-of-n)"},
            kFunctionsParam};
  }
  WorkflowDag build(const WorkflowSpec& spec) const override {
    const std::size_t width = spec.count("width", 4);
    WHISK_CHECK(width >= 1, ("workflow \"fanout\": width = " +
                             std::to_string(width) + " must be >= 1")
                                .c_str());
    std::size_t join_k = width;
    const std::string join = util::ascii_lower(spec.text("join"));
    if (!join.empty() && join != "all") {
      unsigned long long k = 0;
      if (!util::parse_whole_number(join, &k) || k < 1 || k > width) {
        WHISK_CHECK(false, ("workflow \"fanout\" parameter join=\"" +
                            spec.text("join") +
                            "\" must be \"all\" or an integer in [1, width]")
                               .c_str());
      }
      join_k = static_cast<std::size_t>(k);
    }
    WorkflowDag dag;
    dag.stages.resize(width + 2);
    const int sink = static_cast<int>(width + 1);
    dag.stages[0].label = "src";
    for (std::size_t b = 0; b < width; ++b) {
      const int s = static_cast<int>(b + 1);
      dag.stages[0].successors.push_back(s);
      dag.stages[s].label = "b" + std::to_string(b);
      dag.stages[s].preds = 1;
      dag.stages[s].join_k = 1;
      dag.stages[s].successors.push_back(sink);
    }
    dag.stages[sink].label = "join";
    dag.stages[sink].preds = static_cast<int>(width);
    dag.stages[sink].join_k = static_cast<int>(join_k);
    apply_rotate(&dag, parse_rotate(spec));
    return dag;
  }
};

// The classic 4-node diamond generalized to `width` middle stages, with
// functions=rotate by default so the branches are asymmetric — the shape
// where critical-path-aware scheduling visibly beats FIFO.
class DiamondWorkflow final : public WorkflowDef {
 public:
  std::string_view name() const override { return "diamond"; }
  std::string help() const override {
    return "src -> `width` asymmetric middle stages -> sink (functions "
           "rotate by default)";
  }
  std::vector<WorkflowParam> params() const override {
    return {{"width", "2", "middle stages between source and sink"},
            {"functions", "rotate",
             "stage functions: root or rotate (default rotate: asymmetric "
             "branches)"}};
  }
  WorkflowDag build(const WorkflowSpec& spec) const override {
    const std::size_t width = spec.count("width", 2);
    WHISK_CHECK(width >= 1, ("workflow \"diamond\": width = " +
                             std::to_string(width) + " must be >= 1")
                                .c_str());
    WorkflowDag dag;
    dag.stages.resize(width + 2);
    const int sink = static_cast<int>(width + 1);
    dag.stages[0].label = "src";
    for (std::size_t m = 0; m < width; ++m) {
      const int s = static_cast<int>(m + 1);
      dag.stages[0].successors.push_back(s);
      dag.stages[s].label = "m" + std::to_string(m);
      dag.stages[s].preds = 1;
      dag.stages[s].join_k = 1;
      dag.stages[s].successors.push_back(sink);
    }
    dag.stages[sink].label = "sink";
    dag.stages[sink].preds = static_cast<int>(width);
    dag.stages[sink].join_k = static_cast<int>(width);
    const bool rotate = spec.has("functions") ? parse_rotate(spec) : true;
    apply_rotate(&dag, rotate);
    return dag;
  }
};

// Trace-defined DAG from an explicit edge list. Edges separate with '+'
// (the grid-safe canonical form, since ',' splits campaign axis items) or
// ','; an item may chain several hops: "a>b>c" is a>b plus b>c. Stage
// order is topological, ties broken by first appearance in the edge list,
// so the same spec always yields the same stage indices.
class EdgeListWorkflow final : public WorkflowDef {
 public:
  std::string_view name() const override { return "dag"; }
  std::string help() const override {
    return "explicit edge list: edges=a>b+a>c+b>d+c>d (joins wait for "
           "every predecessor)";
  }
  std::vector<WorkflowParam> params() const override {
    return {{"edges", "a>b",
             "'+'- or ','-separated edges, each \"from>to\" (chains "
             "\"a>b>c\" allowed)"},
            kFunctionsParam};
  }
  WorkflowDag build(const WorkflowSpec& spec) const override {
    const std::string edges =
        spec.has("edges") ? spec.text("edges") : std::string("a>b");
    std::vector<std::string> labels;  // first-appearance order
    std::vector<std::pair<int, int>> edge_list;
    const auto node_index = [&labels](std::string_view raw) {
      const std::string label(util::trim_ws(raw));
      WHISK_CHECK(!label.empty(),
                  "workflow \"dag\": edge has an empty stage label");
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if (labels[i] == label) return static_cast<int>(i);
      }
      labels.push_back(label);
      return static_cast<int>(labels.size() - 1);
    };
    for (std::string_view item : util::split_any(edges, "+,")) {
      if (util::trim_ws(item).empty()) continue;
      const auto hops = util::split_any(item, ">");
      WHISK_CHECK(hops.size() >= 2, ("workflow \"dag\": edge \"" +
                                     std::string(item) +
                                     "\" is not \"from>to\"")
                                        .c_str());
      for (std::size_t h = 0; h + 1 < hops.size(); ++h) {
        const int from = node_index(hops[h]);
        const int to = node_index(hops[h + 1]);
        WHISK_CHECK(from != to, ("workflow \"dag\": self-edge on stage \"" +
                                 labels[from] + "\"")
                                    .c_str());
        if (std::find(edge_list.begin(), edge_list.end(),
                      std::make_pair(from, to)) == edge_list.end()) {
          edge_list.emplace_back(from, to);
        }
      }
    }
    WHISK_CHECK(!labels.empty(),
                "workflow \"dag\": edges= lists no stages at all");

    // Kahn topological sort, ties by first appearance; leftovers mean a
    // cycle, which we report by naming the stages stuck on it.
    const std::size_t n = labels.size();
    std::vector<int> indegree(n, 0);
    for (const auto& [from, to] : edge_list) ++indegree[to];
    std::vector<int> order;  // original index -> emission order
    std::vector<int> topo;   // emission order -> original index
    order.assign(n, -1);
    std::vector<int> pending(indegree);
    while (topo.size() < n) {
      int next = -1;
      for (std::size_t i = 0; i < n; ++i) {
        if (order[i] == -1 && pending[i] == 0) {
          next = static_cast<int>(i);
          break;
        }
      }
      if (next == -1) {
        std::vector<std::string> stuck;
        for (std::size_t i = 0; i < n; ++i) {
          if (order[i] == -1) stuck.push_back(labels[i]);
        }
        WHISK_CHECK(false, ("workflow \"dag\": edges form a cycle through "
                            "stages: " +
                            util::join(stuck))
                               .c_str());
      }
      order[next] = static_cast<int>(topo.size());
      topo.push_back(next);
      for (const auto& [from, to] : edge_list) {
        if (from == next) --pending[to];
      }
    }

    WorkflowDag dag;
    dag.stages.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
      dag.stages[s].label = labels[topo[s]];
    }
    for (const auto& [from, to] : edge_list) {
      dag.stages[order[from]].successors.push_back(order[to]);
      ++dag.stages[order[to]].preds;
    }
    for (std::size_t s = 0; s < n; ++s) {
      auto& stage = dag.stages[s];
      std::sort(stage.successors.begin(), stage.successors.end());
      stage.join_k = stage.preds;  // joins wait for every predecessor
    }
    apply_rotate(&dag, parse_rotate(spec));
    return dag;
  }
};

void register_builtin_workflows(WorkflowRegistry& registry) {
  registry.register_factory("chain",
                            [] { return std::make_unique<ChainWorkflow>(); });
  registry.register_factory("fanout",
                            [] { return std::make_unique<FanoutWorkflow>(); });
  registry.register_factory(
      "diamond", [] { return std::make_unique<DiamondWorkflow>(); });
  registry.register_factory(
      "dag", [] { return std::make_unique<EdgeListWorkflow>(); });
  registry.register_alias("scatter-gather", "fanout");
  registry.register_alias("edges", "dag");
}

}  // namespace

WorkflowSpec WorkflowSpec::parse(std::string_view text) {
  WHISK_CHECK(!util::trim_ws(text).empty(),
              "empty workflow spec; expected \"name[?key=value[&...]]\" like "
              "\"chain?stages=4\" or \"fanout?width=8&join=all\" (or "
              "\"none\")");
  WorkflowSpec spec;
  const std::size_t q = text.find('?');
  spec.name = std::string(util::trim_ws(text.substr(0, q)));
  WHISK_CHECK(!spec.name.empty(), ("workflow spec \"" + std::string(text) +
                                   "\" has an empty name before the '?'")
                                      .c_str());
  if (q != std::string_view::npos) {
    util::parse_param_list(text.substr(q + 1),
                           "workflow spec \"" + std::string(text) + "\"",
                           &spec.params);
  }
  return spec.normalized();
}

std::string WorkflowSpec::to_string() const {
  return util::render_params(name, params);
}

WorkflowSpec WorkflowSpec::normalized() const {
  WorkflowSpec out;
  if (util::ascii_lower(name) == "none") {
    WHISK_CHECK(params.empty(),
                "workflow \"none\" takes no parameters; name a shape "
                "(chain, fanout, diamond, dag) to configure one");
    out.name = "none";
    return out;
  }
  auto& registry = WorkflowRegistry::instance();
  out.name = registry.resolve(name);
  out.params = fold_params(out.name, params);
  // Building the DAG validates the parameter *values* too, so a bad width
  // or cyclic edge list dies at parse time, not mid-sweep.
  (void)make_workflow_dag(out);
  return out;
}

bool WorkflowSpec::has(std::string_view key) const {
  return params.count(util::ascii_lower(key)) != 0;
}

double WorkflowSpec::number(std::string_view key, double fallback) const {
  const auto it = params.find(util::ascii_lower(key));
  if (it == params.end()) return fallback;
  double value = 0.0;
  if (!util::parse_finite_double(it->second, &value)) {
    WHISK_CHECK(false, ("workflow \"" + name + "\" parameter " +
                        std::string(key) + "=\"" + it->second +
                        "\" is not a finite number")
                           .c_str());
  }
  return value;
}

std::size_t WorkflowSpec::count(std::string_view key,
                                std::size_t fallback) const {
  const auto it = params.find(util::ascii_lower(key));
  if (it == params.end()) return fallback;
  unsigned long long value = 0;
  if (!util::parse_whole_number(it->second, &value)) {
    WHISK_CHECK(false, ("workflow \"" + name + "\" parameter " +
                        std::string(key) + "=\"" + it->second +
                        "\" is not a whole number >= 0")
                           .c_str());
  }
  return static_cast<std::size_t>(value);
}

std::string WorkflowSpec::text(std::string_view key) const {
  const auto it = params.find(util::ascii_lower(key));
  return it == params.end() ? std::string() : it->second;
}

WorkflowRegistry& WorkflowRegistry::instance() {
  static WorkflowRegistry* registry = [] {
    auto* r = new WorkflowRegistry();
    register_builtin_workflows(*r);
    return r;
  }();
  return *registry;
}

void validate_workflow_dag(const WorkflowDag& dag,
                           const std::string& context) {
  WHISK_CHECK(!dag.stages.empty(),
              (context + ": workflow DAG has no stages").c_str());
  const int n = static_cast<int>(dag.stages.size());
  std::vector<int> indegree(dag.stages.size(), 0);
  std::vector<std::string> seen_labels;
  for (int s = 0; s < n; ++s) {
    const auto& stage = dag.stages[s];
    WHISK_CHECK(!stage.label.empty(),
                (context + ": stage " + std::to_string(s) +
                 " has an empty label")
                    .c_str());
    for (const auto& other : seen_labels) {
      WHISK_CHECK(other != stage.label, (context + ": duplicate stage "
                                         "label \"" +
                                         stage.label + "\"")
                                            .c_str());
    }
    seen_labels.push_back(stage.label);
    int prev = -1;
    for (const int t : stage.successors) {
      WHISK_CHECK(t > s && t < n,
                  (context + ": stage \"" + stage.label + "\" has edge to " +
                   std::to_string(t) +
                   ", which is not a later stage (stages must be "
                   "topologically ordered)")
                      .c_str());
      WHISK_CHECK(t > prev, (context + ": stage \"" + stage.label +
                             "\" successors must be strictly increasing "
                             "(no duplicate edges)")
                                .c_str());
      prev = t;
      ++indegree[static_cast<std::size_t>(t)];
    }
  }
  int sources = 0;
  for (int s = 0; s < n; ++s) {
    const auto& stage = dag.stages[s];
    WHISK_CHECK(stage.preds == indegree[static_cast<std::size_t>(s)],
                (context + ": stage \"" + stage.label + "\" declares " +
                 std::to_string(stage.preds) + " predecessors but " +
                 std::to_string(indegree[static_cast<std::size_t>(s)]) +
                 " edges point to it")
                    .c_str());
    if (stage.preds == 0) {
      ++sources;
      WHISK_CHECK(s == 0 && stage.join_k == 0,
                  (context + ": source stage \"" + stage.label +
                   "\" must be stage 0 with join_k 0")
                      .c_str());
    } else {
      WHISK_CHECK(stage.join_k >= 1 && stage.join_k <= stage.preds,
                  (context + ": stage \"" + stage.label + "\" join_k " +
                   std::to_string(stage.join_k) + " must be in [1, " +
                   std::to_string(stage.preds) + "]")
                      .c_str());
    }
  }
  WHISK_CHECK(sources == 1,
              (context + ": workflow DAG must have exactly one source "
               "(in-degree 0) stage; found " +
               std::to_string(sources))
                  .c_str());
}

WorkflowDag make_workflow_dag(const WorkflowSpec& spec) {
  WHISK_CHECK(spec.enabled(),
              "make_workflow_dag on \"none\": check enabled() first");
  auto& registry = WorkflowRegistry::instance();
  const std::string canon = registry.resolve(spec.name);
  WorkflowSpec folded;
  folded.name = canon;
  folded.params = fold_params(canon, spec.params);
  const auto def = registry.create(canon);
  WorkflowDag dag = def->build(folded);
  validate_workflow_dag(dag, "workflow \"" + folded.to_string() + "\"");
  return dag;
}

}  // namespace whisk::workload
