#include "workload/function_mix.h"

#include <utility>

#include "util/check.h"

namespace whisk::workload {

EqualBlockMix::EqualBlockMix(std::size_t per_function)
    : per_function_(per_function) {
  WHISK_CHECK(per_function > 0, "equal mix needs at least one call per "
                                "function");
}

FunctionId EqualBlockMix::assign(std::size_t i, std::size_t /*n*/,
                                 sim::Rng& /*rng*/) const {
  return static_cast<FunctionId>(i / per_function_);
}

RoundRobinMix::RoundRobinMix(std::size_t num_functions)
    : num_functions_(num_functions) {
  WHISK_CHECK(num_functions > 0, "round-robin mix needs a non-empty catalog");
}

FunctionId RoundRobinMix::assign(std::size_t i, std::size_t /*n*/,
                                 sim::Rng& /*rng*/) const {
  return static_cast<FunctionId>(i % num_functions_);
}

UniformRandomMix::UniformRandomMix(std::size_t num_functions)
    : num_functions_(num_functions) {
  WHISK_CHECK(num_functions > 0, "random mix needs a non-empty catalog");
}

FunctionId UniformRandomMix::assign(std::size_t /*i*/, std::size_t /*n*/,
                                    sim::Rng& rng) const {
  return static_cast<FunctionId>(rng.uniform_index(num_functions_));
}

WeightedMix::WeightedMix(std::vector<double> weights) {
  WHISK_CHECK(!weights.empty(), "weighted mix needs at least one weight");
  cumulative_.reserve(weights.size());
  double sum = 0.0;
  for (const double w : weights) {
    WHISK_CHECK(w >= 0.0, "weighted mix weights must be >= 0");
    sum += w;
    cumulative_.push_back(sum);
  }
  WHISK_CHECK(sum > 0.0, "weighted mix needs at least one positive weight");
}

FunctionId WeightedMix::assign(std::size_t /*i*/, std::size_t /*n*/,
                               sim::Rng& rng) const {
  const double u = rng.uniform(0.0, cumulative_.back());
  for (std::size_t f = 0; f < cumulative_.size(); ++f) {
    if (u < cumulative_[f]) return static_cast<FunctionId>(f);
  }
  return static_cast<FunctionId>(cumulative_.size() - 1);
}

RareFirstMix::RareFirstMix(FunctionId rare_function, std::size_t rare_calls,
                           std::size_t num_functions)
    : rare_function_(rare_function),
      rare_calls_(rare_calls),
      num_functions_(num_functions) {
  WHISK_CHECK(num_functions >= 2,
              "rare-first mix needs at least one non-rare function");
  WHISK_CHECK(rare_function >= 0 &&
                  static_cast<std::size_t>(rare_function) < num_functions,
              "rare function id out of catalog range");
}

FunctionId RareFirstMix::assign(std::size_t i, std::size_t n,
                                sim::Rng& rng) const {
  WHISK_CHECK(rare_calls_ <= n,
              "rare-first mix has more rare calls than total requests");
  if (i < rare_calls_) return rare_function_;
  FunctionId f;
  do {
    f = static_cast<FunctionId>(rng.uniform_index(num_functions_));
  } while (f == rare_function_);
  return f;
}

}  // namespace whisk::workload
