#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace whisk::workload {

// One row of a call trace: when the request was released and, optionally,
// which function it invoked. Rows without a function name get one assigned
// by the replaying scenario's FunctionMix.
struct TraceEntry {
  sim::SimTime release = 0.0;
  std::string function;  // empty -> assigned at replay time
};

// Parses call traces from CSV text:
//
//   # comment lines and blank lines are ignored
//   0.25
//   1.5, graph-bfs
//   release_seconds[,function-name]
//
// Malformed rows (non-numeric or negative release time, missing fields)
// abort with the 1-based line number. This is deliberately not a streaming
// reader: the traces the simulator replays are burst-sized, and a parsed
// vector keeps replay deterministic and trivially seekable.
class TraceReader {
 public:
  [[nodiscard]] static std::vector<TraceEntry> parse(std::string_view text);
  [[nodiscard]] static std::vector<TraceEntry> read_file(
      const std::string& path);
};

}  // namespace whisk::workload
