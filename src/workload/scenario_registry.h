#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/random.h"
#include "util/registry.h"
#include "workload/function.h"
#include "workload/scenario.h"
#include "workload/scenario_spec.h"

namespace whisk::workload {

// Deployment-side knobs a scenario generator may scale with. The paper's
// bursts size themselves as 1.1 * (nodes * cores) * intensity; trace
// replays and rate-driven processes may ignore everything but the catalog.
struct ScenarioContext {
  const FunctionCatalog* catalog = nullptr;
  int cores = 10;      // per node
  int nodes = 1;
  int intensity = 30;  // the paper's load knob; a scenario's own
                       // intensity parameter takes precedence
};

// One declared parameter of a registered scenario; surfaced by the
// unknown-key diagnostics and by tools/scenario_catalog.
struct ScenarioParam {
  std::string name;
  std::string default_value;  // display form, e.g. "60" or "experiment
                              // intensity"; actual resolution is in the def
  std::string help;
  bool required = false;  // no usable default: the spec must set it
};

// One registered scenario generator: its declared parameters plus the
// generation recipe (usually compose_scenario of an ArrivalProcess x
// FunctionMix). Stateless: create() hands out a fresh def, generate() takes
// everything it needs.
class ScenarioDef {
 public:
  virtual ~ScenarioDef() = default;

  [[nodiscard]] virtual std::string help() const = 0;
  [[nodiscard]] virtual std::vector<ScenarioParam> params() const = 0;
  [[nodiscard]] virtual Scenario generate(const ScenarioSpec& spec,
                                          const ScenarioContext& ctx,
                                          sim::Rng& rng) const = 0;
};

// The open set of workload scenarios, keyed by canonical lowercase name.
// The paper's three scenarios plus the synthetic arrival processes are
// registered on first use; anything else can be added at runtime:
//
//   ScenarioRegistry::instance().register_factory(
//       "my-scenario", [] { return std::make_unique<MyScenarioDef>(); });
//   auto s = make_scenario("my-scenario?knob=3", ctx, rng);
//
// Unknown names abort with a message listing every registered name.
class ScenarioRegistry final : public util::FactoryRegistry<ScenarioDef> {
 public:
  static ScenarioRegistry& instance();

 private:
  ScenarioRegistry() : FactoryRegistry("scenario") {}
};

// Validate `spec` against the registry and run the registered generator —
// the one-call surface used by the experiment runner and the tools.
[[nodiscard]] Scenario make_scenario(const ScenarioSpec& spec,
                                     const ScenarioContext& ctx,
                                     sim::Rng& rng);
[[nodiscard]] Scenario make_scenario(std::string_view spec,
                                     const ScenarioContext& ctx,
                                     sim::Rng& rng);

namespace detail {
// Defined in builtin_scenarios.cpp: uniform, fixed-total, fairness,
// poisson, bursty (alias mmpp), diurnal, trace.
void register_builtin_scenarios(ScenarioRegistry& registry);
}  // namespace detail

}  // namespace whisk::workload
