#include "workload/arrival_process.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/check.h"

namespace whisk::workload {
namespace {

// Rate-driven generation is linear in the expected event (and phase)
// count; a huge-but-finite rate or a microscopic phase duration would spin
// the gap loops for eons and overflow the reserve() cast long before
// allocating. Bursts are thousands of calls; 1e7 is generous headroom.
constexpr double kMaxExpectedEvents = 1e7;

void check_expected(double expected, const char* what) {
  WHISK_CHECK(expected <= kMaxExpectedEvents,
              (std::string(what) +
               " implies more than 1e7 expected events over the window; "
               "lower the rate or shrink the window")
                  .c_str());
}

}  // namespace

sim::SimTime ArrivalProcess::sample(sim::SimTime /*window*/,
                                    sim::Rng& /*rng*/) const {
  WHISK_CHECK(false,
              "sample() called on a rate-driven arrival process; use "
              "schedule()");
  return 0.0;
}

std::vector<sim::SimTime> ArrivalProcess::schedule(sim::SimTime /*window*/,
                                                   sim::Rng& /*rng*/) const {
  WHISK_CHECK(false,
              "schedule() called on a count-driven arrival process; use "
              "sample() once per call");
  return {};
}

sim::SimTime UniformArrivals::sample(sim::SimTime window,
                                     sim::Rng& rng) const {
  return rng.uniform(0.0, window);
}

PoissonArrivals::PoissonArrivals(double rate) : rate_(rate) {
  WHISK_CHECK(rate > 0.0 && std::isfinite(rate),
              "poisson arrival rate must be positive and finite");
}

std::vector<sim::SimTime> PoissonArrivals::schedule(sim::SimTime window,
                                                    sim::Rng& rng) const {
  check_expected(rate_ * window, "poisson rate * window");
  std::vector<sim::SimTime> out;
  out.reserve(static_cast<std::size_t>(rate_ * window) + 16);
  sim::SimTime t = 0.0;
  for (;;) {
    t += rng.exponential(rate_);
    if (t >= window) break;
    out.push_back(t);
  }
  return out;
}

OnOffArrivals::OnOffArrivals(double rate_on, double rate_off,
                             double mean_on_s, double mean_off_s)
    : rate_on_(rate_on),
      rate_off_(rate_off),
      mean_on_s_(mean_on_s),
      mean_off_s_(mean_off_s) {
  WHISK_CHECK(rate_on > 0.0 && std::isfinite(rate_on),
              "on-off burst rate (rate-on) must be positive and finite");
  WHISK_CHECK(rate_off >= 0.0 && std::isfinite(rate_off),
              "on-off base rate (rate-off) must be >= 0 and finite");
  WHISK_CHECK(mean_on_s > 0.0 && mean_off_s > 0.0 &&
                  std::isfinite(mean_on_s) && std::isfinite(mean_off_s),
              "on-off phase durations (mean-on/mean-off) must be positive "
              "and finite");
}

std::vector<sim::SimTime> OnOffArrivals::schedule(sim::SimTime window,
                                                  sim::Rng& rng) const {
  check_expected(std::max(rate_on_, rate_off_) * window,
                 "on-off rate * window");
  check_expected(window / mean_on_s_ + window / mean_off_s_,
                 "on-off window / phase duration");
  std::vector<sim::SimTime> out;
  sim::SimTime phase_start = 0.0;
  bool on = true;
  while (phase_start < window) {
    const double mean = on ? mean_on_s_ : mean_off_s_;
    const double rate = on ? rate_on_ : rate_off_;
    const sim::SimTime phase_end =
        std::min(phase_start + rng.exponential(1.0 / mean), window);
    if (rate > 0.0) {
      sim::SimTime t = phase_start;
      for (;;) {
        t += rng.exponential(rate);
        if (t >= phase_end) break;
        out.push_back(t);
      }
    }
    phase_start = phase_end;
    on = !on;
  }
  return out;
}

DiurnalArrivals::DiurnalArrivals(double mean_rate, double amplitude,
                                 double period_s)
    : mean_rate_(mean_rate), amplitude_(amplitude), period_s_(period_s) {
  WHISK_CHECK(mean_rate > 0.0 && std::isfinite(mean_rate),
              "diurnal mean rate must be positive and finite");
  WHISK_CHECK(amplitude >= 0.0 && amplitude <= 1.0,
              "diurnal amplitude must be in [0, 1]");
  WHISK_CHECK(period_s > 0.0 && std::isfinite(period_s),
              "diurnal period must be positive and finite");
}

std::vector<sim::SimTime> DiurnalArrivals::schedule(sim::SimTime window,
                                                    sim::Rng& rng) const {
  // Thinning (Lewis-Shedler): draw from a homogeneous process at the peak
  // rate and accept each point with probability lambda(t) / lambda_max.
  const double lambda_max = mean_rate_ * (1.0 + amplitude_);
  check_expected(lambda_max * window, "diurnal peak rate * window");
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  std::vector<sim::SimTime> out;
  out.reserve(static_cast<std::size_t>(mean_rate_ * window) + 16);
  sim::SimTime t = 0.0;
  for (;;) {
    t += rng.exponential(lambda_max);
    if (t >= window) break;
    const double lambda_t =
        mean_rate_ * (1.0 + amplitude_ * std::sin(kTwoPi * t / period_s_));
    if (rng.uniform() * lambda_max < lambda_t) out.push_back(t);
  }
  return out;
}

TraceArrivals::TraceArrivals(std::vector<sim::SimTime> times)
    : times_(std::move(times)) {
  for (const sim::SimTime t : times_) {
    WHISK_CHECK(t >= 0.0, "trace release times must be >= 0");
  }
}

std::vector<sim::SimTime> TraceArrivals::schedule(sim::SimTime window,
                                                  sim::Rng& /*rng*/) const {
  std::vector<sim::SimTime> out;
  out.reserve(times_.size());
  for (const sim::SimTime t : times_) {
    if (t < window) out.push_back(t);
  }
  return out;
}

}  // namespace whisk::workload
