#include "workload/scenario_registry.h"

#include "util/check.h"

namespace whisk::workload {

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    detail::register_builtin_scenarios(*r);
    return r;
  }();
  return *registry;
}

Scenario make_scenario(const ScenarioSpec& spec, const ScenarioContext& ctx,
                       sim::Rng& rng) {
  WHISK_CHECK(ctx.catalog != nullptr,
              "ScenarioContext.catalog must point at a FunctionCatalog");
  WHISK_CHECK(ctx.catalog->size() > 0, "scenario needs a non-empty catalog");
  const ScenarioSpec normalized = spec.normalized();
  const auto def = ScenarioRegistry::instance().create(normalized.name);
  return def->generate(normalized, ctx, rng);
}

Scenario make_scenario(std::string_view spec, const ScenarioContext& ctx,
                       sim::Rng& rng) {
  return make_scenario(ScenarioSpec::parse(spec), ctx, rng);
}

}  // namespace whisk::workload
