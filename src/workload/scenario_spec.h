#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

namespace whisk::workload {

// A scenario by registry name plus named parameters — the workload-side
// mirror of experiments::SchedulerSpec:
//
//   auto spec = ScenarioSpec::parse("uniform?intensity=60");
//   spec.to_string()  -> "uniform?intensity=60"
//
// Grammar: name[?key=value[&key=value]...]. The name and the keys are
// case-insensitive; values are kept verbatim (they may be file paths).
// Parameters are stored sorted, so to_string() is canonical and
// parse(to_string()) round-trips exactly. parse() and normalized() resolve
// the name against the ScenarioRegistry (aliases, case) and reject unknown
// parameter keys with an error that lists the scenario's valid keys.
struct ScenarioSpec {
  std::string name = "uniform";
  std::map<std::string, std::string> params;

  [[nodiscard]] static ScenarioSpec parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  // Abort with a name-listing error if the scenario or any parameter key is
  // unknown; returns a copy with the name canonicalized and keys lowercased.
  [[nodiscard]] ScenarioSpec normalized() const;

  [[nodiscard]] bool has(std::string_view key) const;

  // Typed parameter access with a fallback for absent keys. Unparsable
  // values abort, naming the scenario, the key, and the offending value.
  [[nodiscard]] double number(std::string_view key, double fallback) const;
  [[nodiscard]] std::size_t count(std::string_view key,
                                  std::size_t fallback) const;
  [[nodiscard]] std::string text(std::string_view key,
                                 std::string_view fallback) const;

  friend bool operator==(const ScenarioSpec& a, const ScenarioSpec& b) {
    return a.name == b.name && a.params == b.params;
  }
  friend bool operator!=(const ScenarioSpec& a, const ScenarioSpec& b) {
    return !(a == b);
  }
};

}  // namespace whisk::workload
