#pragma once

#include <vector>

#include "sim/random.h"
#include "sim/time.h"

namespace whisk::workload {

// When requests hit the platform, independent of *which* function each one
// is (that is the FunctionMix's job). Two flavours:
//
//  - count-driven: the scenario fixes the number of calls and the process
//    answers "when does one call arrive?" (sample()). The composer invokes
//    it once per call, interleaved after the mix's draw.
//  - rate-driven: the process itself decides how many arrivals fit in the
//    window (schedule()): Poisson, bursty on-off, diurnal curves, traces.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  [[nodiscard]] virtual bool rate_driven() const = 0;

  // Count-driven: one release time in [0, window). Aborts on rate-driven
  // processes.
  [[nodiscard]] virtual sim::SimTime sample(sim::SimTime window,
                                            sim::Rng& rng) const;

  // Rate-driven: every release time in [0, window), in generation order
  // (callers sort). Aborts on count-driven processes.
  [[nodiscard]] virtual std::vector<sim::SimTime> schedule(
      sim::SimTime window, sim::Rng& rng) const;
};

// I.i.d. uniform over the window — the paper's measured burst (Sec. V-B).
class UniformArrivals final : public ArrivalProcess {
 public:
  [[nodiscard]] bool rate_driven() const override { return false; }
  [[nodiscard]] sim::SimTime sample(sim::SimTime window,
                                    sim::Rng& rng) const override;
};

// Homogeneous Poisson process: exponential inter-arrival gaps at `rate`
// arrivals per second until the window is exhausted.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate);

  [[nodiscard]] bool rate_driven() const override { return true; }
  [[nodiscard]] std::vector<sim::SimTime> schedule(
      sim::SimTime window, sim::Rng& rng) const override;

 private:
  double rate_;
};

// Two-state Markov-modulated on-off process (MMPP-2): alternating ON/OFF
// phases with exponential sojourn times; arrivals are Poisson at `rate_on`
// during ON phases and `rate_off` (may be 0) during OFF phases. The process
// starts in an ON phase, so short windows still see traffic.
class OnOffArrivals final : public ArrivalProcess {
 public:
  OnOffArrivals(double rate_on, double rate_off, double mean_on_s,
                double mean_off_s);

  [[nodiscard]] bool rate_driven() const override { return true; }
  [[nodiscard]] std::vector<sim::SimTime> schedule(
      sim::SimTime window, sim::Rng& rng) const override;

 private:
  double rate_on_;
  double rate_off_;
  double mean_on_s_;
  double mean_off_s_;
};

// Inhomogeneous Poisson process with a sinusoidal rate curve, sampled by
// thinning:  lambda(t) = mean_rate * (1 + amplitude * sin(2*pi*t/period)).
// amplitude in [0, 1]; period defaults to one full cycle per window at the
// scenario layer (Azure-Functions-style diurnal load, compressed into the
// burst window).
class DiurnalArrivals final : public ArrivalProcess {
 public:
  DiurnalArrivals(double mean_rate, double amplitude, double period_s);

  [[nodiscard]] bool rate_driven() const override { return true; }
  [[nodiscard]] std::vector<sim::SimTime> schedule(
      sim::SimTime window, sim::Rng& rng) const override;

 private:
  double mean_rate_;
  double amplitude_;
  double period_s_;
};

// Replays pre-recorded release times (e.g. from a TraceReader); entries at
// or past the window are dropped.
class TraceArrivals final : public ArrivalProcess {
 public:
  explicit TraceArrivals(std::vector<sim::SimTime> times);

  [[nodiscard]] bool rate_driven() const override { return true; }
  [[nodiscard]] std::vector<sim::SimTime> schedule(
      sim::SimTime window, sim::Rng& rng) const override;

 private:
  std::vector<sim::SimTime> times_;
};

}  // namespace whisk::workload
