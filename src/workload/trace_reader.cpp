#include "workload/trace_reader.h"

#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/parse.h"

namespace whisk::workload {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::vector<TraceEntry> TraceReader::parse(std::string_view text) {
  std::vector<TraceEntry> out;
  std::size_t line_no = 0;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t nl = text.find('\n', begin);
    const std::size_t end = nl == std::string_view::npos ? text.size() : nl;
    const std::string_view line = trim(text.substr(begin, end - begin));
    ++line_no;
    begin = end + 1;
    if (nl == std::string_view::npos && line.empty()) break;
    if (line.empty() || line.front() == '#') continue;

    const std::size_t comma = line.find(',');
    const std::string time_field(
        trim(line.substr(0, comma == std::string_view::npos ? line.size()
                                                            : comma)));
    double release = 0.0;
    const bool numeric = util::parse_finite_double(time_field, &release);
    if (!numeric || release < 0.0) {
      WHISK_CHECK(false, ("trace line " + std::to_string(line_no) + " \"" +
                          std::string(line) +
                          "\": release time must be a number >= 0")
                             .c_str());
    }

    TraceEntry entry;
    entry.release = release;
    if (comma != std::string_view::npos) {
      entry.function = std::string(trim(line.substr(comma + 1)));
      WHISK_CHECK(!entry.function.empty(),
                  ("trace line " + std::to_string(line_no) +
                   ": empty function name after the comma")
                      .c_str());
    }
    out.push_back(std::move(entry));
  }
  return out;
}

std::vector<TraceEntry> TraceReader::read_file(const std::string& path) {
  std::ifstream in(path);
  WHISK_CHECK(in.good(),
              ("cannot open trace file \"" + path + "\"").c_str());
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

}  // namespace whisk::workload
