#pragma once

#include <cstddef>
#include <vector>

#include "sim/random.h"
#include "workload/function.h"

namespace whisk::workload {

// Which function each call invokes, independent of *when* it arrives (that
// is the ArrivalProcess's job). The composer invokes assign() in call order;
// implementations may draw from the rng (the draws interleave with the
// arrival draws for count-driven processes — part of the byte-compat
// contract with the pre-registry seed generators).
class FunctionMix {
 public:
  virtual ~FunctionMix() = default;

  // The function for call i of n total calls.
  [[nodiscard]] virtual FunctionId assign(std::size_t i, std::size_t n,
                                          sim::Rng& rng) const = 0;
};

// Block-equal split: calls [k*per_function, (k+1)*per_function) all invoke
// function k — the layout of the paper's uniform burst, where every
// function gets the same number of calls.
class EqualBlockMix final : public FunctionMix {
 public:
  explicit EqualBlockMix(std::size_t per_function);

  [[nodiscard]] FunctionId assign(std::size_t i, std::size_t n,
                                  sim::Rng& rng) const override;

 private:
  std::size_t per_function_;
};

// Round-robin i % num_functions — the layout of the paper's fixed-total
// multi-node bursts (near-equal counts for any total).
class RoundRobinMix final : public FunctionMix {
 public:
  explicit RoundRobinMix(std::size_t num_functions);

  [[nodiscard]] FunctionId assign(std::size_t i, std::size_t n,
                                  sim::Rng& rng) const override;

 private:
  std::size_t num_functions_;
};

// Each call draws a function uniformly at random.
class UniformRandomMix final : public FunctionMix {
 public:
  explicit UniformRandomMix(std::size_t num_functions);

  [[nodiscard]] FunctionId assign(std::size_t i, std::size_t n,
                                  sim::Rng& rng) const override;

 private:
  std::size_t num_functions_;
};

// Each call draws function f with probability weights[f] / sum(weights)
// (weights need not be normalized; zero-weight functions never run).
class WeightedMix final : public FunctionMix {
 public:
  explicit WeightedMix(std::vector<double> weights);

  [[nodiscard]] FunctionId assign(std::size_t i, std::size_t n,
                                  sim::Rng& rng) const override;

 private:
  std::vector<double> cumulative_;  // running sums; back() == total weight
};

// The fairness scenario's mix (Sec. VII-D): the first `rare_calls` calls
// invoke the rare function; every later call rejection-samples uniformly
// over the *other* functions, matching the seed fairness_burst stream
// draw for draw.
class RareFirstMix final : public FunctionMix {
 public:
  RareFirstMix(FunctionId rare_function, std::size_t rare_calls,
               std::size_t num_functions);

  [[nodiscard]] FunctionId assign(std::size_t i, std::size_t n,
                                  sim::Rng& rng) const override;

 private:
  FunctionId rare_function_;
  std::size_t rare_calls_;
  std::size_t num_functions_;
};

}  // namespace whisk::workload
