#include "sim/random.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "util/check.h"

namespace whisk::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : initial_seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t tag) const {
  // Mix the original seed with the tag through SplitMix64 so forks with
  // nearby tags land in unrelated regions of the state space.
  std::uint64_t sm = initial_seed_ ^ (tag * 0x9E3779B97F4A7C15ULL + 1);
  return Rng(splitmix64(sm));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  WHISK_CHECK(hi >= lo, "uniform(lo, hi) with hi < lo");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  WHISK_CHECK(n > 0, "uniform_index(0)");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::exponential(double rate) {
  WHISK_CHECK(rate > 0.0, "exponential rate must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::normal() {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mu, double sigma) {
  WHISK_CHECK(sigma >= 0.0, "negative stddev");
  return mu + sigma * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::uint64_t hash_tag(const std::string& name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace whisk::sim
