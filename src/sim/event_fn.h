#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace whisk::sim {

// Move-only type-erased `void()` callable with small-buffer optimization.
//
// The engine hot path schedules millions of short-lived lambdas whose
// captures are a handful of pointers and doubles; `std::function` heap
// allocates for most of them (and refuses move-only captures outright).
// EventFn stores any nothrow-movable callable of up to kInlineSize bytes
// inline in the event slot and only falls back to the heap for oversized
// captures, so the common schedule/execute cycle performs zero allocations.
class EventFn {
 public:
  // Large enough for the simulator's hot lambdas: `this` plus a moved-in
  // std::function/EventFn payload, or several doubles/pointers.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_.buf)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      storage_.ptr = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { steal(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  EventFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(&storage_); }

  // Invoke once and destroy the callable, leaving *this empty: the
  // engine's execute path fused into a single indirect call. `*this` must
  // outlive the invocation (the callable may not re-enter or reassign it).
  void consume() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke_destroy(&storage_);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  // Whether a callable of type D would be stored inline (no allocation).
  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<D>;

 private:
  union Storage {
    alignas(kInlineAlign) unsigned char buf[kInlineSize];
    void* ptr;
  };

  struct Ops {
    void (*invoke)(Storage*);
    // Move-construct into `dst` and destroy the source object.
    void (*relocate)(Storage* dst, Storage* src) noexcept;
    void (*destroy)(Storage*) noexcept;
    void (*invoke_destroy)(Storage*);
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](Storage* s) { (*std::launder(reinterpret_cast<D*>(s->buf)))(); },
      [](Storage* dst, Storage* src) noexcept {
        D* obj = std::launder(reinterpret_cast<D*>(src->buf));
        ::new (static_cast<void*>(dst->buf)) D(std::move(*obj));
        obj->~D();
      },
      [](Storage* s) noexcept {
        std::launder(reinterpret_cast<D*>(s->buf))->~D();
      },
      [](Storage* s) {
        D* obj = std::launder(reinterpret_cast<D*>(s->buf));
        (*obj)();
        obj->~D();
      },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](Storage* s) { (*static_cast<D*>(s->ptr))(); },
      [](Storage* dst, Storage* src) noexcept { dst->ptr = src->ptr; },
      [](Storage* s) noexcept { delete static_cast<D*>(s->ptr); },
      [](Storage* s) {
        D* obj = static_cast<D*>(s->ptr);
        (*obj)();
        delete obj;
      },
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  void steal(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(&storage_, &other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  Storage storage_;
  const Ops* ops_ = nullptr;
};

}  // namespace whisk::sim
