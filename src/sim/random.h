#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace whisk::sim {

// Deterministic pseudo-random number generator (xoshiro256**), seeded via
// SplitMix64. We avoid std::mt19937 + std::*_distribution because their
// results are not guaranteed identical across standard library
// implementations; experiments must reproduce bit-for-bit from a seed on any
// platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Derive an independent child stream (e.g. one per node, one per
  // experiment repetition). Streams derived with distinct tags do not
  // overlap in practice.
  [[nodiscard]] Rng fork(std::uint64_t tag) const;

  // Raw 64 random bits.
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  // Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  // Standard normal via Box–Muller (no cached spare: keeps the stream
  // position deterministic regardless of call interleaving).
  double normal();

  // Normal with mean/stddev.
  double normal(double mu, double sigma);

  // Lognormal parameterized by the *underlying* normal's mu/sigma,
  // i.e. median = exp(mu).
  double lognormal(double mu, double sigma);

  // Fisher–Yates shuffle of an index permutation [0, n).
  template <typename T>
  void shuffle(std::vector<T>& xs) {
    for (std::size_t i = xs.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      std::swap(xs[i - 1], xs[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  std::uint64_t initial_seed_;
};

// Stable 64-bit hash of a string (FNV-1a); used to derive substream tags
// from names ("node-0", "gatling", ...).
[[nodiscard]] std::uint64_t hash_tag(const std::string& name);

}  // namespace whisk::sim
