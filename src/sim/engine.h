#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace whisk::sim {

// Handle to a scheduled event; allows cancellation. Cancelled events stay in
// the heap but are skipped when popped (lazy deletion), which keeps
// cancellation O(1).
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

// A single-threaded discrete-event simulation engine.
//
// Events are (time, callback) pairs ordered by time, with insertion order as
// the tie-breaker so same-timestamp events run deterministically in the order
// they were scheduled. Every component of the simulator (clients, Kafka,
// invokers, the Docker daemon, the CPU model) drives itself exclusively
// through this engine, which makes whole-cluster runs reproducible from a
// single seed.
class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedule `fn` to run at absolute time `at` (>= now).
  EventId schedule_at(SimTime at, Callback fn);

  // Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(SimTime delay, Callback fn);

  // Cancel a pending event. Cancelling an already-run or unknown id is a
  // no-op and returns false.
  bool cancel(EventId id);

  // Run until the event queue drains or `until` is reached (if >= 0).
  // Returns the number of callbacks executed.
  std::size_t run(SimTime until = kNever);

  // Execute exactly one pending event, if any. Returns false when drained.
  bool step();

  [[nodiscard]] bool empty() const { return live_events_ == 0; }
  [[nodiscard]] std::size_t pending() const { return live_events_; }
  [[nodiscard]] std::size_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    EventId id;
    // Min-heap on (time, id): earlier time first, FIFO among equal times.
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  struct Slot {
    Callback fn;
    bool cancelled = false;
  };

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::size_t executed_ = 0;
  std::size_t live_events_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  // id -> callback for pending events. Erased on execution/cancellation.
  std::unordered_map<EventId, Slot> slots_;
};

}  // namespace whisk::sim
