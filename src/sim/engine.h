#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_fn.h"
#include "sim/time.h"

namespace whisk::sim {

// Handle to a scheduled event; allows cancellation and rescheduling. The id
// packs {generation:32 | slot:32}: slots are recycled through a free list,
// and the generation counter makes stale handles safe — cancelling an
// already-run or already-cancelled id is a no-op even after its slot has
// been reused by a later event.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

// A single-threaded discrete-event simulation engine.
//
// Events are (time, callback) pairs ordered by time, with schedule order as
// the tie-breaker so same-timestamp events run deterministically in the
// order they were scheduled. Every component of the simulator (clients,
// Kafka, invokers, the Docker daemon, the CPU model) drives itself
// exclusively through this engine, which makes whole-cluster runs
// reproducible from a single seed.
//
// Storage layout (the simulator's hottest structure):
//   * callbacks live in a chunked slab with stable addresses, recycled
//     through a LIFO free list — no per-event hash map, no per-event
//     allocation, and execution invokes the callback in place (no move
//     out: the slot cannot be reused until the callback returns);
//   * an indexed 4-ary min-heap whose entries carry the (time, seq) sort
//     key inline — sifts touch only the contiguous heap array — with
//     back-pointers (SlotMeta::heap_pos) giving true O(log n) cancellation
//     instead of lazy-deletion ghosts that every later pop must skip; pops
//     use the bottom-up hole-sinking variant, which trades the
//     hard-to-predict per-level exit branch for a short final sift-up;
//   * EventFn callbacks with inline storage, so the common lambda captures
//     (a `this` pointer plus a few words) never touch the allocator.
class Engine {
 public:
  using Callback = EventFn;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedule `fn` to run at absolute time `at` (>= now).
  EventId schedule_at(SimTime at, Callback fn);

  // Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(SimTime delay, Callback fn);

  // Cancel a pending event. Cancelling an already-run, already-cancelled or
  // unknown id is a no-op and returns false.
  bool cancel(EventId id);

  // Move a pending event to a new time (>= now), keeping its id and
  // callback. Equivalent to cancel + schedule — among events at the new
  // timestamp the moved event runs last, exactly as a fresh schedule would —
  // but reuses the slot and skips destroying/rebuilding the callback.
  // Returns false (and does nothing) if the id is stale.
  bool reschedule_at(EventId id, SimTime at);
  bool reschedule_in(EventId id, SimTime delay);

  // Run until the event queue drains or the clock reaches `until` (pass
  // kNever for no horizon). Returns the number of callbacks executed.
  std::size_t run(SimTime until = kNever);

  // Execute exactly one pending event, if any. Returns false when drained.
  bool step();

  // Return the engine to its just-constructed observable state while
  // keeping the slot arena, heap array and free list warm — the
  // workspace-reuse primitive (experiments::CellWorkspace). Any still-
  // pending events (normally none: campaign runs drain the queue) are
  // destroyed, and every outstanding EventId is invalidated through the
  // usual generation bump. Event ordering is unaffected by reuse: the heap
  // orders on (time, seq) alone, so recycled slot numbering can never
  // change which event runs next.
  void reset();

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::size_t executed() const { return executed_; }

 private:
  static constexpr std::uint32_t kNoHeapPos = 0xffffffffu;
  // 512 callbacks per slab chunk: chunk arrays never move, so an executing
  // callback stays put even when the arena grows mid-callback.
  static constexpr std::size_t kChunkShift = 9;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  // Per-slot bookkeeping, kept flat and tiny (8 bytes) so the heap_pos
  // writes during sifts land in a dense array instead of alongside the fat
  // callback storage.
  struct SlotMeta {
    std::uint32_t gen = 1;  // bumped on release; id must match to cancel
    std::uint32_t heap_pos = kNoHeapPos;
  };

  // Heap entries carry the full sort key so sifting never dereferences the
  // slot records: comparisons stay inside one contiguous array, as
  // cache-friendly as the seed's (time, id) heap.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;  // schedule order; FIFO tie-break at equal times
    std::uint32_t slot;
  };

  // Earlier time first; among equal times, earlier schedule first (the
  // 64-bit seq never wraps, so FIFO order holds at any event volume).
  // Bitwise combination keeps the result branch-free so the sift loops
  // compile to conditional moves.
  [[nodiscard]] static bool before(const HeapEntry& a, const HeapEntry& b) {
    const bool lt = a.time < b.time;
    const bool eq = a.time == b.time;
    const bool sq = a.seq < b.seq;
    return lt | (eq & sq);
  }

  [[nodiscard]] EventFn& fn_at(std::uint32_t idx) {
    return fn_chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  [[nodiscard]] std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);

  void place(std::size_t pos, const HeapEntry& e) {
    heap_[pos] = e;
    meta_[e.slot].heap_pos = static_cast<std::uint32_t>(pos);
  }
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void pop_root();
  void heap_remove(std::size_t pos);
  void execute_top();

  // Decode an id; returns nullptr when it does not name a live event.
  [[nodiscard]] SlotMeta* live_slot(EventId id);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::size_t executed_ = 0;
  std::vector<SlotMeta> meta_;       // flat per-slot generation + heap pos
  std::vector<std::unique_ptr<EventFn[]>> fn_chunks_;  // stable callback slab
  std::vector<std::uint32_t> free_;  // LIFO free list of slot indices
  std::vector<HeapEntry> heap_;      // 4-ary min-heap keyed by (time, seq)
};

}  // namespace whisk::sim
