#pragma once

namespace whisk::sim {

// Simulation time, in seconds. A plain double keeps the arithmetic in the
// experiment harness readable; at the horizons we simulate (minutes) the
// 52-bit mantissa gives sub-nanosecond resolution, far below any modeled
// latency.
using SimTime = double;

inline constexpr SimTime kNever = -1.0;

// Unit helpers so call sites read like the paper ("60-second window",
// "10 ms Kafka overhead").
constexpr SimTime seconds(double s) { return s; }
constexpr SimTime millis(double ms) { return ms / 1000.0; }
constexpr SimTime micros(double us) { return us / 1'000'000.0; }

constexpr double to_millis(SimTime t) { return t * 1000.0; }

}  // namespace whisk::sim
