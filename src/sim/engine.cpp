#include "sim/engine.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace whisk::sim {
namespace {

// 4-ary heap: shallower than a binary heap (fewer levels touched per sift)
// at the cost of three extra comparisons per level — comparisons are cheap
// here because the sort key lives in the heap entry itself.
constexpr std::size_t kArity = 4;

constexpr std::uint32_t slot_of(EventId id) {
  return static_cast<std::uint32_t>(id & 0xffffffffu);
}

constexpr std::uint32_t gen_of(EventId id) {
  return static_cast<std::uint32_t>(id >> 32);
}

constexpr EventId make_id(std::uint32_t gen, std::uint32_t slot) {
  return (static_cast<EventId>(gen) << 32) | slot;
}

}  // namespace

std::uint32_t Engine::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  WHISK_CHECK(meta_.size() < 0xffffffffu, "event slot arena exhausted");
  const auto idx = static_cast<std::uint32_t>(meta_.size());
  meta_.emplace_back();
  if ((idx >> kChunkShift) == fn_chunks_.size()) {
    fn_chunks_.push_back(std::make_unique<EventFn[]>(kChunkSize));
  }
  return idx;
}

void Engine::release_slot(std::uint32_t idx) {
  fn_at(idx) = nullptr;
  SlotMeta& m = meta_[idx];
  m.heap_pos = kNoHeapPos;
  ++m.gen;  // invalidates every outstanding id naming this slot
  // Retire the slot instead of recycling it once its generation counter
  // would wrap: a wrapped generation could make a 4-billion-release-old
  // stale id match a live event. Leaks one slot per 2^32 releases.
  if (m.gen != 0xffffffffu) free_.push_back(idx);
}

void Engine::sift_up(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    if (!before(e, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, e);
}

void Engine::sift_down(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = pos * kArity + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + kArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      best = before(heap_[c], heap_[best]) ? c : best;
    }
    if (!before(heap_[best], e)) break;
    place(pos, heap_[best]);
    pos = best;
  }
  place(pos, e);
}

// Remove the root with the bottom-up variant: sink the hole along minimum
// children to the bottom (no hard-to-predict compare-against-key exit per
// level), then drop the former last element in and bubble it up the few
// levels it actually needs.
void Engine::pop_root() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t first_child = pos * kArity + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + kArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      best = before(heap_[c], heap_[best]) ? c : best;
    }
    place(pos, heap_[best]);
    pos = best;
  }
  place(pos, last);
  sift_up(pos);
}

void Engine::heap_remove(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    const HeapEntry moved = heap_[last];
    heap_.pop_back();
    place(pos, moved);
    // The moved element may need to travel either direction.
    sift_down(pos);
    sift_up(meta_[moved.slot].heap_pos);
  } else {
    heap_.pop_back();
  }
}

Engine::SlotMeta* Engine::live_slot(EventId id) {
  const std::uint32_t idx = slot_of(id);
  if (idx >= meta_.size()) return nullptr;
  SlotMeta& m = meta_[idx];
  if (m.gen != gen_of(id)) return nullptr;
  return &m;
}

EventId Engine::schedule_at(SimTime at, Callback fn) {
  WHISK_CHECK(at >= now_, "cannot schedule events in the past");
  WHISK_CHECK(static_cast<bool>(fn), "cannot schedule a null callback");
  const std::uint32_t idx = acquire_slot();
  fn_at(idx) = std::move(fn);
  heap_.push_back(HeapEntry{at, next_seq_++, idx});
  sift_up(heap_.size() - 1);
  return make_id(meta_[idx].gen, idx);
}

EventId Engine::schedule_in(SimTime delay, Callback fn) {
  WHISK_CHECK(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  SlotMeta* m = live_slot(id);
  if (m == nullptr) return false;
  heap_remove(m->heap_pos);
  release_slot(slot_of(id));
  return true;
}

bool Engine::reschedule_at(EventId id, SimTime at) {
  WHISK_CHECK(at >= now_, "cannot schedule events in the past");
  SlotMeta* m = live_slot(id);
  if (m == nullptr) return false;
  const std::size_t pos = m->heap_pos;
  heap_[pos].time = at;
  heap_[pos].seq = next_seq_++;  // exactly like a fresh schedule at `at`
  sift_down(pos);
  sift_up(m->heap_pos);
  return true;
}

bool Engine::reschedule_in(EventId id, SimTime delay) {
  WHISK_CHECK(delay >= 0.0, "negative delay");
  return reschedule_at(id, now_ + delay);
}

// Pop and run the root event. The callback is invoked in place in the
// chunked slab: the slot's id is invalidated before the call (a cancel of
// the running event's own id is a no-op, as always), but the slot itself
// only joins the free list afterwards, so events scheduled by the callback
// cannot move it while it executes.
void Engine::execute_top() {
  const HeapEntry top = heap_[0];
  WHISK_CHECK(top.time >= now_, "time went backwards");
  now_ = top.time;
  pop_root();
  ++meta_[top.slot].gen;
  meta_[top.slot].heap_pos = kNoHeapPos;
  ++executed_;
  fn_at(top.slot).consume();
  // Same generation-wrap retirement as release_slot(): recycling a slot
  // whose gen wrapped to 0 would let a 4-billion-execution-old stale id
  // alias a live event.
  if (meta_[top.slot].gen != 0xffffffffu) free_.push_back(top.slot);
}

void Engine::reset() {
  // Destroy pending callbacks and recycle their slots (same retirement
  // rule as release_slot); executed slots are already on the free list.
  for (const HeapEntry& e : heap_) {
    fn_at(e.slot) = nullptr;
    SlotMeta& m = meta_[e.slot];
    m.heap_pos = kNoHeapPos;
    ++m.gen;
    if (m.gen != 0xffffffffu) free_.push_back(e.slot);
  }
  heap_.clear();
  now_ = 0.0;
  next_seq_ = 1;
  executed_ = 0;
}

bool Engine::step() {
  if (heap_.empty()) return false;
  execute_top();
  return true;
}

std::size_t Engine::run(SimTime until) {
  const bool bounded = until != kNever;
  std::size_t ran = 0;
  while (!heap_.empty()) {
    if (bounded && heap_[0].time > until) break;
    execute_top();
    ++ran;
  }
  if (bounded && now_ < until) now_ = until;
  return ran;
}

}  // namespace whisk::sim
