#include "sim/engine.h"

#include <utility>

#include "util/check.h"

namespace whisk::sim {

EventId Engine::schedule_at(SimTime at, Callback fn) {
  WHISK_CHECK(at >= now_, "cannot schedule events in the past");
  WHISK_CHECK(static_cast<bool>(fn), "cannot schedule a null callback");
  const EventId id = next_id_++;
  heap_.push(Entry{at, id});
  slots_.emplace(id, Slot{std::move(fn), false});
  ++live_events_;
  return id;
}

EventId Engine::schedule_in(SimTime delay, Callback fn) {
  WHISK_CHECK(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  auto it = slots_.find(id);
  if (it == slots_.end() || it->second.cancelled) return false;
  it->second.cancelled = true;
  --live_events_;
  return true;
}

bool Engine::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    auto it = slots_.find(top.id);
    WHISK_CHECK(it != slots_.end(), "heap entry without slot");
    if (it->second.cancelled) {
      slots_.erase(it);
      continue;
    }
    Callback fn = std::move(it->second.fn);
    slots_.erase(it);
    --live_events_;
    WHISK_CHECK(top.time >= now_, "time went backwards");
    now_ = top.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

std::size_t Engine::run(SimTime until) {
  std::size_t ran = 0;
  while (!heap_.empty()) {
    if (until >= 0.0) {
      // Peek at the next live event's timestamp without executing it.
      const Entry top = heap_.top();
      auto it = slots_.find(top.id);
      if (it != slots_.end() && it->second.cancelled) {
        heap_.pop();
        slots_.erase(it);
        continue;
      }
      if (top.time > until) {
        now_ = until;
        break;
      }
    }
    if (!step()) break;
    ++ran;
  }
  if (until >= 0.0 && now_ < until && heap_.empty()) now_ = until;
  return ran;
}

}  // namespace whisk::sim
