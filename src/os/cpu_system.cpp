#include "os/cpu_system.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace whisk::os {
namespace {

// Tasks with remaining service below this are treated as finished; guards
// against floating-point residue keeping a task alive forever.
constexpr double kEpsilon = 1e-9;

}  // namespace

CpuSystem::CpuSystem(sim::Engine& engine, CpuParams params,
                     CompletionFn on_complete)
    : engine_(&engine),
      params_(params),
      on_complete_(std::move(on_complete)),
      last_update_(engine.now()) {
  WHISK_CHECK(params_.cores > 0, "node needs at least one core");
  WHISK_CHECK(static_cast<bool>(on_complete_), "null completion callback");
}

CpuSystem::TaskId CpuSystem::start(double service, double cpu_fraction,
                                   double weight) {
  WHISK_CHECK(service > 0.0, "non-positive service time");
  WHISK_CHECK(cpu_fraction >= 0.0 && cpu_fraction <= 1.0,
              "cpu_fraction out of [0,1]");
  WHISK_CHECK(weight > 0.0, "non-positive weight");
  if (params_.mode == ExecMode::kPinnedCore) {
    WHISK_CHECK(tasks_.size() < static_cast<std::size_t>(params_.cores),
                "pinned-core mode oversubscribed: invoker must cap busy "
                "containers at the core count");
  }
  advance();
  const TaskId id = next_id_++;
  tasks_.emplace(id, Task{service, cpu_fraction, weight, 1.0, cpu_fraction});
  recompute();
  reschedule();
  return id;
}

bool CpuSystem::abort(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return false;
  advance();
  tasks_.erase(it);
  recompute();
  reschedule();
  return true;
}

double CpuSystem::allocated_cores() const {
  double total = 0.0;
  for (const auto& [id, t] : tasks_) total += t.alloc;
  return total;
}

double CpuSystem::busy_core_seconds() const {
  // Include in-flight progress since the last integration point.
  double extra = 0.0;
  const double dt = engine_->now() - last_update_;
  if (dt > 0.0) {
    for (const auto& [id, t] : tasks_) extra += t.alloc * dt;
  }
  return busy_core_seconds_ + extra;
}

void CpuSystem::advance() {
  const sim::SimTime now = engine_->now();
  const double dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0.0) return;
  for (auto& [id, t] : tasks_) {
    t.remaining = std::max(0.0, t.remaining - t.speed * dt);
    busy_core_seconds_ += t.alloc * dt;
  }
}

void CpuSystem::recompute() {
  if (tasks_.empty()) return;

  if (params_.mode == ExecMode::kPinnedCore) {
    // One dedicated core per task: nominal speed, no contention, no
    // preemption. I/O-heavy tasks simply leave their core partly idle
    // (the trade-off Sec. IV-A discusses).
    for (auto& [id, t] : tasks_) {
      t.speed = 1.0;
      t.alloc = t.cpu_fraction;
    }
    return;
  }

  // Weighted max-min water-filling of CPU demands. Task i demands
  // d_i = cpu_fraction_i cores; allocations are proportional to weights but
  // never exceed the demand; leftover capacity cascades to hungrier tasks.
  const double cores = static_cast<double>(params_.cores);
  double total_demand = 0.0;
  for (const auto& [id, t] : tasks_) total_demand += t.cpu_fraction;

  if (total_demand <= cores) {
    for (auto& [id, t] : tasks_) t.alloc = t.cpu_fraction;
  } else {
    // Find the water level f with sum(min(d_i, w_i * f)) == cores.
    // Sort by saturation point d_i / w_i and sweep.
    struct Entry {
      double saturation;  // d / w
      double demand;
      double weight;
      Task* task;
    };
    std::vector<Entry> entries;
    entries.reserve(tasks_.size());
    for (auto& [id, t] : tasks_) {
      entries.push_back(
          Entry{t.cpu_fraction / t.weight, t.cpu_fraction, t.weight, &t});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                return a.saturation < b.saturation;
              });
    double remaining_capacity = cores;
    double remaining_weight = 0.0;
    for (const auto& e : entries) remaining_weight += e.weight;
    std::size_t idx = 0;
    // Saturate tasks whose demand lies below the current water level.
    while (idx < entries.size() &&
           entries[idx].saturation * remaining_weight <= remaining_capacity) {
      entries[idx].task->alloc = entries[idx].demand;
      remaining_capacity -= entries[idx].demand;
      remaining_weight -= entries[idx].weight;
      ++idx;
    }
    const double level =
        remaining_weight > 0.0 ? remaining_capacity / remaining_weight : 0.0;
    for (; idx < entries.size(); ++idx) {
      entries[idx].task->alloc = entries[idx].weight * level;
    }
  }

  // Context-switch efficiency: once more CPU-hungry containers are runnable
  // than there are cores, the OS preempts and some of every timeslice is
  // wasted (the overhead the paper's pinning eliminates).
  std::size_t hungry = 0;
  for (const auto& [id, t] : tasks_) {
    if (t.cpu_fraction >= 0.5) ++hungry;
  }
  const double overload =
      std::max(0.0, static_cast<double>(hungry) / cores - 1.0);
  const double eta = 1.0 / (1.0 + params_.context_switch_beta * overload);

  for (auto& [id, t] : tasks_) {
    if (t.cpu_fraction <= 0.0) {
      t.speed = 1.0;
      continue;
    }
    const double rho =
        t.alloc > 0.0 ? std::min(1.0, t.alloc / t.cpu_fraction) : 1e-6;
    t.speed = 1.0 / ((1.0 - t.cpu_fraction) +
                     t.cpu_fraction / (rho * eta));
  }
}

void CpuSystem::reschedule() {
  if (tasks_.empty()) {
    if (pending_event_ != sim::kInvalidEvent) {
      engine_->cancel(pending_event_);
      pending_event_ = sim::kInvalidEvent;
    }
    return;
  }
  double earliest = -1.0;
  for (const auto& [id, t] : tasks_) {
    WHISK_CHECK(t.speed > 0.0, "task with zero progress speed");
    const double eta = t.remaining / t.speed;
    if (earliest < 0.0 || eta < earliest) earliest = eta;
  }
  const double delay = std::max(0.0, earliest);
  // Re-arm by moving the pending event instead of cancel + schedule: same
  // ordering semantics (reschedule re-sequences like a fresh schedule), but
  // the event slot and callback are reused. Falls back to a fresh schedule
  // when there is no live pending event.
  if (pending_event_ == sim::kInvalidEvent ||
      !engine_->reschedule_in(pending_event_, delay)) {
    pending_event_ =
        engine_->schedule_in(delay, [this] { on_completion_event(); });
  }
}

void CpuSystem::on_completion_event() {
  pending_event_ = sim::kInvalidEvent;
  advance();
  // Complete exactly one task per event; ties finish in follow-up events at
  // the same timestamp, keeping per-completion bookkeeping simple.
  TaskId done = -1;
  double best = kEpsilon;
  for (const auto& [id, t] : tasks_) {
    if (t.remaining <= best) {
      best = t.remaining;
      done = id;
    }
  }
  if (done < 0) {
    // Numerical drift: nothing actually finished; rearm.
    recompute();
    reschedule();
    return;
  }
  tasks_.erase(done);
  recompute();
  reschedule();
  on_complete_(done);
}

}  // namespace whisk::os
