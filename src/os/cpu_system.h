#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/engine.h"
#include "sim/time.h"

namespace whisk::os {

// How the node hands CPU to action containers.
enum class ExecMode {
  // The paper's approach (Sec. IV-A): every busy container is assigned
  // exactly one core and the invoker never runs more busy containers than
  // cores, so the OS never preempts. Execution proceeds at nominal speed.
  kPinnedCore,

  // Default OpenWhisk: containers get CPU shares proportional to their
  // memory limits and the OS preempts freely. Modeled as weighted max-min
  // processor sharing plus a context-switch efficiency penalty when the
  // number of CPU-hungry runnable containers exceeds the core count.
  kProportionalShare,
};

struct CpuParams {
  ExecMode mode = ExecMode::kPinnedCore;
  int cores = 1;

  // Context-switch penalty coefficient: with H CPU-hungry runnable tasks on
  // C cores, all CPU progress is scaled by 1 / (1 + beta * max(0, H/C - 1)).
  // Only meaningful in kProportionalShare mode.
  double context_switch_beta = 0.30;
};

// Models the execution of function calls on a node's CPUs.
//
// Each task is one executing call with a warm service requirement `service`
// (seconds on a dedicated core) of which a `cpu_fraction` share is CPU work
// and the rest is I/O that does not contend for cores. Progress speed is
//   1 / ((1 - phi) + phi / (rho * eta))
// where phi is the CPU fraction, rho the core share allocated by weighted
// water-filling (1.0 when pinned) and eta the context-switch efficiency.
//
// The completion callback fires through the simulation engine when a task's
// remaining service reaches zero.
class CpuSystem {
 public:
  using TaskId = std::int64_t;
  using CompletionFn = std::function<void(TaskId)>;

  CpuSystem(sim::Engine& engine, CpuParams params, CompletionFn on_complete);

  CpuSystem(const CpuSystem&) = delete;
  CpuSystem& operator=(const CpuSystem&) = delete;

  // Begin executing a call. `weight` models OpenWhisk's memory-proportional
  // cpu-shares (equal for our homogeneous 256 MB containers).
  TaskId start(double service, double cpu_fraction, double weight = 1.0);

  // Abort a running task without firing its completion callback. Returns
  // false if the task already completed.
  bool abort(TaskId id);

  [[nodiscard]] std::size_t running() const { return tasks_.size(); }

  // Sum of core shares currently allocated (<= cores).
  [[nodiscard]] double allocated_cores() const;

  // Busy core-seconds accumulated so far (for utilization reporting).
  [[nodiscard]] double busy_core_seconds() const;

  [[nodiscard]] const CpuParams& params() const { return params_; }

 private:
  struct Task {
    double remaining;     // service-seconds still to run
    double cpu_fraction;  // phi
    double weight;
    double speed;  // current progress in service-seconds per second
    double alloc;  // cores currently allocated
  };

  void advance();     // integrate progress from last_update_ to now
  void recompute();   // water-filling + penalty -> speeds
  void reschedule();  // (re)arm the next completion event
  void on_completion_event();

  sim::Engine* engine_;
  CpuParams params_;
  CompletionFn on_complete_;

  std::unordered_map<TaskId, Task> tasks_;
  TaskId next_id_ = 1;
  sim::SimTime last_update_ = 0.0;
  sim::EventId pending_event_ = sim::kInvalidEvent;
  double busy_core_seconds_ = 0.0;
};

}  // namespace whisk::os
