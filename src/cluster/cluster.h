#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/autoscaler.h"
#include "cluster/cluster_spec.h"
#include "cluster/fault.h"
#include "cluster/load_balancer.h"
#include "cluster/resilience.h"
#include "core/history.h"
#include "metrics/collector.h"
#include "node/invoker.h"
#include "node/params.h"
#include "sim/engine.h"
#include "sim/random.h"
#include "workload/function.h"
#include "workload/scenario.h"
#include "workload/workflow.h"

namespace whisk::cluster {

class WorkflowEngine;

struct ClusterParams {
  // Which node-level resource manager runs on the workers: any name
  // registered with node::InvokerRegistry ("baseline", "ours", ...).
  std::string invoker = "ours";
  // Scheduling policy for policy-driven invokers: any name registered with
  // core::PolicyRegistry ("fifo", "sept", ..., "sjf-aging").
  std::string policy = "fifo";
  // Controller-side spreading: any name registered with
  // cluster::BalancerRegistry ("round-robin", "home-invoker",
  // "least-loaded", "weighted-least-loaded", "join-idle-queue", ...).
  std::string balancer = "round-robin";

  // The fleet: heterogeneous node groups, keep-alive policy and scheduled
  // lifecycle events. ClusterSpec::homogeneous(n) reproduces the paper's
  // "n identical workers"; the default is one node.
  ClusterSpec deployment;
  // Base per-node model constants; each group applies its overrides (and
  // the deployment's keep-alive) on top.
  node::NodeParams node;

  // Request-path latencies (the ~10 ms client-observable overhead of
  // Table I splits across these plus the node-side idle op costs).
  double client_to_controller_s = 0.002;  // Gatling/NGINX -> controller
  double controller_to_invoker_s = 0.003;  // Kafka hop, r'(i) stamp
  double response_return_s = 0.004;        // node -> end client
  // Controller-side detect-and-reroute latency for a call interrupted by a
  // node failure (re-submission enters at submit_to_controller again). Also
  // the base of the resilience layer's exponential retry backoff
  // (resubmit_delay_s * 2^retry).
  double resubmit_delay_s = 0.010;
  // Total submissions allowed per call through the failure re-submission
  // loop before the controller gives up and records the call with a
  // `dropped` disposition (the loop used to retry forever). A resilience=
  // section's max-attempts takes over for calls it tracks.
  int max_attempts = 16;

  // Composite-function shape: when enabled, every scenario call becomes
  // the root of one workflow instance and completed stages release their
  // DAG successors as new arrivals. "none" (the default) keeps calls
  // independent — the exact pre-workflow request path.
  workload::WorkflowSpec workflow;
};

// Where a node is in its life. kDrained is derived: a draining node whose
// backlog emptied.
enum class NodeState { kActive, kDraining, kDrained, kFailed };

[[nodiscard]] constexpr const char* to_string(NodeState s) {
  switch (s) {
    case NodeState::kActive:
      return "active";
    case NodeState::kDraining:
      return "draining";
    case NodeState::kDrained:
      return "drained";
    case NodeState::kFailed:
      return "failed";
  }
  return "?";
}

// Per-group telemetry rollup for sweep outputs: fleet shape plus the full
// InvokerStats fold over the group's nodes (via InvokerStats::merge, so a
// new counter shows up here without touching this struct).
struct GroupStats {
  std::string name;
  std::size_t nodes = 0;   // nodes ever in the group (joins included)
  std::size_t active = 0;  // routable when queried
  node::InvokerStats stats;
};

// One full FaaS deployment under test: a controller with a load balancer,
// the ClusterSpec's node groups, and the client-side measurement point.
// Mirrors Fig. 1 of the paper (Gatling -> NGINX -> controller -> Kafka ->
// invoker -> action container), generalized to heterogeneous fleets with
// scheduled churn:
//
//   * drain@t  — the node leaves the balancer's NodeView but finishes its
//     backlog; once idle it counts as drained;
//   * join@t   — a fresh, cold (un-warmed) node joins its group and starts
//     receiving calls;
//   * fail@t   — the node dies; calls it had received but not completed
//     are re-submitted through the controller (counted in resubmissions()
//     and in each record's attempts).
//
// When the deployment names an autoscaler, the cluster additionally runs a
// closed control loop: every tick-s seconds it observes each group (active
// nodes, queue depths, executing calls — plus a controller-side
// RuntimeHistory for controllers that want arrival/completion windows),
// asks the controller for a desired size, clamps it to the group's
// min-nodes/max-nodes, rate-limits with cooldown-s, and applies the change
// through the same join/drain machinery scheduled events use (scale-downs
// drain the newest active node first). Every node's active seconds are
// metered — joins and drains pro-rated — so cost_usd() prices the fleet
// via each group's cost-per-hour.
//
// When the deployment carries `faults=`, the cluster additionally runs each
// named FaultProcess against itself (it is the FaultHost): crashes reuse
// the fail machinery, crashed nodes restart *in place* with a fresh cold
// invoker (metering accrues across incarnations; downtime accumulates in
// unavailability_s()), stragglers stretch a node's sampled durations, and
// lost completions are swallowed before the controller. A `resilience=`
// section arms the controller-side counter-measures: per-attempt timeouts
// with budgeted exponential-backoff retries, hedged duplicates after the
// observed latency quantile (first completion wins, the loser's timers are
// cancelled in O(log n)), per-node circuit breakers that eject repeatedly
// timing-out nodes from the NodeView until a post-cooldown probe succeeds,
// and queue-depth admission control that sheds fresh calls when every
// routable node is saturated. All of it is pay-for-what-you-use: with no
// faults and no resilience the request path takes the exact pre-PR7 code
// path, byte for byte.
class Cluster : public FaultHost {
 public:
  Cluster(sim::Engine& engine, const workload::FunctionCatalog& catalog,
          ClusterParams params, std::uint64_t seed);
  ~Cluster();

  // Pre-warm every initial worker (paper Sec. V-A); administrative. Nodes
  // joining later start cold.
  void warmup();

  // Schedule the whole scenario. The caller then drives `engine.run()`
  // until the event queue drains (Gatling "waits until all the responses
  // are returned").
  void run_scenario(const workload::Scenario& scenario);

  [[nodiscard]] const metrics::Collector& collector() const {
    return collector_;
  }

  // Workspace reuse (experiments::CellWorkspace): seed the collector with
  // recycled storage — cleared, capacity kept — before any call resolves,
  // and take the storage back when the run is over. Only the container
  // capacity survives the round trip, so a recycling run is byte-identical
  // to a fresh one.
  void adopt_collector_storage(metrics::Collector&& storage);
  [[nodiscard]] metrics::Collector release_collector_storage();
  // Nodes ever deployed (drained/failed ones included).
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  // Nodes the balancer may currently route to.
  [[nodiscard]] std::size_t routable_nodes() const { return view_.size(); }
  [[nodiscard]] node::Invoker& invoker(std::size_t i);
  [[nodiscard]] const node::Invoker& invoker(std::size_t i) const;
  [[nodiscard]] NodeState node_state(std::size_t i) const;
  // Ordinal into params().deployment.groups for node `i`.
  [[nodiscard]] std::size_t node_group(std::size_t i) const;

  [[nodiscard]] const ClusterParams& params() const { return params_; }

  // Aggregate invoker stats over all workers (failed ones included).
  [[nodiscard]] node::InvokerStats total_stats() const;
  // Per-group rollup in ClusterSpec group order.
  [[nodiscard]] std::vector<GroupStats> group_stats() const;
  // Calls re-submitted after a node failure (a call surviving two failures
  // counts twice).
  [[nodiscard]] std::size_t resubmissions() const { return resubmissions_; }

  // Terminal records this run will produce: scenario calls plus, when a
  // workflow is configured, every spawned downstream stage.
  [[nodiscard]] std::size_t expected_calls() const {
    return expected_calls_;
  }
  // True when the cluster expands calls into workflow DAGs.
  [[nodiscard]] bool running_workflows() const {
    return workflow_ != nullptr;
  }

  // True when the deployment runs a closed-loop scaling controller.
  [[nodiscard]] bool autoscaling() const { return autoscaler_ != nullptr; }
  // Autoscaler actions so far: nodes added / drains initiated (scheduled
  // lifecycle events are not counted).
  [[nodiscard]] std::size_t scale_ups() const { return scale_ups_; }
  [[nodiscard]] std::size_t scale_downs() const { return scale_downs_; }

  // Metered active node-seconds of one group: for each member, from its
  // join to its retirement (drain completed or failed) or to now if still
  // running — joins, drains and crash/restart gaps pro-rate automatically.
  [[nodiscard]] double node_seconds(std::size_t group) const;
  // Fleet-wide metered node-hours.
  [[nodiscard]] double node_hours() const;
  // Fleet cost: each group's node-hours times its cost-per-hour.
  [[nodiscard]] double cost_usd() const;

  // Robustness telemetry (the per-cell economics-of-failure columns).
  [[nodiscard]] std::size_t faults_injected() const {
    return faults_injected_;
  }
  // Timeout expirations, and how many of them were answered with a retry.
  [[nodiscard]] std::size_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::size_t retries() const { return retries_; }
  // Hedged duplicates sent, and how many the hedge node won.
  [[nodiscard]] std::size_t hedges() const { return hedges_; }
  [[nodiscard]] std::size_t hedges_won() const { return hedges_won_; }
  [[nodiscard]] std::size_t breaker_opens() const { return breaker_opens_; }
  // Accumulated node-down seconds (failure to restart, or to now for nodes
  // still down) across the whole fleet.
  [[nodiscard]] double unavailability_s() const;

  // FaultHost — the surface fault processes mutate the cluster through.
  [[nodiscard]] sim::SimTime fault_now() const override;
  void fault_schedule(double delay_s, std::function<void()> fn) override;
  [[nodiscard]] std::size_t fault_group_index(
      std::string_view name) const override;
  [[nodiscard]] std::size_t fault_active_count(
      std::size_t group) const override;
  [[nodiscard]] std::size_t fault_active_at(std::size_t group,
                                            std::size_t k) const override;
  [[nodiscard]] std::size_t fault_member(std::size_t group,
                                         std::size_t member) const override;
  [[nodiscard]] bool fault_node_active(std::size_t node) const override;
  [[nodiscard]] bool fault_node_failed(std::size_t node) const override;
  bool fault_fail(std::size_t node) override;
  bool fault_restart(std::size_t node) override;
  void fault_set_speed(std::size_t node, double factor) override;
  [[nodiscard]] bool fault_workload_done() const override;
  void fault_note_injected() override;

 private:
  // The workflow engine drives released stages through submit_to_controller
  // and cascades drops through collect_record — the same funnels every
  // other call takes.
  friend class WorkflowEngine;

  struct NodeSlot {
    std::unique_ptr<node::Invoker> invoker;
    std::size_t group = 0;
    NodeState state = NodeState::kActive;
    // Calls routed to this node but still on the controller->invoker wire.
    // Keeps node_state() monotone: a draining node does not read as
    // drained while a pre-drain call is about to arrive.
    std::size_t in_transit = 0;
    // Metering stamps: when the current incarnation joined the fleet, and
    // when it stopped accruing cost (drain completed / failed); -1 while
    // still accruing. Restart-in-place folds the closed interval into
    // accrued_s and opens a new one.
    sim::SimTime joined_at = 0.0;
    sim::SimTime retired_at = -1.0;
    double accrued_s = 0.0;
    // When the node (fault- or event-) failed; -1 while up. Folded into
    // the cluster's unavailability total at restart or query time.
    sim::SimTime failed_at = -1.0;
    // Restart count; tags the replacement invoker's RNG stream so every
    // incarnation draws an independent deterministic stream.
    std::size_t incarnation = 0;
  };

  // Create one node of `group` and append it to the fleet (construction
  // and join path). Returns the global node index.
  std::size_t add_node(std::size_t group);
  void rebuild_view();
  void apply_lifecycle(const LifecycleEvent& event);
  // Global node index of (group ordinal, group-local index); aborts with
  // the event context when the node does not exist (yet).
  [[nodiscard]] std::size_t resolve_node(const LifecycleEvent& event) const;

  // Fresh invoker for one slot, stream-tagged by global node index and
  // incarnation (shared by add_node and restart-in-place).
  [[nodiscard]] std::unique_ptr<node::Invoker> make_invoker(
      std::size_t group, std::size_t index, std::size_t incarnation);

  void submit_to_controller(const workload::CallRequest& call);
  void arrive_at_node(const workload::CallRequest& call, std::size_t target);
  void resubmit(const workload::CallRequest& call);
  void deliver(const metrics::CallRecord& record);

  // Resilience internals (no-ops unless the deployment arms them).
  struct Outstanding {
    int attempts = 1;  // submissions so far: first + retries + hedges
    int retries = 0;   // timeout retries only (drives the backoff exponent)
    sim::EventId timeout_ev = sim::kInvalidEvent;
    sim::EventId hedge_ev = sim::kInvalidEvent;
    std::size_t primary = FaultHost::npos;  // latest primary target
    std::size_t hedge = FaultHost::npos;    // hedge target, npos until sent
    sim::SimTime first_submit = 0.0;
  };
  struct ResilienceConfig {
    double timeout_s = 0.0;
    int max_attempts = 4;
    double retry_budget = 0.2;
    double hedge_p = 0.0;
    std::size_t hedge_min_samples = 32;
    std::size_t breaker_failures = 0;
    double breaker_cooldown_s = 30.0;
    std::size_t max_queue = 0;
  };
  struct Breaker {
    enum class State { kClosed, kOpen, kHalfOpen };
    State state = State::kClosed;
    std::size_t consecutive_timeouts = 0;
  };

  void on_timeout(const workload::CallRequest& call);
  void on_hedge(const workload::CallRequest& call);
  // Write the terminal `dropped` record for a call that exhausted its
  // attempts and forget its resilience state.
  void drop_call(const workload::CallRequest& call, int attempts);
  // Breaker transitions fed by per-node timeout/success signals.
  void breaker_note_timeout(std::size_t node);
  void breaker_note_success(std::size_t node);
  // Latency quantile the hedge delay is drawn from (ring of recent
  // controller-observed latencies).
  [[nodiscard]] double hedge_delay() const;
  // Terminal-record funnel: feeds the collector and, once every expected
  // call has resolved, cancels all pending fault/breaker timers so the
  // engine can drain.
  void collect_record(const metrics::CallRecord& record);
  // Cancellable timer shared by fault processes and breaker cooldowns.
  void schedule_cancellable(double delay_s, std::function<void()> fn);
  void cancel_pending_timers();

  // One pass of the closed loop; reschedules itself until every expected
  // call has been collected.
  void autoscaler_tick();
  // Stamp `retired_at` if the node is draining and its backlog just hit
  // zero (the moment metering stops).
  void note_drain_progress(std::size_t node);

  sim::Engine* engine_;
  const workload::FunctionCatalog* catalog_;
  ClusterParams params_;

  std::vector<NodeSlot> nodes_;
  // Dead incarnations parked until the run ends: a restarted slot's old
  // invoker still owns engine callbacks that no-op through its failed flag,
  // so destroying it mid-run would leave those events dangling.
  std::vector<std::unique_ptr<node::Invoker>> retired_invokers_;
  // Calls that arrived while every node was failed (disruptive fault
  // regimes only); rebuild_view() re-admits them once capacity returns.
  std::vector<workload::CallRequest> parked_calls_;
  std::vector<std::vector<std::size_t>> group_members_;
  NodeView view_;
  std::unique_ptr<LoadBalancer> balancer_;
  metrics::Collector collector_;
  sim::Rng node_seed_root_;

  // Closed-loop scaling state; all null/empty unless the deployment names
  // an autoscaler (autoscaler-free runs take no new code paths).
  std::unique_ptr<Autoscaler> autoscaler_;
  // Controller-side history fed with every submitted arrival and every
  // completion; only allocated when the controller wants a window.
  std::unique_ptr<core::RuntimeHistory> controller_history_;
  double tick_s_ = 5.0;
  double cooldown_s_ = 60.0;
  std::vector<sim::SimTime> last_scale_;  // per group; -inf = never
  std::vector<double> capacity_share_;    // per group, t=0 core fractions
  bool tick_scheduled_ = false;
  // Scenario calls scheduled so far; the tick loop stops rescheduling once
  // the collector has them all, letting the engine drain.
  std::size_t expected_calls_ = 0;
  std::size_t scale_ups_ = 0;
  std::size_t scale_downs_ = 0;

  std::size_t resubmissions_ = 0;
  // Re-submission count per interrupted call id; stamped into the record's
  // attempts on delivery. Empty unless a fail event fired. Unused for
  // calls the resilience layer tracks (Outstanding::attempts wins).
  std::unordered_map<workload::CallId, int> resubmitted_;

  // Workflow subsystem; null unless params_.workflow is enabled
  // (workflow-free runs take the exact pre-workflow code path).
  std::unique_ptr<WorkflowEngine> workflow_;

  // Fault subsystem; all empty/null on fault-free deployments.
  std::vector<std::unique_ptr<FaultProcess>> fault_processes_;
  // The drops_completions() subset, consulted per delivery.
  std::vector<FaultProcess*> droppers_;
  // Pending cancellable timers (fault self-schedules, breaker cooldowns),
  // keyed by an issue counter; cancelled en masse once the workload is
  // fully collected so far-future draws cannot extend the run.
  std::unordered_map<std::uint64_t, sim::EventId> pending_timers_;
  std::uint64_t next_timer_key_ = 0;
  std::size_t faults_injected_ = 0;
  double unavailability_accrued_s_ = 0.0;

  // Resilience subsystem; null unless the deployment has a resilience=
  // section. track_calls_ adds the per-call Outstanding bookkeeping, which
  // only timeouts and hedges need — shedding and attempt bounds are free.
  std::unique_ptr<ResilienceConfig> resilience_;
  bool track_calls_ = false;
  std::unordered_map<workload::CallId, Outstanding> outstanding_;
  // Ids of tracked calls that already resolved (completed or dropped) —
  // the guard that keeps a stale retry or failure re-submission scheduled
  // before resolution from resurrecting the call afterwards.
  std::unordered_set<workload::CallId> resolved_;
  std::vector<Breaker> breakers_;  // per node; empty unless breaker armed
  // Ring of recent controller-observed latencies feeding the hedge
  // quantile, plus the total observed count gating hedge arming.
  std::vector<double> latency_ring_;
  std::size_t latency_ring_next_ = 0;
  std::size_t latencies_observed_ = 0;
  std::size_t retries_spent_ = 0;  // against the retry budget
  std::size_t timeouts_ = 0;
  std::size_t retries_ = 0;
  std::size_t hedges_ = 0;
  std::size_t hedges_won_ = 0;
  std::size_t breaker_opens_ = 0;
};

}  // namespace whisk::cluster
