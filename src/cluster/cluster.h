#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/autoscaler.h"
#include "cluster/cluster_spec.h"
#include "cluster/load_balancer.h"
#include "core/history.h"
#include "metrics/collector.h"
#include "node/invoker.h"
#include "node/params.h"
#include "sim/engine.h"
#include "sim/random.h"
#include "workload/function.h"
#include "workload/scenario.h"

namespace whisk::cluster {

struct ClusterParams {
  // Which node-level resource manager runs on the workers: any name
  // registered with node::InvokerRegistry ("baseline", "ours", ...).
  std::string invoker = "ours";
  // Scheduling policy for policy-driven invokers: any name registered with
  // core::PolicyRegistry ("fifo", "sept", ..., "sjf-aging").
  std::string policy = "fifo";
  // Controller-side spreading: any name registered with
  // cluster::BalancerRegistry ("round-robin", "home-invoker",
  // "least-loaded", "weighted-least-loaded", "join-idle-queue", ...).
  std::string balancer = "round-robin";

  // The fleet: heterogeneous node groups, keep-alive policy and scheduled
  // lifecycle events. ClusterSpec::homogeneous(n) reproduces the paper's
  // "n identical workers"; the default is one node.
  ClusterSpec deployment;
  // Base per-node model constants; each group applies its overrides (and
  // the deployment's keep-alive) on top.
  node::NodeParams node;

  // Request-path latencies (the ~10 ms client-observable overhead of
  // Table I splits across these plus the node-side idle op costs).
  double client_to_controller_s = 0.002;  // Gatling/NGINX -> controller
  double controller_to_invoker_s = 0.003;  // Kafka hop, r'(i) stamp
  double response_return_s = 0.004;        // node -> end client
  // Controller-side detect-and-reroute latency for a call interrupted by a
  // node failure (re-submission enters at submit_to_controller again).
  double resubmit_delay_s = 0.010;
};

// Where a node is in its life. kDrained is derived: a draining node whose
// backlog emptied.
enum class NodeState { kActive, kDraining, kDrained, kFailed };

[[nodiscard]] constexpr const char* to_string(NodeState s) {
  switch (s) {
    case NodeState::kActive:
      return "active";
    case NodeState::kDraining:
      return "draining";
    case NodeState::kDrained:
      return "drained";
    case NodeState::kFailed:
      return "failed";
  }
  return "?";
}

// Per-group telemetry rollup for sweep outputs: fleet shape plus the full
// InvokerStats fold over the group's nodes (via InvokerStats::merge, so a
// new counter shows up here without touching this struct).
struct GroupStats {
  std::string name;
  std::size_t nodes = 0;   // nodes ever in the group (joins included)
  std::size_t active = 0;  // routable when queried
  node::InvokerStats stats;
};

// One full FaaS deployment under test: a controller with a load balancer,
// the ClusterSpec's node groups, and the client-side measurement point.
// Mirrors Fig. 1 of the paper (Gatling -> NGINX -> controller -> Kafka ->
// invoker -> action container), generalized to heterogeneous fleets with
// scheduled churn:
//
//   * drain@t  — the node leaves the balancer's NodeView but finishes its
//     backlog; once idle it counts as drained;
//   * join@t   — a fresh, cold (un-warmed) node joins its group and starts
//     receiving calls;
//   * fail@t   — the node dies; calls it had received but not completed
//     are re-submitted through the controller (counted in resubmissions()
//     and in each record's attempts).
//
// When the deployment names an autoscaler, the cluster additionally runs a
// closed control loop: every tick-s seconds it observes each group (active
// nodes, queue depths, executing calls — plus a controller-side
// RuntimeHistory for controllers that want arrival/completion windows),
// asks the controller for a desired size, clamps it to the group's
// min-nodes/max-nodes, rate-limits with cooldown-s, and applies the change
// through the same join/drain machinery scheduled events use (scale-downs
// drain the newest active node first). Every node's active seconds are
// metered — joins and drains pro-rated — so cost_usd() prices the fleet
// via each group's cost-per-hour.
class Cluster {
 public:
  Cluster(sim::Engine& engine, const workload::FunctionCatalog& catalog,
          ClusterParams params, std::uint64_t seed);

  // Pre-warm every initial worker (paper Sec. V-A); administrative. Nodes
  // joining later start cold.
  void warmup();

  // Schedule the whole scenario. The caller then drives `engine.run()`
  // until the event queue drains (Gatling "waits until all the responses
  // are returned").
  void run_scenario(const workload::Scenario& scenario);

  [[nodiscard]] const metrics::Collector& collector() const {
    return collector_;
  }
  // Nodes ever deployed (drained/failed ones included).
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  // Nodes the balancer may currently route to.
  [[nodiscard]] std::size_t routable_nodes() const { return view_.size(); }
  [[nodiscard]] node::Invoker& invoker(std::size_t i);
  [[nodiscard]] const node::Invoker& invoker(std::size_t i) const;
  [[nodiscard]] NodeState node_state(std::size_t i) const;
  // Ordinal into params().deployment.groups for node `i`.
  [[nodiscard]] std::size_t node_group(std::size_t i) const;

  [[nodiscard]] const ClusterParams& params() const { return params_; }

  // Aggregate invoker stats over all workers (failed ones included).
  [[nodiscard]] node::InvokerStats total_stats() const;
  // Per-group rollup in ClusterSpec group order.
  [[nodiscard]] std::vector<GroupStats> group_stats() const;
  // Calls re-submitted after a node failure (a call surviving two failures
  // counts twice).
  [[nodiscard]] std::size_t resubmissions() const { return resubmissions_; }

  // True when the deployment runs a closed-loop scaling controller.
  [[nodiscard]] bool autoscaling() const { return autoscaler_ != nullptr; }
  // Autoscaler actions so far: nodes added / drains initiated (scheduled
  // lifecycle events are not counted).
  [[nodiscard]] std::size_t scale_ups() const { return scale_ups_; }
  [[nodiscard]] std::size_t scale_downs() const { return scale_downs_; }

  // Metered active node-seconds of one group: for each member, from its
  // join to its retirement (drain completed or failed) or to now if still
  // running — joins and drains pro-rate automatically.
  [[nodiscard]] double node_seconds(std::size_t group) const;
  // Fleet-wide metered node-hours.
  [[nodiscard]] double node_hours() const;
  // Fleet cost: each group's node-hours times its cost-per-hour.
  [[nodiscard]] double cost_usd() const;

 private:
  struct NodeSlot {
    std::unique_ptr<node::Invoker> invoker;
    std::size_t group = 0;
    NodeState state = NodeState::kActive;
    // Calls routed to this node but still on the controller->invoker wire.
    // Keeps node_state() monotone: a draining node does not read as
    // drained while a pre-drain call is about to arrive.
    std::size_t in_transit = 0;
    // Metering stamps: when the node joined the fleet, and when it stopped
    // accruing cost (drain completed / failed); -1 while still accruing.
    sim::SimTime joined_at = 0.0;
    sim::SimTime retired_at = -1.0;
  };

  // Create one node of `group` and append it to the fleet (construction
  // and join path). Returns the global node index.
  std::size_t add_node(std::size_t group);
  void rebuild_view();
  void apply_lifecycle(const LifecycleEvent& event);
  // Global node index of (group ordinal, group-local index); aborts with
  // the event context when the node does not exist (yet).
  [[nodiscard]] std::size_t resolve_node(const LifecycleEvent& event) const;

  void submit_to_controller(const workload::CallRequest& call);
  void arrive_at_node(const workload::CallRequest& call, std::size_t target);
  void resubmit(const workload::CallRequest& call);
  void deliver(const metrics::CallRecord& record);

  // One pass of the closed loop; reschedules itself until every expected
  // call has been collected.
  void autoscaler_tick();
  // Stamp `retired_at` if the node is draining and its backlog just hit
  // zero (the moment metering stops).
  void note_drain_progress(std::size_t node);

  sim::Engine* engine_;
  const workload::FunctionCatalog* catalog_;
  ClusterParams params_;

  std::vector<NodeSlot> nodes_;
  std::vector<std::vector<std::size_t>> group_members_;
  NodeView view_;
  std::unique_ptr<LoadBalancer> balancer_;
  metrics::Collector collector_;
  sim::Rng node_seed_root_;

  // Closed-loop scaling state; all null/empty unless the deployment names
  // an autoscaler (autoscaler-free runs take no new code paths).
  std::unique_ptr<Autoscaler> autoscaler_;
  // Controller-side history fed with every submitted arrival and every
  // completion; only allocated when the controller wants a window.
  std::unique_ptr<core::RuntimeHistory> controller_history_;
  double tick_s_ = 5.0;
  double cooldown_s_ = 60.0;
  std::vector<sim::SimTime> last_scale_;  // per group; -inf = never
  std::vector<double> capacity_share_;    // per group, t=0 core fractions
  bool tick_scheduled_ = false;
  // Scenario calls scheduled so far; the tick loop stops rescheduling once
  // the collector has them all, letting the engine drain.
  std::size_t expected_calls_ = 0;
  std::size_t scale_ups_ = 0;
  std::size_t scale_downs_ = 0;

  std::size_t resubmissions_ = 0;
  // Re-submission count per interrupted call id; stamped into the record's
  // attempts on delivery. Empty unless a fail event fired.
  std::unordered_map<workload::CallId, int> resubmitted_;
};

}  // namespace whisk::cluster
