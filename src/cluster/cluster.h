#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/load_balancer.h"
#include "metrics/collector.h"
#include "node/invoker.h"
#include "node/params.h"
#include "sim/engine.h"
#include "sim/random.h"
#include "workload/function.h"
#include "workload/scenario.h"

namespace whisk::cluster {

struct ClusterParams {
  // Which node-level resource manager runs on the workers: any name
  // registered with node::InvokerRegistry ("baseline", "ours", ...).
  std::string invoker = "ours";
  // Scheduling policy for policy-driven invokers: any name registered with
  // core::PolicyRegistry ("fifo", "sept", ..., "sjf-aging").
  std::string policy = "fifo";
  // Controller-side spreading: any name registered with
  // cluster::BalancerRegistry ("round-robin", "home-invoker",
  // "least-loaded", "weighted-least-loaded", "join-idle-queue", ...).
  std::string balancer = "round-robin";

  int num_nodes = 1;
  node::NodeParams node;  // identical workers, as in the paper

  // Request-path latencies (the ~10 ms client-observable overhead of
  // Table I splits across these plus the node-side idle op costs).
  double client_to_controller_s = 0.002;  // Gatling/NGINX -> controller
  double controller_to_invoker_s = 0.003;  // Kafka hop, r'(i) stamp
  double response_return_s = 0.004;        // node -> end client
};

// One full FaaS deployment under test: a controller with a load balancer,
// `num_nodes` identical workers, and the client-side measurement point.
// Mirrors Fig. 1 of the paper (Gatling -> NGINX -> controller -> Kafka ->
// invoker -> action container).
class Cluster {
 public:
  Cluster(sim::Engine& engine, const workload::FunctionCatalog& catalog,
          ClusterParams params, std::uint64_t seed);

  // Pre-warm every worker (paper Sec. V-A); administrative.
  void warmup();

  // Schedule the whole scenario. The caller then drives `engine.run()`
  // until the event queue drains (Gatling "waits until all the responses
  // are returned").
  void run_scenario(const workload::Scenario& scenario);

  [[nodiscard]] const metrics::Collector& collector() const {
    return collector_;
  }
  [[nodiscard]] std::size_t num_nodes() const { return invokers_.size(); }
  [[nodiscard]] node::Invoker& invoker(std::size_t i);
  [[nodiscard]] const node::Invoker& invoker(std::size_t i) const;

  // Aggregate invoker stats over all workers.
  [[nodiscard]] node::InvokerStats total_stats() const;

 private:
  void submit_to_controller(const workload::CallRequest& call);
  void deliver(const metrics::CallRecord& record);

  sim::Engine* engine_;
  const workload::FunctionCatalog* catalog_;
  ClusterParams params_;

  std::vector<std::unique_ptr<node::Invoker>> invokers_;
  std::vector<node::Invoker*> invoker_ptrs_;
  std::unique_ptr<LoadBalancer> balancer_;
  metrics::Collector collector_;
};

}  // namespace whisk::cluster
