#include "cluster/fault.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "util/check.h"
#include "util/parse.h"

namespace whisk::cluster {
namespace {

// Probe-derived facts per canonical process name, cached exactly like the
// autoscaler's declared-params table (registrations are append-only, so a
// cached entry never goes stale; mutex-guarded because campaign workers
// normalize specs concurrently and map nodes give stable addresses).
struct FaultInfo {
  std::vector<FaultParam> params;
  bool disruptive = false;
  bool drops_completions = false;
};

const FaultInfo& fault_info(const std::string& canon) {
  static auto* mutex = new std::mutex();
  static auto* cache = new std::map<std::string, FaultInfo>();
  std::lock_guard<std::mutex> lock(*mutex);
  auto it = cache->find(canon);
  if (it == cache->end()) {
    const auto probe =
        FaultRegistry::instance().create(canon, FaultSpec{canon, {}});
    FaultInfo info;
    info.params = probe->params();
    info.disruptive = probe->disruptive();
    info.drops_completions = probe->drops_completions();
    it = cache->emplace(canon, std::move(info)).first;
  }
  return it->second;
}

// Lowercase, duplicate-check and declared-key-validate `params` for the
// canonical process `canon` — the shared half of normalized() and
// make_fault() (parameter *values* are validated by constructing the
// process).
std::map<std::string, std::string> fold_params(
    const std::string& canon,
    const std::map<std::string, std::string>& params) {
  const auto& valid = fault_info(canon).params;
  std::map<std::string, std::string> out;
  for (const auto& [raw_key, value] : params) {
    const std::string key = util::ascii_lower(raw_key);
    WHISK_CHECK(out.count(key) == 0, ("fault \"" + canon +
                                      "\" sets parameter \"" + key +
                                      "\" twice")
                                         .c_str());
    bool known = false;
    for (const auto& p : valid) {
      if (p.name == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::vector<std::string> names;
      names.reserve(valid.size());
      for (const auto& p : valid) names.push_back(p.name);
      WHISK_CHECK(false, ("fault \"" + canon +
                          "\" does not take parameter \"" + raw_key +
                          "\"; valid parameters: " + util::join(names))
                             .c_str());
    }
    out[key] = value;
  }
  return out;
}

}  // namespace

FaultSpec FaultSpec::parse(std::string_view text) {
  WHISK_CHECK(!util::trim_ws(text).empty(),
              "empty fault spec; expected \"name[?key=value[&...]]\" like "
              "\"crash-restart?mtbf-s=120&mttr-s=15\" (or \"none\")");
  FaultSpec spec;
  const std::size_t q = text.find('?');
  spec.name = std::string(util::trim_ws(text.substr(0, q)));
  WHISK_CHECK(!spec.name.empty(), ("fault spec \"" + std::string(text) +
                                   "\" has an empty name before the '?'")
                                      .c_str());
  if (q != std::string_view::npos) {
    util::parse_param_list(text.substr(q + 1),
                           "fault spec \"" + std::string(text) + "\"",
                           &spec.params);
  }
  return spec.normalized();
}

std::string FaultSpec::to_string() const {
  return util::render_params(name, params);
}

FaultSpec FaultSpec::normalized() const {
  FaultSpec out;
  if (util::ascii_lower(name) == "none") {
    WHISK_CHECK(params.empty(),
                "fault \"none\" takes no parameters; name a process "
                "(crash-restart, flap, slow-node, lost-completion) to "
                "configure one");
    out.name = "none";
    return out;
  }
  auto& registry = FaultRegistry::instance();
  out.name = registry.resolve(name);
  out.params = fold_params(out.name, params);
  // Constructing the process validates the parameter *values* too, so a bad
  // MTBF dies at parse time, not mid-sweep.
  (void)registry.create(out.name, out);
  return out;
}

bool FaultSpec::has(std::string_view key) const {
  return params.count(util::ascii_lower(key)) != 0;
}

double FaultSpec::number(std::string_view key, double fallback) const {
  const auto it = params.find(util::ascii_lower(key));
  if (it == params.end()) return fallback;
  double value = 0.0;
  if (!util::parse_finite_double(it->second, &value)) {
    WHISK_CHECK(false, ("fault \"" + name + "\" parameter " +
                        std::string(key) + "=\"" + it->second +
                        "\" is not a finite number")
                           .c_str());
  }
  return value;
}

std::size_t FaultSpec::count(std::string_view key,
                             std::size_t fallback) const {
  const auto it = params.find(util::ascii_lower(key));
  if (it == params.end()) return fallback;
  unsigned long long value = 0;
  if (!util::parse_whole_number(it->second, &value)) {
    WHISK_CHECK(false, ("fault \"" + name + "\" parameter " +
                        std::string(key) + "=\"" + it->second +
                        "\" is not a whole number >= 0")
                           .c_str());
  }
  return static_cast<std::size_t>(value);
}

std::string FaultSpec::text(std::string_view key) const {
  const auto it = params.find(util::ascii_lower(key));
  return it == params.end() ? std::string() : it->second;
}

std::vector<FaultSpec> parse_fault_list(std::string_view text) {
  std::vector<FaultSpec> out;
  if (util::ascii_lower(util::trim_ws(text)) == "none") return out;
  for (std::string_view item : util::split_any(text, ",+")) {
    const std::string_view spec = util::trim_ws(item);
    if (spec.empty()) continue;
    FaultSpec parsed = FaultSpec::parse(spec);
    // "none" inside a list is a no-op entry, so `faults=none` and a list
    // that mixes "none" in both mean "nothing extra".
    if (parsed.enabled()) out.push_back(std::move(parsed));
  }
  return out;
}

std::string fault_list_to_string(const std::vector<FaultSpec>& faults,
                                 char sep) {
  if (faults.empty()) return "none";
  std::string out;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (i > 0) out += sep;
    out += faults[i].to_string();
  }
  return out;
}

namespace {

// Poisson crash process over a group (or the fleet): each active node fails
// independently with mean time between failures mtbf-s, so the fleet-wide
// crash rate is active/mtbf; a crashed node is repaired (fresh cold invoker
// in the same slot) after an exponential mttr-s. The classic birth-death
// churn model production fleets are sized against.
class CrashRestartFault final : public FaultProcess {
 public:
  explicit CrashRestartFault(const FaultSpec& spec)
      : mtbf_s_(spec.number("mtbf-s", 300.0)),
        mttr_s_(spec.number("mttr-s", 30.0)),
        group_name_(util::ascii_lower(spec.text("group"))) {
    WHISK_CHECK(mtbf_s_ > 0.0, ("fault \"crash-restart\": mtbf-s = " +
                                std::to_string(mtbf_s_) + " must be > 0")
                                   .c_str());
    WHISK_CHECK(mttr_s_ > 0.0, ("fault \"crash-restart\": mttr-s = " +
                                std::to_string(mttr_s_) + " must be > 0")
                                   .c_str());
  }

  std::string_view name() const override { return "crash-restart"; }
  std::string help() const override {
    return "per-node exponential MTBF/MTTR churn: active nodes crash at "
           "rate active/mtbf-s and restart (cold, in place) after "
           "~Exp(mttr-s)";
  }
  std::vector<FaultParam> params() const override {
    return {{"mtbf-s", "300", "per-node mean time between failures"},
            {"mttr-s", "30", "mean time to repair (restart) a crashed node"},
            {"group", "", "restrict crashes to one deployment group"}};
  }
  bool disruptive() const override { return true; }

  void start(FaultHost& host, sim::Rng rng) override {
    host_ = &host;
    rng_ = rng;
    group_ = group_name_.empty() ? FaultHost::npos
                                 : host.fault_group_index(group_name_);
    schedule_next();
  }

 private:
  void schedule_next() {
    if (host_->fault_workload_done()) return;
    const std::size_t active = host_->fault_active_count(group_);
    // An empty scope still re-arms at the single-node rate: crashed nodes
    // restart, so the scope usually refills before the next draw fires.
    const double rate =
        std::max<std::size_t>(active, 1) / mtbf_s_;
    host_->fault_schedule(rng_.exponential(rate), [this] { fire(); });
  }

  void fire() {
    if (host_->fault_workload_done()) return;
    const std::size_t active = host_->fault_active_count(group_);
    if (active > 0) {
      const std::size_t victim =
          host_->fault_active_at(group_, rng_.uniform_index(active));
      if (host_->fault_fail(victim)) {
        host_->fault_note_injected();
        host_->fault_schedule(rng_.exponential(1.0 / mttr_s_),
                              [this, victim] {
                                if (host_->fault_node_failed(victim)) {
                                  host_->fault_restart(victim);
                                }
                              });
      }
    }
    schedule_next();
  }

  double mtbf_s_;
  double mttr_s_;
  std::string group_name_;
  std::size_t group_ = FaultHost::npos;
  FaultHost* host_ = nullptr;
  sim::Rng rng_{0};
};

// Correlated churn of one specific node: the same member goes down and
// comes back over and over (~Exp(period-s) up, ~Exp(down-s) down, `count`
// cycles or forever). The adversarial input for circuit breakers: a
// memoryless balancer keeps feeding the flapping node, a breaker ejects it.
class FlapFault final : public FaultProcess {
 public:
  explicit FlapFault(const FaultSpec& spec)
      : period_s_(spec.number("period-s", 60.0)),
        down_s_(spec.number("down-s", 5.0)),
        cycles_(spec.count("count", 0)),
        member_(spec.count("node", 0)),
        group_name_(util::ascii_lower(spec.text("group"))) {
    WHISK_CHECK(period_s_ > 0.0, ("fault \"flap\": period-s = " +
                                  std::to_string(period_s_) +
                                  " must be > 0")
                                     .c_str());
    WHISK_CHECK(down_s_ > 0.0, ("fault \"flap\": down-s = " +
                                std::to_string(down_s_) + " must be > 0")
                                   .c_str());
  }

  std::string_view name() const override { return "flap"; }
  std::string help() const override {
    return "one node repeatedly fails and rejoins: up ~Exp(period-s), down "
           "~Exp(down-s), `count` cycles (0 = until the run ends)";
  }
  std::vector<FaultParam> params() const override {
    return {{"period-s", "60", "mean up-time between flaps"},
            {"down-s", "5", "mean down-time per flap"},
            {"count", "0", "flap cycles before stopping (0 = unlimited)"},
            {"node", "0", "member index within the group (creation order)"},
            {"group", "", "deployment group of the node (first group when "
                          "empty)"}};
  }
  bool disruptive() const override { return true; }

  void start(FaultHost& host, sim::Rng rng) override {
    host_ = &host;
    rng_ = rng;
    group_ = group_name_.empty() ? 0 : host.fault_group_index(group_name_);
    schedule_next();
  }

 private:
  void schedule_next() {
    if (host_->fault_workload_done()) return;
    if (cycles_ != 0 && done_ >= cycles_) return;
    host_->fault_schedule(rng_.exponential(1.0 / period_s_),
                          [this] { fire(); });
  }

  void fire() {
    if (host_->fault_workload_done()) return;
    const std::size_t node = host_->fault_member(group_, member_);
    // The member may not exist yet (a later join) or be mid-drain/failed:
    // skip this cycle and keep flapping once it is back.
    if (node != FaultHost::npos && host_->fault_fail(node)) {
      host_->fault_note_injected();
      ++done_;
      host_->fault_schedule(rng_.exponential(1.0 / down_s_), [this, node] {
        if (host_->fault_node_failed(node)) host_->fault_restart(node);
      });
    }
    schedule_next();
  }

  double period_s_;
  double down_s_;
  std::size_t cycles_;
  std::size_t member_;
  std::string group_name_;
  std::size_t group_ = 0;
  std::size_t done_ = 0;
  FaultHost* host_ = nullptr;
  sim::Rng rng_{0};
};

// Straggler injection: a random active node's capacity drops by `factor`
// (every management op and execution stretched) for a ~Exp(duration-s)
// window; onsets arrive at rate active/mtbf-s. The failure mode hedged
// requests exist for — the node still answers, just late.
class SlowNodeFault final : public FaultProcess {
 public:
  explicit SlowNodeFault(const FaultSpec& spec)
      : mtbf_s_(spec.number("mtbf-s", 120.0)),
        duration_s_(spec.number("duration-s", 30.0)),
        factor_(spec.number("factor", 3.0)),
        group_name_(util::ascii_lower(spec.text("group"))) {
    WHISK_CHECK(mtbf_s_ > 0.0, ("fault \"slow-node\": mtbf-s = " +
                                std::to_string(mtbf_s_) + " must be > 0")
                                   .c_str());
    WHISK_CHECK(duration_s_ > 0.0, ("fault \"slow-node\": duration-s = " +
                                    std::to_string(duration_s_) +
                                    " must be > 0")
                                       .c_str());
    WHISK_CHECK(factor_ >= 1.0, ("fault \"slow-node\": factor = " +
                                 std::to_string(factor_) +
                                 " must be >= 1 (a slowdown multiplier)")
                                    .c_str());
  }

  std::string_view name() const override { return "slow-node"; }
  std::string help() const override {
    return "straggler windows: a random active node runs `factor`x slower "
           "for ~Exp(duration-s); onsets at rate active/mtbf-s";
  }
  std::vector<FaultParam> params() const override {
    return {{"mtbf-s", "120", "per-node mean time between slow windows"},
            {"duration-s", "30", "mean length of one slow window"},
            {"factor", "3", "duration multiplier while slowed (>= 1)"},
            {"group", "", "restrict stragglers to one deployment group"}};
  }

  void start(FaultHost& host, sim::Rng rng) override {
    host_ = &host;
    rng_ = rng;
    group_ = group_name_.empty() ? FaultHost::npos
                                 : host.fault_group_index(group_name_);
    schedule_next();
  }

 private:
  void schedule_next() {
    if (host_->fault_workload_done()) return;
    const std::size_t active = host_->fault_active_count(group_);
    const double rate = std::max<std::size_t>(active, 1) / mtbf_s_;
    host_->fault_schedule(rng_.exponential(rate), [this] { fire(); });
  }

  void fire() {
    if (host_->fault_workload_done()) return;
    const std::size_t active = host_->fault_active_count(group_);
    if (active > 0) {
      const std::size_t victim =
          host_->fault_active_at(group_, rng_.uniform_index(active));
      host_->fault_set_speed(victim, factor_);
      host_->fault_note_injected();
      host_->fault_schedule(rng_.exponential(1.0 / duration_s_),
                            [this, victim] {
                              // A crash-restart in between already reset the
                              // fresh invoker to nominal; restoring again is
                              // harmless either way.
                              host_->fault_set_speed(victim, 1.0);
                            });
    }
    schedule_next();
  }

  double mtbf_s_;
  double duration_s_;
  double factor_;
  std::string group_name_;
  std::size_t group_ = FaultHost::npos;
  FaultHost* host_ = nullptr;
  sim::Rng rng_{0};
};

// A finished call whose completion never reaches the controller: the node
// did the work, the answer is lost on the return path. Without a resilience
// timeout nothing would ever recover such a call, so ClusterSpec rejects
// the combination at parse time.
class LostCompletionFault final : public FaultProcess {
 public:
  explicit LostCompletionFault(const FaultSpec& spec)
      : probability_(spec.number("probability", 0.01)) {
    WHISK_CHECK(probability_ >= 0.0 && probability_ <= 1.0,
                ("fault \"lost-completion\": probability = " +
                 std::to_string(probability_) + " must be in [0, 1]")
                    .c_str());
  }

  std::string_view name() const override { return "lost-completion"; }
  std::string help() const override {
    return "each completion is silently dropped before the controller with "
           "`probability`; only a resilience timeout retry recovers the "
           "call";
  }
  std::vector<FaultParam> params() const override {
    return {{"probability", "0.01",
             "chance a completion is lost, per delivery"}};
  }
  bool drops_completions() const override { return true; }

  void start(FaultHost& host, sim::Rng rng) override {
    host_ = &host;
    rng_ = rng;
  }

  bool drop_completion(const metrics::CallRecord&) override {
    if (probability_ <= 0.0 || rng_.uniform() >= probability_) return false;
    host_->fault_note_injected();
    return true;
  }

 private:
  double probability_;
  FaultHost* host_ = nullptr;
  sim::Rng rng_{0};
};

void register_builtin_faults(FaultRegistry& registry) {
  registry.register_factory("crash-restart", [](const FaultSpec& spec) {
    return std::make_unique<CrashRestartFault>(spec);
  });
  registry.register_factory("flap", [](const FaultSpec& spec) {
    return std::make_unique<FlapFault>(spec);
  });
  registry.register_factory("slow-node", [](const FaultSpec& spec) {
    return std::make_unique<SlowNodeFault>(spec);
  });
  registry.register_factory("lost-completion", [](const FaultSpec& spec) {
    return std::make_unique<LostCompletionFault>(spec);
  });
  registry.register_alias("crash", "crash-restart");
  registry.register_alias("straggler", "slow-node");
}

}  // namespace

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry* registry = [] {
    auto* r = new FaultRegistry();
    register_builtin_faults(*r);
    return r;
  }();
  return *registry;
}

std::unique_ptr<FaultProcess> make_fault(const FaultSpec& spec) {
  WHISK_CHECK(spec.enabled(), "make_fault on \"none\": check enabled() first");
  auto& registry = FaultRegistry::instance();
  FaultSpec normalized;
  normalized.name = registry.resolve(spec.name);
  normalized.params = fold_params(normalized.name, spec.params);
  return registry.create(normalized.name, normalized);
}

bool fault_is_disruptive(const std::string& canonical_name) {
  return fault_info(canonical_name).disruptive;
}

bool fault_drops_completions(const std::string& canonical_name) {
  return fault_info(canonical_name).drops_completions;
}

}  // namespace whisk::cluster
