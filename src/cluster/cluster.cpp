#include "cluster/cluster.h"

#include <algorithm>
#include <limits>

#include "node/invoker_registry.h"
#include "util/check.h"

namespace whisk::cluster {

Cluster::Cluster(sim::Engine& engine,
                 const workload::FunctionCatalog& catalog,
                 ClusterParams params, std::uint64_t seed)
    : engine_(&engine),
      catalog_(&catalog),
      params_(params),
      collector_(catalog),
      node_seed_root_(seed) {
  params_.deployment = params_.deployment.normalized();
  WHISK_CHECK(params_.deployment.initial_nodes() > 0,
              "cluster needs at least one node");
  // The balancer gets its own tagged stream so randomized balancers vary
  // across repetition seeds; the built-in deterministic ones ignore it.
  balancer_ = make_balancer(
      params_.balancer,
      BalancerParams{
          node_seed_root_.fork(sim::hash_tag("balancer")).next_u64()});
  group_members_.resize(params_.deployment.groups.size());
  for (std::size_t g = 0; g < params_.deployment.groups.size(); ++g) {
    for (int j = 0; j < params_.deployment.groups[g].count; ++j) {
      add_node(g);
    }
  }
  rebuild_view();
  for (const LifecycleEvent& event : params_.deployment.events) {
    engine_->schedule_at(event.time,
                         [this, event] { apply_lifecycle(event); });
  }

  const ClusterSpec& deployment = params_.deployment;
  if (deployment.autoscaler.enabled()) {
    autoscaler_ = make_autoscaler(deployment.autoscaler);
    tick_s_ = deployment.autoscaler.number("tick-s", 5.0);
    cooldown_s_ = deployment.autoscaler.number("cooldown-s", 60.0);
    last_scale_.assign(deployment.groups.size(),
                       -std::numeric_limits<double>::infinity());
    const double window = autoscaler_->history_window_s();
    if (window > 0.0) {
      controller_history_ = std::make_unique<core::RuntimeHistory>();
      controller_history_->register_arrival_window(window);
      controller_history_->register_fc_window(window);
    }
    // Fix each group's share of the t=0 core capacity; demand-driven
    // controllers apportion fleet-wide estimates by it, so the split must
    // not drift as groups scale (that would feed back into itself).
    capacity_share_.assign(deployment.groups.size(), 0.0);
    double total_cores = 0.0;
    for (std::size_t g = 0; g < deployment.groups.size(); ++g) {
      capacity_share_[g] =
          static_cast<double>(
              deployment.node_params(g, params_.node).cores) *
          std::max(deployment.groups[g].count, 0);
      total_cores += capacity_share_[g];
    }
    for (double& share : capacity_share_) {
      share = total_cores > 0.0 ? share / total_cores
                                : 1.0 / static_cast<double>(
                                            capacity_share_.size());
    }
  }
}

std::size_t Cluster::add_node(std::size_t group) {
  const std::size_t index = nodes_.size();
  // Per-node streams are tagged by the *global* node index, so the initial
  // fleet forks exactly as the homogeneous pre-ClusterSpec cluster did and
  // joined nodes draw fresh independent streams.
  sim::Rng node_rng = node_seed_root_.fork(sim::hash_tag("node") + index);
  auto delivery = [this](const metrics::CallRecord& rec) { deliver(rec); };
  auto inv = node::InvokerRegistry::instance().create(
      params_.invoker,
      node::InvokerArgs{
          *engine_, *catalog_,
          params_.deployment.node_params(group, params_.node), node_rng,
          delivery, params_.policy});
  inv->set_node_index(static_cast<int>(index));
  // Per-call in-flight bookkeeping backs fail re-submission and drained
  // detection (scheduled or autoscaled); churn-free deployments skip its
  // hot-path cost entirely.
  if (params_.deployment.needs_in_flight_tracking()) {
    inv->enable_in_flight_tracking();
  }
  NodeSlot slot;
  slot.invoker = std::move(inv);
  slot.group = group;
  slot.joined_at = engine_->now();
  nodes_.push_back(std::move(slot));
  group_members_[group].push_back(index);
  return index;
}

void Cluster::rebuild_view() {
  std::vector<NodeRef> refs;
  refs.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeSlot& slot = nodes_[i];
    if (slot.state != NodeState::kActive) continue;
    refs.push_back(NodeRef{slot.invoker.get(), i, slot.group});
  }
  view_ = NodeView(std::move(refs));
}

std::size_t Cluster::resolve_node(const LifecycleEvent& event) const {
  const std::size_t g = params_.deployment.group_index(event.group);
  const auto& members = group_members_[g];
  WHISK_CHECK(
      event.node >= 0 &&
          static_cast<std::size_t>(event.node) < members.size(),
      ("cluster lifecycle event targets node " + std::to_string(event.node) +
       " of group \"" + event.group + "\", which has only " +
       std::to_string(members.size()) + " node(s) at t=" +
       std::to_string(event.time) + " (joins later in the schedule?)")
          .c_str());
  return members[static_cast<std::size_t>(event.node)];
}

void Cluster::apply_lifecycle(const LifecycleEvent& event) {
  switch (event.kind) {
    case LifecycleKind::kJoin: {
      const std::size_t g = params_.deployment.group_index(event.group);
      add_node(g);  // joins cold: no warm-up, empty pool
      break;
    }
    case LifecycleKind::kDrain: {
      NodeSlot& slot = nodes_[resolve_node(event)];
      WHISK_CHECK(slot.state == NodeState::kActive,
                  ("drain of group \"" + event.group + "\" node " +
                   std::to_string(event.node) + ": node is not active")
                      .c_str());
      slot.state = NodeState::kDraining;
      note_drain_progress(resolve_node(event));  // idle nodes retire now
      break;
    }
    case LifecycleKind::kFail: {
      NodeSlot& slot = nodes_[resolve_node(event)];
      WHISK_CHECK(slot.state != NodeState::kFailed,
                  ("fail of group \"" + event.group + "\" node " +
                   std::to_string(event.node) + ": node already failed")
                      .c_str());
      slot.state = NodeState::kFailed;
      // Billing stops at the failure (unless an earlier drain completed).
      if (slot.retired_at < 0.0) slot.retired_at = engine_->now();
      // The controller re-routes everything the node had received but not
      // answered, after the failure-detection delay.
      for (const workload::CallRequest& call : slot.invoker->shutdown()) {
        resubmit(call);
      }
      break;
    }
  }
  rebuild_view();
}

void Cluster::warmup() {
  for (const NodeSlot& slot : nodes_) slot.invoker->warmup();
}

void Cluster::run_scenario(const workload::Scenario& scenario) {
  collector_.reserve(collector_.size() + scenario.size());
  expected_calls_ += scenario.size();
  for (const auto& call : scenario.calls) {
    engine_->schedule_at(call.release + params_.client_to_controller_s,
                         [this, call] { submit_to_controller(call); });
  }
  if (autoscaler_ != nullptr && !tick_scheduled_) {
    tick_scheduled_ = true;
    engine_->schedule_in(tick_s_, [this] { autoscaler_tick(); });
  }
}

void Cluster::submit_to_controller(const workload::CallRequest& call) {
  // Demand-driven autoscalers watch the controller's own arrival stream
  // (resubmissions after a failure count again — they are real load).
  if (controller_history_ != nullptr) {
    controller_history_->record_arrival(call.function, engine_->now());
  }
  // The controller routes the invocation to a worker; the invoker pulls it
  // from Kafka one hop later (that pull time is r'(i)).
  WHISK_CHECK(!view_.empty(),
              "no routable nodes: every node is draining, drained or "
              "failed while calls are still arriving");
  const std::size_t pick = balancer_->pick(call, view_);
  WHISK_CHECK(pick < view_.size(), "balancer picked a bad index");
  const std::size_t target = view_[pick].node_index;
  ++nodes_[target].in_transit;
  engine_->schedule_in(params_.controller_to_invoker_s,
                       [this, call, target] { arrive_at_node(call, target); });
}

void Cluster::arrive_at_node(const workload::CallRequest& call,
                             std::size_t target) {
  NodeSlot& slot = nodes_[target];
  WHISK_CHECK(slot.in_transit > 0, "in-transit accounting underflow");
  --slot.in_transit;
  if (slot.state == NodeState::kFailed) {
    // The node died while the call was on the wire; the controller notices
    // and re-routes. Draining nodes still accept what was already routed.
    resubmit(call);
    return;
  }
  slot.invoker->submit(call);
}

void Cluster::resubmit(const workload::CallRequest& call) {
  ++resubmissions_;
  ++resubmitted_[call.id];
  engine_->schedule_in(params_.resubmit_delay_s,
                       [this, call] { submit_to_controller(call); });
}

void Cluster::deliver(const metrics::CallRecord& record) {
  if (controller_history_ != nullptr) {
    controller_history_->record_runtime(
        record.function, record.exec_end - record.exec_start,
        engine_->now());
  }
  // A completion may have emptied a draining node's backlog — the moment
  // its metering stops (Invoker::deliver removes the call from its
  // in-flight set before invoking this callback).
  if (record.node >= 0 &&
      nodes_[static_cast<std::size_t>(record.node)].state ==
          NodeState::kDraining) {
    note_drain_progress(static_cast<std::size_t>(record.node));
  }
  // Response travels back to the blocking HTTP client; c(i) is stamped on
  // arrival there.
  metrics::CallRecord rec = record;
  if (!resubmitted_.empty()) {
    const auto it = resubmitted_.find(rec.id);
    if (it != resubmitted_.end()) rec.attempts = 1 + it->second;
  }
  engine_->schedule_in(params_.response_return_s, [this, rec]() mutable {
    rec.completion = engine_->now();
    collector_.add(rec);
  });
}

void Cluster::autoscaler_tick() {
  const sim::SimTime now = engine_->now();
  ClusterObservation cluster_obs;
  cluster_obs.now = now;
  cluster_obs.num_functions = catalog_->size();
  cluster_obs.history = controller_history_.get();

  const ClusterSpec& deployment = params_.deployment;
  bool changed = false;
  for (std::size_t g = 0; g < deployment.groups.size(); ++g) {
    GroupObservation group_obs;
    group_obs.group = g;
    group_obs.cores_per_node =
        deployment.node_params(g, params_.node).cores;
    group_obs.capacity_share = capacity_share_[g];
    for (const std::size_t i : group_members_[g]) {
      if (nodes_[i].state != NodeState::kActive) continue;
      ++group_obs.active;
      group_obs.queued += nodes_[i].invoker->queue_length();
      group_obs.executing += nodes_[i].invoker->executing();
    }
    const std::size_t desired =
        std::clamp(autoscaler_->desired_nodes(group_obs, cluster_obs),
                   deployment.group_min_nodes(g),
                   deployment.group_max_nodes(g));
    if (desired == group_obs.active) continue;
    if (now - last_scale_[g] < cooldown_s_) continue;  // rate-limited
    if (desired > group_obs.active) {
      for (std::size_t n = group_obs.active; n < desired; ++n) {
        add_node(g);  // scale-up joins are cold, like join events
        ++scale_ups_;
      }
    } else {
      // Scale down by draining the newest active members first — they hold
      // the least container warmth, so the fleet keeps its oldest caches.
      std::size_t to_drain = group_obs.active - desired;
      const auto& members = group_members_[g];
      for (auto it = members.rbegin();
           it != members.rend() && to_drain > 0; ++it) {
        NodeSlot& slot = nodes_[*it];
        if (slot.state != NodeState::kActive) continue;
        slot.state = NodeState::kDraining;
        ++scale_downs_;
        --to_drain;
        note_drain_progress(*it);  // an idle node retires immediately
      }
    }
    last_scale_[g] = now;
    changed = true;
  }
  if (changed) rebuild_view();

  // Keep observing until every scheduled call has come back, then let the
  // engine's event queue drain (run() ends when it is empty).
  if (collector_.size() < expected_calls_) {
    engine_->schedule_in(tick_s_, [this] { autoscaler_tick(); });
  } else {
    tick_scheduled_ = false;
  }
}

void Cluster::note_drain_progress(std::size_t node) {
  NodeSlot& slot = nodes_[node];
  if (slot.state == NodeState::kDraining && slot.retired_at < 0.0 &&
      slot.invoker->in_flight() == 0 && slot.in_transit == 0) {
    slot.retired_at = engine_->now();
  }
}

double Cluster::node_seconds(std::size_t group) const {
  WHISK_CHECK(group < group_members_.size(),
              "cluster group index out of range");
  const sim::SimTime now = engine_->now();
  double total = 0.0;
  for (const std::size_t i : group_members_[group]) {
    const NodeSlot& slot = nodes_[i];
    const sim::SimTime end = slot.retired_at >= 0.0 ? slot.retired_at : now;
    total += std::max(0.0, end - slot.joined_at);
  }
  return total;
}

double Cluster::node_hours() const {
  double seconds = 0.0;
  for (std::size_t g = 0; g < group_members_.size(); ++g) {
    seconds += node_seconds(g);
  }
  return seconds / 3600.0;
}

double Cluster::cost_usd() const {
  double cost = 0.0;
  for (std::size_t g = 0; g < group_members_.size(); ++g) {
    cost += node_seconds(g) / 3600.0 *
            params_.deployment.group_cost_per_hour(g);
  }
  return cost;
}

node::Invoker& Cluster::invoker(std::size_t i) {
  WHISK_CHECK(i < nodes_.size(), "invoker index out of range");
  return *nodes_[i].invoker;
}

const node::Invoker& Cluster::invoker(std::size_t i) const {
  WHISK_CHECK(i < nodes_.size(), "invoker index out of range");
  return *nodes_[i].invoker;
}

NodeState Cluster::node_state(std::size_t i) const {
  WHISK_CHECK(i < nodes_.size(), "node index out of range");
  const NodeSlot& slot = nodes_[i];
  // in_flight() covers everything received and not yet delivered (queued,
  // executing, post-processing); in_transit covers calls routed before the
  // drain but still on the wire.
  if (slot.state == NodeState::kDraining && slot.invoker->in_flight() == 0 &&
      slot.in_transit == 0) {
    return NodeState::kDrained;
  }
  return slot.state;
}

std::size_t Cluster::node_group(std::size_t i) const {
  WHISK_CHECK(i < nodes_.size(), "node index out of range");
  return nodes_[i].group;
}

node::InvokerStats Cluster::total_stats() const {
  node::InvokerStats total;
  for (const NodeSlot& slot : nodes_) total.merge(slot.invoker->stats());
  return total;
}

std::vector<GroupStats> Cluster::group_stats() const {
  std::vector<GroupStats> out;
  out.reserve(params_.deployment.groups.size());
  for (std::size_t g = 0; g < params_.deployment.groups.size(); ++g) {
    GroupStats group;
    group.name = params_.deployment.groups[g].name;
    for (const std::size_t i : group_members_[g]) {
      const NodeSlot& slot = nodes_[i];
      ++group.nodes;
      if (slot.state == NodeState::kActive) ++group.active;
      group.stats.merge(slot.invoker->stats());
    }
    out.push_back(std::move(group));
  }
  return out;
}

}  // namespace whisk::cluster
