#include "cluster/cluster.h"

#include "node/invoker_registry.h"
#include "util/check.h"

namespace whisk::cluster {

Cluster::Cluster(sim::Engine& engine,
                 const workload::FunctionCatalog& catalog,
                 ClusterParams params, std::uint64_t seed)
    : engine_(&engine),
      catalog_(&catalog),
      params_(params),
      collector_(catalog) {
  WHISK_CHECK(params_.num_nodes > 0, "cluster needs at least one node");
  sim::Rng root(seed);
  // The balancer gets its own tagged stream so randomized balancers vary
  // across repetition seeds; the built-in deterministic ones ignore it.
  balancer_ = make_balancer(
      params_.balancer,
      BalancerParams{root.fork(sim::hash_tag("balancer")).next_u64()});
  auto delivery = [this](const metrics::CallRecord& rec) { deliver(rec); };
  for (int i = 0; i < params_.num_nodes; ++i) {
    sim::Rng node_rng = root.fork(sim::hash_tag("node") + i);
    auto inv = node::InvokerRegistry::instance().create(
        params_.invoker,
        node::InvokerArgs{engine, catalog, params_.node, node_rng, delivery,
                          params_.policy});
    inv->set_node_index(i);
    invokers_.push_back(std::move(inv));
    invoker_ptrs_.push_back(invokers_.back().get());
  }
}

void Cluster::warmup() {
  for (auto& inv : invokers_) inv->warmup();
}

void Cluster::run_scenario(const workload::Scenario& scenario) {
  collector_.reserve(collector_.size() + scenario.size());
  for (const auto& call : scenario.calls) {
    engine_->schedule_at(call.release + params_.client_to_controller_s,
                         [this, call] { submit_to_controller(call); });
  }
}

void Cluster::submit_to_controller(const workload::CallRequest& call) {
  // The controller routes the invocation to a worker; the invoker pulls it
  // from Kafka one hop later (that pull time is r'(i)).
  const std::size_t target = balancer_->pick(call, invoker_ptrs_);
  WHISK_CHECK(target < invokers_.size(), "balancer picked a bad index");
  engine_->schedule_in(params_.controller_to_invoker_s, [this, call, target] {
    invokers_[target]->submit(call);
  });
}

void Cluster::deliver(const metrics::CallRecord& record) {
  // Response travels back to the blocking HTTP client; c(i) is stamped on
  // arrival there.
  metrics::CallRecord rec = record;
  engine_->schedule_in(params_.response_return_s, [this, rec]() mutable {
    rec.completion = engine_->now();
    collector_.add(rec);
  });
}

node::Invoker& Cluster::invoker(std::size_t i) {
  WHISK_CHECK(i < invokers_.size(), "invoker index out of range");
  return *invokers_[i];
}

const node::Invoker& Cluster::invoker(std::size_t i) const {
  WHISK_CHECK(i < invokers_.size(), "invoker index out of range");
  return *invokers_[i];
}

node::InvokerStats Cluster::total_stats() const {
  node::InvokerStats total;
  for (const auto& inv : invokers_) {
    const auto& s = inv->stats();
    total.calls_received += s.calls_received;
    total.calls_completed += s.calls_completed;
    total.cold_starts += s.cold_starts;
    total.prewarm_starts += s.prewarm_starts;
    total.warm_starts += s.warm_starts;
    total.evictions += s.evictions;
  }
  return total;
}

}  // namespace whisk::cluster
