#include "cluster/cluster.h"

#include <algorithm>

#include "node/invoker_registry.h"
#include "util/check.h"

namespace whisk::cluster {

Cluster::Cluster(sim::Engine& engine,
                 const workload::FunctionCatalog& catalog,
                 ClusterParams params, std::uint64_t seed)
    : engine_(&engine),
      catalog_(&catalog),
      params_(params),
      collector_(catalog),
      node_seed_root_(seed) {
  params_.deployment = params_.deployment.normalized();
  WHISK_CHECK(params_.deployment.initial_nodes() > 0,
              "cluster needs at least one node");
  // The balancer gets its own tagged stream so randomized balancers vary
  // across repetition seeds; the built-in deterministic ones ignore it.
  balancer_ = make_balancer(
      params_.balancer,
      BalancerParams{
          node_seed_root_.fork(sim::hash_tag("balancer")).next_u64()});
  group_members_.resize(params_.deployment.groups.size());
  for (std::size_t g = 0; g < params_.deployment.groups.size(); ++g) {
    for (int j = 0; j < params_.deployment.groups[g].count; ++j) {
      add_node(g);
    }
  }
  rebuild_view();
  for (const LifecycleEvent& event : params_.deployment.events) {
    engine_->schedule_at(event.time,
                         [this, event] { apply_lifecycle(event); });
  }
}

std::size_t Cluster::add_node(std::size_t group) {
  const std::size_t index = nodes_.size();
  // Per-node streams are tagged by the *global* node index, so the initial
  // fleet forks exactly as the homogeneous pre-ClusterSpec cluster did and
  // joined nodes draw fresh independent streams.
  sim::Rng node_rng = node_seed_root_.fork(sim::hash_tag("node") + index);
  auto delivery = [this](const metrics::CallRecord& rec) { deliver(rec); };
  auto inv = node::InvokerRegistry::instance().create(
      params_.invoker,
      node::InvokerArgs{
          *engine_, *catalog_,
          params_.deployment.node_params(group, params_.node), node_rng,
          delivery, params_.policy});
  inv->set_node_index(static_cast<int>(index));
  // Per-call in-flight bookkeeping backs fail re-submission and drained
  // detection; churn-free deployments skip its hot-path cost entirely.
  if (params_.deployment.has_disruptive_events()) {
    inv->enable_in_flight_tracking();
  }
  NodeSlot slot;
  slot.invoker = std::move(inv);
  slot.group = group;
  nodes_.push_back(std::move(slot));
  group_members_[group].push_back(index);
  return index;
}

void Cluster::rebuild_view() {
  std::vector<NodeRef> refs;
  refs.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeSlot& slot = nodes_[i];
    if (slot.state != NodeState::kActive) continue;
    refs.push_back(NodeRef{slot.invoker.get(), i, slot.group});
  }
  view_ = NodeView(std::move(refs));
}

std::size_t Cluster::resolve_node(const LifecycleEvent& event) const {
  const std::size_t g = params_.deployment.group_index(event.group);
  const auto& members = group_members_[g];
  WHISK_CHECK(
      event.node >= 0 &&
          static_cast<std::size_t>(event.node) < members.size(),
      ("cluster lifecycle event targets node " + std::to_string(event.node) +
       " of group \"" + event.group + "\", which has only " +
       std::to_string(members.size()) + " node(s) at t=" +
       std::to_string(event.time) + " (joins later in the schedule?)")
          .c_str());
  return members[static_cast<std::size_t>(event.node)];
}

void Cluster::apply_lifecycle(const LifecycleEvent& event) {
  switch (event.kind) {
    case LifecycleKind::kJoin: {
      const std::size_t g = params_.deployment.group_index(event.group);
      add_node(g);  // joins cold: no warm-up, empty pool
      break;
    }
    case LifecycleKind::kDrain: {
      NodeSlot& slot = nodes_[resolve_node(event)];
      WHISK_CHECK(slot.state == NodeState::kActive,
                  ("drain of group \"" + event.group + "\" node " +
                   std::to_string(event.node) + ": node is not active")
                      .c_str());
      slot.state = NodeState::kDraining;
      break;
    }
    case LifecycleKind::kFail: {
      NodeSlot& slot = nodes_[resolve_node(event)];
      WHISK_CHECK(slot.state != NodeState::kFailed,
                  ("fail of group \"" + event.group + "\" node " +
                   std::to_string(event.node) + ": node already failed")
                      .c_str());
      slot.state = NodeState::kFailed;
      // The controller re-routes everything the node had received but not
      // answered, after the failure-detection delay.
      for (const workload::CallRequest& call : slot.invoker->shutdown()) {
        resubmit(call);
      }
      break;
    }
  }
  rebuild_view();
}

void Cluster::warmup() {
  for (const NodeSlot& slot : nodes_) slot.invoker->warmup();
}

void Cluster::run_scenario(const workload::Scenario& scenario) {
  collector_.reserve(collector_.size() + scenario.size());
  for (const auto& call : scenario.calls) {
    engine_->schedule_at(call.release + params_.client_to_controller_s,
                         [this, call] { submit_to_controller(call); });
  }
}

void Cluster::submit_to_controller(const workload::CallRequest& call) {
  // The controller routes the invocation to a worker; the invoker pulls it
  // from Kafka one hop later (that pull time is r'(i)).
  WHISK_CHECK(!view_.empty(),
              "no routable nodes: every node is draining, drained or "
              "failed while calls are still arriving");
  const std::size_t pick = balancer_->pick(call, view_);
  WHISK_CHECK(pick < view_.size(), "balancer picked a bad index");
  const std::size_t target = view_[pick].node_index;
  ++nodes_[target].in_transit;
  engine_->schedule_in(params_.controller_to_invoker_s,
                       [this, call, target] { arrive_at_node(call, target); });
}

void Cluster::arrive_at_node(const workload::CallRequest& call,
                             std::size_t target) {
  NodeSlot& slot = nodes_[target];
  WHISK_CHECK(slot.in_transit > 0, "in-transit accounting underflow");
  --slot.in_transit;
  if (slot.state == NodeState::kFailed) {
    // The node died while the call was on the wire; the controller notices
    // and re-routes. Draining nodes still accept what was already routed.
    resubmit(call);
    return;
  }
  slot.invoker->submit(call);
}

void Cluster::resubmit(const workload::CallRequest& call) {
  ++resubmissions_;
  ++resubmitted_[call.id];
  engine_->schedule_in(params_.resubmit_delay_s,
                       [this, call] { submit_to_controller(call); });
}

void Cluster::deliver(const metrics::CallRecord& record) {
  // Response travels back to the blocking HTTP client; c(i) is stamped on
  // arrival there.
  metrics::CallRecord rec = record;
  if (!resubmitted_.empty()) {
    const auto it = resubmitted_.find(rec.id);
    if (it != resubmitted_.end()) rec.attempts = 1 + it->second;
  }
  engine_->schedule_in(params_.response_return_s, [this, rec]() mutable {
    rec.completion = engine_->now();
    collector_.add(rec);
  });
}

node::Invoker& Cluster::invoker(std::size_t i) {
  WHISK_CHECK(i < nodes_.size(), "invoker index out of range");
  return *nodes_[i].invoker;
}

const node::Invoker& Cluster::invoker(std::size_t i) const {
  WHISK_CHECK(i < nodes_.size(), "invoker index out of range");
  return *nodes_[i].invoker;
}

NodeState Cluster::node_state(std::size_t i) const {
  WHISK_CHECK(i < nodes_.size(), "node index out of range");
  const NodeSlot& slot = nodes_[i];
  // in_flight() covers everything received and not yet delivered (queued,
  // executing, post-processing); in_transit covers calls routed before the
  // drain but still on the wire.
  if (slot.state == NodeState::kDraining && slot.invoker->in_flight() == 0 &&
      slot.in_transit == 0) {
    return NodeState::kDrained;
  }
  return slot.state;
}

std::size_t Cluster::node_group(std::size_t i) const {
  WHISK_CHECK(i < nodes_.size(), "node index out of range");
  return nodes_[i].group;
}

node::InvokerStats Cluster::total_stats() const {
  node::InvokerStats total;
  for (const NodeSlot& slot : nodes_) total.merge(slot.invoker->stats());
  return total;
}

std::vector<GroupStats> Cluster::group_stats() const {
  std::vector<GroupStats> out;
  out.reserve(params_.deployment.groups.size());
  for (std::size_t g = 0; g < params_.deployment.groups.size(); ++g) {
    GroupStats group;
    group.name = params_.deployment.groups[g].name;
    for (const std::size_t i : group_members_[g]) {
      const NodeSlot& slot = nodes_[i];
      ++group.nodes;
      if (slot.state == NodeState::kActive) ++group.active;
      group.stats.merge(slot.invoker->stats());
    }
    out.push_back(std::move(group));
  }
  return out;
}

}  // namespace whisk::cluster
