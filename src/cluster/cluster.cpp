#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "cluster/workflow_engine.h"
#include "node/invoker_registry.h"
#include "util/check.h"

namespace whisk::cluster {
namespace {

// Recent controller-observed latencies retained for the hedge quantile.
// Big enough for a stable tail estimate, small enough that the copy in
// hedge_delay() stays off any profile.
constexpr std::size_t kLatencyRingCapacity = 256;

}  // namespace

Cluster::Cluster(sim::Engine& engine,
                 const workload::FunctionCatalog& catalog,
                 ClusterParams params, std::uint64_t seed)
    : engine_(&engine),
      catalog_(&catalog),
      params_(params),
      collector_(catalog),
      node_seed_root_(seed) {
  params_.deployment = params_.deployment.normalized();
  WHISK_CHECK(params_.deployment.initial_nodes() > 0,
              "cluster needs at least one node");
  // The balancer gets its own tagged stream so randomized balancers vary
  // across repetition seeds; the built-in deterministic ones ignore it.
  balancer_ = make_balancer(
      params_.balancer,
      BalancerParams{
          node_seed_root_.fork(sim::hash_tag("balancer")).next_u64()});
  group_members_.resize(params_.deployment.groups.size());
  for (std::size_t g = 0; g < params_.deployment.groups.size(); ++g) {
    for (int j = 0; j < params_.deployment.groups[g].count; ++j) {
      add_node(g);
    }
  }
  rebuild_view();
  for (const LifecycleEvent& event : params_.deployment.events) {
    engine_->schedule_at(event.time,
                         [this, event] { apply_lifecycle(event); });
  }

  const ClusterSpec& deployment = params_.deployment;
  if (deployment.autoscaler.enabled()) {
    autoscaler_ = make_autoscaler(deployment.autoscaler);
    tick_s_ = deployment.autoscaler.number("tick-s", 5.0);
    cooldown_s_ = deployment.autoscaler.number("cooldown-s", 60.0);
    last_scale_.assign(deployment.groups.size(),
                       -std::numeric_limits<double>::infinity());
    const double window = autoscaler_->history_window_s();
    if (window > 0.0) {
      controller_history_ = std::make_unique<core::RuntimeHistory>();
      controller_history_->register_arrival_window(window);
      controller_history_->register_fc_window(window);
    }
    // Fix each group's share of the t=0 core capacity; demand-driven
    // controllers apportion fleet-wide estimates by it, so the split must
    // not drift as groups scale (that would feed back into itself).
    capacity_share_.assign(deployment.groups.size(), 0.0);
    double total_cores = 0.0;
    for (std::size_t g = 0; g < deployment.groups.size(); ++g) {
      capacity_share_[g] =
          static_cast<double>(
              deployment.node_params(g, params_.node).cores) *
          std::max(deployment.groups[g].count, 0);
      total_cores += capacity_share_[g];
    }
    for (double& share : capacity_share_) {
      share = total_cores > 0.0 ? share / total_cores
                                : 1.0 / static_cast<double>(
                                            capacity_share_.size());
    }
  }

  if (deployment.resilience.enabled()) {
    const ResilienceSpec& r = deployment.resilience;
    resilience_ = std::make_unique<ResilienceConfig>();
    resilience_->timeout_s = r.number("timeout-s", 0.0);
    resilience_->max_attempts =
        static_cast<int>(r.count("max-attempts", 4));
    resilience_->retry_budget = r.number("retry-budget", 0.2);
    resilience_->hedge_p = r.number("hedge-p", 0.0);
    resilience_->hedge_min_samples = r.count("hedge-min-samples", 32);
    resilience_->breaker_failures = r.count("breaker-failures", 0);
    resilience_->breaker_cooldown_s = r.number("breaker-cooldown-s", 30.0);
    resilience_->max_queue = r.count("max-queue", 0);
    // Only timeouts and hedges need the per-call Outstanding map; shedding
    // and attempt bounds decide from state the cluster already keeps.
    track_calls_ =
        resilience_->timeout_s > 0.0 || resilience_->hedge_p > 0.0;
    if (resilience_->breaker_failures > 0) breakers_.resize(nodes_.size());
    if (resilience_->hedge_p > 0.0) {
      latency_ring_.reserve(kLatencyRingCapacity);
    }
  }

  if (params_.workflow.enabled()) {
    workflow_ = std::make_unique<WorkflowEngine>(params_.workflow, catalog);
  }

  if (!deployment.faults.empty()) {
    // Each process gets a private stream forked from the cell seed by list
    // position — independent of node streams, the balancer stream and each
    // other, so a campaign stays byte-identical for any thread count.
    const sim::Rng fault_root = node_seed_root_.fork(sim::hash_tag("fault"));
    for (const FaultSpec& spec : deployment.faults) {
      auto process = make_fault(spec);
      if (process->drops_completions()) droppers_.push_back(process.get());
      fault_processes_.push_back(std::move(process));
    }
    for (std::size_t i = 0; i < fault_processes_.size(); ++i) {
      fault_processes_[i]->start(*this, fault_root.fork(i + 1));
    }
  }
}

// Out of line for the unique_ptr<WorkflowEngine> member's incomplete type.
Cluster::~Cluster() = default;

std::unique_ptr<node::Invoker> Cluster::make_invoker(
    std::size_t group, std::size_t index, std::size_t incarnation) {
  // Per-node streams are tagged by the *global* node index, so the initial
  // fleet forks exactly as the homogeneous pre-ClusterSpec cluster did and
  // joined nodes draw fresh independent streams. A restarted incarnation
  // forks once more so it never replays its predecessor's draws.
  sim::Rng node_rng = node_seed_root_.fork(sim::hash_tag("node") + index);
  if (incarnation > 0) {
    node_rng = node_rng.fork(sim::hash_tag("restart") + incarnation);
  }
  auto delivery = [this](const metrics::CallRecord& rec) { deliver(rec); };
  auto inv = node::InvokerRegistry::instance().create(
      params_.invoker,
      node::InvokerArgs{
          *engine_, *catalog_,
          params_.deployment.node_params(group, params_.node), node_rng,
          delivery, params_.policy});
  inv->set_node_index(static_cast<int>(index));
  // Per-call in-flight bookkeeping backs fail re-submission and drained
  // detection (scheduled, autoscaled or fault-driven); churn-free
  // deployments skip its hot-path cost entirely.
  if (params_.deployment.needs_in_flight_tracking()) {
    inv->enable_in_flight_tracking();
  }
  return inv;
}

std::size_t Cluster::add_node(std::size_t group) {
  const std::size_t index = nodes_.size();
  NodeSlot slot;
  slot.invoker = make_invoker(group, index, 0);
  slot.group = group;
  slot.joined_at = engine_->now();
  nodes_.push_back(std::move(slot));
  group_members_[group].push_back(index);
  if (resilience_ != nullptr && resilience_->breaker_failures > 0) {
    breakers_.resize(nodes_.size());  // late joins get a fresh breaker
  }
  return index;
}

void Cluster::rebuild_view() {
  std::vector<NodeRef> refs;
  refs.reserve(nodes_.size());
  std::vector<NodeRef> ejected;
  const bool breakers = !breakers_.empty();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeSlot& slot = nodes_[i];
    if (slot.state != NodeState::kActive) continue;
    const NodeRef ref{slot.invoker.get(), i, slot.group};
    if (breakers && breakers_[i].state == Breaker::State::kOpen) {
      ejected.push_back(ref);
      continue;
    }
    refs.push_back(ref);
  }
  // Fail open: when every active node's breaker is open the fleet routes
  // to all of them anyway — serving through suspect nodes beats serving
  // through none.
  if (refs.empty() && !ejected.empty()) refs = std::move(ejected);
  view_ = NodeView(std::move(refs));
  // A restart after a total outage re-admits the calls that arrived while
  // no node was routable, in arrival order.
  if (!view_.empty() && !parked_calls_.empty()) {
    std::vector<workload::CallRequest> parked;
    parked.swap(parked_calls_);
    for (const workload::CallRequest& call : parked) {
      submit_to_controller(call);
    }
  }
}

std::size_t Cluster::resolve_node(const LifecycleEvent& event) const {
  const std::size_t g = params_.deployment.group_index(event.group);
  const auto& members = group_members_[g];
  WHISK_CHECK(
      event.node >= 0 &&
          static_cast<std::size_t>(event.node) < members.size(),
      ("cluster lifecycle event targets node " + std::to_string(event.node) +
       " of group \"" + event.group + "\", which has only " +
       std::to_string(members.size()) + " node(s) at t=" +
       std::to_string(event.time) + " (joins later in the schedule?)")
          .c_str());
  return members[static_cast<std::size_t>(event.node)];
}

void Cluster::apply_lifecycle(const LifecycleEvent& event) {
  switch (event.kind) {
    case LifecycleKind::kJoin: {
      const std::size_t g = params_.deployment.group_index(event.group);
      add_node(g);  // joins cold: no warm-up, empty pool
      break;
    }
    case LifecycleKind::kDrain: {
      NodeSlot& slot = nodes_[resolve_node(event)];
      WHISK_CHECK(slot.state == NodeState::kActive,
                  ("drain of group \"" + event.group + "\" node " +
                   std::to_string(event.node) + ": node is not active")
                      .c_str());
      slot.state = NodeState::kDraining;
      note_drain_progress(resolve_node(event));  // idle nodes retire now
      break;
    }
    case LifecycleKind::kFail: {
      NodeSlot& slot = nodes_[resolve_node(event)];
      WHISK_CHECK(slot.state != NodeState::kFailed,
                  ("fail of group \"" + event.group + "\" node " +
                   std::to_string(event.node) + ": node already failed")
                      .c_str());
      slot.state = NodeState::kFailed;
      slot.failed_at = engine_->now();
      // Billing stops at the failure (unless an earlier drain completed).
      if (slot.retired_at < 0.0) slot.retired_at = engine_->now();
      // The controller re-routes everything the node had received but not
      // answered, after the failure-detection delay.
      for (const workload::CallRequest& call : slot.invoker->shutdown()) {
        resubmit(call);
      }
      break;
    }
  }
  rebuild_view();
}

void Cluster::warmup() {
  for (const NodeSlot& slot : nodes_) slot.invoker->warmup();
}

void Cluster::adopt_collector_storage(metrics::Collector&& storage) {
  WHISK_CHECK(collector_.size() == 0 && expected_calls_ == 0,
              "adopt_collector_storage after the run started");
  storage.reset(*catalog_);
  collector_ = std::move(storage);
}

metrics::Collector Cluster::release_collector_storage() {
  return std::move(collector_);
}

void Cluster::run_scenario(const workload::Scenario& scenario) {
  expected_calls_ += scenario.size();
  if (workflow_ != nullptr) {
    // Every scenario call roots a workflow instance; the spawned stages
    // are part of the expected workload from the start, so drain detection
    // and fault gating wait for them too.
    expected_calls_ += workflow_->register_roots(scenario);
    // One workflow record per root — the workflow-side reserve hint.
    collector_.reserve_workflows(scenario.size());
  }
  collector_.reserve(expected_calls_);
  for (const auto& call : scenario.calls) {
    workload::CallRequest submit = call;
    if (workflow_ != nullptr) submit.cp_hint = workflow_->root_hint(submit);
    engine_->schedule_at(submit.release + params_.client_to_controller_s,
                         [this, submit] { submit_to_controller(submit); });
  }
  if (autoscaler_ != nullptr && !tick_scheduled_) {
    tick_scheduled_ = true;
    engine_->schedule_in(tick_s_, [this] { autoscaler_tick(); });
  }
}

void Cluster::submit_to_controller(const workload::CallRequest& call) {
  // A retry or failure re-submission scheduled before the call resolved
  // (hedge won, attempts exhausted) must not resurrect it.
  if (track_calls_ && resolved_.count(call.id) != 0) return;
  // Total outage under a disruptive fault regime: every node is down at
  // once, but a crashed node restarts, so the call parks until
  // rebuild_view() sees capacity again. Without such faults an empty view
  // is a configuration error and aborts below.
  if (view_.empty() && params_.deployment.has_disruptive_faults()) {
    parked_calls_.push_back(call);
    return;
  }
  // Demand-driven autoscalers watch the controller's own arrival stream
  // (resubmissions after a failure count again — they are real load).
  if (controller_history_ != nullptr) {
    controller_history_->record_arrival(call.function, engine_->now());
  }
  // The controller routes the invocation to a worker; the invoker pulls it
  // from Kafka one hop later (that pull time is r'(i)).
  WHISK_CHECK(!view_.empty(),
              "no routable nodes: every node is draining, drained or "
              "failed while calls are still arriving");
  // Admission control: a *fresh* call is shed when every routable node is
  // already at max-queue — refusing loudly beats collapsing quietly.
  // Retries and re-submissions represent work the cluster already
  // admitted, so they always pass.
  if (resilience_ != nullptr && resilience_->max_queue > 0 &&
      outstanding_.count(call.id) == 0 &&
      resubmitted_.count(call.id) == 0) {
    bool saturated = true;
    for (const NodeRef& ref : view_) {
      if (ref.load() + nodes_[ref.node_index].in_transit <
          resilience_->max_queue) {
        saturated = false;
        break;
      }
    }
    if (saturated) {
      metrics::CallRecord rec;
      rec.id = call.id;
      rec.function = call.function;
      rec.node = -1;
      rec.release = call.release;
      rec.completion = engine_->now();
      rec.disposition = metrics::Disposition::kShed;
      collect_record(rec);
      return;
    }
  }
  const std::size_t pick = balancer_->pick(call, view_);
  WHISK_CHECK(pick < view_.size(), "balancer picked a bad index");
  const std::size_t target = view_[pick].node_index;
  if (track_calls_) {
    const auto [it, fresh] = outstanding_.try_emplace(call.id);
    Outstanding& entry = it->second;
    if (fresh) entry.first_submit = engine_->now();
    entry.primary = target;
    if (resilience_->timeout_s > 0.0) {
      // Re-arm per attempt; the previous timer is stale whether it fired
      // (retry path) or still pends (failure re-submission path).
      if (entry.timeout_ev != sim::kInvalidEvent) {
        engine_->cancel(entry.timeout_ev);
      }
      entry.timeout_ev = engine_->schedule_in(
          resilience_->timeout_s, [this, call] { on_timeout(call); });
    }
    if (resilience_->hedge_p > 0.0 && entry.hedge == FaultHost::npos &&
        entry.hedge_ev == sim::kInvalidEvent &&
        latencies_observed_ >= resilience_->hedge_min_samples &&
        view_.size() >= 2) {
      entry.hedge_ev = engine_->schedule_in(hedge_delay(),
                                            [this, call] { on_hedge(call); });
    }
  }
  ++nodes_[target].in_transit;
  engine_->schedule_in(params_.controller_to_invoker_s,
                       [this, call, target] { arrive_at_node(call, target); });
}

void Cluster::arrive_at_node(const workload::CallRequest& call,
                             std::size_t target) {
  NodeSlot& slot = nodes_[target];
  WHISK_CHECK(slot.in_transit > 0, "in-transit accounting underflow");
  --slot.in_transit;
  if (slot.state == NodeState::kFailed) {
    // The node died while the call was on the wire; the controller notices
    // and re-routes. Draining nodes still accept what was already routed.
    resubmit(call);
    return;
  }
  slot.invoker->submit(call);
}

void Cluster::resubmit(const workload::CallRequest& call) {
  if (track_calls_) {
    const auto it = outstanding_.find(call.id);
    // No entry means the call already resolved (a timeout dropped it, or
    // its hedge won) — nothing left to recover.
    if (it == outstanding_.end()) return;
    if (it->second.attempts >= resilience_->max_attempts) {
      drop_call(call, it->second.attempts);
      return;
    }
    ++it->second.attempts;
    ++resubmissions_;
    // The armed timeout stays: it covers the call, not the lost attempt.
    engine_->schedule_in(params_.resubmit_delay_s,
                         [this, call] { submit_to_controller(call); });
    return;
  }
  const auto it = resubmitted_.find(call.id);
  const int attempts_so_far = 1 + (it == resubmitted_.end() ? 0 : it->second);
  if (attempts_so_far >= params_.max_attempts) {
    drop_call(call, attempts_so_far);
    return;
  }
  ++resubmissions_;
  ++resubmitted_[call.id];
  engine_->schedule_in(params_.resubmit_delay_s,
                       [this, call] { submit_to_controller(call); });
}

void Cluster::deliver(const metrics::CallRecord& record) {
  // Node-side truth first: the completion may have emptied a draining
  // node's backlog — the moment its metering stops (Invoker::deliver
  // removes the call from its in-flight set before invoking this
  // callback) — no matter what becomes of the message below.
  if (record.node >= 0 &&
      nodes_[static_cast<std::size_t>(record.node)].state ==
          NodeState::kDraining) {
    note_drain_progress(static_cast<std::size_t>(record.node));
  }
  // Fault hook: the node finished the work but the completion is lost on
  // the return path — the controller (history included) never sees it, and
  // only a resilience timeout re-drives the call.
  for (FaultProcess* dropper : droppers_) {
    if (dropper->drop_completion(record)) return;
  }
  if (controller_history_ != nullptr) {
    controller_history_->record_runtime(
        record.function, record.exec_end - record.exec_start,
        engine_->now());
  }
  metrics::CallRecord rec = record;
  if (track_calls_) {
    const auto it = outstanding_.find(rec.id);
    // No entry: a hedge loser or a late duplicate of an already-resolved
    // call. First completion won; this one is discarded.
    if (it == outstanding_.end()) return;
    Outstanding& entry = it->second;
    if (entry.timeout_ev != sim::kInvalidEvent) {
      engine_->cancel(entry.timeout_ev);
    }
    if (entry.hedge_ev != sim::kInvalidEvent) {
      engine_->cancel(entry.hedge_ev);
    }
    if (entry.hedge != FaultHost::npos && rec.node >= 0 &&
        static_cast<std::size_t>(rec.node) == entry.hedge &&
        entry.hedge != entry.primary) {
      ++hedges_won_;
    }
    if (!breakers_.empty() && rec.node >= 0) {
      breaker_note_success(static_cast<std::size_t>(rec.node));
    }
    if (resilience_->hedge_p > 0.0) {
      const double sample = engine_->now() - entry.first_submit;
      if (latency_ring_.size() < kLatencyRingCapacity) {
        latency_ring_.push_back(sample);
      } else {
        latency_ring_[latency_ring_next_] = sample;
        latency_ring_next_ = (latency_ring_next_ + 1) % kLatencyRingCapacity;
      }
      ++latencies_observed_;
    }
    rec.attempts = entry.attempts;
    resolved_.insert(rec.id);
    outstanding_.erase(it);
  } else if (!resubmitted_.empty()) {
    const auto it = resubmitted_.find(rec.id);
    if (it != resubmitted_.end()) rec.attempts = 1 + it->second;
  }
  // Response travels back to the blocking HTTP client; c(i) is stamped on
  // arrival there.
  engine_->schedule_in(params_.response_return_s, [this, rec]() mutable {
    rec.completion = engine_->now();
    collect_record(rec);
  });
}

void Cluster::on_timeout(const workload::CallRequest& call) {
  const auto it = outstanding_.find(call.id);
  if (it == outstanding_.end()) return;  // resolved at the same timestamp
  Outstanding& entry = it->second;
  entry.timeout_ev = sim::kInvalidEvent;
  ++timeouts_;
  if (!breakers_.empty() && entry.primary != FaultHost::npos) {
    breaker_note_timeout(entry.primary);
  }
  const auto budget = static_cast<std::size_t>(
      std::ceil(resilience_->retry_budget *
                static_cast<double>(expected_calls_)));
  if (entry.attempts >= resilience_->max_attempts ||
      retries_spent_ >= budget) {
    drop_call(call, entry.attempts);
    return;
  }
  ++retries_spent_;
  ++retries_;
  ++entry.retries;
  ++entry.attempts;
  // Deterministic exponential backoff on the failure re-route base:
  // resubmit_delay_s, 2x it, 4x it, ... The pending retry rides in
  // timeout_ev so drop_call can cancel it.
  const double delay =
      params_.resubmit_delay_s *
      static_cast<double>(1ULL << std::min(entry.retries - 1, 30));
  entry.timeout_ev = engine_->schedule_in(
      delay, [this, call] { submit_to_controller(call); });
}

void Cluster::on_hedge(const workload::CallRequest& call) {
  const auto it = outstanding_.find(call.id);
  if (it == outstanding_.end()) return;
  Outstanding& entry = it->second;
  entry.hedge_ev = sim::kInvalidEvent;
  if (entry.hedge != FaultHost::npos || view_.size() < 2) return;
  // The duplicate goes to the least-loaded node other than the primary
  // (lowest index on ties — deterministic, and it cooperates with the
  // balancer instead of re-asking it and maybe getting the primary again).
  std::size_t best = FaultHost::npos;
  std::size_t best_load = 0;
  for (const NodeRef& ref : view_) {
    if (ref.node_index == entry.primary) continue;
    const std::size_t load =
        ref.load() + nodes_[ref.node_index].in_transit;
    if (best == FaultHost::npos || load < best_load) {
      best = ref.node_index;
      best_load = load;
    }
  }
  if (best == FaultHost::npos) return;  // view is just the primary
  entry.hedge = best;
  ++entry.attempts;
  ++hedges_;
  ++nodes_[best].in_transit;
  engine_->schedule_in(params_.controller_to_invoker_s,
                       [this, call, best] { arrive_at_node(call, best); });
}

void Cluster::drop_call(const workload::CallRequest& call, int attempts) {
  const auto it = outstanding_.find(call.id);
  if (it != outstanding_.end()) {
    if (it->second.timeout_ev != sim::kInvalidEvent) {
      engine_->cancel(it->second.timeout_ev);
    }
    if (it->second.hedge_ev != sim::kInvalidEvent) {
      engine_->cancel(it->second.hedge_ev);
    }
    outstanding_.erase(it);
  }
  if (track_calls_) resolved_.insert(call.id);
  metrics::CallRecord rec;
  rec.id = call.id;
  rec.function = call.function;
  rec.node = -1;
  rec.release = call.release;
  rec.completion = engine_->now();
  rec.attempts = attempts;
  rec.disposition = metrics::Disposition::kDropped;
  collect_record(rec);
}

void Cluster::breaker_note_timeout(std::size_t node) {
  if (node >= breakers_.size()) return;
  Breaker& b = breakers_[node];
  if (b.state == Breaker::State::kOpen) return;
  // Half-open means the node was serving a probe; a timeout fails it and
  // re-opens immediately.
  if (b.state == Breaker::State::kHalfOpen ||
      ++b.consecutive_timeouts >= resilience_->breaker_failures) {
    b.state = Breaker::State::kOpen;
    b.consecutive_timeouts = 0;
    ++breaker_opens_;
    rebuild_view();
    schedule_cancellable(resilience_->breaker_cooldown_s, [this, node] {
      Breaker& cooled = breakers_[node];
      if (cooled.state != Breaker::State::kOpen) return;
      // Half-open: the node rejoins the view; its next outcome (success
      // closes, timeout re-opens) decides.
      cooled.state = Breaker::State::kHalfOpen;
      rebuild_view();
    });
  }
}

void Cluster::breaker_note_success(std::size_t node) {
  if (node >= breakers_.size()) return;
  Breaker& b = breakers_[node];
  b.consecutive_timeouts = 0;
  if (b.state == Breaker::State::kHalfOpen) {
    b.state = Breaker::State::kClosed;
  }
}

double Cluster::hedge_delay() const {
  std::vector<double> sorted = latency_ring_;
  const auto k = static_cast<std::size_t>(
      resilience_->hedge_p * static_cast<double>(sorted.size() - 1));
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(k),
                   sorted.end());
  return sorted[k];
}

void Cluster::collect_record(const metrics::CallRecord& record) {
  if (workflow_ != nullptr) {
    metrics::CallRecord rec = record;
    workflow_->annotate(rec);
    collector_.add(rec);
    // Advancing the DAG may release successors (fresh arrivals) or cascade
    // drops back through this funnel; either way every spawned stage is in
    // expected_calls_ already.
    workflow_->on_resolved(rec, *this);
  } else {
    collector_.add(record);
  }
  // The last expected call just resolved: cancel every pending fault draw
  // and breaker cooldown so a far-future timer cannot keep the engine
  // ticking past the workload.
  if (!pending_timers_.empty() && expected_calls_ > 0 &&
      collector_.size() >= expected_calls_) {
    cancel_pending_timers();
  }
}

void Cluster::schedule_cancellable(double delay_s,
                                   std::function<void()> fn) {
  const std::uint64_t key = next_timer_key_++;
  const sim::EventId id = engine_->schedule_in(
      delay_s, [this, key, fn = std::move(fn)] {
        pending_timers_.erase(key);
        fn();
      });
  pending_timers_.emplace(key, id);
}

void Cluster::cancel_pending_timers() {
  for (const auto& [key, id] : pending_timers_) engine_->cancel(id);
  pending_timers_.clear();
}

sim::SimTime Cluster::fault_now() const { return engine_->now(); }

void Cluster::fault_schedule(double delay_s, std::function<void()> fn) {
  schedule_cancellable(delay_s, std::move(fn));
}

std::size_t Cluster::fault_group_index(std::string_view name) const {
  return params_.deployment.group_index(name);
}

std::size_t Cluster::fault_active_count(std::size_t group) const {
  std::size_t count = 0;
  if (group == FaultHost::npos) {
    for (const NodeSlot& slot : nodes_) {
      count += slot.state == NodeState::kActive ? 1 : 0;
    }
    return count;
  }
  WHISK_CHECK(group < group_members_.size(), "fault group out of range");
  for (const std::size_t i : group_members_[group]) {
    count += nodes_[i].state == NodeState::kActive ? 1 : 0;
  }
  return count;
}

std::size_t Cluster::fault_active_at(std::size_t group, std::size_t k) const {
  if (group == FaultHost::npos) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].state != NodeState::kActive) continue;
      if (k == 0) return i;
      --k;
    }
  } else {
    WHISK_CHECK(group < group_members_.size(), "fault group out of range");
    for (const std::size_t i : group_members_[group]) {
      if (nodes_[i].state != NodeState::kActive) continue;
      if (k == 0) return i;
      --k;
    }
  }
  WHISK_CHECK(false, "fault_active_at: index past the active nodes");
  return FaultHost::npos;
}

std::size_t Cluster::fault_member(std::size_t group,
                                  std::size_t member) const {
  WHISK_CHECK(group < group_members_.size(), "fault group out of range");
  const auto& members = group_members_[group];
  return member < members.size() ? members[member] : FaultHost::npos;
}

bool Cluster::fault_node_active(std::size_t node) const {
  WHISK_CHECK(node < nodes_.size(), "fault node out of range");
  return nodes_[node].state == NodeState::kActive;
}

bool Cluster::fault_node_failed(std::size_t node) const {
  WHISK_CHECK(node < nodes_.size(), "fault node out of range");
  return nodes_[node].state == NodeState::kFailed;
}

bool Cluster::fault_fail(std::size_t node) {
  WHISK_CHECK(node < nodes_.size(), "fault node out of range");
  NodeSlot& slot = nodes_[node];
  // Only active nodes crash stochastically; draining/failed ones are
  // already out of service and retired ones hold no work.
  if (slot.state != NodeState::kActive) return false;
  slot.state = NodeState::kFailed;
  slot.failed_at = engine_->now();
  if (slot.retired_at < 0.0) slot.retired_at = engine_->now();
  for (const workload::CallRequest& call : slot.invoker->shutdown()) {
    resubmit(call);
  }
  rebuild_view();
  return true;
}

bool Cluster::fault_restart(std::size_t node) {
  WHISK_CHECK(node < nodes_.size(), "fault node out of range");
  NodeSlot& slot = nodes_[node];
  if (slot.state != NodeState::kFailed) return false;
  // Close the dead incarnation's metering interval and downtime window,
  // then seat a fresh cold invoker in the same slot.
  slot.accrued_s += std::max(0.0, slot.retired_at - slot.joined_at);
  if (slot.failed_at >= 0.0) {
    unavailability_accrued_s_ += engine_->now() - slot.failed_at;
    slot.failed_at = -1.0;
  }
  ++slot.incarnation;
  retired_invokers_.push_back(std::move(slot.invoker));
  slot.invoker = make_invoker(slot.group, node, slot.incarnation);
  slot.state = NodeState::kActive;
  slot.joined_at = engine_->now();
  slot.retired_at = -1.0;
  if (node < breakers_.size()) breakers_[node] = Breaker{};
  rebuild_view();
  return true;
}

void Cluster::fault_set_speed(std::size_t node, double factor) {
  WHISK_CHECK(node < nodes_.size(), "fault node out of range");
  NodeSlot& slot = nodes_[node];
  if (slot.state == NodeState::kFailed) return;
  slot.invoker->set_speed_factor(factor);
}

bool Cluster::fault_workload_done() const {
  return expected_calls_ > 0 && collector_.size() >= expected_calls_;
}

void Cluster::fault_note_injected() { ++faults_injected_; }

double Cluster::unavailability_s() const {
  double total = unavailability_accrued_s_;
  for (const NodeSlot& slot : nodes_) {
    if (slot.failed_at >= 0.0) total += engine_->now() - slot.failed_at;
  }
  return total;
}

void Cluster::autoscaler_tick() {
  const sim::SimTime now = engine_->now();
  ClusterObservation cluster_obs;
  cluster_obs.now = now;
  cluster_obs.num_functions = catalog_->size();
  cluster_obs.history = controller_history_.get();

  const ClusterSpec& deployment = params_.deployment;
  bool changed = false;
  for (std::size_t g = 0; g < deployment.groups.size(); ++g) {
    GroupObservation group_obs;
    group_obs.group = g;
    group_obs.cores_per_node =
        deployment.node_params(g, params_.node).cores;
    group_obs.capacity_share = capacity_share_[g];
    for (const std::size_t i : group_members_[g]) {
      if (nodes_[i].state != NodeState::kActive) continue;
      ++group_obs.active;
      group_obs.queued += nodes_[i].invoker->queue_length();
      group_obs.executing += nodes_[i].invoker->executing();
    }
    const std::size_t desired =
        std::clamp(autoscaler_->desired_nodes(group_obs, cluster_obs),
                   deployment.group_min_nodes(g),
                   deployment.group_max_nodes(g));
    if (desired == group_obs.active) continue;
    if (now - last_scale_[g] < cooldown_s_) continue;  // rate-limited
    if (desired > group_obs.active) {
      for (std::size_t n = group_obs.active; n < desired; ++n) {
        add_node(g);  // scale-up joins are cold, like join events
        ++scale_ups_;
      }
    } else {
      // Scale down by draining the newest active members first — they hold
      // the least container warmth, so the fleet keeps its oldest caches.
      std::size_t to_drain = group_obs.active - desired;
      const auto& members = group_members_[g];
      for (auto it = members.rbegin();
           it != members.rend() && to_drain > 0; ++it) {
        NodeSlot& slot = nodes_[*it];
        if (slot.state != NodeState::kActive) continue;
        slot.state = NodeState::kDraining;
        ++scale_downs_;
        --to_drain;
        note_drain_progress(*it);  // an idle node retires immediately
      }
    }
    last_scale_[g] = now;
    changed = true;
  }
  if (changed) rebuild_view();

  // Keep observing until every scheduled call has come back, then let the
  // engine's event queue drain (run() ends when it is empty).
  if (collector_.size() < expected_calls_) {
    engine_->schedule_in(tick_s_, [this] { autoscaler_tick(); });
  } else {
    tick_scheduled_ = false;
  }
}

void Cluster::note_drain_progress(std::size_t node) {
  NodeSlot& slot = nodes_[node];
  if (slot.state == NodeState::kDraining && slot.retired_at < 0.0 &&
      slot.invoker->in_flight() == 0 && slot.in_transit == 0) {
    slot.retired_at = engine_->now();
  }
}

double Cluster::node_seconds(std::size_t group) const {
  WHISK_CHECK(group < group_members_.size(),
              "cluster group index out of range");
  const sim::SimTime now = engine_->now();
  double total = 0.0;
  for (const std::size_t i : group_members_[group]) {
    const NodeSlot& slot = nodes_[i];
    const sim::SimTime end = slot.retired_at >= 0.0 ? slot.retired_at : now;
    // accrued_s holds the uptime of earlier incarnations (closed at each
    // crash); the live interval starts at the latest restart.
    total += slot.accrued_s + std::max(0.0, end - slot.joined_at);
  }
  return total;
}

double Cluster::node_hours() const {
  double seconds = 0.0;
  for (std::size_t g = 0; g < group_members_.size(); ++g) {
    seconds += node_seconds(g);
  }
  return seconds / 3600.0;
}

double Cluster::cost_usd() const {
  double cost = 0.0;
  for (std::size_t g = 0; g < group_members_.size(); ++g) {
    cost += node_seconds(g) / 3600.0 *
            params_.deployment.group_cost_per_hour(g);
  }
  return cost;
}

node::Invoker& Cluster::invoker(std::size_t i) {
  WHISK_CHECK(i < nodes_.size(), "invoker index out of range");
  return *nodes_[i].invoker;
}

const node::Invoker& Cluster::invoker(std::size_t i) const {
  WHISK_CHECK(i < nodes_.size(), "invoker index out of range");
  return *nodes_[i].invoker;
}

NodeState Cluster::node_state(std::size_t i) const {
  WHISK_CHECK(i < nodes_.size(), "node index out of range");
  const NodeSlot& slot = nodes_[i];
  // in_flight() covers everything received and not yet delivered (queued,
  // executing, post-processing); in_transit covers calls routed before the
  // drain but still on the wire.
  if (slot.state == NodeState::kDraining && slot.invoker->in_flight() == 0 &&
      slot.in_transit == 0) {
    return NodeState::kDrained;
  }
  return slot.state;
}

std::size_t Cluster::node_group(std::size_t i) const {
  WHISK_CHECK(i < nodes_.size(), "node index out of range");
  return nodes_[i].group;
}

node::InvokerStats Cluster::total_stats() const {
  node::InvokerStats total;
  for (const NodeSlot& slot : nodes_) total.merge(slot.invoker->stats());
  return total;
}

std::vector<GroupStats> Cluster::group_stats() const {
  std::vector<GroupStats> out;
  out.reserve(params_.deployment.groups.size());
  for (std::size_t g = 0; g < params_.deployment.groups.size(); ++g) {
    GroupStats group;
    group.name = params_.deployment.groups[g].name;
    for (const std::size_t i : group_members_[g]) {
      const NodeSlot& slot = nodes_[i];
      ++group.nodes;
      if (slot.state == NodeState::kActive) ++group.active;
      group.stats.merge(slot.invoker->stats());
    }
    out.push_back(std::move(group));
  }
  return out;
}

}  // namespace whisk::cluster
