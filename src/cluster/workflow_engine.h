#pragma once

#include <vector>

#include "metrics/record.h"
#include "sim/time.h"
#include "workload/function.h"
#include "workload/scenario.h"
#include "workload/workflow.h"

namespace whisk::cluster {

class Cluster;

// The runtime half of the workflow subsystem: turns each scenario call into
// the root stage of one workflow instance and drives the DAG through the
// cluster's existing completion path. A resolved stage (ok, shed or
// dropped — the terminal-record funnel guarantees exactly one resolution
// per call id) feeds its successors: a fan-in releases as a fresh arrival
// once join_k predecessors succeeded, and cascade-drops once enough
// predecessors failed that join_k is unreachable, so every spawned stage
// resolves exactly once and the engine always drains.
//
// Determinism: stage ids are a pure function of (root id, stage index) and
// all releases ride the cell's single event engine, so workflow campaigns
// stay byte-identical for any --threads.
//
// Only constructed when the cluster's WorkflowSpec is enabled; workflow-free
// runs never touch this code.
class WorkflowEngine {
 public:
  WorkflowEngine(const workload::WorkflowSpec& spec,
                 const workload::FunctionCatalog& catalog);

  [[nodiscard]] const workload::WorkflowDag& dag() const { return dag_; }

  // Adopt every scenario call as the root stage of a new instance. Returns
  // the number of *additional* calls the cluster should expect (spawned
  // stages; roots are already counted). Requires globally sequential call
  // ids starting at 0 — i.e. a single run_scenario per cluster.
  std::size_t register_roots(const workload::Scenario& scenario);

  // Expected remaining downstream work (reference medians along the longest
  // path, stage inclusive) for the root stage of `call` — the cp_hint
  // critical-path-aware policies sort by.
  [[nodiscard]] double root_hint(const workload::CallRequest& call) const;

  // Stamp workflow/stage identity onto a terminal record.
  void annotate(metrics::CallRecord& record) const;

  // Advance the DAG for a freshly collected terminal record: count the
  // disposition, extend the realized critical path, release or cascade-drop
  // successors, and emit the WorkflowRecord once every stage has resolved.
  void on_resolved(const metrics::CallRecord& record, Cluster& cluster);

 private:
  struct StageState {
    int ok_preds = 0;
    int failed_preds = 0;
    bool released = false;  // spawned as an arrival, or cascade-dropped
    bool resolved = false;
    // Realized critical path up to (not including) this stage, frozen at
    // release: max cp over the ok predecessors that released it.
    double cp_at_release = 0.0;
  };

  struct Instance {
    workload::FunctionId root_function = workload::kInvalidFunction;
    sim::SimTime start = 0.0;   // root release r(i)
    sim::SimTime finish = 0.0;  // max stage completion so far
    double critical_path_s = 0.0;
    int resolved = 0;
    int ok = 0;
    int shed = 0;
    int dropped = 0;
    bool emitted = false;
    std::vector<StageState> stages;
  };

  // (instance, stage) for a call id; ids are dense by construction.
  [[nodiscard]] std::size_t instance_of(workload::CallId id) const;
  [[nodiscard]] int stage_of(workload::CallId id) const;
  [[nodiscard]] workload::CallId stage_call_id(std::size_t instance,
                                               int stage) const;
  [[nodiscard]] workload::FunctionId stage_function(
      workload::FunctionId root, int stage) const;

  void release_stage(std::size_t instance, int stage, Cluster& cluster);
  void cascade_drop(std::size_t instance, int stage, Cluster& cluster);
  void maybe_emit(std::size_t instance, Cluster& cluster);

  workload::WorkflowDag dag_;
  const workload::FunctionCatalog* catalog_;
  // Per root function: expected remaining work from each stage (reference
  // medians along the longest downstream path, stage inclusive).
  std::vector<std::vector<double>> hints_;
  std::vector<Instance> instances_;
  std::size_t roots_ = 0;  // spawned stage ids start here
};

}  // namespace whisk::cluster
