#include "cluster/cluster_spec.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "util/check.h"
#include "util/parse.h"
#include "util/registry.h"
#include "util/table.h"

namespace whisk::cluster {
namespace {

using util::split_any;
using util::trim_ws;

bool valid_group_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_';
    if (!ok) return false;
  }
  return true;
}

constexpr const char* kGroupParamNames =
    "cores, cost-per-hour, max-nodes, memory-mb, min-nodes";

constexpr const char* kSloMetricNames = "mean, p50, p75, p95, p99, max";

bool valid_slo_metric(const std::string& metric) {
  return metric == "mean" || metric == "p50" || metric == "p75" ||
         metric == "p95" || metric == "p99" || metric == "max";
}

// Parameter values are embedded verbatim in to_string()/to_compact_string(),
// whose section and list separators include ';', '|', ',' and '+' — a value
// containing one (e.g. memory-mb=6.4e+4) would reparse as a split point and
// break the round-trip contract. Both group parameters are numeric, so the
// plain-decimal spelling is always available.
void check_value_has_no_separators(const std::string& context,
                                   const std::string& key,
                                   const std::string& value) {
  if (value.find_first_of(";|,+& \t") != std::string::npos) {
    WHISK_CHECK(false,
                (context + ": " + key + "=\"" + value +
                 "\" contains a spec separator character (one of ';|,+&' or "
                 "whitespace); write the plain-decimal form instead (e.g. "
                 "64000, not 6.4e+4)")
                    .c_str());
  }
}

// `name[:count][?key=value&...]`.
NodeGroupSpec parse_group(std::string_view item) {
  NodeGroupSpec group;
  std::string_view head = item;
  const std::size_t q = item.find('?');
  if (q != std::string_view::npos) {
    head = item.substr(0, q);
    // The memory_mb alias is folded (and duplicates re-checked) in
    // normalized().
    util::parse_param_list(item.substr(q + 1),
                           "cluster group \"" + std::string(item) + "\"",
                           &group.params);
  }
  const std::size_t colon = head.find(':');
  group.name = util::ascii_lower(trim_ws(head.substr(0, colon)));
  if (colon != std::string_view::npos) {
    const std::string_view count_text = trim_ws(head.substr(colon + 1));
    unsigned long long count = 0;
    const bool ok = util::parse_whole_number(count_text, &count) &&
                    count <= 1000000;
    WHISK_CHECK(ok, ("cluster group \"" + std::string(item) +
                     "\": count \"" + std::string(count_text) +
                     "\" is not a whole number (0..1000000)")
                        .c_str());
    group.count = static_cast<int>(count);
  }
  return group;
}

std::string group_to_string(const NodeGroupSpec& g) {
  return util::render_params(g.name + ":" + std::to_string(g.count),
                             g.params);
}

// `kind@time:group[/node]`.
LifecycleEvent parse_event(std::string_view item) {
  const auto fail = [&item](const std::string& why) {
    WHISK_CHECK(false, ("cluster lifecycle event \"" + std::string(item) +
                        "\" " + why +
                        "; expected kind@time:group[/node] with kind in "
                        "join, drain, fail")
                           .c_str());
  };
  LifecycleEvent event;
  const std::size_t at = item.find('@');
  if (at == std::string_view::npos) fail("has no '@'");
  const std::string kind = util::ascii_lower(trim_ws(item.substr(0, at)));
  if (kind == "join") {
    event.kind = LifecycleKind::kJoin;
  } else if (kind == "drain") {
    event.kind = LifecycleKind::kDrain;
  } else if (kind == "fail") {
    event.kind = LifecycleKind::kFail;
  } else {
    fail("has unknown kind \"" + kind + "\"");
  }
  std::string_view rest = item.substr(at + 1);
  const std::size_t colon = rest.find(':');
  if (colon == std::string_view::npos) fail("has no ':' after the time");
  double time = 0.0;
  // The 1e9 s (~31 sim-years) bound keeps %.10g rendering in plain form:
  // an exponent's '+' would reparse as the event-list separator.
  if (!util::parse_finite_double(trim_ws(rest.substr(0, colon)), &time) ||
      time < 0.0 || time > 1e9) {
    fail("has a bad time \"" + std::string(trim_ws(rest.substr(0, colon))) +
         "\" (need a finite number in [0, 1e9])");
  }
  event.time = time;
  std::string_view target = trim_ws(rest.substr(colon + 1));
  const std::size_t slash = target.find('/');
  if (slash != std::string_view::npos) {
    if (event.kind == LifecycleKind::kJoin) {
      fail("names a node index, but join events add a fresh node — give "
           "just the group");
    }
    unsigned long long node = 0;
    if (!util::parse_whole_number(trim_ws(target.substr(slash + 1)), &node) ||
        node > static_cast<unsigned long long>(
                   std::numeric_limits<int>::max())) {
      fail("has a bad node index \"" +
           std::string(trim_ws(target.substr(slash + 1))) + "\"");
    }
    event.node = static_cast<int>(node);
    target = trim_ws(target.substr(0, slash));
  } else if (event.kind != LifecycleKind::kJoin) {
    fail("names no node index; drain/fail target one node as group/node");
  }
  event.group = util::ascii_lower(target);
  if (event.group.empty()) fail("has an empty group name");
  return event;
}

// Shortest %g rendering that parses back to exactly `value`, so
// parse(to_string()) round-trips bit-for-bit without printing 17 digits
// for "0.1". Within the validated [0, 1e9] range %g never switches to e+
// exponent form (whose '+' would reparse as a list separator); tiny
// fractions may render as e-05, which contains no separator. Shared by
// event times and SLO thresholds.
std::string format_number(double value) {
  char buffer[40];
  for (int precision = 10; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

// Shared by SloSpec::parse and ClusterSpec::normalized (hand-built specs
// skip parse, so the checks must not live only there).
void check_slo(const SloSpec& slo) {
  WHISK_CHECK(valid_slo_metric(slo.metric),
              ("cluster slo metric \"" + slo.metric +
               "\" is unknown; metrics: " + kSloMetricNames)
                  .c_str());
  WHISK_CHECK(slo.threshold_s > 0.0 && slo.threshold_s <= 1e9,
              ("cluster slo threshold " + std::to_string(slo.threshold_s) +
               " must be in (0, 1e9] seconds")
                  .c_str());
}

std::string event_to_string(const LifecycleEvent& e) {
  std::string out = std::string(to_string(e.kind)) + "@" +
                    format_number(e.time) + ":" + e.group;
  if (e.kind != LifecycleKind::kJoin) {
    out += "/" + std::to_string(e.node);
  }
  return out;
}

std::string render(const ClusterSpec& spec, char section_sep,
                   char list_sep) {
  std::string out;
  for (std::size_t i = 0; i < spec.groups.size(); ++i) {
    if (i > 0) out += list_sep;
    out += group_to_string(spec.groups[i]);
  }
  const container::KeepAliveSpec default_keep_alive;
  if (spec.keep_alive_set || spec.keep_alive != default_keep_alive) {
    out += section_sep;
    if (section_sep == ';') out += ' ';
    out += "keep-alive=" + spec.keep_alive.to_string();
  }
  if (spec.autoscaler_set || spec.autoscaler.enabled()) {
    out += section_sep;
    if (section_sep == ';') out += ' ';
    out += "autoscaler=" + spec.autoscaler.to_string();
  }
  if (spec.faults_set || !spec.faults.empty()) {
    out += section_sep;
    if (section_sep == ';') out += ' ';
    out += "faults=" + fault_list_to_string(spec.faults, list_sep);
  }
  if (spec.resilience_set || spec.resilience.enabled()) {
    out += section_sep;
    if (section_sep == ';') out += ' ';
    out += "resilience=" + spec.resilience.to_string();
  }
  if (spec.slo_set) {
    out += section_sep;
    if (section_sep == ';') out += ' ';
    out += "slo=" + spec.slo.to_string();
  }
  if (!spec.events.empty()) {
    out += section_sep;
    if (section_sep == ';') out += ' ';
    out += "events=";
    for (std::size_t i = 0; i < spec.events.size(); ++i) {
      if (i > 0) out += list_sep;
      out += event_to_string(spec.events[i]);
    }
  }
  return out;
}

}  // namespace

SloSpec SloSpec::parse(std::string_view text) {
  const auto fail = [&text](const std::string& why) {
    WHISK_CHECK(false, ("cluster slo \"" + std::string(text) + "\" " + why +
                        "; expected metric<threshold-s like \"p99<2.5\" "
                        "with metric in " + kSloMetricNames)
                           .c_str());
  };
  const std::size_t lt = text.find('<');
  if (lt == std::string_view::npos) fail("has no '<'");
  SloSpec slo;
  slo.metric = util::ascii_lower(trim_ws(text.substr(0, lt)));
  if (!valid_slo_metric(slo.metric)) {
    fail("has unknown metric \"" + slo.metric + "\"");
  }
  const std::string_view threshold = trim_ws(text.substr(lt + 1));
  if (!util::parse_finite_double(threshold, &slo.threshold_s)) {
    fail("has a bad threshold \"" + std::string(threshold) + "\"");
  }
  check_slo(slo);
  return slo;
}

std::string SloSpec::to_string() const {
  return metric + "<" + format_number(threshold_s);
}

ClusterSpec ClusterSpec::parse(std::string_view text) {
  WHISK_CHECK(!trim_ws(text).empty(),
              "empty cluster spec; expected group[,group...][; "
              "keep-alive=...][; events=...] like \"big:4?cores=16,small:8; "
              "keep-alive=ttl?idle-s=600\"");
  ClusterSpec spec;
  bool groups_seen = false;
  bool keep_alive_seen = false;
  bool autoscaler_seen = false;
  bool faults_seen = false;
  bool resilience_seen = false;
  bool slo_seen = false;
  bool events_seen = false;
  for (std::string_view raw_section : split_any(text, ";|")) {
    const std::string_view section = trim_ws(raw_section);
    if (section.empty()) continue;  // tolerate trailing separators
    const std::string lowered = util::ascii_lower(section);
    if (lowered.rfind("autoscaler=", 0) == 0) {
      WHISK_CHECK(!autoscaler_seen,
                  ("cluster spec \"" + std::string(text) +
                   "\" sets autoscaler twice")
                      .c_str());
      autoscaler_seen = true;
      spec.autoscaler_set = true;
      spec.autoscaler = AutoscalerSpec::parse(
          trim_ws(section.substr(section.find('=') + 1)));
    } else if (lowered.rfind("faults=", 0) == 0) {
      WHISK_CHECK(!faults_seen, ("cluster spec \"" + std::string(text) +
                                 "\" sets faults twice")
                                    .c_str());
      faults_seen = true;
      spec.faults_set = true;
      spec.faults =
          parse_fault_list(trim_ws(section.substr(section.find('=') + 1)));
    } else if (lowered.rfind("resilience=", 0) == 0) {
      WHISK_CHECK(!resilience_seen,
                  ("cluster spec \"" + std::string(text) +
                   "\" sets resilience twice")
                      .c_str());
      resilience_seen = true;
      spec.resilience_set = true;
      spec.resilience = ResilienceSpec::parse(
          trim_ws(section.substr(section.find('=') + 1)));
    } else if (lowered.rfind("slo=", 0) == 0) {
      WHISK_CHECK(!slo_seen, ("cluster spec \"" + std::string(text) +
                              "\" sets slo twice")
                                 .c_str());
      slo_seen = true;
      spec.slo_set = true;
      spec.slo =
          SloSpec::parse(trim_ws(section.substr(section.find('=') + 1)));
    } else if (lowered.rfind("keep-alive=", 0) == 0 ||
               lowered.rfind("keep_alive=", 0) == 0) {
      WHISK_CHECK(!keep_alive_seen,
                  ("cluster spec \"" + std::string(text) +
                   "\" sets keep-alive twice")
                      .c_str());
      keep_alive_seen = true;
      spec.keep_alive_set = true;
      spec.keep_alive = container::KeepAliveSpec::parse(
          trim_ws(section.substr(section.find('=') + 1)));
    } else if (lowered.rfind("events=", 0) == 0) {
      WHISK_CHECK(!events_seen, ("cluster spec \"" + std::string(text) +
                                 "\" sets events twice")
                                    .c_str());
      events_seen = true;
      for (std::string_view item :
           split_any(trim_ws(section.substr(section.find('=') + 1)), ",+")) {
        const std::string_view event = trim_ws(item);
        if (event.empty()) continue;
        spec.events.push_back(parse_event(event));
      }
    } else {
      WHISK_CHECK(!groups_seen,
                  ("cluster spec \"" + std::string(text) +
                   "\" has two group-list sections (did you mean one list "
                   "separated by ',' or '+'?)")
                      .c_str());
      groups_seen = true;
      spec.groups.clear();
      for (std::string_view item : split_any(section, ",+")) {
        const std::string_view group = trim_ws(item);
        if (group.empty()) continue;
        spec.groups.push_back(parse_group(group));
      }
    }
  }
  WHISK_CHECK(groups_seen && !spec.groups.empty(),
              ("cluster spec \"" + std::string(text) +
               "\" lists no node groups")
                  .c_str());
  return spec.normalized();
}

ClusterSpec ClusterSpec::homogeneous(int nodes) {
  WHISK_CHECK(nodes > 0, "cluster needs at least one node");
  ClusterSpec spec;
  spec.groups = {NodeGroupSpec{"node", nodes, {}}};
  return spec;
}

std::string ClusterSpec::to_string() const { return render(*this, ';', ','); }

std::string ClusterSpec::to_compact_string() const {
  return render(*this, '|', '+');
}

ClusterSpec ClusterSpec::normalized() const {
  // Already validated-and-canonicalized specs pass through untouched —
  // campaigns normalize the `clusters=` axis once and every cell, every
  // ExperimentSpec and every Cluster built from it skips the re-walk.
  if (canonical) return *this;
  ClusterSpec out = *this;
  WHISK_CHECK(!out.groups.empty(), "cluster spec has no node groups");

  std::vector<std::string> group_names;
  std::size_t initial = 0;
  for (auto& group : out.groups) {
    group.name = util::ascii_lower(group.name);
    WHISK_CHECK(valid_group_name(group.name),
                ("cluster group name \"" + group.name +
                 "\" is not [a-z0-9_-]+ (separators would collide with the "
                 "spec grammar)")
                    .c_str());
    WHISK_CHECK(std::find(group_names.begin(), group_names.end(),
                          group.name) == group_names.end(),
                ("cluster spec lists group \"" + group.name + "\" twice")
                    .c_str());
    group_names.push_back(group.name);
    WHISK_CHECK(group.count >= 0, ("cluster group \"" + group.name +
                                   "\" has a negative node count")
                                      .c_str());
    initial += static_cast<std::size_t>(group.count);

    std::map<std::string, std::string> params;
    for (const auto& [raw_key, value] : group.params) {
      std::string key = util::ascii_lower(raw_key);
      if (key == "memory_mb") key = "memory-mb";
      if (key == "cost_per_hour") key = "cost-per-hour";
      if (key == "min_nodes") key = "min-nodes";
      if (key == "max_nodes") key = "max-nodes";
      check_value_has_no_separators("cluster group \"" + group.name + "\"",
                                    key, value);
      if (key == "cores") {
        unsigned long long cores = 0;
        WHISK_CHECK(util::parse_whole_number(value, &cores) && cores > 0 &&
                        cores <= 100000,
                    ("cluster group \"" + group.name + "\": cores=\"" +
                     value + "\" is not a positive integer")
                        .c_str());
      } else if (key == "memory-mb") {
        double memory = 0.0;
        WHISK_CHECK(util::parse_finite_double(value, &memory) &&
                        memory > 0.0,
                    ("cluster group \"" + group.name + "\": memory-mb=\"" +
                     value + "\" is not a positive number")
                        .c_str());
      } else if (key == "cost-per-hour") {
        double cost = 0.0;
        WHISK_CHECK(util::parse_finite_double(value, &cost) && cost >= 0.0,
                    ("cluster group \"" + group.name +
                     "\": cost-per-hour=\"" + value +
                     "\" is not a number >= 0")
                        .c_str());
      } else if (key == "min-nodes" || key == "max-nodes") {
        unsigned long long bound = 0;
        WHISK_CHECK(util::parse_whole_number(value, &bound) &&
                        bound <= 1000000,
                    ("cluster group \"" + group.name + "\": " + key +
                     "=\"" + value +
                     "\" is not a whole number (0..1000000)")
                        .c_str());
      } else {
        WHISK_CHECK(false, ("cluster group \"" + group.name +
                            "\" does not take parameter \"" + raw_key +
                            "\"; valid parameters: " + kGroupParamNames)
                               .c_str());
      }
      WHISK_CHECK(params.count(key) == 0,
                  ("cluster group \"" + group.name + "\" sets parameter \"" +
                   key + "\" twice")
                      .c_str());
      params[key] = value;
    }
    group.params = std::move(params);
  }
  // Scaling bounds must bracket each other and the initial deployment:
  // a fleet born outside its own band would scale on the first tick for a
  // reason the user never asked for.
  for (std::size_t g = 0; g < out.groups.size(); ++g) {
    const std::size_t lo = out.group_min_nodes(g);
    const std::size_t hi = out.group_max_nodes(g);
    const auto& group = out.groups[g];
    WHISK_CHECK(lo <= hi, ("cluster group \"" + group.name +
                           "\": min-nodes=" + std::to_string(lo) +
                           " exceeds max-nodes=" + std::to_string(hi))
                              .c_str());
    const auto count = static_cast<std::size_t>(group.count);
    const bool bounded = group.params.count("min-nodes") != 0 ||
                         group.params.count("max-nodes") != 0;
    WHISK_CHECK(!bounded || (count >= lo && count <= hi),
                ("cluster group \"" + group.name + "\": count " +
                 std::to_string(group.count) + " is outside [min-nodes=" +
                 std::to_string(lo) + ", max-nodes=" + std::to_string(hi) +
                 "]")
                    .c_str());
  }
  WHISK_CHECK(initial > 0,
              "cluster spec deploys zero nodes at t=0; give at least one "
              "group a positive count");

  out.keep_alive = out.keep_alive.normalized();
  // Canonicalize the flag: a non-default policy behaves exactly like an
  // explicitly named one (to_string renders it either way), so equality
  // and round-trips see one representation.
  out.keep_alive_set =
      keep_alive_set || out.keep_alive != container::KeepAliveSpec{};
  for (const auto& [key, value] : out.keep_alive.params) {
    check_value_has_no_separators(
        "cluster keep-alive \"" + out.keep_alive.name + "\"", key, value);
  }

  out.autoscaler = out.autoscaler.normalized();
  out.autoscaler_set = autoscaler_set || out.autoscaler.enabled();
  for (const auto& [key, value] : out.autoscaler.params) {
    check_value_has_no_separators(
        "cluster autoscaler \"" + out.autoscaler.name + "\"", key, value);
  }

  bool drops_completions = false;
  for (auto& fault : out.faults) {
    fault = fault.normalized();
    WHISK_CHECK(fault.enabled(),
                "cluster faults list contains \"none\" — parse_fault_list "
                "drops it; hand-built specs must too");
    for (const auto& [key, value] : fault.params) {
      check_value_has_no_separators("cluster fault \"" + fault.name + "\"",
                                    key, value);
    }
    // A scoped fault must name a real group, checked here so a typo dies
    // at parse time, not when the process first fires mid-sweep.
    const std::string scope = util::ascii_lower(fault.text("group"));
    if (!scope.empty()) {
      WHISK_CHECK(std::find(group_names.begin(), group_names.end(), scope) !=
                      group_names.end(),
                  ("cluster fault \"" + fault.name +
                   "\" targets unknown group \"" + scope +
                   "\"; groups: " + util::join(group_names))
                      .c_str());
    }
    drops_completions =
        drops_completions || fault_drops_completions(fault.name);
  }
  out.faults_set = faults_set || !out.faults.empty();

  out.resilience = out.resilience.normalized();
  out.resilience_set = resilience_set || out.resilience.enabled();
  for (const auto& [key, value] : out.resilience.params) {
    check_value_has_no_separators("cluster resilience", key, value);
  }
  // A lost completion leaves the call permanently in flight unless a
  // timeout can re-drive it — without one the run would deadlock, so
  // reject the combination up front.
  if (drops_completions) {
    WHISK_CHECK(out.resilience.number("timeout-s", 0.0) > 0.0,
                "cluster faults include a completion-dropping process "
                "(lost-completion) but resilience sets no timeout-s; the "
                "run would never finish — add resilience=timeout-s=...");
  }

  if (out.slo_set) check_slo(out.slo);

  // Validate the event schedule exactly as the cluster will execute it:
  // walk the events in firing order with a running per-group node count
  // (joins increment it; node indices never shrink, since drained/failed
  // nodes keep their slot), so a drain that precedes its enabling join is
  // rejected at parse time instead of aborting a sweep mid-run.
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const LifecycleEvent& a, const LifecycleEvent& b) {
                     return a.time < b.time;
                   });
  std::map<std::string, int> node_count;
  for (const auto& group : out.groups) node_count[group.name] = group.count;
  // Which nodes earlier events already drained or failed — the same state
  // rules Cluster::apply_lifecycle enforces at runtime (drain needs an
  // active node; fail needs a not-yet-failed one; a draining node may
  // still fail).
  std::map<std::pair<std::string, int>, LifecycleKind> consumed;
  for (auto& event : out.events) {
    WHISK_CHECK(event.time >= 0.0 && event.time <= 1e9,
                ("cluster lifecycle event \"" + event_to_string(event) +
                 "\" has a time outside [0, 1e9] seconds")
                    .c_str());
    event.group = util::ascii_lower(event.group);
    const auto it = node_count.find(event.group);
    if (it == node_count.end()) {
      WHISK_CHECK(false, ("cluster lifecycle event \"" +
                          event_to_string(event) +
                          "\" targets unknown group \"" + event.group +
                          "\"; groups: " + util::join(group_names))
                             .c_str());
    }
    if (event.kind == LifecycleKind::kJoin) {
      ++it->second;
      continue;
    }
    WHISK_CHECK(
        event.node >= 0 && event.node < it->second,
        ("cluster lifecycle event \"" + event_to_string(event) +
         "\" targets node " + std::to_string(event.node) + " of group \"" +
         event.group + "\", which has only " + std::to_string(it->second) +
         " node(s) at t=" + util::fmt_g(event.time) +
         " (a later join does not count)")
            .c_str());
    const auto key = std::make_pair(event.group, event.node);
    const auto prior = consumed.find(key);
    if (prior != consumed.end()) {
      const bool allowed = event.kind == LifecycleKind::kFail &&
                           prior->second == LifecycleKind::kDrain;
      WHISK_CHECK(allowed,
                  ("cluster lifecycle event \"" + event_to_string(event) +
                   "\" targets a node an earlier event already " +
                   (prior->second == LifecycleKind::kFail ? "failed"
                                                          : "drained") +
                   " (only fail-after-drain is meaningful)")
                      .c_str());
    }
    consumed[key] = event.kind;
  }
  out.canonical = true;
  return out;
}

bool ClusterSpec::has_disruptive_events() const {
  for (const auto& event : events) {
    if (event.kind != LifecycleKind::kJoin) return true;
  }
  return false;
}

bool ClusterSpec::has_disruptive_faults() const {
  for (const auto& fault : faults) {
    if (fault.enabled() && fault_is_disruptive(fault.name)) return true;
  }
  return false;
}

bool ClusterSpec::needs_in_flight_tracking() const {
  return has_disruptive_events() || has_disruptive_faults() ||
         autoscaler.enabled();
}

double ClusterSpec::group_cost_per_hour(std::size_t group) const {
  WHISK_CHECK(group < groups.size(), "cluster group index out of range");
  const auto it = groups[group].params.find("cost-per-hour");
  if (it == groups[group].params.end()) return 0.0;
  double cost = 0.0;
  WHISK_CHECK(util::parse_finite_double(it->second, &cost),
              "cost-per-hour validated in normalized()");
  return cost;
}

std::size_t ClusterSpec::group_min_nodes(std::size_t group) const {
  WHISK_CHECK(group < groups.size(), "cluster group index out of range");
  const auto it = groups[group].params.find("min-nodes");
  if (it == groups[group].params.end()) {
    // Groups deployed empty (join-only) default to an empty floor; every
    // other group keeps at least one node unless min-nodes=0 is explicit.
    return groups[group].count > 0 ? 1 : 0;
  }
  unsigned long long bound = 0;
  WHISK_CHECK(util::parse_whole_number(it->second, &bound),
              "min-nodes validated in normalized()");
  return static_cast<std::size_t>(bound);
}

std::size_t ClusterSpec::group_max_nodes(std::size_t group) const {
  WHISK_CHECK(group < groups.size(), "cluster group index out of range");
  const auto it = groups[group].params.find("max-nodes");
  if (it == groups[group].params.end()) return 1000000;
  unsigned long long bound = 0;
  WHISK_CHECK(util::parse_whole_number(it->second, &bound),
              "max-nodes validated in normalized()");
  return static_cast<std::size_t>(bound);
}

std::size_t ClusterSpec::initial_nodes() const {
  std::size_t total = 0;
  for (const auto& group : groups) {
    total += static_cast<std::size_t>(std::max(group.count, 0));
  }
  return total;
}

int ClusterSpec::initial_cores(int base_cores) const {
  long long total = 0;
  for (const auto& group : groups) {
    long long cores = base_cores;
    const auto it = group.params.find("cores");
    if (it != group.params.end()) {
      unsigned long long value = 0;
      WHISK_CHECK(util::parse_whole_number(it->second, &value),
                  "cores validated in normalized()");
      cores = static_cast<long long>(value);
    }
    total += cores * std::max(group.count, 0);
  }
  return static_cast<int>(
      std::min<long long>(total, std::numeric_limits<int>::max()));
}

std::size_t ClusterSpec::group_index(std::string_view name) const {
  const std::string key = util::ascii_lower(name);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].name == key) return g;
  }
  std::vector<std::string> names;
  names.reserve(groups.size());
  for (const auto& group : groups) names.push_back(group.name);
  WHISK_CHECK(false, ("unknown cluster group \"" + key +
                      "\"; groups: " + util::join(names))
                         .c_str());
  return 0;
}

node::NodeParams ClusterSpec::node_params(
    std::size_t group, const node::NodeParams& base) const {
  WHISK_CHECK(group < groups.size(), "cluster group index out of range");
  node::NodeParams params = base;
  // The deployment's keep-alive applies fleet-wide, but a policy set
  // directly on the base NodeParams is honored like every other base
  // field — and a contradictory pair is a loud error, not a silent win.
  const container::KeepAliveSpec default_keep_alive;
  if (keep_alive_set || keep_alive != default_keep_alive) {
    WHISK_CHECK(base.keep_alive == default_keep_alive ||
                    base.keep_alive == keep_alive,
                ("the deployment sets keep-alive \"" +
                 keep_alive.to_string() +
                 "\" but the base NodeParams already carries \"" +
                 base.keep_alive.to_string() +
                 "\"; set it in one place")
                    .c_str());
    params.keep_alive = keep_alive;
  }
  const NodeGroupSpec& g = groups[group];
  if (const auto it = g.params.find("cores"); it != g.params.end()) {
    unsigned long long cores = 0;
    WHISK_CHECK(util::parse_whole_number(it->second, &cores),
                "cores validated in normalized()");
    params.cores = static_cast<int>(cores);
  }
  if (const auto it = g.params.find("memory-mb"); it != g.params.end()) {
    double memory = 0.0;
    WHISK_CHECK(util::parse_finite_double(it->second, &memory),
                "memory-mb validated in normalized()");
    params.memory_limit_mb = memory;
  }
  return params;
}

}  // namespace whisk::cluster
