#include "cluster/autoscaler.h"

#include <cmath>
#include <mutex>

#include "core/history.h"
#include "util/check.h"
#include "util/parse.h"

namespace whisk::cluster {
namespace {

// Declared parameters per canonical controller name, the driver keys
// included. Cached so normalized() does not construct a probe instance on
// every call (registrations are append-only, so a cached entry never goes
// stale). Mutex-guarded: specs are normalized from campaign worker threads
// too, and map node addresses are stable, so the returned reference
// outlives the lock safely.
const std::vector<AutoscalerParam>& declared_params(const std::string& canon) {
  static auto* mutex = new std::mutex();
  static auto* cache =
      new std::map<std::string, std::vector<AutoscalerParam>>();
  std::lock_guard<std::mutex> lock(*mutex);
  auto it = cache->find(canon);
  if (it == cache->end()) {
    const auto probe =
        AutoscalerRegistry::instance().create(canon, AutoscalerSpec{canon, {}});
    std::vector<AutoscalerParam> all = common_autoscaler_params();
    for (const auto& p : probe->params()) all.push_back(p);
    it = cache->emplace(canon, std::move(all)).first;
  }
  return it->second;
}

// Lowercase, duplicate-check and declared-key-validate `params` for the
// canonical controller `canon` — the shared half of normalized() and
// make_autoscaler() (parameter *values* are validated by constructing the
// controller; the driver keys below).
std::map<std::string, std::string> fold_params(
    const std::string& canon,
    const std::map<std::string, std::string>& params) {
  const auto& valid = declared_params(canon);
  std::map<std::string, std::string> out;
  for (const auto& [raw_key, value] : params) {
    const std::string key = util::ascii_lower(raw_key);
    WHISK_CHECK(out.count(key) == 0,
                ("autoscaler \"" + canon + "\" sets parameter \"" + key +
                 "\" twice")
                    .c_str());
    bool known = false;
    for (const auto& p : valid) {
      if (p.name == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::vector<std::string> names;
      names.reserve(valid.size());
      for (const auto& p : valid) names.push_back(p.name);
      WHISK_CHECK(false, ("autoscaler \"" + canon +
                          "\" does not take parameter \"" + raw_key +
                          "\"; valid parameters: " + util::join(names))
                             .c_str());
    }
    out[key] = value;
  }
  return out;
}

// The driver keys ride in every spec, so a bad cadence dies at parse time
// with the other diagnostics, not when the Cluster first reads it.
void check_driver_params(const AutoscalerSpec& spec) {
  const double tick = spec.number("tick-s", 5.0);
  WHISK_CHECK(tick > 0.0, ("autoscaler \"" + spec.name + "\": tick-s = " +
                           std::to_string(tick) + " must be > 0")
                              .c_str());
  const double cooldown = spec.number("cooldown-s", 60.0);
  WHISK_CHECK(cooldown >= 0.0,
              ("autoscaler \"" + spec.name + "\": cooldown-s = " +
               std::to_string(cooldown) + " must be >= 0")
                  .c_str());
}

}  // namespace

const std::vector<AutoscalerParam>& common_autoscaler_params() {
  static const std::vector<AutoscalerParam> kCommon = {
      {"tick-s", "5", "seconds between controller observations"},
      {"cooldown-s", "60",
       "per-group minimum seconds between scaling actions"},
  };
  return kCommon;
}

AutoscalerSpec AutoscalerSpec::parse(std::string_view text) {
  WHISK_CHECK(!text.empty(),
              "empty autoscaler spec; expected \"name[?key=value[&...]]\" "
              "like \"target-util?low=0.3&high=0.85\" (or \"none\")");
  AutoscalerSpec spec;
  const std::size_t q = text.find('?');
  spec.name = std::string(text.substr(0, q));
  WHISK_CHECK(!spec.name.empty(),
              ("autoscaler spec \"" + std::string(text) +
               "\" has an empty name before the '?'")
                  .c_str());
  if (q != std::string_view::npos) {
    util::parse_param_list(text.substr(q + 1),
                           "autoscaler spec \"" + std::string(text) + "\"",
                           &spec.params);
  }
  return spec.normalized();
}

std::string AutoscalerSpec::to_string() const {
  return util::render_params(name, params);
}

AutoscalerSpec AutoscalerSpec::normalized() const {
  AutoscalerSpec out;
  if (util::ascii_lower(name) == "none") {
    WHISK_CHECK(params.empty(),
                "autoscaler \"none\" takes no parameters; name a controller "
                "(target-util, queue-depth, predictive) to configure one");
    out.name = "none";
    return out;
  }
  auto& registry = AutoscalerRegistry::instance();
  out.name = registry.resolve(name);
  out.params = fold_params(out.name, params);
  // Constructing the controller validates the parameter *values* too, so a
  // bad value dies at parse time, not mid-sweep.
  (void)registry.create(out.name, out);
  check_driver_params(out);
  return out;
}

bool AutoscalerSpec::has(std::string_view key) const {
  return params.count(util::ascii_lower(key)) != 0;
}

double AutoscalerSpec::number(std::string_view key, double fallback) const {
  const auto it = params.find(util::ascii_lower(key));
  if (it == params.end()) return fallback;
  double value = 0.0;
  if (!util::parse_finite_double(it->second, &value)) {
    WHISK_CHECK(false, ("autoscaler \"" + name + "\" parameter " +
                        std::string(key) + "=\"" + it->second +
                        "\" is not a finite number")
                           .c_str());
  }
  return value;
}

std::size_t AutoscalerSpec::count(std::string_view key,
                                  std::size_t fallback) const {
  const auto it = params.find(util::ascii_lower(key));
  if (it == params.end()) return fallback;
  unsigned long long value = 0;
  if (!util::parse_whole_number(it->second, &value)) {
    WHISK_CHECK(false, ("autoscaler \"" + name + "\" parameter " +
                        std::string(key) + "=\"" + it->second +
                        "\" is not a whole number >= 0")
                           .c_str());
  }
  return static_cast<std::size_t>(value);
}

namespace {

// Keep each group's utilization (queued + executing per core) inside a
// band: above `high` grows the group one node, below `low` shrinks it one
// node, one step per tick. The classic CPU-utilization target rule.
class TargetUtilAutoscaler final : public Autoscaler {
 public:
  explicit TargetUtilAutoscaler(const AutoscalerSpec& spec)
      : low_(spec.number("low", 0.3)), high_(spec.number("high", 0.85)) {
    WHISK_CHECK(low_ >= 0.0, ("autoscaler \"target-util\": low = " +
                              std::to_string(low_) + " must be >= 0")
                                 .c_str());
    WHISK_CHECK(high_ > low_, ("autoscaler \"target-util\": high = " +
                               std::to_string(high_) +
                               " must exceed low = " + std::to_string(low_))
                                  .c_str());
  }

  std::string_view name() const override { return "target-util"; }
  std::string help() const override {
    return "keeps per-group utilization (load per core) inside [low, high]; "
           "one node step per tick";
  }
  std::vector<AutoscalerParam> params() const override {
    return {{"low", "0.3", "utilization below which the group shrinks"},
            {"high", "0.85", "utilization above which the group grows"}};
  }
  std::size_t desired_nodes(const GroupObservation& group,
                            const ClusterObservation&) override {
    if (group.active == 0) return 0;
    const double util = group.utilization();
    if (util > high_) return group.active + 1;
    if (util < low_) return group.active - 1;
    return group.active;
  }

 private:
  double low_;
  double high_;
};

// React to the daemon backlog: more than `high` queued calls per active
// node grows the group, fewer than `low` shrinks it. Blind to executing
// work on purpose — it models the "queue depth" alarms real deployments
// scale on.
class QueueDepthAutoscaler final : public Autoscaler {
 public:
  explicit QueueDepthAutoscaler(const AutoscalerSpec& spec)
      : low_(spec.number("low", 0.5)), high_(spec.number("high", 4.0)) {
    WHISK_CHECK(low_ >= 0.0, ("autoscaler \"queue-depth\": low = " +
                              std::to_string(low_) + " must be >= 0")
                                 .c_str());
    WHISK_CHECK(high_ > low_, ("autoscaler \"queue-depth\": high = " +
                               std::to_string(high_) +
                               " must exceed low = " + std::to_string(low_))
                                  .c_str());
  }

  std::string_view name() const override { return "queue-depth"; }
  std::string help() const override {
    return "scales on queued calls per active node: above high grows, "
           "below low shrinks";
  }
  std::vector<AutoscalerParam> params() const override {
    return {{"low", "0.5", "queued calls per node below which it shrinks"},
            {"high", "4", "queued calls per node above which it grows"}};
  }
  std::size_t desired_nodes(const GroupObservation& group,
                            const ClusterObservation&) override {
    if (group.active == 0) return 0;
    const double per_node = static_cast<double>(group.queued) /
                            static_cast<double>(group.active);
    if (per_node > high_) return group.active + 1;
    if (per_node < low_) return group.active - 1;
    return group.active;
  }

 private:
  double low_;
  double high_;
};

// Provision for the *estimated* demand instead of the instantaneous load:
// arrivals over the last window-s seconds times each function's E(p) (the
// paper's runtime estimate) give the work rate in core-seconds per second;
// dividing by `target` utilization and the group's capacity share yields
// the node count to aim at directly, so the fleet can jump several nodes
// in one tick instead of creeping one step at a time.
class PredictiveAutoscaler final : public Autoscaler {
 public:
  explicit PredictiveAutoscaler(const AutoscalerSpec& spec)
      : window_s_(spec.number("window-s", 30.0)),
        target_(spec.number("target", 0.7)) {
    WHISK_CHECK(window_s_ > 0.0, ("autoscaler \"predictive\": window-s = " +
                                  std::to_string(window_s_) +
                                  " must be > 0")
                                     .c_str());
    WHISK_CHECK(target_ > 0.0 && target_ <= 1.0,
                ("autoscaler \"predictive\": target = " +
                 std::to_string(target_) + " must be in (0, 1]")
                    .c_str());
  }

  std::string_view name() const override { return "predictive"; }
  std::string help() const override {
    return "sizes each group for the arrival-rate x E(p) demand estimate "
           "over the last window-s seconds at `target` utilization";
  }
  std::vector<AutoscalerParam> params() const override {
    return {{"window-s", "30", "arrival/completion horizon in seconds"},
            {"target", "0.7", "utilization the demand is provisioned at"}};
  }
  double history_window_s() const override { return window_s_; }

  std::size_t desired_nodes(const GroupObservation& group,
                            const ClusterObservation& cluster) override {
    WHISK_CHECK(cluster.history != nullptr,
                "predictive autoscaler ticked without its controller-side "
                "history");
    double arrivals = 0.0;
    double demand_cores = 0.0;  // core-seconds of work arriving per second
    for (std::size_t fn = 0; fn < cluster.num_functions; ++fn) {
      const auto id = static_cast<workload::FunctionId>(fn);
      const std::size_t a =
          cluster.history->arrivals_within(id, window_s_, cluster.now);
      if (a == 0) continue;
      arrivals += static_cast<double>(a);
      demand_cores += static_cast<double>(a) / window_s_ *
                      cluster.history->expected_runtime(id);
    }
    if (arrivals == 0.0) {
      // Nothing arrived in the whole window: shrink one step once this
      // group's backlog is gone (the driver's min-nodes floor applies).
      return group.load() == 0.0 && group.active > 0 ? group.active - 1
                                                     : group.active;
    }
    if (demand_cores == 0.0) {
      // Arrivals but no completed call yet, so every E(p) is still 0
      // (paper Sec. IV-B); hold until the estimates warm up.
      return group.active;
    }
    const double group_cores =
        demand_cores / target_ * group.capacity_share;
    const double nodes =
        group_cores / static_cast<double>(group.cores_per_node);
    // ceil with a tolerance so "exactly n nodes of demand" asks for n.
    return static_cast<std::size_t>(std::ceil(nodes - 1e-9));
  }

 private:
  double window_s_;
  double target_;
};

void register_builtin_autoscalers(AutoscalerRegistry& registry) {
  registry.register_factory("target-util", [](const AutoscalerSpec& spec) {
    return std::make_unique<TargetUtilAutoscaler>(spec);
  });
  registry.register_factory("queue-depth", [](const AutoscalerSpec& spec) {
    return std::make_unique<QueueDepthAutoscaler>(spec);
  });
  registry.register_factory("predictive", [](const AutoscalerSpec& spec) {
    return std::make_unique<PredictiveAutoscaler>(spec);
  });
  registry.register_alias("utilization", "target-util");
}

}  // namespace

AutoscalerRegistry& AutoscalerRegistry::instance() {
  static AutoscalerRegistry* registry = [] {
    auto* r = new AutoscalerRegistry();
    register_builtin_autoscalers(*r);
    return r;
  }();
  return *registry;
}

std::unique_ptr<Autoscaler> make_autoscaler(const AutoscalerSpec& spec) {
  // Same canonicalization and key validation as normalized(), but without
  // its throwaway validation instance: the returned construction validates
  // the parameter values itself. One controller object per Cluster.
  WHISK_CHECK(spec.enabled(),
              "make_autoscaler on \"none\": check enabled() first");
  auto& registry = AutoscalerRegistry::instance();
  AutoscalerSpec normalized;
  normalized.name = registry.resolve(spec.name);
  normalized.params = fold_params(normalized.name, spec.params);
  return registry.create(normalized.name, normalized);
}

}  // namespace whisk::cluster
