#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/record.h"
#include "sim/random.h"
#include "sim/time.h"
#include "util/registry.h"

namespace whisk::cluster {

// One stochastic fault process by registry name plus named parameters — the
// failure-model mirror of AutoscalerSpec:
//
//   auto spec = FaultSpec::parse("crash-restart?mtbf-s=120&mttr-s=15");
//   spec.to_string()  -> "crash-restart?mtbf-s=120&mttr-s=15"
//
// Grammar: name[?key=value[&key=value]...]. Names and keys are
// case-insensitive; parameters are stored sorted so to_string() is canonical
// and parse(to_string()) round-trips exactly. The reserved name "none" means
// no fault and takes no parameters. normalized() resolves every other name
// against the FaultRegistry and rejects unknown parameter keys with an error
// that lists the process's valid keys.
//
// A deployment carries a *list* of fault specs (its `faults=` section);
// parse_fault_list splits on ',' (and the grid-safe '+') and drops "none"
// entries, so `faults=none` and an absent section mean the same thing.
struct FaultSpec {
  std::string name = "none";
  std::map<std::string, std::string> params;

  [[nodiscard]] static FaultSpec parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  // Abort with a name-listing error if the process or any parameter key is
  // unknown; returns a copy with the name canonicalized, keys lowercased
  // and values validated by a probe construction. "none" must carry no
  // parameters.
  [[nodiscard]] FaultSpec normalized() const;

  [[nodiscard]] bool enabled() const { return name != "none"; }

  [[nodiscard]] bool has(std::string_view key) const;
  // Typed parameter access with a fallback for absent keys. Unparsable
  // values abort, naming the process, the key and the offending value.
  [[nodiscard]] double number(std::string_view key, double fallback) const;
  [[nodiscard]] std::size_t count(std::string_view key,
                                  std::size_t fallback) const;
  // Verbatim string parameter (e.g. group=big); empty when absent.
  [[nodiscard]] std::string text(std::string_view key) const;

  friend bool operator==(const FaultSpec& a, const FaultSpec& b) {
    return a.name == b.name && a.params == b.params;
  }
  friend bool operator!=(const FaultSpec& a, const FaultSpec& b) {
    return !(a == b);
  }
};

// Parse a ','/'+'-separated fault list ("none" or empty -> no faults).
[[nodiscard]] std::vector<FaultSpec> parse_fault_list(std::string_view text);
// Canonical rendering: specs joined by `sep` (',' in ClusterSpec sections,
// '+' inside campaign-axis items); an empty list renders as "none".
[[nodiscard]] std::string fault_list_to_string(
    const std::vector<FaultSpec>& faults, char sep);

// One declared parameter of a registered fault process; surfaced by the
// unknown-key diagnostics and by `whisk_sweep --list` / fault_catalog.
struct FaultParam {
  std::string name;
  std::string default_value;
  std::string help;
};

// The cluster-side surface a fault process acts through. Implemented by
// Cluster; processes never touch nodes directly, so every mutation funnels
// through the same lifecycle bookkeeping the scheduled events use.
//
// All scheduling goes through fault_schedule so the cluster can cancel
// pending fault timers the moment the workload completes — otherwise a
// far-future next-crash draw would keep the engine ticking long after the
// last response returned.
class FaultHost {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  virtual ~FaultHost() = default;

  [[nodiscard]] virtual sim::SimTime fault_now() const = 0;
  virtual void fault_schedule(double delay_s, std::function<void()> fn) = 0;

  // Group ordinal for a (case-insensitive) deployment group name; aborts
  // listing the groups when unknown. Processes pass npos for "any group".
  [[nodiscard]] virtual std::size_t fault_group_index(
      std::string_view name) const = 0;
  // Active (routable) nodes of `group`, fleet-wide when group == npos.
  [[nodiscard]] virtual std::size_t fault_active_count(
      std::size_t group) const = 0;
  // Global node index of the k-th active node under the same scope.
  [[nodiscard]] virtual std::size_t fault_active_at(std::size_t group,
                                                    std::size_t k) const = 0;
  // Global node index of group member `member` (creation order), npos when
  // the member does not exist (yet).
  [[nodiscard]] virtual std::size_t fault_member(std::size_t group,
                                                 std::size_t member) const = 0;
  [[nodiscard]] virtual bool fault_node_active(std::size_t node) const = 0;
  [[nodiscard]] virtual bool fault_node_failed(std::size_t node) const = 0;

  // Crash an active node: its in-flight calls are re-submitted through the
  // controller exactly as a scheduled fail@t event does. False (no-op) when
  // the node is not active.
  virtual bool fault_fail(std::size_t node) = 0;
  // Restart a failed node in place: a fresh cold invoker takes the slot and
  // starts receiving calls. False (no-op) when the node is not failed.
  virtual bool fault_restart(std::size_t node) = 0;
  // Straggler control: multiply every sampled duration of the node by
  // `factor` (1.0 restores nominal speed). No-op on failed nodes.
  virtual void fault_set_speed(std::size_t node, double factor) = 0;

  // True once every expected call completed — processes stop rescheduling.
  [[nodiscard]] virtual bool fault_workload_done() const = 0;
  // Count one injected fault (the faults_injected cell column).
  virtual void fault_note_injected() = 0;
};

// A seeded stochastic fault process. Constructed per Cluster from its
// FaultSpec; start() receives the host and a private RNG stream forked from
// the cell seed, so campaigns stay byte-identical for any thread count.
class FaultProcess {
 public:
  virtual ~FaultProcess() = default;

  // Canonical registry name ("crash-restart", "flap", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::string help() const = 0;
  [[nodiscard]] virtual std::vector<FaultParam> params() const { return {}; }

  // True when the process can fail nodes — the cluster then enables
  // per-call in-flight tracking so interrupted calls can be re-submitted.
  [[nodiscard]] virtual bool disruptive() const { return false; }
  // True when the process may swallow completions (per-delivery hook).
  [[nodiscard]] virtual bool drops_completions() const { return false; }

  // Begin self-scheduling on the host. Called once, before the first call
  // is submitted.
  virtual void start(FaultHost& host, sim::Rng rng) {
    (void)host;
    (void)rng;
  }

  // Lost-completion hook: return true to swallow this finished call's
  // completion before it reaches the controller (the resilience layer's
  // timeout retry is then the only recovery). Only consulted on processes
  // whose drops_completions() is true.
  [[nodiscard]] virtual bool drop_completion(
      const metrics::CallRecord& record) {
    (void)record;
    return false;
  }
};

// The open set of fault processes, keyed by canonical lowercase name.
// Built-ins ("crash-restart", "flap", "slow-node", "lost-completion") are
// registered on first use; new processes can be added at runtime:
//
//   FaultRegistry::instance().register_factory(
//       "my-fault", [](const FaultSpec& spec) {
//         return std::make_unique<MyFault>(spec);
//       });
//
// Factory contract (same as AutoscalerRegistry): spec validation discovers
// a process's declared keys by constructing a probe with an *empty*
// parameter set, so every parameter must have a usable default. Value
// validation should still abort loudly — that check runs with the user's
// actual parameters. "none" is not a registry entry.
class FaultRegistry final
    : public util::FactoryRegistry<FaultProcess, const FaultSpec&> {
 public:
  static FaultRegistry& instance();

 private:
  FaultRegistry() : FactoryRegistry("fault") {}
};

// Validate `spec` against the registry and construct the process — the
// one-call surface used by the Cluster. `spec` must be enabled().
[[nodiscard]] std::unique_ptr<FaultProcess> make_fault(const FaultSpec& spec);

// Probe-derived properties by canonical name (cached): whether the process
// fails nodes / swallows completions. Used by ClusterSpec to decide
// in-flight tracking and to validate fault/resilience combinations without
// constructing per-cell probes.
[[nodiscard]] bool fault_is_disruptive(const std::string& canonical_name);
[[nodiscard]] bool fault_drops_completions(const std::string& canonical_name);

}  // namespace whisk::cluster
