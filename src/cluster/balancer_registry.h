#pragma once

#include <memory>
#include <string_view>

#include "cluster/load_balancer.h"
#include "util/registry.h"

namespace whisk::cluster {

// The open set of controller-side load balancers, keyed by canonical
// lowercase name. Built-ins are registered on first use; new balancers can
// be added at runtime:
//
//   BalancerRegistry::instance().register_factory(
//       "my-balancer", [](const BalancerParams&) {
//         return std::make_unique<MyBalancer>();
//       });
//
// Unknown names abort with a message listing every registered name.
class BalancerRegistry final
    : public util::FactoryRegistry<LoadBalancer, const BalancerParams&> {
 public:
  static BalancerRegistry& instance();

  using FactoryRegistry::create;
  [[nodiscard]] std::unique_ptr<LoadBalancer> create(
      std::string_view name) const {
    return create(name, BalancerParams{});
  }

 private:
  BalancerRegistry() : FactoryRegistry("balancer") {}
};

namespace detail {
// Defined in load_balancer.cpp: round-robin, home-invoker, least-loaded.
void register_builtin_balancers(BalancerRegistry& registry);
}  // namespace detail

// Defined in extra_balancers.cpp: weighted-least-loaded, join-idle-queue.
void register_extra_balancers(BalancerRegistry& registry);

}  // namespace whisk::cluster
