#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"
#include "util/registry.h"

namespace whisk::core {
class RuntimeHistory;
}  // namespace whisk::core

namespace whisk::cluster {

// A closed-loop scaling controller by registry name plus named parameters —
// the autoscaling mirror of container::KeepAliveSpec:
//
//   auto spec = AutoscalerSpec::parse("target-util?low=0.3&high=0.85");
//   spec.to_string()  -> "target-util?high=0.85&low=0.3"
//
// Grammar: name[?key=value[&key=value]...]. Names and keys are
// case-insensitive; parameters are stored sorted so to_string() is
// canonical and parse(to_string()) round-trips exactly. The reserved name
// "none" (the default) means closed-loop scaling is off and takes no
// parameters. normalized() resolves every other name against the
// AutoscalerRegistry and rejects unknown parameter keys with an error that
// lists the controller's valid keys (the driver keys tick-s / cooldown-s
// are accepted by every controller).
struct AutoscalerSpec {
  std::string name = "none";
  std::map<std::string, std::string> params;

  [[nodiscard]] static AutoscalerSpec parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  // Abort with a name-listing error if the controller or any parameter key
  // is unknown; returns a copy with the name canonicalized and keys
  // lowercased. "none" must carry no parameters.
  [[nodiscard]] AutoscalerSpec normalized() const;

  // True when the spec names a real controller (not "none").
  [[nodiscard]] bool enabled() const { return name != "none"; }

  [[nodiscard]] bool has(std::string_view key) const;
  // Typed parameter access with a fallback for absent keys. Unparsable
  // values abort, naming the controller, the key, and the offending value.
  [[nodiscard]] double number(std::string_view key, double fallback) const;
  [[nodiscard]] std::size_t count(std::string_view key,
                                  std::size_t fallback) const;

  friend bool operator==(const AutoscalerSpec& a, const AutoscalerSpec& b) {
    return a.name == b.name && a.params == b.params;
  }
  friend bool operator!=(const AutoscalerSpec& a, const AutoscalerSpec& b) {
    return !(a == b);
  }
};

// One declared parameter of a registered autoscaler; surfaced by the
// unknown-key diagnostics and by `whisk_sweep --list` / autoscaler_catalog.
struct AutoscalerParam {
  std::string name;
  std::string default_value;
  std::string help;
};

// The driver-level parameters every controller accepts: the observation
// cadence and the per-group minimum seconds between scaling actions. They
// ride in the AutoscalerSpec like controller parameters but are consumed
// by the Cluster driver, not the controller.
[[nodiscard]] const std::vector<AutoscalerParam>& common_autoscaler_params();

// What a controller observes about one node group at a tick. Draining,
// drained and failed nodes are excluded — the controller reasons about the
// routable slice exactly as the load balancer sees it.
struct GroupObservation {
  std::size_t group = 0;   // ordinal in the deployment's group list
  std::size_t active = 0;  // routable nodes right now
  int cores_per_node = 0;  // the group's effective cores override
  // This group's share of the deployment's t=0 core capacity, in (0, 1] —
  // how fleet-wide demand estimates are apportioned across groups.
  double capacity_share = 1.0;
  std::size_t queued = 0;     // sum of daemon queue lengths, active nodes
  std::size_t executing = 0;  // sum of executing calls, active nodes

  [[nodiscard]] double load() const {
    return static_cast<double>(queued + executing);
  }
  [[nodiscard]] double utilization() const {
    const double capacity =
        static_cast<double>(active) * static_cast<double>(cores_per_node);
    return capacity > 0.0 ? load() / capacity : 0.0;
  }
};

// Cluster-wide facts shared by every group's decision at one tick.
struct ClusterObservation {
  sim::SimTime now = 0.0;
  std::size_t num_functions = 0;
  // Controller-side arrival/completion history; non-null exactly when the
  // controller's history_window_s() is positive.
  const core::RuntimeHistory* history = nullptr;
};

// Decides how many active nodes each group should have — the reactive
// replacement for the pre-scheduled lifecycle events of ClusterSpec. The
// Cluster drives it on a fixed tick: observe every group, ask for the
// desired size, clamp to the group's min-nodes/max-nodes bounds, apply the
// cooldown, and emit add_node (cold joins) or drain (newest active node
// first) through the same lifecycle machinery scheduled events use.
//
// Controllers are constructed per Cluster, so they may keep state.
class Autoscaler {
 public:
  virtual ~Autoscaler() = default;

  // Canonical registry name ("target-util", "queue-depth", "predictive").
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::string help() const = 0;
  [[nodiscard]] virtual std::vector<AutoscalerParam> params() const {
    return {};
  }

  // Horizon (seconds) of the controller-side RuntimeHistory this controller
  // wants, or 0 for none. A positive value makes the Cluster feed a
  // dedicated history with every arrival and completion and hand it to
  // desired_nodes() via ClusterObservation::history.
  [[nodiscard]] virtual double history_window_s() const { return 0.0; }

  // Desired active node count for `group`. The driver clamps the answer to
  // the group's bounds and rate-limits it with the cooldown; returning
  // group.active means "hold".
  [[nodiscard]] virtual std::size_t desired_nodes(
      const GroupObservation& group, const ClusterObservation& cluster) = 0;
};

// The open set of scaling controllers, keyed by canonical lowercase name.
// Built-ins ("target-util", "queue-depth", "predictive") are registered on
// first use; new controllers can be added at runtime:
//
//   AutoscalerRegistry::instance().register_factory(
//       "my-controller", [](const AutoscalerSpec& spec) {
//         return std::make_unique<MyController>(spec);
//       });
//
// Factory contract: spec validation discovers a controller's declared keys
// by constructing a probe with an *empty* parameter set, so every parameter
// must have a usable default (read it with spec.number(key, fallback) /
// spec.count(key, fallback), never require presence). Out-of-range *values*
// should still abort loudly — that check runs with the user's actual
// parameters. "none" is not a registry entry: an AutoscalerSpec that is not
// enabled() never reaches the registry.
//
// Unknown names abort with a message listing every registered name.
class AutoscalerRegistry final
    : public util::FactoryRegistry<Autoscaler, const AutoscalerSpec&> {
 public:
  static AutoscalerRegistry& instance();

 private:
  AutoscalerRegistry() : FactoryRegistry("autoscaler") {}
};

// Validate `spec` against the registry and construct the controller — the
// one-call surface used by the Cluster. `spec` must be enabled().
[[nodiscard]] std::unique_ptr<Autoscaler> make_autoscaler(
    const AutoscalerSpec& spec);

}  // namespace whisk::cluster
