#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/autoscaler.h"
#include "cluster/fault.h"
#include "cluster/resilience.h"
#include "container/keep_alive.h"
#include "node/params.h"

namespace whisk::cluster {

// One homogeneous slice of the fleet: `count` nodes sharing a name and a
// set of NodeParams overrides. Parameter values are kept verbatim and
// applied on top of the experiment's base NodeParams.
struct NodeGroupSpec {
  std::string name = "node";
  int count = 1;
  // cores=<int>, memory-mb=<MiB> (alias memory_mb); keys are
  // case-insensitive and validated by normalized().
  std::map<std::string, std::string> params;

  friend bool operator==(const NodeGroupSpec& a, const NodeGroupSpec& b) {
    return a.name == b.name && a.count == b.count && a.params == b.params;
  }
  friend bool operator!=(const NodeGroupSpec& a, const NodeGroupSpec& b) {
    return !(a == b);
  }
};

// Scheduled fleet churn. Times are absolute sim seconds (the measured
// burst starts at 0).
enum class LifecycleKind {
  kJoin,   // a new (cold, un-warmed) node joins the group
  kDrain,  // the node stops receiving calls but finishes its backlog
  kFail,   // the node dies; its in-flight calls are re-submitted
};

[[nodiscard]] constexpr const char* to_string(LifecycleKind k) {
  switch (k) {
    case LifecycleKind::kJoin:
      return "join";
    case LifecycleKind::kDrain:
      return "drain";
    case LifecycleKind::kFail:
      return "fail";
  }
  return "?";
}

// A response-time service-level objective: `metric<threshold-s`, e.g.
// "p99<2.5". The metric names the statistic the objective is stated on
// (mean, p50, p75, p95, p99 or max response time); the per-call violation
// count reported by the runner counts every response above the threshold,
// which is what any of those statistics is computed from.
struct SloSpec {
  std::string metric = "p99";
  double threshold_s = 0.0;

  [[nodiscard]] static SloSpec parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const SloSpec& a, const SloSpec& b) {
    return a.metric == b.metric && a.threshold_s == b.threshold_s;
  }
  friend bool operator!=(const SloSpec& a, const SloSpec& b) {
    return !(a == b);
  }
};

struct LifecycleEvent {
  LifecycleKind kind = LifecycleKind::kJoin;
  double time = 0.0;
  std::string group;
  // Node index within the group (creation order, joins appended); -1 for
  // join events, which always add a fresh node.
  int node = -1;

  friend bool operator==(const LifecycleEvent& a, const LifecycleEvent& b) {
    return a.kind == b.kind && a.time == b.time && a.group == b.group &&
           a.node == b.node;
  }
  friend bool operator!=(const LifecycleEvent& a, const LifecycleEvent& b) {
    return !(a == b);
  }
};

// A declarative deployment description — the cluster-layer mirror of
// SchedulerSpec / ScenarioSpec / CampaignSpec:
//
//   auto spec = ClusterSpec::parse(
//       "big:4?cores=16&memory-mb=65536,small:8?cores=4&cost-per-hour=0.2; "
//       "keep-alive=ttl?idle-s=600; "
//       "autoscaler=target-util?low=0.3&high=0.85; "
//       "faults=crash-restart?mtbf-s=120&mttr-s=15,slow-node?factor=4; "
//       "resilience=timeout-s=2&max-attempts=3&hedge-p=0.95; "
//       "slo=p99<2.5; "
//       "events=drain@120:big/0,join@300:small");
//
// Grammar: semicolon-separated sections. The first (unkeyed) section lists
// node groups `name[:count][?key=value&...]` (params: cores, memory-mb,
// cost-per-hour, min-nodes, max-nodes); `keep-alive=` names a
// container::KeepAlivePolicyRegistry spec; `autoscaler=` names an
// AutoscalerRegistry controller that scales groups at runtime within their
// min-nodes/max-nodes bounds; `faults=` lists FaultRegistry processes the
// cluster runs under (seeded stochastic churn — see fault.h); `resilience=`
// sets the controller's recovery policy (timeouts/retries, hedging,
// breakers, shedding — see resilience.h); `slo=` states the response-time
// objective runs are scored against; `events=` lists scheduled lifecycle events
// `kind@time:group[/node]` (drain/fail require the /node index, join takes
// just the group). Group/policy names are case-insensitive; unknown
// groups, policies and parameter keys abort with diagnostics that echo the
// input and list the valid names.
//
// Because campaign grids split their axes on ';' and ',', ClusterSpec also
// accepts '|' wherever ';' appears and '+' wherever a list ',' appears, so
// a full deployment can ride inside a `clusters=` campaign axis:
//
//   clusters=big:2?cores=16+small:4|keep-alive=ttl?idle-s=300
//
// to_string() renders the canonical ';'/',' form; to_compact_string() the
// grid-safe '|'/'+' form. parse(to_string()) round-trips exactly (group
// order is preserved; parameters and events are canonicalized).
struct ClusterSpec {
  std::vector<NodeGroupSpec> groups = {NodeGroupSpec{}};
  container::KeepAliveSpec keep_alive;
  // Set by parse() when the spec names a keep-alive section, so an
  // explicit "keep-alive=lru" still overrides (and conflicts with) a
  // policy stamped on the base NodeParams, instead of reading as unset.
  bool keep_alive_set = false;
  // Closed-loop scaling controller; default "none" (fixed fleet or
  // pre-scheduled events only). `autoscaler_set` mirrors keep_alive_set:
  // an explicit "autoscaler=none" still reads as a deliberate choice.
  AutoscalerSpec autoscaler;
  bool autoscaler_set = false;
  // Stochastic fault processes active for the whole run; empty = no faults
  // (the default, byte-identical to the pre-fault simulator). `faults_set`
  // mirrors autoscaler_set: an explicit "faults=none" is a deliberate
  // choice that conflicts with a `faults=` campaign axis.
  std::vector<FaultSpec> faults;
  bool faults_set = false;
  // Controller-side recovery policy; empty = none (legacy behavior).
  ResilienceSpec resilience;
  bool resilience_set = false;
  // Response-time objective; meaningful only when slo_set.
  SloSpec slo;
  bool slo_set = false;
  std::vector<LifecycleEvent> events;
  // True once normalized() has validated this exact value; lets the
  // campaign runner normalize a spec once and reuse it per cell without
  // re-validating (normalized() early-outs). Not part of equality, and
  // parse() always returns canonical specs. Any hand-mutation after
  // normalization is on the caller.
  bool canonical = false;

  [[nodiscard]] static ClusterSpec parse(std::string_view text);
  // The legacy deployment: `nodes` identical workers, LRU keep-alive, no
  // churn (what the flat nodes()/cores()/memory_mb() sugar expands to).
  [[nodiscard]] static ClusterSpec homogeneous(int nodes);

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_compact_string() const;

  // Abort (echoing the offender and listing valid alternatives) on unknown
  // group parameters, keep-alive policies or event targets; returns a copy
  // with names lowercased, the keep-alive normalized and events
  // time-sorted (stable).
  [[nodiscard]] ClusterSpec normalized() const;

  // Nodes present at t = 0 (before any join events).
  [[nodiscard]] std::size_t initial_nodes() const;
  // Sum of initial cores at t = 0, with per-group overrides applied on top
  // of `base_cores` — what workload sizing scales with.
  [[nodiscard]] int initial_cores(int base_cores) const;
  // True when any drain/fail event is scheduled — the churn that needs
  // per-call in-flight bookkeeping (joins alone do not).
  [[nodiscard]] bool has_disruptive_events() const;
  // True when any fault process can fail nodes (crash-restart, flap).
  [[nodiscard]] bool has_disruptive_faults() const;
  // Per-call in-flight bookkeeping is needed for disruptive events/faults
  // AND for any autoscaler (its drains must detect backlog completion).
  [[nodiscard]] bool needs_in_flight_tracking() const;

  // Typed group-parameter reads (values validated by normalized()):
  // cost-per-hour defaults to 0 (free), min-nodes to 1 (a group never
  // autoscales away entirely unless min-nodes=0 is explicit) and max-nodes
  // to 1000000. Bounds apply to autoscaler decisions only; scheduled
  // events may exceed them.
  [[nodiscard]] double group_cost_per_hour(std::size_t group) const;
  [[nodiscard]] std::size_t group_min_nodes(std::size_t group) const;
  [[nodiscard]] std::size_t group_max_nodes(std::size_t group) const;

  // Ordinal of `name` among groups, or abort listing the group names.
  [[nodiscard]] std::size_t group_index(std::string_view name) const;

  // The group's NodeParams: `base` with the group's overrides and this
  // spec's keep-alive applied.
  [[nodiscard]] node::NodeParams node_params(
      std::size_t group, const node::NodeParams& base) const;

  friend bool operator==(const ClusterSpec& a, const ClusterSpec& b) {
    return a.groups == b.groups && a.keep_alive == b.keep_alive &&
           a.keep_alive_set == b.keep_alive_set &&
           a.autoscaler == b.autoscaler &&
           a.autoscaler_set == b.autoscaler_set && a.faults == b.faults &&
           a.faults_set == b.faults_set && a.resilience == b.resilience &&
           a.resilience_set == b.resilience_set && a.slo == b.slo &&
           a.slo_set == b.slo_set && a.events == b.events;
  }
  friend bool operator!=(const ClusterSpec& a, const ClusterSpec& b) {
    return !(a == b);
  }
};

}  // namespace whisk::cluster
