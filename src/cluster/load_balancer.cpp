#include "cluster/load_balancer.h"

#include <limits>

#include "util/check.h"

namespace whisk::cluster {
namespace {

class RoundRobinBalancer final : public LoadBalancer {
 public:
  std::size_t pick(const workload::CallRequest& call,
                   const std::vector<node::Invoker*>& invokers) override {
    (void)call;
    WHISK_CHECK(!invokers.empty(), "no invokers");
    return next_++ % invokers.size();
  }
  BalancerKind kind() const override { return BalancerKind::kRoundRobin; }

 private:
  std::size_t next_ = 0;
};

class HomeInvokerBalancer final : public LoadBalancer {
 public:
  std::size_t pick(const workload::CallRequest& call,
                   const std::vector<node::Invoker*>& invokers) override {
    WHISK_CHECK(!invokers.empty(), "no invokers");
    const std::size_t n = invokers.size();
    const std::size_t home =
        static_cast<std::size_t>(call.function) % n;
    // Probe from the home invoker onward; accept the first invoker whose
    // backlog is below a small threshold, falling back to the least loaded
    // probe when all are busy (an approximation of OpenWhisk's
    // ShardingContainerPoolBalancer semantics).
    std::size_t best = home;
    std::size_t best_load = std::numeric_limits<std::size_t>::max();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t idx = (home + k) % n;
      const std::size_t load =
          invokers[idx]->queue_length() + invokers[idx]->executing();
      if (load < static_cast<std::size_t>(
                     2 * invokers[idx]->params().cores)) {
        return idx;
      }
      if (load < best_load) {
        best_load = load;
        best = idx;
      }
    }
    return best;
  }
  BalancerKind kind() const override { return BalancerKind::kHomeInvoker; }
};

class LeastLoadedBalancer final : public LoadBalancer {
 public:
  std::size_t pick(const workload::CallRequest& call,
                   const std::vector<node::Invoker*>& invokers) override {
    (void)call;
    WHISK_CHECK(!invokers.empty(), "no invokers");
    std::size_t best = 0;
    std::size_t best_load = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < invokers.size(); ++i) {
      const std::size_t load =
          invokers[i]->queue_length() + invokers[i]->executing();
      if (load < best_load) {
        best_load = load;
        best = i;
      }
    }
    return best;
  }
  BalancerKind kind() const override { return BalancerKind::kLeastLoaded; }
};

}  // namespace

std::string_view to_string(BalancerKind kind) {
  switch (kind) {
    case BalancerKind::kRoundRobin:
      return "round-robin";
    case BalancerKind::kHomeInvoker:
      return "home-invoker";
    case BalancerKind::kLeastLoaded:
      return "least-loaded";
  }
  return "?";
}

std::unique_ptr<LoadBalancer> make_balancer(BalancerKind kind) {
  switch (kind) {
    case BalancerKind::kRoundRobin:
      return std::make_unique<RoundRobinBalancer>();
    case BalancerKind::kHomeInvoker:
      return std::make_unique<HomeInvokerBalancer>();
    case BalancerKind::kLeastLoaded:
      return std::make_unique<LeastLoadedBalancer>();
  }
  WHISK_CHECK(false, "unhandled balancer kind");
  return nullptr;
}

}  // namespace whisk::cluster
