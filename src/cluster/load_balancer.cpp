#include "cluster/load_balancer.h"

#include <limits>

#include "cluster/balancer_registry.h"
#include "util/check.h"

namespace whisk::cluster {
namespace {

class RoundRobinBalancer final : public LoadBalancer {
 public:
  std::size_t pick(const workload::CallRequest& call,
                   const NodeView& nodes) override {
    (void)call;
    WHISK_CHECK(!nodes.empty(), "no routable nodes");
    return next_++ % nodes.size();
  }
  std::string_view name() const override { return "round-robin"; }

 private:
  std::size_t next_ = 0;
};

class HomeInvokerBalancer final : public LoadBalancer {
 public:
  std::size_t pick(const workload::CallRequest& call,
                   const NodeView& nodes) override {
    WHISK_CHECK(!nodes.empty(), "no routable nodes");
    const std::size_t n = nodes.size();
    const std::size_t home =
        static_cast<std::size_t>(call.function) % n;
    // Probe from the home invoker onward; accept the first invoker whose
    // backlog is below a small threshold, falling back to the least loaded
    // probe when all are busy (an approximation of OpenWhisk's
    // ShardingContainerPoolBalancer semantics). The threshold scales with
    // the probed node's own core count, so big boxes absorb more overflow.
    std::size_t best = home;
    std::size_t best_load = std::numeric_limits<std::size_t>::max();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t idx = (home + k) % n;
      const std::size_t load = nodes[idx].load();
      if (load < static_cast<std::size_t>(2 * nodes[idx].cores())) {
        return idx;
      }
      if (load < best_load) {
        best_load = load;
        best = idx;
      }
    }
    return best;
  }
  std::string_view name() const override { return "home-invoker"; }
};

class LeastLoadedBalancer final : public LoadBalancer {
 public:
  std::size_t pick(const workload::CallRequest& call,
                   const NodeView& nodes) override {
    (void)call;
    WHISK_CHECK(!nodes.empty(), "no routable nodes");
    std::size_t best = 0;
    std::size_t best_load = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const std::size_t load = nodes[i].load();
      if (load < best_load) {
        best_load = load;
        best = i;
      }
    }
    return best;
  }
  std::string_view name() const override { return "least-loaded"; }
};

}  // namespace

namespace detail {

void register_builtin_balancers(BalancerRegistry& registry) {
  registry.register_factory("round-robin", [](const BalancerParams&) {
    return std::make_unique<RoundRobinBalancer>();
  });
  registry.register_factory("home-invoker", [](const BalancerParams&) {
    return std::make_unique<HomeInvokerBalancer>();
  });
  registry.register_factory("least-loaded", [](const BalancerParams&) {
    return std::make_unique<LeastLoadedBalancer>();
  });
}

}  // namespace detail
}  // namespace whisk::cluster
