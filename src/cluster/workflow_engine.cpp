#include "cluster/workflow_engine.h"

#include <algorithm>

#include "cluster/cluster.h"
#include "util/check.h"

namespace whisk::cluster {

WorkflowEngine::WorkflowEngine(const workload::WorkflowSpec& spec,
                               const workload::FunctionCatalog& catalog)
    : dag_(workload::make_workflow_dag(spec)), catalog_(&catalog) {
  // Precompute the cp_hint table: for every possible root function, the
  // expected remaining work from each stage — its own reference median plus
  // the longest downstream chain. Stages are topologically ordered, so one
  // backward sweep suffices.
  const int n = static_cast<int>(dag_.size());
  hints_.resize(catalog.size());
  for (std::size_t fn = 0; fn < catalog.size(); ++fn) {
    auto& remaining = hints_[fn];
    remaining.assign(dag_.size(), 0.0);
    for (int s = n - 1; s >= 0; --s) {
      double tail = 0.0;
      for (const int t : dag_.stages[s].successors) {
        tail = std::max(tail, remaining[t]);
      }
      remaining[s] =
          catalog.reference_median(
              stage_function(static_cast<workload::FunctionId>(fn), s)) +
          tail;
    }
  }
}

std::size_t WorkflowEngine::register_roots(
    const workload::Scenario& scenario) {
  WHISK_CHECK(instances_.empty(),
              "workflow runs support a single run_scenario per cluster "
              "(stage ids are derived from dense root ids)");
  instances_.resize(scenario.size());
  for (const auto& call : scenario.calls) {
    WHISK_CHECK(call.id >= 0 &&
                    static_cast<std::size_t>(call.id) < instances_.size(),
                "workflow roots need dense sequential call ids 0..n-1 "
                "(finalize_scenario assigns them)");
    Instance& inst = instances_[static_cast<std::size_t>(call.id)];
    WHISK_CHECK(inst.root_function == workload::kInvalidFunction,
                "duplicate call id in workflow scenario");
    inst.root_function = call.function;
    inst.start = call.release;
    inst.stages.resize(dag_.size());
  }
  roots_ = instances_.size();
  return roots_ * (dag_.size() - 1);
}

double WorkflowEngine::root_hint(const workload::CallRequest& call) const {
  return hints_[static_cast<std::size_t>(call.function) % hints_.size()][0];
}

std::size_t WorkflowEngine::instance_of(workload::CallId id) const {
  const auto raw = static_cast<std::size_t>(id);
  if (raw < roots_) return raw;
  return (raw - roots_) / (dag_.size() - 1);
}

int WorkflowEngine::stage_of(workload::CallId id) const {
  const auto raw = static_cast<std::size_t>(id);
  if (raw < roots_) return 0;
  return 1 + static_cast<int>((raw - roots_) % (dag_.size() - 1));
}

workload::CallId WorkflowEngine::stage_call_id(std::size_t instance,
                                               int stage) const {
  return static_cast<workload::CallId>(
      roots_ + instance * (dag_.size() - 1) +
      static_cast<std::size_t>(stage - 1));
}

workload::FunctionId WorkflowEngine::stage_function(
    workload::FunctionId root, int stage) const {
  const auto size = static_cast<int>(catalog_->size());
  return (root + dag_.stages[static_cast<std::size_t>(stage)]
                     .function_offset) %
         size;
}

void WorkflowEngine::annotate(metrics::CallRecord& record) const {
  WHISK_CHECK(record.id >= 0 &&
                  static_cast<std::size_t>(record.id) <
                      roots_ + roots_ * (dag_.size() - 1),
              "workflow cluster collected a call id it never issued");
  record.workflow =
      static_cast<workload::CallId>(instance_of(record.id));
  record.stage = stage_of(record.id);
}

void WorkflowEngine::on_resolved(const metrics::CallRecord& record,
                                 Cluster& cluster) {
  const std::size_t i = instance_of(record.id);
  const int s = stage_of(record.id);
  Instance& inst = instances_[i];
  StageState& state = inst.stages[static_cast<std::size_t>(s)];
  WHISK_CHECK(!state.resolved,
              "workflow stage resolved twice: the terminal-record funnel "
              "emitted two records for one call id");
  state.resolved = true;
  ++inst.resolved;
  const bool ok = record.disposition == metrics::Disposition::kOk;
  switch (record.disposition) {
    case metrics::Disposition::kOk:
      ++inst.ok;
      break;
    case metrics::Disposition::kShed:
      ++inst.shed;
      break;
    case metrics::Disposition::kDropped:
      ++inst.dropped;
      break;
  }
  inst.finish = std::max(inst.finish, record.completion);
  // Realized critical path: execution seconds along the longest released
  // chain. Failed stages contribute their upstream credit but no exec.
  double cp_done = state.cp_at_release;
  if (ok) cp_done += record.exec_end - record.exec_start;
  inst.critical_path_s = std::max(inst.critical_path_s, cp_done);

  for (const int t : dag_.stages[static_cast<std::size_t>(s)].successors) {
    StageState& succ = inst.stages[static_cast<std::size_t>(t)];
    if (ok) {
      ++succ.ok_preds;
    } else {
      ++succ.failed_preds;
    }
    // A released (or already cascade-dropped) stage froze its critical-path
    // credit at release: a k-of-n join does not wait for stragglers.
    if (succ.released) continue;
    if (ok) succ.cp_at_release = std::max(succ.cp_at_release, cp_done);
    const auto& def = dag_.stages[static_cast<std::size_t>(t)];
    if (succ.ok_preds >= def.join_k) {
      succ.released = true;
      release_stage(i, t, cluster);
    } else if (succ.failed_preds > def.preds - def.join_k) {
      // join_k ok predecessors can never be gathered anymore.
      succ.released = true;
      cascade_drop(i, t, cluster);
    }
  }
  maybe_emit(i, cluster);
}

void WorkflowEngine::release_stage(std::size_t instance, int stage,
                                   Cluster& cluster) {
  workload::CallRequest call;
  call.id = stage_call_id(instance, stage);
  call.function =
      stage_function(instances_[instance].root_function, stage);
  call.release = cluster.engine_->now();
  call.cp_hint =
      hints_[static_cast<std::size_t>(instances_[instance].root_function) %
             hints_.size()][static_cast<std::size_t>(stage)];
  // Same client hop the scenario roots take: released downstream stages are
  // ordinary arrivals on the cell's single engine.
  cluster.engine_->schedule_in(
      cluster.params_.client_to_controller_s,
      [c = &cluster, call] { c->submit_to_controller(call); });
}

void WorkflowEngine::cascade_drop(std::size_t instance, int stage,
                                  Cluster& cluster) {
  metrics::CallRecord rec;
  rec.id = stage_call_id(instance, stage);
  rec.function = stage_function(instances_[instance].root_function, stage);
  rec.node = -1;
  rec.release = cluster.engine_->now();
  rec.completion = cluster.engine_->now();
  rec.disposition = metrics::Disposition::kDropped;
  // Through the terminal funnel, so the drop is annotated, counted and
  // recursively cascades to this stage's own successors.
  cluster.collect_record(rec);
}

void WorkflowEngine::maybe_emit(std::size_t instance, Cluster& cluster) {
  Instance& inst = instances_[instance];
  if (inst.emitted ||
      inst.resolved != static_cast<int>(dag_.size())) {
    return;
  }
  inst.emitted = true;
  metrics::WorkflowRecord wf;
  wf.id = static_cast<workload::CallId>(instance);
  wf.stages = static_cast<int>(dag_.size());
  wf.ok = inst.ok;
  wf.shed = inst.shed;
  wf.dropped = inst.dropped;
  wf.start = inst.start;
  wf.finish = inst.finish;
  wf.critical_path_s = inst.critical_path_s;
  cluster.collector_.add_workflow(wf);
}

}  // namespace whisk::cluster
