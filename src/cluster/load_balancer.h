#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "node/invoker.h"
#include "workload/scenario.h"

namespace whisk::cluster {

// Knobs a balancer may consume at construction time. Kept small on
// purpose: balancers that need more state should read it from the node
// view they are handed at pick() time.
struct BalancerParams {
  std::uint64_t seed = 0;  // randomized balancers fork their stream here
};

// One routable worker as the balancer sees it: the invoker for live load
// queries plus the capacity and identity facts a heterogeneity-aware
// balancer weights by. `node_index` is the cluster-wide node id (stable
// across churn); `group` is the ordinal of the node's group in the
// deployment's ClusterSpec.
struct NodeRef {
  node::Invoker* invoker = nullptr;
  std::size_t node_index = 0;
  std::size_t group = 0;

  [[nodiscard]] std::size_t load() const {
    return invoker->queue_length() + invoker->executing();
  }
  [[nodiscard]] int cores() const { return invoker->params().cores; }
  [[nodiscard]] double memory_mb() const {
    return invoker->params().memory_limit_mb;
  }
};

// The routable slice of the fleet, in cluster node order. Draining and
// failed nodes are excluded by the cluster layer, so balancers never need
// lifecycle awareness — a pick is always valid. The view is rebuilt only
// on membership changes; pick() receives a const reference.
class NodeView {
 public:
  NodeView() = default;
  explicit NodeView(std::vector<NodeRef> nodes) : nodes_(std::move(nodes)) {}

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }
  [[nodiscard]] const NodeRef& operator[](std::size_t i) const {
    return nodes_[i];
  }
  [[nodiscard]] auto begin() const { return nodes_.begin(); }
  [[nodiscard]] auto end() const { return nodes_.end(); }

 private:
  std::vector<NodeRef> nodes_;
};

// How the controller spreads invocations over invokers (paper Sec. III /
// VIII). Balancers are constructed by canonical string name through
// cluster::BalancerRegistry (see balancer_registry.h). Built-ins:
//   round-robin            calls rotate over invokers regardless of function
//   home-invoker           hash(function) picks a home; overflow probes on
//   least-loaded           fewest queued + executing calls at decision time
//   weighted-least-loaded  least (queued + executing) / cores — capacity
//                          aware, for heterogeneous fleets
//   join-idle-queue        an idle invoker if any exists, else
//                          weighted-least-loaded over the fleet
class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  // Choose the view index in [0, nodes.size()) for this call. The view is
  // never empty.
  [[nodiscard]] virtual std::size_t pick(const workload::CallRequest& call,
                                         const NodeView& nodes) = 0;

  // Canonical registry name ("round-robin", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;
};

// Construct a balancer by registered name; aborts on an unknown name with
// a message that echoes the input and lists every registered balancer.
[[nodiscard]] std::unique_ptr<LoadBalancer> make_balancer(
    std::string_view name, BalancerParams params = {});

}  // namespace whisk::cluster
