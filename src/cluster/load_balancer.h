#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "node/invoker.h"
#include "workload/scenario.h"

namespace whisk::cluster {

// Knobs a balancer may consume at construction time. Kept small on
// purpose: balancers that need more state should read it from the invokers
// they are handed at pick() time.
struct BalancerParams {
  std::uint64_t seed = 0;  // randomized balancers fork their stream here
};

// How the controller spreads invocations over invokers (paper Sec. III /
// VIII). Balancers are constructed by canonical string name through
// cluster::BalancerRegistry (see balancer_registry.h). Built-ins:
//   round-robin            calls rotate over invokers regardless of function
//   home-invoker           hash(function) picks a home; overflow probes on
//   least-loaded           fewest queued + executing calls at decision time
//   weighted-least-loaded  least (queued + executing) / cores — capacity
//                          aware, for heterogeneous fleets
//   join-idle-queue        an idle invoker if any exists, else least-loaded
class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  // Choose the invoker index in [0, invokers.size()) for this call.
  [[nodiscard]] virtual std::size_t pick(
      const workload::CallRequest& call,
      const std::vector<node::Invoker*>& invokers) = 0;

  // Canonical registry name ("round-robin", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;
};

// Construct a balancer by registered name; aborts on an unknown name with
// a message that echoes the input and lists every registered balancer.
[[nodiscard]] std::unique_ptr<LoadBalancer> make_balancer(
    std::string_view name, BalancerParams params = {});

}  // namespace whisk::cluster
