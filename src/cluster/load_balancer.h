#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "node/invoker.h"
#include "workload/scenario.h"

namespace whisk::cluster {

// How the controller spreads invocations over invokers (paper Sec. III /
// VIII). The paper's multi-node experiments use the stock behaviour, which
// spreads each function's calls across invokers starting from a
// function-specific home invoker; we also provide plain round-robin and
// least-loaded for the ablation benches.
enum class BalancerKind {
  kRoundRobin,   // calls rotate over invokers regardless of function
  kHomeInvoker,  // hash(function) picks a home; overflow probes onward
  kLeastLoaded,  // fewest queued + executing calls at decision time
};

[[nodiscard]] std::string_view to_string(BalancerKind kind);

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  // Choose the invoker index in [0, invokers.size()) for this call.
  [[nodiscard]] virtual std::size_t pick(
      const workload::CallRequest& call,
      const std::vector<node::Invoker*>& invokers) = 0;

  [[nodiscard]] virtual BalancerKind kind() const = 0;
};

[[nodiscard]] std::unique_ptr<LoadBalancer> make_balancer(BalancerKind kind);

}  // namespace whisk::cluster
