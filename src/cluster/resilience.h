#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace whisk::cluster {

// One declared resilience knob; surfaced by `whisk_sweep --list` and
// tools/fault_catalog next to the fault registry.
struct ResilienceParam {
  std::string name;
  std::string default_value;
  std::string help;
};

// Every knob the controller-side resilience layer understands, with its
// default and the value that disables it. A knob left at its default is
// off, so an empty spec is exactly the pre-resilience controller.
[[nodiscard]] const std::vector<ResilienceParam>& resilience_params();

// The controller-side recovery policy of a deployment — the defensive
// mirror of the `faults=` section, carried as `resilience=` in ClusterSpec:
//
//   auto spec = ResilienceSpec::parse("timeout-s=2&max-attempts=3&hedge-p=0.95");
//   spec.to_string()  -> "hedge-p=0.95&max-attempts=3&timeout-s=2"
//
// Grammar: "none" (or empty) for no policy, else key=value[&key=value]...
// with case-insensitive keys stored sorted, so to_string() is canonical and
// parse(to_string()) round-trips. Unlike faults there is no registry of
// named policies: the mechanisms (timeout+retry, hedging, breaker,
// shedding) compose, so the spec is one flat parameter set and each
// mechanism arms only when its gating knob moves off the default.
//
// Knobs (see resilience_params() for the authoritative list):
//   timeout-s          per-attempt controller timeout; 0 disables. Expired
//                      attempts retry with deterministic exponential backoff
//                      (base = ClusterParams::resubmit_delay_s, doubling per
//                      retry) until max-attempts or the retry budget runs out,
//                      then the call is recorded with a `dropped` disposition.
//   max-attempts       total attempts per call across timeout retries (>= 1).
//   retry-budget       fraction of the workload's calls that may be retried;
//                      once ceil(budget * calls) retries are spent, further
//                      expiries drop instead of retrying.
//   hedge-p            latency quantile that arms a hedge: when an attempt
//                      outlives the observed p-quantile of controller
//                      latencies, a duplicate goes to a second node and the
//                      first completion wins. 0 disables; must be < 1.
//   hedge-min-samples  observed completions required before hedging arms.
//   breaker-failures   consecutive per-node timeouts that open the node's
//                      circuit breaker (ejects it from the NodeView until a
//                      half-open probe succeeds). 0 disables; requires
//                      timeout-s > 0, since timeouts are the failure signal.
//   breaker-cooldown-s seconds an open breaker waits before half-open.
//   max-queue          per-node queue depth (queued + in transit) above which
//                      a fresh call is shed with a `shed` disposition when
//                      every routable node is saturated. 0 disables.
struct ResilienceSpec {
  std::map<std::string, std::string> params;

  [[nodiscard]] static ResilienceSpec parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  // Abort with a knob-listing error on an unknown key or an out-of-range
  // value; returns a copy with keys lowercased.
  [[nodiscard]] ResilienceSpec normalized() const;

  [[nodiscard]] bool enabled() const { return !params.empty(); }

  [[nodiscard]] bool has(std::string_view key) const;
  // Typed access with the declared default as fallback; unparsable values
  // abort naming the key and offending text.
  [[nodiscard]] double number(std::string_view key, double fallback) const;
  [[nodiscard]] std::size_t count(std::string_view key,
                                  std::size_t fallback) const;

  friend bool operator==(const ResilienceSpec& a, const ResilienceSpec& b) {
    return a.params == b.params;
  }
  friend bool operator!=(const ResilienceSpec& a, const ResilienceSpec& b) {
    return !(a == b);
  }
};

}  // namespace whisk::cluster
