#include "cluster/resilience.h"

#include "util/check.h"
#include "util/parse.h"

namespace whisk::cluster {

const std::vector<ResilienceParam>& resilience_params() {
  static const auto* params = new std::vector<ResilienceParam>{
      {"timeout-s", "0",
       "per-attempt controller timeout in seconds (0 = disabled)"},
      {"max-attempts", "4",
       "total attempts per call across timeout retries (>= 1)"},
      {"retry-budget", "0.2",
       "fraction of the workload's calls that may be retried"},
      {"hedge-p", "0",
       "latency quantile that arms a hedged duplicate (0 = disabled, < 1)"},
      {"hedge-min-samples", "32",
       "observed completions required before hedging arms"},
      {"breaker-failures", "0",
       "consecutive per-node timeouts that open the circuit breaker "
       "(0 = disabled; requires timeout-s > 0)"},
      {"breaker-cooldown-s", "30",
       "seconds an open breaker waits before a half-open probe"},
      {"max-queue", "0",
       "per-node depth above which saturated fleets shed (0 = disabled)"},
  };
  return *params;
}

namespace {

void check_known_key(const std::string& key, const std::string& raw) {
  for (const auto& p : resilience_params()) {
    if (p.name == key) return;
  }
  std::vector<std::string> names;
  names.reserve(resilience_params().size());
  for (const auto& p : resilience_params()) names.push_back(p.name);
  WHISK_CHECK(false, ("resilience spec does not take parameter \"" + raw +
                      "\"; valid parameters: " + util::join(names))
                         .c_str());
}

}  // namespace

ResilienceSpec ResilienceSpec::parse(std::string_view text) {
  ResilienceSpec spec;
  const std::string_view trimmed = util::trim_ws(text);
  if (trimmed.empty() || util::ascii_lower(trimmed) == "none") {
    return spec;
  }
  util::parse_param_list(trimmed,
                         "resilience spec \"" + std::string(text) + "\"",
                         &spec.params);
  return spec.normalized();
}

std::string ResilienceSpec::to_string() const {
  if (params.empty()) return "none";
  std::string out;
  char sep = 0;
  for (const auto& [key, value] : params) {
    if (sep) out += sep;
    out += key;
    out += '=';
    out += value;
    sep = '&';
  }
  return out;
}

ResilienceSpec ResilienceSpec::normalized() const {
  ResilienceSpec out;
  for (const auto& [raw_key, value] : params) {
    const std::string key = util::ascii_lower(raw_key);
    WHISK_CHECK(out.params.count(key) == 0,
                ("resilience spec sets parameter \"" + key + "\" twice")
                    .c_str());
    check_known_key(key, raw_key);
    out.params[key] = value;
  }
  // Range checks go through the typed getters so a non-numeric value dies
  // with the standard diagnostic before the range text.
  const double timeout = out.number("timeout-s", 0.0);
  WHISK_CHECK(timeout >= 0.0, "resilience: timeout-s must be >= 0");
  const std::size_t attempts = out.count("max-attempts", 4);
  WHISK_CHECK(attempts >= 1, "resilience: max-attempts must be >= 1");
  const double budget = out.number("retry-budget", 0.2);
  WHISK_CHECK(budget >= 0.0, "resilience: retry-budget must be >= 0");
  const double hedge_p = out.number("hedge-p", 0.0);
  WHISK_CHECK(hedge_p >= 0.0 && hedge_p < 1.0,
              "resilience: hedge-p must be in [0, 1) — it is a latency "
              "quantile, 0 disables hedging");
  WHISK_CHECK(out.count("hedge-min-samples", 32) >= 2,
              "resilience: hedge-min-samples must be >= 2");
  const std::size_t breaker = out.count("breaker-failures", 0);
  if (breaker > 0) {
    WHISK_CHECK(timeout > 0.0,
                "resilience: breaker-failures needs timeout-s > 0 — "
                "timeouts are the breaker's failure signal");
  }
  WHISK_CHECK(out.number("breaker-cooldown-s", 30.0) > 0.0,
              "resilience: breaker-cooldown-s must be > 0");
  return out;
}

bool ResilienceSpec::has(std::string_view key) const {
  return params.count(util::ascii_lower(key)) != 0;
}

double ResilienceSpec::number(std::string_view key, double fallback) const {
  const auto it = params.find(util::ascii_lower(key));
  if (it == params.end()) return fallback;
  double value = 0.0;
  if (!util::parse_finite_double(it->second, &value)) {
    WHISK_CHECK(false, ("resilience parameter " + std::string(key) + "=\"" +
                        it->second + "\" is not a finite number")
                           .c_str());
  }
  return value;
}

std::size_t ResilienceSpec::count(std::string_view key,
                                  std::size_t fallback) const {
  const auto it = params.find(util::ascii_lower(key));
  if (it == params.end()) return fallback;
  unsigned long long value = 0;
  if (!util::parse_whole_number(it->second, &value)) {
    WHISK_CHECK(false, ("resilience parameter " + std::string(key) + "=\"" +
                        it->second + "\" is not a whole number >= 0")
                           .c_str());
  }
  return static_cast<std::size_t>(value);
}

}  // namespace whisk::cluster
