#include "cluster/balancer_registry.h"

namespace whisk::cluster {

BalancerRegistry& BalancerRegistry::instance() {
  static BalancerRegistry* registry = [] {
    auto* r = new BalancerRegistry();
    detail::register_builtin_balancers(*r);
    register_extra_balancers(*r);
    return r;
  }();
  return *registry;
}

std::unique_ptr<LoadBalancer> make_balancer(std::string_view name,
                                            BalancerParams params) {
  return BalancerRegistry::instance().create(name, params);
}

}  // namespace whisk::cluster
