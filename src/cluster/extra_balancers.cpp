// The two balancers added through the open registry rather than the
// original closed enum — the extension recipe for new balancers: subclass
// LoadBalancer in a .cpp, expose one registration function, call it from
// the registry bootstrap (or at runtime). Both are heterogeneity-aware:
// they weight by each node's core count from the NodeView, so a
// mixed-capacity fleet loads big boxes proportionally instead of equally.
#include <limits>

#include "cluster/balancer_registry.h"
#include "util/check.h"

namespace whisk::cluster {
namespace {

// Capacity-aware least-loaded over a view: smallest
// (queued + executing) / cores ratio, ties towards the lower view index.
std::size_t weighted_least_loaded(const NodeView& nodes) {
  std::size_t best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto load = static_cast<double>(nodes[i].load());
    const int cores = nodes[i].cores();
    WHISK_CHECK(cores > 0, "node with no cores");
    const double score = load / static_cast<double>(cores);
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

// Capacity-aware least-loaded: picks the node with the smallest
// (queued + executing) / cores ratio, so a half-busy 16-core box beats an
// equally-backlogged 2-core one. Ties break towards the lower index, like
// the unweighted variant.
class WeightedLeastLoadedBalancer final : public LoadBalancer {
 public:
  std::size_t pick(const workload::CallRequest& call,
                   const NodeView& nodes) override {
    (void)call;
    WHISK_CHECK(!nodes.empty(), "no routable nodes");
    return weighted_least_loaded(nodes);
  }
  std::string_view name() const override { return "weighted-least-loaded"; }
};

// Join-Idle-Queue (Lu et al.): route to a node with no queued or executing
// work if one exists, scanning from a rotating cursor so consecutive idle
// picks spread over the fleet. When nobody is idle, fall back to
// weighted-least-loaded (the classic JIQ falls back to random; the
// deterministic capacity-normalized fallback keeps seeded runs reproducible
// and weights heterogeneous fleets correctly).
class JoinIdleQueueBalancer final : public LoadBalancer {
 public:
  std::size_t pick(const workload::CallRequest& call,
                   const NodeView& nodes) override {
    (void)call;
    WHISK_CHECK(!nodes.empty(), "no routable nodes");
    const std::size_t n = nodes.size();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t idx = (cursor_ + k) % n;
      if (nodes[idx].load() == 0) {
        cursor_ = idx + 1;
        return idx;
      }
    }
    return weighted_least_loaded(nodes);
  }
  std::string_view name() const override { return "join-idle-queue"; }

 private:
  std::size_t cursor_ = 0;
};

}  // namespace

void register_extra_balancers(BalancerRegistry& registry) {
  registry.register_factory("weighted-least-loaded",
                            [](const BalancerParams&) {
                              return std::make_unique<
                                  WeightedLeastLoadedBalancer>();
                            });
  registry.register_factory("join-idle-queue", [](const BalancerParams&) {
    return std::make_unique<JoinIdleQueueBalancer>();
  });
  registry.register_alias("jiq", "join-idle-queue");
}

}  // namespace whisk::cluster
