// The two balancers added through the open registry rather than the
// original closed enum — the extension recipe for new balancers: subclass
// LoadBalancer in a .cpp, expose one registration function, call it from
// the registry bootstrap (or at runtime).
#include <limits>

#include "cluster/balancer_registry.h"
#include "util/check.h"

namespace whisk::cluster {
namespace {

// Capacity-aware least-loaded: picks the invoker with the smallest
// (queued + executing) / cores ratio, so a half-busy 16-core box beats an
// equally-backlogged 2-core one. Ties break towards the lower index, like
// the unweighted variant.
class WeightedLeastLoadedBalancer final : public LoadBalancer {
 public:
  std::size_t pick(const workload::CallRequest& call,
                   const std::vector<node::Invoker*>& invokers) override {
    (void)call;
    WHISK_CHECK(!invokers.empty(), "no invokers");
    std::size_t best = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < invokers.size(); ++i) {
      const auto load = static_cast<double>(invokers[i]->queue_length() +
                                            invokers[i]->executing());
      const int cores = invokers[i]->params().cores;
      WHISK_CHECK(cores > 0, "invoker with no cores");
      const double score = load / static_cast<double>(cores);
      if (score < best_score) {
        best_score = score;
        best = i;
      }
    }
    return best;
  }
  std::string_view name() const override { return "weighted-least-loaded"; }
};

// Join-Idle-Queue (Lu et al.): route to an invoker with no queued or
// executing work if one exists, scanning from a rotating cursor so
// consecutive idle picks spread over the fleet. When nobody is idle, fall
// back to least-loaded (the classic JIQ falls back to random; the
// deterministic fallback keeps seeded runs reproducible).
class JoinIdleQueueBalancer final : public LoadBalancer {
 public:
  std::size_t pick(const workload::CallRequest& call,
                   const std::vector<node::Invoker*>& invokers) override {
    (void)call;
    WHISK_CHECK(!invokers.empty(), "no invokers");
    const std::size_t n = invokers.size();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t idx = (cursor_ + k) % n;
      if (invokers[idx]->queue_length() + invokers[idx]->executing() == 0) {
        cursor_ = idx + 1;
        return idx;
      }
    }
    std::size_t best = 0;
    std::size_t best_load = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t load =
          invokers[i]->queue_length() + invokers[i]->executing();
      if (load < best_load) {
        best_load = load;
        best = i;
      }
    }
    return best;
  }
  std::string_view name() const override { return "join-idle-queue"; }

 private:
  std::size_t cursor_ = 0;
};

}  // namespace

void register_extra_balancers(BalancerRegistry& registry) {
  registry.register_factory("weighted-least-loaded",
                            [](const BalancerParams&) {
                              return std::make_unique<
                                  WeightedLeastLoadedBalancer>();
                            });
  registry.register_factory("join-idle-queue", [](const BalancerParams&) {
    return std::make_unique<JoinIdleQueueBalancer>();
  });
  registry.register_alias("jiq", "join-idle-queue");
}

}  // namespace whisk::cluster
