#pragma once

// Critical-path priority ("critical-path"): the first DAG-aware policy.
// Workflow stages arrive annotated with cp_remaining, the expected work
// (reference medians) left on their longest downstream path; serving the
// largest remainder first is LPT list scheduling on the workflow level, so
// the stages every successor is waiting on clear the queue before leaf
// work that can overlap with anything.
//
//   priority = -cp_remaining + epsilon * r'(i)
//
// Independent calls (cp_remaining = 0) degrade to FIFO among themselves and
// sort behind any workflow stage, which is exactly the intent: work that
// gates other work goes first. The epsilon * r'(i) term both breaks ties
// FIFO-style and ages the queue, so no stage class starves.

#include "core/policy_registry.h"

namespace whisk::core {

void register_critical_path_policy(PolicyRegistry& registry);

}  // namespace whisk::core
