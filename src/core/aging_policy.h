#pragma once

// SJF-with-aging ("sjf-aging"): the first policy added through the open
// registry rather than the paper's closed enum. Serves as the template for
// new policies — subclass core::Policy in a .cpp, expose one registration
// function, and call it from the registry bootstrap (or at runtime).
//
//   priority = E(p(i)) + w * r'(i)
//
// With w = 0 this is exactly SEPT (shortest expected processing time,
// starvation possible); with w = 1 it is exactly EECT. Small positive w
// keeps SEPT's short-call favoritism while aging waiting calls: a long call
// received at r' can only be overtaken by calls whose expected runtime
// undercuts it by more than w * (their lateness), so every call eventually
// reaches the head of the queue.

#include "core/policy_registry.h"

namespace whisk::core {

void register_sjf_aging_policy(PolicyRegistry& registry);

}  // namespace whisk::core
