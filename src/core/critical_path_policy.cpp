#include "core/critical_path_policy.h"

#include <memory>

namespace whisk::core {
namespace {

class CriticalPathPolicy final : public Policy {
 public:
  double priority(const PolicyContext& ctx) const override {
    // Bursts last tens of seconds and cp_remaining is tenths of seconds,
    // so 1e-6 * r' never outweighs a real critical-path difference while
    // still ordering equal-remainder calls by arrival.
    return -ctx.cp_remaining + 1e-6 * ctx.received;
  }
  std::string_view name() const override { return "critical-path"; }
  // The receive-time term grows without bound while cp_remaining is
  // bounded by the DAG, so every call eventually outranks new arrivals.
  bool starvation_free() const override { return true; }
};

}  // namespace

void register_critical_path_policy(PolicyRegistry& registry) {
  registry.register_factory("critical-path", [](const PolicyParams&) {
    return std::make_unique<CriticalPathPolicy>();
  });
  registry.register_alias("cp", "critical-path");
}

}  // namespace whisk::core
