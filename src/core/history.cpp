#include "core/history.h"

#include <algorithm>

#include "util/check.h"

namespace whisk::core {

RuntimeHistory::RuntimeHistory(std::size_t window) : window_(window) {
  WHISK_CHECK(window > 0, "history window must be positive");
}

void RuntimeHistory::register_fc_window(sim::SimTime window_t) {
  WHISK_CHECK(window_t >= 0.0, "negative FC window");
  prune_horizon_ = std::max(prune_horizon_, window_t);
}

void RuntimeHistory::register_arrival_window(sim::SimTime window_t) {
  WHISK_CHECK(window_t >= 0.0, "negative arrival window");
  arrival_horizon_ = std::max(arrival_horizon_, window_t);
}

RuntimeHistory::FnRecord& RuntimeHistory::record_for(
    workload::FunctionId fn) {
  WHISK_CHECK(fn >= 0, "invalid function id");
  const auto idx = static_cast<std::size_t>(fn);
  while (records_.size() <= idx) records_.emplace_back(window_);
  return records_[idx];
}

const RuntimeHistory::FnRecord* RuntimeHistory::find(
    workload::FunctionId fn) const {
  if (fn < 0 || static_cast<std::size_t>(fn) >= records_.size()) {
    return nullptr;
  }
  return &records_[static_cast<std::size_t>(fn)];
}

void RuntimeHistory::record_runtime(workload::FunctionId fn,
                                    sim::SimTime runtime,
                                    sim::SimTime completion_time) {
  WHISK_CHECK(runtime >= 0.0, "negative runtime");
  FnRecord& rec = record_for(fn);
  rec.runtimes.push(runtime);

  WHISK_CHECK(rec.completions.empty() ||
                  rec.completions.back() <= completion_time,
              "completion times must be recorded in order");
  rec.completions.push_back(completion_time);

  // Timestamps older than the largest window any FC query can ask for are
  // unreachable (queries happen at now >= completion_time), so drop them.
  if (prune_horizon_ != sim::kNever) {
    const sim::SimTime cutoff = completion_time - prune_horizon_;
    while (!rec.completions.empty() && rec.completions.front() < cutoff) {
      rec.completions.pop_front();
    }
  }
}

void RuntimeHistory::record_arrival(workload::FunctionId fn,
                                    sim::SimTime time) {
  FnRecord& rec = record_for(fn);
  rec.last_arrival = time;
  if (arrival_horizon_ < 0.0) return;  // hot path: timestamps not wanted
  WHISK_CHECK(rec.arrivals.empty() || rec.arrivals.back() <= time,
              "arrival times must be recorded in order");
  rec.arrivals.push_back(time);
  const sim::SimTime cutoff = time - arrival_horizon_;
  while (!rec.arrivals.empty() && rec.arrivals.front() < cutoff) {
    rec.arrivals.pop_front();
  }
}

double RuntimeHistory::expected_runtime(workload::FunctionId fn) const {
  const FnRecord* rec = find(fn);
  return rec == nullptr ? 0.0 : rec->runtimes.mean();
}

sim::SimTime RuntimeHistory::previous_arrival(workload::FunctionId fn) const {
  const FnRecord* rec = find(fn);
  return rec == nullptr ? 0.0 : rec->last_arrival;
}

std::size_t RuntimeHistory::completions_within(workload::FunctionId fn,
                                               sim::SimTime window_t,
                                               sim::SimTime now) const {
  // Timestamps beyond the registered horizon have been pruned; answering a
  // wider query would silently undercount.
  WHISK_CHECK(prune_horizon_ == sim::kNever || window_t <= prune_horizon_,
              "completions_within window exceeds the registered FC horizon");
  const FnRecord* rec = find(fn);
  if (rec == nullptr) return 0;
  const auto& completions = rec->completions;
  const auto first =
      std::lower_bound(completions.begin(), completions.end(),
                       now - window_t);
  return static_cast<std::size_t>(completions.end() - first);
}

std::size_t RuntimeHistory::arrivals_within(workload::FunctionId fn,
                                            sim::SimTime window_t,
                                            sim::SimTime now) const {
  // Arrival timestamps are only retained inside the registered horizon;
  // answering without one (or past it) would silently undercount.
  WHISK_CHECK(arrival_horizon_ >= 0.0 && window_t <= arrival_horizon_,
              "arrivals_within window exceeds the registered arrival "
              "horizon (register_arrival_window first)");
  const FnRecord* rec = find(fn);
  if (rec == nullptr) return 0;
  const auto& arrivals = rec->arrivals;
  const auto first =
      std::lower_bound(arrivals.begin(), arrivals.end(), now - window_t);
  return static_cast<std::size_t>(arrivals.end() - first);
}

std::size_t RuntimeHistory::samples(workload::FunctionId fn) const {
  const FnRecord* rec = find(fn);
  return rec == nullptr ? 0 : rec->runtimes.size();
}

std::size_t RuntimeHistory::completions_stored(
    workload::FunctionId fn) const {
  const FnRecord* rec = find(fn);
  return rec == nullptr ? 0 : rec->completions.size();
}

std::size_t RuntimeHistory::arrivals_stored(workload::FunctionId fn) const {
  const FnRecord* rec = find(fn);
  return rec == nullptr ? 0 : rec->arrivals.size();
}

}  // namespace whisk::core
