#include "core/history.h"

#include <algorithm>

#include "util/check.h"

namespace whisk::core {

RuntimeHistory::RuntimeHistory(std::size_t window) : window_(window) {
  WHISK_CHECK(window > 0, "history window must be positive");
}

void RuntimeHistory::record_runtime(workload::FunctionId fn,
                                    sim::SimTime runtime,
                                    sim::SimTime completion_time) {
  WHISK_CHECK(runtime >= 0.0, "negative runtime");
  auto [it, inserted] =
      runtimes_.try_emplace(fn, util::RingBuffer<double>(window_));
  it->second.push(runtime);

  auto& completions = completions_[fn];
  WHISK_CHECK(completions.empty() || completions.back() <= completion_time,
              "completion times must be recorded in order");
  completions.push_back(completion_time);
}

void RuntimeHistory::record_arrival(workload::FunctionId fn,
                                    sim::SimTime time) {
  last_arrival_[fn] = time;
}

double RuntimeHistory::expected_runtime(workload::FunctionId fn) const {
  auto it = runtimes_.find(fn);
  if (it == runtimes_.end() || it->second.empty()) return 0.0;
  double sum = 0.0;
  for (double r : it->second.values()) sum += r;
  return sum / static_cast<double>(it->second.size());
}

sim::SimTime RuntimeHistory::previous_arrival(workload::FunctionId fn) const {
  auto it = last_arrival_.find(fn);
  return it == last_arrival_.end() ? 0.0 : it->second;
}

std::size_t RuntimeHistory::completions_within(workload::FunctionId fn,
                                               sim::SimTime window_t,
                                               sim::SimTime now) const {
  auto it = completions_.find(fn);
  if (it == completions_.end()) return 0;
  const auto& deque = it->second;
  const auto first =
      std::lower_bound(deque.begin(), deque.end(), now - window_t);
  return static_cast<std::size_t>(deque.end() - first);
}

std::size_t RuntimeHistory::samples(workload::FunctionId fn) const {
  auto it = runtimes_.find(fn);
  return it == runtimes_.end() ? 0 : it->second.size();
}

}  // namespace whisk::core
