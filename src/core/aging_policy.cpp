#include "core/aging_policy.h"

#include <memory>

namespace whisk::core {
namespace {

class SjfAgingPolicy final : public Policy {
 public:
  explicit SjfAgingPolicy(double aging_weight)
      : aging_weight_(aging_weight) {}

  double priority(const PolicyContext& ctx) const override {
    return ctx.history->expected_runtime(ctx.function) +
           aging_weight_ * ctx.received;
  }
  std::string_view name() const override { return "sjf-aging"; }
  // Any positive weight bounds how far a call can be overtaken: a call
  // received at r' outranks every call received after
  // r' + E(p)/w, so it cannot wait forever.
  bool starvation_free() const override { return aging_weight_ > 0.0; }

  [[nodiscard]] double aging_weight() const { return aging_weight_; }

 private:
  double aging_weight_;
};

}  // namespace

void register_sjf_aging_policy(PolicyRegistry& registry) {
  registry.register_factory("sjf-aging", [](const PolicyParams& params) {
    return std::make_unique<SjfAgingPolicy>(params.sjf_aging_weight);
  });
}

}  // namespace whisk::core
