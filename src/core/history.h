#pragma once

#include <deque>
#include <vector>

#include "sim/time.h"
#include "util/summed_ring_buffer.h"
#include "workload/function.h"

namespace whisk::core {

// Node-local historical data on function calls (paper Sec. IV).
//
// Holds, per function:
//   * the processing times of the <= `window` most recent finished calls
//     (default 10, the value [18] showed to be sufficient) -> E(p(i));
//   * the receive time of the most recent call -> r-bar(i) for RECT;
//   * the completion timestamps inside a sliding window -> #(f, -T) for FC.
//
// All estimates are node-level: they are fed by the invoker and never see
// network latency, exactly as in the paper.
//
// This sits on the priority hot path (one expected_runtime() per policy
// evaluation, millions per experiment), so the storage is a single dense
// per-function record vector indexed by FunctionId — one bounds check
// instead of three hash lookups — and E(p(i)) is an O(1) running-sum read
// (util::SummedRingBuffer) instead of a per-call window scan.
class RuntimeHistory {
 public:
  explicit RuntimeHistory(std::size_t window = 10);

  // Declare that FC-style queries will use sliding windows of at most
  // `window_t` seconds. Enables pruning: completion timestamps older than
  // the largest registered window are dropped as new completions arrive, so
  // memory stays bounded on long runs. Without any registered window every
  // timestamp is kept (safe for arbitrary queries, unbounded).
  void register_fc_window(sim::SimTime window_t);

  // Declare that arrivals_within() will be queried with windows of at most
  // `window_t` seconds. Unlike completions, arrival *timestamps* are not
  // stored at all unless a window is registered — record_arrival() sits on
  // the node hot path, and only controller-side histories (autoscalers) pay
  // for the deque. Stored timestamps are pruned past the largest registered
  // window, so memory stays bounded.
  void register_arrival_window(sim::SimTime window_t);

  // Record the measured processing time of a finished call of `fn` that
  // completed at `completion_time`.
  void record_runtime(workload::FunctionId fn, sim::SimTime runtime,
                      sim::SimTime completion_time);

  // Record that a call of `fn` was received (pulled from Kafka) at `time`.
  // Call this *after* computing the call's priority so RECT sees the
  // previous call's receive time.
  void record_arrival(workload::FunctionId fn, sim::SimTime time);

  // E(p(i)): average processing time over the <= window most recent
  // finished calls of `fn`; 0 if the function has never finished a call
  // ("if a function has never been executed, we set its estimated execution
  // time to 0", Sec. IV-B). O(1).
  [[nodiscard]] double expected_runtime(workload::FunctionId fn) const;

  // r-bar(i): the moment the previous call of `fn` was received; 0 if none.
  [[nodiscard]] sim::SimTime previous_arrival(workload::FunctionId fn) const;

  // #(f, -T): number of calls of `fn` concluded during the last `window_t`
  // seconds before `now`. `window_t` must not exceed the largest registered
  // FC window once one is registered (older timestamps may be pruned).
  [[nodiscard]] std::size_t completions_within(workload::FunctionId fn,
                                               sim::SimTime window_t,
                                               sim::SimTime now) const;

  // Number of calls of `fn` received during the last `window_t` seconds
  // before `now`. Requires a registered arrival window of at least
  // `window_t` (timestamps outside it are not retained).
  [[nodiscard]] std::size_t arrivals_within(workload::FunctionId fn,
                                            sim::SimTime window_t,
                                            sim::SimTime now) const;

  [[nodiscard]] std::size_t samples(workload::FunctionId fn) const;
  [[nodiscard]] std::size_t window() const { return window_; }

  // Completion timestamps currently retained for `fn` (telemetry/tests).
  [[nodiscard]] std::size_t completions_stored(workload::FunctionId fn) const;
  // Arrival timestamps currently retained for `fn` (telemetry/tests);
  // always 0 unless an arrival window is registered.
  [[nodiscard]] std::size_t arrivals_stored(workload::FunctionId fn) const;

 private:
  struct FnRecord {
    explicit FnRecord(std::size_t window) : runtimes(window) {}

    util::SummedRingBuffer runtimes;
    sim::SimTime last_arrival = 0.0;
    // Completion timestamps, oldest first (record_runtime is called in
    // simulation-time order per function, so each deque stays sorted and
    // queries can binary-search). Pruned past the registered FC horizon.
    std::deque<sim::SimTime> completions;
    // Arrival timestamps, oldest first; empty unless an arrival window is
    // registered. Pruned past the registered arrival horizon.
    std::deque<sim::SimTime> arrivals;
  };

  // Grow-on-demand dense access for recording.
  FnRecord& record_for(workload::FunctionId fn);
  // Read access; nullptr when `fn` has never been recorded.
  [[nodiscard]] const FnRecord* find(workload::FunctionId fn) const;

  std::size_t window_;
  sim::SimTime prune_horizon_ = sim::kNever;  // kNever: keep everything
  // Negative: arrival timestamps are not stored (the default — the node
  // hot path records only last_arrival).
  sim::SimTime arrival_horizon_ = -1.0;
  std::vector<FnRecord> records_;
};

}  // namespace whisk::core
