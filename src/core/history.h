#pragma once

#include <deque>
#include <unordered_map>

#include "sim/time.h"
#include "util/ring_buffer.h"
#include "workload/function.h"

namespace whisk::core {

// Node-local historical data on function calls (paper Sec. IV).
//
// Holds, per function:
//   * the processing times of the <= `window` most recent finished calls
//     (default 10, the value [18] showed to be sufficient) -> E(p(i));
//   * the receive time of the most recent call -> r-bar(i) for RECT;
//   * the completion timestamps inside a sliding window -> #(f, -T) for FC.
//
// All estimates are node-level: they are fed by the invoker and never see
// network latency, exactly as in the paper.
class RuntimeHistory {
 public:
  explicit RuntimeHistory(std::size_t window = 10);

  // Record the measured processing time of a finished call of `fn` that
  // completed at `completion_time`.
  void record_runtime(workload::FunctionId fn, sim::SimTime runtime,
                      sim::SimTime completion_time);

  // Record that a call of `fn` was received (pulled from Kafka) at `time`.
  // Call this *after* computing the call's priority so RECT sees the
  // previous call's receive time.
  void record_arrival(workload::FunctionId fn, sim::SimTime time);

  // E(p(i)): average processing time over the <= window most recent
  // finished calls of `fn`; 0 if the function has never finished a call
  // ("if a function has never been executed, we set its estimated execution
  // time to 0", Sec. IV-B).
  [[nodiscard]] double expected_runtime(workload::FunctionId fn) const;

  // r-bar(i): the moment the previous call of `fn` was received; 0 if none.
  [[nodiscard]] sim::SimTime previous_arrival(workload::FunctionId fn) const;

  // #(f, -T): number of calls of `fn` concluded during the last `window_t`
  // seconds before `now`.
  [[nodiscard]] std::size_t completions_within(workload::FunctionId fn,
                                               sim::SimTime window_t,
                                               sim::SimTime now) const;

  [[nodiscard]] std::size_t samples(workload::FunctionId fn) const;
  [[nodiscard]] std::size_t window() const { return window_; }

 private:
  std::size_t window_;
  std::unordered_map<workload::FunctionId, util::RingBuffer<double>>
      runtimes_;
  std::unordered_map<workload::FunctionId, sim::SimTime> last_arrival_;
  // Completion timestamps, oldest first (record_runtime is called in
  // simulation-time order, so each deque stays sorted and queries can
  // binary-search). Experiments are minutes long, so no pruning is needed.
  std::unordered_map<workload::FunctionId, std::deque<sim::SimTime>>
      completions_;
};

}  // namespace whisk::core
