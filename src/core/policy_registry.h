#pragma once

#include <memory>
#include <string_view>

#include "core/policy.h"
#include "util/registry.h"

namespace whisk::core {

// The open set of node-level scheduling policies, keyed by canonical
// lowercase name. The paper's five policies plus sjf-aging are registered
// on first use; anything else can be added at runtime:
//
//   PolicyRegistry::instance().register_factory(
//       "my-policy", [](const PolicyParams&) {
//         return std::make_unique<MyPolicy>();
//       });
//   auto p = PolicyRegistry::instance().create("my-policy");
//
// Unknown names abort with a message listing every registered name.
class PolicyRegistry final
    : public util::FactoryRegistry<Policy, const PolicyParams&> {
 public:
  static PolicyRegistry& instance();

  // Convenience: create with default params.
  using FactoryRegistry::create;
  [[nodiscard]] std::unique_ptr<Policy> create(std::string_view name) const {
    return create(name, PolicyParams{});
  }

 private:
  PolicyRegistry() : FactoryRegistry("policy") {}
};

namespace detail {
// Defined in policy.cpp: registers fifo/sept/eect/rect/fc (+ alias
// fair-choice -> fc) in the paper's figure order.
void register_builtin_policies(PolicyRegistry& registry);
}  // namespace detail

// Defined in aging_policy.cpp: registers "sjf-aging".
void register_sjf_aging_policy(PolicyRegistry& registry);

// Defined in critical_path_policy.cpp: registers "critical-path" (+ alias
// "cp").
void register_critical_path_policy(PolicyRegistry& registry);

}  // namespace whisk::core
