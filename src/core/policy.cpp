#include "core/policy.h"

#include <algorithm>
#include <cctype>

#include "util/check.h"

namespace whisk::core {
namespace {

class FifoPolicy final : public Policy {
 public:
  double priority(const PolicyContext& ctx) const override {
    return ctx.received;
  }
  PolicyKind kind() const override { return PolicyKind::kFifo; }
  bool starvation_free() const override { return true; }
};

class SeptPolicy final : public Policy {
 public:
  double priority(const PolicyContext& ctx) const override {
    return ctx.history->expected_runtime(ctx.function);
  }
  PolicyKind kind() const override { return PolicyKind::kSept; }
  bool starvation_free() const override { return false; }
};

class EectPolicy final : public Policy {
 public:
  double priority(const PolicyContext& ctx) const override {
    return ctx.received + ctx.history->expected_runtime(ctx.function);
  }
  PolicyKind kind() const override { return PolicyKind::kEect; }
  bool starvation_free() const override { return true; }
};

class RectPolicy final : public Policy {
 public:
  double priority(const PolicyContext& ctx) const override {
    return ctx.history->previous_arrival(ctx.function) +
           ctx.history->expected_runtime(ctx.function);
  }
  PolicyKind kind() const override { return PolicyKind::kRect; }
  bool starvation_free() const override { return true; }
};

class FcPolicy final : public Policy {
 public:
  explicit FcPolicy(sim::SimTime window) : window_(window) {}
  double priority(const PolicyContext& ctx) const override {
    const auto count = ctx.history->completions_within(
        ctx.function, window_, ctx.received);
    return static_cast<double>(count) *
           ctx.history->expected_runtime(ctx.function);
  }
  PolicyKind kind() const override { return PolicyKind::kFc; }
  bool starvation_free() const override { return false; }

 private:
  sim::SimTime window_;
};

}  // namespace

std::string_view to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFifo:
      return "FIFO";
    case PolicyKind::kSept:
      return "SEPT";
    case PolicyKind::kEect:
      return "EECT";
    case PolicyKind::kRect:
      return "RECT";
    case PolicyKind::kFc:
      return "FC";
  }
  return "?";
}

PolicyKind policy_from_string(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "fifo") return PolicyKind::kFifo;
  if (lower == "sept") return PolicyKind::kSept;
  if (lower == "eect") return PolicyKind::kEect;
  if (lower == "rect") return PolicyKind::kRect;
  if (lower == "fc" || lower == "fair-choice") return PolicyKind::kFc;
  WHISK_CHECK(false, "unknown policy name");
  return PolicyKind::kFifo;
}

const std::vector<PolicyKind>& all_policies() {
  static const std::vector<PolicyKind> kAll = {
      PolicyKind::kFifo, PolicyKind::kSept, PolicyKind::kEect,
      PolicyKind::kRect, PolicyKind::kFc};
  return kAll;
}

std::unique_ptr<Policy> make_policy(PolicyKind kind, PolicyParams params) {
  switch (kind) {
    case PolicyKind::kFifo:
      return std::make_unique<FifoPolicy>();
    case PolicyKind::kSept:
      return std::make_unique<SeptPolicy>();
    case PolicyKind::kEect:
      return std::make_unique<EectPolicy>();
    case PolicyKind::kRect:
      return std::make_unique<RectPolicy>();
    case PolicyKind::kFc:
      return std::make_unique<FcPolicy>(params.fc_window);
  }
  WHISK_CHECK(false, "unhandled policy kind");
  return nullptr;
}

}  // namespace whisk::core
