#include "core/policy.h"

#include <array>
#include <utility>

#include "core/policy_registry.h"
#include "util/check.h"
#include "util/registry.h"

namespace whisk::core {
namespace {

class FifoPolicy final : public Policy {
 public:
  double priority(const PolicyContext& ctx) const override {
    return ctx.received;
  }
  std::string_view name() const override { return "fifo"; }
  bool starvation_free() const override { return true; }
};

class SeptPolicy final : public Policy {
 public:
  double priority(const PolicyContext& ctx) const override {
    return ctx.history->expected_runtime(ctx.function);
  }
  std::string_view name() const override { return "sept"; }
  bool starvation_free() const override { return false; }
};

class EectPolicy final : public Policy {
 public:
  double priority(const PolicyContext& ctx) const override {
    return ctx.received + ctx.history->expected_runtime(ctx.function);
  }
  std::string_view name() const override { return "eect"; }
  bool starvation_free() const override { return true; }
};

class RectPolicy final : public Policy {
 public:
  double priority(const PolicyContext& ctx) const override {
    return ctx.history->previous_arrival(ctx.function) +
           ctx.history->expected_runtime(ctx.function);
  }
  std::string_view name() const override { return "rect"; }
  bool starvation_free() const override { return true; }
};

class FcPolicy final : public Policy {
 public:
  explicit FcPolicy(sim::SimTime window) : window_(window) {}
  double priority(const PolicyContext& ctx) const override {
    const auto count = ctx.history->completions_within(
        ctx.function, window_, ctx.received);
    return static_cast<double>(count) *
           ctx.history->expected_runtime(ctx.function);
  }
  std::string_view name() const override { return "fc"; }
  bool starvation_free() const override { return false; }

 private:
  sim::SimTime window_;
};

// The deprecated enum maps to names via this table; construction always
// goes through the registry.
struct KindName {
  PolicyKind kind;
  std::string_view name;   // canonical registry name
  std::string_view label;  // figure label
};

constexpr std::array<KindName, 5> kKindNames = {{
    {PolicyKind::kFifo, "fifo", "FIFO"},
    {PolicyKind::kSept, "sept", "SEPT"},
    {PolicyKind::kEect, "eect", "EECT"},
    {PolicyKind::kRect, "rect", "RECT"},
    {PolicyKind::kFc, "fc", "FC"},
}};

}  // namespace

namespace detail {

void register_builtin_policies(PolicyRegistry& registry) {
  registry.register_factory("fifo", [](const PolicyParams&) {
    return std::make_unique<FifoPolicy>();
  });
  registry.register_factory("sept", [](const PolicyParams&) {
    return std::make_unique<SeptPolicy>();
  });
  registry.register_factory("eect", [](const PolicyParams&) {
    return std::make_unique<EectPolicy>();
  });
  registry.register_factory("rect", [](const PolicyParams&) {
    return std::make_unique<RectPolicy>();
  });
  registry.register_factory("fc", [](const PolicyParams& params) {
    return std::make_unique<FcPolicy>(params.fc_window);
  });
  registry.register_alias("fair-choice", "fc");
}

}  // namespace detail

std::string policy_label(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

std::string_view to_string(PolicyKind kind) {
  for (const auto& entry : kKindNames) {
    if (entry.kind == kind) return entry.label;
  }
  return "?";
}

std::string_view registry_name(PolicyKind kind) {
  for (const auto& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "?";
}

PolicyKind policy_from_string(std::string_view name) {
  const std::string lower = util::ascii_lower(name);
  for (const auto& entry : kKindNames) {
    if (lower == entry.name) return entry.kind;
  }
  if (lower == "fair-choice") return PolicyKind::kFc;
  // Don't list the full registry here: this shim can only name the paper's
  // five policies, and offering e.g. "sjf-aging" as valid input would be a
  // lie. Registry-only policies need make_policy(name)/PolicyRegistry.
  std::string known;
  for (const auto& entry : kKindNames) {
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  WHISK_CHECK(false, ("unknown policy \"" + std::string(name) +
                      "\"; the PolicyKind shim only knows the paper set: " +
                      known + " (alias fair-choice); other registered " +
                      "policies are reachable via make_policy(name)")
                         .c_str());
  return PolicyKind::kFifo;
}

const std::vector<PolicyKind>& all_policies() {
  static const std::vector<PolicyKind> kAll = {
      PolicyKind::kFifo, PolicyKind::kSept, PolicyKind::kEect,
      PolicyKind::kRect, PolicyKind::kFc};
  return kAll;
}

std::unique_ptr<Policy> make_policy(std::string_view name,
                                    PolicyParams params) {
  return PolicyRegistry::instance().create(name, params);
}

std::unique_ptr<Policy> make_policy(PolicyKind kind, PolicyParams params) {
  return make_policy(registry_name(kind), params);
}

}  // namespace whisk::core
