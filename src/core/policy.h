#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/history.h"
#include "sim/time.h"
#include "workload/function.h"

namespace whisk::core {

// Everything a policy may consult when prioritizing a call.
struct PolicyContext {
  sim::SimTime received = 0.0;  // r'(i): when the invoker pulled the call
  workload::FunctionId function = workload::kInvalidFunction;
  const RuntimeHistory* history = nullptr;
  // Expected remaining critical-path work when the call is a workflow
  // stage (CallRequest::cp_hint); 0 for independent calls. Only
  // DAG-aware policies read it.
  double cp_remaining = 0.0;
};

// A node-level scheduling policy (paper Sec. IV). A policy maps an incoming
// call to a static numeric priority; the invoker serves pending calls in
// ascending priority order (ties broken by arrival). Priorities are
// computed once, when the call is received, and never change — exactly the
// paper's simplification.
//
// Policies are constructed by canonical string name through
// core::PolicyRegistry (see policy_registry.h). The paper's five policies:
//   fifo  priority = r'(i), the receive time
//   sept  priority = E(p(i))
//   eect  priority = r'(i) + E(p(i))
//   rect  priority = r-bar(i) + E(p(i))
//   fc    priority = #(f(i), -T) * E(p(i))
class Policy {
 public:
  virtual ~Policy() = default;

  // Lower priority value = served earlier.
  [[nodiscard]] virtual double priority(const PolicyContext& ctx) const = 0;

  // Canonical registry name ("fifo", "sept", ..., "sjf-aging").
  [[nodiscard]] virtual std::string_view name() const = 0;

  // EECT and RECT are starvation-free (paper Sec. IV); FIFO trivially so.
  [[nodiscard]] virtual bool starvation_free() const = 0;
};

struct PolicyParams {
  // FC's sliding window T ("for T being a long time interval, e.g. 60
  // seconds").
  sim::SimTime fc_window = 60.0;
  // sjf-aging: weight of the receive time relative to E(p(i)). 0 degrades
  // to SEPT (starvation possible); 1 is exactly EECT; small positive values
  // favor short calls while still guaranteeing every call eventually runs.
  double sjf_aging_weight = 0.1;
};

// Uppercased figure label for a canonical policy name ("fifo" -> "FIFO").
[[nodiscard]] std::string policy_label(std::string_view name);

// ---------------------------------------------------------------------------
// Deprecated closed-enum shim. Kept only because the paper-pinned tests and
// figure tables reference the original five policies by enum; new code must
// use string names and core::PolicyRegistry. The shim is a pure name table:
// no construction dispatch happens on the enum.
// ---------------------------------------------------------------------------
enum class PolicyKind {
  kFifo,
  kSept,
  kEect,
  kRect,
  kFc,
};

// Figure label ("FIFO", "SEPT", ...).
[[nodiscard]] std::string_view to_string(PolicyKind kind);

// Canonical registry name ("fifo", "sept", ...).
[[nodiscard]] std::string_view registry_name(PolicyKind kind);

// Parse "fifo"/"sept"/"eect"/"rect"/"fc" (case-insensitive; "fair-choice"
// is accepted for fc). Aborts on an unknown name with a message that echoes
// the input and lists every registered policy.
[[nodiscard]] PolicyKind policy_from_string(std::string_view name);

// The paper's five policies, in the order its figures list them.
[[nodiscard]] const std::vector<PolicyKind>& all_policies();

// Construct a policy. The string overload is the real API (any registered
// name); the PolicyKind overload is the deprecated paper-set shim.
[[nodiscard]] std::unique_ptr<Policy> make_policy(std::string_view name,
                                                  PolicyParams params = {});
[[nodiscard]] std::unique_ptr<Policy> make_policy(PolicyKind kind,
                                                  PolicyParams params = {});

}  // namespace whisk::core
