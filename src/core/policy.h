#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/history.h"
#include "sim/time.h"
#include "workload/function.h"

namespace whisk::core {

// The node-level scheduling policies of the paper (Sec. IV). A policy maps
// an incoming call to a static numeric priority; the invoker serves pending
// calls in ascending priority order (ties broken by arrival). Priorities
// are computed once, when the call is received, and never change — exactly
// the paper's simplification.
enum class PolicyKind {
  kFifo,  // priority = r'(i), the receive time
  kSept,  // priority = E(p(i))
  kEect,  // priority = r'(i) + E(p(i))
  kRect,  // priority = r-bar(i) + E(p(i))
  kFc,    // priority = #(f(i), -T) * E(p(i))
};

[[nodiscard]] std::string_view to_string(PolicyKind kind);

// Parse "fifo"/"sept"/"eect"/"rect"/"fc" (case-insensitive). Aborts on an
// unknown name.
[[nodiscard]] PolicyKind policy_from_string(std::string_view name);

// All policies, in the order the paper's figures list them.
[[nodiscard]] const std::vector<PolicyKind>& all_policies();

// Everything a policy may consult when prioritizing a call.
struct PolicyContext {
  sim::SimTime received = 0.0;  // r'(i): when the invoker pulled the call
  workload::FunctionId function = workload::kInvalidFunction;
  const RuntimeHistory* history = nullptr;
};

class Policy {
 public:
  virtual ~Policy() = default;

  // Lower priority value = served earlier.
  [[nodiscard]] virtual double priority(const PolicyContext& ctx) const = 0;

  [[nodiscard]] virtual PolicyKind kind() const = 0;
  [[nodiscard]] std::string_view name() const { return to_string(kind()); }

  // EECT and RECT are starvation-free (paper Sec. IV); FIFO trivially so.
  [[nodiscard]] virtual bool starvation_free() const = 0;
};

struct PolicyParams {
  // FC's sliding window T ("for T being a long time interval, e.g. 60
  // seconds").
  sim::SimTime fc_window = 60.0;
};

[[nodiscard]] std::unique_ptr<Policy> make_policy(PolicyKind kind,
                                                  PolicyParams params = {});

}  // namespace whisk::core
