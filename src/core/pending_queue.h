#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "util/check.h"

namespace whisk::core {

// The invoker's pending-call queue: a stable min-priority queue. The paper
// replaces OpenWhisk's simple FIFO with a priority queue whose keys come
// from the selected scheduling policy; equal-priority calls retain arrival
// order (which also makes the FIFO policy exactly FIFO).
template <typename T>
class PendingQueue {
 public:
  void push(double priority, T value) {
    heap_.push(Entry{priority, next_seq_++, std::move(value)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  [[nodiscard]] const T& top() const {
    WHISK_CHECK(!heap_.empty(), "top() on empty queue");
    return heap_.top().value;
  }

  [[nodiscard]] double top_priority() const {
    WHISK_CHECK(!heap_.empty(), "top_priority() on empty queue");
    return heap_.top().priority;
  }

  T pop() {
    WHISK_CHECK(!heap_.empty(), "pop() on empty queue");
    // std::priority_queue::top returns const&; the value is moved out via a
    // const_cast which is safe because the entry is removed immediately.
    T out = std::move(const_cast<Entry&>(heap_.top()).value);
    heap_.pop();
    return out;
  }

 private:
  struct Entry {
    double priority;
    std::uint64_t seq;
    T value;
    bool operator>(const Entry& other) const {
      if (priority != other.priority) return priority > other.priority;
      return seq > other.seq;
    }
  };

  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
};

}  // namespace whisk::core
