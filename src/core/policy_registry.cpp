#include "core/policy_registry.h"

namespace whisk::core {

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry* registry = [] {
    auto* r = new PolicyRegistry();
    detail::register_builtin_policies(*r);
    register_sjf_aging_policy(*r);
    register_critical_path_policy(*r);
    return r;
  }();
  return *registry;
}

}  // namespace whisk::core
