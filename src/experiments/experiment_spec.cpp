#include "experiments/experiment_spec.h"

#include <functional>
#include <utility>

#include "util/check.h"
#include "util/registry.h"

namespace whisk::experiments {
namespace {

// Value range per knob: physical rates/factors are non-negative; windows
// must be positive; counts must be whole and at least one. The checks also
// keep negative doubles away from the size_t/int casts below, where the
// conversion would be undefined.
enum class Range { kNonNegative, kPositive, kPositiveCount };

struct OverrideKnob {
  std::string name;
  std::function<void(node::NodeParams&, double)> apply;
  Range range = Range::kNonNegative;
};

// The named ablation knobs. Adding one is a single row here; the old API
// needed a new sentinel field threaded through every layer.
const std::vector<OverrideKnob>& override_table() {
  static const std::vector<OverrideKnob> kTable = {
      {"our_post_factor_loaded",
       [](node::NodeParams& p, double v) { p.our_post_factor_loaded = v; }},
      {"strain_per_container",
       [](node::NodeParams& p, double v) { p.strain_per_container = v; }},
      {"context_switch_beta",
       [](node::NodeParams& p, double v) { p.context_switch_beta = v; }},
      {"history_window",
       [](node::NodeParams& p, double v) {
         p.history_window = static_cast<std::size_t>(v);
       },
       Range::kPositiveCount},
      {"fc_window",
       [](node::NodeParams& p, double v) { p.policy.fc_window = v; },
       Range::kPositive},
      {"sjf_aging_weight",
       [](node::NodeParams& p, double v) { p.policy.sjf_aging_weight = v; }},
      {"dispatch_daemon_gate",
       [](node::NodeParams& p, double v) {
         p.dispatch_daemon_gate = static_cast<int>(v);
       },
       Range::kPositiveCount},
  };
  return kTable;
}

const OverrideKnob* find_knob(const std::string& name) {
  for (const auto& knob : override_table()) {
    if (knob.name == name) return &knob;
  }
  return nullptr;
}

}  // namespace

ExperimentSpec& ExperimentSpec::scheduler(SchedulerSpec spec) {
  scheduler_ = spec.normalized();
  return *this;
}

ExperimentSpec& ExperimentSpec::scheduler(std::string_view text) {
  scheduler_ = SchedulerSpec::parse(text);
  return *this;
}

ExperimentSpec& ExperimentSpec::cores(int value) {
  WHISK_CHECK(value > 0, "cores must be positive");
  cores_ = value;
  return *this;
}

ExperimentSpec& ExperimentSpec::nodes(int value) {
  WHISK_CHECK(value > 0, "nodes must be positive");
  WHISK_CHECK(!cluster_set_,
              "nodes() conflicts with an explicit cluster(); set the node "
              "counts in the ClusterSpec groups instead");
  nodes_ = value;
  nodes_set_ = true;
  return *this;
}

ExperimentSpec& ExperimentSpec::cluster(cluster::ClusterSpec spec) {
  WHISK_CHECK(!nodes_set_,
              "cluster() conflicts with nodes(); the ClusterSpec groups "
              "already size the fleet");
  cluster_ = spec.normalized();
  cluster_set_ = true;
  return *this;
}

ExperimentSpec& ExperimentSpec::cluster(std::string_view text) {
  return cluster(cluster::ClusterSpec::parse(text));
}

ExperimentSpec& ExperimentSpec::autoscaler(cluster::AutoscalerSpec spec) {
  autoscaler_ = spec.normalized();
  autoscaler_set_ = true;
  return *this;
}

ExperimentSpec& ExperimentSpec::autoscaler(std::string_view text) {
  return autoscaler(cluster::AutoscalerSpec::parse(text));
}

ExperimentSpec& ExperimentSpec::faults(std::vector<cluster::FaultSpec> specs) {
  for (auto& f : specs) f = f.normalized();
  faults_ = std::move(specs);
  faults_set_ = true;
  return *this;
}

ExperimentSpec& ExperimentSpec::faults(std::string_view text) {
  return faults(cluster::parse_fault_list(text));
}

ExperimentSpec& ExperimentSpec::resilience(cluster::ResilienceSpec spec) {
  resilience_ = spec.normalized();
  resilience_set_ = true;
  return *this;
}

ExperimentSpec& ExperimentSpec::workflow(workload::WorkflowSpec spec) {
  workflow_ = spec.normalized();
  workflow_set_ = true;
  return *this;
}

ExperimentSpec& ExperimentSpec::workflow(std::string_view text) {
  return workflow(workload::WorkflowSpec::parse(text));
}

ExperimentSpec& ExperimentSpec::resilience(std::string_view text) {
  return resilience(cluster::ResilienceSpec::parse(text));
}

cluster::ClusterSpec ExperimentSpec::cluster() const {
  cluster::ClusterSpec spec =
      cluster_set_ ? cluster_ : cluster::ClusterSpec::homogeneous(nodes_);
  if (autoscaler_set_) {
    // The spec-level autoscaler rides on top of the deployment, but a
    // contradictory pair is a loud error, not a silent win.
    WHISK_CHECK(!spec.autoscaler_set || spec.autoscaler == autoscaler_,
                ("the experiment sets autoscaler \"" +
                 autoscaler_.to_string() +
                 "\" but the cluster spec already carries \"" +
                 spec.autoscaler.to_string() + "\"; set it in one place")
                    .c_str());
    spec.autoscaler = autoscaler_;
    spec.autoscaler_set = true;
    // Both halves were normalized independently and the autoscaler section
    // interacts with no other, so the fold stays canonical.
  }
  bool refold = false;
  if (faults_set_) {
    WHISK_CHECK(!spec.faults_set && spec.faults.empty(),
                ("the experiment sets faults \"" +
                 cluster::fault_list_to_string(faults_, ',') +
                 "\" but the cluster spec already carries \"" +
                 cluster::fault_list_to_string(spec.faults, ',') +
                 "\"; set them in one place")
                    .c_str());
    spec.faults = faults_;
    spec.faults_set = true;
    refold = true;
  }
  if (resilience_set_) {
    WHISK_CHECK(!spec.resilience_set && !spec.resilience.enabled(),
                ("the experiment sets resilience \"" +
                 resilience_.to_string() +
                 "\" but the cluster spec already carries \"" +
                 spec.resilience.to_string() + "\"; set it in one place")
                    .c_str());
    spec.resilience = resilience_;
    spec.resilience_set = true;
    refold = true;
  }
  if (refold) {
    // Unlike the autoscaler, faults and resilience interact (a
    // lost-completion fault is only survivable with a retry timeout), so
    // the folded spec goes through full validation again.
    spec.canonical = false;
    spec = spec.normalized();
  }
  return spec;
}

ExperimentSpec& ExperimentSpec::memory_mb(double value) {
  WHISK_CHECK(value > 0.0, "memory_mb must be positive");
  memory_mb_ = value;
  return *this;
}

ExperimentSpec& ExperimentSpec::intensity(int value) {
  WHISK_CHECK(value > 0, "intensity must be positive");
  intensity_ = value;
  intensity_set_ = true;
  return *this;
}

ExperimentSpec& ExperimentSpec::scenario(workload::ScenarioSpec spec) {
  scenario_ = spec.normalized();
  return *this;
}

ExperimentSpec& ExperimentSpec::scenario(std::string_view text) {
  scenario_ = workload::ScenarioSpec::parse(text);
  return *this;
}

workload::ScenarioContext ExperimentSpec::scenario_context(
    const workload::FunctionCatalog& catalog) const {
  if (intensity_set_) {
    // intensity() used to be silently ignored by the fixed-total scenario;
    // refuse contradictory workload sizing instead.
    const auto def =
        workload::ScenarioRegistry::instance().create(scenario_.name);
    bool takes_intensity = false;
    for (const auto& param : def->params()) {
      if (param.name == "intensity") {
        takes_intensity = true;
        break;
      }
    }
    if (!takes_intensity) {
      std::vector<std::string> names;
      for (const auto& param : def->params()) names.push_back(param.name);
      WHISK_CHECK(false, ("intensity(" + std::to_string(intensity_) +
                          ") conflicts with scenario \"" + scenario_.name +
                          "\", which does not take an intensity — it sizes "
                          "the burst via: " +
                          util::join(names) +
                          ". Drop intensity() or pick an intensity-driven "
                          "scenario")
                             .c_str());
    }
    if (scenario_.has("intensity")) {
      WHISK_CHECK(false, ("intensity is set twice: intensity(" +
                          std::to_string(intensity_) +
                          ") and scenario parameter intensity=" +
                          scenario_.text("intensity", "") +
                          "; set it in one place")
                             .c_str());
    }
  }
  workload::ScenarioContext ctx;
  ctx.catalog = &catalog;
  if (cluster_set_) {
    // Heterogeneous fleets fold per-group core overrides into one total so
    // the paper's 1.1 * cores * v sizing scales with the real capacity.
    ctx.cores = cluster_.initial_cores(cores_);
    ctx.nodes = 1;
  } else {
    ctx.cores = cores_;
    ctx.nodes = nodes_;
  }
  ctx.intensity = intensity_;
  return ctx;
}

ExperimentSpec& ExperimentSpec::seed(std::uint64_t value) {
  seed_ = value;
  return *this;
}

ExperimentSpec& ExperimentSpec::with_override(std::string_view name,
                                              double value) {
  const std::string key = util::ascii_lower(name);
  const OverrideKnob* knob = find_knob(key);
  if (knob == nullptr) {
    WHISK_CHECK(false, ("unknown experiment override \"" + std::string(name) +
                        "\"; valid overrides: " + util::join(override_names()))
                           .c_str());
  }
  const bool ok =
      knob->range == Range::kNonNegative
          ? value >= 0.0
          : knob->range == Range::kPositive
                ? value > 0.0
                : value >= 1.0 && value == static_cast<double>(
                                              static_cast<std::size_t>(value));
  if (!ok) {
    const char* want = knob->range == Range::kNonNegative
                           ? "a value >= 0"
                           : knob->range == Range::kPositive
                                 ? "a value > 0"
                                 : "a whole number >= 1";
    WHISK_CHECK(false, ("experiment override \"" + key + "\" = " +
                        std::to_string(value) + " is out of range; it needs " +
                        want)
                           .c_str());
  }
  overrides_[key] = value;
  return *this;
}

const std::vector<std::string>& ExperimentSpec::override_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const auto& knob : override_table()) {
      names.push_back(knob.name);
    }
    return names;
  }();
  return kNames;
}

node::NodeParams ExperimentSpec::node_params() const {
  node::NodeParams p;
  p.cores = cores_;
  p.memory_limit_mb = memory_mb_;
  for (const auto& [name, value] : overrides_) {
    const OverrideKnob* knob = find_knob(name);
    WHISK_CHECK(knob != nullptr, "override validated at insertion");
    knob->apply(p, value);
  }
  return p;
}

}  // namespace whisk::experiments
