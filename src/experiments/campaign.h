#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "experiments/campaign_spec.h"
#include "metrics/sink.h"
#include "node/invoker.h"
#include "util/stats.h"

namespace whisk::experiments {

// What one campaign cell keeps after its run. Bounded by design: the
// streaming summaries are O(reservoir), and the per-call samples/records
// are only retained when the options ask for them — a 10k-cell campaign
// with default options never holds more than the in-flight cells' records.
struct CellResult {
  std::size_t index = 0;
  // Terminal records in the cell (ok + shed + dropped = one per call).
  std::size_t calls = 0;
  // Calls that actually completed — the population the response/stretch
  // samples and summaries are drawn from (== calls unless a resilience
  // policy shed or dropped some).
  std::size_t ok_calls = 0;
  double max_completion = 0.0;  // max c(i), seconds
  node::InvokerStats stats;
  // Per node group, in the deployment's group order (one entry for
  // homogeneous cells).
  std::vector<cluster::GroupStats> groups;
  // Extra submissions caused by node failures (a call surviving two
  // failures counts twice; 0 without fail events).
  std::size_t resubmissions = 0;
  // Fleet economics and autoscaler activity (see RunResult): node-hours
  // pro-rated over joins/drains, cost at the groups' cost-per-hour rates,
  // responses above the slo= threshold, and scale decisions taken.
  double node_hours = 0.0;
  double cost_usd = 0.0;
  std::size_t slo_violations = 0;
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;
  // Robustness telemetry (see RunResult): fault events fired, resilience
  // retries/timeouts/hedge wins, shed and dropped calls, breaker trips,
  // failed node-seconds, and successful completions per makespan second.
  std::size_t faults_injected = 0;
  std::size_t retries = 0;
  std::size_t timeouts = 0;
  std::size_t hedges_won = 0;
  std::size_t shed_calls = 0;
  std::size_t dropped_calls = 0;
  std::size_t breaker_opens = 0;
  double unavailability_s = 0.0;
  double goodput = 0.0;
  // Workflow telemetry (see RunResult; all 0 on workflow-free cells).
  std::size_t workflows = 0;
  double wf_e2e_p99 = 0.0;
  double wf_critical_path_s = 0.0;
  double wf_slack_s = 0.0;

  // Populated only when samples are NOT retained (with samples present the
  // exact vectors already answer everything and the streams would be
  // redundant copies); the aggregate_* helpers use whichever is present.
  metrics::StreamingSummary response_stream;
  metrics::StreamingSummary stretch_stream;

  // Exact per-call samples (retain_samples) and full records
  // (retain_records).
  std::vector<double> responses;
  std::vector<double> stretches;
  std::vector<metrics::CallRecord> records;

  // Exact summaries when samples were retained, streaming otherwise.
  [[nodiscard]] util::Summary response_summary() const;
  [[nodiscard]] util::Summary stretch_summary() const;
};

struct CampaignOptions {
  int threads = 1;  // 0 = util::ThreadPool::hardware_threads()
  // Keep the per-call response/stretch vectors (exact pooled quantiles for
  // the paper tables). Turn off for huge grids; the streaming summaries
  // remain.
  bool retain_samples = true;
  // Keep the full CallRecords per cell (per-function post-hoc queries).
  bool retain_records = false;
  std::size_t reservoir_capacity = 4096;
  // Run only this group-aligned slice of the grid (default: everything).
  // Must come from shard()/subshard() on the same grid; cell indices,
  // seeds and group indices stay global, so a shard run is byte-identical
  // to the matching slice of an unsharded run — the distributed campaign
  // contract.
  std::optional<ShardRange> shard;
  // Optional per-record sinks. Cells are flushed through the pipeline in
  // cell-index order no matter which thread finished first, so file output
  // is byte-identical for any thread count.
  metrics::MetricsPipeline* pipeline = nullptr;
  // Called after each finished cell with (done, total); serialized, so a
  // progress printer needs no locking of its own.
  std::function<void(std::size_t, std::size_t)> progress;
};

class CampaignResult {
 public:
  CampaignSpec spec;
  // The slice of the grid these cells cover — the whole grid unless the
  // run was sharded. `cells` holds the shard's cells in order; each
  // CellResult::index is the *global* cell index.
  ShardRange shard;
  std::vector<CellResult> cells;

  // A group = all cells sharing every non-seed coordinate; contiguous and
  // seed-ordered by the expansion order contract. Group arguments here are
  // shard-local (0 .. group_count()-1); global_group maps them back to the
  // grid-wide group index.
  [[nodiscard]] std::size_t group_count() const { return shard.groups(); }
  [[nodiscard]] std::size_t global_group(std::size_t g) const {
    return shard.begin_group + g;
  }
  [[nodiscard]] std::span<const CellResult> group(std::size_t g) const;
  // The group's first cell, for axis coordinates.
  [[nodiscard]] CampaignCell group_cell(std::size_t g) const;
  [[nodiscard]] std::string group_label(std::size_t g) const;
};

// Execute every cell of the grid — one independent sim::Engine per cell,
// seeded from the cell's seed-axis value only — on a work-stealing thread
// pool. Results are byte-identical for any thread count and any schedule:
// cells write to pre-assigned slots, aggregation folds them in index order,
// and pipeline sinks see cells in index order.
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& spec,
                                          const workload::FunctionCatalog& cat,
                                          const CampaignOptions& options = {});

// Pool the exact per-call samples of several cells (typically one group) in
// cell order — the campaign replacement for the old RunResult pooling
// helpers. Aborts if the cells were run without retain_samples.
[[nodiscard]] std::vector<double> pooled_responses(
    std::span<const CellResult> cells);
[[nodiscard]] std::vector<double> pooled_stretches(
    std::span<const CellResult> cells);

// Bounded-memory aggregate across cells, merged in cell order (works with
// or without retained samples).
[[nodiscard]] metrics::StreamingSummary aggregate_responses(
    std::span<const CellResult> cells);
[[nodiscard]] metrics::StreamingSummary aggregate_stretches(
    std::span<const CellResult> cells);

// max c(i) / summed start-kind counters over several cells.
[[nodiscard]] double max_completion(std::span<const CellResult> cells);
[[nodiscard]] node::InvokerStats total_stats(
    std::span<const CellResult> cells);

// One CSV row per cell (coordinates + summary statistics) — the
// whisk_sweep --cells-csv format, also what the thread-count-invariance
// test compares across pool sizes.
[[nodiscard]] std::string cells_csv(const CampaignResult& result);

// One JSON object per cell, same content as cells_csv — the whisk_sweep
// --cells-jsonl format (the CI smoke artifact).
[[nodiscard]] std::string cells_jsonl(const CampaignResult& result);

// The RunContext handed to pipeline sinks for one cell: cell index plus one
// field per grid axis (and one per override axis). When the cell's result
// is available, pass it to add the economics fields (cost_usd, node_hours,
// slo_violations, scale_ups, scale_downs) to the context.
[[nodiscard]] metrics::RunContext cell_context(
    const CampaignSpec& spec, const CampaignCell& cell,
    const CellResult* result = nullptr);

}  // namespace whisk::experiments
