#include "experiments/campaign_spec.h"

#include <algorithm>
#include <limits>

#include "util/check.h"
#include "util/table.h"
#include "util/parse.h"
#include "util/registry.h"

namespace whisk::experiments {
namespace {

constexpr const char* kAxisNames =
    "schedulers, scenarios, seeds, nodes, cores, memory-mb, clusters, "
    "autoscalers, faults, workflows, override:<name>";

using util::trim_ws;

std::vector<std::string_view> split(std::string_view text, char sep) {
  return util::split_any(text, std::string_view(&sep, 1));
}

std::uint64_t parse_seed(std::string_view item, std::string_view axis) {
  unsigned long long value = 0;
  WHISK_CHECK(util::parse_whole_number(item, &value),
              ("campaign axis \"" + std::string(axis) + "\": \"" +
               std::string(item) + "\" is not a whole number")
                  .c_str());
  return value;
}

int parse_positive_int(std::string_view item, std::string_view axis) {
  unsigned long long value = 0;
  const bool ok = util::parse_whole_number(item, &value) && value > 0 &&
                  value <= static_cast<unsigned long long>(
                               std::numeric_limits<int>::max());
  WHISK_CHECK(ok, ("campaign axis \"" + std::string(axis) + "\": \"" +
                   std::string(item) + "\" is not a positive integer")
                      .c_str());
  return static_cast<int>(value);
}

double parse_positive_double(std::string_view item, std::string_view axis) {
  double value = 0.0;
  const bool ok = util::parse_finite_double(item, &value) && value > 0.0;
  WHISK_CHECK(ok, ("campaign axis \"" + std::string(axis) + "\": \"" +
                   std::string(item) + "\" is not a positive number")
                      .c_str());
  return value;
}

// "0..4" (inclusive) or a single value.
void parse_seed_items(std::string_view value,
                      std::vector<std::uint64_t>* out) {
  for (std::string_view raw : split(value, ',')) {
    const std::string_view item = trim_ws(raw);
    const std::size_t dots = item.find("..");
    if (dots == std::string_view::npos) {
      out->push_back(parse_seed(item, "seeds"));
      continue;
    }
    const std::uint64_t lo = parse_seed(trim_ws(item.substr(0, dots)), "seeds");
    const std::uint64_t hi = parse_seed(trim_ws(item.substr(dots + 2)), "seeds");
    WHISK_CHECK(lo <= hi, ("campaign axis \"seeds\": range \"" +
                           std::string(item) + "\" runs backwards")
                              .c_str());
    WHISK_CHECK(hi - lo < 1000000,
                ("campaign axis \"seeds\": range \"" + std::string(item) +
                 "\" expands to over a million seeds; that is almost "
                 "certainly a typo")
                    .c_str());
    for (std::uint64_t s = lo; s <= hi; ++s) out->push_back(s);
  }
}

// Render the seed list, collapsing maximal consecutive ascending runs of
// length >= 2 back into "a..b".
std::string seeds_to_string(const std::vector<std::uint64_t>& seeds) {
  std::string out;
  std::size_t i = 0;
  while (i < seeds.size()) {
    std::size_t j = i;
    while (j + 1 < seeds.size() && seeds[j + 1] == seeds[j] + 1) ++j;
    if (!out.empty()) out += ',';
    if (j > i) {
      out += std::to_string(seeds[i]) + ".." + std::to_string(seeds[j]);
    } else {
      out += std::to_string(seeds[i]);
    }
    i = j + 1;
  }
  return out;
}

template <typename T, typename Fn>
std::string join_items(const std::vector<T>& items, Fn&& render) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += ',';
    out += render(item);
  }
  return out;
}

// The balanced contiguous partition both shard() and subshard() use:
// element j of m over a count of `total` starts at j*total/m. Monotone in
// j, exhaustive, disjoint, and every part is within one of total/m.
std::size_t partition_start(std::size_t total, std::size_t j, std::size_t m) {
  return total * j / m;
}

}  // namespace

ShardRange ShardRange::subshard(std::size_t j, std::size_t m) const {
  WHISK_CHECK(m > 0, "shard subdivision needs a positive count");
  WHISK_CHECK(j < m, "shard subdivision index out of range");
  ShardRange out;
  out.index = j;
  out.count = m;
  out.begin_group = begin_group + partition_start(groups(), j, m);
  out.end_group = begin_group + partition_start(groups(), j + 1, m);
  out.seeds_per_group = seeds_per_group;
  return out;
}

std::string ShardRange::selector() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

std::pair<std::size_t, std::size_t> ShardRange::parse_selector(
    std::string_view text) {
  const std::size_t slash = text.find('/');
  WHISK_CHECK(slash != std::string_view::npos,
              ("shard selector \"" + std::string(text) +
               "\" is not i/n (e.g. \"0/4\")")
                  .c_str());
  unsigned long long i = 0;
  unsigned long long n = 0;
  const bool ok =
      util::parse_whole_number(trim_ws(text.substr(0, slash)), &i) &&
      util::parse_whole_number(trim_ws(text.substr(slash + 1)), &n);
  WHISK_CHECK(ok, ("shard selector \"" + std::string(text) +
                   "\" needs two whole numbers i/n")
                      .c_str());
  WHISK_CHECK(n > 0, ("shard selector \"" + std::string(text) +
                      "\" has a zero shard count")
                         .c_str());
  WHISK_CHECK(i < n, ("shard selector \"" + std::string(text) +
                      "\" is out of range: index must be < count")
                         .c_str());
  return {static_cast<std::size_t>(i), static_cast<std::size_t>(n)};
}

ShardRange CampaignSpec::shard(std::size_t i, std::size_t n) const {
  WHISK_CHECK(n > 0, "campaign shard count must be positive");
  WHISK_CHECK(i < n, "campaign shard index must be < the shard count");
  const std::size_t g = group_count();
  ShardRange out;
  out.index = i;
  out.count = n;
  out.begin_group = partition_start(g, i, n);
  out.end_group = partition_start(g, i + 1, n);
  out.seeds_per_group = seeds_per_group();
  return out;
}

CampaignSpec CampaignSpec::parse(std::string_view text) {
  CampaignSpec spec;
  std::vector<std::string> seen_axes;
  for (std::string_view raw_axis : split(text, ';')) {
    const std::string_view axis = trim_ws(raw_axis);
    if (axis.empty()) continue;  // tolerate trailing ';'
    const std::size_t eq = axis.find('=');
    WHISK_CHECK(eq != std::string_view::npos,
                ("campaign grid entry \"" + std::string(axis) +
                 "\" is not axis=items; valid axes: " + kAxisNames)
                    .c_str());
    std::string key = util::ascii_lower(trim_ws(axis.substr(0, eq)));
    if (key == "memory_mb") key = "memory-mb";  // alias; one axis identity
    if (key == "autoscaler") key = "autoscalers";
    if (key == "fault") key = "faults";
    if (key == "workflow") key = "workflows";
    const std::string_view value = trim_ws(axis.substr(eq + 1));
    WHISK_CHECK(std::find(seen_axes.begin(), seen_axes.end(), key) ==
                    seen_axes.end(),
                ("campaign grid sets axis \"" + key + "\" twice").c_str());
    seen_axes.push_back(key);
    WHISK_CHECK(!value.empty(),
                ("campaign axis \"" + key + "\" has no items").c_str());

    if (key == "schedulers") {
      spec.schedulers.clear();
      for (std::string_view item : split(value, ',')) {
        spec.schedulers.push_back(SchedulerSpec::parse(trim_ws(item)));
      }
    } else if (key == "scenarios") {
      spec.scenarios.clear();
      for (std::string_view item : split(value, ',')) {
        spec.scenarios.push_back(workload::ScenarioSpec::parse(trim_ws(item)));
      }
    } else if (key == "seeds") {
      spec.seeds.clear();
      parse_seed_items(value, &spec.seeds);
    } else if (key == "nodes") {
      spec.nodes.clear();
      for (std::string_view item : split(value, ',')) {
        spec.nodes.push_back(parse_positive_int(trim_ws(item), key));
      }
    } else if (key == "cores") {
      spec.cores.clear();
      for (std::string_view item : split(value, ',')) {
        spec.cores.push_back(parse_positive_int(trim_ws(item), key));
      }
    } else if (key == "memory-mb") {
      spec.memories_mb.clear();
      for (std::string_view item : split(value, ',')) {
        spec.memories_mb.push_back(parse_positive_double(trim_ws(item), key));
      }
    } else if (key == "clusters") {
      spec.clusters_set = true;
      spec.clusters.clear();
      for (std::string_view item : split(value, ',')) {
        // Items arrive in the ClusterSpec compact form ('+'/'|'), since ','
        // and ';' are grid separators.
        spec.clusters.push_back(cluster::ClusterSpec::parse(trim_ws(item)));
      }
    } else if (key == "autoscalers") {
      spec.autoscalers_set = true;
      spec.autoscalers.clear();
      for (std::string_view item : split(value, ',')) {
        spec.autoscalers.push_back(
            cluster::AutoscalerSpec::parse(trim_ws(item)));
      }
    } else if (key == "faults") {
      spec.faults_set = true;
      spec.faults.clear();
      for (std::string_view item : split(value, ',')) {
        // Items arrive '+'-joined ("crash-restart?mtbf-s=120+flap"); "none"
        // parses to the empty (fault-free) regime.
        spec.faults.push_back(cluster::parse_fault_list(trim_ws(item)));
      }
    } else if (key == "workflows") {
      spec.workflows_set = true;
      spec.workflows.clear();
      for (std::string_view item : split(value, ',')) {
        // Items use '+' between dag edges ("dag?edges=a>b+a>c"); "none" is
        // the independent-calls baseline cell.
        spec.workflows.push_back(workload::WorkflowSpec::parse(trim_ws(item)));
      }
    } else if (key.rfind("override:", 0) == 0) {
      const std::string name = std::string(trim_ws(key).substr(9));
      WHISK_CHECK(!name.empty(), "campaign override axis has no name");
      std::vector<double> values;
      for (std::string_view item : split(value, ',')) {
        double v = 0.0;
        WHISK_CHECK(util::parse_finite_double(trim_ws(item), &v),
                    ("campaign axis \"" + key + "\": \"" + std::string(item) +
                     "\" is not a number")
                        .c_str());
        values.push_back(v);
      }
      spec.overrides.emplace_back(name, std::move(values));
    } else {
      WHISK_CHECK(false, ("unknown campaign axis \"" + key +
                          "\"; valid axes: " + kAxisNames)
                             .c_str());
    }
  }
  return spec.normalized();
}

std::string CampaignSpec::to_string() const {
  std::string out = "schedulers=";
  out += join_items(schedulers,
                    [](const SchedulerSpec& s) { return s.to_string(); });
  out += "; scenarios=";
  out += join_items(scenarios, [](const workload::ScenarioSpec& s) {
    return s.to_string();
  });
  out += "; seeds=" + seeds_to_string(seeds);
  out += "; nodes=" + join_items(nodes, [](int n) {
    return std::to_string(n);
  });
  out += "; cores=" + join_items(cores, [](int n) {
    return std::to_string(n);
  });
  out += "; memory-mb=" +
         join_items(memories_mb, [](double m) { return util::fmt_g(m); });
  if (cluster_mode()) {
    out += "; clusters=" + join_items(clusters, [](const auto& c) {
      return c.to_compact_string();
    });
  }
  if (autoscaler_mode()) {
    out += "; autoscalers=" + join_items(autoscalers, [](const auto& a) {
      return a.to_string();
    });
  }
  if (fault_mode()) {
    out += "; faults=" + join_items(faults, [](const auto& f) {
      return cluster::fault_list_to_string(f, '+');
    });
  }
  if (workflow_mode()) {
    out += "; workflows=" + join_items(workflows, [](const auto& w) {
      return w.to_string();
    });
  }
  for (const auto& [name, values] : overrides) {
    out += "; override:" + name + "=" +
           join_items(values, [](double v) { return util::fmt_g(v); });
  }
  return out;
}

CampaignSpec CampaignSpec::normalized() const {
  CampaignSpec out = *this;
  WHISK_CHECK(!out.schedulers.empty(), "campaign has no schedulers");
  WHISK_CHECK(!out.scenarios.empty(), "campaign has no scenarios");
  WHISK_CHECK(!out.seeds.empty(), "campaign has no seeds");
  WHISK_CHECK(!out.nodes.empty(), "campaign has no node counts");
  WHISK_CHECK(!out.cores.empty(), "campaign has no core counts");
  WHISK_CHECK(!out.memories_mb.empty(), "campaign has no memory sizes");
  WHISK_CHECK(!out.clusters.empty(), "campaign has no cluster specs");
  WHISK_CHECK(!out.autoscalers.empty(), "campaign has no autoscaler specs");
  WHISK_CHECK(!out.faults.empty(), "campaign has no fault regimes");
  WHISK_CHECK(!out.workflows.empty(), "campaign has no workflow shapes");
  for (auto& s : out.schedulers) s = s.normalized();
  for (auto& s : out.scenarios) s = s.normalized();
  for (auto& c : out.clusters) c = c.normalized();
  for (auto& a : out.autoscalers) a = a.normalized();
  for (auto& regime : out.faults) {
    for (auto& f : regime) f = f.normalized();
  }
  for (auto& w : out.workflows) w = w.normalized();
  // Canonicalize: non-default cluster entries behave exactly like an
  // explicit clusters= axis, so equality and round-trips see one
  // representation.
  out.clusters_set = out.cluster_mode();
  out.autoscalers_set = out.autoscaler_mode();
  out.faults_set = out.fault_mode();
  out.workflows_set = out.workflow_mode();
  if (out.cluster_mode()) {
    WHISK_CHECK(out.nodes.size() == 1 && out.nodes[0] == 1,
                "campaign sets both a clusters axis and a nodes axis; the "
                "cluster specs already size the fleet — drop nodes=");
  }
  if (out.autoscaler_mode()) {
    // The axis owns the autoscaling dimension; a cluster item carrying its
    // own autoscaler= section would silently shadow (or be shadowed by)
    // the axis value for some cells.
    for (const auto& c : out.clusters) {
      WHISK_CHECK(!c.autoscaler_set && !c.autoscaler.enabled(),
                  ("campaign sets an autoscalers axis, but cluster \"" +
                   c.to_compact_string() +
                   "\" carries its own autoscaler= section; set it in one "
                   "place")
                      .c_str());
    }
  }
  if (out.fault_mode()) {
    // Same ownership contract as the autoscaler axis: a cluster item
    // carrying its own faults= section would shadow the axis value.
    for (const auto& c : out.clusters) {
      WHISK_CHECK(!c.faults_set && c.faults.empty(),
                  ("campaign sets a faults axis, but cluster \"" +
                   c.to_compact_string() +
                   "\" carries its own faults= section; set them in one "
                   "place")
                      .c_str());
    }
  }
  for (int n : out.nodes) WHISK_CHECK(n > 0, "nodes must be positive");
  for (int n : out.cores) WHISK_CHECK(n > 0, "cores must be positive");
  for (double m : out.memories_mb) {
    WHISK_CHECK(m > 0.0, "memory-mb must be positive");
  }
  for (auto& [name, values] : out.overrides) {
    name = util::ascii_lower(name);
    WHISK_CHECK(!values.empty(), ("campaign override axis \"" + name +
                                  "\" has no values")
                                     .c_str());
    // with_override validates the name and the per-knob value range, with
    // the same diagnostics single experiments get.
    ExperimentSpec probe;
    for (double v : values) probe.with_override(name, v);
  }
  std::stable_sort(
      out.overrides.begin(), out.overrides.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < out.overrides.size(); ++i) {
    WHISK_CHECK(out.overrides[i].first != out.overrides[i - 1].first,
                ("campaign sets override axis \"" + out.overrides[i].first +
                 "\" twice")
                    .c_str());
  }
  return out;
}

bool CampaignSpec::cluster_mode() const {
  if (clusters_set || clusters.size() > 1) return true;
  return !clusters.empty() && clusters[0] != cluster::ClusterSpec{};
}

bool CampaignSpec::autoscaler_mode() const {
  if (autoscalers_set || autoscalers.size() > 1) return true;
  return !autoscalers.empty() && autoscalers[0].enabled();
}

bool CampaignSpec::fault_mode() const {
  if (faults_set || faults.size() > 1) return true;
  return !faults.empty() && !faults[0].empty();
}

bool CampaignSpec::workflow_mode() const {
  if (workflows_set || workflows.size() > 1) return true;
  return !workflows.empty() && workflows[0].enabled();
}

std::size_t CampaignSpec::size() const {
  std::size_t total = schedulers.size() * scenarios.size() * nodes.size() *
                      cores.size() * memories_mb.size() * clusters.size() *
                      autoscalers.size() * faults.size() * workflows.size() *
                      seeds.size();
  for (const auto& [name, values] : overrides) total *= values.size();
  return total;
}

CampaignCell CampaignSpec::coordinates(std::size_t index) const {
  WHISK_CHECK(index < size(), "campaign cell index out of range");
  CampaignCell c;
  c.index = index;
  std::size_t rem = index;
  c.seed_i = rem % seeds.size();
  rem /= seeds.size();
  c.override_i.resize(overrides.size());
  for (std::size_t k = overrides.size(); k-- > 0;) {
    c.override_i[k] = rem % overrides[k].second.size();
    rem /= overrides[k].second.size();
  }
  c.workflow_i = rem % workflows.size();
  rem /= workflows.size();
  c.faults_i = rem % faults.size();
  rem /= faults.size();
  c.autoscaler_i = rem % autoscalers.size();
  rem /= autoscalers.size();
  c.cluster_i = rem % clusters.size();
  rem /= clusters.size();
  c.memory_i = rem % memories_mb.size();
  rem /= memories_mb.size();
  c.cores_i = rem % cores.size();
  rem /= cores.size();
  c.nodes_i = rem % nodes.size();
  rem /= nodes.size();
  c.scenario_i = rem % scenarios.size();
  rem /= scenarios.size();
  c.scheduler_i = rem % schedulers.size();
  return c;
}

CampaignCell CampaignSpec::cell(std::size_t index) const {
  CampaignCell c = coordinates(index);
  c.spec.scheduler(schedulers[c.scheduler_i])
      .scenario(scenarios[c.scenario_i])
      .cores(cores[c.cores_i])
      .memory_mb(memories_mb[c.memory_i])
      .seed(seeds[c.seed_i]);
  // The clusters axis and the legacy nodes axis are mutually exclusive
  // (normalized() enforces it), so exactly one of these runs.
  if (cluster_mode()) {
    c.spec.cluster(clusters[c.cluster_i]);
  } else {
    c.spec.nodes(nodes[c.nodes_i]);
  }
  if (autoscaler_mode()) {
    c.spec.autoscaler(autoscalers[c.autoscaler_i]);
  }
  if (fault_mode()) {
    c.spec.faults(faults[c.faults_i]);
  }
  if (workflow_mode()) {
    c.spec.workflow(workflows[c.workflow_i]);
  }
  for (std::size_t k = 0; k < overrides.size(); ++k) {
    c.spec.with_override(overrides[k].first,
                         overrides[k].second[c.override_i[k]]);
  }
  return c;
}

std::size_t CampaignSpec::group_index(
    std::size_t scheduler_i, std::size_t scenario_i, std::size_t nodes_i,
    std::size_t cores_i, std::size_t memory_i, std::size_t cluster_i,
    std::size_t autoscaler_i, std::size_t faults_i, std::size_t workflow_i,
    const std::vector<std::size_t>& override_i) const {
  WHISK_CHECK(scheduler_i < schedulers.size(),
              "group_index: scheduler coordinate out of range");
  WHISK_CHECK(scenario_i < scenarios.size(),
              "group_index: scenario coordinate out of range");
  WHISK_CHECK(nodes_i < nodes.size(),
              "group_index: nodes coordinate out of range");
  WHISK_CHECK(cores_i < cores.size(),
              "group_index: cores coordinate out of range");
  WHISK_CHECK(memory_i < memories_mb.size(),
              "group_index: memory coordinate out of range");
  WHISK_CHECK(cluster_i < clusters.size(),
              "group_index: cluster coordinate out of range");
  WHISK_CHECK(autoscaler_i < autoscalers.size(),
              "group_index: autoscaler coordinate out of range");
  WHISK_CHECK(faults_i < faults.size(),
              "group_index: faults coordinate out of range");
  WHISK_CHECK(workflow_i < workflows.size(),
              "group_index: workflow coordinate out of range");
  WHISK_CHECK(override_i.empty() || override_i.size() == overrides.size(),
              "group_index: give one coordinate per override axis (or none)");
  std::size_t index = scheduler_i;
  index = index * scenarios.size() + scenario_i;
  index = index * nodes.size() + nodes_i;
  index = index * cores.size() + cores_i;
  index = index * memories_mb.size() + memory_i;
  index = index * clusters.size() + cluster_i;
  index = index * autoscalers.size() + autoscaler_i;
  index = index * faults.size() + faults_i;
  index = index * workflows.size() + workflow_i;
  for (std::size_t k = 0; k < overrides.size(); ++k) {
    const std::size_t coord = override_i.empty() ? 0 : override_i[k];
    WHISK_CHECK(coord < overrides[k].second.size(),
                "group_index: override coordinate out of range");
    index = index * overrides[k].second.size() + coord;
  }
  return index;
}

std::vector<std::uint64_t> CampaignSpec::first_seeds(int n) {
  WHISK_CHECK(n > 0, "first_seeds needs a positive count");
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    seeds.push_back(static_cast<std::uint64_t>(r));
  }
  return seeds;
}

std::string CampaignSpec::label(const CampaignCell& cell,
                                bool with_seed) const {
  std::vector<std::string> parts;
  if (schedulers.size() > 1) {
    parts.push_back(schedulers[cell.scheduler_i].to_string());
  }
  if (scenarios.size() > 1) {
    parts.push_back(scenarios[cell.scenario_i].to_string());
  }
  if (nodes.size() > 1) {
    parts.push_back("nodes=" + std::to_string(nodes[cell.nodes_i]));
  }
  if (cores.size() > 1) {
    parts.push_back("cores=" + std::to_string(cores[cell.cores_i]));
  }
  if (memories_mb.size() > 1) {
    parts.push_back("mem=" + util::fmt_g(memories_mb[cell.memory_i]) + "MiB");
  }
  if (clusters.size() > 1) {
    parts.push_back(clusters[cell.cluster_i].to_compact_string());
  }
  if (autoscalers.size() > 1) {
    parts.push_back("autoscaler=" +
                    autoscalers[cell.autoscaler_i].to_string());
  }
  if (faults.size() > 1) {
    parts.push_back("faults=" +
                    cluster::fault_list_to_string(faults[cell.faults_i], '+'));
  }
  if (workflows.size() > 1) {
    parts.push_back("workflow=" + workflows[cell.workflow_i].to_string());
  }
  for (std::size_t k = 0; k < overrides.size(); ++k) {
    if (overrides[k].second.size() > 1) {
      parts.push_back(overrides[k].first + "=" +
                      util::fmt_g(overrides[k].second[cell.override_i[k]]));
    }
  }
  if (with_seed && seeds.size() > 1) {
    parts.push_back("seed=" + std::to_string(seeds[cell.seed_i]));
  }
  if (parts.empty()) parts.push_back(schedulers[cell.scheduler_i].to_string());
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += ' ';
    out += p;
  }
  return out;
}

}  // namespace whisk::experiments
