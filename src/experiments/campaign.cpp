#include "experiments/campaign.h"

#include <mutex>
#include <sstream>
#include <utility>

#include "experiments/runner.h"
#include "experiments/workspace.h"
#include "metrics/csv.h"
#include "metrics/sink.h"
#include "util/check.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace whisk::experiments {
namespace {

std::string overrides_field(const CampaignSpec& spec,
                            const CampaignCell& cell) {
  std::string out;
  for (std::size_t k = 0; k < spec.overrides.size(); ++k) {
    if (!out.empty()) out += ' ';
    out += spec.overrides[k].first + "=" +
           util::fmt_g(spec.overrides[k].second[cell.override_i[k]]);
  }
  return out;
}

void append_summary_csv(std::ostringstream& out, const util::Summary& s) {
  out << ',' << s.mean << ',' << s.p50 << ',' << s.p75 << ',' << s.p95 << ','
      << s.p99 << ',' << s.max;
}

void append_summary_json(std::ostringstream& out, const util::Summary& s) {
  out << "{\"count\":" << s.count << ",\"mean\":" << s.mean
      << ",\"p50\":" << s.p50 << ",\"p75\":" << s.p75 << ",\"p95\":" << s.p95
      << ",\"p99\":" << s.p99 << ",\"max\":" << s.max << "}";
}

// The cell's real initial fleet size: in cluster mode the legacy nodes
// axis is pinned to {1}, so reporting it would claim a 1-node fleet for
// any multi-group deployment.
std::size_t effective_nodes(const CampaignSpec& spec,
                            const CampaignCell& cell) {
  return spec.cluster_mode()
             ? spec.clusters[cell.cluster_i].initial_nodes()
             : static_cast<std::size_t>(spec.nodes[cell.nodes_i]);
}

// The cell's deployment as a spec string. In legacy mode the clusters
// axis is the untouched default placeholder, so render the homogeneous
// expansion of the nodes axis instead of a misleading "node:1".
std::string effective_cluster(const CampaignSpec& spec,
                              const CampaignCell& cell) {
  return spec.cluster_mode()
             ? spec.clusters[cell.cluster_i].to_compact_string()
             : cluster::ClusterSpec::homogeneous(spec.nodes[cell.nodes_i])
                   .to_compact_string();
}

// The cell's effective autoscaler as a spec string ("none" when the cell
// runs a static fleet). The axis owns the dimension when present;
// otherwise a cluster item may carry its own autoscaler= section.
std::string effective_autoscaler(const CampaignSpec& spec,
                                 const CampaignCell& cell) {
  if (spec.autoscaler_mode()) {
    return spec.autoscalers[cell.autoscaler_i].to_string();
  }
  if (spec.cluster_mode()) {
    return spec.clusters[cell.cluster_i].autoscaler.to_string();
  }
  return cluster::AutoscalerSpec{}.to_string();
}

// The cell's effective fault regime as a '+'-joined list ("none" for
// fault-free cells) — same ownership rules as the autoscaler.
std::string effective_faults(const CampaignSpec& spec,
                             const CampaignCell& cell) {
  if (spec.fault_mode()) {
    return cluster::fault_list_to_string(spec.faults[cell.faults_i], '+');
  }
  if (spec.cluster_mode()) {
    return cluster::fault_list_to_string(spec.clusters[cell.cluster_i].faults,
                                         '+');
  }
  return cluster::fault_list_to_string({}, '+');
}

// The cell's effective workflow shape as a spec string ("none" for
// independent-calls cells). Unlike autoscalers/faults the workflow axis is
// the only carrier (ClusterSpec has no workflow= section).
std::string effective_workflow(const CampaignSpec& spec,
                               const CampaignCell& cell) {
  if (spec.workflow_mode()) {
    return spec.workflows[cell.workflow_i].to_string();
  }
  return workload::WorkflowSpec{}.to_string();
}

// Per-group telemetry as one CSV-friendly field:
// "big:nodes_ever=2:calls=120:cold=3|small:nodes_ever=4:calls=310:cold=0".
// nodes_ever counts every node the group ever had (joins included) — a
// deliberately different name from the row's `nodes` column, which is the
// fleet size at t=0.
std::string groups_field(const std::vector<cluster::GroupStats>& groups) {
  std::string out;
  for (const auto& g : groups) {
    if (!out.empty()) out += '|';
    out += g.name + ":nodes_ever=" + std::to_string(g.nodes) +
           ":calls=" + std::to_string(g.stats.calls_completed) +
           ":cold=" + std::to_string(g.stats.cold_starts);
  }
  return out;
}

}  // namespace

util::Summary CellResult::response_summary() const {
  if (responses.size() == ok_calls) return util::summarize(responses);
  return response_stream.summary();
}

util::Summary CellResult::stretch_summary() const {
  if (stretches.size() == ok_calls) return util::summarize(stretches);
  return stretch_stream.summary();
}

std::span<const CellResult> CampaignResult::group(std::size_t g) const {
  WHISK_CHECK(g < group_count(), "campaign group index out of range");
  const std::size_t per = spec.seeds_per_group();
  return {cells.data() + g * per, per};
}

CampaignCell CampaignResult::group_cell(std::size_t g) const {
  WHISK_CHECK(g < group_count(), "campaign group index out of range");
  // Full cell(), not coordinates(): group_cell's contract includes a
  // populated .spec (callers may re-run or inspect the configuration).
  return spec.cell(global_group(g) * spec.seeds_per_group());
}

std::string CampaignResult::group_label(std::size_t g) const {
  WHISK_CHECK(g < group_count(), "campaign group index out of range");
  return spec.label(spec.coordinates(global_group(g) *
                                     spec.seeds_per_group()),
                    /*with_seed=*/false);
}

metrics::RunContext cell_context(const CampaignSpec& spec,
                                 const CampaignCell& cell,
                                 const CellResult* result) {
  metrics::RunContext ctx;
  ctx.fields.push_back(
      {"cell", std::to_string(cell.index), /*numeric=*/true});
  ctx.fields.push_back(
      {"scheduler", spec.schedulers[cell.scheduler_i].to_string()});
  ctx.fields.push_back(
      {"scenario", spec.scenarios[cell.scenario_i].to_string()});
  ctx.fields.push_back(
      {"seed", std::to_string(spec.seeds[cell.seed_i]), /*numeric=*/true});
  ctx.fields.push_back({"nodes", std::to_string(effective_nodes(spec, cell)),
                        /*numeric=*/true});
  ctx.fields.push_back(
      {"cores", std::to_string(spec.cores[cell.cores_i]), /*numeric=*/true});
  ctx.fields.push_back({"memory_mb",
                        util::fmt_g(spec.memories_mb[cell.memory_i]),
                        /*numeric=*/true});
  ctx.fields.push_back({"cluster", effective_cluster(spec, cell)});
  ctx.fields.push_back({"autoscaler", effective_autoscaler(spec, cell)});
  ctx.fields.push_back({"faults", effective_faults(spec, cell)});
  ctx.fields.push_back({"workflow", effective_workflow(spec, cell)});
  for (std::size_t k = 0; k < spec.overrides.size(); ++k) {
    ctx.fields.push_back(
        {"override:" + spec.overrides[k].first,
         util::fmt_g(spec.overrides[k].second[cell.override_i[k]]),
         /*numeric=*/true});
  }
  if (result != nullptr) {
    ctx.fields.push_back(
        {"cost_usd", util::fmt_g(result->cost_usd), /*numeric=*/true});
    ctx.fields.push_back(
        {"node_hours", util::fmt_g(result->node_hours), /*numeric=*/true});
    ctx.fields.push_back({"slo_violations",
                          std::to_string(result->slo_violations),
                          /*numeric=*/true});
    ctx.fields.push_back(
        {"scale_ups", std::to_string(result->scale_ups), /*numeric=*/true});
    ctx.fields.push_back({"scale_downs",
                          std::to_string(result->scale_downs),
                          /*numeric=*/true});
    ctx.fields.push_back({"faults_injected",
                          std::to_string(result->faults_injected),
                          /*numeric=*/true});
    ctx.fields.push_back(
        {"retries", std::to_string(result->retries), /*numeric=*/true});
    ctx.fields.push_back(
        {"timeouts", std::to_string(result->timeouts), /*numeric=*/true});
    ctx.fields.push_back({"hedges_won", std::to_string(result->hedges_won),
                          /*numeric=*/true});
    ctx.fields.push_back({"shed_calls", std::to_string(result->shed_calls),
                          /*numeric=*/true});
    ctx.fields.push_back({"breaker_opens",
                          std::to_string(result->breaker_opens),
                          /*numeric=*/true});
    ctx.fields.push_back({"unavailability_s",
                          util::fmt_g(result->unavailability_s),
                          /*numeric=*/true});
    ctx.fields.push_back(
        {"goodput", util::fmt_g(result->goodput), /*numeric=*/true});
    ctx.fields.push_back({"workflows", std::to_string(result->workflows),
                          /*numeric=*/true});
    ctx.fields.push_back({"wf_e2e_p99", util::fmt_g(result->wf_e2e_p99),
                          /*numeric=*/true});
    ctx.fields.push_back({"wf_critical_path_s",
                          util::fmt_g(result->wf_critical_path_s),
                          /*numeric=*/true});
    ctx.fields.push_back({"wf_slack_s", util::fmt_g(result->wf_slack_s),
                          /*numeric=*/true});
  }
  return ctx;
}

CampaignResult run_campaign(const CampaignSpec& raw_spec,
                            const workload::FunctionCatalog& cat,
                            const CampaignOptions& options) {
  const CampaignSpec spec = raw_spec.normalized();
  // Resolve the slice to run: the whole grid unless the options carry a
  // shard. A shard from a different grid (or hand-rolled) is a caller bug;
  // catch it loudly rather than run the wrong cells.
  const ShardRange shard =
      options.shard ? *options.shard : spec.shard(0, 1);
  WHISK_CHECK(shard.begin_group <= shard.end_group &&
                  shard.end_group <= spec.group_count(),
              "campaign shard range does not fit this grid");
  WHISK_CHECK(shard.seeds_per_group == spec.seeds_per_group(),
              "campaign shard was built for a different seed axis");
  const std::size_t total = shard.cells();
  const int threads = options.threads == 0
                          ? util::ThreadPool::hardware_threads()
                          : options.threads;
  WHISK_CHECK(threads >= 1, "campaign threads must be >= 1 (or 0 for auto)");

  CampaignResult out;
  out.spec = spec;
  out.shard = shard;
  out.cells.resize(total);

  // One reusable workspace per worker: warm engine arena, recycled
  // collector columns, memoized scenarios. Worker-local by construction,
  // so the hot path shares no mutable state between threads (the one
  // mutex below guards only the post-cell flush bookkeeping).
  const bool want_records =
      options.retain_records || options.pipeline != nullptr;
  std::vector<CellWorkspace> workspaces(static_cast<std::size_t>(threads));

  // Flush/progress state; cells finish in schedule order, the pipeline
  // consumes them in index order. `flushing` elects one worker to stream
  // the ready prefix *outside* the lock, so pipeline file I/O never blocks
  // the other workers from completing cells.
  std::mutex mutex;
  std::vector<char> finished(total, 0);
  std::size_t done = 0;
  std::size_t next_flush = 0;
  bool flushing = false;

  // `i` is shard-local (slot in out.cells); the cell itself — coordinates,
  // seed, CSV index — is the global one, so shard output matches the
  // corresponding slice of an unsharded run byte for byte.
  auto run_cell = [&](std::size_t i, CellWorkspace& ws) {
    const std::size_t global = shard.begin_cell() + i;
    const CampaignCell cell = spec.cell(global);
    RunResult run = ws.run(cell.spec, cat, want_records);

    CellResult& res = out.cells[i];
    res.index = global;
    res.calls = run.calls;
    res.ok_calls = run.responses.size();
    res.max_completion = run.max_completion;
    res.stats = run.stats;
    res.groups = std::move(run.groups);
    res.resubmissions = run.resubmissions;
    res.node_hours = run.node_hours;
    res.cost_usd = run.cost_usd;
    res.slo_violations = run.slo_violations;
    res.scale_ups = run.scale_ups;
    res.scale_downs = run.scale_downs;
    res.faults_injected = run.faults_injected;
    res.retries = run.retries;
    res.timeouts = run.timeouts;
    res.hedges_won = run.hedges_won;
    res.shed_calls = run.shed_calls;
    res.dropped_calls = run.dropped_calls;
    res.breaker_opens = run.breaker_opens;
    res.unavailability_s = run.unavailability_s;
    res.goodput = run.goodput;
    res.workflows = run.workflows;
    res.wf_e2e_p99 = run.wf_e2e_p99;
    res.wf_critical_path_s = run.wf_critical_path_s;
    res.wf_slack_s = run.wf_slack_s;
    if (options.retain_samples) {
      res.responses = std::move(run.responses);
      res.stretches = std::move(run.stretches);
    } else {
      res.response_stream =
          metrics::StreamingSummary(options.reservoir_capacity);
      res.stretch_stream =
          metrics::StreamingSummary(options.reservoir_capacity);
      for (double r : run.responses) res.response_stream.add(r);
      for (double s : run.stretches) res.stretch_stream.add(s);
    }
    if (options.retain_records || options.pipeline != nullptr) {
      res.records = std::move(run.records);
    }

    std::unique_lock<std::mutex> lock(mutex);
    finished[i] = 1;
    ++done;
    if (options.progress) options.progress(done, total);
    if (options.pipeline != nullptr && !flushing) {
      flushing = true;
      while (next_flush < total && finished[next_flush] != 0) {
        const std::size_t idx = next_flush++;  // claimed; release the lock
        lock.unlock();
        CellResult& ready = out.cells[idx];  // finished: no other writer
        options.pipeline->begin_run(cell_context(
            spec, spec.coordinates(shard.begin_cell() + idx), &ready));
        for (const auto& rec : ready.records) {
          options.pipeline->consume(rec);
        }
        options.pipeline->end_run();
        if (!options.retain_records) {
          ready.records.clear();
          ready.records.shrink_to_fit();
        }
        lock.lock();
      }
      flushing = false;
    }
  };

  if (threads == 1 || total <= 1) {
    for (std::size_t i = 0; i < total; ++i) run_cell(i, workspaces[0]);
  } else {
    util::ThreadPool pool(threads);
    for (std::size_t i = 0; i < total; ++i) {
      pool.submit([&run_cell, &workspaces, i] {
        // Tasks only ever run on this pool's workers, whose indices are
        // 0..threads-1 by construction.
        const int w = util::ThreadPool::worker_index();
        WHISK_CHECK(w >= 0 && static_cast<std::size_t>(w) < workspaces.size(),
                    "campaign cell ran off its own pool");
        run_cell(i, workspaces[static_cast<std::size_t>(w)]);
      });
    }
    pool.wait_idle();
  }
  return out;
}

std::vector<double> pooled_responses(std::span<const CellResult> cells) {
  std::vector<double> out;
  for (const auto& cell : cells) {
    WHISK_CHECK(cell.responses.size() == cell.ok_calls,
                "pooled_responses needs a campaign run with retain_samples");
    out.insert(out.end(), cell.responses.begin(), cell.responses.end());
  }
  return out;
}

std::vector<double> pooled_stretches(std::span<const CellResult> cells) {
  std::vector<double> out;
  for (const auto& cell : cells) {
    WHISK_CHECK(cell.stretches.size() == cell.ok_calls,
                "pooled_stretches needs a campaign run with retain_samples");
    out.insert(out.end(), cell.stretches.begin(), cell.stretches.end());
  }
  return out;
}

namespace {

// Fold cells in order, reading exact samples where retained and the
// bounded stream otherwise.
template <typename Samples, typename Stream>
metrics::StreamingSummary aggregate_cells(std::span<const CellResult> cells,
                                          Samples&& samples,
                                          Stream&& stream) {
  metrics::StreamingSummary agg(
      cells.empty() ? 0 : stream(cells.front()).reservoir.capacity());
  for (const auto& cell : cells) {
    const std::vector<double>& exact = samples(cell);
    if (exact.size() == cell.ok_calls && cell.ok_calls > 0) {
      for (double x : exact) agg.add(x);
    } else {
      agg.merge(stream(cell));
    }
  }
  return agg;
}

}  // namespace

metrics::StreamingSummary aggregate_responses(
    std::span<const CellResult> cells) {
  return aggregate_cells(
      cells, [](const CellResult& c) -> const std::vector<double>& {
        return c.responses;
      },
      [](const CellResult& c) -> const metrics::StreamingSummary& {
        return c.response_stream;
      });
}

metrics::StreamingSummary aggregate_stretches(
    std::span<const CellResult> cells) {
  return aggregate_cells(
      cells, [](const CellResult& c) -> const std::vector<double>& {
        return c.stretches;
      },
      [](const CellResult& c) -> const metrics::StreamingSummary& {
        return c.stretch_stream;
      });
}

double max_completion(std::span<const CellResult> cells) {
  double m = 0.0;
  for (const auto& cell : cells) m = std::max(m, cell.max_completion);
  return m;
}

node::InvokerStats total_stats(std::span<const CellResult> cells) {
  node::InvokerStats sum;
  for (const auto& cell : cells) sum.merge(cell.stats);
  return sum;
}

std::string cells_csv(const CampaignResult& result) {
  std::ostringstream out;
  out << "cell,scheduler,scenario,seed,nodes,cores,memory_mb,cluster,"
         "autoscaler,faults,workflow,overrides,"
         "calls,r_mean,r_p50,r_p75,r_p95,r_p99,r_max,"
         "s_mean,s_p50,s_p75,s_p95,s_p99,s_max,"
         "max_completion,cold_starts,prewarm_starts,warm_starts,"
         "resubmissions,daemon_wait_s,daemon_wait_max_s,"
         "cost_usd,node_hours,slo_violations,scale_ups,scale_downs,"
         "faults_injected,retries,timeouts,hedges_won,shed_calls,"
         "dropped_calls,breaker_opens,unavailability_s,goodput,"
         "workflows,wf_e2e_p99,wf_critical_path_s,wf_slack_s,"
         "groups\n";
  for (const auto& res : result.cells) {
    const CampaignCell cell = result.spec.coordinates(res.index);
    out << res.index << ','
        << metrics::csv_field(
               result.spec.schedulers[cell.scheduler_i].to_string())
        << ','
        << metrics::csv_field(
               result.spec.scenarios[cell.scenario_i].to_string())
        << ',' << result.spec.seeds[cell.seed_i] << ','
        << effective_nodes(result.spec, cell) << ','
        << result.spec.cores[cell.cores_i] << ','
        << util::fmt_g(result.spec.memories_mb[cell.memory_i]) << ','
        << metrics::csv_field(effective_cluster(result.spec, cell)) << ','
        << metrics::csv_field(effective_autoscaler(result.spec, cell)) << ','
        << metrics::csv_field(effective_faults(result.spec, cell)) << ','
        << metrics::csv_field(effective_workflow(result.spec, cell)) << ','
        << metrics::csv_field(overrides_field(result.spec, cell))
        << ',' << res.calls;
    append_summary_csv(out, res.response_summary());
    append_summary_csv(out, res.stretch_summary());
    out << ',' << res.max_completion << ',' << res.stats.cold_starts << ','
        << res.stats.prewarm_starts << ',' << res.stats.warm_starts << ','
        << res.resubmissions << ','
        << res.stats.daemon_queue_wait_seconds << ','
        << res.stats.daemon_max_queue_wait_seconds << ','
        << util::fmt_g(res.cost_usd) << ',' << util::fmt_g(res.node_hours)
        << ',' << res.slo_violations << ',' << res.scale_ups << ','
        << res.scale_downs << ',' << res.faults_injected << ','
        << res.retries << ',' << res.timeouts << ',' << res.hedges_won
        << ',' << res.shed_calls << ',' << res.dropped_calls << ','
        << res.breaker_opens << ',' << util::fmt_g(res.unavailability_s)
        << ',' << util::fmt_g(res.goodput) << ',' << res.workflows << ','
        << util::fmt_g(res.wf_e2e_p99) << ','
        << util::fmt_g(res.wf_critical_path_s) << ','
        << util::fmt_g(res.wf_slack_s) << ','
        << metrics::csv_field(groups_field(res.groups)) << '\n';
  }
  return out.str();
}

std::string cells_jsonl(const CampaignResult& result) {
  std::ostringstream out;
  for (const auto& res : result.cells) {
    const CampaignCell cell = result.spec.coordinates(res.index);
    out << "{\"cell\":" << res.index << ",\"scheduler\":\""
        << metrics::json_escape(
               result.spec.schedulers[cell.scheduler_i].to_string())
        << "\",\"scenario\":\""
        << metrics::json_escape(
               result.spec.scenarios[cell.scenario_i].to_string())
        << "\",\"seed\":" << result.spec.seeds[cell.seed_i]
        << ",\"nodes\":" << effective_nodes(result.spec, cell)
        << ",\"cores\":" << result.spec.cores[cell.cores_i]
        << ",\"memory_mb\":"
        << util::fmt_g(result.spec.memories_mb[cell.memory_i])
        << ",\"cluster\":\""
        << metrics::json_escape(effective_cluster(result.spec, cell))
        << "\",\"autoscaler\":\""
        << metrics::json_escape(effective_autoscaler(result.spec, cell))
        << "\",\"faults\":\""
        << metrics::json_escape(effective_faults(result.spec, cell))
        << "\",\"workflow\":\""
        << metrics::json_escape(effective_workflow(result.spec, cell))
        << "\",\"overrides\":{";
    for (std::size_t k = 0; k < result.spec.overrides.size(); ++k) {
      if (k > 0) out << ',';
      out << '"' << metrics::json_escape(result.spec.overrides[k].first)
          << "\":"
          << util::fmt_g(
                 result.spec.overrides[k].second[cell.override_i[k]]);
    }
    out << "},\"calls\":" << res.calls << ",\"response\":";
    append_summary_json(out, res.response_summary());
    out << ",\"stretch\":";
    append_summary_json(out, res.stretch_summary());
    out << ",\"max_completion\":" << res.max_completion
        << ",\"cold_starts\":" << res.stats.cold_starts
        << ",\"prewarm_starts\":" << res.stats.prewarm_starts
        << ",\"warm_starts\":" << res.stats.warm_starts
        << ",\"resubmissions\":" << res.resubmissions
        << ",\"daemon_wait_s\":" << res.stats.daemon_queue_wait_seconds
        << ",\"daemon_wait_max_s\":"
        << res.stats.daemon_max_queue_wait_seconds
        << ",\"cost_usd\":" << util::fmt_g(res.cost_usd)
        << ",\"node_hours\":" << util::fmt_g(res.node_hours)
        << ",\"slo_violations\":" << res.slo_violations
        << ",\"scale_ups\":" << res.scale_ups
        << ",\"scale_downs\":" << res.scale_downs
        << ",\"faults_injected\":" << res.faults_injected
        << ",\"retries\":" << res.retries
        << ",\"timeouts\":" << res.timeouts
        << ",\"hedges_won\":" << res.hedges_won
        << ",\"shed_calls\":" << res.shed_calls
        << ",\"dropped_calls\":" << res.dropped_calls
        << ",\"breaker_opens\":" << res.breaker_opens
        << ",\"unavailability_s\":" << util::fmt_g(res.unavailability_s)
        << ",\"goodput\":" << util::fmt_g(res.goodput)
        << ",\"workflows\":" << res.workflows
        << ",\"wf_e2e_p99\":" << util::fmt_g(res.wf_e2e_p99)
        << ",\"wf_critical_path_s\":" << util::fmt_g(res.wf_critical_path_s)
        << ",\"wf_slack_s\":" << util::fmt_g(res.wf_slack_s)
        << ",\"groups\":[";
    for (std::size_t g = 0; g < res.groups.size(); ++g) {
      if (g > 0) out << ',';
      const auto& group = res.groups[g];
      out << "{\"name\":\"" << metrics::json_escape(group.name)
          << "\",\"nodes_ever\":" << group.nodes
          << ",\"calls\":" << group.stats.calls_completed
          << ",\"cold_starts\":" << group.stats.cold_starts << "}";
    }
    out << "]}\n";
  }
  return out.str();
}

}  // namespace whisk::experiments
