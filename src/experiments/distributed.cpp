#include "experiments/distributed.h"

#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <utility>

#include "util/check.h"
#include "util/parse.h"

namespace whisk::experiments {
namespace {

// ---- wire helpers -----------------------------------------------------------
//
// The protocol is line-framed text over the worker's stdout pipe:
//
//   whisk-shard 1 <i>/<n> groups <bg> <eg> cells <bc> <ec>\n   (header,
//       written BEFORE any cell runs — the driver's liveness signal and
//       the anchor for the crash-injection test hook)
//   csv <nbytes>\n<nbytes raw bytes>
//   jsonl <nbytes>\n<nbytes raw bytes>
//   groups <count>\n
//   g <global> <calls> <ok> <cold> <max_completion>\n        (per group)
//   r <n> <mean> <m2> <min> <max> <cap> <seen> <k> <k samples>\n
//   s <n> <mean> <m2> <min> <max> <cap> <seen> <k> <k samples>\n
//   done rss <kb>\n
//
// Every double travels as printf "%a" (hexfloat), so the driver-side
// StreamingSummary state is reconstructed bit-for-bit and the merged
// summaries match a single-process run exactly.

void write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      WHISK_CHECK(false, "distributed worker failed writing its pipe");
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string hex_double(double x) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", x);
  return buf;
}

void append_summary_line(std::string* out, char tag,
                         const metrics::StreamingSummary& s) {
  const util::StreamingStatsState st = s.stats.state();
  *out += tag;
  *out += ' ' + std::to_string(st.n) + ' ' + hex_double(st.mean) + ' ' +
          hex_double(st.m2) + ' ' + hex_double(st.min) + ' ' +
          hex_double(st.max) + ' ' + std::to_string(s.reservoir.capacity()) +
          ' ' + std::to_string(s.reservoir.seen()) + ' ' +
          std::to_string(s.reservoir.size());
  for (const double x : s.reservoir.samples()) *out += ' ' + hex_double(x);
  *out += '\n';
}

// ---- driver-side parsing ----------------------------------------------------

std::size_t parse_size(std::string_view field, const char* what) {
  unsigned long long v = 0;
  if (!util::parse_whole_number(field, &v)) {
    WHISK_CHECK(false, (std::string("distributed protocol: bad ") + what +
                        " field \"" + std::string(field) + "\"")
                           .c_str());
  }
  return static_cast<std::size_t>(v);
}

double parse_double(std::string_view field, const char* what) {
  double v = 0.0;
  if (!util::parse_finite_double(field, &v)) {
    WHISK_CHECK(false, (std::string("distributed protocol: bad ") + what +
                        " field \"" + std::string(field) + "\"")
                           .c_str());
  }
  return v;
}

// Strict cursor over one worker's complete output. Only run on buffers
// from workers that exited cleanly, so any malformation is a protocol bug
// worth an abort, not a crash symptom.
struct Cursor {
  std::string_view data;
  std::size_t pos = 0;

  std::string_view line() {
    const std::size_t nl = data.find('\n', pos);
    WHISK_CHECK(nl != std::string_view::npos,
                "distributed protocol: truncated worker output");
    std::string_view out = data.substr(pos, nl - pos);
    pos = nl + 1;
    return out;
  }

  std::string_view bytes(std::size_t n) {
    WHISK_CHECK(pos + n <= data.size(),
                "distributed protocol: byte frame past end of worker output");
    std::string_view out = data.substr(pos, n);
    pos += n;
    return out;
  }

  [[nodiscard]] bool at_end() const { return pos == data.size(); }
};

std::vector<std::string_view> tokens(std::string_view line) {
  std::vector<std::string_view> out;
  for (std::string_view t : util::split_any(line, " ")) {
    if (!t.empty()) out.push_back(t);
  }
  return out;
}

metrics::StreamingSummary parse_summary_line(std::string_view line,
                                             char expect_tag) {
  const std::vector<std::string_view> t = tokens(line);
  WHISK_CHECK(t.size() >= 9 && t[0].size() == 1 && t[0][0] == expect_tag,
              "distributed protocol: malformed group summary line");
  util::StreamingStatsState st;
  st.n = parse_size(t[1], "stats n");
  st.mean = parse_double(t[2], "stats mean");
  st.m2 = parse_double(t[3], "stats m2");
  st.min = parse_double(t[4], "stats min");
  st.max = parse_double(t[5], "stats max");
  const std::size_t cap = parse_size(t[6], "reservoir capacity");
  const std::size_t seen = parse_size(t[7], "reservoir seen");
  const std::size_t k = parse_size(t[8], "reservoir size");
  WHISK_CHECK(t.size() == 9 + k,
              "distributed protocol: group summary sample count mismatch");
  std::vector<double> samples;
  samples.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    samples.push_back(parse_double(t[9 + j], "reservoir sample"));
  }
  metrics::StreamingSummary out(cap);
  out.stats = util::StreamingStats::from_state(st);
  out.reservoir = util::Reservoir::from_state(cap, seen, std::move(samples));
  return out;
}

// Everything one clean worker exit yields.
struct ShardPayload {
  std::string csv;
  std::string jsonl;
  std::vector<GroupSummary> groups;
  long rss_kb = 0;
};

// Validate the header against the range the driver computed from its own
// copy of the grid — a mismatch means the grid string did not round-trip
// into the worker (or the worker binary disagrees about the partition).
void check_header(std::string_view line, const ShardRange& expect) {
  const std::vector<std::string_view> t = tokens(line);
  WHISK_CHECK(t.size() == 9 && t[0] == "whisk-shard" && t[1] == "1" &&
                  t[3] == "groups" && t[6] == "cells",
              "distributed protocol: malformed shard header");
  WHISK_CHECK(t[2] == expect.selector(),
              "distributed worker announced the wrong shard selector");
  WHISK_CHECK(parse_size(t[4], "header begin group") == expect.begin_group &&
                  parse_size(t[5], "header end group") == expect.end_group &&
                  parse_size(t[7], "header begin cell") ==
                      expect.begin_cell() &&
                  parse_size(t[8], "header end cell") == expect.end_cell(),
              "distributed worker partitioned the grid differently than the "
              "driver — grid string round-trip mismatch");
}

ShardPayload parse_payload(std::string_view data, const ShardRange& expect) {
  Cursor cur{data};
  check_header(cur.line(), expect);

  ShardPayload out;
  {
    const std::vector<std::string_view> t = tokens(cur.line());
    WHISK_CHECK(t.size() == 2 && t[0] == "csv",
                "distributed protocol: expected csv frame");
    out.csv = std::string(cur.bytes(parse_size(t[1], "csv byte count")));
  }
  {
    const std::vector<std::string_view> t = tokens(cur.line());
    WHISK_CHECK(t.size() == 2 && t[0] == "jsonl",
                "distributed protocol: expected jsonl frame");
    out.jsonl = std::string(cur.bytes(parse_size(t[1], "jsonl byte count")));
  }
  std::size_t count = 0;
  {
    const std::vector<std::string_view> t = tokens(cur.line());
    WHISK_CHECK(t.size() == 2 && t[0] == "groups",
                "distributed protocol: expected groups frame");
    count = parse_size(t[1], "group count");
  }
  WHISK_CHECK(count == expect.groups(),
              "distributed worker returned the wrong number of groups");
  out.groups.reserve(count);
  for (std::size_t g = 0; g < count; ++g) {
    const std::vector<std::string_view> t = tokens(cur.line());
    WHISK_CHECK(t.size() == 6 && t[0] == "g",
                "distributed protocol: malformed group counter line");
    GroupSummary sum;
    sum.group = parse_size(t[1], "group index");
    WHISK_CHECK(sum.group == expect.begin_group + g,
                "distributed worker groups out of order");
    sum.calls = parse_size(t[2], "group calls");
    sum.ok_calls = parse_size(t[3], "group ok_calls");
    sum.cold_starts = parse_size(t[4], "group cold_starts");
    sum.max_completion = parse_double(t[5], "group max_completion");
    sum.response = parse_summary_line(cur.line(), 'r');
    sum.stretch = parse_summary_line(cur.line(), 's');
    out.groups.push_back(std::move(sum));
  }
  {
    const std::vector<std::string_view> t = tokens(cur.line());
    WHISK_CHECK(t.size() == 3 && t[0] == "done" && t[1] == "rss",
                "distributed protocol: expected done trailer");
    out.rss_kb = static_cast<long>(parse_size(t[2], "peak rss"));
  }
  WHISK_CHECK(cur.at_end(),
              "distributed protocol: trailing bytes after done trailer");
  return out;
}

// ---- worker bookkeeping -----------------------------------------------------

struct Worker {
  std::size_t shard = 0;
  ShardRange range;
  int attempts = 0;
  pid_t pid = -1;
  int out_fd = -1;  // -1 once EOF
  int err_fd = -1;
  std::string out;
  std::string err;
  bool header_checked = false;
  bool kill_pending = false;  // test hook armed for the current attempt
  bool done = false;          // payload parsed and stored
};

void close_fd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

// Drain one ready fd into `buf`; closes it (sets -1) at EOF.
void drain(int* fd, std::string* buf) {
  char tmp[65536];
  const ssize_t n = ::read(*fd, tmp, sizeof(tmp));
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN) return;
    WHISK_CHECK(false, "distributed driver failed reading a worker pipe");
  }
  if (n == 0) {
    close_fd(fd);
    return;
  }
  buf->append(tmp, static_cast<std::size_t>(n));
}

// Worker peak-RSS accounting. A fork-mode worker inherits the parent's
// getrusage high-water mark, which would report the DRIVER's footprint as
// the worker's; resetting the kernel's per-mm VmHWM at worker start makes
// the trailer reflect only the shard's own run. Best-effort: without
// CONFIG_PROC_PAGE_MONITOR the reset is refused and the read falls back
// to the (inherited) ru_maxrss.
void reset_self_peak_rss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return;
  std::fputs("5", f);
  std::fclose(f);
}

long self_peak_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f != nullptr) {
    char line[256];
    while (std::fgets(line, sizeof line, f) != nullptr) {
      long kb = 0;
      if (std::sscanf(line, "VmHWM: %ld", &kb) == 1) {
        std::fclose(f);
        return kb;
      }
    }
    std::fclose(f);
  }
  struct rusage ru;
  if (::getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss;  // KiB on Linux
}

}  // namespace

void run_worker_protocol(const CampaignSpec& raw_spec,
                         const workload::FunctionCatalog& cat,
                         std::size_t shard_index, std::size_t shard_count,
                         const DistributedOptions& options, int fd) {
  reset_self_peak_rss();
  const CampaignSpec spec = raw_spec.normalized();
  const ShardRange range = spec.shard(shard_index, shard_count);

  // Header first — before any cell runs — so the driver can tell "alive
  // and started" from "never came up", and so the crash-injection test can
  // kill a worker that is provably mid-shard.
  write_all(fd, "whisk-shard 1 " + range.selector() + " groups " +
                    std::to_string(range.begin_group) + ' ' +
                    std::to_string(range.end_group) + " cells " +
                    std::to_string(range.begin_cell()) + ' ' +
                    std::to_string(range.end_cell()) + '\n');

  CampaignOptions copts;
  copts.threads = options.worker_threads;
  copts.retain_samples = options.retain_samples;
  copts.reservoir_capacity = options.reservoir_capacity;
  copts.shard = range;
  if (options.verbose) {
    const std::string prefix = "[shard " + range.selector() + "] ";
    copts.progress = [prefix](std::size_t done, std::size_t total) {
      std::fprintf(stderr, "%s%zu/%zu cells\n", prefix.c_str(), done, total);
    };
  }
  const CampaignResult result = run_campaign(spec, cat, copts);

  const std::string csv = cells_csv(result);
  const std::string jsonl = cells_jsonl(result);
  std::string body;
  body += "csv " + std::to_string(csv.size()) + '\n';
  body += csv;
  body += "jsonl " + std::to_string(jsonl.size()) + '\n';
  body += jsonl;
  body += "groups " + std::to_string(result.group_count()) + '\n';
  for (std::size_t g = 0; g < result.group_count(); ++g) {
    const std::span<const CellResult> cells = result.group(g);
    std::size_t calls = 0;
    std::size_t ok = 0;
    for (const CellResult& c : cells) {
      calls += c.calls;
      ok += c.ok_calls;
    }
    body += "g " + std::to_string(result.global_group(g)) + ' ' +
            std::to_string(calls) + ' ' + std::to_string(ok) + ' ' +
            std::to_string(total_stats(cells).cold_starts) + ' ' +
            hex_double(max_completion(cells)) + '\n';
    append_summary_line(&body, 'r', aggregate_responses(cells));
    append_summary_line(&body, 's', aggregate_stretches(cells));
  }
  body += "done rss " + std::to_string(self_peak_rss_kb()) + '\n';
  write_all(fd, body);
}

namespace {

void spawn_worker(Worker* w, const CampaignSpec& spec,
                  const workload::FunctionCatalog& cat,
                  const DistributedOptions& options) {
  int out_pipe[2];
  int err_pipe[2];
  WHISK_CHECK(::pipe(out_pipe) == 0 && ::pipe(err_pipe) == 0,
              "distributed driver could not create worker pipes");

  // Buffered stdio crossing fork would replay in the child at _exit time.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  WHISK_CHECK(pid >= 0, "distributed driver could not fork a worker");

  if (pid == 0) {
    ::close(out_pipe[0]);
    ::close(err_pipe[0]);
    ::dup2(err_pipe[1], 2);
    ::close(err_pipe[1]);
    if (options.worker_command.empty()) {
      // In-process worker: same image, no exec. _exit (not exit) so the
      // child never runs the parent's atexit/leak-check machinery.
      run_worker_protocol(spec, cat, w->shard,
                          static_cast<std::size_t>(options.workers), options,
                          out_pipe[1]);
      ::close(out_pipe[1]);
      ::_exit(0);
    }
    ::dup2(out_pipe[1], 1);
    ::close(out_pipe[1]);
    std::vector<std::string> argv_s = options.worker_command;
    argv_s.push_back("--worker");
    argv_s.push_back("--shard");
    argv_s.push_back(std::to_string(w->shard) + "/" +
                     std::to_string(options.workers));
    std::vector<char*> argv;
    argv.reserve(argv_s.size() + 1);
    for (std::string& a : argv_s) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execvp(argv[0], argv.data());
    std::fprintf(stderr, "exec %s failed: %s\n", argv[0],
                 std::strerror(errno));
    ::_exit(127);
  }

  ::close(out_pipe[1]);
  ::close(err_pipe[1]);
  w->pid = pid;
  w->out_fd = out_pipe[0];
  w->err_fd = err_pipe[0];
  w->out.clear();
  w->err.clear();
  w->header_checked = false;
  ++w->attempts;
  w->kill_pending = options.test_kill_shard >= 0 &&
                    static_cast<std::size_t>(options.test_kill_shard) ==
                        w->shard &&
                    w->attempts == 1;
}

}  // namespace

DistributedResult run_distributed(const CampaignSpec& raw_spec,
                                  const workload::FunctionCatalog& cat,
                                  const DistributedOptions& options) {
  WHISK_CHECK(options.workers >= 1, "distributed workers must be >= 1");
  WHISK_CHECK(options.max_attempts >= 1,
              "distributed max attempts must be >= 1");
  const CampaignSpec spec = raw_spec.normalized();
  const std::size_t n = static_cast<std::size_t>(options.workers);

  std::vector<Worker> workers(n);
  std::vector<ShardPayload> payloads(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers[i].shard = i;
    workers[i].range = spec.shard(i, n);
    spawn_worker(&workers[i], spec, cat, options);
  }

  std::size_t remaining = n;
  while (remaining > 0) {
    std::vector<struct pollfd> fds;
    std::vector<std::pair<std::size_t, bool>> owner;  // worker, is_stdout
    for (std::size_t i = 0; i < n; ++i) {
      if (workers[i].out_fd >= 0) {
        fds.push_back({workers[i].out_fd, POLLIN, 0});
        owner.emplace_back(i, true);
      }
      if (workers[i].err_fd >= 0) {
        fds.push_back({workers[i].err_fd, POLLIN, 0});
        owner.emplace_back(i, false);
      }
    }
    WHISK_CHECK(!fds.empty(), "distributed driver lost track of its workers");
    const int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0 && errno == EINTR) continue;
    WHISK_CHECK(rc > 0, "distributed driver poll failed");

    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker& w = workers[owner[k].first];
      if (owner[k].second) {
        drain(&w.out_fd, &w.out);
        if (!w.header_checked) {
          const std::size_t nl = w.out.find('\n');
          if (nl != std::string::npos) {
            check_header(std::string_view(w.out).substr(0, nl), w.range);
            w.header_checked = true;
            if (w.kill_pending) {
              // Crash-injection hook: the header proves the worker is
              // alive and has not yet finished its shard output.
              ::kill(w.pid, SIGKILL);
              w.kill_pending = false;
            }
          }
        }
      } else {
        const std::size_t before = w.err.size();
        drain(&w.err_fd, &w.err);
        if (options.verbose && w.err.size() > before) {
          std::fwrite(w.err.data() + before, 1, w.err.size() - before,
                      stderr);
        }
      }
    }

    for (std::size_t i = 0; i < n; ++i) {
      Worker& w = workers[i];
      if (w.done || w.pid < 0 || w.out_fd >= 0 || w.err_fd >= 0) continue;
      int status = 0;
      pid_t reaped;
      do {
        reaped = ::waitpid(w.pid, &status, 0);
      } while (reaped < 0 && errno == EINTR);
      WHISK_CHECK(reaped == w.pid, "distributed driver lost a worker pid");
      w.pid = -1;
      if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
        payloads[i] = parse_payload(w.out, w.range);
        w.done = true;
        --remaining;
        continue;
      }
      // Crash (signal) or error exit: replay the captured stderr so the
      // failure is diagnosable, then retry — cells are idempotent, so a
      // re-run of the shard yields byte-identical output.
      if (!options.verbose && !w.err.empty()) {
        std::fprintf(stderr, "[shard %s attempt %d failed]\n",
                     w.range.selector().c_str(), w.attempts);
        std::fwrite(w.err.data(), 1, w.err.size(), stderr);
      }
      WHISK_CHECK(w.attempts < options.max_attempts,
                  "distributed shard kept failing; giving up");
      spawn_worker(&w, spec, cat, options);
    }
  }

  DistributedResult out;
  out.spec = spec;
  out.shards.reserve(n);
  std::string csv_header;
  for (std::size_t i = 0; i < n; ++i) {
    out.shards.push_back({workers[i].range, workers[i].attempts});
    const ShardPayload& p = payloads[i];
    // Every shard's CSV starts with the same header row; the merged file
    // keeps exactly one.
    const std::size_t nl = p.csv.find('\n');
    WHISK_CHECK(nl != std::string::npos,
                "distributed shard CSV is missing its header row");
    const std::string header = p.csv.substr(0, nl + 1);
    if (i == 0) {
      csv_header = header;
      out.cells_csv = p.csv;
    } else {
      WHISK_CHECK(header == csv_header,
                  "distributed shards disagree on the CSV header");
      out.cells_csv.append(p.csv, nl + 1, std::string::npos);
    }
    out.cells_jsonl += p.jsonl;
    out.groups.insert(out.groups.end(), p.groups.begin(), p.groups.end());
    out.peak_worker_rss_kb = std::max(out.peak_worker_rss_kb, p.rss_kb);
  }
  WHISK_CHECK(out.groups.size() == spec.group_count(),
              "distributed merge did not cover every grid group");
  for (std::size_t g = 0; g < out.groups.size(); ++g) {
    WHISK_CHECK(out.groups[g].group == g,
                "distributed merge produced out-of-order groups");
  }
  return out;
}

}  // namespace whisk::experiments
