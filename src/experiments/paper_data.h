#pragma once

#include <optional>
#include <string_view>
#include <vector>

namespace whisk::experiments::paper {

// Reference values transcribed from the paper's appendix (Tables II, III
// and V), used by the bench binaries to print measured-vs-paper rows and by
// the reproduction tests to assert that the simulated *shapes* (orderings,
// rough ratios, crossovers) match.

// One aggregated row of Table III (single-node, on-premises, 5 seeds
// pooled).
struct SingleNodeRow {
  int cores;
  int intensity;
  std::string_view scheduler;  // "baseline", "FIFO", "SEPT", "EECT",
                               // "RECT", "FC"
  double r_avg;   // average response time [s]
  double r_p50;   // median response time [s]
  double r_p95;   // 95th percentile response time [s]
  double s_avg;   // average stretch
  double max_c;   // maximum completion time [s]
};

// All Table III rows: cores {5,10,20} x intensity {30,40,60,90,120} x the
// six schedulers.
[[nodiscard]] const std::vector<SingleNodeRow>& table3();

[[nodiscard]] std::optional<SingleNodeRow> find_single_node(
    int cores, int intensity, std::string_view scheduler);

// One row of Table II: the FIFO-to-baseline ratio of maximum request
// completion times, reported as a min-max range over the 5 experiments.
struct CompletionRatioRow {
  int cores;
  int intensity;
  double ratio_lo;
  double ratio_hi;
};

[[nodiscard]] const std::vector<CompletionRatioRow>& table2();

[[nodiscard]] std::optional<CompletionRatioRow> find_completion_ratio(
    int cores, int intensity);

// One aggregated row of Table V (multi-node, cloud, 5 seeds pooled). The
// total load is fixed (1320 requests for the 10-CPU VMs, 2376 for the
// 18-CPU VMs) while the worker count varies.
struct MultiNodeRow {
  int nodes;
  int cpus_per_node;
  std::string_view scheduler;  // "baseline" or "FC"
  double r_avg;
  double r_p50;
  double r_p75;
  double r_p95;
  double r_p99;
  double max_c;
};

[[nodiscard]] const std::vector<MultiNodeRow>& table5();

[[nodiscard]] std::optional<MultiNodeRow> find_multi_node(
    int nodes, int cpus_per_node, std::string_view scheduler);

// Fig. 5 (fairness, 10 CPUs, intensity 90): headline stretch numbers quoted
// in Sec. VII-D.
struct FairnessReference {
  double fc_dna_avg_stretch = 2.1;    // FC, dna-visualisation
  double sept_dna_avg_stretch = 5.3;  // SEPT, dna-visualisation
  double fc_dna_p50_stretch = 1.6;
  double sept_dna_p50_stretch = 5.2;
  double fc_bfs_avg_stretch = 25.8;  // FC, graph-bfs (the price of fairness)
  double sept_bfs_avg_stretch = 22.2;
};

[[nodiscard]] FairnessReference fig5_reference();

}  // namespace whisk::experiments::paper
