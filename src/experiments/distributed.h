#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "experiments/campaign.h"
#include "experiments/campaign_spec.h"
#include "metrics/sink.h"
#include "workload/function.h"

namespace whisk::experiments {

// Multi-process campaign execution: the grid is partitioned into
// group-aligned shards (CampaignSpec::shard), one worker process per
// shard, and the workers' outputs are merged back deterministically. The
// merged cells CSV/JSONL is byte-identical to a single-process
// run_campaign + cells_csv/cells_jsonl at ANY worker count — cells are
// seeded from grid coordinates alone, shards keep global indices, and the
// merge concatenates in shard (= global cell index) order.
//
// Two spawn modes share one wire protocol:
//   - worker_command non-empty: fork + exec `worker_command... --worker
//     --shard i/n`, the worker re-parses the grid and speaks the protocol
//     on its stdout (how `whisk_sweep --workers N` distributes itself).
//   - worker_command empty: fork only; the child calls
//     run_worker_protocol in-process and _exit(0)s (how the tests and the
//     benchmark measure multi-process scaling without binary-path
//     plumbing).
//
// Fault tolerance: a worker that exits non-zero or dies on a signal is
// re-spawned (cells are idempotent, so a re-run is byte-identical) up to
// max_attempts per shard; the driver aborts loudly if a shard keeps
// failing.
struct DistributedOptions {
  int workers = 2;         // number of shards == number of worker processes
  int worker_threads = 1;  // run_campaign threads inside each worker
  int max_attempts = 3;    // spawn attempts per shard before giving up
  bool retain_samples = true;
  std::size_t reservoir_capacity = 4096;
  // Forward worker stderr live (and let workers print progress); when
  // false worker stderr is captured and only replayed if the worker fails.
  bool verbose = false;
  // Command prefix for exec-mode workers (argv[0] + fixed args, e.g.
  // {"./whisk_sweep", "<grid>", "--threads", "2"}). The driver appends
  // "--worker --shard i/n". Empty selects fork-only in-process workers.
  std::vector<std::string> worker_command;
  // Test hook: SIGKILL this shard's FIRST attempt as soon as its protocol
  // header arrives (the worker sends the header before running any cell),
  // exercising the crash-retry path. -1 = off.
  int test_kill_shard = -1;
};

// Per-group aggregate a worker ships back: counters plus the exact
// StreamingSummary state (Welford accumulator + reservoir), so the
// driver-side summaries match what a single-process run would compute.
struct GroupSummary {
  std::size_t group = 0;  // global group index
  std::size_t calls = 0;
  std::size_t ok_calls = 0;
  std::size_t cold_starts = 0;
  double max_completion = 0.0;
  metrics::StreamingSummary response;
  metrics::StreamingSummary stretch;

  GroupSummary() : response(0), stretch(0) {}
};

// What happened to one shard: its range and how many spawn attempts it
// took (1 = no crash).
struct ShardOutcome {
  ShardRange range;
  int attempts = 1;
};

struct DistributedResult {
  CampaignSpec spec;  // normalized
  // Merged per-cell output in global cell-index order; byte-identical to
  // cells_csv/cells_jsonl of a single-process run of the same grid.
  std::string cells_csv;
  std::string cells_jsonl;
  // One entry per grid group, in global group order (shards are
  // group-aligned, so each group comes from exactly one worker).
  std::vector<GroupSummary> groups;
  std::vector<ShardOutcome> shards;
  // Max peak RSS any worker reported (ru_maxrss, KiB) — the per-process
  // memory footprint the sharding is buying down.
  long peak_worker_rss_kb = 0;
};

// Drive a full distributed campaign: spawn options.workers workers, stream
// their shards back, retry crashes, merge deterministically.
[[nodiscard]] DistributedResult run_distributed(
    const CampaignSpec& spec, const workload::FunctionCatalog& cat,
    const DistributedOptions& options = {});

// Worker side of the wire protocol: run shard `shard_index` of
// `shard_count` over the grid and write the framed results to `fd`
// (header line first — before any cell runs — then cells CSV/JSONL
// frames, per-group summary lines, and a `done` trailer carrying peak
// RSS). Doubles travel as printf "%a" hexfloats, so the driver-side
// reconstruction is bit-exact. Used by the fork-only child and by
// `whisk_sweep --worker`.
void run_worker_protocol(const CampaignSpec& spec,
                         const workload::FunctionCatalog& cat,
                         std::size_t shard_index, std::size_t shard_count,
                         const DistributedOptions& options, int fd);

}  // namespace whisk::experiments
