#include "experiments/runner.h"

#include <utility>

#include "sim/engine.h"
#include "util/check.h"
#include "workload/scenario_registry.h"

namespace whisk::experiments {

RunResult run_experiment(const ExperimentSpec& spec,
                         const workload::FunctionCatalog& cat) {
  sim::Engine engine;

  const SchedulerSpec sched = spec.scheduler().normalized();
  cluster::ClusterParams cp;
  cp.invoker = sched.invoker;
  cp.policy = sched.policy;
  cp.balancer = sched.balancer;
  // The legacy nodes()/cores()/memory_mb() triple arrives here as a
  // one-group homogeneous ClusterSpec; explicit .cluster() specs arrive
  // verbatim (groups override the base NodeParams).
  cp.deployment = spec.cluster();
  cp.node = spec.node_params();
  cp.workflow = spec.workflow();

  // Scenario and cluster noise derive from independent streams of the same
  // seed, so two schedulers at the same seed see the identical call
  // sequence (the paper compares schedulers on the same 5 sequences).
  sim::Rng scenario_rng =
      sim::Rng(spec.seed()).fork(sim::hash_tag("scenario"));
  const workload::Scenario scenario = workload::make_scenario(
      spec.scenario(), spec.scenario_context(cat), scenario_rng);

  cluster::Cluster cluster(engine, cat, cp,
                           sim::Rng(spec.seed())
                               .fork(sim::hash_tag("cluster"))
                               .next_u64());
  cluster.warmup();
  cluster.run_scenario(scenario);
  engine.run();

  const auto& col = cluster.collector();
  // expected_calls() is scenario.size() plus, under a workflow, every
  // spawned downstream stage.
  WHISK_CHECK(col.size() == cluster.expected_calls(),
              "not every call completed: the simulation deadlocked");

  RunResult out;
  out.records = col.records();
  out.responses = col.response_times();
  out.stretches = col.stretches();
  out.max_completion = col.max_completion();
  out.stats = cluster.total_stats();
  out.groups = cluster.group_stats();
  out.resubmissions = cluster.resubmissions();
  out.node_hours = cluster.node_hours();
  out.cost_usd = cluster.cost_usd();
  out.scale_ups = cluster.scale_ups();
  out.scale_downs = cluster.scale_downs();
  out.faults_injected = cluster.faults_injected();
  out.retries = cluster.retries();
  out.timeouts = cluster.timeouts();
  out.hedges_won = cluster.hedges_won();
  out.shed_calls = col.shed_calls();
  out.dropped_calls = col.dropped_calls();
  out.breaker_opens = cluster.breaker_opens();
  out.unavailability_s = cluster.unavailability_s();
  out.workflows = col.workflows().size();
  out.wf_e2e_p99 = col.workflow_e2e_p99();
  out.wf_critical_path_s = col.workflow_critical_path_mean();
  out.wf_slack_s = col.workflow_slack_mean();
  out.goodput = out.max_completion > 0.0
                    ? static_cast<double>(col.ok_calls()) / out.max_completion
                    : 0.0;
  if (cp.deployment.slo_set) {
    for (double r : out.responses) {
      if (r > cp.deployment.slo.threshold_s) ++out.slo_violations;
    }
  }
  return out;
}

std::vector<RunResult> run_repetitions(ExperimentSpec spec,
                                       const workload::FunctionCatalog& cat,
                                       int reps) {
  const std::uint64_t base_seed = spec.seed();
  std::vector<RunResult> out;
  out.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    spec.seed(base_seed + static_cast<std::uint64_t>(r));
    out.push_back(run_experiment(spec, cat));
  }
  return out;
}

std::vector<double> run_idle_function_benchmark(
    const workload::FunctionCatalog& cat, workload::FunctionId fn, int calls,
    std::uint64_t seed, int cores) {
  sim::Engine engine;
  cluster::ClusterParams cp;
  cp.invoker = "ours";
  cp.policy = "fifo";
  cp.node.cores = cores;

  cluster::Cluster cluster(engine, cat, cp, seed);
  cluster.warmup();

  // Closed loop: issue the next call only after the previous response
  // arrives (the paper benchmarks each function 50 times on an idle warmed
  // system).
  std::vector<double> responses;
  responses.reserve(static_cast<std::size_t>(calls));

  workload::Scenario one;
  one.calls.push_back(workload::CallRequest{0, fn, 0.0});
  cluster.run_scenario(one);
  std::size_t seen = 0;
  while (static_cast<int>(seen) < calls) {
    engine.run();
    const auto& recs = cluster.collector().records();
    WHISK_CHECK(recs.size() == seen + 1, "idle benchmark lost a call");
    responses.push_back(recs.back().response());
    ++seen;
    if (static_cast<int>(seen) < calls) {
      workload::Scenario next;
      next.calls.push_back(workload::CallRequest{
          static_cast<workload::CallId>(seen), fn, engine.now() + 0.05});
      cluster.run_scenario(next);
    }
  }
  return responses;
}

}  // namespace whisk::experiments
