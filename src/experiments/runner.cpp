#include "experiments/runner.h"

#include <utility>

#include "experiments/workspace.h"
#include "sim/engine.h"
#include "util/check.h"
#include "workload/scenario_registry.h"

namespace whisk::experiments {

RunResult run_experiment(const ExperimentSpec& spec,
                         const workload::FunctionCatalog& cat) {
  // A single-use workspace is exactly the historical fresh-construction
  // path (cold engine, cold collector, scenario generated on first use);
  // campaigns keep one workspace per worker and amortize all of it.
  CellWorkspace workspace;
  return workspace.run(spec, cat);
}

std::vector<RunResult> run_repetitions(ExperimentSpec spec,
                                       const workload::FunctionCatalog& cat,
                                       int reps) {
  const std::uint64_t base_seed = spec.seed();
  std::vector<RunResult> out;
  out.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    spec.seed(base_seed + static_cast<std::uint64_t>(r));
    out.push_back(run_experiment(spec, cat));
  }
  return out;
}

std::vector<double> run_idle_function_benchmark(
    const workload::FunctionCatalog& cat, workload::FunctionId fn, int calls,
    std::uint64_t seed, int cores) {
  sim::Engine engine;
  cluster::ClusterParams cp;
  cp.invoker = "ours";
  cp.policy = "fifo";
  cp.node.cores = cores;

  cluster::Cluster cluster(engine, cat, cp, seed);
  cluster.warmup();

  // Closed loop: issue the next call only after the previous response
  // arrives (the paper benchmarks each function 50 times on an idle warmed
  // system).
  std::vector<double> responses;
  responses.reserve(static_cast<std::size_t>(calls));

  workload::Scenario one;
  one.calls.push_back(workload::CallRequest{0, fn, 0.0});
  cluster.run_scenario(one);
  std::size_t seen = 0;
  while (static_cast<int>(seen) < calls) {
    engine.run();
    const auto& col = cluster.collector();
    WHISK_CHECK(col.size() == seen + 1, "idle benchmark lost a call");
    responses.push_back(col.record(col.size() - 1).response());
    ++seen;
    if (static_cast<int>(seen) < calls) {
      workload::Scenario next;
      next.calls.push_back(workload::CallRequest{
          static_cast<workload::CallId>(seen), fn, engine.now() + 0.05});
      cluster.run_scenario(next);
    }
  }
  return responses;
}

}  // namespace whisk::experiments
