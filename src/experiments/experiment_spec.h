#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "experiments/scheduler_spec.h"
#include "node/params.h"

namespace whisk::experiments {

// The kind of measured burst to generate.
enum class ScenarioKind {
  kUniform,     // 1.1 * cores * intensity requests, equal per function
  kFixedTotal,  // explicit request count (multi-node experiments)
  kFairness,    // Sec. VII-D: few calls of a rare long function
};

// A declarative description of one experiment: the scheduler (as registry
// names), the deployment size, the workload, and a *named* map of ablation
// overrides (replacing the old flat struct of sentinel -1.0 fields).
// Chainable builder setters share their getter's name:
//
//   auto spec = ExperimentSpec()
//                   .scheduler("ours/sept")
//                   .cores(10)
//                   .intensity(60)
//                   .with_override("history_window", 5);
//   run_experiment(spec, catalog);
//
// Unknown override names abort immediately, listing the valid keys.
class ExperimentSpec {
 public:
  ExperimentSpec() = default;

  // --- scheduler -----------------------------------------------------------
  ExperimentSpec& scheduler(SchedulerSpec spec);
  ExperimentSpec& scheduler(std::string_view text);  // SchedulerSpec::parse
  [[nodiscard]] const SchedulerSpec& scheduler() const { return scheduler_; }

  // --- deployment ----------------------------------------------------------
  ExperimentSpec& cores(int value);
  [[nodiscard]] int cores() const { return cores_; }
  ExperimentSpec& nodes(int value);
  [[nodiscard]] int nodes() const { return nodes_; }
  ExperimentSpec& memory_mb(double value);
  [[nodiscard]] double memory_mb() const { return memory_mb_; }

  // --- workload ------------------------------------------------------------
  ExperimentSpec& intensity(int value);  // ignored for kFixedTotal
  [[nodiscard]] int intensity() const { return intensity_; }
  ExperimentSpec& scenario(ScenarioKind value);
  [[nodiscard]] ScenarioKind scenario() const { return scenario_; }
  ExperimentSpec& fixed_total(std::size_t requests);  // implies kFixedTotal
  [[nodiscard]] std::size_t fixed_total() const { return fixed_total_; }
  ExperimentSpec& fairness(std::string rare_function, std::size_t rare_calls);
  [[nodiscard]] const std::string& fairness_rare_function() const {
    return fairness_rare_function_;
  }
  [[nodiscard]] std::size_t fairness_rare_calls() const {
    return fairness_rare_calls_;
  }

  // --- repetition ----------------------------------------------------------
  ExperimentSpec& seed(std::uint64_t value);
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // --- ablation overrides ----------------------------------------------------
  // Named NodeParams knobs; see override_names() for the valid keys.
  // Integer-valued knobs (history_window, dispatch_daemon_gate) take the
  // value rounded towards zero.
  ExperimentSpec& with_override(std::string_view name, double value);
  [[nodiscard]] const std::map<std::string, double>& overrides() const {
    return overrides_;
  }
  [[nodiscard]] static const std::vector<std::string>& override_names();

  // NodeParams for this spec: cores/memory plus every override applied.
  [[nodiscard]] node::NodeParams node_params() const;

 private:
  SchedulerSpec scheduler_;
  int cores_ = 10;  // per node, for action containers
  int nodes_ = 1;
  double memory_mb_ = 32.0 * 1024.0;
  int intensity_ = 30;
  ScenarioKind scenario_ = ScenarioKind::kUniform;
  std::size_t fixed_total_ = 0;
  std::string fairness_rare_function_ = "dna-visualisation";
  std::size_t fairness_rare_calls_ = 10;
  std::uint64_t seed_ = 0;  // repetition index; drives scenario + node noise
  std::map<std::string, double> overrides_;
};

}  // namespace whisk::experiments
