#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster_spec.h"
#include "experiments/scheduler_spec.h"
#include "node/params.h"
#include "workload/scenario_registry.h"
#include "workload/scenario_spec.h"
#include "workload/workflow.h"

namespace whisk::experiments {

// A declarative description of one experiment: the scheduler (as registry
// names), the deployment size, the workload (as a registry-named
// ScenarioSpec), and a *named* map of ablation overrides (replacing the old
// flat struct of sentinel -1.0 fields). Chainable builder setters share
// their getter's name:
//
//   auto spec = ExperimentSpec()
//                   .scheduler("ours/sept")
//                   .cores(10)
//                   .scenario("poisson?rate=40&mix=random")
//                   .with_override("history_window", 5);
//   run_experiment(spec, catalog);
//
// The workload defaults to the paper's uniform burst; .intensity() is its
// load knob. Unknown scenario names, parameter keys, and override names all
// abort immediately, listing the valid alternatives. Setting intensity
// together with a scenario that does not take one (e.g. fixed-total, which
// sizes the burst via its `total` parameter) is rejected rather than
// silently ignored.
class ExperimentSpec {
 public:
  ExperimentSpec() = default;

  // --- scheduler -----------------------------------------------------------
  ExperimentSpec& scheduler(SchedulerSpec spec);
  ExperimentSpec& scheduler(std::string_view text);  // SchedulerSpec::parse
  [[nodiscard]] const SchedulerSpec& scheduler() const { return scheduler_; }

  // --- deployment ----------------------------------------------------------
  // The full declarative form: heterogeneous node groups, keep-alive
  // policy and lifecycle events (cluster::ClusterSpec grammar). cores()
  // and memory_mb() still set the *base* NodeParams that groups inherit
  // and override; nodes() is legacy sugar for a one-group deployment and
  // conflicts with an explicit cluster().
  ExperimentSpec& cluster(cluster::ClusterSpec spec);
  ExperimentSpec& cluster(std::string_view text);  // ClusterSpec::parse
  // The effective deployment: the explicit spec when set, else the
  // homogeneous one-group expansion of nodes().
  [[nodiscard]] cluster::ClusterSpec cluster() const;
  [[nodiscard]] bool has_explicit_cluster() const { return cluster_set_; }

  // Closed-loop scaling controller (cluster::AutoscalerSpec grammar, e.g.
  // "target-util?low=0.3&high=0.85"). Sugar for setting the deployment's
  // autoscaler section: cluster() folds it into the effective ClusterSpec.
  // Setting it both here and inside an explicit cluster() to different
  // values is rejected.
  ExperimentSpec& autoscaler(cluster::AutoscalerSpec spec);
  ExperimentSpec& autoscaler(std::string_view text);
  [[nodiscard]] const cluster::AutoscalerSpec& autoscaler() const {
    return autoscaler_;
  }
  [[nodiscard]] bool has_explicit_autoscaler() const {
    return autoscaler_set_;
  }

  // Stochastic fault processes (cluster::FaultRegistry grammar, e.g.
  // "crash-restart?mtbf-s=120&mttr-s=15,slow-node?factor=4"; "none" for an
  // explicit empty list). Sugar for the deployment's faults= section:
  // cluster() folds it in and re-validates the combined spec. Setting
  // faults both here and inside an explicit cluster() is rejected.
  ExperimentSpec& faults(std::vector<cluster::FaultSpec> specs);
  ExperimentSpec& faults(std::string_view text);  // parse_fault_list
  [[nodiscard]] const std::vector<cluster::FaultSpec>& faults() const {
    return faults_;
  }
  [[nodiscard]] bool has_explicit_faults() const { return faults_set_; }

  // Controller-side recovery policy (cluster::ResilienceSpec grammar, e.g.
  // "timeout-s=2&max-attempts=3&hedge-p=0.95"). Same fold-and-conflict
  // contract as faults().
  ExperimentSpec& resilience(cluster::ResilienceSpec spec);
  ExperimentSpec& resilience(std::string_view text);
  [[nodiscard]] const cluster::ResilienceSpec& resilience() const {
    return resilience_;
  }
  [[nodiscard]] bool has_explicit_resilience() const {
    return resilience_set_;
  }

  // Composite-function shape (workload::WorkflowSpec grammar, e.g.
  // "chain?stages=4" or "fanout?width=8&join=all"; "none" keeps calls
  // independent). Every scenario call then roots one workflow instance.
  ExperimentSpec& workflow(workload::WorkflowSpec spec);
  ExperimentSpec& workflow(std::string_view text);  // WorkflowSpec::parse
  [[nodiscard]] const workload::WorkflowSpec& workflow() const {
    return workflow_;
  }
  [[nodiscard]] bool has_explicit_workflow() const { return workflow_set_; }

  ExperimentSpec& cores(int value);
  [[nodiscard]] int cores() const { return cores_; }
  ExperimentSpec& nodes(int value);
  [[nodiscard]] int nodes() const { return nodes_; }
  ExperimentSpec& memory_mb(double value);
  [[nodiscard]] double memory_mb() const { return memory_mb_; }

  // --- workload ------------------------------------------------------------
  ExperimentSpec& scenario(workload::ScenarioSpec spec);
  ExperimentSpec& scenario(std::string_view text);  // ScenarioSpec::parse
  [[nodiscard]] const workload::ScenarioSpec& scenario() const {
    return scenario_;
  }
  // The paper's load knob v (1.1 * cores * v requests). Only valid with
  // scenarios that declare an `intensity` parameter.
  ExperimentSpec& intensity(int value);
  [[nodiscard]] int intensity() const { return intensity_; }

  // The deployment-side knobs handed to the scenario generator; aborts if
  // intensity() was set but the chosen scenario does not take one (or sets
  // its own intensity parameter as well).
  [[nodiscard]] workload::ScenarioContext scenario_context(
      const workload::FunctionCatalog& catalog) const;

  // --- repetition ----------------------------------------------------------
  ExperimentSpec& seed(std::uint64_t value);
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // --- ablation overrides ----------------------------------------------------
  // Named NodeParams knobs; see override_names() for the valid keys.
  // Integer-valued knobs (history_window, dispatch_daemon_gate) take the
  // value rounded towards zero.
  ExperimentSpec& with_override(std::string_view name, double value);
  [[nodiscard]] const std::map<std::string, double>& overrides() const {
    return overrides_;
  }
  [[nodiscard]] static const std::vector<std::string>& override_names();

  // NodeParams for this spec: cores/memory plus every override applied.
  [[nodiscard]] node::NodeParams node_params() const;

 private:
  SchedulerSpec scheduler_;
  int cores_ = 10;  // per node, for action containers
  int nodes_ = 1;
  bool nodes_set_ = false;
  cluster::ClusterSpec cluster_;
  bool cluster_set_ = false;
  cluster::AutoscalerSpec autoscaler_;
  bool autoscaler_set_ = false;
  std::vector<cluster::FaultSpec> faults_;
  bool faults_set_ = false;
  cluster::ResilienceSpec resilience_;
  bool resilience_set_ = false;
  workload::WorkflowSpec workflow_;  // "none" unless set
  bool workflow_set_ = false;
  double memory_mb_ = 32.0 * 1024.0;
  workload::ScenarioSpec scenario_;  // defaults to "uniform"
  int intensity_ = 30;
  bool intensity_set_ = false;
  std::uint64_t seed_ = 0;  // repetition index; drives scenario + node noise
  std::map<std::string, double> overrides_;
};

}  // namespace whisk::experiments
