#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/policy.h"
#include "metrics/record.h"
#include "node/invoker.h"
#include "util/stats.h"
#include "workload/function.h"
#include "workload/scenario.h"

namespace whisk::experiments {

// One of the six schedulers the paper compares: the OpenWhisk baseline or
// our approach with one of the five policies.
struct Scheduler {
  cluster::Approach approach = cluster::Approach::kOurs;
  core::PolicyKind policy = core::PolicyKind::kFifo;

  [[nodiscard]] std::string label() const;
};

// baseline, FIFO, SEPT, EECT, RECT, FC — the order of the paper's figures.
[[nodiscard]] const std::vector<Scheduler>& paper_schedulers();

// The kind of measured burst to generate.
enum class ScenarioKind {
  kUniform,     // 1.1 * cores * intensity requests, equal per function
  kFixedTotal,  // explicit request count (multi-node experiments)
  kFairness,    // Sec. VII-D: few calls of a rare long function
};

struct ExperimentConfig {
  Scheduler scheduler;
  int cores = 10;          // per node, for action containers
  int intensity = 30;      // ignored for kFixedTotal
  int num_nodes = 1;
  double memory_mb = 32.0 * 1024.0;
  std::uint64_t seed = 0;  // repetition index; drives scenario + node noise

  ScenarioKind scenario = ScenarioKind::kUniform;
  std::size_t fixed_total_requests = 0;  // for kFixedTotal
  std::string fairness_rare_function = "dna-visualisation";
  std::size_t fairness_rare_calls = 10;  // for kFairness

  // Override knobs for ablations; negative/zero = keep the NodeParams
  // default.
  double our_post_factor_loaded = -1.0;
  double strain_per_container = -1.0;
  double context_switch_beta = -1.0;
  std::size_t history_window = 0;
  double fc_window_s = -1.0;
  int dispatch_daemon_gate = 0;
  cluster::BalancerKind balancer = cluster::BalancerKind::kRoundRobin;
};

// Everything the paper reports about one run.
struct RunResult {
  std::vector<metrics::CallRecord> records;
  std::vector<double> responses;  // R(i), seconds
  std::vector<double> stretches;  // S(i)
  double max_completion = 0.0;    // max c(i), seconds
  node::InvokerStats stats;
};

// Build NodeParams for a config (applies overrides).
[[nodiscard]] node::NodeParams make_node_params(const ExperimentConfig& cfg);

// Run one seeded experiment end to end (warm-up, 60 s burst, drain).
[[nodiscard]] RunResult run_experiment(const ExperimentConfig& cfg,
                                       const workload::FunctionCatalog& cat);

// Run `reps` seeds (the paper uses 5) and return the per-seed results.
[[nodiscard]] std::vector<RunResult> run_repetitions(
    ExperimentConfig cfg, const workload::FunctionCatalog& cat,
    int reps = 5);

// Pool the responses / stretches of several repetitions, as the paper's
// box plots do.
[[nodiscard]] std::vector<double> pooled_responses(
    const std::vector<RunResult>& reps);
[[nodiscard]] std::vector<double> pooled_stretches(
    const std::vector<RunResult>& reps);

// Closed-loop idle-system benchmark of a single function (Table I): `calls`
// sequential invocations on a warm single-node deployment; returns the
// client-side response times in seconds.
[[nodiscard]] std::vector<double> run_idle_function_benchmark(
    const workload::FunctionCatalog& cat, workload::FunctionId fn,
    int calls, std::uint64_t seed, int cores = 10);

}  // namespace whisk::experiments
