#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "experiments/experiment_spec.h"
#include "experiments/scheduler_spec.h"
#include "metrics/record.h"
#include "node/invoker.h"
#include "util/stats.h"
#include "workload/function.h"
#include "workload/scenario.h"

namespace whisk::experiments {

// Everything the paper reports about one run.
struct RunResult {
  // Terminal records the run produced (ok + shed + dropped). Always set,
  // even when `records` was not materialized (CellWorkspace::run with
  // want_records = false).
  std::size_t calls = 0;
  std::vector<metrics::CallRecord> records;
  std::vector<double> responses;  // R(i), seconds
  std::vector<double> stretches;  // S(i)
  double max_completion = 0.0;    // max c(i), seconds
  node::InvokerStats stats;
  // Per node group, in ClusterSpec group order (one entry for legacy
  // homogeneous runs).
  std::vector<cluster::GroupStats> groups;
  // Extra submissions caused by node failures (a call surviving two
  // failures counts twice; 0 without fail events).
  std::size_t resubmissions = 0;
  // Fleet economics: node-hours metered per member (pro-rated over joins
  // and drains) and the cost at each group's cost-per-hour rate. Static
  // fleets with the default rate report node_hours > 0 but cost_usd 0.
  double node_hours = 0.0;
  double cost_usd = 0.0;
  // Responses above the deployment's `slo=` threshold (0 when no SLO set).
  std::size_t slo_violations = 0;
  // Autoscaler activity: scale-up / scale-down decisions taken (0 without
  // an autoscaler= section).
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;
  // Robustness telemetry (all 0 on fault-free, resilience-free runs).
  // Fault events fired (crashes, flaps, slow windows, lost completions).
  std::size_t faults_injected = 0;
  // Resilience-layer activity: timeout-driven retries issued, per-call
  // timeouts fired, hedged duplicates whose copy finished first, calls
  // refused at admission (disposition=shed), calls abandoned after the
  // attempt bound (disposition=dropped), and circuit-breaker trips.
  std::size_t retries = 0;
  std::size_t timeouts = 0;
  std::size_t hedges_won = 0;
  std::size_t shed_calls = 0;
  std::size_t dropped_calls = 0;
  std::size_t breaker_opens = 0;
  // Node-seconds spent failed (crash to restart), summed over nodes.
  double unavailability_s = 0.0;
  // Workflow-level metrics (all 0 on workflow-free runs): instances whose
  // every stage resolved, end-to-end latency p99, mean realized critical
  // path and mean slack (e2e minus critical path — queueing, network and
  // fan-in straggler time).
  std::size_t workflows = 0;
  double wf_e2e_p99 = 0.0;
  double wf_critical_path_s = 0.0;
  double wf_slack_s = 0.0;
  // Successful completions per second of makespan — the paper-adjacent
  // "useful work" rate that shedding/dropping trades latency against.
  double goodput = 0.0;
};

// Run one seeded experiment end to end (warm-up, 60 s burst, drain).
[[nodiscard]] RunResult run_experiment(const ExperimentSpec& spec,
                                       const workload::FunctionCatalog& cat);

// Run `reps` seeded repetitions serially and return the per-seed results.
//
// Seed contract: repetition r runs at seed spec.seed() + r — the caller's
// base seed is respected, never clobbered. With the default base seed 0 and
// reps = 5 this is exactly the paper's five sequences (seeds 0..4), which
// the figure/table pins rely on. This is the serial reference path; sweeps
// over schedulers/scenarios/seeds belong on experiments::run_campaign
// (campaign.h), whose per-cell output is pinned byte-identical to this
// function's.
[[nodiscard]] std::vector<RunResult> run_repetitions(
    ExperimentSpec spec, const workload::FunctionCatalog& cat, int reps = 5);

// Closed-loop idle-system benchmark of a single function (Table I): `calls`
// sequential invocations on a warm single-node deployment; returns the
// client-side response times in seconds.
[[nodiscard]] std::vector<double> run_idle_function_benchmark(
    const workload::FunctionCatalog& cat, workload::FunctionId fn,
    int calls, std::uint64_t seed, int cores = 10);

}  // namespace whisk::experiments
