#include "experiments/workspace.h"

#include <cstdint>
#include <utility>

#include "cluster/cluster.h"
#include "util/check.h"
#include "workload/scenario_registry.h"

namespace whisk::experiments {

const workload::Scenario& CellWorkspace::scenario_for(
    const ExperimentSpec& spec, const workload::FunctionCatalog& cat) {
  // Every input of make_scenario: the spec string (name + parameters), the
  // seed that derives the generator's rng stream, the deployment-side
  // ScenarioContext knobs, and the catalog identity.
  std::string key = spec.scenario().to_string();
  key += '\x1f';
  key += std::to_string(spec.seed());
  key += '\x1f';
  key += std::to_string(spec.cores());
  key += '\x1f';
  key += std::to_string(spec.nodes());
  key += '\x1f';
  key += std::to_string(spec.intensity());
  key += '\x1f';
  key += std::to_string(reinterpret_cast<std::uintptr_t>(&cat));

  const auto it = scenarios_.find(key);
  if (it != scenarios_.end()) return it->second;
  if (scenarios_.size() >= kMaxCachedScenarios) scenarios_.clear();

  // Same independent stream as the historical run_experiment path: two
  // schedulers at the same seed see the identical call sequence.
  sim::Rng scenario_rng =
      sim::Rng(spec.seed()).fork(sim::hash_tag("scenario"));
  return scenarios_
      .emplace(std::move(key),
               workload::make_scenario(spec.scenario(),
                                       spec.scenario_context(cat),
                                       scenario_rng))
      .first->second;
}

RunResult CellWorkspace::run(const ExperimentSpec& spec,
                             const workload::FunctionCatalog& cat,
                             bool want_records) {
  engine_.reset();

  const SchedulerSpec sched = spec.scheduler().normalized();
  cluster::ClusterParams cp;
  cp.invoker = sched.invoker;
  cp.policy = sched.policy;
  cp.balancer = sched.balancer;
  // The legacy nodes()/cores()/memory_mb() triple arrives here as a
  // one-group homogeneous ClusterSpec; explicit .cluster() specs arrive
  // verbatim (groups override the base NodeParams).
  cp.deployment = spec.cluster();
  cp.node = spec.node_params();
  cp.workflow = spec.workflow();

  const workload::Scenario& scenario = scenario_for(spec, cat);

  cluster::Cluster cluster(engine_, cat, cp,
                           sim::Rng(spec.seed())
                               .fork(sim::hash_tag("cluster"))
                               .next_u64());
  cluster.adopt_collector_storage(std::move(storage_));
  cluster.warmup();
  cluster.run_scenario(scenario);
  engine_.run();

  const auto& col = cluster.collector();
  // expected_calls() is scenario.size() plus, under a workflow, every
  // spawned downstream stage.
  WHISK_CHECK(col.size() == cluster.expected_calls(),
              "not every call completed: the simulation deadlocked");

  RunResult out;
  out.calls = col.size();
  if (want_records) out.records = col.records();
  out.responses = col.response_times();
  out.stretches = col.stretches();
  out.max_completion = col.max_completion();
  out.stats = cluster.total_stats();
  out.groups = cluster.group_stats();
  out.resubmissions = cluster.resubmissions();
  out.node_hours = cluster.node_hours();
  out.cost_usd = cluster.cost_usd();
  out.scale_ups = cluster.scale_ups();
  out.scale_downs = cluster.scale_downs();
  out.faults_injected = cluster.faults_injected();
  out.retries = cluster.retries();
  out.timeouts = cluster.timeouts();
  out.hedges_won = cluster.hedges_won();
  out.shed_calls = col.shed_calls();
  out.dropped_calls = col.dropped_calls();
  out.breaker_opens = cluster.breaker_opens();
  out.unavailability_s = cluster.unavailability_s();
  out.workflows = col.workflows().size();
  out.wf_e2e_p99 = col.workflow_e2e_p99();
  out.wf_critical_path_s = col.workflow_critical_path_mean();
  out.wf_slack_s = col.workflow_slack_mean();
  out.goodput = out.max_completion > 0.0
                    ? static_cast<double>(col.ok_calls()) / out.max_completion
                    : 0.0;
  if (cp.deployment.slo_set) {
    for (double r : out.responses) {
      if (r > cp.deployment.slo.threshold_s) ++out.slo_violations;
    }
  }

  // Take the column storage back before the cluster goes away; only
  // capacity survives into the next cell.
  storage_ = cluster.release_collector_storage();
  return out;
}

}  // namespace whisk::experiments
