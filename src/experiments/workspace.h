#pragma once

#include <string>
#include <unordered_map>

#include "experiments/experiment_spec.h"
#include "experiments/runner.h"
#include "metrics/collector.h"
#include "sim/engine.h"
#include "workload/function.h"
#include "workload/scenario.h"

namespace whisk::experiments {

// A reusable, worker-local execution context for experiment cells — the
// campaign hot path. One workspace replaces the fresh-everything-per-cell
// construction with warm state that survives from cell to cell:
//
//   * the sim::Engine is reset(), not destroyed: its slot arena, heap array
//     and free list keep their capacity, so the next cell's thousands of
//     schedule/execute pairs run entirely allocation-free;
//   * the Collector's struct-of-arrays columns are recycled through
//     Cluster::adopt_collector_storage / release_collector_storage
//     (clear-not-free), so record collection stops allocating once the
//     columns have grown to the grid's largest cell;
//   * generated scenarios are memoized by their full identity (spec string,
//     seed, cores/nodes/intensity context, catalog), so a grid that crosses
//     S schedulers with the same scenario x seed axis generates each call
//     sequence once instead of S times.
//
// The Cluster itself is reconstructed per cell — its invokers, pools and
// balancer are seeded from the cell's coordinates, so their state can never
// legally survive — but it is re-deployed over the warm engine and adopts
// the recycled collector storage, which is where the per-cell allocation
// cost lived.
//
// Byte-identity contract: a workspace run produces bit-identical results to
// a fresh-construction run. The engine orders events on (time, seq) alone
// (slot recycling cannot reorder anything), the collector round-trips only
// container capacity, and the scenario cache is keyed by every input of
// workload::make_scenario. The workspace-reuse test pins this against
// run_experiment across grids, including chaos (faults + workflows) cells.
//
// Not thread-safe: one workspace per worker (run_campaign keeps a vector of
// them, one per pool thread). Cached scenarios identify their catalog by
// address, so catalogs must outlive the workspace.
class CellWorkspace {
 public:
  CellWorkspace() = default;
  CellWorkspace(const CellWorkspace&) = delete;
  CellWorkspace& operator=(const CellWorkspace&) = delete;

  // Run one cell end to end (warm-up, burst, drain), exactly like
  // run_experiment. With want_records = false the RunResult's records
  // vector stays empty (RunResult::calls still counts the resolved calls) —
  // campaigns that neither retain nor stream records skip materializing
  // them entirely.
  [[nodiscard]] RunResult run(const ExperimentSpec& spec,
                              const workload::FunctionCatalog& cat,
                              bool want_records = true);

 private:
  // The cell's scenario, generated on first use and memoized. The cache is
  // emptied wholesale if it ever reaches kMaxCachedScenarios (a bound for
  // pathological grids; typical grids hold seeds x scenarios entries).
  [[nodiscard]] const workload::Scenario& scenario_for(
      const ExperimentSpec& spec, const workload::FunctionCatalog& cat);

  static constexpr std::size_t kMaxCachedScenarios = 4096;

  sim::Engine engine_;
  metrics::Collector storage_;  // parked between runs, capacity warm
  std::unordered_map<std::string, workload::Scenario> scenarios_;
};

}  // namespace whisk::experiments
