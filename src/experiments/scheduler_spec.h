#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace whisk::experiments {

// One scheduler under test, as three registry names: which node-level
// resource manager runs ("baseline", "ours", ...), which policy orders its
// pending queue, and how the controller spreads calls over workers.
// Replaces the old {Approach, PolicyKind} pair with an open, declarative
// value type:
//
//   auto spec = SchedulerSpec::parse("ours/sept/round-robin");
//   spec.to_string()  -> "ours/sept/round-robin"
//   spec.label()      -> "SEPT"   (the paper's figure label)
//
// parse() accepts "invoker", "invoker/policy" or "invoker/policy/balancer";
// omitted components keep their defaults. Components are validated against
// the three registries and normalized to canonical names (lowercase,
// aliases resolved), so parse(to_string()) round-trips exactly.
struct SchedulerSpec {
  std::string invoker = "ours";
  std::string policy = "fifo";
  std::string balancer = "round-robin";

  [[nodiscard]] static SchedulerSpec parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  // The paper's figure label: "baseline" for the stock invoker, else the
  // uppercased policy name ("FIFO", "SEPT", ..., "SJF-AGING").
  [[nodiscard]] std::string label() const;

  // Abort with a name-listing error if any component is unknown; returns
  // a copy with every component replaced by its canonical name.
  [[nodiscard]] SchedulerSpec normalized() const;

  friend bool operator==(const SchedulerSpec& a, const SchedulerSpec& b) {
    return a.invoker == b.invoker && a.policy == b.policy &&
           a.balancer == b.balancer;
  }
  friend bool operator!=(const SchedulerSpec& a, const SchedulerSpec& b) {
    return !(a == b);
  }
};

// baseline, FIFO, SEPT, EECT, RECT, FC — the order of the paper's figures.
[[nodiscard]] const std::vector<SchedulerSpec>& paper_schedulers();

}  // namespace whisk::experiments
