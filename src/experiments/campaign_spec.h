#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cluster/cluster_spec.h"
#include "experiments/experiment_spec.h"
#include "experiments/scheduler_spec.h"
#include "workload/scenario_spec.h"

namespace whisk::experiments {

// One cell of an expanded campaign grid: the fully materialized
// ExperimentSpec plus its coordinates along every axis.
struct CampaignCell {
  std::size_t index = 0;
  std::size_t scheduler_i = 0;
  std::size_t scenario_i = 0;
  std::size_t nodes_i = 0;
  std::size_t cores_i = 0;
  std::size_t memory_i = 0;
  std::size_t cluster_i = 0;
  std::size_t autoscaler_i = 0;
  std::size_t faults_i = 0;
  std::size_t workflow_i = 0;
  std::vector<std::size_t> override_i;  // one per override axis
  std::size_t seed_i = 0;
  ExperimentSpec spec;
};

// A contiguous, group-aligned slice of a campaign's expanded cell index
// space — the unit of distribution for multi-process campaigns. Shards are
// aligned to group boundaries (a group = every non-seed coordinate fixed),
// so one group's seed-ordered cells never straddle two workers and group
// aggregation needs no cross-shard reconciliation. Cell indices, group
// indices and per-cell seeds are the *global* ones: they derive from grid
// coordinates alone, so a shard run is byte-identical to the same slice of
// an unsharded run.
//
// A shard renders as the pair (grid string, "i/n" selector): parsing the
// grid back and calling shard(i, n) reproduces the identical range, which
// is how `whisk_sweep "<grid>" --shard i/n` round-trips.
struct ShardRange {
  std::size_t index = 0;  // which shard (0-based)
  std::size_t count = 1;  // out of how many
  std::size_t begin_group = 0;  // [begin_group, end_group)
  std::size_t end_group = 0;
  std::size_t seeds_per_group = 1;

  [[nodiscard]] std::size_t groups() const { return end_group - begin_group; }
  [[nodiscard]] std::size_t begin_cell() const {
    return begin_group * seeds_per_group;
  }
  [[nodiscard]] std::size_t end_cell() const {
    return end_group * seeds_per_group;
  }
  [[nodiscard]] std::size_t cells() const {
    return groups() * seeds_per_group;
  }
  [[nodiscard]] bool empty() const { return begin_group == end_group; }

  // Partition this shard's group range into `m` contiguous sub-shards with
  // the same balanced formula as CampaignSpec::shard, so sharding composes:
  // a worker handed shard i/n can fan its slice out again, and the
  // concatenation of every sub-shard is exactly the parent.
  [[nodiscard]] ShardRange subshard(std::size_t j, std::size_t m) const;

  // The CLI selector: "i/n".
  [[nodiscard]] std::string selector() const;
  // Parse "i/n" (whole numbers, i < n, n > 0); aborts with a diagnostic
  // otherwise. Returns {index, count} — feed it to CampaignSpec::shard.
  [[nodiscard]] static std::pair<std::size_t, std::size_t> parse_selector(
      std::string_view text);

  friend bool operator==(const ShardRange& a, const ShardRange& b) {
    return a.index == b.index && a.count == b.count &&
           a.begin_group == b.begin_group && a.end_group == b.end_group &&
           a.seeds_per_group == b.seeds_per_group;
  }
  friend bool operator!=(const ShardRange& a, const ShardRange& b) {
    return !(a == b);
  }
};

// A declarative sweep grid — the campaign-level mirror of SchedulerSpec and
// ScenarioSpec. The paper's result grids (schedulers x scenarios x 5 seeds,
// with deployment axes where a figure sweeps them) are one CampaignSpec;
// run_campaign executes the cross product.
//
//   auto grid = CampaignSpec::parse(
//       "schedulers=baseline/fifo,ours/sept; "
//       "scenarios=uniform?intensity=30,uniform?intensity=60; "
//       "seeds=0..4; cores=10");
//   grid.size()  -> 20
//
// Grammar: semicolon-separated `axis=item,item,...` entries. Axes:
// schedulers, scenarios, seeds, nodes, cores, memory-mb, clusters, and any
// number of `override:<name>` ablation axes (names validated against
// ExperimentSpec::override_names()). `seeds` accepts inclusive ranges
// (`0..4`) alongside single values. Axis names are case-insensitive;
// omitted axes keep their defaults (seeds default to the paper's 0..4).
// Items must not contain `,` or `;` — a scenario whose parameter value
// needs a comma (mix weights) cannot ride in a grid string, but can still
// be set on the struct directly. `clusters` items use the ClusterSpec
// compact form ('+' between groups/events, '|' between sections):
//
//   clusters=node:4,big:2?cores=16+small:4|keep-alive=ttl?idle-s=300
//
// sweeps a homogeneous 4-node fleet against a heterogeneous TTL one. The
// clusters axis supersedes `nodes` (setting both non-default aborts);
// cores/memory-mb still sweep the *base* NodeParams each group inherits.
// `autoscalers` (alias `autoscaler`) sweeps closed-loop scaling
// controllers (AutoscalerSpec grammar, "none" included) across every
// deployment — the cost/SLO frontier is a `clusters=` x `autoscalers=`
// grid. An autoscaler axis owns that dimension: cluster items must not
// also carry an autoscaler= section. `faults` (alias `fault`) sweeps
// fault regimes the same way: each item is a '+'-joined FaultSpec list
// ("none" for the fault-free baseline cell), e.g.
//
//   faults=none,crash-restart?mtbf-s=120+slow-node?factor=4
//
// and a faults axis likewise owns the dimension (cluster items must not
// carry a faults= section of their own). `workflows` (alias `workflow`)
// sweeps composite-function DAG shapes (WorkflowSpec grammar, "none" for
// the independent-calls baseline cell):
//
//   workflows=none,chain?stages=4,fanout?width=8&join=all
//
// Workflow items use '+' inside dag edge lists ("dag?edges=a>b+a>c"),
// since ',' separates axis items.
//
// The workload's load knob travels inside the scenario item
// ("uniform?intensity=60"), never through ExperimentSpec::intensity(): one
// axis, one spelling, and the scenario generator reads the parameter with
// exactly the same effect (and rng stream) as the builder knob.
//
// to_string() prints every fixed axis in canonical order (plus the override
// axes sorted by name), so parse(to_string()) round-trips exactly.
//
// Cell expansion order is seed-innermost:
//   scheduler > scenario > nodes > cores > memory > clusters > autoscalers
//   > faults > workflows > overrides > seed
// so the cells of one "group" (every axis fixed except the seed) are
// contiguous and seed-ordered — pooling a group's cells reproduces the
// serial run_repetitions pooling byte for byte.
struct CampaignSpec {
  std::vector<SchedulerSpec> schedulers = {SchedulerSpec{}};
  std::vector<workload::ScenarioSpec> scenarios = {workload::ScenarioSpec{}};
  std::vector<int> nodes = {1};
  std::vector<int> cores = {10};
  std::vector<double> memories_mb = {32.0 * 1024.0};
  // Deployment axis; any entry beyond the default one-node spec — or an
  // explicit `clusters=` axis in the parsed grid (clusters_set) — puts the
  // campaign in cluster mode (cells call ExperimentSpec::cluster), which
  // requires the legacy `nodes` axis to stay at its default.
  std::vector<cluster::ClusterSpec> clusters = {cluster::ClusterSpec{}};
  // Set by parse() when the grid names the axis, so an explicit
  // `clusters=node:1` still supersedes (and conflicts with) `nodes=`.
  bool clusters_set = false;
  // Closed-loop scaling axis, crossed with the deployments; the default
  // single "none" entry means no autoscaling dimension.
  std::vector<cluster::AutoscalerSpec> autoscalers = {
      cluster::AutoscalerSpec{}};
  // Set by parse() when the grid names the axis (an explicit
  // `autoscalers=none` is a deliberate one-entry axis).
  bool autoscalers_set = false;
  // Fault-regime axis, crossed with the deployments; each entry is one
  // faults= list (empty = the fault-free baseline). The default single
  // empty entry means no fault dimension.
  std::vector<std::vector<cluster::FaultSpec>> faults = {{}};
  // Set by parse() when the grid names the axis (an explicit `faults=none`
  // is a deliberate one-entry axis).
  bool faults_set = false;
  // Composite-function axis: each entry is one WorkflowSpec ("none" = the
  // independent-calls baseline). The default single "none" entry means no
  // workflow dimension.
  std::vector<workload::WorkflowSpec> workflows = {workload::WorkflowSpec{}};
  // Set by parse() when the grid names the axis (an explicit
  // `workflows=none` is a deliberate one-entry axis).
  bool workflows_set = false;
  // Ablation axes, crossed like every other axis; kept sorted by name.
  std::vector<std::pair<std::string, std::vector<double>>> overrides;
  std::vector<std::uint64_t> seeds = {0, 1, 2, 3, 4};

  [[nodiscard]] static CampaignSpec parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  // Abort (naming the offender and the valid alternatives) if any component
  // is unknown or any axis is empty; returns a copy with schedulers,
  // scenarios and override names canonicalized and override axes sorted.
  [[nodiscard]] CampaignSpec normalized() const;

  // Number of cells: the product of all axis lengths.
  [[nodiscard]] std::size_t size() const;

  // Cells per group (= seeds.size()) and number of groups.
  [[nodiscard]] std::size_t seeds_per_group() const { return seeds.size(); }
  [[nodiscard]] std::size_t group_count() const {
    return size() / seeds.size();
  }

  // Deterministically partition the expanded cell index space into `n`
  // contiguous, group-aligned sub-ranges and return the `i`-th (0-based).
  // Shard i covers groups [i*G/n, (i+1)*G/n) — balanced to within one
  // group, exhaustive and disjoint over i = 0..n-1 for any n (shards beyond
  // the group count come back empty). Everything about the cells inside a
  // shard — indices, group indices, per-cell seeds — is identical to the
  // unsharded expansion.
  [[nodiscard]] ShardRange shard(std::size_t i, std::size_t n) const;

  // Expand cell `index` (0 <= index < size()) deterministically.
  [[nodiscard]] CampaignCell cell(std::size_t index) const;

  // Decode only the axis coordinates of cell `index`, leaving the
  // ExperimentSpec member default-constructed — what the per-row output
  // renderers need, without re-normalizing scheduler/scenario/cluster
  // specs for every rendered row.
  [[nodiscard]] CampaignCell coordinates(std::size_t index) const;

  // Flatten non-seed axis coordinates into a group index — the inverse of
  // the expansion order, so callers never hand-roll `sched_i * n + node_i`
  // arithmetic that silently breaks when an axis gains a value. Omitted
  // override coordinates mean "first value of every override axis".
  [[nodiscard]] std::size_t group_index(
      std::size_t scheduler_i, std::size_t scenario_i = 0,
      std::size_t nodes_i = 0, std::size_t cores_i = 0,
      std::size_t memory_i = 0, std::size_t cluster_i = 0,
      std::size_t autoscaler_i = 0, std::size_t faults_i = 0,
      std::size_t workflow_i = 0,
      const std::vector<std::size_t>& override_i = {}) const;

  // True when the clusters axis is in play (any non-default entry).
  [[nodiscard]] bool cluster_mode() const;
  // True when the autoscalers axis is in play (any non-"none" entry).
  [[nodiscard]] bool autoscaler_mode() const;
  // True when the faults axis is in play (any non-empty entry).
  [[nodiscard]] bool fault_mode() const;
  // True when the workflows axis is in play (any enabled entry).
  [[nodiscard]] bool workflow_mode() const;

  // The paper's seed convention: 0..n-1.
  [[nodiscard]] static std::vector<std::uint64_t> first_seeds(int n);

  // Human-readable cell coordinates: multi-valued axes only, so a grid that
  // sweeps schedulers x seeds labels cells "ours/sept seed=3", not a wall
  // of constant columns. `with_seed=false` names the cell's group.
  [[nodiscard]] std::string label(const CampaignCell& cell,
                                  bool with_seed = true) const;

  friend bool operator==(const CampaignSpec& a, const CampaignSpec& b) {
    return a.schedulers == b.schedulers && a.scenarios == b.scenarios &&
           a.nodes == b.nodes && a.cores == b.cores &&
           a.memories_mb == b.memories_mb && a.clusters == b.clusters &&
           a.clusters_set == b.clusters_set &&
           a.autoscalers == b.autoscalers &&
           a.autoscalers_set == b.autoscalers_set && a.faults == b.faults &&
           a.faults_set == b.faults_set && a.workflows == b.workflows &&
           a.workflows_set == b.workflows_set &&
           a.overrides == b.overrides && a.seeds == b.seeds;
  }
  friend bool operator!=(const CampaignSpec& a, const CampaignSpec& b) {
    return !(a == b);
  }
};

}  // namespace whisk::experiments
