#include "experiments/scheduler_spec.h"

#include "cluster/balancer_registry.h"
#include "core/policy_registry.h"
#include "node/invoker_registry.h"
#include "util/check.h"

namespace whisk::experiments {

SchedulerSpec SchedulerSpec::parse(std::string_view text) {
  WHISK_CHECK(!text.empty(),
              "empty scheduler spec; expected \"invoker[/policy[/balancer]]\" "
              "like \"ours/sept/round-robin\"");
  SchedulerSpec spec;
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t slash = text.find('/', begin);
    const std::size_t end = slash == std::string_view::npos ? text.size()
                                                            : slash;
    parts.emplace_back(text.substr(begin, end - begin));
    if (slash == std::string_view::npos) break;
    begin = slash + 1;
  }
  WHISK_CHECK(parts.size() <= 3,
              ("scheduler spec \"" + std::string(text) +
               "\" has more than three components; expected "
               "\"invoker[/policy[/balancer]]\"")
                  .c_str());
  if (!parts.empty()) spec.invoker = parts[0];
  if (parts.size() > 1) spec.policy = parts[1];
  if (parts.size() > 2) spec.balancer = parts[2];
  return spec.normalized();
}

std::string SchedulerSpec::to_string() const {
  return invoker + "/" + policy + "/" + balancer;
}

std::string SchedulerSpec::label() const {
  if (invoker == "baseline") return "baseline";
  return core::policy_label(policy);
}

SchedulerSpec SchedulerSpec::normalized() const {
  SchedulerSpec out;
  out.invoker = node::InvokerRegistry::instance().resolve(invoker);
  out.policy = core::PolicyRegistry::instance().resolve(policy);
  out.balancer = cluster::BalancerRegistry::instance().resolve(balancer);
  return out;
}

const std::vector<SchedulerSpec>& paper_schedulers() {
  static const std::vector<SchedulerSpec> kAll = {
      {"baseline", "fifo", "round-robin"},
      {"ours", "fifo", "round-robin"},
      {"ours", "sept", "round-robin"},
      {"ours", "eect", "round-robin"},
      {"ours", "rect", "round-robin"},
      {"ours", "fc", "round-robin"},
  };
  return kAll;
}

}  // namespace whisk::experiments
