// Reproduces Fig. 2: the number of cold starts on 10 CPU cores as a
// function of the OpenWhisk memory pool size (2-128 GiB) and load intensity
// (30-120), for (a) the original OpenWhisk node-level scheduling and (b) our
// approach with the FIFO policy.
//
// Expected shapes (paper Sec. VI): for the baseline the count depends
// strongly on intensity and barely on memory (greedy container creation +
// eviction thrash); for our approach it drops as memory grows and is ~zero
// from 32 GiB, where the warm-up set is never evicted.
#include "bench_common.h"

using namespace whisk;

namespace {

void run_panel(const workload::FunctionCatalog& cat, bool baseline,
               int reps) {
  std::printf("Fig. 2(%c) — %s, cold starts on 10 cores (mean over %d "
              "seeds)\n\n",
              baseline ? 'a' : 'b',
              baseline ? "original OpenWhisk scheduling"
                       : "our approach (FIFO variant)",
              reps);
  const std::vector<double> memories_mib = {2048,  4096,  8192,  16384,
                                            32768, 65536, 131072};
  const std::vector<int> intensities = {30, 40, 60, 90, 120};

  // The whole panel is one campaign: intensities as scenario items, memory
  // as a deployment axis. Groups land scenario-major, memory-minor.
  experiments::CampaignSpec grid;
  grid.schedulers = {experiments::SchedulerSpec::parse(
      baseline ? "baseline/fifo" : "ours/fifo")};
  grid.scenarios.clear();
  for (int v : intensities) {
    grid.scenarios.push_back(workload::ScenarioSpec::parse(
        "uniform?intensity=" + std::to_string(v)));
  }
  grid.cores = {10};
  grid.memories_mb = memories_mib;
  grid.seeds = bench::seed_range(reps);
  const auto result =
      experiments::run_campaign(grid, cat, bench::campaign_options());

  std::vector<std::string> header = {"memory [MiB]"};
  for (int v : intensities) header.push_back("int " + std::to_string(v));
  util::Table table(header);

  for (std::size_t m = 0; m < memories_mib.size(); ++m) {
    std::vector<std::string> row = {util::fmt(memories_mib[m], 0)};
    for (std::size_t v = 0; v < intensities.size(); ++v) {
      const auto cells = result.group(
          grid.group_index(0, /*scenario_i=*/v, 0, 0, /*memory_i=*/m));
      const auto stats = experiments::total_stats(cells);
      row.push_back(util::fmt(static_cast<double>(stats.cold_starts) /
                                  static_cast<double>(cells.size()),
                              0));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  const auto cat = workload::sebs_catalog();
  const int reps = bench::repetitions();
  run_panel(cat, /*baseline=*/true, reps);
  run_panel(cat, /*baseline=*/false, reps);
  std::printf(
      "Paper reference: (a) >1100 cold starts at intensity 120 regardless "
      "of memory; (b) cold starts flat/near-zero from 32 GiB.\n");
  return 0;
}
