// Ablation benches for the design choices DESIGN.md calls out. Each panel
// sweeps one knob at the intermediate configuration (10 cores, intensity
// 60) and reports average/median response time of the affected scheduler.
//
//   1. History window length (paper fixes 10, citing [18]).
//   2. FC's sliding window T (paper suggests 60 s).
//   3. The dispatch gate (how shallow the management pipeline is kept; the
//      paper's invoker pulls one call at a time).
//   4. Baseline dockerd strain (what the cold-start storms cost).
//   5. Context-switch penalty of the proportional-share baseline (what
//      CPU pinning saves).
#include "bench_common.h"

using namespace whisk;

namespace {

struct Variant {
  std::string label;
  experiments::ExperimentSpec cfg;
};

void run_panel(const workload::FunctionCatalog& cat, const char* title,
               const std::vector<Variant>& variants, int reps) {
  std::printf("-- %s --\n", title);
  util::Table table({"variant", "avg R", "p50 R", "p95 R", "avg S"});
  for (const auto& v : variants) {
    const auto runs = experiments::run_repetitions(v.cfg, cat, reps);
    const auto r = util::summarize(experiments::pooled_responses(runs));
    const auto s = util::summarize(experiments::pooled_stretches(runs));
    table.add_row({v.label, util::fmt(r.mean), util::fmt(r.p50),
                   util::fmt(r.p95), util::fmt(s.mean, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

experiments::ExperimentSpec base_cfg(std::string_view policy) {
  return experiments::ExperimentSpec().cores(10).intensity(60).scheduler(
      experiments::SchedulerSpec{"ours", std::string(policy)});
}

}  // namespace

int main() {
  const auto cat = workload::sebs_catalog();
  const int reps = std::max(2, bench::repetitions() - 2);
  std::printf("Ablations at 10 cores, intensity 60 (%d seeds pooled)\n\n",
              reps);

  {
    std::vector<Variant> vs;
    for (std::size_t w : {1, 3, 10, 50}) {
      auto cfg = base_cfg("sept");
      cfg.with_override("history_window", static_cast<double>(w));
      vs.push_back({"SEPT, window " + std::to_string(w), cfg});
    }
    run_panel(cat, "history window length (runtime estimate E(p))", vs,
              reps);
  }
  {
    std::vector<Variant> vs;
    for (double t : {10.0, 60.0, 300.0}) {
      auto cfg = base_cfg("fc");
      cfg.with_override("fc_window", t);
      vs.push_back({"FC, T = " + util::fmt(t, 0) + " s", cfg});
    }
    run_panel(cat, "FC sliding window T", vs, reps);
  }
  {
    std::vector<Variant> vs;
    for (int g : {1, 3, 8, 32}) {
      auto cfg = base_cfg("sept");
      cfg.with_override("dispatch_daemon_gate", static_cast<double>(g));
      vs.push_back({"SEPT, gate " + std::to_string(g), cfg});
    }
    run_panel(cat,
              "dispatch gate (pipeline backlog at which pops pause; large "
              "values bury the priority queue)",
              vs, reps);
  }
  {
    std::vector<Variant> vs;
    for (double strain : {0.0, 0.005, 0.01}) {
      auto cfg = base_cfg("fifo");
      cfg.scheduler("baseline/fifo");
      cfg.with_override("strain_per_container", strain);
      vs.push_back({"baseline, strain " + util::fmt(strain, 3), cfg});
    }
    run_panel(cat, "baseline dockerd strain per live container", vs, reps);
  }
  {
    std::vector<Variant> vs;
    for (double beta : {0.0, 0.3, 1.0}) {
      auto cfg = base_cfg("fifo");
      cfg.scheduler("baseline/fifo");
      cfg.with_override("context_switch_beta", beta);
      vs.push_back({"baseline, beta " + util::fmt(beta, 1), cfg});
    }
    run_panel(cat, "baseline context-switch penalty (what pinning avoids)",
              vs, reps);
  }
  return 0;
}
