// Ablation benches for the design choices DESIGN.md calls out. Each panel
// is one campaign whose override axis sweeps one knob at the intermediate
// configuration (10 cores, intensity 60) and reports average/median
// response time of the affected scheduler.
//
//   1. History window length (paper fixes 10, citing [18]).
//   2. FC's sliding window T (paper suggests 60 s).
//   3. The dispatch gate (how shallow the management pipeline is kept; the
//      paper's invoker pulls one call at a time).
//   4. Baseline dockerd strain (what the cold-start storms cost).
//   5. Context-switch penalty of the proportional-share baseline (what
//      CPU pinning saves).
#include "bench_common.h"

using namespace whisk;

namespace {

// One campaign per panel: a single scheduler, the intermediate workload,
// the knob as an override axis. Groups land in knob-value order.
experiments::CampaignSpec panel_grid(const std::string& scheduler,
                                     const std::string& knob,
                                     std::vector<double> values, int reps) {
  experiments::CampaignSpec grid;
  grid.schedulers = {experiments::SchedulerSpec::parse(scheduler)};
  grid.scenarios = {workload::ScenarioSpec::parse("uniform?intensity=60")};
  grid.cores = {10};
  grid.overrides = {{knob, std::move(values)}};
  grid.seeds = bench::seed_range(reps);
  return grid;
}

// The knob values drive the grid AND the row labels (via label_fn), so the
// printed variant can never drift from the value actually swept.
template <typename LabelFn>
void run_panel(const workload::FunctionCatalog& cat, const char* title,
               const std::string& scheduler, const std::string& knob,
               const std::vector<double>& values, LabelFn&& label_fn,
               int reps) {
  const auto result = experiments::run_campaign(
      panel_grid(scheduler, knob, values, reps), cat,
      bench::campaign_options());
  const auto rows = bench::summarize_groups(result);

  std::printf("-- %s --\n", title);
  util::Table table({"variant", "avg R", "p50 R", "p95 R", "avg S"});
  for (std::size_t g = 0; g < rows.size(); ++g) {
    const auto& r = rows[g];
    table.add_row({label_fn(values[g]), util::fmt(r.response.mean),
                   util::fmt(r.response.p50), util::fmt(r.response.p95),
                   util::fmt(r.stretch.mean, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  const auto cat = workload::sebs_catalog();
  const int reps = std::max(2, bench::repetitions() - 2);
  std::printf("Ablations at 10 cores, intensity 60 (%d seeds pooled)\n\n",
              reps);

  run_panel(
      cat, "history window length (runtime estimate E(p))", "ours/sept",
      "history_window", {1, 3, 10, 50},
      [](double w) { return "SEPT, window " + util::fmt(w, 0); }, reps);
  run_panel(
      cat, "FC sliding window T", "ours/fc", "fc_window", {10.0, 60.0, 300.0},
      [](double t) { return "FC, T = " + util::fmt(t, 0) + " s"; }, reps);
  run_panel(
      cat,
      "dispatch gate (pipeline backlog at which pops pause; large "
      "values bury the priority queue)",
      "ours/sept", "dispatch_daemon_gate", {1, 3, 8, 32},
      [](double g) { return "SEPT, gate " + util::fmt(g, 0); }, reps);
  run_panel(
      cat, "baseline dockerd strain per live container", "baseline/fifo",
      "strain_per_container", {0.0, 0.005, 0.01},
      [](double s) { return "baseline, strain " + util::fmt(s, 3); }, reps);
  run_panel(
      cat, "baseline context-switch penalty (what pinning avoids)",
      "baseline/fifo", "context_switch_beta", {0.0, 0.3, 1.0},
      [](double b) { return "baseline, beta " + util::fmt(b, 1); }, reps);
  return 0;
}
