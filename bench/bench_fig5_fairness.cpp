// Reproduces Fig. 5: the fairness experiment (Sec. VII-D). 10 CPU cores,
// intensity 90; exactly 10 calls of the long, rare dna-visualisation
// function, the rest drawn uniformly from the other functions.
//
// Expected shape: SEPT discriminates against the rare long function, while
// Fair-Choice starts it almost immediately (the paper reports FC cutting
// dna-visualisation's average stretch from 5.3 to 2.1 and median from 5.2
// to 1.6, at the price of a slightly higher stretch for the short,
// often-called graph-bfs: 25.8 vs 22.2).
#include "bench_common.h"

using namespace whisk;

namespace {

util::Summary pooled_stretch_of(const std::vector<experiments::RunResult>& rs,
                                const workload::FunctionCatalog& cat,
                                workload::FunctionId fn) {
  std::vector<double> pool;
  const double ref = cat.reference_median(fn);
  for (const auto& run : rs) {
    for (const auto& rec : run.records) {
      if (rec.function == fn) pool.push_back(rec.response() / ref);
    }
  }
  return util::summarize(pool);
}

}  // namespace

int main() {
  const auto cat = workload::sebs_catalog();
  const int reps = bench::repetitions();
  const auto dna = cat.find("dna-visualisation").value();
  const auto bfs = cat.find("graph-bfs").value();
  const auto ref = experiments::paper::fig5_reference();

  std::printf(
      "Fig. 5 — fairness of FC (10 cores, intensity 90, 10 calls of "
      "dna-visualisation) — %d seeds pooled\n\n",
      reps);

  util::Table table({"scheduler", "all: avg S", "all: p50 S", "dna: avg S",
                     "dna: p50 S", "bfs: avg S", "bfs: p50 S"});
  for (const auto& sched : experiments::paper_schedulers()) {
    const auto cfg = experiments::ExperimentSpec()
                         .cores(10)
                         .intensity(90)
                         .scenario("fairness?rare-function="
                                   "dna-visualisation&rare-calls=10")
                         .scheduler(sched);
    const auto runs = experiments::run_repetitions(cfg, cat, reps);
    const auto all = util::summarize(experiments::pooled_stretches(runs));
    const auto dna_s = pooled_stretch_of(runs, cat, dna);
    const auto bfs_s = pooled_stretch_of(runs, cat, bfs);
    table.add_row({sched.label(), util::fmt(all.mean, 1),
                   util::fmt(all.p50, 1), util::fmt(dna_s.mean, 1),
                   util::fmt(dna_s.p50, 1), util::fmt(bfs_s.mean, 1),
                   util::fmt(bfs_s.p50, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper reference: dna avg stretch %.1f (SEPT) -> %.1f (FC); dna "
      "median %.1f -> %.1f; graph-bfs avg %.1f (SEPT) vs %.1f (FC).\n",
      ref.sept_dna_avg_stretch, ref.fc_dna_avg_stretch,
      ref.sept_dna_p50_stretch, ref.fc_dna_p50_stretch,
      ref.sept_bfs_avg_stretch, ref.fc_bfs_avg_stretch);
  return 0;
}
