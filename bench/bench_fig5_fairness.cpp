// Reproduces Fig. 5: the fairness experiment (Sec. VII-D). 10 CPU cores,
// intensity 90; exactly 10 calls of the long, rare dna-visualisation
// function, the rest drawn uniformly from the other functions.
//
// Expected shape: SEPT discriminates against the rare long function, while
// Fair-Choice starts it almost immediately (the paper reports FC cutting
// dna-visualisation's average stretch from 5.3 to 2.1 and median from 5.2
// to 1.6, at the price of a slightly higher stretch for the short,
// often-called graph-bfs: 25.8 vs 22.2).
#include "bench_common.h"

using namespace whisk;

namespace {

util::Summary pooled_stretch_of(std::span<const experiments::CellResult> cells,
                                const workload::FunctionCatalog& cat,
                                workload::FunctionId fn) {
  std::vector<double> pool;
  const double ref = cat.reference_median(fn);
  for (const auto& cell : cells) {
    for (const auto& rec : cell.records) {
      if (rec.function == fn) pool.push_back(rec.response() / ref);
    }
  }
  return util::summarize(pool);
}

}  // namespace

int main() {
  const auto cat = workload::sebs_catalog();
  const int reps = bench::repetitions();
  const auto dna = cat.find("dna-visualisation").value();
  const auto bfs = cat.find("graph-bfs").value();
  const auto ref = experiments::paper::fig5_reference();

  std::printf(
      "Fig. 5 — fairness of FC (10 cores, intensity 90, 10 calls of "
      "dna-visualisation) — %d seeds pooled\n\n",
      reps);

  const auto grid = bench::paper_scheduler_grid(
      "fairness?intensity=90&rare-function=dna-visualisation&rare-calls=10",
      /*cores=*/10, reps);
  auto opts = bench::campaign_options();
  opts.retain_records = true;  // per-function pooling below
  const auto result = experiments::run_campaign(grid, cat, opts);

  util::Table table({"scheduler", "all: avg S", "all: p50 S", "dna: avg S",
                     "dna: p50 S", "bfs: avg S", "bfs: p50 S"});
  for (std::size_t g = 0; g < result.group_count(); ++g) {
    const auto cells = result.group(g);
    const auto all =
        util::summarize(experiments::pooled_stretches(cells));
    const auto dna_s = pooled_stretch_of(cells, cat, dna);
    const auto bfs_s = pooled_stretch_of(cells, cat, bfs);
    table.add_row({experiments::paper_schedulers()[g].label(),
                   util::fmt(all.mean, 1), util::fmt(all.p50, 1),
                   util::fmt(dna_s.mean, 1), util::fmt(dna_s.p50, 1),
                   util::fmt(bfs_s.mean, 1), util::fmt(bfs_s.p50, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper reference: dna avg stretch %.1f (SEPT) -> %.1f (FC); dna "
      "median %.1f -> %.1f; graph-bfs avg %.1f (SEPT) vs %.1f (FC).\n",
      ref.sept_dna_avg_stretch, ref.fc_dna_avg_stretch,
      ref.sept_dna_p50_stretch, ref.fc_dna_p50_stretch,
      ref.sept_bfs_avg_stretch, ref.fc_bfs_avg_stretch);
  return 0;
}
