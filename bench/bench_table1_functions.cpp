// Reproduces Table I: client-side response-time percentiles of the 11 SeBS
// functions, measured 50 calls each on an idle, warmed single-node setup.
// The simulated medians should track the paper's (they calibrate the
// workload model), and the ~10 ms constant overhead should be visible on
// the very short graph functions.
//
// The closed-loop idle benchmark is not grid-shaped (no seeds/schedulers to
// sweep), so it rides the campaign pool directly: one task per function,
// results printed in catalog order regardless of completion order.
#include "bench_common.h"

using namespace whisk;

int main() {
  const auto cat = workload::sebs_catalog();
  std::printf(
      "Table I — SeBS functions on an idle node (50 calls each, ms)\n"
      "Simulated value with the paper's measurement in parentheses.\n\n");

  std::vector<std::vector<double>> responses(cat.size());
  util::ThreadPool pool(bench::threads());
  pool.parallel_for(cat.size(), [&](std::size_t i) {
    responses[i] = experiments::run_idle_function_benchmark(
        cat, cat.specs()[i].id, 50, /*seed=*/7);
  });

  util::Table table({"function", "5th perc.", "median", "95th perc."});
  for (std::size_t i = 0; i < cat.size(); ++i) {
    const auto& spec = cat.specs()[i];
    std::vector<double> ms;
    ms.reserve(responses[i].size());
    for (double r : responses[i]) ms.push_back(r * 1000.0);
    table.add_row({spec.name,
                   bench::with_ref(util::percentile(ms, 5.0), spec.p5_ms, 0),
                   bench::with_ref(util::percentile(ms, 50.0), spec.median_ms,
                                   0),
                   bench::with_ref(util::percentile(ms, 95.0), spec.p95_ms,
                                   0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
