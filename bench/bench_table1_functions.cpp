// Reproduces Table I: client-side response-time percentiles of the 11 SeBS
// functions, measured 50 calls each on an idle, warmed single-node setup.
// The simulated medians should track the paper's (they calibrate the
// workload model), and the ~10 ms constant overhead should be visible on
// the very short graph functions.
#include "bench_common.h"

using namespace whisk;

int main() {
  const auto cat = workload::sebs_catalog();
  std::printf(
      "Table I — SeBS functions on an idle node (50 calls each, ms)\n"
      "Simulated value with the paper's measurement in parentheses.\n\n");

  util::Table table({"function", "5th perc.", "median", "95th perc."});
  for (const auto& spec : cat.specs()) {
    const auto responses =
        experiments::run_idle_function_benchmark(cat, spec.id, 50, /*seed=*/7);
    std::vector<double> ms;
    ms.reserve(responses.size());
    for (double r : responses) ms.push_back(r * 1000.0);
    table.add_row({spec.name,
                   bench::with_ref(util::percentile(ms, 5.0), spec.p5_ms, 0),
                   bench::with_ref(util::percentile(ms, 50.0), spec.median_ms,
                                   0),
                   bench::with_ref(util::percentile(ms, 95.0), spec.p95_ms,
                                   0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
