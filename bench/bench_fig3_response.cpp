// Reproduces Fig. 3 / the R(i) columns of Table III: response-time
// statistics for the six schedulers over the (cores, intensity) grid.
// Pass --appendix to extend the intensity sweep to 90 and 120 and to
// include the 5-core row (the paper's on-line appendix).
//
// Expected shapes: our FIFO beats the baseline at 20 cores and loses at
// low cores/intensity; SEPT and FC give the lowest average and median
// response; EECT and RECT sit between FIFO and SEPT.
#include <cstring>

#include "bench_common.h"

using namespace whisk;

int main(int argc, char** argv) {
  const bool appendix = argc > 1 && std::strcmp(argv[1], "--appendix") == 0;
  const auto cat = workload::sebs_catalog();
  const int reps = bench::repetitions();
  const std::vector<int> core_counts =
      appendix ? std::vector<int>{5, 10, 20} : std::vector<int>{10, 20};
  const std::vector<int> intensities = appendix
                                           ? std::vector<int>{30, 40, 60, 90,
                                                              120}
                                           : std::vector<int>{30, 40, 60};

  std::printf(
      "Fig. 3 / Table III (response time R(i), seconds) — %d seeds pooled\n"
      "Simulated value with the paper's measurement in parentheses.\n\n",
      reps);

  for (int cores : core_counts) {
    for (int v : intensities) {
      const auto grid = bench::paper_scheduler_grid(
          "uniform?intensity=" + std::to_string(v), cores, reps);
      const auto result =
          experiments::run_campaign(grid, cat, bench::campaign_options());
      const auto rows = bench::summarize_groups(result);

      std::printf("-- %d CPU cores, intensity %d --\n", cores, v);
      util::Table table(
          {"scheduler", "avg", "p50", "p75", "p95", "p99", "max c(i)"});
      for (std::size_t g = 0; g < rows.size(); ++g) {
        const auto& s = rows[g];
        const std::string label = experiments::paper_schedulers()[g].label();
        const auto ref =
            experiments::paper::find_single_node(cores, v, label);
        table.add_row(
            {label,
             ref ? bench::with_ref(s.response.mean, ref->r_avg)
                 : util::fmt(s.response.mean),
             ref ? bench::with_ref(s.response.p50, ref->r_p50)
                 : util::fmt(s.response.p50),
             util::fmt(s.response.p75),
             ref ? bench::with_ref(s.response.p95, ref->r_p95)
                 : util::fmt(s.response.p95),
             util::fmt(s.response.p99),
             ref ? bench::with_ref(s.max_completion, ref->max_c)
                 : util::fmt(s.max_completion)});
      }
      std::printf("%s\n", table.to_string().c_str());
    }
  }
  return 0;
}
