#pragma once

// The seed implementations of sim::Engine and core::RuntimeHistory, kept
// verbatim (modulo namespace) as the baseline side of bench_engine and
// tools/bench_report. The production code replaced these with a slab
// arena + indexed heap + SBO callbacks (engine) and dense records + O(1)
// running sums (history); benchmarking both side by side keeps the claimed
// speedup measured, not remembered.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.h"
#include "util/check.h"
#include "util/ring_buffer.h"
#include "workload/function.h"

// The production Engine/RuntimeHistory live in their own translation units,
// so the bench pays a real call per operation. The seed copies below are
// header-only; marking their entry points noinline keeps the comparison
// apples-to-apples instead of letting the baseline inline away.
#if defined(__GNUC__)
#define WHISK_BENCH_NOINLINE __attribute__((noinline))
#else
#define WHISK_BENCH_NOINLINE
#endif

namespace whisk::bench::ref {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

// Seed engine: one std::function per event, a (time, id) priority_queue
// with lazy deletion, and an id -> slot unordered_map.
class SeedEngine {
 public:
  using Callback = std::function<void()>;

  SeedEngine() = default;
  SeedEngine(const SeedEngine&) = delete;
  SeedEngine& operator=(const SeedEngine&) = delete;

  [[nodiscard]] sim::SimTime now() const { return now_; }

  WHISK_BENCH_NOINLINE EventId schedule_at(sim::SimTime at, Callback fn) {
    WHISK_CHECK(at >= now_, "cannot schedule events in the past");
    WHISK_CHECK(static_cast<bool>(fn), "cannot schedule a null callback");
    const EventId id = next_id_++;
    heap_.push(Entry{at, id});
    slots_.emplace(id, Slot{std::move(fn), false});
    ++live_events_;
    return id;
  }

  WHISK_BENCH_NOINLINE EventId schedule_in(sim::SimTime delay, Callback fn) {
    WHISK_CHECK(delay >= 0.0, "negative delay");
    return schedule_at(now_ + delay, std::move(fn));
  }

  WHISK_BENCH_NOINLINE bool cancel(EventId id) {
    auto it = slots_.find(id);
    if (it == slots_.end() || it->second.cancelled) return false;
    it->second.cancelled = true;
    --live_events_;
    return true;
  }

  WHISK_BENCH_NOINLINE bool step() {
    while (!heap_.empty()) {
      const Entry top = heap_.top();
      heap_.pop();
      auto it = slots_.find(top.id);
      WHISK_CHECK(it != slots_.end(), "heap entry without slot");
      if (it->second.cancelled) {
        slots_.erase(it);
        continue;
      }
      Callback fn = std::move(it->second.fn);
      slots_.erase(it);
      --live_events_;
      WHISK_CHECK(top.time >= now_, "time went backwards");
      now_ = top.time;
      ++executed_;
      fn();
      return true;
    }
    return false;
  }

  WHISK_BENCH_NOINLINE std::size_t run(sim::SimTime until = sim::kNever) {
    std::size_t ran = 0;
    while (!heap_.empty()) {
      if (until >= 0.0) {
        const Entry top = heap_.top();
        auto it = slots_.find(top.id);
        if (it != slots_.end() && it->second.cancelled) {
          heap_.pop();
          slots_.erase(it);
          continue;
        }
        if (top.time > until) {
          now_ = until;
          break;
        }
      }
      if (!step()) break;
      ++ran;
    }
    if (until >= 0.0 && now_ < until && heap_.empty()) now_ = until;
    return ran;
  }

  [[nodiscard]] bool empty() const { return live_events_ == 0; }
  [[nodiscard]] std::size_t pending() const { return live_events_; }
  [[nodiscard]] std::size_t executed() const { return executed_; }

 private:
  struct Entry {
    sim::SimTime time;
    EventId id;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  struct Slot {
    Callback fn;
    bool cancelled = false;
  };

  sim::SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::size_t executed_ = 0;
  std::size_t live_events_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, Slot> slots_;
};

// Seed history: three per-function unordered_maps, O(window) averaging on
// every expected_runtime() call, unpruned completion deques.
class SeedHistory {
 public:
  explicit SeedHistory(std::size_t window = 10) : window_(window) {
    WHISK_CHECK(window > 0, "history window must be positive");
  }

  WHISK_BENCH_NOINLINE void record_runtime(workload::FunctionId fn, sim::SimTime runtime,
                      sim::SimTime completion_time) {
    WHISK_CHECK(runtime >= 0.0, "negative runtime");
    auto [it, inserted] =
        runtimes_.try_emplace(fn, util::RingBuffer<double>(window_));
    it->second.push(runtime);
    auto& completions = completions_[fn];
    WHISK_CHECK(completions.empty() || completions.back() <= completion_time,
                "completion times must be recorded in order");
    completions.push_back(completion_time);
  }

  WHISK_BENCH_NOINLINE void record_arrival(workload::FunctionId fn, sim::SimTime time) {
    last_arrival_[fn] = time;
  }

  [[nodiscard]] WHISK_BENCH_NOINLINE double expected_runtime(workload::FunctionId fn) const {
    auto it = runtimes_.find(fn);
    if (it == runtimes_.end() || it->second.empty()) return 0.0;
    double sum = 0.0;
    for (double r : it->second.values()) sum += r;
    return sum / static_cast<double>(it->second.size());
  }

  [[nodiscard]] WHISK_BENCH_NOINLINE sim::SimTime previous_arrival(workload::FunctionId fn) const {
    auto it = last_arrival_.find(fn);
    return it == last_arrival_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] WHISK_BENCH_NOINLINE std::size_t completions_within(workload::FunctionId fn,
                                               sim::SimTime window_t,
                                               sim::SimTime now) const {
    auto it = completions_.find(fn);
    if (it == completions_.end()) return 0;
    const auto& deque = it->second;
    const auto first =
        std::lower_bound(deque.begin(), deque.end(), now - window_t);
    return static_cast<std::size_t>(deque.end() - first);
  }

 private:
  std::size_t window_;
  std::unordered_map<workload::FunctionId, util::RingBuffer<double>>
      runtimes_;
  std::unordered_map<workload::FunctionId, sim::SimTime> last_arrival_;
  std::unordered_map<workload::FunctionId, std::deque<sim::SimTime>>
      completions_;
};

}  // namespace whisk::bench::ref
