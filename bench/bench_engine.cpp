// Engine/history hot-path micro-benchmarks (google-benchmark), always
// pairing the production implementation with the retained seed baseline so
// the speedup stays a measured number. For the machine-readable variant
// (BENCH_engine.json) see tools/bench_report.
#include <benchmark/benchmark.h>

#include "core/history.h"
#include "engine_churn.h"
#include "reference_engine.h"
#include "sim/engine.h"

namespace {

using whisk::bench::run_engine_churn;
using whisk::bench::run_engine_schedule_drain;
using whisk::bench::run_history_mix;

// --- schedule/cancel/run churn ----------------------------------------------

void BM_EngineChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::size_t executed = 0;
  for (auto _ : state) {
    executed = run_engine_churn<whisk::sim::Engine>(n, 42);
    benchmark::DoNotOptimize(executed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(executed));
}
BENCHMARK(BM_EngineChurn)->Arg(10000)->Arg(100000);

void BM_SeedEngineChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::size_t executed = 0;
  for (auto _ : state) {
    executed = run_engine_churn<whisk::bench::ref::SeedEngine>(n, 42);
    benchmark::DoNotOptimize(executed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(executed));
}
BENCHMARK(BM_SeedEngineChurn)->Arg(10000)->Arg(100000);

// --- pure schedule + drain ---------------------------------------------------

void BM_EngineScheduleDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_engine_schedule_drain<whisk::sim::Engine>(n, 7));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineScheduleDrain)->Arg(10000)->Arg(100000);

void BM_SeedEngineScheduleDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_engine_schedule_drain<whisk::bench::ref::SeedEngine>(n, 7));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SeedEngineScheduleDrain)->Arg(10000)->Arg(100000);

// --- history record/query mix ------------------------------------------------

void BM_HistoryMix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_history_mix<whisk::core::RuntimeHistory>(n, 99));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HistoryMix)->Arg(100000);

void BM_SeedHistoryMix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_history_mix<whisk::bench::ref::SeedHistory>(n, 99));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SeedHistoryMix)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
