// Reproduces Fig. 6 and Tables V-VI: the multi-node experiments. A fixed
// request sequence (1320 requests for 10-CPU workers, 2376 for 18-CPU
// workers) is processed by 4, 3, 2 and 1 worker VMs under the baseline and
// under our FC strategy.
//
// Headline shape (Sec. VIII): FC on 3 machines provides better
// response-time statistics than the baseline on 4 machines.
#include "bench_common.h"

using namespace whisk;

namespace {

void run_series(const workload::FunctionCatalog& cat, int cpus_per_node,
                std::size_t total_requests, int reps) {
  std::printf(
      "-- %d-CPU workers, constant load of %zu requests (%d seeds pooled) "
      "--\n",
      cpus_per_node, total_requests, reps);
  util::Table table({"nodes", "scheduler", "avg", "p50", "p75", "p95", "p99",
                     "max c(i)"});
  for (int nodes = 4; nodes >= 1; --nodes) {
    for (const char* label : {"baseline", "FC"}) {
      const auto cfg =
          experiments::ExperimentSpec()
              .cores(cpus_per_node)
              .nodes(nodes)
              .scenario("fixed-total?total=" + std::to_string(total_requests))
              .scheduler(std::string_view(label) == "baseline"
                             ? "baseline/fifo"
                             : "ours/fc");
      const auto runs = experiments::run_repetitions(cfg, cat, reps);
      const auto sum =
          util::summarize(experiments::pooled_responses(runs));
      double max_c = 0.0;
      for (const auto& r : runs) max_c = std::max(max_c, r.max_completion);

      const auto ref =
          experiments::paper::find_multi_node(nodes, cpus_per_node, label);
      table.add_row(
          {std::to_string(nodes), label,
           ref ? bench::with_ref(sum.mean, ref->r_avg) : util::fmt(sum.mean),
           ref ? bench::with_ref(sum.p50, ref->r_p50) : util::fmt(sum.p50),
           ref ? bench::with_ref(sum.p75, ref->r_p75) : util::fmt(sum.p75),
           ref ? bench::with_ref(sum.p95, ref->r_p95) : util::fmt(sum.p95),
           ref ? bench::with_ref(sum.p99, ref->r_p99) : util::fmt(sum.p99),
           ref ? bench::with_ref(max_c, ref->max_c) : util::fmt(max_c)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  const auto cat = workload::sebs_catalog();
  const int reps = bench::repetitions();
  std::printf(
      "Fig. 6 / Tables V-VI — multi-node runs.\n"
      "Simulated value with the paper's measurement in parentheses.\n\n");
  run_series(cat, 10, 1320, reps);
  run_series(cat, 18, 2376, reps);
  return 0;
}
