// Reproduces Fig. 6 and Tables V-VI: the multi-node experiments. A fixed
// request sequence (1320 requests for 10-CPU workers, 2376 for 18-CPU
// workers) is processed by 4, 3, 2 and 1 worker VMs under the baseline and
// under our FC strategy.
//
// Headline shape (Sec. VIII): FC on 3 machines provides better
// response-time statistics than the baseline on 4 machines.
#include "bench_common.h"

using namespace whisk;

namespace {

void run_series(const workload::FunctionCatalog& cat, int cpus_per_node,
                std::size_t total_requests, int reps) {
  std::printf(
      "-- %d-CPU workers, constant load of %zu requests (%d seeds pooled) "
      "--\n",
      cpus_per_node, total_requests, reps);

  // One campaign: both schedulers x all fleet sizes.
  const std::vector<int> fleet = {4, 3, 2, 1};
  experiments::CampaignSpec grid;
  grid.schedulers = {experiments::SchedulerSpec::parse("baseline/fifo"),
                     experiments::SchedulerSpec::parse("ours/fc")};
  grid.scenarios = {workload::ScenarioSpec::parse(
      "fixed-total?total=" + std::to_string(total_requests))};
  grid.nodes = fleet;
  grid.cores = {cpus_per_node};
  grid.seeds = bench::seed_range(reps);
  const auto result =
      experiments::run_campaign(grid, cat, bench::campaign_options());

  util::Table table({"nodes", "scheduler", "avg", "p50", "p75", "p95", "p99",
                     "max c(i)"});
  for (std::size_t n = 0; n < fleet.size(); ++n) {
    for (std::size_t s = 0; s < grid.schedulers.size(); ++s) {
      const char* label = s == 0 ? "baseline" : "FC";
      const auto cells =
          result.group(grid.group_index(s, 0, /*nodes_i=*/n));
      const auto sum =
          util::summarize(experiments::pooled_responses(cells));
      const double max_c = experiments::max_completion(cells);

      const auto ref = experiments::paper::find_multi_node(
          fleet[n], cpus_per_node, label);
      table.add_row(
          {std::to_string(fleet[n]), label,
           ref ? bench::with_ref(sum.mean, ref->r_avg) : util::fmt(sum.mean),
           ref ? bench::with_ref(sum.p50, ref->r_p50) : util::fmt(sum.p50),
           ref ? bench::with_ref(sum.p75, ref->r_p75) : util::fmt(sum.p75),
           ref ? bench::with_ref(sum.p95, ref->r_p95) : util::fmt(sum.p95),
           ref ? bench::with_ref(sum.p99, ref->r_p99) : util::fmt(sum.p99),
           ref ? bench::with_ref(max_c, ref->max_c) : util::fmt(max_c)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  const auto cat = workload::sebs_catalog();
  const int reps = bench::repetitions();
  std::printf(
      "Fig. 6 / Tables V-VI — multi-node runs.\n"
      "Simulated value with the paper's measurement in parentheses.\n\n");
  run_series(cat, 10, 1320, reps);
  run_series(cat, 18, 2376, reps);
  return 0;
}
