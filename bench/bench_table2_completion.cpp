// Reproduces Table II: maximum request completion times, reported as the
// FIFO-to-baseline ratio (min-max over the 5 seeded experiments) for every
// (CPU cores, intensity) pair.
//
// Expected shape: our FIFO is *slower* to drain the burst than the baseline
// at few cores / low intensity (ratios > 1) and drains much faster at 20
// cores (ratios well below 1), because the baseline's cold-start storms and
// dockerd strain grow with the total request count.
#include <algorithm>

#include "bench_common.h"

using namespace whisk;

int main() {
  const auto cat = workload::sebs_catalog();
  const int reps = bench::repetitions();
  const std::vector<int> core_counts = {5, 10, 20};
  const std::vector<int> intensities = {30, 40, 60, 90, 120};

  std::printf(
      "Table II — max completion time, FIFO-to-baseline ratio "
      "(min-max over %d seeds)\nSimulated range with the paper's range in "
      "parentheses.\n\n",
      reps);

  // The whole table is one campaign: 2 schedulers x 5 intensities x
  // 3 core counts x reps seeds. Per-seed ratios pair the FIFO and baseline
  // cells of the same (scenario, cores, seed) coordinate.
  experiments::CampaignSpec grid;
  grid.schedulers = {experiments::SchedulerSpec::parse("ours/fifo"),
                     experiments::SchedulerSpec::parse("baseline/fifo")};
  grid.scenarios.clear();
  for (int v : intensities) {
    grid.scenarios.push_back(workload::ScenarioSpec::parse(
        "uniform?intensity=" + std::to_string(v)));
  }
  grid.cores = core_counts;
  grid.seeds = bench::seed_range(reps);
  const auto result =
      experiments::run_campaign(grid, cat, bench::campaign_options());

  auto group = [&](std::size_t sched_i, std::size_t scen_i,
                   std::size_t cores_i) {
    return result.group(
        grid.group_index(sched_i, scen_i, 0, /*cores_i=*/cores_i));
  };

  std::vector<std::string> header = {"cores"};
  for (int v : intensities) header.push_back("int " + std::to_string(v));
  util::Table table(header);

  for (std::size_t c = 0; c < core_counts.size(); ++c) {
    std::vector<std::string> row = {std::to_string(core_counts[c])};
    for (std::size_t v = 0; v < intensities.size(); ++v) {
      const auto fifo = group(0, v, c);
      const auto base = group(1, v, c);
      double lo = 1e30;
      double hi = 0.0;
      for (std::size_t s = 0; s < fifo.size(); ++s) {
        const double ratio = fifo[s].max_completion / base[s].max_completion;
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
      }
      std::string cell = util::fmt_range(lo, hi);
      if (auto ref = experiments::paper::find_completion_ratio(
              core_counts[c], intensities[v])) {
        cell += " (" + util::fmt_range(ref->ratio_lo, ref->ratio_hi) + ")";
      }
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
