// Reproduces Table II: maximum request completion times, reported as the
// FIFO-to-baseline ratio (min-max over the 5 seeded experiments) for every
// (CPU cores, intensity) pair.
//
// Expected shape: our FIFO is *slower* to drain the burst than the baseline
// at few cores / low intensity (ratios > 1) and drains much faster at 20
// cores (ratios well below 1), because the baseline's cold-start storms and
// dockerd strain grow with the total request count.
#include <algorithm>

#include "bench_common.h"

using namespace whisk;

int main() {
  const auto cat = workload::sebs_catalog();
  const int reps = bench::repetitions();
  const std::vector<int> core_counts = {5, 10, 20};
  const std::vector<int> intensities = {30, 40, 60, 90, 120};

  std::printf(
      "Table II — max completion time, FIFO-to-baseline ratio "
      "(min-max over %d seeds)\nSimulated range with the paper's range in "
      "parentheses.\n\n",
      reps);

  std::vector<std::string> header = {"cores"};
  for (int v : intensities) header.push_back("int " + std::to_string(v));
  util::Table table(header);

  for (int cores : core_counts) {
    std::vector<std::string> row = {std::to_string(cores)};
    for (int v : intensities) {
      auto cfg = experiments::ExperimentSpec().cores(cores).intensity(v);

      cfg.scheduler("ours/fifo");
      const auto fifo = experiments::run_repetitions(cfg, cat, reps);
      cfg.scheduler("baseline/fifo");
      const auto base = experiments::run_repetitions(cfg, cat, reps);

      double lo = 1e30;
      double hi = 0.0;
      for (std::size_t i = 0; i < fifo.size(); ++i) {
        const double ratio = fifo[i].max_completion / base[i].max_completion;
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
      }
      std::string cell = util::fmt_range(lo, hi);
      if (auto ref = experiments::paper::find_completion_ratio(cores, v)) {
        cell += " (" + util::fmt_range(ref->ratio_lo, ref->ratio_hi) + ")";
      }
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
