// Reproduces Fig. 4 / the S(i) columns of Table III: stretch statistics
// (response time divided by the function's idle-system median, Sec. V-A)
// for the six schedulers over the (cores, intensity) grid. Pass --appendix
// for the extended grid.
//
// Expected shapes: SEPT/FC cut the average stretch by an order of magnitude
// versus FIFO (short calls stop waiting behind long ones); stretch can be
// below 1 because the reference is a client-side median.
#include <cstring>

#include "bench_common.h"

using namespace whisk;

int main(int argc, char** argv) {
  const bool appendix = argc > 1 && std::strcmp(argv[1], "--appendix") == 0;
  const auto cat = workload::sebs_catalog();
  const int reps = bench::repetitions();
  const std::vector<int> core_counts =
      appendix ? std::vector<int>{5, 10, 20} : std::vector<int>{10, 20};
  const std::vector<int> intensities = appendix
                                           ? std::vector<int>{30, 40, 60, 90,
                                                              120}
                                           : std::vector<int>{30, 40, 60};

  std::printf(
      "Fig. 4 / Table III (stretch S(i)) — %d seeds pooled\n"
      "Simulated value with the paper's measurement in parentheses.\n\n",
      reps);

  for (int cores : core_counts) {
    for (int v : intensities) {
      const auto grid = bench::paper_scheduler_grid(
          "uniform?intensity=" + std::to_string(v), cores, reps);
      const auto result =
          experiments::run_campaign(grid, cat, bench::campaign_options());
      const auto rows = bench::summarize_groups(result);

      std::printf("-- %d CPU cores, intensity %d --\n", cores, v);
      util::Table table({"scheduler", "avg", "p50", "p75", "p95", "p99"});
      for (std::size_t g = 0; g < rows.size(); ++g) {
        const auto& s = rows[g];
        const std::string label = experiments::paper_schedulers()[g].label();
        const auto ref =
            experiments::paper::find_single_node(cores, v, label);
        table.add_row({label,
                       ref ? bench::with_ref(s.stretch.mean, ref->s_avg, 1)
                           : util::fmt(s.stretch.mean, 1),
                       util::fmt(s.stretch.p50, 1),
                       util::fmt(s.stretch.p75, 1),
                       util::fmt(s.stretch.p95, 1),
                       util::fmt(s.stretch.p99, 1)});
      }
      std::printf("%s\n", table.to_string().c_str());
    }
  }
  return 0;
}
