#pragma once

// Shared helpers for the paper-reproduction bench binaries. Each binary
// regenerates one table or figure of the paper and prints simulated values
// next to the paper's measured ones where available (see DESIGN.md for the
// experiment index and EXPERIMENTS.md for the recorded comparison).
//
// The benches run their grids through experiments::run_campaign: the sweep
// is declared once as a CampaignSpec and executed on the work-stealing
// pool. Campaign determinism guarantees the printed numbers are identical
// to the old serial rep loops (and to any WHISK_BENCH_THREADS value).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "experiments/campaign.h"
#include "experiments/paper_data.h"
#include "experiments/runner.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace whisk::bench {

// Number of seeded repetitions per configuration; the paper uses 5.
// Override with WHISK_BENCH_REPS for quicker smoke runs.
inline int repetitions() {
  if (const char* env = std::getenv("WHISK_BENCH_REPS")) {
    const int reps = std::atoi(env);
    if (reps > 0) return reps;
  }
  return 5;
}

// Campaign worker threads; override with WHISK_BENCH_THREADS. The output
// does not depend on the value (campaign determinism contract).
inline int threads() {
  if (const char* env = std::getenv("WHISK_BENCH_THREADS")) {
    const int t = std::atoi(env);
    if (t > 0) return t;
  }
  return util::ThreadPool::hardware_threads();
}

// The paper's seeds 0..reps-1.
inline std::vector<std::uint64_t> seed_range(int reps) {
  return experiments::CampaignSpec::first_seeds(reps);
}

inline experiments::CampaignOptions campaign_options() {
  experiments::CampaignOptions opts;
  opts.threads = threads();
  return opts;
}

// "value (paper ref)" cell, or just the value when no reference exists.
inline std::string with_ref(double value, double ref, int precision = 2) {
  return util::fmt(value, precision) + " (" + util::fmt(ref, precision) + ")";
}

// One aggregated row per campaign group: exact summaries pooled over the
// group's seeds, plus summed counters — what every figure/table prints.
struct SweepRow {
  std::string label;
  util::Summary response;
  util::Summary stretch;
  double max_completion = 0.0;
  node::InvokerStats stats;
};

inline std::vector<SweepRow> summarize_groups(
    const experiments::CampaignResult& result) {
  std::vector<SweepRow> rows;
  rows.reserve(result.group_count());
  for (std::size_t g = 0; g < result.group_count(); ++g) {
    const auto cells = result.group(g);
    SweepRow row;
    row.label = result.group_label(g);
    row.response = util::summarize(experiments::pooled_responses(cells));
    row.stretch = util::summarize(experiments::pooled_stretches(cells));
    row.max_completion = experiments::max_completion(cells);
    row.stats = experiments::total_stats(cells);
    rows.push_back(std::move(row));
  }
  return rows;
}

// The six paper schedulers (figure order) over one scenario/deployment;
// groups come back in paper_schedulers() order.
inline experiments::CampaignSpec paper_scheduler_grid(
    const std::string& scenario, int cores, int reps, int nodes = 1) {
  experiments::CampaignSpec grid;
  grid.schedulers = experiments::paper_schedulers();
  grid.scenarios = {workload::ScenarioSpec::parse(scenario)};
  grid.cores = {cores};
  grid.nodes = {nodes};
  grid.seeds = seed_range(reps);
  return grid;
}

}  // namespace whisk::bench
