#pragma once

// Shared helpers for the paper-reproduction bench binaries. Each binary
// regenerates one table or figure of the paper and prints simulated values
// next to the paper's measured ones where available (see DESIGN.md for the
// experiment index and EXPERIMENTS.md for the recorded comparison).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "experiments/paper_data.h"
#include "experiments/runner.h"
#include "util/stats.h"
#include "util/table.h"

namespace whisk::bench {

// Number of seeded repetitions per configuration; the paper uses 5.
// Override with WHISK_BENCH_REPS for quicker smoke runs.
inline int repetitions() {
  if (const char* env = std::getenv("WHISK_BENCH_REPS")) {
    const int reps = std::atoi(env);
    if (reps > 0) return reps;
  }
  return 5;
}

// "value (paper ref)" cell, or just the value when no reference exists.
inline std::string with_ref(double value, double ref, int precision = 2) {
  return util::fmt(value, precision) + " (" + util::fmt(ref, precision) + ")";
}

struct SchedulerSweep {
  std::string label;
  std::vector<experiments::RunResult> runs;
  util::Summary response;
  util::Summary stretch;
  double max_completion = 0.0;
};

// Run all six paper schedulers for one (cores, intensity) configuration.
inline std::vector<SchedulerSweep> sweep_schedulers(
    const workload::FunctionCatalog& cat, experiments::ExperimentSpec cfg,
    int reps) {
  std::vector<SchedulerSweep> out;
  for (const auto& sched : experiments::paper_schedulers()) {
    cfg.scheduler(sched);
    SchedulerSweep sweep;
    sweep.label = sched.label();
    sweep.runs = experiments::run_repetitions(cfg, cat, reps);
    const auto rs = experiments::pooled_responses(sweep.runs);
    const auto ss = experiments::pooled_stretches(sweep.runs);
    sweep.response = util::summarize(rs);
    sweep.stretch = util::summarize(ss);
    for (const auto& r : sweep.runs) {
      sweep.max_completion = std::max(sweep.max_completion, r.max_completion);
    }
    out.push_back(std::move(sweep));
  }
  return out;
}

}  // namespace whisk::bench
