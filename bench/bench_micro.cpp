// Substrate micro-benchmarks (google-benchmark): throughput of the event
// engine, the policy priority computation, the pending queue and the
// container pool, plus one end-to-end experiment benchmark.
#include <benchmark/benchmark.h>

#include "container/pool.h"
#include "core/pending_queue.h"
#include "core/policy.h"
#include "experiments/runner.h"
#include "sim/engine.h"
#include "sim/random.h"

using namespace whisk;

namespace {

void BM_EngineScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      engine.schedule_at(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(10000);

void BM_RngLognormal(benchmark::State& state) {
  sim::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.lognormal(0.0, 0.3));
  }
}
BENCHMARK(BM_RngLognormal);

const std::vector<std::string>& micro_policy_names() {
  static const std::vector<std::string> kNames = {"fifo", "sept", "fc",
                                                  "sjf-aging"};
  return kNames;
}

void BM_PolicyPriority(benchmark::State& state) {
  const auto& name = micro_policy_names().at(
      static_cast<std::size_t>(state.range(0)));
  state.SetLabel(name);
  auto policy = core::make_policy(name);
  core::RuntimeHistory history(10);
  for (int f = 0; f < 11; ++f) {
    for (int k = 0; k < 10; ++k) {
      history.record_runtime(f, 0.5 + 0.1 * k, static_cast<double>(k));
    }
    history.record_arrival(f, 9.0);
  }
  double t = 10.0;
  for (auto _ : state) {
    t += 0.001;
    const core::PolicyContext ctx{t, static_cast<int>(state.iterations()) %
                                         11,
                                  &history};
    benchmark::DoNotOptimize(policy->priority(ctx));
  }
}
BENCHMARK(BM_PolicyPriority)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_PendingQueue(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Rng rng(1);
  for (auto _ : state) {
    core::PendingQueue<int> q;
    for (int i = 0; i < n; ++i) q.push(rng.uniform(), i);
    long sum = 0;
    while (!q.empty()) sum += q.pop();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PendingQueue)->Arg(256)->Arg(4096);

void BM_PoolAcquireRelease(benchmark::State& state) {
  container::ContainerPool pool(32.0 * 1024.0);
  for (int f = 0; f < 11; ++f) {
    for (int k = 0; k < 10; ++k) {
      auto cid = pool.begin_creation(160.0);
      pool.finish_creation_busy(*cid, f);
      pool.release(*cid, 0.0);
    }
  }
  double t = 1.0;
  for (auto _ : state) {
    const int f = static_cast<int>(state.iterations()) % 11;
    auto cid = pool.acquire_warm(f);
    pool.release(*cid, t);
    t += 0.001;
  }
}
BENCHMARK(BM_PoolAcquireRelease);

void BM_EndToEndExperiment(benchmark::State& state) {
  const auto cat = workload::sebs_catalog();
  auto cfg = experiments::ExperimentSpec().cores(10).intensity(30).scheduler(
      "ours/sept");
  for (auto _ : state) {
    cfg.seed(static_cast<std::uint64_t>(state.iterations()));
    auto result = experiments::run_experiment(cfg, cat);
    benchmark::DoNotOptimize(result.responses.size());
  }
}
BENCHMARK(BM_EndToEndExperiment)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
