#pragma once

// The churn workloads behind bench_engine and tools/bench_report. Templated
// over the engine/history type so the production implementations
// (sim::Engine, core::RuntimeHistory) and the retained seed baselines
// (bench::ref::SeedEngine, bench::ref::SeedHistory) run byte-for-byte the
// same logic.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace whisk::bench {

// Deterministic LCG so every engine sees the identical event schedule.
class ChurnRng {
 public:
  explicit ChurnRng(std::uint32_t seed) : state_(seed * 747796405u + 1u) {}

  std::uint32_t next() {
    state_ = state_ * 1664525u + 1013904223u;
    return state_;
  }

  // Uniform double in [0, scale).
  double jitter(double scale) {
    return static_cast<double>(next() % 4096u) / 4096.0 * scale;
  }

 private:
  std::uint32_t state_;
};

// Defeats dead-code elimination of workload side effects without the
// google-benchmark dependency (tools/bench_report includes this header).
inline volatile double g_churn_sink = 0.0;

// Re-arm a pending event to a new delay, in each engine's own idiom: an
// engine with true rescheduling moves the event in place; one without (the
// seed) cancels and schedules a replacement — its only spelling of the
// CpuSystem / deadline-guard pattern, which leaves a lazy-deletion ghost
// in its heap every time.
template <typename EngineT, typename Id, typename Fn>
void rearm(EngineT& eng, Id& id, double delay, Fn&& fn) {
  if constexpr (requires { eng.reschedule_in(id, delay); }) {
    if (id == Id{} || !eng.reschedule_in(id, delay)) {
      id = eng.schedule_in(delay, std::forward<Fn>(fn));
    }
  } else {
    if (id != Id{}) eng.cancel(id);
    id = eng.schedule_in(delay, std::forward<Fn>(fn));
  }
}

// Schedule/cancel/run churn mirroring the simulator's hot mix:
//   * a self-sustaining population of "work" events with 40-byte captures —
//     the size class of the invoker/cluster lambdas, past std::function's
//     16-byte inline buffer but inside EventFn's 48;
//   * a deadline guard armed per work event and cancelled ~128 events
//     later, long before its 1 s horizon (the invoker-guard pattern);
//   * a per-node completion event re-armed on every work event to a fresh
//     sub-second ETA (the CpuSystem pattern, the simulator's most frequent
//     cancel source).
//
// Returns the number of callbacks executed; the workload is identical
// across engines for the same parameters, so events/sec is directly
// comparable.
template <typename EngineT>
std::size_t run_engine_churn(std::size_t total_work_events,
                             std::uint32_t seed) {
  using Id = decltype(std::declval<EngineT&>().schedule_at(0.0, nullptr));
  constexpr std::size_t kSeedPopulation = 64;
  constexpr std::size_t kTimeoutRing = 128;
  constexpr std::size_t kNodes = 8;
  constexpr double kGuardHorizon = 1.0;

  struct State {
    EngineT eng;
    ChurnRng rng;
    std::size_t scheduled = 0;
    std::size_t budget;
    double acc = 0.0;
    std::vector<Id> timeouts;
    std::size_t cursor = 0;
    Id completions[kNodes] = {};

    State(std::size_t total, std::uint32_t s) : rng(s), budget(total) {
      timeouts.reserve(kTimeoutRing);
    }

    void arm_work() {
      ++scheduled;
      const double a = rng.jitter(1.0);
      const double b = rng.jitter(1.0);
      const double c = rng.jitter(1.0);
      const double d = rng.jitter(1.0);
      eng.schedule_in(rng.jitter(0.01), [this, a, b, c, d] {
        acc += a + b + c + d;
        fire();
      });
    }

    void fire() {
      if (scheduled < budget) arm_work();
      // Deadline guard: armed now, cancelled kTimeoutRing work events later
      // (~10 ms of simulated time, far inside its 1 s horizon, so the
      // cancel almost always hits a live event).
      const double deadline = eng.now() + kGuardHorizon;
      const std::size_t req = scheduled;
      const Id t = eng.schedule_in(kGuardHorizon,
                                   [this, deadline, req] {
                                     acc += deadline + static_cast<double>(req);
                                   });
      if (timeouts.size() < kTimeoutRing) {
        timeouts.push_back(t);
      } else {
        eng.cancel(timeouts[cursor]);
        timeouts[cursor] = t;
        cursor = cursor + 1 == kTimeoutRing ? 0 : cursor + 1;
      }
      // CpuSystem-style re-arm: the node's completion ETA moves on every
      // event that touches the node.
      const std::size_t node = rng.next() % kNodes;
      const double eta = 0.02 + rng.jitter(0.1);
      rearm(eng, completions[node], eta, [this, node, eta] {
        acc += eta;
        completions[node] = Id{};
      });
    }
  };

  State st(total_work_events, seed);
  for (std::size_t i = 0; i < kSeedPopulation && st.scheduled < st.budget;
       ++i) {
    st.arm_work();
  }
  st.eng.run();
  g_churn_sink = g_churn_sink + st.acc;
  return st.eng.executed();
}

// Pure schedule-then-drain throughput (no cancellation): the engine cost
// floor under the paper benches' event volume.
template <typename EngineT>
std::size_t run_engine_schedule_drain(std::size_t events,
                                      std::uint32_t seed) {
  EngineT eng;
  ChurnRng rng(seed);
  std::size_t fired = 0;
  for (std::size_t i = 0; i < events; ++i) {
    eng.schedule_at(rng.jitter(100.0), [&fired] { ++fired; });
  }
  eng.run();
  return fired;
}

// The per-call history traffic of a policy-driven invoker: one priority
// evaluation (E(p), #(f,-T), r-bar) plus the arrival and completion
// records, round-robined over the paper's 11 functions.
template <typename HistoryT>
double run_history_mix(std::size_t calls, std::uint32_t seed) {
  constexpr int kFunctions = 11;
  HistoryT history(10);
  ChurnRng rng(seed);
  double now = 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < calls; ++i) {
    const int fn = static_cast<int>(rng.next() % kFunctions);
    now += 0.001;
    acc += history.expected_runtime(fn);
    acc += static_cast<double>(history.completions_within(fn, 60.0, now));
    acc += history.previous_arrival(fn);
    history.record_arrival(fn, now);
    history.record_runtime(fn, 0.05 + rng.jitter(1.0), now);
  }
  g_churn_sink = g_churn_sink + acc;
  return acc;
}

}  // namespace whisk::bench
