#include "metrics/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace whisk::metrics {
namespace {

CallRecord sample_record(const workload::FunctionCatalog& cat) {
  CallRecord r;
  r.id = 7;
  r.function = *cat.find("sleep");
  r.node = 2;
  r.release = 1.0;
  r.received = 1.01;
  r.exec_start = 1.02;
  r.exec_end = 2.04;
  r.completion = 2.05;
  r.service = 1.02;
  r.start_kind = StartKind::kCold;
  return r;
}

TEST(Csv, HeaderOnlyForEmptyRecords) {
  const auto cat = workload::sebs_catalog();
  const std::string csv = to_csv({}, cat);
  EXPECT_EQ(csv.find("id,function,node"), 0u);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);
}

TEST(Csv, OneRowPerRecord) {
  const auto cat = workload::sebs_catalog();
  const std::string csv = to_csv({sample_record(cat), sample_record(cat)},
                                 cat);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Csv, RowCarriesNameKindAndDerivedMetrics) {
  const auto cat = workload::sebs_catalog();
  const std::string csv = to_csv({sample_record(cat)}, cat);
  EXPECT_NE(csv.find(",sleep,"), std::string::npos);
  EXPECT_NE(csv.find(",cold,"), std::string::npos);
  // response = 1.05 s; stretch = 1.05 / 1.022.
  EXPECT_NE(csv.find("1.05,"), std::string::npos);
}

TEST(Csv, StreamAndStringAgree) {
  const auto cat = workload::sebs_catalog();
  const std::vector<CallRecord> recs = {sample_record(cat)};
  std::ostringstream out;
  write_csv(out, recs, cat);
  EXPECT_EQ(out.str(), to_csv(recs, cat));
}

}  // namespace
}  // namespace whisk::metrics
