#include "metrics/collector.h"

#include <gtest/gtest.h>

namespace whisk::metrics {
namespace {

CallRecord rec(workload::CallId id, workload::FunctionId fn, double release,
               double completion, StartKind kind = StartKind::kWarm) {
  CallRecord r;
  r.id = id;
  r.function = fn;
  r.release = release;
  r.received = release + 0.005;
  r.exec_start = release + 0.01;
  r.exec_end = completion - 0.01;
  r.completion = completion;
  r.service = r.exec_end - r.exec_start;
  r.start_kind = kind;
  return r;
}

class CollectorTest : public ::testing::Test {
 protected:
  workload::FunctionCatalog cat_ = workload::sebs_catalog();
  Collector col_{cat_};
};

TEST_F(CollectorTest, StartsEmpty) {
  EXPECT_EQ(col_.size(), 0u);
  EXPECT_EQ(col_.max_completion(), 0.0);
  EXPECT_TRUE(col_.response_times().empty());
}

TEST_F(CollectorTest, ResponseIsCompletionMinusRelease) {
  col_.add(rec(0, 0, 1.0, 3.5));
  const auto rs = col_.response_times();
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_DOUBLE_EQ(rs[0], 2.5);
}

TEST_F(CollectorTest, StretchUsesReferenceMedian) {
  const auto sleep = *cat_.find("sleep");  // reference median 1.022 s
  col_.add(rec(0, sleep, 0.0, 2.044));
  const auto ss = col_.stretches();
  ASSERT_EQ(ss.size(), 1u);
  EXPECT_NEAR(ss[0], 2.0, 1e-9);
}

TEST_F(CollectorTest, StretchCanBeBelowOne) {
  // The paper's stretch reference is a client-side median, so faster-than-
  // median calls get stretch < 1 (Sec. V-A).
  const auto sleep = *cat_.find("sleep");
  col_.add(rec(0, sleep, 0.0, 0.9));
  EXPECT_LT(col_.stretches()[0], 1.0);
}

TEST_F(CollectorTest, PerFunctionFiltering) {
  const auto a = *cat_.find("graph-bfs");
  const auto b = *cat_.find("sleep");
  col_.add(rec(0, a, 0.0, 1.0));
  col_.add(rec(1, b, 0.0, 2.0));
  col_.add(rec(2, a, 0.0, 3.0));
  EXPECT_EQ(col_.calls_of(a), 2u);
  EXPECT_EQ(col_.calls_of(b), 1u);
  EXPECT_EQ(col_.response_times_of(a).size(), 2u);
  EXPECT_EQ(col_.stretches_of(b).size(), 1u);
}

TEST_F(CollectorTest, PerFunctionQueriesPreserveInsertionOrder) {
  // The per-function index must return exactly what the old full scans
  // returned: values in insertion order, interleavings untangled.
  const auto a = *cat_.find("graph-bfs");
  const auto b = *cat_.find("sleep");
  col_.add(rec(0, a, 0.0, 3.0));
  col_.add(rec(1, b, 0.0, 9.0));
  col_.add(rec(2, a, 0.0, 1.0));
  col_.add(rec(3, a, 0.0, 2.0));
  EXPECT_EQ(col_.response_times_of(a), (std::vector<double>{3.0, 1.0, 2.0}));
  EXPECT_EQ(col_.response_times_of(b), (std::vector<double>{9.0}));
  // Unknown / never-seen functions answer empty, not out-of-bounds.
  EXPECT_TRUE(col_.response_times_of(workload::kInvalidFunction).empty());
  EXPECT_EQ(col_.calls_of(static_cast<workload::FunctionId>(10000)), 0u);
}

TEST_F(CollectorTest, MaxCompletion) {
  col_.add(rec(0, 0, 0.0, 5.0));
  col_.add(rec(1, 1, 0.0, 17.5));
  col_.add(rec(2, 2, 0.0, 3.0));
  EXPECT_DOUBLE_EQ(col_.max_completion(), 17.5);
}

TEST_F(CollectorTest, StartKindCounters) {
  col_.add(rec(0, 0, 0.0, 1.0, StartKind::kWarm));
  col_.add(rec(1, 0, 0.0, 1.0, StartKind::kCold));
  col_.add(rec(2, 0, 0.0, 1.0, StartKind::kCold));
  col_.add(rec(3, 0, 0.0, 1.0, StartKind::kPrewarm));
  EXPECT_EQ(col_.warm_starts(), 1u);
  EXPECT_EQ(col_.cold_starts(), 2u);
  EXPECT_EQ(col_.prewarm_starts(), 1u);
}

TEST_F(CollectorTest, SummariesAggregate) {
  for (int i = 1; i <= 10; ++i) {
    col_.add(rec(i, 0, 0.0, static_cast<double>(i)));
  }
  const auto sum = col_.response_summary();
  EXPECT_EQ(sum.count, 10u);
  EXPECT_DOUBLE_EQ(sum.mean, 5.5);
  EXPECT_DOUBLE_EQ(sum.max, 10.0);
}

TEST_F(CollectorTest, StartKindNames) {
  EXPECT_STREQ(to_string(StartKind::kWarm), "warm");
  EXPECT_STREQ(to_string(StartKind::kPrewarm), "prewarm");
  EXPECT_STREQ(to_string(StartKind::kCold), "cold");
}

TEST_F(CollectorTest, QueueWaitDerived) {
  auto r = rec(0, 0, 1.0, 3.0);
  r.received = 1.1;
  r.exec_start = 1.7;
  EXPECT_NEAR(r.queue_wait(), 0.6, 1e-12);
}

// A terminal record that never executed: shed at admission or dropped
// after the attempt bound.
CallRecord refused(workload::CallId id, Disposition d, int attempts = 1) {
  CallRecord r;
  r.id = id;
  r.function = 0;
  r.node = -1;
  r.release = 1.0;
  r.received = 1.0;
  r.exec_start = 1.0;
  r.exec_end = 1.0;
  r.completion = 1.5;
  r.attempts = attempts;
  r.disposition = d;
  return r;
}

TEST_F(CollectorTest, DispositionCountersPartitionSize) {
  col_.add(rec(0, 0, 0.0, 1.0));
  col_.add(refused(1, Disposition::kShed));
  col_.add(refused(2, Disposition::kDropped, /*attempts=*/4));
  col_.add(rec(3, 0, 0.0, 2.0));
  EXPECT_EQ(col_.size(), 4u);
  EXPECT_EQ(col_.ok_calls(), 2u);
  EXPECT_EQ(col_.shed_calls(), 1u);
  EXPECT_EQ(col_.dropped_calls(), 1u);
  EXPECT_EQ(col_.ok_calls() + col_.shed_calls() + col_.dropped_calls(),
            col_.size());
}

TEST_F(CollectorTest, LatencyMetricsCoverOkRecordsOnly) {
  col_.add(rec(0, 0, 0.0, 1.0));
  col_.add(refused(1, Disposition::kShed));
  col_.add(refused(2, Disposition::kDropped, /*attempts=*/3));
  // Shed/dropped records stay out of every latency distribution: their
  // "response" is a refusal time, not a service observation.
  EXPECT_EQ(col_.response_times().size(), 1u);
  EXPECT_EQ(col_.stretches().size(), 1u);
  EXPECT_EQ(col_.response_summary().count, 1u);
  EXPECT_DOUBLE_EQ(col_.max_completion(), 1.0);
  EXPECT_EQ(col_.calls_of(0), 1u);
}

TEST_F(CollectorTest, AttemptsFeedResubmissionAccounting) {
  auto r = rec(0, 0, 0.0, 1.0);
  r.attempts = 3;  // completed on the third try
  col_.add(r);
  col_.add(rec(1, 0, 0.0, 1.0));               // first-try completion
  col_.add(refused(2, Disposition::kDropped, /*attempts=*/4));
  EXPECT_EQ(col_.resubmitted_calls(), 2u);
  EXPECT_EQ(col_.resubmissions(), 2u + 3u);
}

TEST(CollectorDeath, RejectsCompletionBeforeRelease) {
  const auto cat = workload::sebs_catalog();
  Collector col(cat);
  CallRecord r = rec(0, 0, 5.0, 6.0);
  r.completion = 4.0;
  EXPECT_DEATH(col.add(r), "completion");
}

TEST(CollectorDeath, RejectsAttemptsBelowOne) {
  const auto cat = workload::sebs_catalog();
  Collector col(cat);
  CallRecord r = rec(0, 0, 0.0, 1.0);
  r.attempts = 0;
  EXPECT_DEATH(col.add(r), "attempts");
}

TEST(CollectorDeath, RejectsRefusedRecordWithExecutionInterval) {
  const auto cat = workload::sebs_catalog();
  Collector col(cat);
  // A shed call that claims it executed violates the ok-only invariant the
  // latency metrics rely on.
  CallRecord r = rec(0, 0, 0.0, 1.0);
  r.disposition = Disposition::kShed;
  EXPECT_DEATH(col.add(r), "execution interval");
}

TEST(Concat, FlattensRepetitions) {
  const std::vector<std::vector<double>> reps = {{1.0, 2.0}, {}, {3.0}};
  const auto flat = concat(reps);
  EXPECT_EQ(flat, (std::vector<double>{1.0, 2.0, 3.0}));
}

}  // namespace
}  // namespace whisk::metrics
