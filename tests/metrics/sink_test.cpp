#include "metrics/sink.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "metrics/collector.h"
#include "metrics/csv.h"
#include "util/stats.h"

namespace whisk::metrics {
namespace {

CallRecord rec(workload::CallId id, workload::FunctionId fn, double release,
               double completion, StartKind kind = StartKind::kWarm) {
  CallRecord r;
  r.id = id;
  r.function = fn;
  r.node = 0;
  r.release = release;
  r.received = release + 0.005;
  r.exec_start = release + 0.01;
  r.exec_end = completion - 0.01;
  r.completion = completion;
  r.service = r.exec_end - r.exec_start;
  r.start_kind = kind;
  return r;
}

class SinkTest : public ::testing::Test {
 protected:
  // A deterministic varied record stream over three functions.
  std::vector<CallRecord> stream(int n) {
    std::vector<CallRecord> out;
    const workload::FunctionId fns[] = {*cat_.find("graph-bfs"),
                                        *cat_.find("sleep"),
                                        *cat_.find("dna-visualisation")};
    for (int i = 0; i < n; ++i) {
      const double release = 0.1 * i;
      const double response = 0.05 + 0.01 * ((i * 7) % 23);
      out.push_back(rec(i, fns[i % 3], release, release + response));
    }
    return out;
  }

  workload::FunctionCatalog cat_ = workload::sebs_catalog();
};

TEST_F(SinkTest, StreamingSummaryMatchesSummarizeExactlyWhileExact) {
  // Satellite contract: the bounded-memory sink equals util::summarize on
  // the retained sample, exactly, for n <= reservoir capacity.
  const auto records = stream(50);
  StreamingSummarySink sink(cat_, /*reservoir_capacity=*/64);
  std::vector<double> responses;
  std::vector<double> stretches;
  for (const auto& r : records) {
    sink.on_record(r);
    responses.push_back(r.response());
    stretches.push_back(r.response() / cat_.reference_median(r.function));
  }
  ASSERT_TRUE(sink.response().exact());

  const util::Summary exact_r = util::summarize(responses);
  const util::Summary got_r = sink.response().summary();
  EXPECT_EQ(got_r.count, exact_r.count);
  // Quantiles come from the full retained sample: bit-exact.
  EXPECT_DOUBLE_EQ(got_r.p25, exact_r.p25);
  EXPECT_DOUBLE_EQ(got_r.p50, exact_r.p50);
  EXPECT_DOUBLE_EQ(got_r.p75, exact_r.p75);
  EXPECT_DOUBLE_EQ(got_r.p95, exact_r.p95);
  EXPECT_DOUBLE_EQ(got_r.p99, exact_r.p99);
  EXPECT_DOUBLE_EQ(got_r.min, exact_r.min);
  EXPECT_DOUBLE_EQ(got_r.max, exact_r.max);
  // Mean/stddev accumulate by Welford instead of a naive sum: equal to
  // floating-point noise.
  EXPECT_NEAR(got_r.mean, exact_r.mean, 1e-12);
  EXPECT_NEAR(got_r.stddev, exact_r.stddev, 1e-9);

  const util::Summary exact_s = util::summarize(stretches);
  const util::Summary got_s = sink.stretch().summary();
  EXPECT_DOUBLE_EQ(got_s.p50, exact_s.p50);
  EXPECT_NEAR(got_s.mean, exact_s.mean, 1e-12);
}

TEST_F(SinkTest, StreamingSummaryStaysCloseBeyondTheReservoir) {
  const auto records = stream(5000);
  StreamingSummarySink sink(cat_, /*reservoir_capacity=*/256);
  std::vector<double> responses;
  for (const auto& r : records) {
    sink.on_record(r);
    responses.push_back(r.response());
  }
  EXPECT_FALSE(sink.response().exact());

  const util::Summary exact = util::summarize(responses);
  const util::Summary got = sink.response().summary();
  // Count/mean/min/max/stddev are exact regardless of the reservoir.
  EXPECT_EQ(got.count, exact.count);
  EXPECT_NEAR(got.mean, exact.mean, 1e-12);
  EXPECT_DOUBLE_EQ(got.min, exact.min);
  EXPECT_DOUBLE_EQ(got.max, exact.max);
  // Quantiles are estimates over a uniform subsample; the stream spans
  // [0.05, 0.27], so a loose absolute envelope is meaningful.
  EXPECT_NEAR(got.p50, exact.p50, 0.05);
  EXPECT_NEAR(got.p95, exact.p95, 0.05);
}

TEST_F(SinkTest, StreamingSummaryMergeAggregatesGroups) {
  const auto records = stream(40);
  StreamingSummary all(64);
  StreamingSummary left(64);
  StreamingSummary right(64);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const double r = records[i].response();
    all.add(r);
    (i < 15 ? left : right).add(r);
  }
  left.merge(right);
  const auto a = all.summary();
  const auto m = left.summary();
  EXPECT_EQ(m.count, a.count);
  EXPECT_NEAR(m.mean, a.mean, 1e-12);
  EXPECT_DOUBLE_EQ(m.min, a.min);
  EXPECT_DOUBLE_EQ(m.max, a.max);
  // Both exact: the merged sample is the concatenated stream.
  EXPECT_DOUBLE_EQ(m.p50, a.p50);
}

TEST_F(SinkTest, CsvSinkWithoutContextMatchesWriteCsv) {
  const auto records = stream(20);
  std::ostringstream via_sink;
  CsvSink sink(via_sink, cat_);
  sink.begin_run(RunContext{});
  for (const auto& r : records) sink.on_record(r);
  sink.end_run();
  // The paper-pin format: byte-identical to the Collector-era exporter
  // (modulo the context columns, of which there are none here).
  EXPECT_EQ(via_sink.str(), to_csv(records, cat_));
}

TEST_F(SinkTest, CsvSinkPrependsContextColumns) {
  std::ostringstream out;
  CsvSink sink(out, cat_);
  RunContext ctx;
  ctx.fields = {{"cell", "3"}, {"scheduler", "ours/sept"}};
  sink.begin_run(ctx);
  sink.on_record(rec(0, *cat_.find("sleep"), 0.0, 1.0));
  const std::string text = out.str();
  EXPECT_EQ(text.find("cell,scheduler,id,function"), 0u);
  EXPECT_NE(text.find("\n3,ours/sept,0,sleep,"), std::string::npos);
}

TEST_F(SinkTest, CsvSinkQuotesFieldsWithCommas) {
  std::ostringstream out;
  CsvSink sink(out, cat_);
  RunContext ctx;
  ctx.fields = {{"scenario", "poisson?weights=1,2,3"}};
  sink.begin_run(ctx);
  sink.on_record(rec(0, *cat_.find("sleep"), 0.0, 1.0));
  EXPECT_NE(out.str().find("\"poisson?weights=1,2,3\","),
            std::string::npos);
}

TEST_F(SinkTest, CsvSinkRejectsSchemaChangesBetweenRuns) {
  std::ostringstream out;
  CsvSink sink(out, cat_);
  RunContext a;
  a.fields = {{"cell", "0"}};
  sink.begin_run(a);
  RunContext b;
  b.fields = {{"seed", "0"}};
  EXPECT_DEATH(sink.begin_run(b), "context keys changed");
}

TEST_F(SinkTest, JsonlSinkEmitsOneObjectPerRecordWithContext) {
  std::ostringstream out;
  JsonlSink sink(out, cat_);
  RunContext ctx;
  // numeric fields are emitted untyped-quoted like cells_jsonl does, so
  // the tool's two JSONL outputs agree on field types.
  ctx.fields = {{"scheduler", "ours/fc"}, {"seed", "2", /*numeric=*/true}};
  sink.begin_run(ctx);
  sink.on_record(rec(0, *cat_.find("sleep"), 0.0, 1.0));
  sink.on_record(rec(1, *cat_.find("graph-bfs"), 0.5, 1.0));
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("{\"scheduler\":\"ours/fc\",\"seed\":2,\"id\":0,"
                      "\"function\":\"sleep\""),
            std::string::npos);
  EXPECT_NE(text.find("\"start_kind\":\"warm\""), std::string::npos);
  EXPECT_NE(text.find("\"stretch\":"), std::string::npos);
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  // Spec values are verbatim user input (e.g. trace file paths); every
  // JSONL emitter (JsonlSink, cells_jsonl) must route them through this.
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\rb\x01" "c")), "a\\u000db\\u0001c");
}

TEST_F(SinkTest, FunctionIndexSinkMatchesCollectorQueries) {
  const auto records = stream(60);
  Collector collector(cat_);
  FunctionIndexSink sink(cat_);
  for (const auto& r : records) {
    collector.add(r);
    sink.on_record(r);
  }
  for (const auto& spec : cat_.specs()) {
    EXPECT_EQ(sink.calls_of(spec.id), collector.calls_of(spec.id))
        << spec.name;
    const auto exact = collector.response_times_of(spec.id);
    if (exact.empty()) {
      EXPECT_EQ(sink.response_of(spec.id), nullptr);
      continue;
    }
    ASSERT_NE(sink.response_of(spec.id), nullptr);
    EXPECT_NEAR(sink.response_of(spec.id)->stats.mean(), util::mean(exact),
                1e-12);
    // Per-function reservoirs kept the whole (small) stream: quantiles
    // equal the exact per-function percentiles.
    EXPECT_DOUBLE_EQ(sink.response_of(spec.id)->summary().p50,
                     util::percentile(exact, 50.0));
  }
  EXPECT_EQ(sink.calls_of(workload::kInvalidFunction), 0u);
}

TEST_F(SinkTest, PipelineFansOutToEverySink) {
  std::ostringstream csv_out;
  MetricsPipeline pipeline;
  auto* csv = pipeline.emplace<CsvSink>(csv_out, cat_);
  auto* summary = pipeline.emplace<StreamingSummarySink>(cat_);
  auto* index = pipeline.emplace<FunctionIndexSink>(cat_);
  ASSERT_NE(csv, nullptr);
  EXPECT_EQ(pipeline.size(), 3u);

  const auto records = stream(30);
  pipeline.begin_run(RunContext{});
  for (const auto& r : records) pipeline.consume(r);
  pipeline.end_run();

  EXPECT_EQ(csv_out.str(), to_csv(records, cat_));
  EXPECT_EQ(summary->calls(), records.size());
  EXPECT_EQ(index->calls_of(*cat_.find("graph-bfs")), 10u);
}

}  // namespace
}  // namespace whisk::metrics
