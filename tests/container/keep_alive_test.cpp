#include "container/keep_alive.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "container/pool.h"

namespace whisk::container {
namespace {

constexpr double kMb = 160.0;

ContainerId make_idle(ContainerPool& pool, workload::FunctionId fn,
                      sim::SimTime t) {
  const auto cid = pool.begin_creation(kMb);
  EXPECT_TRUE(cid.has_value());
  pool.finish_creation_busy(*cid, fn);
  pool.release(*cid, t);
  return *cid;
}

TEST(KeepAliveSpec, ParsesAndRoundTrips) {
  const auto spec = KeepAliveSpec::parse("TTL?IDLE-S=600");
  EXPECT_EQ(spec.name, "ttl");
  EXPECT_EQ(spec.params.at("idle-s"), "600");
  EXPECT_EQ(spec.to_string(), "ttl?idle-s=600");
  EXPECT_EQ(KeepAliveSpec::parse(spec.to_string()), spec);
}

TEST(KeepAliveSpec, AliasResolvesToCanonicalName) {
  EXPECT_EQ(KeepAliveSpec::parse("fixed?idle-s=5").name, "ttl");
}

TEST(KeepAliveSpecDeath, UnknownNamesAndKeysListAlternatives) {
  EXPECT_DEATH((void)KeepAliveSpec::parse("mru"),
               "unknown keep-alive policy \"mru\".*lru.*ttl.*pool-target");
  EXPECT_DEATH((void)KeepAliveSpec::parse("lru?idle-s=3"),
               "\"lru\" does not take parameter \"idle-s\"");
  EXPECT_DEATH((void)KeepAliveSpec::parse("ttl?idle-s=banana"),
               "not a finite number");
  EXPECT_DEATH((void)KeepAliveSpec::parse("ttl?idle-s=0"),
               "idle-s.*must be > 0");
  // Case-variant duplicates on a hand-built spec abort instead of one
  // value silently winning.
  {
    KeepAliveSpec dup;
    dup.name = "ttl";
    dup.params["IDLE-S"] = "5";
    dup.params["idle-s"] = "600";
    EXPECT_DEATH((void)dup.normalized(), "sets parameter \"idle-s\" twice");
  }
}

TEST(KeepAliveRegistry, BuiltinsRegisteredAndRuntimeExtensible) {
  const auto names = KeepAlivePolicyRegistry::instance().names();
  auto has = [&](std::string_view n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("lru"));
  EXPECT_TRUE(has("ttl"));
  EXPECT_TRUE(has("pool-target"));

  // The extension recipe: register at runtime, construct through the
  // normal surface.
  class KeepNewest final : public KeepAlivePolicy {
    std::string_view name() const override { return "keep-newest"; }
    std::size_t victim(std::span<const IdleCandidate> c) override {
      std::size_t best = 0;
      for (std::size_t i = 1; i < c.size(); ++i) {
        if (c[i].last_used > c[best].last_used) best = i;
      }
      return best;
    }
  };
  if (!KeepAlivePolicyRegistry::instance().contains("keep-newest")) {
    KeepAlivePolicyRegistry::instance().register_factory(
        "keep-newest", [](const KeepAliveSpec&) {
          return std::make_unique<KeepNewest>();
        });
  }
  ContainerPool pool(2.0 * kMb, make_keep_alive(KeepAliveSpec{"keep-newest"}));
  make_idle(pool, 1, 1.0);
  make_idle(pool, 2, 5.0);
  pool.evict_idle_until_free(kMb);
  EXPECT_TRUE(pool.acquire_warm(1).has_value()) << "oldest survives";
  EXPECT_FALSE(pool.acquire_warm(2).has_value()) << "newest evicted";
}

TEST(KeepAliveLru, MatchesTheHardcodedRule) {
  // Default-constructed pool == explicit lru == the pre-registry behavior:
  // oldest last_used evicted first, never more than needed.
  ContainerPool pool(4.0 * kMb, make_keep_alive(KeepAliveSpec{}));
  make_idle(pool, 1, 3.0);
  make_idle(pool, 2, 1.0);
  make_idle(pool, 3, 2.0);
  EXPECT_EQ(pool.evict_idle_until_free(kMb), 0u) << "already free";
  const auto cid = pool.begin_creation(kMb);
  ASSERT_TRUE(cid.has_value());
  EXPECT_EQ(pool.evict_idle_until_free(kMb), 1u);
  EXPECT_FALSE(pool.acquire_warm(2).has_value()) << "oldest (t=1) evicted";
  EXPECT_TRUE(pool.acquire_warm(3).has_value());
}

TEST(KeepAliveLru, NeverExpires) {
  ContainerPool pool(4.0 * kMb);
  make_idle(pool, 1, 0.0);
  EXPECT_EQ(pool.sweep_expired(1e9), 0u);
  EXPECT_EQ(pool.expirations(), 0u);
  EXPECT_FALSE(pool.keep_alive().may_expire());
}

TEST(KeepAliveTtl, SweepsIdleContainersPastTheirTtl) {
  ContainerPool pool(4.0 * kMb,
                     make_keep_alive(KeepAliveSpec::parse("ttl?idle-s=10")));
  make_idle(pool, 1, 0.0);
  make_idle(pool, 2, 7.0);
  EXPECT_EQ(pool.sweep_expired(5.0), 0u) << "nothing idle for > 10 s yet";
  EXPECT_EQ(pool.sweep_expired(12.0), 1u) << "the t=0 release lapsed";
  EXPECT_FALSE(pool.acquire_warm(1).has_value());
  EXPECT_TRUE(pool.acquire_warm(2).has_value());
  EXPECT_EQ(pool.expirations(), 1u);
  EXPECT_EQ(pool.evictions(), 0u) << "expiry is not a pressure eviction";
}

TEST(KeepAliveTtl, BusyContainersNeverExpire) {
  ContainerPool pool(4.0 * kMb,
                     make_keep_alive(KeepAliveSpec::parse("ttl?idle-s=1")));
  make_idle(pool, 1, 0.0);
  const auto busy = pool.acquire_warm(1);
  ASSERT_TRUE(busy.has_value());
  EXPECT_EQ(pool.sweep_expired(100.0), 0u);
  EXPECT_EQ(pool.busy_count(), 1u);
}

TEST(KeepAlivePoolTarget, ShieldsTheFloorAndEvictsAboveIt) {
  ContainerPool pool(
      4.0 * kMb,
      make_keep_alive(KeepAliveSpec::parse("pool-target?floor=1")));
  make_idle(pool, 1, 1.0);  // function 1: single idle -> protected
  make_idle(pool, 2, 2.0);
  make_idle(pool, 2, 3.0);  // function 2: two idle -> one evictable
  make_idle(pool, 3, 0.5);  // function 3: single idle -> protected
  // Pool is full; asking for one slot must evict the *oldest evictable*
  // (function 2 at t=2), not the globally oldest (function 3 at t=0.5).
  EXPECT_EQ(pool.evict_idle_until_free(kMb), 1u);
  EXPECT_EQ(pool.idle_count_of(2), 1u);
  EXPECT_EQ(pool.idle_count_of(1), 1u);
  EXPECT_EQ(pool.idle_count_of(3), 1u);
}

TEST(KeepAlivePoolTarget, FloorGoesSoftWhenEveryCandidateIsProtected) {
  ContainerPool pool(
      2.0 * kMb,
      make_keep_alive(KeepAliveSpec::parse("pool-target?floor=1")));
  make_idle(pool, 1, 1.0);
  make_idle(pool, 2, 2.0);
  // Both functions are at their floor; plain LRU applies rather than
  // deadlocking the memory request.
  EXPECT_EQ(pool.evict_idle_until_free(kMb), 1u);
  EXPECT_FALSE(pool.acquire_warm(1).has_value()) << "oldest evicted";
}

}  // namespace
}  // namespace whisk::container
