#include "container/pool.h"

#include <gtest/gtest.h>

namespace whisk::container {
namespace {

constexpr double kMb = 160.0;

ContainerId make_idle(ContainerPool& pool, workload::FunctionId fn,
                      sim::SimTime t) {
  const auto cid = pool.begin_creation(kMb);
  EXPECT_TRUE(cid.has_value());
  pool.finish_creation_busy(*cid, fn);
  pool.release(*cid, t);
  return *cid;
}

TEST(Pool, StartsEmpty) {
  ContainerPool pool(1024.0);
  EXPECT_EQ(pool.total_containers(), 0u);
  EXPECT_DOUBLE_EQ(pool.memory_used_mb(), 0.0);
  EXPECT_DOUBLE_EQ(pool.memory_free_mb(), 1024.0);
}

TEST(Pool, CreationReservesMemory) {
  ContainerPool pool(1024.0);
  const auto cid = pool.begin_creation(kMb);
  ASSERT_TRUE(cid.has_value());
  EXPECT_DOUBLE_EQ(pool.memory_used_mb(), kMb);
  EXPECT_EQ(pool.creating_count(), 1u);
  EXPECT_EQ(pool.creations(), 1u);
}

TEST(Pool, CreationFailsWhenMemoryExhausted) {
  ContainerPool pool(300.0);
  EXPECT_TRUE(pool.begin_creation(kMb).has_value());
  EXPECT_FALSE(pool.begin_creation(kMb).has_value())
      << "2 x 160 MB does not fit in 300 MB";
}

TEST(Pool, CancelCreationReleasesReservation) {
  ContainerPool pool(200.0);
  const auto cid = pool.begin_creation(kMb);
  pool.cancel_creation(*cid);
  EXPECT_DOUBLE_EQ(pool.memory_used_mb(), 0.0);
  EXPECT_TRUE(pool.begin_creation(kMb).has_value());
}

TEST(Pool, WarmAcquireMatchesFunction) {
  ContainerPool pool(1024.0);
  make_idle(pool, 3, 1.0);
  EXPECT_FALSE(pool.acquire_warm(5).has_value())
      << "no container of function 5";
  const auto got = pool.acquire_warm(3);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(pool.info(*got).state, ContainerState::kBusy);
  EXPECT_FALSE(pool.acquire_warm(3).has_value()) << "already taken";
}

TEST(Pool, WarmAcquirePrefersMostRecentlyUsed) {
  ContainerPool pool(1024.0);
  const auto old_cid = make_idle(pool, 1, 1.0);
  const auto new_cid = make_idle(pool, 1, 2.0);
  const auto got = pool.acquire_warm(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, new_cid);
  (void)old_cid;
}

TEST(Pool, PrewarmLifecycle) {
  ContainerPool pool(1024.0);
  const auto cid = pool.begin_creation(kMb);
  pool.finish_creation_prewarm(*cid);
  EXPECT_EQ(pool.prewarm_count(), 1u);
  const auto got = pool.acquire_prewarm();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(pool.prewarm_count(), 0u);
  pool.assign_function(*got, 4);
  pool.release(*got, 1.0);
  EXPECT_EQ(pool.idle_count_of(4), 1u);
}

TEST(Pool, AcquirePrewarmEmptyReturnsNullopt) {
  ContainerPool pool(1024.0);
  EXPECT_FALSE(pool.acquire_prewarm().has_value());
}

TEST(Pool, ReleaseMakesWarmAvailableAgain) {
  ContainerPool pool(1024.0);
  make_idle(pool, 2, 1.0);
  const auto got = pool.acquire_warm(2);
  pool.release(*got, 2.0);
  EXPECT_TRUE(pool.acquire_warm(2).has_value());
}

TEST(Pool, EvictsLeastRecentlyUsedFirst) {
  ContainerPool pool(2.0 * kMb);
  const auto older = make_idle(pool, 1, 1.0);
  const auto newer = make_idle(pool, 2, 5.0);
  // Pool full; make room for one more container.
  const std::size_t evicted = pool.evict_idle_until_free(kMb);
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(pool.evictions(), 1u);
  // The older container (function 1) must be the victim.
  EXPECT_FALSE(pool.acquire_warm(1).has_value());
  EXPECT_TRUE(pool.acquire_warm(2).has_value());
  (void)older;
  (void)newer;
}

TEST(Pool, EvictionStopsWhenEnoughFree) {
  ContainerPool pool(4.0 * kMb);
  make_idle(pool, 1, 1.0);
  make_idle(pool, 2, 2.0);
  make_idle(pool, 3, 3.0);
  const std::size_t evicted = pool.evict_idle_until_free(2.0 * kMb);
  EXPECT_EQ(evicted, 1u) << "one eviction already frees 2 x 160 MB";
}

TEST(Pool, EvictionNeverTouchesBusyContainers) {
  ContainerPool pool(2.0 * kMb);
  make_idle(pool, 1, 1.0);
  const auto busy = pool.acquire_warm(1);
  ASSERT_TRUE(busy.has_value());
  const std::size_t evicted = pool.evict_idle_until_free(2.0 * kMb);
  EXPECT_EQ(evicted, 0u);
  EXPECT_EQ(pool.busy_count(), 1u);
}

TEST(Pool, MemoryReclaimableCountsIdle) {
  ContainerPool pool(3.0 * kMb);
  make_idle(pool, 1, 1.0);
  const auto cid = pool.begin_creation(kMb);
  pool.finish_creation_busy(*cid, 2);
  EXPECT_DOUBLE_EQ(pool.memory_free_mb(), kMb);
  EXPECT_DOUBLE_EQ(pool.memory_reclaimable_mb(), 2.0 * kMb)
      << "free + the idle container";
}

TEST(Pool, DestroyIdleContainer) {
  ContainerPool pool(1024.0);
  const auto cid = make_idle(pool, 1, 1.0);
  pool.destroy(cid);
  EXPECT_EQ(pool.total_containers(), 0u);
  EXPECT_EQ(pool.idle_count_of(1), 0u);
  EXPECT_DOUBLE_EQ(pool.memory_used_mb(), 0.0);
}

TEST(Pool, StateCountersConsistent) {
  ContainerPool pool(10.0 * kMb);
  make_idle(pool, 1, 1.0);
  make_idle(pool, 1, 2.0);
  const auto busy = pool.acquire_warm(1);
  const auto creating = pool.begin_creation(kMb);
  const auto pre = pool.begin_creation(kMb);
  pool.finish_creation_prewarm(*pre);
  EXPECT_EQ(pool.idle_count(), 1u);
  EXPECT_EQ(pool.busy_count(), 1u);
  EXPECT_EQ(pool.creating_count(), 1u);
  EXPECT_EQ(pool.prewarm_count(), 1u);
  EXPECT_EQ(pool.total_containers(), 4u);
  (void)busy;
  (void)creating;
}

TEST(PoolDeath, DestroyBusyAborts) {
  ContainerPool pool(1024.0);
  make_idle(pool, 1, 1.0);
  const auto busy = pool.acquire_warm(1);
  EXPECT_DEATH(pool.destroy(*busy), "busy");
}

TEST(PoolDeath, ReleaseNonBusyAborts) {
  ContainerPool pool(1024.0);
  const auto cid = make_idle(pool, 1, 1.0);
  EXPECT_DEATH(pool.release(cid, 2.0), "not busy");
}

TEST(PoolDeath, UnknownIdAborts) {
  ContainerPool pool(1024.0);
  EXPECT_DEATH(pool.info(42), "unknown container");
}

TEST(PoolDeath, FinishCreationTwiceAborts) {
  ContainerPool pool(1024.0);
  const auto cid = pool.begin_creation(kMb);
  pool.finish_creation_busy(*cid, 1);
  EXPECT_DEATH(pool.finish_creation_busy(*cid, 1), "non-creating");
}

TEST(Pool, LruOrderSurvivesPrewarmAssignAndRelease) {
  // A prewarm-origin container enters the LRU order at its *release* time,
  // not its creation or assign_function time: releasing it last must make
  // it the most-recently-used and the old warm container the victim.
  ContainerPool pool(2.0 * kMb);
  const auto old_warm = make_idle(pool, 7, 1.0);
  const auto pre = pool.begin_creation(kMb);
  ASSERT_TRUE(pre.has_value());
  pool.finish_creation_prewarm(*pre);
  const auto got = pool.acquire_prewarm();
  ASSERT_TRUE(got.has_value());
  pool.assign_function(*got, 7);
  pool.release(*got, 5.0);
  EXPECT_EQ(pool.idle_count_of(7), 2u);
  // MRU-first acquire returns the newly released prewarm-origin container.
  EXPECT_EQ(pool.acquire_warm(7), got);
  pool.release(*got, 6.0);
  // Under pressure the stale original is evicted, not the fresh one.
  EXPECT_EQ(pool.evict_idle_until_free(kMb), 1u);
  EXPECT_EQ(pool.acquire_warm(7), got);
  (void)old_warm;
}

TEST(Pool, CancelCreationKeepsAccountingExactUnderPressure) {
  ContainerPool pool(2.0 * kMb);
  const auto a = pool.begin_creation(kMb);
  const auto b = pool.begin_creation(kMb);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(pool.begin_creation(kMb).has_value()) << "pool full";
  EXPECT_EQ(pool.creations(), 2u);
  pool.cancel_creation(*a);
  EXPECT_DOUBLE_EQ(pool.memory_used_mb(), kMb);
  EXPECT_EQ(pool.creating_count(), 1u);
  EXPECT_EQ(pool.total_containers(), 1u);
  // The freed reservation is immediately reusable, and the cancelled id is
  // gone for good.
  EXPECT_TRUE(pool.begin_creation(kMb).has_value());
  EXPECT_DEATH(pool.cancel_creation(*a), "unknown container");
  // creations() counts begin_creation calls; cancellation does not rewind
  // it (it is a lifetime counter, not a live gauge).
  EXPECT_EQ(pool.creations(), 3u);
}

TEST(PoolDeath, CancelCreationRejectsNonCreatingStates) {
  ContainerPool pool(4.0 * kMb);
  const auto idle = make_idle(pool, 1, 1.0);
  EXPECT_DEATH(pool.cancel_creation(idle), "non-creating");
  const auto pre = pool.begin_creation(kMb);
  pool.finish_creation_prewarm(*pre);
  EXPECT_DEATH(pool.cancel_creation(*pre), "non-creating");
}

TEST(Pool, EvictionRefusesBusyAndCreatingContainers) {
  ContainerPool pool(3.0 * kMb);
  make_idle(pool, 1, 1.0);
  const auto busy = pool.acquire_warm(1);
  ASSERT_TRUE(busy.has_value());
  const auto creating = pool.begin_creation(kMb);
  ASSERT_TRUE(creating.has_value());
  make_idle(pool, 2, 2.0);
  // Pool holds one busy, one creating, one idle. Asking for 2 slots can
  // only reclaim the idle one; busy/creating are never victims no matter
  // how much is requested.
  EXPECT_EQ(pool.evict_idle_until_free(2.0 * kMb), 1u);
  EXPECT_EQ(pool.busy_count(), 1u);
  EXPECT_EQ(pool.creating_count(), 1u);
  EXPECT_DOUBLE_EQ(pool.memory_free_mb(), kMb);
  // Prewarm containers are likewise not eviction candidates.
  const auto pre = pool.begin_creation(kMb);
  pool.finish_creation_prewarm(*pre);
  EXPECT_EQ(pool.evict_idle_until_free(3.0 * kMb), 0u);
  EXPECT_EQ(pool.prewarm_count(), 1u);
}

// Property: arbitrary operation sequences keep memory accounting exact.
class PoolAccounting : public ::testing::TestWithParam<int> {};

TEST_P(PoolAccounting, MemoryMatchesLiveContainers) {
  ContainerPool pool(20.0 * kMb);
  unsigned state = static_cast<unsigned>(GetParam()) * 7919u + 3u;
  std::vector<ContainerId> busy;
  double t = 0.0;
  for (int step = 0; step < 300; ++step) {
    state = state * 1664525u + 1013904223u;
    t += 0.1;
    switch (state % 4) {
      case 0: {  // create-or-evict a container for a random function
        const auto fn = static_cast<workload::FunctionId>(state % 5);
        if (pool.memory_free_mb() < kMb) pool.evict_idle_until_free(kMb);
        if (auto cid = pool.begin_creation(kMb)) {
          pool.finish_creation_busy(*cid, fn);
          busy.push_back(*cid);
        }
        break;
      }
      case 1: {  // acquire warm
        const auto fn = static_cast<workload::FunctionId>(state % 5);
        if (auto cid = pool.acquire_warm(fn)) busy.push_back(*cid);
        break;
      }
      case 2:  // release one busy container
      case 3:
        if (!busy.empty()) {
          pool.release(busy.back(), t);
          busy.pop_back();
        }
        break;
    }
    ASSERT_NEAR(pool.memory_used_mb(),
                static_cast<double>(pool.total_containers()) * kMb, 1e-6);
    ASSERT_EQ(pool.busy_count(), busy.size());
    ASSERT_LE(pool.memory_used_mb(), pool.memory_limit_mb() + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolAccounting, ::testing::Range(0, 6));

}  // namespace
}  // namespace whisk::container
