#include "container/docker_daemon.h"

#include <gtest/gtest.h>

#include <vector>

namespace whisk::container {
namespace {

TEST(DockerDaemon, RunsSubmittedOp) {
  sim::Engine e;
  DockerDaemon d(e);
  double done_at = -1.0;
  d.submit(0.5, [&] { done_at = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(done_at, 0.5);
  EXPECT_EQ(d.ops_completed(), 1u);
}

TEST(DockerDaemon, OpsSerialize) {
  sim::Engine e;
  DockerDaemon d(e);
  std::vector<double> done;
  d.submit(1.0, [&] { done.push_back(e.now()); });
  d.submit(2.0, [&] { done.push_back(e.now()); });
  d.submit(0.5, [&] { done.push_back(e.now()); });
  e.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 3.0);
  EXPECT_DOUBLE_EQ(done[2], 3.5);
}

TEST(DockerDaemon, UrgentOpsJumpQueuedNormalOps) {
  sim::Engine e;
  DockerDaemon d(e);
  std::vector<int> order;
  d.submit(1.0, [&] { order.push_back(0); });           // in progress
  d.submit(1.0, [&] { order.push_back(1); });           // queued normal
  d.submit(1.0, [&] { order.push_back(2); }, true);     // urgent
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(DockerDaemon, UrgentDoesNotPreemptInProgressOp) {
  sim::Engine e;
  DockerDaemon d(e);
  std::vector<double> done;
  d.submit(2.0, [&] { done.push_back(e.now()); });
  e.schedule_at(0.5, [&] { d.submit(0.1, [&] { done.push_back(e.now()); },
                                    true); });
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 2.1);
}

TEST(DockerDaemon, UrgentOpsKeepFifoAmongThemselves) {
  sim::Engine e;
  DockerDaemon d(e);
  std::vector<int> order;
  d.submit(1.0, [&] { order.push_back(0); });
  d.submit(0.1, [&] { order.push_back(1); }, true);
  d.submit(0.1, [&] { order.push_back(2); }, true);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(DockerDaemon, LoadFactorStretchesOps) {
  sim::Engine e;
  DockerDaemon d(e);
  d.set_load_factor([] { return 3.0; });
  double done_at = -1.0;
  d.submit(1.0, [&] { done_at = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(done_at, 3.0);
}

TEST(DockerDaemon, LoadFactorBelowOneClamped) {
  sim::Engine e;
  DockerDaemon d(e);
  d.set_load_factor([] { return 0.25; });
  double done_at = -1.0;
  d.submit(1.0, [&] { done_at = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(done_at, 1.0) << "factor is never below 1";
}

TEST(DockerDaemon, LoadFactorEvaluatedAtOpStart) {
  sim::Engine e;
  DockerDaemon d(e);
  double factor = 1.0;
  d.set_load_factor([&] { return factor; });
  std::vector<double> done;
  d.submit(1.0, [&] { done.push_back(e.now()); });
  d.submit(1.0, [&] { done.push_back(e.now()); });
  // Raise the strain while the first op is running: only the second op
  // (which starts later) is affected.
  e.schedule_at(0.5, [&] { factor = 2.0; });
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 3.0);
}

TEST(DockerDaemon, OpsSubmittedFromCallbacksRun) {
  sim::Engine e;
  DockerDaemon d(e);
  std::vector<double> done;
  d.submit(1.0, [&] {
    done.push_back(e.now());
    d.submit(1.0, [&] { done.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[1], 2.0);
}

TEST(DockerDaemon, TelemetryCounters) {
  sim::Engine e;
  DockerDaemon d(e);
  d.submit(1.0, [] {});
  d.submit(2.0, [] {});
  d.submit(3.0, [] {});
  EXPECT_EQ(d.queue_length(), 2u);
  EXPECT_TRUE(d.busy());
  EXPECT_EQ(d.max_queue_length(), 2u);
  e.run();
  EXPECT_EQ(d.ops_completed(), 3u);
  EXPECT_FALSE(d.busy());
  EXPECT_DOUBLE_EQ(d.busy_seconds(), 6.0);
}

TEST(DockerDaemon, QueueWaitTracksTimeSpentBehindOtherOps) {
  sim::Engine e;
  DockerDaemon d(e);
  // Op A starts immediately (wait 0), B waits out A's 1 s, C waits A+B.
  d.submit(1.0, [] {});
  d.submit(2.0, [] {});
  d.submit(0.5, [] {});
  e.run();
  EXPECT_DOUBLE_EQ(d.queue_wait_seconds(), 0.0 + 1.0 + 3.0);
  EXPECT_DOUBLE_EQ(d.max_queue_wait_seconds(), 3.0);
}

TEST(DockerDaemon, QueueWaitCountsFromSubmissionTime) {
  sim::Engine e;
  DockerDaemon d(e);
  d.submit(2.0, [] {});
  // Submitted at t=1 while the first op runs until t=2: waits 1 s.
  e.schedule_at(1.0, [&d] { d.submit(1.0, [] {}); });
  e.run();
  EXPECT_DOUBLE_EQ(d.queue_wait_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(d.max_queue_wait_seconds(), 1.0);
}

TEST(DockerDaemon, IdleDaemonAccruesNoQueueWait) {
  sim::Engine e;
  DockerDaemon d(e);
  d.submit(1.0, [] {});
  e.run();
  d.submit(1.0, [] {});
  e.run();
  EXPECT_DOUBLE_EQ(d.queue_wait_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(d.max_queue_wait_seconds(), 0.0);
}

TEST(DockerDaemon, ZeroDurationOpCompletesInstantly) {
  sim::Engine e;
  DockerDaemon d(e);
  bool done = false;
  d.submit(0.0, [&] { done = true; });
  e.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(e.now(), 0.0);
}

TEST(DockerDaemonDeath, NegativeDurationAborts) {
  sim::Engine e;
  DockerDaemon d(e);
  EXPECT_DEATH(d.submit(-1.0, [] {}), "negative");
}

// Property: total busy time equals the sum of submitted durations when the
// load factor is 1, for arbitrary op mixes.
class DaemonBusyTime : public ::testing::TestWithParam<int> {};

TEST_P(DaemonBusyTime, BusySecondsEqualSumOfDurations) {
  sim::Engine e;
  DockerDaemon d(e);
  double total = 0.0;
  unsigned state = static_cast<unsigned>(GetParam()) + 99u;
  for (int i = 0; i < 50; ++i) {
    state = state * 1664525u + 1013904223u;
    const double dur = static_cast<double>(state % 100) / 100.0;
    d.submit(dur, [] {}, (state & 1) != 0);
    total += dur;
  }
  e.run();
  EXPECT_NEAR(d.busy_seconds(), total, 1e-9);
  EXPECT_EQ(d.ops_completed(), 50u);
}

INSTANTIATE_TEST_SUITE_P(Mixes, DaemonBusyTime, ::testing::Range(0, 4));

}  // namespace
}  // namespace whisk::container
