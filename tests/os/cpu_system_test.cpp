#include "os/cpu_system.h"

#include <gtest/gtest.h>

#include <vector>

namespace whisk::os {
namespace {

struct Harness {
  sim::Engine engine;
  std::vector<CpuSystem::TaskId> completed;
  std::vector<double> completion_times;

  CpuSystem make(ExecMode mode, int cores, double beta = 0.30) {
    return CpuSystem(engine, CpuParams{mode, cores, beta},
                     [this](CpuSystem::TaskId id) {
                       completed.push_back(id);
                       completion_times.push_back(engine.now());
                     });
  }
};

TEST(PinnedCore, SingleTaskRunsAtNominalSpeed) {
  Harness h;
  auto cpu = h.make(ExecMode::kPinnedCore, 4);
  cpu.start(2.0, 1.0);
  h.engine.run();
  ASSERT_EQ(h.completed.size(), 1u);
  EXPECT_NEAR(h.completion_times[0], 2.0, 1e-9);
}

TEST(PinnedCore, TasksDoNotInterfere) {
  Harness h;
  auto cpu = h.make(ExecMode::kPinnedCore, 4);
  cpu.start(1.0, 1.0);
  cpu.start(2.0, 1.0);
  cpu.start(3.0, 1.0);
  h.engine.run();
  ASSERT_EQ(h.completion_times.size(), 3u);
  EXPECT_NEAR(h.completion_times[0], 1.0, 1e-9);
  EXPECT_NEAR(h.completion_times[1], 2.0, 1e-9);
  EXPECT_NEAR(h.completion_times[2], 3.0, 1e-9);
}

TEST(PinnedCore, IoTaskRunsAtNominalSpeedToo) {
  Harness h;
  auto cpu = h.make(ExecMode::kPinnedCore, 1);
  cpu.start(1.5, 0.0);  // pure sleep
  h.engine.run();
  EXPECT_NEAR(h.completion_times.at(0), 1.5, 1e-9);
}

TEST(PinnedCoreDeath, OversubscriptionAborts) {
  Harness h;
  auto cpu = h.make(ExecMode::kPinnedCore, 2);
  cpu.start(1.0, 1.0);
  cpu.start(1.0, 1.0);
  EXPECT_DEATH(cpu.start(1.0, 1.0), "oversubscribed");
}

TEST(ProportionalShare, UncontendedRunsAtNominalSpeed) {
  Harness h;
  auto cpu = h.make(ExecMode::kProportionalShare, 4, 0.0);
  cpu.start(2.0, 1.0);
  cpu.start(2.0, 1.0);
  h.engine.run();
  // 2 CPU-bound tasks on 4 cores: no slowdown.
  for (double t : h.completion_times) EXPECT_NEAR(t, 2.0, 1e-9);
}

TEST(ProportionalShare, OverloadSlowsDownProportionally) {
  Harness h;
  auto cpu = h.make(ExecMode::kProportionalShare, 1, 0.0);
  cpu.start(1.0, 1.0);
  cpu.start(1.0, 1.0);
  h.engine.run();
  // Two equal CPU-bound tasks sharing one core: each takes 2 s.
  ASSERT_EQ(h.completion_times.size(), 2u);
  EXPECT_NEAR(h.completion_times[0], 2.0, 1e-9);
  EXPECT_NEAR(h.completion_times[1], 2.0, 1e-9);
}

TEST(ProportionalShare, ContextSwitchPenaltySlowsFurther) {
  Harness slow;
  auto cpu_slow = slow.make(ExecMode::kProportionalShare, 1, 1.0);
  cpu_slow.start(1.0, 1.0);
  cpu_slow.start(1.0, 1.0);
  slow.engine.run();
  // beta=1, two hungry tasks on one core: eta = 1/(1+1*(2-1)) = 0.5, so the
  // tasks finish at 4 s instead of 2 s.
  EXPECT_NEAR(slow.completion_times.back(), 4.0, 1e-9);
}

TEST(ProportionalShare, IoTasksUnaffectedByCpuContention) {
  Harness h;
  auto cpu = h.make(ExecMode::kProportionalShare, 1, 0.0);
  cpu.start(1.0, 0.0);  // sleep
  cpu.start(1.0, 1.0);
  cpu.start(1.0, 1.0);
  h.engine.run();
  // The sleep finishes at its nominal 1 s despite the CPU overload.
  ASSERT_EQ(h.completion_times.size(), 3u);
  EXPECT_NEAR(h.completion_times[0], 1.0, 1e-9);
}

TEST(ProportionalShare, PartialCpuFractionInterpolates) {
  Harness h;
  auto cpu = h.make(ExecMode::kProportionalShare, 1, 0.0);
  // One task with 50% CPU content, alone: no contention, nominal speed.
  cpu.start(2.0, 0.5);
  h.engine.run();
  EXPECT_NEAR(h.completion_times.at(0), 2.0, 1e-9);
}

TEST(ProportionalShare, WaterFillingFavorsNobodyWithEqualWeights) {
  Harness h;
  auto cpu = h.make(ExecMode::kProportionalShare, 2, 0.0);
  for (int i = 0; i < 4; ++i) cpu.start(1.0, 1.0);
  h.engine.run();
  // 4 equal tasks on 2 cores: all finish together at 2 s.
  for (double t : h.completion_times) EXPECT_NEAR(t, 2.0, 1e-9);
}

TEST(ProportionalShare, HigherWeightFinishesFirst) {
  Harness h;
  auto cpu = h.make(ExecMode::kProportionalShare, 1, 0.0);
  const auto heavy = cpu.start(1.0, 1.0, /*weight=*/3.0);
  const auto light = cpu.start(1.0, 1.0, /*weight=*/1.0);
  h.engine.run();
  ASSERT_EQ(h.completed.size(), 2u);
  EXPECT_EQ(h.completed[0], heavy);
  EXPECT_EQ(h.completed[1], light);
}

TEST(ProportionalShare, LateArrivalSlowsEarlierTask) {
  Harness h;
  auto cpu = h.make(ExecMode::kProportionalShare, 1, 0.0);
  cpu.start(2.0, 1.0);
  h.engine.schedule_at(1.0, [&] { cpu.start(2.0, 1.0); });
  h.engine.run();
  // Task A runs alone for 1 s (half done), then shares: finishes at 3 s.
  // Task B gets half speed for 2 s then full: finishes at 1+2+1 = 4 s.
  ASSERT_EQ(h.completion_times.size(), 2u);
  EXPECT_NEAR(h.completion_times[0], 3.0, 1e-6);
  EXPECT_NEAR(h.completion_times[1], 4.0, 1e-6);
}

TEST(CpuSystem, AbortRemovesTask) {
  Harness h;
  auto cpu = h.make(ExecMode::kPinnedCore, 2);
  const auto id = cpu.start(5.0, 1.0);
  EXPECT_TRUE(cpu.abort(id));
  EXPECT_FALSE(cpu.abort(id));
  h.engine.run();
  EXPECT_TRUE(h.completed.empty());
}

TEST(CpuSystem, RunningCountTracksTasks) {
  Harness h;
  auto cpu = h.make(ExecMode::kPinnedCore, 3);
  EXPECT_EQ(cpu.running(), 0u);
  cpu.start(1.0, 1.0);
  cpu.start(2.0, 1.0);
  EXPECT_EQ(cpu.running(), 2u);
  h.engine.run();
  EXPECT_EQ(cpu.running(), 0u);
}

TEST(CpuSystem, BusyCoreSecondsAccumulate) {
  Harness h;
  auto cpu = h.make(ExecMode::kPinnedCore, 2);
  cpu.start(2.0, 1.0);
  cpu.start(2.0, 0.5);
  h.engine.run();
  // 2 s at 1.0 core + 2 s at 0.5 core = 3 core-seconds.
  EXPECT_NEAR(cpu.busy_core_seconds(), 3.0, 1e-9);
}

TEST(CpuSystemDeath, RejectsBadArguments) {
  Harness h;
  auto cpu = h.make(ExecMode::kPinnedCore, 1);
  EXPECT_DEATH(cpu.start(0.0, 1.0), "service");
  EXPECT_DEATH(cpu.start(1.0, 2.0), "cpu_fraction");
  EXPECT_DEATH(cpu.start(1.0, 1.0, 0.0), "weight");
}

// Property: in proportional-share mode, total work is conserved — the sum
// of service times equals the busy core-seconds for CPU-bound tasks with no
// penalty.
class WorkConservation : public ::testing::TestWithParam<int> {};

TEST_P(WorkConservation, BusyCoreSecondsEqualTotalService) {
  Harness h;
  auto cpu = h.make(ExecMode::kProportionalShare, GetParam(), 0.0);
  double total = 0.0;
  unsigned state = 12345u + static_cast<unsigned>(GetParam());
  for (int i = 0; i < 20; ++i) {
    state = state * 1664525u + 1013904223u;
    const double service = 0.5 + static_cast<double>(state % 100) / 50.0;
    cpu.start(service, 1.0);
    total += service;
  }
  h.engine.run();
  EXPECT_NEAR(cpu.busy_core_seconds(), total, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Cores, WorkConservation,
                         ::testing::Values(1, 2, 5, 16));

}  // namespace
}  // namespace whisk::os
