// The workflow axis through the experiments layer:
//   * campaign output (cells CSV + JSONL) is invariant under the thread
//     count even when cells spawn workflow stages and inject faults,
//   * wf_* columns carry real values exactly in workflow cells and zeros
//     everywhere else,
//   * the serial runner fills the workflow aggregates,
//   * the DAG-aware critical-path policy beats fifo on end-to-end p99 for
//     a contended diamond — the structure-exploitation acceptance pin.
#include "experiments/campaign.h"

#include <gtest/gtest.h>

#include "experiments/runner.h"
#include "util/thread_pool.h"

namespace whisk::experiments {
namespace {

class WorkflowCampaignTest : public ::testing::Test {
 protected:
  // 2 schedulers x (none + 2 shapes) x (none + crash) x 2 seeds = 24 cells.
  static CampaignSpec wf_grid() {
    return CampaignSpec::parse(
        "schedulers=baseline/fifo,ours/sept; "
        "scenarios=fixed-total?total=60; "
        "workflows=none,chain?stages=3,fanout?width=4&join=2; "
        "faults=none,crash-restart?mtbf-s=40&mttr-s=5; "
        "seeds=0..1; cores=5");
  }

  workload::FunctionCatalog cat_ = workload::sebs_catalog();
};

TEST_F(WorkflowCampaignTest, OutputIsInvariantUnderThreadCount) {
  const auto spec = wf_grid();
  auto run_at = [&](int threads) {
    CampaignOptions opts;
    opts.threads = threads;
    const auto result = run_campaign(spec, cat_, opts);
    return cells_csv(result) + "\n---\n" + cells_jsonl(result);
  };
  const std::string at1 = run_at(1);
  ASSERT_FALSE(at1.empty());
  EXPECT_EQ(at1, run_at(2));
  const int hw = util::ThreadPool::hardware_threads();
  if (hw > 2) {
    EXPECT_EQ(at1, run_at(hw));
  }
}

TEST_F(WorkflowCampaignTest, WfColumnsAreRealInWorkflowCellsZeroElsewhere) {
  const auto spec = wf_grid();
  const auto result = run_campaign(spec, cat_, {});
  ASSERT_EQ(result.cells.size(), spec.size());
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const auto cell = spec.cell(i);
    const auto& res = result.cells[i];
    if (cell.spec.workflow().enabled()) {
      EXPECT_GT(res.workflows, 0u) << "cell " << i;
      EXPECT_GT(res.wf_e2e_p99, 0.0) << "cell " << i;
      EXPECT_GT(res.wf_critical_path_s, 0.0) << "cell " << i;
      EXPECT_GE(res.wf_slack_s, 0.0) << "cell " << i;
    } else {
      EXPECT_EQ(res.workflows, 0u) << "cell " << i;
      EXPECT_EQ(res.wf_e2e_p99, 0.0) << "cell " << i;
      EXPECT_EQ(res.wf_critical_path_s, 0.0) << "cell " << i;
      EXPECT_EQ(res.wf_slack_s, 0.0) << "cell " << i;
    }
  }
}

TEST_F(WorkflowCampaignTest, SerialRunnerFillsWorkflowAggregates) {
  const auto spec = ExperimentSpec()
                        .scheduler("ours/sept")
                        .cores(5)
                        .scenario("fixed-total?total=60")
                        .workflow("chain?stages=3");
  const auto run = run_experiment(spec, cat_);
  EXPECT_EQ(run.records.size(), 180u);  // 60 roots x 3 stages
  EXPECT_EQ(run.workflows, 60u);
  EXPECT_GT(run.wf_e2e_p99, 0.0);
  EXPECT_GT(run.wf_critical_path_s, 0.0);
  EXPECT_GE(run.wf_slack_s, 0.0);
}

// A diamond fans 8 asymmetric branches into one join on a 4-core node, so
// queue order decides which branch straggles. The critical-path policy
// runs long-chain work first (LPT at the workflow level) and must beat
// queue-order fifo on end-to-end p99 — on every paper seed, not on
// average, so the win is not a seed artifact.
TEST_F(WorkflowCampaignTest, CriticalPathPolicyBeatsFifoOnDiamondE2e) {
  auto p99_at = [&](const char* scheduler, std::uint64_t seed) {
    const auto spec = ExperimentSpec()
                          .scheduler(scheduler)
                          .cores(4)
                          .scenario("fixed-total?total=400")
                          .workflow("diamond?width=8")
                          .seed(seed);
    const auto run = run_experiment(spec, cat_);
    EXPECT_EQ(run.workflows, 400u);
    return run.wf_e2e_p99;
  };
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    EXPECT_LT(p99_at("ours/critical-path", seed), p99_at("ours/fifo", seed))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace whisk::experiments
