// End-to-end reproduction tests: assert the *shapes* of the paper's
// results (who wins, rough factors, crossovers) rather than absolute
// numbers. These are the contract of the whole library; see EXPERIMENTS.md
// for the full measured-vs-paper record.
//
// To keep test time low the shapes are checked with 2 seeds; the bench
// binaries run the full 5-seed versions. The sweeps run through
// run_campaign on 2 worker threads — the same numbers as the serial path
// (campaign determinism contract), plus free coverage of the pool.
#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "experiments/campaign.h"
#include "experiments/paper_data.h"
#include "experiments/runner.h"
#include "util/stats.h"

namespace whisk::experiments {
namespace {

class Reproduction : public ::testing::Test {
 protected:
  static constexpr int kReps = 2;

  static CampaignSpec grid(std::vector<SchedulerSpec> schedulers,
                           const std::string& scenario, int cores,
                           std::vector<int> nodes = {1}) {
    CampaignSpec g;
    g.schedulers = std::move(schedulers);
    g.scenarios = {workload::ScenarioSpec::parse(scenario)};
    g.cores = {cores};
    g.nodes = std::move(nodes);
    g.seeds = {0, 1};  // kReps
    return g;
  }

  CampaignResult run(const CampaignSpec& g, bool records = false) {
    CampaignOptions opts;
    opts.threads = 2;
    opts.retain_records = records;
    return run_campaign(g, cat_, opts);
  }

  util::Summary responses(int cores, int intensity,
                          const SchedulerSpec& sched) {
    const auto result = run(
        grid({sched}, "uniform?intensity=" + std::to_string(intensity),
             cores));
    return util::summarize(pooled_responses(result.group(0)));
  }

  static SchedulerSpec ours(std::string_view policy) {
    return SchedulerSpec{"ours", std::string(policy)};
  }
  static SchedulerSpec baseline() { return SchedulerSpec{"baseline"}; }

  workload::FunctionCatalog cat_ = workload::sebs_catalog();
};

TEST_F(Reproduction, Table1_IdleMediansTrackPaper) {
  for (const auto& spec : cat_.specs()) {
    const auto rs = run_idle_function_benchmark(cat_, spec.id, 50, 7);
    const double median_ms = util::percentile(rs, 50.0) * 1000.0;
    // Within 20% + 5 ms of the paper's client-side median.
    EXPECT_NEAR(median_ms, spec.median_ms, 0.2 * spec.median_ms + 5.0)
        << spec.name;
  }
}

TEST_F(Reproduction, Fig2a_BaselineColdStartsScaleWithIntensityNotMemory) {
  auto colds = [&](int intensity, double memory_mb) {
    const auto cfg = ExperimentSpec()
                         .cores(10)
                         .intensity(intensity)
                         .memory_mb(memory_mb)
                         .scheduler(baseline());
    const auto run = run_experiment(cfg, cat_);
    return run.stats.cold_starts;
  };
  const auto at32 = colds(120, 32.0 * 1024.0);
  const auto at128 = colds(120, 128.0 * 1024.0);
  // Paper: >1100 of 1320 requests cold at intensity 120, with almost no
  // dependency on memory.
  EXPECT_GT(at32, 800u);
  EXPECT_GT(at128, 800u);
  const double rel = std::abs(static_cast<double>(at32) -
                              static_cast<double>(at128)) /
                     static_cast<double>(at32);
  EXPECT_LT(rel, 0.35) << "memory size barely matters for the baseline";
  // Intensity matters a lot.
  EXPECT_GT(colds(120, 32.0 * 1024.0), colds(60, 32.0 * 1024.0));
}

TEST_F(Reproduction, Fig2b_OurColdStartsVanishWithMemory) {
  auto colds = [&](double memory_mb) {
    const auto cfg = ExperimentSpec()
                         .cores(10)
                         .intensity(120)
                         .memory_mb(memory_mb)
                         .scheduler(ours("fifo"));
    const auto run = run_experiment(cfg, cat_);
    return run.stats.cold_starts;
  };
  const auto tiny = colds(2.0 * 1024.0);
  const auto small = colds(8.0 * 1024.0);
  const auto ample = colds(32.0 * 1024.0);
  const auto huge = colds(128.0 * 1024.0);
  EXPECT_GT(tiny, 100u) << "2 GiB thrashes";
  EXPECT_GT(tiny, small) << "cold starts fall as memory grows";
  EXPECT_LT(ample, 20u) << "32 GiB: warm-up set never evicted";
  EXPECT_EQ(huge, ample) << "beyond 32 GiB nothing changes";
}

TEST_F(Reproduction, Table2_CompletionRatioCrossesOneWithCores) {
  auto ratio = [&](int cores, int intensity) {
    const auto result = run(
        grid({ours("fifo"), baseline()},
             "uniform?intensity=" + std::to_string(intensity), cores));
    const auto fifo = result.group(0);
    const auto base = result.group(1);
    double sum = 0.0;
    for (std::size_t i = 0; i < fifo.size(); ++i) {
      sum += fifo[i].max_completion / base[i].max_completion;
    }
    return sum / static_cast<double>(fifo.size());
  };
  // Paper Table II: FIFO slower than baseline at 5 cores / intensity 30
  // (1.14-1.20), much faster at 20 cores (0.55-0.78).
  EXPECT_GT(ratio(5, 30), 1.0);
  EXPECT_LT(ratio(20, 30), 0.85);
  EXPECT_LT(ratio(20, 120), 0.75);
}

TEST_F(Reproduction, Fig3_SeptAndFcBeatFifoSeveralFold) {
  // Paper Sec. VII-A: average relative response-time improvement of SEPT
  // over FIFO is 3.59 and of FC is 4.10. Require at least 2x at the
  // intermediate configuration.
  const auto fifo = responses(10, 60, ours("fifo"));
  const auto sept = responses(10, 60, ours("sept"));
  const auto fc = responses(10, 60, ours("fc"));
  EXPECT_GT(fifo.mean / sept.mean, 2.0);
  EXPECT_GT(fifo.mean / fc.mean, 2.0);
  // Medians collapse even harder (paper: 95.9x at intensity 60).
  EXPECT_GT(fifo.p50 / sept.p50, 10.0);
}

TEST_F(Reproduction, Fig3_EectAndRectSitBetweenFifoAndSept) {
  const auto fifo = responses(10, 60, ours("fifo"));
  const auto eect = responses(10, 60, ours("eect"));
  const auto rect = responses(10, 60, ours("rect"));
  const auto sept = responses(10, 60, ours("sept"));
  EXPECT_LT(eect.mean, fifo.mean);
  EXPECT_LT(rect.mean, fifo.mean);
  EXPECT_GT(eect.mean, sept.mean);
  EXPECT_GT(rect.mean, sept.mean);
}

TEST_F(Reproduction, Fig3_BaselineBeatsOurFifoAtLowScaleOnly) {
  // The paper's improvement factor at 10 cores/intensity 30 is 0.41 (the
  // baseline is better); at 20 cores the baseline loses (factor 1.79-1.98).
  const auto base_low = responses(10, 30, baseline());
  const auto fifo_low = responses(10, 30, ours("fifo"));
  EXPECT_LT(base_low.mean, fifo_low.mean);

  const auto base_high = responses(20, 40, baseline());
  const auto fifo_high = responses(20, 40, ours("fifo"));
  EXPECT_GT(base_high.mean / fifo_high.mean, 1.2);
}

TEST_F(Reproduction, Fig3_FifoImprovementGrowsWithIntensity) {
  // Paper Sec. VII-B: with 20 CPUs the baseline-to-FIFO ratio stays ~1.8-2
  // across intensities; the absolute gap widens.
  const auto base40 = responses(20, 40, baseline());
  const auto fifo40 = responses(20, 40, ours("fifo"));
  const auto base120 = responses(20, 120, baseline());
  const auto fifo120 = responses(20, 120, ours("fifo"));
  EXPECT_GT(base40.mean, fifo40.mean);
  EXPECT_GT(base120.mean, fifo120.mean);
  EXPECT_GT(base120.mean - fifo120.mean, base40.mean - fifo40.mean);
}

TEST_F(Reproduction, Fig4_StretchImprovementIsLargerThanResponse) {
  // Paper: stretch improvements (14.9x SEPT, 18x FC vs FIFO) exceed the
  // response improvements because short calls dominate the stretch.
  auto stretch = [&](const SchedulerSpec& sched) {
    const auto result = run(grid({sched}, "uniform?intensity=60", 10));
    return util::summarize(pooled_stretches(result.group(0)));
  };
  const auto fifo = stretch(ours("fifo"));
  const auto sept = stretch(ours("sept"));
  EXPECT_GT(fifo.mean / sept.mean, 5.0);
}

TEST_F(Reproduction, Fig4_SeptKeepsShortCallsNearIdleLatency) {
  // Under SEPT the median response stays near ~1-3 s even under heavy
  // overload (paper: 1.07 s at 10 cores / intensity 60).
  const auto sept = responses(10, 60, ours("sept"));
  EXPECT_LT(sept.p50, 6.0);
}

TEST_F(Reproduction, Fig5_FcFairToRareLongFunction) {
  const auto dna = *cat_.find("dna-visualisation");
  auto dna_stretch = [&](std::string_view policy) {
    const auto result =
        run(grid({SchedulerSpec{"ours", std::string(policy)}},
                 "fairness?intensity=90&rare-function=dna-visualisation&"
                 "rare-calls=10",
                 10),
            /*records=*/true);
    std::vector<double> pool;
    for (const auto& cell : result.group(0)) {
      for (const auto& rec : cell.records) {
        if (rec.function == dna) {
          pool.push_back(rec.response() / cat_.reference_median(dna));
        }
      }
    }
    return util::summarize(pool);
  };
  const auto sept = dna_stretch("sept");
  const auto fc = dna_stretch("fc");
  // FC treats the rare long function much better than SEPT (paper: avg
  // stretch 5.3 -> 2.1, median 5.2 -> 1.6). Our reproduction preserves the
  // direction and a several-fold margin; the absolute median lands higher
  // than the paper's 1.6 (see EXPERIMENTS.md, Fig. 5 notes).
  EXPECT_LT(fc.mean, 0.8 * sept.mean);
  EXPECT_LT(fc.p50, 0.8 * sept.p50);
  EXPECT_LT(fc.p50, 15.0);
}

TEST_F(Reproduction, Fig6_FcOnThreeNodesBeatsBaselineOnFour) {
  // One campaign over both schedulers and every fleet size.
  const auto result = run(grid({baseline(), ours("fc")},
                               "fixed-total?total=2376", 18, {4, 3, 2}));
  auto multi = [&](std::size_t sched_i, std::size_t nodes_i) {
    return util::summarize(pooled_responses(
        result.group(result.spec.group_index(sched_i, 0, nodes_i))));
  };
  const auto base4 = multi(0, 0);
  const auto fc3 = multi(1, 1);
  // The paper's headline: every reported statistic improves.
  EXPECT_LT(fc3.mean, base4.mean);
  EXPECT_LT(fc3.p75, base4.p75);
  EXPECT_LT(fc3.p95, base4.p95);

  // And FC-2 remains in the baseline-4 ballpark on average while clearly
  // winning on p75 (paper: 58% / 93% reductions; our baseline-4 is less
  // melted than the paper's, so the average margin is thinner).
  const auto fc2 = multi(1, 2);
  EXPECT_LT(fc2.mean, base4.mean * 1.25);
  EXPECT_LT(fc2.p75, base4.p75);
}

TEST_F(Reproduction, MultiNode_BaselineScalesWithNodes) {
  const auto result = run(
      grid({baseline()}, "fixed-total?total=1320", 10, {1, 2, 4}));
  auto avg = [&](std::size_t nodes_i) {
    return util::summarize(pooled_responses(result.group(nodes_i))).mean;
  };
  // More machines always help the baseline (Table V).
  EXPECT_GT(avg(0), avg(1));
  EXPECT_GT(avg(1), avg(2));
}

}  // namespace
}  // namespace whisk::experiments
