#include "experiments/runner.h"

#include <gtest/gtest.h>

#include "experiments/paper_data.h"

namespace whisk::experiments {
namespace {

class RunnerTest : public ::testing::Test {
 protected:
  workload::FunctionCatalog cat_ = workload::sebs_catalog();
};

TEST_F(RunnerTest, SchedulerLabels) {
  EXPECT_EQ((SchedulerSpec{"baseline", "fifo"}).label(), "baseline");
  EXPECT_EQ((SchedulerSpec{"ours", "sept"}).label(), "SEPT");
  EXPECT_EQ(SchedulerSpec::parse("ours/sjf-aging").label(), "SJF-AGING");
}

TEST_F(RunnerTest, PaperSchedulersInFigureOrder) {
  const auto& all = paper_schedulers();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].label(), "baseline");
  EXPECT_EQ(all[1].label(), "FIFO");
  EXPECT_EQ(all[2].label(), "SEPT");
  EXPECT_EQ(all[3].label(), "EECT");
  EXPECT_EQ(all[4].label(), "RECT");
  EXPECT_EQ(all[5].label(), "FC");
}

TEST_F(RunnerTest, RunProducesOneRecordPerRequest) {
  const auto cfg = ExperimentSpec().cores(5).intensity(30);
  const auto run = run_experiment(cfg, cat_);
  EXPECT_EQ(run.records.size(), 165u);
  EXPECT_EQ(run.responses.size(), 165u);
  EXPECT_EQ(run.stretches.size(), 165u);
  EXPECT_GT(run.max_completion, 60.0);
}

TEST_F(RunnerTest, SameSeedIsReproducible) {
  const auto cfg = ExperimentSpec().cores(5).intensity(30).seed(3);
  const auto a = run_experiment(cfg, cat_);
  const auto b = run_experiment(cfg, cat_);
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.responses[i], b.responses[i]);
  }
}

TEST_F(RunnerTest, SchedulersShareTheCallSequencePerSeed) {
  auto cfg = ExperimentSpec().cores(5).intensity(30).seed(2);
  cfg.scheduler("ours/fifo");
  const auto fifo = run_experiment(cfg, cat_);
  cfg.scheduler("ours/sept");
  const auto sept = run_experiment(cfg, cat_);
  // Identical releases and functions per call id (the paper compares
  // schedulers on the same 5 sequences).
  ASSERT_EQ(fifo.records.size(), sept.records.size());
  for (std::size_t i = 0; i < fifo.records.size(); ++i) {
    const auto& a = fifo.records[i];
    // Records arrive in completion order; match by id.
    bool found = false;
    for (const auto& b : sept.records) {
      if (b.id == a.id) {
        EXPECT_EQ(b.function, a.function);
        EXPECT_DOUBLE_EQ(b.release, a.release);
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found);
  }
}

TEST_F(RunnerTest, RepetitionsUseDistinctSeeds) {
  const auto cfg = ExperimentSpec().cores(5).intensity(30);
  const auto reps = run_repetitions(cfg, cat_, 3);
  ASSERT_EQ(reps.size(), 3u);
  EXPECT_NE(reps[0].responses, reps[1].responses);
  EXPECT_NE(reps[1].responses, reps[2].responses);
}

TEST_F(RunnerTest, RepetitionsDeriveSeedsFromTheBaseSeed) {
  // The old implementation clobbered the caller's seed with 0..reps-1;
  // the contract is now spec.seed() + r.
  auto cfg = ExperimentSpec().cores(5).intensity(30).seed(3);
  const auto reps = run_repetitions(cfg, cat_, 2);
  ASSERT_EQ(reps.size(), 2u);
  cfg.seed(3);
  const auto at3 = run_experiment(cfg, cat_);
  cfg.seed(4);
  const auto at4 = run_experiment(cfg, cat_);
  EXPECT_EQ(reps[0].responses, at3.responses);
  EXPECT_EQ(reps[1].responses, at4.responses);
}

TEST_F(RunnerTest, NodeParamOverridesApply) {
  const auto cfg = ExperimentSpec()
                       .cores(7)
                       .memory_mb(1234.0)
                       .with_override("history_window", 5)
                       .with_override("fc_window", 30.0)
                       .with_override("context_switch_beta", 0.7)
                       .with_override("strain_per_container", 0.02)
                       .with_override("dispatch_daemon_gate", 9)
                       .with_override("our_post_factor_loaded", 0.1)
                       .with_override("sjf_aging_weight", 0.5);
  const auto p = cfg.node_params();
  EXPECT_EQ(p.cores, 7);
  EXPECT_DOUBLE_EQ(p.memory_limit_mb, 1234.0);
  EXPECT_EQ(p.history_window, 5u);
  EXPECT_DOUBLE_EQ(p.policy.fc_window, 30.0);
  EXPECT_DOUBLE_EQ(p.context_switch_beta, 0.7);
  EXPECT_DOUBLE_EQ(p.strain_per_container, 0.02);
  EXPECT_EQ(p.dispatch_daemon_gate, 9);
  EXPECT_DOUBLE_EQ(p.our_post_factor_loaded, 0.1);
  EXPECT_DOUBLE_EQ(p.policy.sjf_aging_weight, 0.5);
}

TEST_F(RunnerTest, DefaultsPreservedWithoutOverrides) {
  const auto p = ExperimentSpec().node_params();
  const node::NodeParams ref;
  EXPECT_EQ(p.history_window, ref.history_window);
  EXPECT_DOUBLE_EQ(p.policy.fc_window, ref.policy.fc_window);
  EXPECT_DOUBLE_EQ(p.context_switch_beta, ref.context_switch_beta);
  EXPECT_EQ(p.dispatch_daemon_gate, ref.dispatch_daemon_gate);
}

TEST_F(RunnerTest, OverridesAreCaseInsensitiveAndEnumerable) {
  const auto cfg = ExperimentSpec().with_override("History_Window", 4);
  EXPECT_EQ(cfg.overrides().count("history_window"), 1u);
  EXPECT_EQ(cfg.node_params().history_window, 4u);
  EXPECT_FALSE(ExperimentSpec::override_names().empty());
}

TEST_F(RunnerTest, OutOfRangeOverridesAreRejected) {
  // The old sentinel API treated negatives as "keep default"; the named map
  // refuses them outright instead of casting them into garbage.
  EXPECT_DEATH((void)ExperimentSpec().with_override("history_window", -1.0),
               "out of range.*whole number >= 1");
  EXPECT_DEATH((void)ExperimentSpec().with_override("history_window", 2.5),
               "out of range");
  EXPECT_DEATH((void)ExperimentSpec().with_override("fc_window", 0.0),
               "out of range.*value > 0");
  EXPECT_DEATH(
      (void)ExperimentSpec().with_override("strain_per_container", -0.1),
      "out of range.*value >= 0");
  // Boundary values the old guards allowed stay allowed.
  EXPECT_DOUBLE_EQ(ExperimentSpec()
                       .with_override("fc_window", 0.5)
                       .node_params()
                       .policy.fc_window,
                   0.5);
  EXPECT_DOUBLE_EQ(ExperimentSpec()
                       .with_override("context_switch_beta", 0.0)
                       .node_params()
                       .context_switch_beta,
                   0.0);
}

TEST_F(RunnerTest, UnknownOverrideDiesListingValidNames) {
  EXPECT_DEATH((void)ExperimentSpec().with_override("warp_factor", 9.0),
               "unknown experiment override \\\"warp_factor\\\".*"
               "history_window");
}

TEST_F(RunnerTest, FairnessScenarioHasRareFunction) {
  const auto cfg = ExperimentSpec().cores(5).intensity(30).scenario(
      "fairness?rare-function=dna-visualisation&rare-calls=4");
  const auto run = run_experiment(cfg, cat_);
  const auto dna = *cat_.find("dna-visualisation");
  int rare = 0;
  for (const auto& rec : run.records) {
    if (rec.function == dna) ++rare;
  }
  EXPECT_EQ(rare, 4);
}

TEST_F(RunnerTest, MultiNodeFixedTotal) {
  const auto cfg =
      ExperimentSpec().cores(5).nodes(2).scenario("fixed-total?total=110");
  const auto run = run_experiment(cfg, cat_);
  EXPECT_EQ(run.records.size(), 110u);
}

TEST_F(RunnerTest, RateDrivenScenariosRunEndToEnd) {
  // The new arrival processes work through the same runner surface as the
  // paper scenarios, with no code changes outside the spec string.
  for (const char* scenario :
       {"poisson?rate=8&mix=random", "bursty?rate-on=30&rate-off=2",
        "diurnal?rate=8&amplitude=0.5"}) {
    const auto cfg = ExperimentSpec().cores(5).seed(1).scenario(scenario);
    const auto run = run_experiment(cfg, cat_);
    EXPECT_GT(run.records.size(), 0u) << scenario;
    EXPECT_EQ(run.records.size(), run.responses.size()) << scenario;
  }
}

TEST_F(RunnerTest, ScenarioSpecSurvivesTheBuilderRoundTrip) {
  const auto cfg = ExperimentSpec().scenario("FIXED?total=110");
  EXPECT_EQ(cfg.scenario().to_string(), "fixed-total?total=110");
}

TEST_F(RunnerTest, IntensityConflictsWithFixedTotalScenario) {
  // intensity() used to be silently ignored by the fixed-total scenario;
  // now the contradiction is fatal and names both knobs.
  const auto cfg =
      ExperimentSpec().intensity(60).scenario("fixed-total?total=110");
  EXPECT_DEATH((void)run_experiment(cfg, cat_),
               "intensity\\(60\\) conflicts with scenario "
               "\"fixed-total\".*total");
  // Order of the builder calls does not matter.
  const auto cfg2 =
      ExperimentSpec().scenario("fixed-total?total=110").intensity(60);
  EXPECT_DEATH((void)run_experiment(cfg2, cat_), "conflicts with scenario");
}

TEST_F(RunnerTest, IntensitySetTwiceIsRejected) {
  const auto cfg =
      ExperimentSpec().intensity(60).scenario("uniform?intensity=90");
  EXPECT_DEATH((void)run_experiment(cfg, cat_),
               "intensity is set twice.*intensity\\(60\\).*intensity=90");
}

TEST_F(RunnerTest, IdleBenchmarkHasRequestedCalls) {
  const auto rs = run_idle_function_benchmark(
      cat_, *cat_.find("graph-bfs"), 20, 1);
  EXPECT_EQ(rs.size(), 20u);
  for (double r : rs) {
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 0.1) << "idle graph-bfs responds in tens of milliseconds";
  }
}

TEST(PaperData, TablesAreComplete) {
  EXPECT_EQ(paper::table3().size(), 90u);  // 3 cores x 5 intensities x 6
  EXPECT_EQ(paper::table2().size(), 15u);  // 3 cores x 5 intensities
  EXPECT_EQ(paper::table5().size(), 16u);  // 2 series x 4 fleets x 2
}

TEST(PaperData, LookupsWork) {
  const auto row = paper::find_single_node(10, 60, "SEPT");
  ASSERT_TRUE(row.has_value());
  EXPECT_DOUBLE_EQ(row->r_avg, 25.14);
  EXPECT_FALSE(paper::find_single_node(10, 60, "LIFO").has_value());
  EXPECT_FALSE(paper::find_single_node(15, 60, "SEPT").has_value());

  const auto ratio = paper::find_completion_ratio(20, 120);
  ASSERT_TRUE(ratio.has_value());
  EXPECT_DOUBLE_EQ(ratio->ratio_lo, 0.55);

  const auto multi = paper::find_multi_node(3, 18, "FC");
  ASSERT_TRUE(multi.has_value());
  EXPECT_DOUBLE_EQ(multi->r_avg, 68.62);
}

TEST(PaperData, BaselineDegradesWithIntensityInPaper) {
  // Internal consistency of the transcription: the paper's baseline average
  // response grows monotonically with intensity at every core count.
  for (int cores : {5, 10, 20}) {
    double prev = 0.0;
    for (int v : {30, 40, 60, 90, 120}) {
      const auto row = paper::find_single_node(cores, v, "baseline");
      ASSERT_TRUE(row.has_value());
      EXPECT_GT(row->r_avg, prev);
      prev = row->r_avg;
    }
  }
}

}  // namespace
}  // namespace whisk::experiments
