#include "experiments/runner.h"

#include <gtest/gtest.h>

#include "experiments/paper_data.h"

namespace whisk::experiments {
namespace {

class RunnerTest : public ::testing::Test {
 protected:
  workload::FunctionCatalog cat_ = workload::sebs_catalog();
};

TEST_F(RunnerTest, SchedulerLabels) {
  EXPECT_EQ(
      (Scheduler{cluster::Approach::kBaseline, core::PolicyKind::kFifo})
          .label(),
      "baseline");
  EXPECT_EQ(
      (Scheduler{cluster::Approach::kOurs, core::PolicyKind::kSept}).label(),
      "SEPT");
}

TEST_F(RunnerTest, PaperSchedulersInFigureOrder) {
  const auto& all = paper_schedulers();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].label(), "baseline");
  EXPECT_EQ(all[1].label(), "FIFO");
  EXPECT_EQ(all[2].label(), "SEPT");
  EXPECT_EQ(all[3].label(), "EECT");
  EXPECT_EQ(all[4].label(), "RECT");
  EXPECT_EQ(all[5].label(), "FC");
}

TEST_F(RunnerTest, RunProducesOneRecordPerRequest) {
  ExperimentConfig cfg;
  cfg.cores = 5;
  cfg.intensity = 30;
  const auto run = run_experiment(cfg, cat_);
  EXPECT_EQ(run.records.size(), 165u);
  EXPECT_EQ(run.responses.size(), 165u);
  EXPECT_EQ(run.stretches.size(), 165u);
  EXPECT_GT(run.max_completion, 60.0);
}

TEST_F(RunnerTest, SameSeedIsReproducible) {
  ExperimentConfig cfg;
  cfg.cores = 5;
  cfg.intensity = 30;
  cfg.seed = 3;
  const auto a = run_experiment(cfg, cat_);
  const auto b = run_experiment(cfg, cat_);
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.responses[i], b.responses[i]);
  }
}

TEST_F(RunnerTest, SchedulersShareTheCallSequencePerSeed) {
  ExperimentConfig cfg;
  cfg.cores = 5;
  cfg.intensity = 30;
  cfg.seed = 2;
  cfg.scheduler = {cluster::Approach::kOurs, core::PolicyKind::kFifo};
  const auto fifo = run_experiment(cfg, cat_);
  cfg.scheduler = {cluster::Approach::kOurs, core::PolicyKind::kSept};
  const auto sept = run_experiment(cfg, cat_);
  // Identical releases and functions per call id (the paper compares
  // schedulers on the same 5 sequences).
  ASSERT_EQ(fifo.records.size(), sept.records.size());
  for (std::size_t i = 0; i < fifo.records.size(); ++i) {
    const auto& a = fifo.records[i];
    // Records arrive in completion order; match by id.
    bool found = false;
    for (const auto& b : sept.records) {
      if (b.id == a.id) {
        EXPECT_EQ(b.function, a.function);
        EXPECT_DOUBLE_EQ(b.release, a.release);
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found);
  }
}

TEST_F(RunnerTest, RepetitionsUseDistinctSeeds) {
  ExperimentConfig cfg;
  cfg.cores = 5;
  cfg.intensity = 30;
  const auto reps = run_repetitions(cfg, cat_, 3);
  ASSERT_EQ(reps.size(), 3u);
  EXPECT_NE(reps[0].responses, reps[1].responses);
  EXPECT_NE(reps[1].responses, reps[2].responses);
}

TEST_F(RunnerTest, PooledVectorsConcatenate) {
  ExperimentConfig cfg;
  cfg.cores = 5;
  cfg.intensity = 30;
  const auto reps = run_repetitions(cfg, cat_, 2);
  EXPECT_EQ(pooled_responses(reps).size(), 330u);
  EXPECT_EQ(pooled_stretches(reps).size(), 330u);
}

TEST_F(RunnerTest, NodeParamOverridesApply) {
  ExperimentConfig cfg;
  cfg.cores = 7;
  cfg.memory_mb = 1234.0;
  cfg.history_window = 5;
  cfg.fc_window_s = 30.0;
  cfg.context_switch_beta = 0.7;
  cfg.strain_per_container = 0.02;
  cfg.dispatch_daemon_gate = 9;
  cfg.our_post_factor_loaded = 0.1;
  const auto p = make_node_params(cfg);
  EXPECT_EQ(p.cores, 7);
  EXPECT_DOUBLE_EQ(p.memory_limit_mb, 1234.0);
  EXPECT_EQ(p.history_window, 5u);
  EXPECT_DOUBLE_EQ(p.policy.fc_window, 30.0);
  EXPECT_DOUBLE_EQ(p.context_switch_beta, 0.7);
  EXPECT_DOUBLE_EQ(p.strain_per_container, 0.02);
  EXPECT_EQ(p.dispatch_daemon_gate, 9);
  EXPECT_DOUBLE_EQ(p.our_post_factor_loaded, 0.1);
}

TEST_F(RunnerTest, DefaultsPreservedWithoutOverrides) {
  ExperimentConfig cfg;
  const auto p = make_node_params(cfg);
  const node::NodeParams ref;
  EXPECT_EQ(p.history_window, ref.history_window);
  EXPECT_DOUBLE_EQ(p.policy.fc_window, ref.policy.fc_window);
  EXPECT_DOUBLE_EQ(p.context_switch_beta, ref.context_switch_beta);
  EXPECT_EQ(p.dispatch_daemon_gate, ref.dispatch_daemon_gate);
}

TEST_F(RunnerTest, FairnessScenarioHasRareFunction) {
  ExperimentConfig cfg;
  cfg.cores = 5;
  cfg.intensity = 30;
  cfg.scenario = ScenarioKind::kFairness;
  cfg.fairness_rare_calls = 4;
  const auto run = run_experiment(cfg, cat_);
  const auto dna = *cat_.find("dna-visualisation");
  int rare = 0;
  for (const auto& rec : run.records) {
    if (rec.function == dna) ++rare;
  }
  EXPECT_EQ(rare, 4);
}

TEST_F(RunnerTest, MultiNodeFixedTotal) {
  ExperimentConfig cfg;
  cfg.cores = 5;
  cfg.num_nodes = 2;
  cfg.scenario = ScenarioKind::kFixedTotal;
  cfg.fixed_total_requests = 110;
  const auto run = run_experiment(cfg, cat_);
  EXPECT_EQ(run.records.size(), 110u);
}

TEST_F(RunnerTest, IdleBenchmarkHasRequestedCalls) {
  const auto rs = run_idle_function_benchmark(
      cat_, *cat_.find("graph-bfs"), 20, 1);
  EXPECT_EQ(rs.size(), 20u);
  for (double r : rs) {
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 0.1) << "idle graph-bfs responds in tens of milliseconds";
  }
}

TEST(PaperData, TablesAreComplete) {
  EXPECT_EQ(paper::table3().size(), 90u);  // 3 cores x 5 intensities x 6
  EXPECT_EQ(paper::table2().size(), 15u);  // 3 cores x 5 intensities
  EXPECT_EQ(paper::table5().size(), 16u);  // 2 series x 4 fleets x 2
}

TEST(PaperData, LookupsWork) {
  const auto row = paper::find_single_node(10, 60, "SEPT");
  ASSERT_TRUE(row.has_value());
  EXPECT_DOUBLE_EQ(row->r_avg, 25.14);
  EXPECT_FALSE(paper::find_single_node(10, 60, "LIFO").has_value());
  EXPECT_FALSE(paper::find_single_node(15, 60, "SEPT").has_value());

  const auto ratio = paper::find_completion_ratio(20, 120);
  ASSERT_TRUE(ratio.has_value());
  EXPECT_DOUBLE_EQ(ratio->ratio_lo, 0.55);

  const auto multi = paper::find_multi_node(3, 18, "FC");
  ASSERT_TRUE(multi.has_value());
  EXPECT_DOUBLE_EQ(multi->r_avg, 68.62);
}

TEST(PaperData, BaselineDegradesWithIntensityInPaper) {
  // Internal consistency of the transcription: the paper's baseline average
  // response grows monotonically with intensity at every core count.
  for (int cores : {5, 10, 20}) {
    double prev = 0.0;
    for (int v : {30, 40, 60, 90, 120}) {
      const auto row = paper::find_single_node(cores, v, "baseline");
      ASSERT_TRUE(row.has_value());
      EXPECT_GT(row->r_avg, prev);
      prev = row->r_avg;
    }
  }
}

}  // namespace
}  // namespace whisk::experiments
