// Property-style invariants that must hold for every scheduler, seed and
// load level: per-call timestamp ordering, request conservation, stats
// consistency, and cross-scheduler conservation laws (same call sequence,
// same service-time marginals).
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <tuple>

#include "experiments/runner.h"
#include "util/stats.h"

namespace whisk::experiments {
namespace {

class EndToEndInvariants
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {
 protected:
  workload::FunctionCatalog cat_ = workload::sebs_catalog();
};

TEST_P(EndToEndInvariants, HoldForEveryScheduler) {
  const auto [cores, intensity, seed] = GetParam();
  for (const auto& sched : paper_schedulers()) {
    const auto cfg = ExperimentSpec()
                         .cores(cores)
                         .intensity(intensity)
                         .seed(seed)
                         .scheduler(sched);
    const auto run = run_experiment(cfg, cat_);

    const std::size_t expected =
        static_cast<std::size_t>(1.1 * cores * intensity + 0.5);
    ASSERT_EQ(run.records.size(), expected) << sched.label();

    // Per-call timeline ordering and sanity.
    std::vector<bool> seen(expected, false);
    for (const auto& rec : run.records) {
      ASSERT_GE(rec.id, 0);
      ASSERT_LT(static_cast<std::size_t>(rec.id), expected);
      ASSERT_FALSE(seen[static_cast<std::size_t>(rec.id)])
          << "duplicate call id under " << sched.label();
      seen[static_cast<std::size_t>(rec.id)] = true;

      ASSERT_GE(rec.release, 0.0);
      ASSERT_LT(rec.release, 60.0) << "releases stay in the burst window";
      ASSERT_GT(rec.received, rec.release) << "network takes time";
      ASSERT_GE(rec.exec_start, rec.received);
      ASSERT_GT(rec.exec_end, rec.exec_start);
      ASSERT_GT(rec.completion, rec.exec_end);
      ASSERT_GT(rec.service, 0.0);
      // Execution never finishes faster than the sampled service time
      // (pinned mode runs at speed 1, processor sharing only slower).
      ASSERT_GE(rec.exec_end - rec.exec_start, rec.service - 1e-9);
      ASSERT_EQ(rec.node, 0);
    }

    // Stats agree with the records.
    ASSERT_EQ(run.stats.calls_received, expected);
    ASSERT_EQ(run.stats.calls_completed, expected);
    ASSERT_EQ(run.stats.warm_starts + run.stats.prewarm_starts +
                  run.stats.cold_starts,
              expected);

    // max completion dominates every response.
    for (const auto& rec : run.records) {
      ASSERT_LE(rec.completion, run.max_completion + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EndToEndInvariants,
    ::testing::Combine(::testing::Values(5, 10),      // cores
                       ::testing::Values(30, 60),     // intensity
                       ::testing::Values(0ull, 1ull)  // seed
                       ));

TEST(CrossScheduler, TotalServiceTimeIsScheduleIndependent) {
  // The same seed yields the same call sequence and the same service-time
  // draws are taken from per-node streams; while individual draws differ by
  // execution order, the per-function service *distributions* must agree
  // across schedulers (no policy can change what the workload demands).
  const auto cat = workload::sebs_catalog();
  auto cfg = ExperimentSpec().cores(5).intensity(30).seed(0);

  std::vector<double> totals;
  for (const auto& sched : paper_schedulers()) {
    cfg.scheduler(sched);
    const auto run = run_experiment(cfg, cat);
    double total = 0.0;
    for (const auto& rec : run.records) total += rec.service;
    totals.push_back(total);
  }
  // All schedulers process statistically identical work: within 15% of one
  // another.
  const double lo = *std::min_element(totals.begin(), totals.end());
  const double hi = *std::max_element(totals.begin(), totals.end());
  EXPECT_LT(hi / lo, 1.15);
}

TEST(CrossScheduler, StarvationFreePoliciesBoundTheTail) {
  // EECT and RECT prevent starvation (paper Sec. IV): no call's response
  // may exceed the drain horizon by orders of magnitude, and the last
  // *started* call must start before the overall max completion.
  const auto cat = workload::sebs_catalog();
  for (const std::string_view policy : {"eect", "rect", "sjf-aging"}) {
    const auto cfg =
        ExperimentSpec().cores(10).intensity(60).scheduler(
            SchedulerSpec{"ours", std::string(policy)});
    const auto run = run_experiment(cfg, cat);
    for (const auto& rec : run.records) {
      ASSERT_LE(rec.response(), run.max_completion);
    }
  }
}

TEST(CrossScheduler, SeptMayStarveLongCallsUntilDrainEnd) {
  // SEPT's known trade-off: the very last completions are the long calls.
  const auto cat = workload::sebs_catalog();
  const auto cfg =
      ExperimentSpec().cores(10).intensity(60).scheduler("ours/sept");
  const auto run = run_experiment(cfg, cat);
  const auto dna = *cat.find("dna-visualisation");
  // The call that completes last is a dna-visualisation call.
  const metrics::CallRecord* last = nullptr;
  for (const auto& rec : run.records) {
    if (!last || rec.completion > last->completion) last = &rec;
  }
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->function, dna);
}

TEST(Determinism, WholeGridIsSeedDeterministic) {
  const auto cat = workload::sebs_catalog();
  for (const auto& sched : paper_schedulers()) {
    const auto cfg =
        ExperimentSpec().cores(5).intensity(30).seed(11).scheduler(sched);
    const auto a = run_experiment(cfg, cat);
    const auto b = run_experiment(cfg, cat);
    ASSERT_EQ(a.max_completion, b.max_completion) << sched.label();
    ASSERT_EQ(a.stats.cold_starts, b.stats.cold_starts) << sched.label();
  }
}

}  // namespace
}  // namespace whisk::experiments
