// The CellWorkspace reuse contract (the campaign hot path): a workspace
// that has already run arbitrary other cells — warm engine slabs, recycled
// collector columns, a populated scenario cache — produces byte-identical
// records to a fresh construction of everything, for every subsystem at
// once (bounded autoscaled fleet, resilience policies, crash faults,
// workflow DAGs). The campaign-level corollary: per-worker workspaces keep
// cells_csv/cells_jsonl and the streamed record CSV/JSONL invariant under
// the thread count on the same chaos grid.
#include "experiments/workspace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "experiments/campaign.h"
#include "experiments/runner.h"
#include "metrics/csv.h"
#include "metrics/sink.h"
#include "util/thread_pool.h"

namespace whisk::experiments {
namespace {

class WorkspaceReuseTest : public ::testing::Test {
 protected:
  // Every subsystem on one grid: an autoscaled cost-metered fleet with a
  // resilience policy, with and without crash faults, with and without a
  // workflow DAG — 2x2x2x2 = 16 quick cells.
  static CampaignSpec chaos_grid() {
    return CampaignSpec::parse(
        "schedulers=ours/sept,baseline/fifo; "
        "scenarios=uniform?intensity=30; seeds=0..1; "
        "clusters=node:3?cost-per-hour=0.48&min-nodes=2&max-nodes=5"
        "|resilience=timeout-s=8&max-attempts=3&breaker-failures=3&"
        "max-queue=64; "
        "faults=none,crash-restart?mtbf-s=60&mttr-s=10; "
        "workflows=none,chain?stages=3");
  }

  // The plain paper-style grid, for shape changes between reuses.
  static CampaignSpec plain_grid() {
    return CampaignSpec::parse(
        "schedulers=baseline/fifo,ours/sept; "
        "scenarios=uniform?intensity=30,fixed-total?total=110; "
        "seeds=0..1; cores=5");
  }

  // Run every cell of `spec` through the shared long-lived workspace and
  // through the fresh-construction path, and require record-level equality.
  void expect_reuse_matches_fresh(CellWorkspace& ws,
                                  const CampaignSpec& spec) {
    for (std::size_t i = 0; i < spec.size(); ++i) {
      const auto cell = spec.cell(i);
      const auto reused = ws.run(cell.spec, cat_);
      // run_experiment constructs a single-use workspace: cold engine,
      // cold collector, scenario generated on first use.
      const auto fresh = run_experiment(cell.spec, cat_);
      EXPECT_EQ(metrics::to_csv(reused.records, cat_),
                metrics::to_csv(fresh.records, cat_))
          << "cell " << i << " of " << spec.size();
      EXPECT_EQ(reused.calls, fresh.calls);
      EXPECT_EQ(reused.responses, fresh.responses);
      EXPECT_EQ(reused.stretches, fresh.stretches);
      EXPECT_DOUBLE_EQ(reused.max_completion, fresh.max_completion);
      EXPECT_EQ(reused.stats.cold_starts, fresh.stats.cold_starts);
      EXPECT_EQ(reused.resubmissions, fresh.resubmissions);
      EXPECT_EQ(reused.faults_injected, fresh.faults_injected);
      EXPECT_EQ(reused.retries, fresh.retries);
      EXPECT_EQ(reused.shed_calls, fresh.shed_calls);
      EXPECT_EQ(reused.dropped_calls, fresh.dropped_calls);
      EXPECT_EQ(reused.workflows, fresh.workflows);
      EXPECT_DOUBLE_EQ(reused.wf_e2e_p99, fresh.wf_e2e_p99);
      EXPECT_DOUBLE_EQ(reused.cost_usd, fresh.cost_usd);
      EXPECT_EQ(reused.scale_ups, fresh.scale_ups);
      EXPECT_EQ(reused.slo_violations, fresh.slo_violations);
    }
  }

  workload::FunctionCatalog cat_ = workload::sebs_catalog();
};

TEST_F(WorkspaceReuseTest, ReusedWorkspaceMatchesFreshConstruction) {
  CellWorkspace ws;  // outlives every cell below
  // Chaos cells first (faults, workflows, autoscaler churn the engine and
  // collector hardest), then a different grid shape through the same warm
  // workspace, then the chaos grid again — the second pass runs entirely
  // on scenario-cache hits and well-used slabs.
  expect_reuse_matches_fresh(ws, chaos_grid());
  expect_reuse_matches_fresh(ws, plain_grid());
  expect_reuse_matches_fresh(ws, chaos_grid());
}

TEST_F(WorkspaceReuseTest, RecordFreeRunStillCountsCalls) {
  const auto spec = chaos_grid();
  CellWorkspace ws;
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const auto cell = spec.cell(i);
    const auto lean = ws.run(cell.spec, cat_, /*want_records=*/false);
    const auto fresh = run_experiment(cell.spec, cat_);
    EXPECT_TRUE(lean.records.empty()) << "cell " << i;
    EXPECT_EQ(lean.calls, fresh.calls) << "cell " << i;
    EXPECT_EQ(lean.responses, fresh.responses) << "cell " << i;
  }
}

TEST_F(WorkspaceReuseTest, ChaosCampaignOutputInvariantUnderThreadCount) {
  const auto spec = chaos_grid();
  auto run_at = [&](int threads) {
    CampaignOptions opts;
    opts.threads = threads;
    std::ostringstream csv, jsonl;
    metrics::MetricsPipeline pipeline;
    pipeline.emplace<metrics::CsvSink>(csv, cat_);
    pipeline.emplace<metrics::JsonlSink>(jsonl, cat_);
    opts.pipeline = &pipeline;
    const auto result = run_campaign(spec, cat_, opts);
    // Aggregated per-cell CSV/JSONL plus the streamed full-record
    // CSV/JSONL — every byte the sweep tool can produce.
    return cells_csv(result) + "\n---\n" + cells_jsonl(result) + "\n---\n" +
           csv.str() + "\n---\n" + jsonl.str();
  };
  const std::string at1 = run_at(1);
  ASSERT_FALSE(at1.empty());
  EXPECT_EQ(at1, run_at(2));
  const int hw = util::ThreadPool::hardware_threads();
  if (hw > 2) {
    EXPECT_EQ(at1, run_at(hw));
  }
}

}  // namespace
}  // namespace whisk::experiments
