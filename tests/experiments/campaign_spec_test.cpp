#include "experiments/campaign_spec.h"

#include <gtest/gtest.h>

namespace whisk::experiments {
namespace {

TEST(CampaignSpecTest, DefaultsArePaperShaped) {
  const CampaignSpec spec;
  EXPECT_EQ(spec.schedulers.size(), 1u);
  EXPECT_EQ(spec.scenarios.size(), 1u);
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(spec.size(), 5u);
  EXPECT_EQ(spec.group_count(), 1u);
}

TEST(CampaignSpecTest, ParseBuildsTheGrid) {
  const auto spec = CampaignSpec::parse(
      "schedulers=baseline/fifo,ours/sept; "
      "scenarios=uniform?intensity=30,fixed-total?total=110; "
      "seeds=0..2; nodes=1,2; cores=10; memory-mb=2048,32768");
  EXPECT_EQ(spec.schedulers.size(), 2u);
  EXPECT_EQ(spec.schedulers[1].policy, "sept");
  EXPECT_EQ(spec.scenarios.size(), 2u);
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(spec.nodes, (std::vector<int>{1, 2}));
  EXPECT_EQ(spec.memories_mb, (std::vector<double>{2048, 32768}));
  EXPECT_EQ(spec.size(), 2u * 2u * 3u * 2u * 2u);
}

TEST(CampaignSpecTest, ToStringRoundTrips) {
  const char* grids[] = {
      "schedulers=ours/sept; scenarios=uniform?intensity=60; seeds=0..4",
      "schedulers=baseline/fifo,ours/fc; scenarios=fixed-total?total=2376; "
      "seeds=0,1; nodes=4,3,2,1; cores=18",
      "schedulers=ours/sept; scenarios=uniform?intensity=60; seeds=0..1; "
      "override:history_window=1,3,10",
      "schedulers=ours/fifo; scenarios=uniform; seeds=7,3,9..11; "
      "memory-mb=2048.5",
  };
  for (const char* text : grids) {
    const auto spec = CampaignSpec::parse(text);
    EXPECT_EQ(CampaignSpec::parse(spec.to_string()), spec) << text;
    // to_string is canonical: a second round trip is a fixed point.
    EXPECT_EQ(CampaignSpec::parse(spec.to_string()).to_string(),
              spec.to_string())
        << text;
  }
}

TEST(CampaignSpecTest, ToStringCollapsesSeedRuns) {
  CampaignSpec spec;
  spec.seeds = {0, 1, 2, 3, 4};
  EXPECT_NE(spec.to_string().find("seeds=0..4"), std::string::npos);
  spec.seeds = {7, 3, 9, 10, 11};
  EXPECT_NE(spec.to_string().find("seeds=7,3,9..11"), std::string::npos);
}

TEST(CampaignSpecTest, NamesAreNormalized) {
  const auto spec = CampaignSpec::parse(
      "SCHEDULERS=OURS/SEPT; Scenarios=FIXED?total=10; seeds=0");
  EXPECT_EQ(spec.schedulers[0].to_string(), "ours/sept/round-robin");
  EXPECT_EQ(spec.scenarios[0].name, "fixed-total");
}

TEST(CampaignSpecTest, CellExpansionIsSeedInnermost) {
  const auto spec = CampaignSpec::parse(
      "schedulers=baseline/fifo,ours/sept; "
      "scenarios=uniform?intensity=30; seeds=0..1");
  ASSERT_EQ(spec.size(), 4u);
  // Cells 0,1: scheduler 0 seeds 0,1. Cells 2,3: scheduler 1 seeds 0,1.
  for (std::size_t i = 0; i < 4; ++i) {
    const auto cell = spec.cell(i);
    EXPECT_EQ(cell.index, i);
    EXPECT_EQ(cell.scheduler_i, i / 2);
    EXPECT_EQ(cell.seed_i, i % 2);
    EXPECT_EQ(cell.spec.seed(), i % 2);
    EXPECT_EQ(cell.spec.scheduler(),
              spec.schedulers[i / 2].normalized());
  }
}

TEST(CampaignSpecTest, CellsCarryOverrides) {
  const auto spec = CampaignSpec::parse(
      "schedulers=ours/sept; scenarios=uniform?intensity=60; seeds=0; "
      "override:history_window=1,50");
  ASSERT_EQ(spec.size(), 2u);
  EXPECT_EQ(spec.cell(0).spec.node_params().history_window, 1u);
  EXPECT_EQ(spec.cell(1).spec.node_params().history_window, 50u);
}

TEST(CampaignSpecTest, GroupIndexInvertsTheCellExpansion) {
  const auto spec = CampaignSpec::parse(
      "schedulers=baseline/fifo,ours/sept; "
      "scenarios=uniform?intensity=30,fixed-total?total=110; "
      "seeds=0..1; nodes=1,2; override:history_window=1,3");
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const auto cell = spec.cell(i);
    EXPECT_EQ(spec.group_index(cell.scheduler_i, cell.scenario_i,
                               cell.nodes_i, cell.cores_i, cell.memory_i,
                               cell.cluster_i, cell.autoscaler_i,
                               cell.faults_i, cell.workflow_i,
                               cell.override_i),
              i / spec.seeds_per_group())
        << "cell " << i;
  }
  EXPECT_DEATH((void)spec.group_index(2), "scheduler coordinate");
}

TEST(CampaignSpecTest, ClustersAxisExpandsCompactSpecs) {
  const auto spec = CampaignSpec::parse(
      "schedulers=ours/sept; scenarios=uniform?intensity=30; seeds=0..1; "
      "clusters=node:2,big:1?cores=16+small:2|events=drain@5:small/0+"
      "fail@9:small/1");
  ASSERT_EQ(spec.clusters.size(), 2u);
  EXPECT_TRUE(spec.cluster_mode());
  EXPECT_EQ(spec.size(), 4u);
  EXPECT_EQ(spec.clusters[0], cluster::ClusterSpec::homogeneous(2));
  EXPECT_EQ(spec.clusters[1].groups.size(), 2u);
  EXPECT_EQ(spec.clusters[1].events.size(), 2u);
  // Expansion: cluster varies faster than the seed-outer axes; cell 0/1
  // are cluster 0 seeds, cell 2/3 cluster 1 seeds.
  EXPECT_EQ(spec.cell(0).cluster_i, 0u);
  EXPECT_EQ(spec.cell(1).cluster_i, 0u);
  EXPECT_EQ(spec.cell(2).cluster_i, 1u);
  EXPECT_EQ(spec.cell(2).seed_i, 0u);
  // Round-trip through the canonical string.
  EXPECT_EQ(CampaignSpec::parse(spec.to_string()), spec);
  // Labels identify the swept deployment.
  EXPECT_NE(spec.label(spec.cell(2)).find("big:1"), std::string::npos);
}

TEST(CampaignSpecTest, DefaultGridHasNoClusterMode) {
  const auto spec = CampaignSpec::parse("schedulers=ours/sept; seeds=0");
  EXPECT_FALSE(spec.cluster_mode());
  EXPECT_EQ(spec.to_string().find("clusters="), std::string::npos)
      << "legacy grids round-trip without a clusters axis";
  EXPECT_FALSE(spec.cell(0).spec.has_explicit_cluster());
}

TEST(CampaignSpecTest, FirstSeedsArePaperSeeds) {
  EXPECT_EQ(CampaignSpec::first_seeds(5),
            (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_DEATH((void)CampaignSpec::first_seeds(0), "positive count");
}

TEST(CampaignSpecTest, LabelShowsOnlySweptAxes) {
  const auto spec = CampaignSpec::parse(
      "schedulers=baseline/fifo,ours/sept; "
      "scenarios=uniform?intensity=30; seeds=0..1; cores=10");
  const auto cell = spec.cell(3);
  EXPECT_EQ(spec.label(cell), "ours/sept/round-robin seed=1");
  EXPECT_EQ(spec.label(cell, /*with_seed=*/false),
            "ours/sept/round-robin");
}

TEST(CampaignSpecDeath, UnknownAxisListsTheValidOnes) {
  EXPECT_DEATH((void)CampaignSpec::parse("warp=9"),
               "unknown campaign axis \"warp\".*schedulers");
}

TEST(CampaignSpecDeath, DuplicateAxisIsRejected) {
  EXPECT_DEATH((void)CampaignSpec::parse("seeds=0; seeds=1"),
               "axis \"seeds\" twice");
  // The memory_mb alias is the same axis as memory-mb, not a second one.
  EXPECT_DEATH(
      (void)CampaignSpec::parse("memory-mb=2048; memory_mb=65536"),
      "axis \"memory-mb\" twice");
}

TEST(CampaignSpecDeath, BadItemsAreRejectedWithTheAxisName) {
  EXPECT_DEATH((void)CampaignSpec::parse("seeds=banana"),
               "\"seeds\".*not a whole number");
  EXPECT_DEATH((void)CampaignSpec::parse("seeds=4..1"), "runs backwards");
  EXPECT_DEATH((void)CampaignSpec::parse("cores=0"),
               "not a positive integer");
  EXPECT_DEATH((void)CampaignSpec::parse("memory-mb=-4"),
               "not a positive number");
  EXPECT_DEATH((void)CampaignSpec::parse("cores="), "has no items");
}

TEST(CampaignSpecDeath, UnknownSchedulerScenarioOrOverrideAborts) {
  EXPECT_DEATH((void)CampaignSpec::parse("schedulers=ours/warp-speed"),
               "");
  EXPECT_DEATH((void)CampaignSpec::parse("scenarios=starlight"), "");
  EXPECT_DEATH(
      (void)CampaignSpec::parse("override:warp_factor=1"),
      "unknown experiment override \"warp_factor\"");
  EXPECT_DEATH(
      (void)CampaignSpec::parse("override:history_window=0"),
      "out of range");
}

TEST(CampaignSpecDeath, EmptyAxesAreRejected) {
  CampaignSpec spec;
  spec.seeds.clear();
  EXPECT_DEATH((void)spec.normalized(), "no seeds");
  CampaignSpec spec2;
  spec2.schedulers.clear();
  EXPECT_DEATH((void)spec2.normalized(), "no schedulers");
}

}  // namespace
}  // namespace whisk::experiments
