// The campaign runner's contracts:
//   * each cell is byte-identical to the serial run_experiment at the same
//     ExperimentSpec (the paper-pin acceptance criterion),
//   * output is invariant under the thread count (1, 2, hardware),
//   * pipeline sinks see cells in index order regardless of schedule,
//   * group pooling reproduces the serial run_repetitions pooling.
#include "experiments/campaign.h"

#include <gtest/gtest.h>

#include <sstream>

#include "experiments/runner.h"
#include "metrics/csv.h"
#include "metrics/sink.h"
#include "util/thread_pool.h"

namespace whisk::experiments {
namespace {

class CampaignTest : public ::testing::Test {
 protected:
  // 2 schedulers x 2 scenarios x 2 seeds = 8 quick cells.
  static CampaignSpec small_grid() {
    return CampaignSpec::parse(
        "schedulers=baseline/fifo,ours/sept; "
        "scenarios=uniform?intensity=30,fixed-total?total=110; "
        "seeds=0..1; cores=5");
  }

  workload::FunctionCatalog cat_ = workload::sebs_catalog();
};

TEST_F(CampaignTest, CellsAreByteIdenticalToTheSerialRunner) {
  const auto spec = small_grid();
  CampaignOptions opts;
  opts.threads = 2;
  opts.retain_records = true;
  const auto result = run_campaign(spec, cat_, opts);
  ASSERT_EQ(result.cells.size(), spec.size());

  for (std::size_t i = 0; i < spec.size(); ++i) {
    const auto cell = spec.cell(i);
    const auto serial = run_experiment(cell.spec, cat_);
    // The full record CSV — every timestamp of every call — matches the
    // serial path byte for byte.
    EXPECT_EQ(metrics::to_csv(result.cells[i].records, cat_),
              metrics::to_csv(serial.records, cat_))
        << "cell " << i;
    EXPECT_EQ(result.cells[i].responses, serial.responses);
    EXPECT_EQ(result.cells[i].stretches, serial.stretches);
    EXPECT_DOUBLE_EQ(result.cells[i].max_completion, serial.max_completion);
    EXPECT_EQ(result.cells[i].stats.cold_starts, serial.stats.cold_starts);
  }
}

TEST_F(CampaignTest, OutputIsInvariantUnderThreadCount) {
  const auto spec = small_grid();
  auto run_at = [&](int threads) {
    CampaignOptions opts;
    opts.threads = threads;
    std::ostringstream records;
    metrics::MetricsPipeline pipeline;
    pipeline.emplace<metrics::CsvSink>(records, cat_);
    opts.pipeline = &pipeline;
    const auto result = run_campaign(spec, cat_, opts);
    // Aggregated per-cell CSV + the streamed full-record CSV.
    return cells_csv(result) + "\n---\n" + cells_jsonl(result) + "\n---\n" +
           records.str();
  };
  const std::string at1 = run_at(1);
  const std::string at2 = run_at(2);
  ASSERT_FALSE(at1.empty());
  EXPECT_EQ(at1, at2);
  const int hw = util::ThreadPool::hardware_threads();
  if (hw > 2) {
    EXPECT_EQ(at1, run_at(hw));
  }
  EXPECT_EQ(at1, run_at(0)) << "0 = auto thread count";
}

TEST_F(CampaignTest, PipelineSeesCellsInIndexOrder) {
  const auto spec = small_grid();
  CampaignOptions opts;
  opts.threads = 2;

  // A sink that records the cell field of every begin_run.
  struct OrderSink final : metrics::Sink {
    std::vector<std::string> cells;
    void begin_run(const metrics::RunContext& ctx) override {
      for (const auto& field : ctx.fields) {
        if (field.key == "cell") cells.push_back(field.value);
      }
    }
    void on_record(const metrics::CallRecord&) override {}
  };
  metrics::MetricsPipeline pipeline;
  auto* order = pipeline.emplace<OrderSink>();
  opts.pipeline = &pipeline;
  (void)run_campaign(spec, cat_, opts);

  ASSERT_EQ(order->cells.size(), spec.size());
  for (std::size_t i = 0; i < order->cells.size(); ++i) {
    EXPECT_EQ(order->cells[i], std::to_string(i));
  }
}

TEST_F(CampaignTest, GroupPoolingMatchesSerialRepetitions) {
  CampaignSpec spec;
  spec.schedulers = {SchedulerSpec::parse("ours/fifo")};
  spec.scenarios = {workload::ScenarioSpec::parse("uniform?intensity=30")};
  spec.cores = {5};
  spec.seeds = {0, 1, 2};
  const auto result = run_campaign(spec, cat_, {});
  ASSERT_EQ(result.group_count(), 1u);

  const auto serial = run_repetitions(
      ExperimentSpec().cores(5).intensity(30).scheduler("ours/fifo"), cat_,
      3);
  std::vector<double> serial_pool;
  for (const auto& r : serial) {
    serial_pool.insert(serial_pool.end(), r.responses.begin(),
                       r.responses.end());
  }
  EXPECT_EQ(pooled_responses(result.group(0)), serial_pool);
}

TEST_F(CampaignTest, GroupsAreContiguousAndSeedOrdered) {
  const auto spec = small_grid();
  const auto result = run_campaign(spec, cat_, {});
  ASSERT_EQ(result.group_count(), 4u);
  for (std::size_t g = 0; g < result.group_count(); ++g) {
    const auto cells = result.group(g);
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0].index, g * 2);
    EXPECT_EQ(cells[1].index, g * 2 + 1);
    const auto c0 = spec.cell(cells[0].index);
    const auto c1 = spec.cell(cells[1].index);
    EXPECT_EQ(c0.seed_i, 0u);
    EXPECT_EQ(c1.seed_i, 1u);
    EXPECT_EQ(c0.scheduler_i, c1.scheduler_i);
    EXPECT_EQ(c0.scenario_i, c1.scenario_i);
  }
  EXPECT_EQ(result.group_label(0),
            "baseline/fifo/round-robin uniform?intensity=30");
}

TEST_F(CampaignTest, StreamingSummariesMatchExactOnesWithinTheReservoir) {
  const auto spec = small_grid();
  CampaignOptions with_samples;
  const auto exact = run_campaign(spec, cat_, with_samples);
  CampaignOptions bounded;
  bounded.retain_samples = false;  // streaming only
  const auto streamed = run_campaign(spec, cat_, bounded);
  for (std::size_t i = 0; i < exact.cells.size(); ++i) {
    EXPECT_TRUE(streamed.cells[i].responses.empty());
    const auto e = exact.cells[i].response_summary();
    const auto s = streamed.cells[i].response_summary();
    // 165/110 calls per cell fit the 4096-entry reservoir: quantiles exact.
    EXPECT_EQ(s.count, e.count);
    EXPECT_DOUBLE_EQ(s.p50, e.p50);
    EXPECT_DOUBLE_EQ(s.p95, e.p95);
    EXPECT_NEAR(s.mean, e.mean, 1e-12);
  }
}

TEST_F(CampaignTest, ProgressReportsEveryCellOnce) {
  const auto spec = small_grid();
  CampaignOptions opts;
  opts.threads = 2;
  std::vector<std::size_t> done_values;
  opts.progress = [&](std::size_t done, std::size_t total) {
    EXPECT_EQ(total, spec.size());
    done_values.push_back(done);
  };
  (void)run_campaign(spec, cat_, opts);
  ASSERT_EQ(done_values.size(), spec.size());
  // Serialized under the campaign lock: monotone 1..N.
  for (std::size_t i = 0; i < done_values.size(); ++i) {
    EXPECT_EQ(done_values[i], i + 1);
  }
}

TEST_F(CampaignTest, CellsCsvQuotesSpecsWithCommas) {
  // Comma-bearing scenario values cannot ride a grid string but are legal
  // on the struct; the per-cell CSV must quote them, not shift columns.
  CampaignSpec spec;
  spec.scenarios = {workload::ScenarioSpec::parse(
      "poisson?rate=2&mix=weighted&weights=1,1,1,1,1,1,1,1,1,1,1")};
  spec.cores = {5};
  spec.seeds = {0};
  const auto result = run_campaign(spec, cat_, {});
  const std::string csv = cells_csv(result);
  EXPECT_NE(
      csv.find(
          "\"poisson?mix=weighted&rate=2&weights=1,1,1,1,1,1,1,1,1,1,1\","),
      std::string::npos)
      << csv;
}

TEST_F(CampaignTest, ClustersAxisRunsAndIsThreadInvariant) {
  // The acceptance-criterion grid: a clusters axis whose second entry
  // drains one node and fails another mid-burst. Output must be invariant
  // under the thread count and the re-submitted calls fully accounted.
  const auto spec = CampaignSpec::parse(
      "schedulers=ours/sept/weighted-least-loaded; "
      "scenarios=fixed-total?total=150&window=10; seeds=0..1; "
      "clusters=node:2,"
      "big:1?cores=16+small:2?cores=4|keep-alive=ttl?idle-s=120|"
      "events=drain@3:small/0+fail@6:small/1");
  ASSERT_EQ(spec.size(), 4u);
  ASSERT_TRUE(spec.cluster_mode());

  auto run_at = [&](int threads) {
    CampaignOptions opts;
    opts.threads = threads;
    opts.retain_records = true;
    std::ostringstream records;
    metrics::MetricsPipeline pipeline;
    pipeline.emplace<metrics::CsvSink>(records, cat_);
    opts.pipeline = &pipeline;
    const auto result = run_campaign(spec, cat_, opts);
    return std::make_pair(result,
                          cells_csv(result) + "\n---\n" +
                              cells_jsonl(result) + "\n---\n" + records.str());
  };
  const auto [result1, text1] = run_at(1);
  const auto [result2, text2] = run_at(2);
  EXPECT_EQ(text1, text2);

  // Cells of the churning cluster (group 1) complete every call and log
  // the failure's re-submissions.
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const auto cell = spec.cell(i);
    EXPECT_EQ(result1.cells[i].calls, 150u) << "cell " << i;
    if (cell.cluster_i == 1) {
      EXPECT_GT(result1.cells[i].resubmissions, 0u) << "cell " << i;
      ASSERT_EQ(result1.cells[i].groups.size(), 2u);
      EXPECT_EQ(result1.cells[i].groups[0].name, "big");
      EXPECT_EQ(result1.cells[i].groups[1].name, "small");
    } else {
      EXPECT_EQ(result1.cells[i].resubmissions, 0u);
    }
  }

  // The same cell through the serial runner agrees record for record, and
  // its collector accounts the re-submissions.
  const auto churn_cell = spec.cell(spec.group_index(0, 0, 0, 0, 0, 1) *
                                    spec.seeds_per_group());
  const auto serial = run_experiment(churn_cell.spec, cat_);
  EXPECT_EQ(serial.resubmissions, result1.cells[churn_cell.index].resubmissions);
  std::size_t retried = 0;
  for (const auto& rec : serial.records) {
    if (rec.attempts > 1) ++retried;
  }
  EXPECT_GT(retried, 0u);
  EXPECT_EQ(metrics::to_csv(serial.records, cat_),
            metrics::to_csv(result2.cells[churn_cell.index].records, cat_));
}

TEST_F(CampaignTest, ClustersAxisRoundTripsThroughToString) {
  const auto spec = CampaignSpec::parse(
      "schedulers=ours/sept; scenarios=uniform?intensity=30; seeds=0; "
      "clusters=node:4,big:2?cores=16+small:4|keep-alive=pool-target?floor=2");
  const auto reparsed = CampaignSpec::parse(spec.to_string());
  EXPECT_EQ(reparsed, spec);
  EXPECT_EQ(reparsed.clusters.size(), 2u);
  EXPECT_EQ(reparsed.clusters[1].keep_alive.name, "pool-target");
}

TEST_F(CampaignTest, ClusterCellsCarryTheSpecIntoExperimentSpecs) {
  const auto spec = CampaignSpec::parse(
      "schedulers=ours/fifo; scenarios=fixed-total?total=50; seeds=0; "
      "clusters=big:1?cores=2+small:1");
  ASSERT_EQ(spec.size(), 1u);
  const auto cell = spec.cell(0);
  EXPECT_TRUE(cell.spec.has_explicit_cluster());
  EXPECT_EQ(cell.spec.cluster().groups.size(), 2u);
  EXPECT_EQ(cell.spec.cluster().groups[0].name, "big");
}

TEST(CampaignSpecClusterDeath, ClustersAndNodesAxesConflict) {
  EXPECT_DEATH((void)CampaignSpec::parse(
                   "schedulers=ours/fifo; nodes=2; clusters=node:3"),
               "clusters axis and a nodes axis");
  // An explicit clusters axis conflicts even when its value happens to
  // equal the default one-node deployment — it must never be silently
  // dropped in favor of nodes=.
  EXPECT_DEATH((void)CampaignSpec::parse(
                   "schedulers=ours/fifo; clusters=node:1; nodes=4"),
               "clusters axis and a nodes axis");
}

TEST_F(CampaignTest, AutoscalerAxisRunsAndIsThreadInvariant) {
  // The PR acceptance grid: an autoscaler axis crossed with a deployment
  // that also drains and fails nodes mid-burst. Output must be invariant
  // under the thread count, and the new economics columns must be real.
  const auto spec = CampaignSpec::parse(
      "schedulers=ours/sept/weighted-least-loaded; "
      "scenarios=fixed-total?total=150&window=10; seeds=0..1; "
      // min-nodes=3 keeps the controller's scale-downs off the three seed
      // members the scripted events target (the events abort if their node
      // was already drained).
      "clusters=node:3?cost-per-hour=1&min-nodes=3&max-nodes=6|slo=p99<5|"
      "events=drain@3:node/2+fail@6:node/1; "
      "autoscalers=none,target-util?high=0.6&tick-s=1&cooldown-s=1");
  ASSERT_EQ(spec.size(), 4u);
  ASSERT_TRUE(spec.autoscaler_mode());

  auto run_at = [&](int threads) {
    CampaignOptions opts;
    opts.threads = threads;
    std::ostringstream records;
    metrics::MetricsPipeline pipeline;
    pipeline.emplace<metrics::CsvSink>(records, cat_);
    opts.pipeline = &pipeline;
    const auto result = run_campaign(spec, cat_, opts);
    return std::make_pair(result,
                          cells_csv(result) + "\n---\n" +
                              cells_jsonl(result) + "\n---\n" + records.str());
  };
  const auto [result1, text1] = run_at(1);
  const auto [result2, text2] = run_at(2);
  EXPECT_EQ(text1, text2);
  const int hw = util::ThreadPool::hardware_threads();
  if (hw > 2) {
    EXPECT_EQ(text1, run_at(hw).second);
  }

  // Every cell completes the burst, meters the fleet and counts SLO
  // violations; only the autoscaled cells scale.
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const auto cell = spec.cell(i);
    const auto& res = result1.cells[i];
    EXPECT_EQ(res.calls, 150u) << "cell " << i;
    EXPECT_GT(res.cost_usd, 0.0) << "cell " << i;
    EXPECT_GT(res.node_hours, 0.0) << "cell " << i;
    std::size_t above = 0;
    for (double r : res.responses) {
      if (r > 5.0) ++above;
    }
    EXPECT_EQ(res.slo_violations, above) << "cell " << i;
    if (cell.autoscaler_i == 1) {
      EXPECT_GT(res.scale_ups, 0u) << "cell " << i;
    } else {
      EXPECT_EQ(res.scale_ups, 0u) << "cell " << i;
      EXPECT_EQ(res.scale_downs, 0u) << "cell " << i;
    }
  }

  // The new columns ride in the header and the autoscaler spec in the rows.
  const std::string csv = cells_csv(result1);
  EXPECT_NE(csv.find(",autoscaler,"), std::string::npos);
  EXPECT_NE(csv.find("cost_usd,node_hours,slo_violations,scale_ups,"
                     "scale_downs"),
            std::string::npos);
  EXPECT_NE(csv.find("target-util?cooldown-s=1&high=0.6&tick-s=1"),
            std::string::npos);
}

TEST_F(CampaignTest, AutoscalerAxisRoundTripsThroughToString) {
  const auto spec = CampaignSpec::parse(
      "schedulers=ours/sept; scenarios=uniform?intensity=30; seeds=0; "
      "clusters=node:2?max-nodes=4; "
      "autoscalers=none,queue-depth?high=6,predictive");
  const auto reparsed = CampaignSpec::parse(spec.to_string());
  EXPECT_EQ(reparsed, spec);
  ASSERT_EQ(reparsed.autoscalers.size(), 3u);
  EXPECT_FALSE(reparsed.autoscalers[0].enabled());
  EXPECT_EQ(reparsed.autoscalers[1].name, "queue-depth");
  EXPECT_EQ(spec.size(), 3u);
  // The axis shows up in multi-valued labels.
  EXPECT_NE(spec.label(spec.cell(2)).find("autoscaler=predictive"),
            std::string::npos);
}

TEST(CampaignSpecAutoscalerDeath, AxisConflictsWithClusterSection) {
  EXPECT_DEATH(
      (void)CampaignSpec::parse(
          "schedulers=ours/fifo; "
          "clusters=node:2|autoscaler=target-util; "
          "autoscalers=queue-depth"),
      "set it in one place");
}

TEST_F(CampaignTest, AutoscalerFreeGridsKeepTheLegacyColumnsStable) {
  // A grid with no autoscaler anywhere reports autoscaler=none and zeroed
  // scaling columns — and its cells run the exact pre-autoscaler code path
  // (no in-flight tracking, no controller history).
  CampaignSpec spec;
  spec.scenarios = {workload::ScenarioSpec::parse("fixed-total?total=50")};
  spec.cores = {5};
  spec.seeds = {0};
  const auto result = run_campaign(spec, cat_, {});
  EXPECT_FALSE(spec.autoscaler_mode());
  const auto& res = result.cells[0];
  EXPECT_EQ(res.scale_ups, 0u);
  EXPECT_EQ(res.scale_downs, 0u);
  EXPECT_EQ(res.slo_violations, 0u) << "no slo= section: nothing to violate";
  EXPECT_GT(res.node_hours, 0.0) << "metering covers static fleets too";
  EXPECT_EQ(res.cost_usd, 0.0) << "default cost-per-hour is 0";
  const std::string csv = cells_csv(result);
  EXPECT_NE(csv.find(",none,"), std::string::npos);
}

// The ISSUE's chaos determinism pin: a grid with every registered fault
// process active (plus the full resilience layer) must produce
// byte-identical per-cell output for any thread count — fault draws ride
// on per-cell forked streams, never on shared state.
TEST_F(CampaignTest, ChaosCellsAreInvariantUnderThreadCount) {
  const auto spec = CampaignSpec::parse(
      "schedulers=ours/sept,baseline/fifo; "
      "scenarios=uniform?intensity=30; seeds=0..1; "
      "clusters=node:4|resilience=timeout-s=8&max-attempts=4&retry-budget=1&"
      "hedge-p=0.95&breaker-failures=3&max-queue=64; "
      "faults=none,"
      "crash-restart?mtbf-s=60&mttr-s=10+flap?period-s=40&down-s=4+"
      "slow-node?mtbf-s=40&factor=3+lost-completion?probability=0.05");
  ASSERT_TRUE(spec.fault_mode());
  ASSERT_EQ(spec.size(), 8u);

  auto run_at = [&](int threads) {
    CampaignOptions opts;
    opts.threads = threads;
    std::ostringstream records;
    metrics::MetricsPipeline pipeline;
    pipeline.emplace<metrics::JsonlSink>(records, cat_);
    opts.pipeline = &pipeline;
    const auto result = run_campaign(spec, cat_, opts);
    return cells_csv(result) + "\n---\n" + cells_jsonl(result) + "\n---\n" +
           records.str();
  };
  const std::string at1 = run_at(1);
  ASSERT_FALSE(at1.empty());
  EXPECT_EQ(at1, run_at(4));
  EXPECT_EQ(at1, run_at(0)) << "0 = auto thread count";

  // The faulted cells actually differ from the fault-free baseline — the
  // invariance above is not comparing two inert runs.
  CampaignOptions opts;
  const auto result = run_campaign(spec, cat_, opts);
  std::size_t faulted_injections = 0;
  for (const auto& cell : result.cells) {
    const auto coords = spec.coordinates(cell.index);
    if (coords.faults_i == 1) {
      faulted_injections += cell.faults_injected;
    } else {
      EXPECT_EQ(cell.faults_injected, 0u);
      EXPECT_EQ(cell.unavailability_s, 0.0);
    }
  }
  EXPECT_GT(faulted_injections, 0u);
}

TEST_F(CampaignTest, PooledHelpersNeedRetainedSamples) {
  CampaignSpec spec;
  spec.scenarios = {workload::ScenarioSpec::parse("uniform?intensity=30")};
  spec.cores = {5};
  spec.seeds = {0};
  CampaignOptions opts;
  opts.retain_samples = false;
  const auto result = run_campaign(spec, cat_, opts);
  EXPECT_DEATH((void)pooled_responses(result.group(0)), "retain_samples");
}

}  // namespace
}  // namespace whisk::experiments
