// CampaignSpec::shard / ShardRange: the deterministic, group-aligned
// partition the distributed campaign driver is built on. The contracts
// pinned here: shards are exhaustive, disjoint, contiguous and balanced to
// within one group for any shard count; sharding composes (subshard of the
// whole == shard); selectors round-trip; and a sharded run_campaign
// produces exactly the matching byte slice of the unsharded run, with
// global cell indices, group indices and seeds.
#include "experiments/campaign_spec.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "experiments/campaign.h"

namespace whisk::experiments {
namespace {

// A grid with `groups` groups (1, 2, 5 or 12) and 3 seeds per group.
CampaignSpec grid_with_groups(std::size_t groups) {
  std::string scenarios;
  std::size_t per_sched = groups;
  std::string schedulers = "schedulers=baseline/fifo";
  if (groups % 2 == 0) {
    schedulers += ",ours/sept";
    per_sched = groups / 2;
  }
  for (std::size_t i = 0; i < per_sched; ++i) {
    if (i > 0) scenarios += ',';
    // Multiples of 10 only: the scenario generator splits intensity
    // evenly across the catalog functions.
    scenarios += "uniform?intensity=" + std::to_string(10 + 10 * i);
  }
  const CampaignSpec spec = CampaignSpec::parse(
      schedulers + "; scenarios=" + scenarios + "; seeds=0..2; cores=5");
  EXPECT_EQ(spec.group_count(), groups);
  return spec;
}

TEST(CampaignShardTest, PartitionIsExhaustiveDisjointAlignedAndBalanced) {
  for (const std::size_t groups : {1UL, 2UL, 5UL, 12UL}) {
    const CampaignSpec spec = grid_with_groups(groups);
    for (const std::size_t n : {1UL, 2UL, 3UL, 7UL}) {
      std::size_t next_group = 0;
      std::size_t next_cell = 0;
      std::size_t min_size = spec.group_count();
      std::size_t max_size = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const ShardRange shard = spec.shard(i, n);
        EXPECT_EQ(shard.index, i);
        EXPECT_EQ(shard.count, n);
        EXPECT_EQ(shard.seeds_per_group, spec.seeds_per_group());
        // Contiguous and disjoint: each shard starts where the previous
        // one ended, in both group and cell space.
        EXPECT_EQ(shard.begin_group, next_group) << groups << " g, " << n
                                                 << " shards, shard " << i;
        EXPECT_LE(shard.begin_group, shard.end_group);
        EXPECT_EQ(shard.begin_cell(), next_cell);
        EXPECT_EQ(shard.cells(), shard.groups() * spec.seeds_per_group());
        next_group = shard.end_group;
        next_cell = shard.end_cell();
        min_size = std::min(min_size, shard.groups());
        max_size = std::max(max_size, shard.groups());
      }
      // Exhaustive: the last shard ends exactly at the grid boundary.
      EXPECT_EQ(next_group, spec.group_count());
      EXPECT_EQ(next_cell, spec.size());
      // Balanced to within one group.
      EXPECT_LE(max_size - min_size, 1UL) << groups << " groups over " << n;
    }
  }
}

TEST(CampaignShardTest, ShardsBeyondTheGroupCountAreEmpty) {
  const CampaignSpec spec = grid_with_groups(2);
  std::size_t non_empty = 0;
  for (std::size_t i = 0; i < 7; ++i) {
    const ShardRange shard = spec.shard(i, 7);
    if (!shard.empty()) ++non_empty;
    EXPECT_EQ(shard.cells(), shard.empty() ? 0UL : spec.seeds_per_group());
  }
  EXPECT_EQ(non_empty, 2UL);
}

TEST(CampaignShardTest, SubshardOfTheWholeGridEqualsShard) {
  for (const std::size_t groups : {1UL, 5UL, 12UL}) {
    const CampaignSpec spec = grid_with_groups(groups);
    const ShardRange whole = spec.shard(0, 1);
    for (const std::size_t m : {1UL, 2UL, 3UL, 7UL}) {
      for (std::size_t j = 0; j < m; ++j) {
        EXPECT_EQ(whole.subshard(j, m).begin_group,
                  spec.shard(j, m).begin_group);
        EXPECT_EQ(whole.subshard(j, m).end_group, spec.shard(j, m).end_group);
      }
    }
  }
}

TEST(CampaignShardTest, SubshardsTileTheirParent) {
  const CampaignSpec spec = grid_with_groups(12);
  for (std::size_t i = 0; i < 3; ++i) {
    const ShardRange parent = spec.shard(i, 3);
    std::size_t next = parent.begin_group;
    for (std::size_t j = 0; j < 2; ++j) {
      const ShardRange sub = parent.subshard(j, 2);
      EXPECT_EQ(sub.begin_group, next);
      EXPECT_EQ(sub.seeds_per_group, parent.seeds_per_group);
      next = sub.end_group;
    }
    EXPECT_EQ(next, parent.end_group);
  }
}

TEST(CampaignShardTest, SelectorRoundTrips) {
  const CampaignSpec spec = grid_with_groups(5);
  const ShardRange shard = spec.shard(2, 3);
  EXPECT_EQ(shard.selector(), "2/3");
  const auto [i, n] = ShardRange::parse_selector(shard.selector());
  EXPECT_EQ(i, 2UL);
  EXPECT_EQ(n, 3UL);
  EXPECT_EQ(spec.shard(i, n), shard);
  const auto [i2, n2] = ShardRange::parse_selector(" 0 / 12 ");
  EXPECT_EQ(i2, 0UL);
  EXPECT_EQ(n2, 12UL);
}

TEST(CampaignShardDeathTest, RejectsMalformedSelectorsAndRanges) {
  EXPECT_DEATH((void)ShardRange::parse_selector("3"), "i/n");
  EXPECT_DEATH((void)ShardRange::parse_selector("x/3"), "whole number");
  EXPECT_DEATH((void)ShardRange::parse_selector("1/0"), "zero shard count");
  EXPECT_DEATH((void)ShardRange::parse_selector("3/3"), "index");
  const CampaignSpec spec = grid_with_groups(2);
  EXPECT_DEATH((void)spec.shard(2, 2), "index");
  EXPECT_DEATH((void)spec.shard(0, 0), "positive");
  EXPECT_DEATH((void)spec.shard(0, 1).subshard(2, 2), "index");
}

TEST(CampaignShardTest, ShardedRunsAreByteSlicesOfTheFullRun) {
  const CampaignSpec spec = grid_with_groups(5);
  const workload::FunctionCatalog cat = workload::sebs_catalog();

  CampaignOptions opts;
  opts.threads = 1;
  const CampaignResult full = run_campaign(spec, cat, opts);
  const std::string full_csv = cells_csv(full);
  const std::string full_jsonl = cells_jsonl(full);
  const std::size_t header_end = full_csv.find('\n') + 1;

  std::string merged_csv = full_csv.substr(0, header_end);
  std::string merged_jsonl;
  for (std::size_t i = 0; i < 3; ++i) {
    CampaignOptions sopts;
    sopts.threads = 1;
    sopts.shard = spec.shard(i, 3);
    const CampaignResult part = run_campaign(spec, cat, sopts);

    // Global cell indices and seeds, local slots.
    ASSERT_EQ(part.cells.size(), sopts.shard->cells());
    for (std::size_t k = 0; k < part.cells.size(); ++k) {
      EXPECT_EQ(part.cells[k].index, sopts.shard->begin_cell() + k);
    }
    // Group accessors answer in global terms.
    for (std::size_t g = 0; g < part.group_count(); ++g) {
      EXPECT_EQ(part.group_label(g),
                full.group_label(sopts.shard->begin_group + g));
    }

    const std::string part_csv = cells_csv(part);
    EXPECT_EQ(part_csv.substr(0, header_end),
              full_csv.substr(0, header_end));
    merged_csv += part_csv.substr(header_end);
    merged_jsonl += cells_jsonl(part);
  }
  EXPECT_EQ(merged_csv, full_csv);
  EXPECT_EQ(merged_jsonl, full_jsonl);
}

TEST(CampaignShardDeathTest, RunRejectsForeignShards) {
  const CampaignSpec big = grid_with_groups(12);
  const CampaignSpec small = grid_with_groups(1);
  const workload::FunctionCatalog cat = workload::sebs_catalog();
  CampaignOptions opts;
  opts.threads = 1;
  opts.shard = big.shard(2, 3);  // groups [8, 12) — off the small grid
  EXPECT_DEATH((void)run_campaign(small, cat, opts), "does not fit");
}

}  // namespace
}  // namespace whisk::experiments
