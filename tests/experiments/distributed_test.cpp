// The distributed campaign contract, end to end over fork-mode workers:
// merged cells CSV/JSONL byte-identical to a single-process run at any
// worker count on a grid that exercises every subsystem at once
// (autoscaled cost-metered fleet, resilience policy, crash faults,
// workflow DAGs); per-group summaries bit-exact across the wire; empty
// shards tolerated when workers outnumber groups; and a worker SIGKILLed
// mid-shard re-run transparently with the merge unchanged.
#include "experiments/distributed.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "experiments/campaign.h"
#include "util/stats.h"

namespace whisk::experiments {
namespace {

class DistributedCampaignTest : public ::testing::Test {
 protected:
  // Every subsystem on one grid: 8 groups (2 autoscalers x 2 fault
  // regimes x 2 workflow shapes) x 2 seeds = 16 cells.
  static CampaignSpec chaos_grid() {
    return CampaignSpec::parse(
        "schedulers=ours/sept; "
        "scenarios=uniform?intensity=30; seeds=0..1; "
        "clusters=node:3?cost-per-hour=0.48&min-nodes=2&max-nodes=5"
        "|resilience=timeout-s=8&max-attempts=3; "
        "autoscalers=none,target-util?tick-s=1&cooldown-s=1; "
        "faults=none,crash-restart?mtbf-s=60&mttr-s=10; "
        "workflows=none,chain?stages=3");
  }

  // The single-process reference run the merged output must reproduce.
  CampaignResult reference_run() {
    CampaignOptions opts;
    opts.threads = 1;
    return run_campaign(chaos_grid(), cat_, opts);
  }

  workload::FunctionCatalog cat_ = workload::sebs_catalog();
};

TEST_F(DistributedCampaignTest, MergedOutputByteIdenticalAtAnyWorkerCount) {
  const CampaignResult single = reference_run();
  const std::string single_csv = cells_csv(single);
  const std::string single_jsonl = cells_jsonl(single);

  for (const int workers : {1, 2, 4}) {
    DistributedOptions opts;
    opts.workers = workers;
    const DistributedResult dist = run_distributed(chaos_grid(), cat_, opts);
    EXPECT_EQ(dist.cells_csv, single_csv) << workers << " workers";
    EXPECT_EQ(dist.cells_jsonl, single_jsonl) << workers << " workers";
    for (const ShardOutcome& shard : dist.shards) {
      EXPECT_EQ(shard.attempts, 1);
    }
    EXPECT_GT(dist.peak_worker_rss_kb, 0);
  }
}

TEST_F(DistributedCampaignTest, GroupSummariesAreBitExactAcrossTheWire) {
  const CampaignResult single = reference_run();

  DistributedOptions opts;
  opts.workers = 3;
  const DistributedResult dist = run_distributed(chaos_grid(), cat_, opts);

  ASSERT_EQ(dist.groups.size(), single.group_count());
  for (std::size_t g = 0; g < dist.groups.size(); ++g) {
    const GroupSummary& got = dist.groups[g];
    EXPECT_EQ(got.group, g);
    const auto cells = single.group(g);
    std::size_t calls = 0;
    std::size_t ok = 0;
    for (const CellResult& c : cells) {
      calls += c.calls;
      ok += c.ok_calls;
    }
    EXPECT_EQ(got.calls, calls);
    EXPECT_EQ(got.ok_calls, ok);
    EXPECT_EQ(got.cold_starts, total_stats(cells).cold_starts);
    EXPECT_EQ(got.max_completion, max_completion(cells));
    // The worker folds its cells exactly as the driver-side helper would;
    // hexfloat transport keeps every accumulator bit identical.
    const metrics::StreamingSummary want_r = aggregate_responses(cells);
    const metrics::StreamingSummary want_s = aggregate_stretches(cells);
    const util::StreamingStatsState a = got.response.stats.state();
    const util::StreamingStatsState b = want_r.stats.state();
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.m2, b.m2);
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.max, b.max);
    EXPECT_EQ(got.response.reservoir.seen(), want_r.reservoir.seen());
    EXPECT_EQ(got.response.reservoir.samples(), want_r.reservoir.samples());
    EXPECT_EQ(got.stretch.stats.state().m2, want_s.stats.state().m2);
    EXPECT_EQ(got.stretch.reservoir.samples(), want_s.reservoir.samples());
  }
}

TEST_F(DistributedCampaignTest, MoreWorkersThanGroupsYieldsEmptyShards) {
  const CampaignResult single = reference_run();
  const std::size_t groups = chaos_grid().group_count();

  DistributedOptions opts;
  opts.workers = static_cast<int>(groups) + 3;
  const DistributedResult dist = run_distributed(chaos_grid(), cat_, opts);
  EXPECT_EQ(dist.cells_csv, cells_csv(single));
  EXPECT_EQ(dist.cells_jsonl, cells_jsonl(single));
  std::size_t empty = 0;
  for (const ShardOutcome& shard : dist.shards) {
    if (shard.range.empty()) ++empty;
  }
  EXPECT_EQ(empty, 3UL);
}

TEST_F(DistributedCampaignTest, KilledWorkerIsRerunAndMergeUnchanged) {
  const CampaignResult single = reference_run();

  DistributedOptions opts;
  opts.workers = 2;
  // SIGKILL shard 0's first attempt as soon as its header arrives — the
  // header is written before any cell runs, so the worker dies mid-shard.
  opts.test_kill_shard = 0;
  const DistributedResult dist = run_distributed(chaos_grid(), cat_, opts);

  ASSERT_EQ(dist.shards.size(), 2UL);
  EXPECT_EQ(dist.shards[0].attempts, 2) << "killed shard must be re-spawned";
  EXPECT_EQ(dist.shards[1].attempts, 1);
  EXPECT_EQ(dist.cells_csv, cells_csv(single));
  EXPECT_EQ(dist.cells_jsonl, cells_jsonl(single));
}

TEST_F(DistributedCampaignTest, NoSamplesModeAlsoMergesByteIdentically) {
  CampaignOptions sopts;
  sopts.threads = 1;
  sopts.retain_samples = false;
  sopts.reservoir_capacity = 64;
  const CampaignResult single = run_campaign(chaos_grid(), cat_, sopts);

  DistributedOptions opts;
  opts.workers = 2;
  opts.retain_samples = false;
  opts.reservoir_capacity = 64;
  const DistributedResult dist = run_distributed(chaos_grid(), cat_, opts);
  EXPECT_EQ(dist.cells_csv, cells_csv(single));
  EXPECT_EQ(dist.cells_jsonl, cells_jsonl(single));
}

}  // namespace
}  // namespace whisk::experiments
