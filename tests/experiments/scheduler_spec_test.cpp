#include "experiments/scheduler_spec.h"

#include <gtest/gtest.h>

#include "cluster/balancer_registry.h"
#include "core/policy_registry.h"
#include "node/invoker_registry.h"

namespace whisk::experiments {
namespace {

TEST(SchedulerSpec_, DefaultsToOursFifoRoundRobin) {
  const SchedulerSpec spec;
  EXPECT_EQ(spec.invoker, "ours");
  EXPECT_EQ(spec.policy, "fifo");
  EXPECT_EQ(spec.balancer, "round-robin");
}

TEST(SchedulerSpec_, ParsesFullTriple) {
  const auto spec = SchedulerSpec::parse("ours/sept/round-robin");
  EXPECT_EQ(spec, (SchedulerSpec{"ours", "sept", "round-robin"}));
}

TEST(SchedulerSpec_, ShorterFormsKeepDefaults) {
  EXPECT_EQ(SchedulerSpec::parse("baseline"),
            (SchedulerSpec{"baseline", "fifo", "round-robin"}));
  EXPECT_EQ(SchedulerSpec::parse("ours/fc"),
            (SchedulerSpec{"ours", "fc", "round-robin"}));
}

TEST(SchedulerSpec_, ParseNormalizesCaseAndAliases) {
  EXPECT_EQ(SchedulerSpec::parse("OURS/Fair-Choice/JIQ"),
            (SchedulerSpec{"ours", "fc", "join-idle-queue"}));
  EXPECT_EQ(SchedulerSpec::parse("our/sept"),
            (SchedulerSpec{"ours", "sept", "round-robin"}));
}

TEST(SchedulerSpec_, ToStringRoundTripsForAllRegisteredCombinations) {
  for (const auto& invoker : node::InvokerRegistry::instance().names()) {
    for (const auto& policy : core::PolicyRegistry::instance().names()) {
      for (const auto& balancer :
           cluster::BalancerRegistry::instance().names()) {
        const SchedulerSpec spec{invoker, policy, balancer};
        const auto text = spec.to_string();
        EXPECT_EQ(text, invoker + "/" + policy + "/" + balancer);
        EXPECT_EQ(SchedulerSpec::parse(text), spec) << text;
      }
    }
  }
}

TEST(SchedulerSpec_, PaperSchedulersKeepTheFigureOrderAndLabels) {
  const auto& all = paper_schedulers();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].label(), "baseline");
  EXPECT_EQ(all[1].label(), "FIFO");
  EXPECT_EQ(all[2].label(), "SEPT");
  EXPECT_EQ(all[3].label(), "EECT");
  EXPECT_EQ(all[4].label(), "RECT");
  EXPECT_EQ(all[5].label(), "FC");
  for (const auto& spec : all) {
    EXPECT_EQ(spec, spec.normalized()) << spec.to_string();
    EXPECT_EQ(spec.balancer, "round-robin");
  }
}

TEST(SchedulerSpec_, LabelUppercasesThePolicyForOurInvokers) {
  EXPECT_EQ((SchedulerSpec{"ours", "sjf-aging"}).label(), "SJF-AGING");
  EXPECT_EQ((SchedulerSpec{"baseline", "sept"}).label(), "baseline");
}

TEST(SchedulerSpecDeath, UnknownComponentsEchoInputAndListNames) {
  EXPECT_DEATH((void)SchedulerSpec::parse("warp-drive"),
               "unknown invoker \"warp-drive\".*baseline.*ours");
  EXPECT_DEATH((void)SchedulerSpec::parse("ours/lifo"),
               "unknown policy \"lifo\".*fifo.*sept.*eect.*rect.*fc");
  EXPECT_DEATH((void)SchedulerSpec::parse("ours/fifo/best-effort"),
               "unknown balancer \"best-effort\".*round-robin");
}

TEST(SchedulerSpecDeath, MalformedSpecsAreRejected) {
  EXPECT_DEATH((void)SchedulerSpec::parse(""), "empty scheduler spec");
  EXPECT_DEATH((void)SchedulerSpec::parse("a/b/c/d"),
               "more than three components");
}

}  // namespace
}  // namespace whisk::experiments
