// Reproducibility of the full pipeline after the hot-path rewrite: the
// whole simulator drives itself through sim::Engine, so a fixed seed must
// yield a byte-identical metrics CSV run over run — across schedulers,
// including the history-driven policies (SEPT/FC) that exercise the O(1)
// running-sum estimates.
#include <gtest/gtest.h>

#include <string>

#include "experiments/experiment_spec.h"
#include "experiments/runner.h"
#include "metrics/csv.h"
#include "workload/function.h"

namespace whisk::experiments {
namespace {

std::string run_csv(const std::string& scheduler, std::uint64_t seed) {
  const auto cat = workload::sebs_catalog();
  auto spec =
      ExperimentSpec().cores(10).intensity(30).seed(seed).scheduler(
          scheduler);
  const auto result = run_experiment(spec, cat);
  return metrics::to_csv(result.records, cat);
}

class Determinism : public ::testing::TestWithParam<const char*> {};

TEST_P(Determinism, SameSeedSameCsv) {
  const std::string first = run_csv(GetParam(), 7);
  const std::string second = run_csv(GetParam(), 7);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST_P(Determinism, DifferentSeedsDiffer) {
  // Sanity check that the CSV actually reflects the seed (otherwise the
  // test above proves nothing).
  EXPECT_NE(run_csv(GetParam(), 7), run_csv(GetParam(), 8));
}

INSTANTIATE_TEST_SUITE_P(Schedulers, Determinism,
                         ::testing::Values("ours/sept", "ours/fc",
                                           "ours/fifo", "baseline"));

}  // namespace
}  // namespace whisk::experiments
