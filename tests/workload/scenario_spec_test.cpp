#include "workload/scenario_spec.h"

#include <gtest/gtest.h>

#include "workload/scenario_registry.h"

namespace whisk::workload {
namespace {

TEST(ScenarioSpec_, DefaultsToUniformWithNoParams) {
  const ScenarioSpec spec;
  EXPECT_EQ(spec.name, "uniform");
  EXPECT_TRUE(spec.params.empty());
  EXPECT_EQ(spec.to_string(), "uniform");
}

TEST(ScenarioSpec_, ParsesNameAndParams) {
  const auto spec = ScenarioSpec::parse("uniform?intensity=60");
  EXPECT_EQ(spec.name, "uniform");
  ASSERT_EQ(spec.params.size(), 1u);
  EXPECT_EQ(spec.params.at("intensity"), "60");
  EXPECT_EQ(spec.to_string(), "uniform?intensity=60");
}

TEST(ScenarioSpec_, BareNameParses) {
  EXPECT_EQ(ScenarioSpec::parse("poisson"),
            (ScenarioSpec{"poisson", {}}));
}

TEST(ScenarioSpec_, ToStringIsCanonicalRegardlessOfParamOrder) {
  const auto a = ScenarioSpec::parse("fairness?rare-calls=4&intensity=30");
  const auto b = ScenarioSpec::parse("fairness?intensity=30&rare-calls=4");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_string(), "fairness?intensity=30&rare-calls=4");
}

TEST(ScenarioSpec_, NormalizesNameCaseAndAliasesAndKeyCase) {
  const auto spec = ScenarioSpec::parse("MMPP?Rate-On=90");
  EXPECT_EQ(spec.name, "bursty");
  EXPECT_EQ(spec.params.at("rate-on"), "90");
  // Values are kept verbatim (they may be paths or function names).
  EXPECT_EQ(ScenarioSpec::parse("trace?file=/Tmp/T.CSV").params.at("file"),
            "/Tmp/T.CSV");
}

TEST(ScenarioSpec_, ParseToStringRoundTripsForAllRegisteredNames) {
  auto& registry = ScenarioRegistry::instance();
  for (const auto& name : registry.names()) {
    const ScenarioSpec bare{name, {}};
    EXPECT_EQ(ScenarioSpec::parse(bare.to_string()), bare) << name;
    // And with every declared parameter spelled out (skip display-only
    // defaults that are not literal values).
    ScenarioSpec full{name, {{"window", "30"}}};
    EXPECT_EQ(ScenarioSpec::parse(full.to_string()), full.normalized())
        << name;
  }
}

TEST(ScenarioSpec_, TypedAccessorsParseAndFallBack) {
  const auto spec = ScenarioSpec::parse("poisson?rate=12.5&window=30");
  EXPECT_DOUBLE_EQ(spec.number("rate", 1.0), 12.5);
  EXPECT_DOUBLE_EQ(spec.number("missing", 7.0), 7.0);
  EXPECT_EQ(spec.count("window", 0), 30u);
  EXPECT_EQ(spec.text("mix", "round-robin"), "round-robin");
  EXPECT_TRUE(spec.has("rate"));
  EXPECT_FALSE(spec.has("mix"));
}

TEST(ScenarioSpecDeath, UnknownNamesEchoInputAndListRegistered) {
  EXPECT_DEATH((void)ScenarioSpec::parse("warp-burst"),
               "unknown scenario \"warp-burst\".*uniform.*fixed-total.*"
               "fairness.*poisson.*bursty.*diurnal.*trace");
}

TEST(ScenarioSpecDeath, UnknownKeysListTheValidOnes) {
  EXPECT_DEATH((void)ScenarioSpec::parse("uniform?warp=9"),
               "scenario \"uniform\" does not take parameter \"warp\".*"
               "valid parameters: intensity, window");
}

TEST(ScenarioSpecDeath, MalformedSpecsAreRejected) {
  EXPECT_DEATH((void)ScenarioSpec::parse(""), "empty scenario spec");
  EXPECT_DEATH((void)ScenarioSpec::parse("?intensity=60"), "empty name");
  EXPECT_DEATH((void)ScenarioSpec::parse("uniform?intensity"),
               "not key=value");
  EXPECT_DEATH((void)ScenarioSpec::parse("uniform?=60"), "not key=value");
  EXPECT_DEATH(
      (void)ScenarioSpec::parse("uniform?intensity=1&intensity=2"),
      "twice");
}

TEST(ScenarioSpecDeath, GarbageNumbersNameScenarioKeyAndValue) {
  const auto spec = ScenarioSpec::parse("poisson?rate=fast");
  EXPECT_DEATH((void)spec.number("rate", 1.0),
               "scenario \"poisson\" parameter rate=\"fast\" is not a "
               "finite number");
  // Non-finite values are rejected too: an inf rate would make the
  // exponential-gap arrival loops spin forever.
  const auto inf = ScenarioSpec::parse("poisson?rate=inf");
  EXPECT_DEATH((void)inf.number("rate", 1.0), "is not a finite number");
  const auto neg = ScenarioSpec::parse("fixed-total?total=-5");
  EXPECT_DEATH((void)neg.count("total", 1),
               "total=\"-5\" is not a whole number >= 0");
  // strtoull would skip the space, accept the sign, and wrap to ~1.8e19;
  // the digits-only parse refuses instead.
  const auto padded = ScenarioSpec::parse("fixed-total?total= -5");
  EXPECT_DEATH((void)padded.count("total", 1), "whole number >= 0");
  const auto huge =
      ScenarioSpec::parse("fixed-total?total=99999999999999999999");
  EXPECT_DEATH((void)huge.count("total", 1), "whole number >= 0");
}

}  // namespace
}  // namespace whisk::workload
