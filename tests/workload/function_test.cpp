#include "workload/function.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace whisk::workload {
namespace {

TEST(Catalog, SebsHasElevenFunctions) {
  const auto cat = sebs_catalog();
  EXPECT_EQ(cat.size(), 11u);
}

TEST(Catalog, IdsAreSequential) {
  const auto cat = sebs_catalog();
  for (std::size_t i = 0; i < cat.size(); ++i) {
    EXPECT_EQ(cat.spec(static_cast<FunctionId>(i)).id,
              static_cast<FunctionId>(i));
  }
}

TEST(Catalog, FindByName) {
  const auto cat = sebs_catalog();
  const auto dna = cat.find("dna-visualisation");
  ASSERT_TRUE(dna.has_value());
  EXPECT_EQ(cat.spec(*dna).median_ms, 8552.0);
  EXPECT_FALSE(cat.find("no-such-function").has_value());
}

TEST(Catalog, MeanReferenceMedianMatchesPaper) {
  // The paper: "The average response time for the function selected
  // uniformly from Table I is ~1.042 s".
  const auto cat = sebs_catalog();
  EXPECT_NEAR(cat.mean_reference_median_s(), 1.042, 0.001);
}

TEST(Catalog, WarmMedianStripsOverhead) {
  const auto cat = sebs_catalog();
  const auto& compression = cat.spec(*cat.find("compression"));
  EXPECT_NEAR(compression.warm_median_ms(), 807.0 - 10.0, 1e-9);
}

TEST(Catalog, WarmMedianHasFloorForShortFunctions) {
  const auto cat = sebs_catalog();
  const auto& bfs = cat.spec(*cat.find("graph-bfs"));
  // 12 ms client-side minus 10 ms overhead would be 2 ms; the floor keeps
  // it at a sane positive value.
  EXPECT_GT(bfs.warm_median_ms(), 0.0);
  EXPECT_LT(bfs.warm_median_ms(), 5.0);
}

TEST(Catalog, ReferenceMedianIsClientSideSeconds) {
  const auto cat = sebs_catalog();
  const auto sleep = *cat.find("sleep");
  EXPECT_DOUBLE_EQ(cat.reference_median(sleep), 1.022);
}

TEST(Catalog, CpuFractionsSplitComputeAndIo) {
  // Paper: "Roughly half of these functions are computationally-intensive".
  const auto cat = sebs_catalog();
  int compute = 0;
  for (const auto& s : cat.specs()) {
    if (s.cpu_fraction >= 0.5) ++compute;
  }
  EXPECT_GE(compute, 5);
  EXPECT_LE(compute, 9);
}

TEST(Catalog, SleepIsPureWait) {
  const auto cat = sebs_catalog();
  EXPECT_LT(cat.spec(*cat.find("sleep")).cpu_fraction, 0.1);
}

TEST(Sampling, ServiceIsDeterministicPerSeed) {
  const auto cat = sebs_catalog();
  sim::Rng a(5), b(5);
  for (std::size_t i = 0; i < cat.size(); ++i) {
    EXPECT_EQ(cat.sample_service(static_cast<FunctionId>(i), a),
              cat.sample_service(static_cast<FunctionId>(i), b));
  }
}

TEST(Sampling, ServiceStaysInEnvelope) {
  const auto cat = sebs_catalog();
  sim::Rng rng(6);
  for (const auto& spec : cat.specs()) {
    const double median_s = spec.warm_median_ms() / 1000.0;
    for (int k = 0; k < 2000; ++k) {
      const double s = cat.sample_service(spec.id, rng);
      ASSERT_GE(s, 0.25 * median_s) << spec.name;
      ASSERT_LE(s, 8.0 * median_s) << spec.name;
    }
  }
}

TEST(Sampling, MedianTracksTableOne) {
  const auto cat = sebs_catalog();
  sim::Rng rng(7);
  for (const auto& spec : cat.specs()) {
    std::vector<double> xs;
    for (int k = 0; k < 20001; ++k) {
      xs.push_back(cat.sample_service(spec.id, rng));
    }
    std::sort(xs.begin(), xs.end());
    const double median = xs[xs.size() / 2];
    EXPECT_NEAR(median, spec.warm_median_ms() / 1000.0,
                0.05 * spec.warm_median_ms() / 1000.0)
        << spec.name;
  }
}

TEST(Sampling, LongerFunctionsSampleLonger) {
  const auto cat = sebs_catalog();
  sim::Rng rng(8);
  const auto dna = *cat.find("dna-visualisation");
  const auto bfs = *cat.find("graph-bfs");
  double dna_sum = 0.0, bfs_sum = 0.0;
  for (int k = 0; k < 100; ++k) {
    dna_sum += cat.sample_service(dna, rng);
    bfs_sum += cat.sample_service(bfs, rng);
  }
  EXPECT_GT(dna_sum, 100.0 * bfs_sum);
}

TEST(CatalogDeath, RejectsBadPercentiles) {
  EXPECT_DEATH(FunctionCatalog({{kInvalidFunction, "bad", 100.0, 50.0, 200.0,
                                 1.0, 160.0}}),
               "percentiles");
}

TEST(CatalogDeath, RejectsBadCpuFraction) {
  EXPECT_DEATH(FunctionCatalog({{kInvalidFunction, "bad", 10.0, 20.0, 30.0,
                                 1.5, 160.0}}),
               "cpu_fraction");
}

TEST(CatalogDeath, RejectsOutOfRangeId) {
  const auto cat = sebs_catalog();
  EXPECT_DEATH((void)cat.spec(99), "out of range");
}

// Parameterized sanity over all functions: sigma fit is positive and
// bounded, mu matches the warm median.
class PerFunction : public ::testing::TestWithParam<int> {};

TEST_P(PerFunction, LognormalFitIsSane) {
  const auto cat = sebs_catalog();
  const auto& spec = cat.spec(GetParam());
  EXPECT_GT(spec.lognormal_sigma(), 0.0);
  EXPECT_LE(spec.lognormal_sigma(), 0.8);
  EXPECT_NEAR(std::exp(spec.lognormal_mu()) * 1000.0, spec.warm_median_ms(),
              1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllSebs, PerFunction, ::testing::Range(0, 11));

}  // namespace
}  // namespace whisk::workload
