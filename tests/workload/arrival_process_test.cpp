#include "workload/arrival_process.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace whisk::workload {
namespace {

TEST(UniformArrivals_, SamplesInsideTheWindow) {
  UniformArrivals arrivals;
  EXPECT_FALSE(arrivals.rate_driven());
  sim::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto t = arrivals.sample(42.0, rng);
    ASSERT_GE(t, 0.0);
    ASSERT_LT(t, 42.0);
  }
}

TEST(PoissonArrivals_, CountConcentratesAroundRateTimesWindow) {
  PoissonArrivals arrivals(50.0);
  EXPECT_TRUE(arrivals.rate_driven());
  sim::Rng rng(2);
  const auto times = arrivals.schedule(60.0, rng);
  // Mean 3000, sigma ~55; a +-20% band is ~10 sigma.
  EXPECT_GT(times.size(), 2400u);
  EXPECT_LT(times.size(), 3600u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    ASSERT_GE(times[i], 0.0);
    ASSERT_LT(times[i], 60.0);
    if (i > 0) ASSERT_GT(times[i], times[i - 1]) << "strictly increasing";
  }
}

TEST(PoissonArrivals_, SameSeedSameSchedule) {
  PoissonArrivals arrivals(20.0);
  sim::Rng a(3), b(3), c(4);
  EXPECT_EQ(arrivals.schedule(60.0, a), arrivals.schedule(60.0, b));
  EXPECT_NE(arrivals.schedule(60.0, a), arrivals.schedule(60.0, c));
}

TEST(OnOffArrivals_, QuietWhenOffRateIsZero) {
  // With rate-off=0, every arrival must land inside an ON phase; with ~4 s
  // ON and ~16 s OFF phases the trace has long silent stretches.
  OnOffArrivals arrivals(100.0, 0.0, 4.0, 16.0);
  sim::Rng rng(5);
  const auto times = arrivals.schedule(120.0, rng);
  ASSERT_GT(times.size(), 20u);
  double max_gap = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    max_gap = std::max(max_gap, times[i] - times[i - 1]);
  }
  // At 100/s inside a burst, a >2 s gap can only be an OFF phase.
  EXPECT_GT(max_gap, 2.0);
  for (const auto t : times) ASSERT_LT(t, 120.0);
}

TEST(DiurnalArrivals_, FollowsTheSinusoidalRateCurve) {
  DiurnalArrivals arrivals(40.0, 1.0, 60.0);
  sim::Rng rng(6);
  const auto times = arrivals.schedule(60.0, rng);
  ASSERT_GT(times.size(), 500u);
  int first_half = 0;
  for (const auto t : times) {
    if (t < 30.0) ++first_half;
  }
  // sin is positive on the first half-period and negative on the second:
  // with amplitude 1 the first half carries ~82% of the mass.
  EXPECT_GT(first_half, static_cast<int>(0.7 * times.size()));
}

TEST(TraceArrivals_, ReplaysAndClipsToWindow) {
  TraceArrivals arrivals({0.5, 2.0, 61.0});
  sim::Rng rng(7);
  const auto times = arrivals.schedule(60.0, rng);
  EXPECT_EQ(times, (std::vector<sim::SimTime>{0.5, 2.0}));
}

TEST(ArrivalProcessDeath, WrongModeAndBadParamsAbort) {
  sim::Rng rng(8);
  UniformArrivals uniform;
  EXPECT_DEATH((void)uniform.schedule(60.0, rng), "count-driven");
  PoissonArrivals poisson(1.0);
  EXPECT_DEATH((void)poisson.sample(60.0, rng), "rate-driven");
  EXPECT_DEATH(PoissonArrivals{0.0}, "rate must be positive");
  EXPECT_DEATH((OnOffArrivals{0.0, 0.0, 1.0, 1.0}), "rate-on");
  EXPECT_DEATH((DiurnalArrivals{10.0, 1.5, 60.0}), "amplitude");
  EXPECT_DEATH(TraceArrivals{{-1.0}}, ">= 0");
}

TEST(ArrivalProcessDeath, AbsurdExpectedEventCountsAbortInsteadOfSpinning) {
  // Finite-but-huge rates (or microscopic phase durations) would otherwise
  // loop for ~rate*window iterations with no diagnostic.
  sim::Rng rng(9);
  EXPECT_DEATH((void)PoissonArrivals{1e300}.schedule(60.0, rng),
               "more than 1e7 expected events");
  EXPECT_DEATH(
      (void)OnOffArrivals(10.0, 0.0, 1e-300, 1.0).schedule(60.0, rng),
      "more than 1e7 expected events");
  EXPECT_DEATH((void)DiurnalArrivals(1e300, 0.5, 60.0).schedule(60.0, rng),
               "more than 1e7 expected events");
}

}  // namespace
}  // namespace whisk::workload
