// The ScenarioRegistry surface: registry mechanics, determinism of every
// registered scenario, runtime registration, trace replay, and — the
// load-bearing guarantee of the redesign — byte-identical call sequences
// between the registered paper scenarios and the pre-registry seed
// generators (retained below as reference implementations) for seeds 0..4.
#include "workload/scenario_registry.h"

#include <gtest/gtest.h>

#include "workload/arrival_process.h"
#include "workload/function_mix.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace whisk::workload {
namespace {

// --- the pre-redesign generators, verbatim (modulo the class wrapper) ------
namespace reference {

Scenario finalize(std::vector<CallRequest> calls, sim::SimTime window) {
  std::sort(calls.begin(), calls.end(),
            [](const CallRequest& a, const CallRequest& b) {
              if (a.release != b.release) return a.release < b.release;
              return a.function < b.function;
            });
  for (std::size_t i = 0; i < calls.size(); ++i) {
    calls[i].id = static_cast<CallId>(i);
  }
  Scenario s;
  s.calls = std::move(calls);
  s.window = window;
  return s;
}

Scenario uniform_burst(const FunctionCatalog& catalog, int cores,
                       int intensity, sim::Rng& rng,
                       sim::SimTime window = 60.0) {
  const std::size_t nf = catalog.size();
  const std::size_t total =
      static_cast<std::size_t>(1.1 * cores * intensity + 0.5);
  const std::size_t per_function = total / nf;
  std::vector<CallRequest> calls;
  calls.reserve(total);
  for (std::size_t f = 0; f < nf; ++f) {
    for (std::size_t k = 0; k < per_function; ++k) {
      calls.push_back(CallRequest{-1, static_cast<FunctionId>(f),
                                  rng.uniform(0.0, window)});
    }
  }
  return finalize(std::move(calls), window);
}

Scenario fixed_total_burst(const FunctionCatalog& catalog,
                           std::size_t total_requests, sim::Rng& rng,
                           sim::SimTime window = 60.0) {
  const std::size_t nf = catalog.size();
  std::vector<CallRequest> calls;
  calls.reserve(total_requests);
  for (std::size_t i = 0; i < total_requests; ++i) {
    calls.push_back(CallRequest{-1, static_cast<FunctionId>(i % nf),
                                rng.uniform(0.0, window)});
  }
  return finalize(std::move(calls), window);
}

Scenario fairness_burst(const FunctionCatalog& catalog, int cores,
                        int intensity, FunctionId rare_function,
                        std::size_t rare_calls, sim::Rng& rng,
                        sim::SimTime window = 60.0) {
  const std::size_t total =
      static_cast<std::size_t>(1.1 * cores * intensity + 0.5);
  std::vector<CallRequest> calls;
  calls.reserve(total);
  for (std::size_t k = 0; k < rare_calls; ++k) {
    calls.push_back(
        CallRequest{-1, rare_function, rng.uniform(0.0, window)});
  }
  const std::size_t nf = catalog.size();
  for (std::size_t k = rare_calls; k < total; ++k) {
    FunctionId f;
    do {
      f = static_cast<FunctionId>(rng.uniform_index(nf));
    } while (f == rare_function);
    calls.push_back(CallRequest{-1, f, rng.uniform(0.0, window)});
  }
  return finalize(std::move(calls), window);
}

}  // namespace reference

void expect_identical(const Scenario& a, const Scenario& b,
                      const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  EXPECT_EQ(a.window, b.window) << label;
  for (std::size_t i = 0; i < a.calls.size(); ++i) {
    ASSERT_EQ(a.calls[i].id, b.calls[i].id) << label << " call " << i;
    ASSERT_EQ(a.calls[i].function, b.calls[i].function)
        << label << " call " << i;
    // Byte-identical means the exact same double, not approximately.
    ASSERT_EQ(a.calls[i].release, b.calls[i].release)
        << label << " call " << i;
  }
}

class ScenarioRegistryTest : public ::testing::Test {
 protected:
  Scenario make(const std::string& spec, std::uint64_t seed) {
    ScenarioContext ctx;
    ctx.catalog = &cat_;
    sim::Rng rng(seed);
    return make_scenario(spec, ctx, rng);
  }

  FunctionCatalog cat_ = sebs_catalog();
};

TEST_F(ScenarioRegistryTest, BuiltinsAreRegisteredInPresentationOrder) {
  const auto names = ScenarioRegistry::instance().names();
  const std::vector<std::string> expected = {
      "uniform", "fixed-total", "fairness", "poisson",
      "bursty",  "diurnal",     "trace"};
  EXPECT_EQ(names, expected);
  EXPECT_EQ(ScenarioRegistry::instance().resolve("MMPP"), "bursty");
  EXPECT_EQ(ScenarioRegistry::instance().resolve("fixed"), "fixed-total");
}

TEST_F(ScenarioRegistryTest, EveryDefDeclaresHelpAndParams) {
  auto& registry = ScenarioRegistry::instance();
  for (const auto& name : registry.names()) {
    const auto def = registry.create(name);
    EXPECT_FALSE(def->help().empty()) << name;
    for (const auto& param : def->params()) {
      EXPECT_FALSE(param.name.empty()) << name;
      EXPECT_FALSE(param.help.empty()) << name << "/" << param.name;
    }
  }
}

// The acceptance guarantee: the three paper scenarios, expressed as
// registered specs, reproduce the pre-redesign call sequences exactly for
// seeds 0..4.
TEST_F(ScenarioRegistryTest, UniformMatchesSeedGeneratorForSeeds0To4) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    sim::Rng rng(seed);
    const auto expected = reference::uniform_burst(cat_, 10, 30, rng);
    expect_identical(make("uniform?intensity=30", seed), expected,
                     "uniform seed " + std::to_string(seed));
  }
}

TEST_F(ScenarioRegistryTest, FixedTotalMatchesSeedGeneratorForSeeds0To4) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    sim::Rng rng(seed);
    const auto expected = reference::fixed_total_burst(cat_, 2376, rng);
    expect_identical(make("fixed-total?total=2376", seed), expected,
                     "fixed-total seed " + std::to_string(seed));
  }
}

TEST_F(ScenarioRegistryTest, FairnessMatchesSeedGeneratorForSeeds0To4) {
  const auto dna = *cat_.find("dna-visualisation");
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    sim::Rng rng(seed);
    const auto expected =
        reference::fairness_burst(cat_, 10, 90, dna, 10, rng);
    expect_identical(
        make("fairness?intensity=90&rare-calls=10", seed), expected,
        "fairness seed " + std::to_string(seed));
  }
}

// Determinism over the whole open surface: every registered scenario, same
// (spec, seed) => identical call sequence.
TEST_F(ScenarioRegistryTest, EveryRegisteredScenarioIsDeterministic) {
  const std::string trace_path =
      ::testing::TempDir() + "whisk_registry_determinism.csv";
  {
    std::ofstream out(trace_path);
    out << "0.5\n1.0, graph-bfs\n2.5\n40.0\n";
  }
  // A runnable spec per registered scenario; a new registration must either
  // run with defaults or be added here.
  const std::map<std::string, std::string> spec_for = {
      {"uniform", "uniform"},
      {"fixed-total", "fixed-total"},
      {"fairness", "fairness"},
      {"poisson", "poisson"},
      {"bursty", "bursty"},
      {"diurnal", "diurnal"},
      {"trace", "trace?file=" + trace_path},
  };
  for (const auto& name : ScenarioRegistry::instance().names()) {
    ASSERT_EQ(spec_for.count(name), 1u)
        << "scenario \"" << name << "\" has no determinism spec; add one";
    const std::string& spec = spec_for.at(name);
    expect_identical(make(spec, 7), make(spec, 7), name);
    EXPECT_GT(make(spec, 7).size(), 0u) << name;
  }
}

TEST_F(ScenarioRegistryTest, TraceReplayPinsNamedRowsAndMixesTheRest) {
  const std::string path = ::testing::TempDir() + "whisk_trace_scenario.csv";
  {
    std::ofstream out(path);
    out << "# mixed trace\n0.5\n1.0, graph-bfs\n2.0\n3.5, graph-bfs\n";
  }
  const auto s = make("trace?file=" + path, 1);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.window, 3.5);  // derived from the last release
  const auto bfs = *cat_.find("graph-bfs");
  EXPECT_EQ(s.calls[1].function, bfs);
  EXPECT_EQ(s.calls[3].function, bfs);
  // Unnamed rows went through the default round-robin mix.
  EXPECT_EQ(s.calls[0].function, static_cast<FunctionId>(0));
  EXPECT_EQ(s.calls[2].function, static_cast<FunctionId>(1));
  // An explicit window clips the tail.
  const auto clipped = make("trace?file=" + path + "&window=1.5", 1);
  EXPECT_EQ(clipped.size(), 2u);
  EXPECT_DOUBLE_EQ(clipped.window, 1.5);
}

TEST_F(ScenarioRegistryTest, TraceDiesWhenTheWindowClipsEveryRow) {
  const std::string path = ::testing::TempDir() + "whisk_trace_clipped.csv";
  {
    std::ofstream out(path);
    out << "5.0\n6.0\n";
  }
  EXPECT_DEATH((void)make("trace?file=" + path + "&window=2", 1),
               "every row fell outside the window");
}

TEST_F(ScenarioRegistryTest, RuntimeRegistrationExtendsTheSurface) {
  // The whole point of the registry: a new scenario slots in without
  // touching workload/, experiments/, or the runner.
  class EveryHalfSecond final : public ScenarioDef {
   public:
    std::string help() const override { return "test-only: fixed cadence"; }
    std::vector<ScenarioParam> params() const override {
      return {{"period", "0.5", "gap between calls in seconds", false}};
    }
    Scenario generate(const ScenarioSpec& spec, const ScenarioContext& ctx,
                      sim::Rng& rng) const override {
      const double period = spec.number("period", 0.5);
      std::vector<sim::SimTime> times;
      for (double t = 0.0; t < 10.0; t += period) times.push_back(t);
      RoundRobinMix mix(ctx.catalog->size());
      return compose_scenario(TraceArrivals{std::move(times)}, mix, 0, 10.0,
                              rng);
    }
  };
  auto& registry = ScenarioRegistry::instance();
  if (!registry.contains("test-cadence")) {
    registry.register_factory(
        "test-cadence", [] { return std::make_unique<EveryHalfSecond>(); });
  }
  const auto s = make("test-cadence?period=1", 1);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_DOUBLE_EQ(s.calls[3].release, 3.0);
}

TEST_F(ScenarioRegistryTest, ContextlessCatalogDies) {
  ScenarioContext ctx;  // catalog left null
  sim::Rng rng(1);
  EXPECT_DEATH((void)make_scenario("uniform", ctx, rng),
               "must point at a FunctionCatalog");
}

}  // namespace
}  // namespace whisk::workload
