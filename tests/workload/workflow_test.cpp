#include "workload/workflow.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace whisk::workload {
namespace {

TEST(WorkflowSpecTest, ParsesAndRoundTrips) {
  const auto spec = WorkflowSpec::parse("Fanout?WIDTH=8&join=3");
  EXPECT_EQ(spec.name, "fanout");
  EXPECT_EQ(spec.count("width", 0), 8u);
  EXPECT_EQ(spec.text("join"), "3");
  EXPECT_EQ(spec.to_string(), "fanout?join=3&width=8");
  EXPECT_EQ(WorkflowSpec::parse(spec.to_string()), spec);
}

TEST(WorkflowSpecTest, AliasesResolveToCanonicalNames) {
  EXPECT_EQ(WorkflowSpec::parse("scatter-gather?width=4").name, "fanout");
  EXPECT_EQ(WorkflowSpec::parse("edges?edges=a>b").name, "dag");
}

TEST(WorkflowSpecTest, NoneIsDisabled) {
  EXPECT_FALSE(WorkflowSpec{}.enabled());
  EXPECT_FALSE(WorkflowSpec::parse("none").enabled());
  EXPECT_FALSE(WorkflowSpec::parse("None").enabled());
  EXPECT_TRUE(WorkflowSpec::parse("chain").enabled());
  EXPECT_EQ(WorkflowSpec{}.to_string(), "none");
}

TEST(WorkflowSpecTest, BadSpecsAbort) {
  EXPECT_DEATH((void)WorkflowSpec::parse(""), "empty");
  EXPECT_DEATH((void)WorkflowSpec::parse("mystery-shape"), "mystery-shape");
  EXPECT_DEATH((void)WorkflowSpec::parse("none?width=2"), "none");
  EXPECT_DEATH((void)WorkflowSpec::parse("chain?depth=3"), "depth");
  EXPECT_DEATH((void)WorkflowSpec::parse("chain?stages=0"), "stages");
  EXPECT_DEATH((void)WorkflowSpec::parse("fanout?width=0"), "width");
  EXPECT_DEATH((void)WorkflowSpec::parse("fanout?join=9"), "join");
  EXPECT_DEATH((void)WorkflowSpec::parse("chain?functions=zigzag"),
               "functions");
}

TEST(WorkflowRegistryTest, ListsAllBuiltins) {
  const auto names = WorkflowRegistry::instance().names();
  const std::set<std::string> set(names.begin(), names.end());
  for (const char* name : {"chain", "fanout", "diamond", "dag"}) {
    EXPECT_TRUE(set.count(name) == 1) << name;
  }
}

TEST(WorkflowDagTest, ChainIsALine) {
  const auto dag = make_workflow_dag(WorkflowSpec::parse("chain?stages=4"));
  ASSERT_EQ(dag.size(), 4u);
  for (std::size_t s = 0; s < dag.size(); ++s) {
    const auto& stage = dag.stages[s];
    EXPECT_EQ(stage.preds, s == 0 ? 0 : 1);
    EXPECT_EQ(stage.join_k, s == 0 ? 0 : 1);
    if (s + 1 < dag.size()) {
      ASSERT_EQ(stage.successors.size(), 1u);
      EXPECT_EQ(stage.successors[0], static_cast<int>(s) + 1);
    } else {
      EXPECT_TRUE(stage.successors.empty());
    }
  }
}

TEST(WorkflowDagTest, FanoutJoinsAllByDefaultAndKOnRequest) {
  const auto all = make_workflow_dag(WorkflowSpec::parse("fanout?width=8"));
  ASSERT_EQ(all.size(), 10u);  // src + 8 branches + join
  EXPECT_EQ(all.stages.front().successors.size(), 8u);
  EXPECT_EQ(all.stages.back().preds, 8);
  EXPECT_EQ(all.stages.back().join_k, 8);

  const auto kofn =
      make_workflow_dag(WorkflowSpec::parse("fanout?width=8&join=3"));
  EXPECT_EQ(kofn.stages.back().preds, 8);
  EXPECT_EQ(kofn.stages.back().join_k, 3);
}

TEST(WorkflowDagTest, DiamondRotatesFunctionsByDefault) {
  const auto dag = make_workflow_dag(WorkflowSpec::parse("diamond?width=2"));
  ASSERT_EQ(dag.size(), 4u);
  // Asymmetric branches: default functions=rotate gives stage s offset s.
  std::set<int> offsets;
  for (const auto& stage : dag.stages) offsets.insert(stage.function_offset);
  EXPECT_EQ(offsets.size(), dag.size());

  const auto root = make_workflow_dag(
      WorkflowSpec::parse("diamond?width=2&functions=root"));
  for (const auto& stage : root.stages) {
    EXPECT_EQ(stage.function_offset, 0) << stage.label;
  }
}

TEST(WorkflowDagTest, DagEdgesChainAndSplitOnPlus) {
  // "a>b>c" chains; '+' separates edge lists ( ',' separates campaign
  // axis items, so specs inside a grid use '+').
  const auto dag =
      make_workflow_dag(WorkflowSpec::parse("dag?edges=a>b>d+a>c>d"));
  ASSERT_EQ(dag.size(), 4u);
  EXPECT_EQ(dag.stages[0].label, "a");
  EXPECT_EQ(dag.stages[0].successors.size(), 2u);
  EXPECT_EQ(dag.stages.back().label, "d");
  EXPECT_EQ(dag.stages.back().preds, 2);
  EXPECT_EQ(dag.stages.back().join_k, 2);  // trace joins are all-of-n
}

TEST(WorkflowDagTest, BadDagEdgesAbort) {
  EXPECT_DEATH((void)make_workflow_dag(WorkflowSpec::parse("dag?edges=a")),
               "edge");
  EXPECT_DEATH((void)make_workflow_dag(WorkflowSpec::parse("dag?edges=a>a")),
               "self-edge");
  EXPECT_DEATH(
      (void)make_workflow_dag(WorkflowSpec::parse("dag?edges=a>b+b>c+c>a")),
      "cycle");
}

TEST(WorkflowDagTest, NormalizedValidatesEagerly) {
  // normalized() builds the DAG once, so a structurally bad spec dies at
  // parse/normalize time instead of mid-sweep.
  EXPECT_DEATH((void)WorkflowSpec::parse("dag?edges=a>b+b>a"), "cycle");
  EXPECT_EQ(WorkflowSpec::parse("chain").normalized().name, "chain");
}

TEST(WorkflowDagTest, ValidateCatchesHandBuiltMistakes) {
  WorkflowDag empty;
  EXPECT_DEATH(validate_workflow_dag(empty, "test"), "test");

  // Backward edge.
  WorkflowDag backward;
  backward.stages.push_back({"a", 0, {1}, 0, 0});
  backward.stages.push_back({"b", 0, {0}, 1, 1});
  EXPECT_DEATH(validate_workflow_dag(backward, "test"), "b");

  // preds inconsistent with the edge set.
  WorkflowDag preds;
  preds.stages.push_back({"a", 0, {1}, 0, 0});
  preds.stages.push_back({"b", 0, {}, 2, 2});
  EXPECT_DEATH(validate_workflow_dag(preds, "test"), "b");

  // Two sources.
  WorkflowDag sources;
  sources.stages.push_back({"a", 0, {2}, 0, 0});
  sources.stages.push_back({"b", 0, {2}, 0, 0});
  sources.stages.push_back({"c", 0, {}, 2, 2});
  EXPECT_DEATH(validate_workflow_dag(sources, "test"), "source");

  // join_k above the fan-in.
  WorkflowDag join;
  join.stages.push_back({"a", 0, {1}, 0, 0});
  join.stages.push_back({"b", 0, {}, 1, 2});
  EXPECT_DEATH(validate_workflow_dag(join, "test"), "join");
}

}  // namespace
}  // namespace whisk::workload
