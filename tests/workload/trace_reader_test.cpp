#include "workload/trace_reader.h"

#include <gtest/gtest.h>

#include <fstream>

namespace whisk::workload {
namespace {

TEST(TraceReader_, ParsesTimesCommentsAndFunctionNames) {
  const auto entries = TraceReader::parse(
      "# a trace\n"
      "\n"
      "0.25\n"
      "1.5, graph-bfs\n"
      "  3.75 ,dna-visualisation\n");
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_DOUBLE_EQ(entries[0].release, 0.25);
  EXPECT_TRUE(entries[0].function.empty());
  EXPECT_DOUBLE_EQ(entries[1].release, 1.5);
  EXPECT_EQ(entries[1].function, "graph-bfs");
  EXPECT_DOUBLE_EQ(entries[2].release, 3.75);
  EXPECT_EQ(entries[2].function, "dna-visualisation");
}

TEST(TraceReader_, EmptyTextYieldsNoEntries) {
  EXPECT_TRUE(TraceReader::parse("").empty());
  EXPECT_TRUE(TraceReader::parse("# only comments\n\n").empty());
}

TEST(TraceReader_, ReadsAFile) {
  const std::string path = ::testing::TempDir() + "whisk_trace_reader.csv";
  {
    std::ofstream out(path);
    out << "0.5\n1.0, graph-bfs\n";
  }
  const auto entries = TraceReader::read_file(path);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1].function, "graph-bfs");
}

TEST(TraceReaderDeath, MalformedRowsNameTheLine) {
  EXPECT_DEATH((void)TraceReader::parse("0.5\nabc\n"),
               "trace line 2.*number >= 0");
  EXPECT_DEATH((void)TraceReader::parse("-2.0\n"), "number >= 0");
  EXPECT_DEATH((void)TraceReader::parse("1.0,\n"), "empty function name");
  EXPECT_DEATH((void)TraceReader::read_file("/nonexistent/trace.csv"),
               "cannot open trace file");
}

}  // namespace
}  // namespace whisk::workload
