// Behavior of the built-in registered scenarios through the declarative
// surface: the paper's count formulas, per-function splits, window/sort/id
// invariants, and seed determinism.
#include "workload/scenario_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

namespace whisk::workload {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  Scenario make(const std::string& spec, std::uint64_t seed, int cores = 10) {
    ScenarioContext ctx;
    ctx.catalog = &cat_;
    ctx.cores = cores;
    sim::Rng rng(seed);
    return make_scenario(spec, ctx, rng);
  }

  FunctionCatalog cat_ = sebs_catalog();
};

TEST_F(ScenarioTest, UniformBurstRequestCountMatchesFormula) {
  // 1.1 * c * v (paper Sec. V-B).
  EXPECT_EQ(make("uniform?intensity=30", 1).size(), 330u);
  EXPECT_EQ(make("uniform?intensity=120", 1, /*cores=*/20).size(), 2640u);
}

TEST_F(ScenarioTest, UniformIntensityDefaultsToTheContext) {
  ScenarioContext ctx;
  ctx.catalog = &cat_;
  ctx.cores = 10;
  ctx.intensity = 60;
  sim::Rng rng(1);
  EXPECT_EQ(make_scenario("uniform", ctx, rng).size(), 660u);
}

TEST_F(ScenarioTest, UniformBurstEqualCallsPerFunction) {
  const auto s = make("uniform?intensity=60", 2);
  std::map<FunctionId, int> counts;
  for (const auto& c : s.calls) ++counts[c.function];
  EXPECT_EQ(counts.size(), 11u);
  for (const auto& [fn, n] : counts) EXPECT_EQ(n, 60);
}

TEST_F(ScenarioTest, ReleasesInsideWindowAndSorted) {
  const auto s = make("uniform?intensity=30", 3);
  for (std::size_t i = 0; i < s.calls.size(); ++i) {
    ASSERT_GE(s.calls[i].release, 0.0);
    ASSERT_LT(s.calls[i].release, 60.0);
    if (i > 0) ASSERT_GE(s.calls[i].release, s.calls[i - 1].release);
  }
}

TEST_F(ScenarioTest, IdsAreSequentialAfterSorting) {
  const auto s = make("uniform?intensity=30", 4, /*cores=*/5);
  for (std::size_t i = 0; i < s.calls.size(); ++i) {
    EXPECT_EQ(s.calls[i].id, static_cast<CallId>(i));
  }
}

TEST_F(ScenarioTest, SameSeedSameScenario) {
  const auto s1 = make("uniform?intensity=40", 9);
  const auto s2 = make("uniform?intensity=40", 9);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.calls.size(); ++i) {
    EXPECT_EQ(s1.calls[i].function, s2.calls[i].function);
    EXPECT_EQ(s1.calls[i].release, s2.calls[i].release);
  }
}

TEST_F(ScenarioTest, DifferentSeedsDifferentOrder) {
  const auto s1 = make("uniform?intensity=40", 1);
  const auto s2 = make("uniform?intensity=40", 2);
  bool differs = false;
  for (std::size_t i = 0; i < s1.calls.size(); ++i) {
    if (s1.calls[i].function != s2.calls[i].function ||
        s1.calls[i].release != s2.calls[i].release) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST_F(ScenarioTest, CustomWindowRespected) {
  const auto s = make("uniform?intensity=30&window=10", 5);
  EXPECT_EQ(s.window, 10.0);
  for (const auto& c : s.calls) ASSERT_LT(c.release, 10.0);
}

TEST_F(ScenarioTest, FixedTotalBurstExactCount) {
  EXPECT_EQ(make("fixed-total?total=2376", 6).size(), 2376u);
}

TEST_F(ScenarioTest, FixedTotalNearEqualPerFunction) {
  const auto s = make("fixed-total?total=1320", 7);
  std::map<FunctionId, int> counts;
  for (const auto& c : s.calls) ++counts[c.function];
  // 1320 = 120 * 11 exactly.
  for (const auto& [fn, n] : counts) EXPECT_EQ(n, 120);
}

TEST_F(ScenarioTest, FairnessBurstHasExactRareCalls) {
  const auto dna = *cat_.find("dna-visualisation");
  const auto s = make("fairness?intensity=90&rare-calls=10", 8);
  EXPECT_EQ(s.size(), 990u);  // 1.1 * 10 * 90
  int rare = 0;
  for (const auto& c : s.calls) {
    if (c.function == dna) ++rare;
  }
  EXPECT_EQ(rare, 10);
}

TEST_F(ScenarioTest, FairnessOtherFunctionsRoughlyUniform) {
  const auto dna = *cat_.find("dna-visualisation");
  const auto s = make("fairness?intensity=90&rare-calls=10", 9);
  std::map<FunctionId, int> counts;
  for (const auto& c : s.calls) {
    if (c.function != dna) ++counts[c.function];
  }
  EXPECT_EQ(counts.size(), 10u);
  // 980 calls over 10 functions: expect each within a loose band of 98.
  for (const auto& [fn, n] : counts) {
    EXPECT_GT(n, 60) << fn;
    EXPECT_LT(n, 140) << fn;
  }
}

TEST_F(ScenarioTest, PoissonCountTracksRateTimesWindow) {
  const auto s = make("poisson?rate=30", 10);
  // 30/s over 60 s -> ~1800 calls; a +-20% band is ~10 sigma.
  EXPECT_GT(s.size(), 1440u);
  EXPECT_LT(s.size(), 2160u);
  for (const auto& c : s.calls) {
    ASSERT_GE(c.release, 0.0);
    ASSERT_LT(c.release, 60.0);
  }
}

TEST_F(ScenarioTest, WeightedMixSkewsTheFunctionHistogram) {
  // All weight on function 0 except a sliver on function 1.
  const auto s = make(
      "poisson?rate=30&mix=weighted&weights=10,1,0,0,0,0,0,0,0,0,0", 11);
  std::map<FunctionId, int> counts;
  for (const auto& c : s.calls) ++counts[c.function];
  EXPECT_EQ(counts.count(2), 0u) << "zero-weight functions never run";
  EXPECT_GT(counts[0], counts[1] * 4);
}

TEST_F(ScenarioTest, BurstyHasBurstierInterarrivalsThanPoisson) {
  // Same mean-ish volume; the on-off process should concentrate arrivals.
  const auto bursty =
      make("bursty?rate-on=120&rate-off=2&mean-on=4&mean-off=8", 12);
  ASSERT_GT(bursty.size(), 50u);
  // Count arrivals per 1 s bin; a bursty trace has a much higher max/mean
  // bin ratio than a flat one.
  std::vector<int> bins(60, 0);
  for (const auto& c : bursty.calls) {
    ++bins[static_cast<std::size_t>(c.release)];
  }
  int max_bin = 0;
  for (int b : bins) max_bin = std::max(max_bin, b);
  const double mean_bin = static_cast<double>(bursty.size()) / 60.0;
  EXPECT_GT(max_bin, 2.5 * mean_bin);
}

TEST_F(ScenarioTest, DiurnalPeakQuarterOutweighsTroughQuarter) {
  // lambda(t) = rate * (1 + a sin(2 pi t / 60)): peak in [0,15), trough in
  // [30,45).
  const auto s = make("diurnal?rate=40&amplitude=0.9", 13);
  int peak = 0, trough = 0;
  for (const auto& c : s.calls) {
    if (c.release < 15.0) ++peak;
    if (c.release >= 30.0 && c.release < 45.0) ++trough;
  }
  EXPECT_GT(peak, 2 * trough);
}

TEST_F(ScenarioTest, GeneratorDeathOnNonDivisibleIntensity) {
  // 1.1 * 3 * 33 = 108.9 -> 109, not divisible by 11 functions.
  EXPECT_DEATH((void)make("uniform?intensity=33", 10, /*cores=*/3),
               "evenly");
}

TEST_F(ScenarioTest, FairnessDeathWhenRareCallsExceedBudget) {
  // 1.1 * 10 * 30 = 330 requests; 500 rare calls cannot fit. The seed
  // generator's underflow risk is now a loud, named failure.
  EXPECT_DEATH((void)make("fairness?intensity=30&rare-calls=500", 1),
               "rare-calls=500 exceeds the burst's 330 requests");
}

// Property over seeds: uniform burst release times fill the window evenly
// (first quarter holds roughly a quarter of calls).
class BurstUniformity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BurstUniformity, QuartersBalanced) {
  const auto cat = sebs_catalog();
  ScenarioContext ctx;
  ctx.catalog = &cat;
  ctx.cores = 20;
  sim::Rng rng(GetParam());
  const auto s = make_scenario("uniform?intensity=120", ctx, rng);
  int first_quarter = 0;
  for (const auto& c : s.calls) {
    if (c.release < 15.0) ++first_quarter;
  }
  const double frac = static_cast<double>(first_quarter) /
                      static_cast<double>(s.size());
  EXPECT_NEAR(frac, 0.25, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BurstUniformity,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u));

}  // namespace
}  // namespace whisk::workload
