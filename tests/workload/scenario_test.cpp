#include "workload/scenario.h"

#include <gtest/gtest.h>

#include <map>

namespace whisk::workload {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  FunctionCatalog cat_ = sebs_catalog();
  ScenarioGenerator gen_{cat_};
};

TEST_F(ScenarioTest, UniformBurstRequestCountMatchesFormula) {
  sim::Rng rng(1);
  // 1.1 * c * v (paper Sec. V-B).
  const auto s = gen_.uniform_burst(10, 30, rng);
  EXPECT_EQ(s.size(), 330u);
  sim::Rng rng2(1);
  EXPECT_EQ(gen_.uniform_burst(20, 120, rng2).size(), 2640u);
}

TEST_F(ScenarioTest, UniformBurstEqualCallsPerFunction) {
  sim::Rng rng(2);
  const auto s = gen_.uniform_burst(10, 60, rng);
  std::map<FunctionId, int> counts;
  for (const auto& c : s.calls) ++counts[c.function];
  EXPECT_EQ(counts.size(), 11u);
  for (const auto& [fn, n] : counts) EXPECT_EQ(n, 60);
}

TEST_F(ScenarioTest, ReleasesInsideWindowAndSorted) {
  sim::Rng rng(3);
  const auto s = gen_.uniform_burst(10, 30, rng);
  for (std::size_t i = 0; i < s.calls.size(); ++i) {
    ASSERT_GE(s.calls[i].release, 0.0);
    ASSERT_LT(s.calls[i].release, 60.0);
    if (i > 0) ASSERT_GE(s.calls[i].release, s.calls[i - 1].release);
  }
}

TEST_F(ScenarioTest, IdsAreSequentialAfterSorting) {
  sim::Rng rng(4);
  const auto s = gen_.uniform_burst(5, 30, rng);
  for (std::size_t i = 0; i < s.calls.size(); ++i) {
    EXPECT_EQ(s.calls[i].id, static_cast<CallId>(i));
  }
}

TEST_F(ScenarioTest, SameSeedSameScenario) {
  sim::Rng a(9), b(9);
  const auto s1 = gen_.uniform_burst(10, 40, a);
  const auto s2 = gen_.uniform_burst(10, 40, b);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.calls.size(); ++i) {
    EXPECT_EQ(s1.calls[i].function, s2.calls[i].function);
    EXPECT_EQ(s1.calls[i].release, s2.calls[i].release);
  }
}

TEST_F(ScenarioTest, DifferentSeedsDifferentOrder) {
  sim::Rng a(1), b(2);
  const auto s1 = gen_.uniform_burst(10, 40, a);
  const auto s2 = gen_.uniform_burst(10, 40, b);
  bool differs = false;
  for (std::size_t i = 0; i < s1.calls.size(); ++i) {
    if (s1.calls[i].function != s2.calls[i].function ||
        s1.calls[i].release != s2.calls[i].release) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST_F(ScenarioTest, CustomWindowRespected) {
  sim::Rng rng(5);
  const auto s = gen_.uniform_burst(10, 30, rng, 10.0);
  EXPECT_EQ(s.window, 10.0);
  for (const auto& c : s.calls) ASSERT_LT(c.release, 10.0);
}

TEST_F(ScenarioTest, FixedTotalBurstExactCount) {
  sim::Rng rng(6);
  const auto s = gen_.fixed_total_burst(2376, rng);
  EXPECT_EQ(s.size(), 2376u);
}

TEST_F(ScenarioTest, FixedTotalNearEqualPerFunction) {
  sim::Rng rng(7);
  const auto s = gen_.fixed_total_burst(1320, rng);
  std::map<FunctionId, int> counts;
  for (const auto& c : s.calls) ++counts[c.function];
  // 1320 = 120 * 11 exactly.
  for (const auto& [fn, n] : counts) EXPECT_EQ(n, 120);
}

TEST_F(ScenarioTest, FairnessBurstHasExactRareCalls) {
  sim::Rng rng(8);
  const auto dna = *cat_.find("dna-visualisation");
  const auto s = gen_.fairness_burst(10, 90, dna, 10, rng);
  EXPECT_EQ(s.size(), 990u);  // 1.1 * 10 * 90
  int rare = 0;
  for (const auto& c : s.calls) {
    if (c.function == dna) ++rare;
  }
  EXPECT_EQ(rare, 10);
}

TEST_F(ScenarioTest, FairnessOtherFunctionsRoughlyUniform) {
  sim::Rng rng(9);
  const auto dna = *cat_.find("dna-visualisation");
  const auto s = gen_.fairness_burst(10, 90, dna, 10, rng);
  std::map<FunctionId, int> counts;
  for (const auto& c : s.calls) {
    if (c.function != dna) ++counts[c.function];
  }
  EXPECT_EQ(counts.size(), 10u);
  // 980 calls over 10 functions: expect each within a loose band of 98.
  for (const auto& [fn, n] : counts) {
    EXPECT_GT(n, 60) << fn;
    EXPECT_LT(n, 140) << fn;
  }
}

TEST_F(ScenarioTest, GeneratorDeathOnNonDivisibleIntensity) {
  sim::Rng rng(10);
  // 1.1 * 10 * 31 = 341, not divisible by 11 functions evenly... actually
  // 341 = 31 * 11, divisible. Use cores=3, v=33: 1.1*3*33 = 108.9 -> 109,
  // not divisible by 11.
  EXPECT_DEATH((void)gen_.uniform_burst(3, 33, rng), "evenly");
}

// Property over seeds: uniform burst release times fill the window evenly
// (first quarter holds roughly a quarter of calls).
class BurstUniformity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BurstUniformity, QuartersBalanced) {
  const auto cat = sebs_catalog();
  ScenarioGenerator gen(cat);
  sim::Rng rng(GetParam());
  const auto s = gen.uniform_burst(20, 120, rng);
  int first_quarter = 0;
  for (const auto& c : s.calls) {
    if (c.release < 15.0) ++first_quarter;
  }
  const double frac = static_cast<double>(first_quarter) /
                      static_cast<double>(s.size());
  EXPECT_NEAR(frac, 0.25, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BurstUniformity,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u));

}  // namespace
}  // namespace whisk::workload
