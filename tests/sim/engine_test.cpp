#include "sim/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace whisk::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0.0);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 3.0);
}

TEST(Engine, SameTimestampRunsInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double fired_at = -1.0;
  e.schedule_at(2.0, [&] {
    e.schedule_in(3.0, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.now(), 0.0) << "cancelled events do not advance time";
}

TEST(Engine, CancelTwiceReturnsFalse) {
  Engine e;
  const EventId id = e.schedule_at(1.0, [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelUnknownIdReturnsFalse) {
  Engine e;
  EXPECT_FALSE(e.cancel(12345));
}

TEST(Engine, CancelAfterExecutionReturnsFalse) {
  Engine e;
  const EventId id = e.schedule_at(1.0, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, RunUntilStopsBeforeLaterEvents) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(10.0, [&] { ++fired; });
  e.run(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 5.0) << "run(until) advances the clock to the horizon";
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilWithEmptyQueueAdvancesClock) {
  Engine e;
  e.run(7.5);
  EXPECT_EQ(e.now(), 7.5);
}

TEST(Engine, EventsScheduledDuringRunExecute) {
  Engine e;
  std::vector<double> times;
  e.schedule_at(1.0, [&] {
    times.push_back(e.now());
    e.schedule_in(1.0, [&] { times.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Engine, ZeroDelayEventRunsAtSameTime) {
  Engine e;
  double t = -1.0;
  e.schedule_at(4.0, [&] { e.schedule_in(0.0, [&] { t = e.now(); }); });
  e.run();
  EXPECT_DOUBLE_EQ(t, 4.0);
}

TEST(Engine, StepExecutesOneEvent) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, PendingAndExecutedCounts) {
  Engine e;
  e.schedule_at(1.0, [] {});
  const EventId id = e.schedule_at(2.0, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(id);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_EQ(e.executed(), 1u);
}

TEST(Engine, MoveOnlyCaptureIsSchedulable) {
  // std::function rejected move-only captures; EventFn must not.
  Engine e;
  auto payload = std::make_unique<int>(7);
  int seen = 0;
  e.schedule_at(1.0, [&seen, p = std::move(payload)] { seen = *p; });
  e.run();
  EXPECT_EQ(seen, 7);
}

TEST(Engine, StaleCancelAfterSlotReuseIsNoOp) {
  // Generation counters: an id whose slot has been recycled by a newer
  // event must not cancel that newer event.
  Engine e;
  bool first = false;
  bool second = false;
  const EventId a = e.schedule_at(1.0, [&] { first = true; });
  EXPECT_TRUE(e.cancel(a));
  // The freed slot is reused (LIFO free list) by the next schedule.
  const EventId b = e.schedule_at(2.0, [&] { second = true; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(e.cancel(a)) << "stale id must not hit the reused slot";
  e.run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST(Engine, StaleCancelAfterExecutionAndReuseIsNoOp) {
  Engine e;
  const EventId a = e.schedule_at(1.0, [] {});
  e.run();
  int fired = 0;
  e.schedule_at(2.0, [&] { ++fired; });
  EXPECT_FALSE(e.cancel(a));
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, RescheduleMovesEventAndKeepsId) {
  Engine e;
  std::vector<int> order;
  const EventId a = e.schedule_at(5.0, [&] { order.push_back(1); });
  e.schedule_at(3.0, [&] { order.push_back(2); });
  EXPECT_TRUE(e.reschedule_at(a, 1.0));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, RescheduleBehavesLikeFreshScheduleAmongEqualTimes) {
  // A rescheduled event must run after events already sitting at the new
  // timestamp, exactly as cancel + schedule would order it.
  Engine e;
  std::vector<int> order;
  const EventId a = e.schedule_at(0.5, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_TRUE(e.reschedule_at(a, 2.0));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Engine, RescheduleStaleIdReturnsFalse) {
  Engine e;
  const EventId a = e.schedule_at(1.0, [] {});
  e.run();
  EXPECT_FALSE(e.reschedule_at(a, 2.0));
  const EventId b = e.schedule_at(2.0, [] {});
  EXPECT_TRUE(e.cancel(b));
  EXPECT_FALSE(e.reschedule_in(b, 1.0));
}

TEST(Engine, RescheduledEventCanStillBeCancelled) {
  Engine e;
  bool fired = false;
  const EventId a = e.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.reschedule_at(a, 3.0));
  EXPECT_TRUE(e.cancel(a));
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, CancelOwnEventDuringCallbackIsNoOp) {
  Engine e;
  EventId self = kInvalidEvent;
  bool cancel_result = true;
  self = e.schedule_at(1.0, [&] { cancel_result = e.cancel(self); });
  e.run();
  EXPECT_FALSE(cancel_result);
}

TEST(Engine, CancelRunStress100k) {
  // 100k interleaved schedule/cancel ops with deterministic pseudo-random
  // times; every live event must execute exactly once, in nondecreasing
  // time order, and every cancelled event must not execute.
  Engine e;
  unsigned state = 12345u;
  auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return state;
  };
  std::vector<EventId> pending;
  std::size_t scheduled = 0;
  std::size_t cancelled = 0;
  std::size_t executed = 0;
  double last_time = -1.0;
  for (int i = 0; i < 100000; ++i) {
    const unsigned op = next() % 4;
    if (op != 0 || pending.empty()) {
      const double t = static_cast<double>(next() % 100000) / 100.0;
      pending.push_back(e.schedule_at(t, [&executed, &last_time, &e] {
        ++executed;
        EXPECT_GE(e.now(), last_time);
        last_time = e.now();
      }));
      ++scheduled;
    } else {
      const std::size_t pick = next() % pending.size();
      if (e.cancel(pending[pick])) ++cancelled;
      EXPECT_FALSE(e.cancel(pending[pick])) << "double cancel must fail";
      pending[pick] = pending.back();
      pending.pop_back();
    }
  }
  EXPECT_EQ(e.pending(), scheduled - cancelled);
  e.run();
  EXPECT_EQ(executed, scheduled - cancelled);
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_TRUE(e.empty());
}

TEST(EngineDeath, SchedulingInThePastAborts) {
  Engine e;
  e.schedule_at(5.0, [] {});
  e.run();
  EXPECT_DEATH(e.schedule_at(1.0, [] {}), "past");
}

TEST(EngineDeath, NegativeDelayAborts) {
  Engine e;
  EXPECT_DEATH(e.schedule_in(-1.0, [] {}), "negative delay");
}

// Property: N events at pseudo-random times always execute in nondecreasing
// time order, regardless of insertion order.
class EngineOrdering : public ::testing::TestWithParam<int> {};

TEST_P(EngineOrdering, NondecreasingExecution) {
  Engine e;
  std::vector<double> seen;
  unsigned state = static_cast<unsigned>(GetParam()) * 747796405u + 1u;
  for (int i = 0; i < 200; ++i) {
    state = state * 1664525u + 1013904223u;
    const double t = static_cast<double>(state % 1000) / 10.0;
    e.schedule_at(t, [&seen, &e] { seen.push_back(e.now()); });
  }
  e.run();
  ASSERT_EQ(seen.size(), 200u);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    ASSERT_LE(seen[i - 1], seen[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineOrdering, ::testing::Range(0, 6));

}  // namespace
}  // namespace whisk::sim
