#include "sim/event_fn.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

namespace whisk::sim {
namespace {

TEST(EventFn, DefaultConstructedIsEmpty) {
  EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EventFn null_fn(nullptr);
  EXPECT_FALSE(static_cast<bool>(null_fn));
}

TEST(EventFn, InvokesSmallCallable) {
  int calls = 0;
  EventFn fn([&calls] { ++calls; });
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(EventFn, InlineCapacityIsAtLeast48Bytes) {
  static_assert(EventFn::kInlineSize >= 48,
                "engine hot-path lambdas must fit inline");
  struct FortyEight {
    void* self;
    double a, b, c, d, e;
    void operator()() const {}
  };
  static_assert(sizeof(FortyEight) == 48);
  static_assert(EventFn::fits_inline<FortyEight>,
                "48-byte callables must not allocate");
}

TEST(EventFn, LargeCallableStillWorks) {
  // Callables beyond the inline buffer take the heap path transparently.
  struct Big {
    double payload[16];
    int* out;
    void operator()() const { *out += static_cast<int>(payload[0]); }
  };
  static_assert(!EventFn::fits_inline<Big>);
  int sum = 0;
  Big big{};
  big.payload[0] = 5.0;
  big.out = &sum;
  EventFn fn(big);
  fn();
  EXPECT_EQ(sum, 5);
}

TEST(EventFn, MoveTransfersCallable) {
  int calls = 0;
  EventFn a([&calls] { ++calls; });
  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);

  EventFn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  c();
  EXPECT_EQ(calls, 2);
}

TEST(EventFn, AcceptsMoveOnlyCapture) {
  auto p = std::make_unique<int>(41);
  int seen = 0;
  EventFn fn([&seen, p = std::move(p)] { seen = *p + 1; });
  fn();
  EXPECT_EQ(seen, 42);
}

struct InstanceCounter {
  static int live;
  InstanceCounter() { ++live; }
  InstanceCounter(const InstanceCounter&) { ++live; }
  InstanceCounter(InstanceCounter&&) noexcept { ++live; }
  ~InstanceCounter() { --live; }
  void operator()() const {}
};
int InstanceCounter::live = 0;

TEST(EventFn, DestroysCallableExactlyOnce) {
  InstanceCounter::live = 0;
  {
    EventFn fn = InstanceCounter{};
    EXPECT_EQ(InstanceCounter::live, 1);
    EventFn other = std::move(fn);
    EXPECT_EQ(InstanceCounter::live, 1);
  }
  EXPECT_EQ(InstanceCounter::live, 0);
}

TEST(EventFn, AssignmentDestroysPrevious) {
  InstanceCounter::live = 0;
  EventFn fn = InstanceCounter{};
  fn = [] {};
  EXPECT_EQ(InstanceCounter::live, 0);
  fn = nullptr;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(EventFn, ConsumeInvokesAndDestroys) {
  InstanceCounter::live = 0;
  int calls = 0;
  struct Counted : InstanceCounter {
    int* calls;
    explicit Counted(int* c) : calls(c) {}
    void operator()() const { ++*calls; }
  };
  EventFn fn = Counted(&calls);
  EXPECT_EQ(InstanceCounter::live, 1);
  fn.consume();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(InstanceCounter::live, 0);
  EXPECT_FALSE(static_cast<bool>(fn));
}

}  // namespace
}  // namespace whisk::sim
