#include "sim/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace whisk::sim {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent(7);
  Rng child1 = parent.fork(1);
  parent.next_u64();  // consuming the parent must not change future forks
  Rng child2 = Rng(7).fork(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child1.next_u64(), child2.next_u64());
  }
}

TEST(Rng, ForksWithDifferentTagsDiffer) {
  Rng parent(7);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_GT(rng.exponential(0.1), 0.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(14);
  const int n = 200000;
  double sum = 0.0, ss = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    ss += x * x;
  }
  const double mean = sum / n;
  const double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(15);
  const int n = 100001;
  std::vector<double> xs;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(rng.lognormal(1.0, 0.5));
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[n / 2], std::exp(1.0), 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(16);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_GT(rng.lognormal(-2.0, 1.0), 0.0);
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> xs = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = xs;
  rng.shuffle(xs);
  std::sort(xs.begin(), xs.end());
  EXPECT_EQ(xs, sorted);
}

TEST(HashTag, StableAndDistinct) {
  EXPECT_EQ(hash_tag("node"), hash_tag("node"));
  EXPECT_NE(hash_tag("node"), hash_tag("scenario"));
  EXPECT_NE(hash_tag(""), hash_tag("a"));
}

// Property: chi-squared-style uniformity check over seeds.
class RngUniformBuckets : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformBuckets, RoughlyUniform) {
  Rng rng(GetParam());
  const int buckets = 10;
  const int n = 50000;
  std::vector<int> count(buckets, 0);
  for (int i = 0; i < n; ++i) {
    ++count[static_cast<std::size_t>(rng.uniform() * buckets)];
  }
  for (int c : count) {
    EXPECT_NEAR(c, n / buckets, n / buckets * 0.1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngUniformBuckets,
                         ::testing::Values(1u, 42u, 1234567u, 0u));

}  // namespace
}  // namespace whisk::sim
