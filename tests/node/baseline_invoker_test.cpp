#include "node/baseline_invoker.h"

#include <gtest/gtest.h>

#include <vector>

namespace whisk::node {
namespace {

class BaselineInvokerTest : public ::testing::Test {
 protected:
  BaselineInvokerTest() : catalog_(workload::sebs_catalog()) {}

  std::unique_ptr<BaselineInvoker> make(NodeParams params = {}) {
    return std::make_unique<BaselineInvoker>(
        engine_, catalog_, params, sim::Rng(42),
        [this](const metrics::CallRecord& rec) { delivered_.push_back(rec); });
  }

  void submit_at(Invoker& inv, sim::SimTime at, workload::FunctionId fn,
                 workload::CallId id) {
    engine_.schedule_at(at, [&inv, fn, id, at] {
      inv.submit(workload::CallRequest{id, fn, at});
    });
  }

  sim::Engine engine_;
  workload::FunctionCatalog catalog_;
  std::vector<metrics::CallRecord> delivered_;
};

TEST_F(BaselineInvokerTest, WarmupUnderProvisionsShortFunctions) {
  NodeParams p;
  p.cores = 10;
  auto inv = make(p);
  inv->warmup();
  const auto dna = *catalog_.find("dna-visualisation");
  const auto bfs = *catalog_.find("graph-bfs");
  // Long functions end warm-up with close to `cores` containers, short
  // ones with only one or two (Sec. VI / DESIGN.md): this asymmetry seeds
  // the baseline's cold starts.
  EXPECT_GE(inv->pool().idle_count_of(dna), 7u);
  EXPECT_LE(inv->pool().idle_count_of(bfs), 2u);
}

TEST_F(BaselineInvokerTest, WarmupKeepsPrewarmContainers) {
  NodeParams p;
  p.prewarm_target = 2;
  auto inv = make(p);
  inv->warmup();
  EXPECT_EQ(inv->pool().prewarm_count(), 2u);
}

TEST_F(BaselineInvokerTest, WarmCallUsesFreePoolContainer) {
  auto inv = make();
  inv->warmup();
  const auto dna = *catalog_.find("dna-visualisation");
  submit_at(*inv, 1.0, dna, 0);
  engine_.run();
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].start_kind, metrics::StartKind::kWarm);
}

TEST_F(BaselineInvokerTest, IdleCallIsFast) {
  auto inv = make();
  inv->warmup();
  const auto bfs = *catalog_.find("graph-bfs");
  submit_at(*inv, 1.0, bfs, 0);
  engine_.run();
  EXPECT_LT(delivered_.at(0).completion - delivered_.at(0).received, 0.05);
}

TEST_F(BaselineInvokerTest, CollisionTakesPrewarmThenColdStarts) {
  NodeParams p;
  p.cores = 10;
  p.prewarm_target = 1;
  auto inv = make(p);
  inv->warmup();
  const auto bfs = *catalog_.find("graph-bfs");
  // Three simultaneous calls of an under-provisioned short function: one
  // warm container, one prewarm, then a cold creation.
  submit_at(*inv, 1.0, bfs, 0);
  submit_at(*inv, 1.0, bfs, 1);
  submit_at(*inv, 1.0, bfs, 2);
  engine_.run();
  ASSERT_EQ(delivered_.size(), 3u);
  EXPECT_EQ(inv->stats().warm_starts, 1u);
  EXPECT_EQ(inv->stats().prewarm_starts, 1u);
  EXPECT_EQ(inv->stats().cold_starts, 1u);
}

TEST_F(BaselineInvokerTest, PrewarmPoolReplenishes) {
  NodeParams p;
  p.prewarm_target = 2;
  auto inv = make(p);
  inv->warmup();
  const auto bfs = *catalog_.find("graph-bfs");
  submit_at(*inv, 1.0, bfs, 0);
  submit_at(*inv, 1.0, bfs, 1);  // collision -> consumes a prewarm
  engine_.run();
  // After the dust settles the prewarm pool is back at its target.
  EXPECT_EQ(inv->pool().prewarm_count(), 2u);
}

TEST_F(BaselineInvokerTest, NoBusyLimitBeyondMemory) {
  // Unlike our invoker, the baseline happily runs more containers than
  // cores (that is exactly what the paper removes).
  NodeParams p;
  p.cores = 2;
  auto inv = make(p);
  inv->warmup();
  const auto sleep = *catalog_.find("sleep");
  for (int i = 0; i < 8; ++i) submit_at(*inv, 0.01, sleep, i);
  bool saw_oversubscription = false;
  for (double t = 0.2; t < 2.0; t += 0.1) {
    engine_.schedule_at(t, [&] {
      if (inv->executing() > 2) saw_oversubscription = true;
    });
  }
  engine_.run();
  EXPECT_TRUE(saw_oversubscription);
  EXPECT_EQ(delivered_.size(), 8u);
}

TEST_F(BaselineInvokerTest, MemoryExhaustionBlocksQueueHead) {
  NodeParams p;
  p.cores = 4;
  p.memory_limit_mb = 2.0 * 160.0;
  p.prewarm_target = 0;
  auto inv = make(p);
  inv->warmup();  // two containers total
  // Two long calls occupy both containers; a third call must wait queued
  // until one releases (nothing evictable, no memory).
  const auto dna = *catalog_.find("dna-visualisation");
  submit_at(*inv, 0.0, dna, 0);
  submit_at(*inv, 0.0, dna, 1);
  submit_at(*inv, 0.1, dna, 2);
  engine_.schedule_at(1.0, [&] { EXPECT_EQ(inv->queue_length(), 1u); });
  engine_.run();
  EXPECT_EQ(delivered_.size(), 3u);
}

TEST_F(BaselineInvokerTest, EvictionThrashUnderMemoryPressure) {
  NodeParams p;
  p.cores = 4;
  p.memory_limit_mb = 3.0 * 160.0;
  p.prewarm_target = 0;
  auto inv = make(p);
  inv->warmup();
  // Round-robin over many functions with only 3 container slots: the
  // greedy baseline keeps evicting other functions' idle containers.
  for (int i = 0; i < 22; ++i) {
    submit_at(*inv, 0.5 * i, static_cast<workload::FunctionId>(i % 11), i);
  }
  engine_.run();
  EXPECT_EQ(delivered_.size(), 22u);
  EXPECT_GT(inv->stats().evictions, 5u);
  EXPECT_GT(inv->stats().cold_starts, 5u);
}

TEST_F(BaselineInvokerTest, ProportionalShareSlowsConcurrentCpuJobs) {
  NodeParams p;
  p.cores = 1;
  p.context_switch_beta = 0.0;
  auto inv = make(p);
  inv->warmup();
  const auto pagerank = *catalog_.find("graph-pagerank");
  const auto dna = *catalog_.find("dna-visualisation");
  // A long CPU job saturates the single core; a short CPU job dispatched
  // concurrently (needing no container wait) must take noticeably longer
  // than its idle-system exec time.
  submit_at(*inv, 0.0, dna, 0);
  submit_at(*inv, 0.5, pagerank, 1);
  engine_.run();
  ASSERT_EQ(delivered_.size(), 2u);
  const auto& short_rec =
      delivered_[0].function == pagerank ? delivered_[0] : delivered_[1];
  EXPECT_GT(short_rec.exec_end - short_rec.exec_start,
            1.5 * short_rec.service)
      << "sharing one core with dna-visualisation must stretch execution";
}

TEST_F(BaselineInvokerTest, StatsConsistent) {
  auto inv = make();
  inv->warmup();
  for (int i = 0; i < 22; ++i) {
    submit_at(*inv, 0.2 * i, static_cast<workload::FunctionId>(i % 11), i);
  }
  engine_.run();
  const auto& s = inv->stats();
  EXPECT_EQ(s.calls_received, 22u);
  EXPECT_EQ(s.calls_completed, 22u);
  EXPECT_EQ(s.warm_starts + s.prewarm_starts + s.cold_starts, 22u);
}

TEST_F(BaselineInvokerTest, DaemonStrainGrowsWithContainers) {
  NodeParams p;
  p.cores = 10;
  p.strain_per_container = 0.01;
  auto inv = make(p);
  inv->warmup();
  // The load factor honours the configured strain: with N live containers
  // ops stretch by 1 + 0.01 * N. We can observe it indirectly: ops on a
  // node with many containers take longer than the base op time.
  const std::size_t live = inv->pool().total_containers();
  EXPECT_GT(live, 10u);
  submit_at(*inv, 0.0, *catalog_.find("graph-bfs"), 0);
  engine_.run();
  ASSERT_EQ(delivered_.size(), 1u);
  // Even idle dispatch takes a strictly positive daemon op.
  EXPECT_GT(delivered_[0].exec_start - delivered_[0].received,
            0.5 * p.base_dispatch_idle_s);
}

}  // namespace
}  // namespace whisk::node
