#include "node/our_invoker.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/policy_registry.h"

namespace whisk::node {
namespace {

// Drives an OurInvoker directly (no cluster/network layers), capturing the
// delivered records.
class OurInvokerTest : public ::testing::Test {
 protected:
  OurInvokerTest() : catalog_(workload::sebs_catalog()) {}

  std::unique_ptr<OurInvoker> make(std::string_view policy,
                                   NodeParams params = {}) {
    auto inv = std::make_unique<OurInvoker>(
        engine_, catalog_, params, sim::Rng(42),
        [this](const metrics::CallRecord& rec) { delivered_.push_back(rec); },
        policy);
    return inv;
  }

  void submit_at(Invoker& inv, sim::SimTime at, workload::FunctionId fn,
                 workload::CallId id) {
    engine_.schedule_at(at, [&inv, fn, id, at] {
      inv.submit(workload::CallRequest{id, fn, at});
    });
  }

  sim::Engine engine_;
  workload::FunctionCatalog catalog_;
  std::vector<metrics::CallRecord> delivered_;
};

TEST_F(OurInvokerTest, WarmupFillsCoresContainersPerFunction) {
  NodeParams p;
  p.cores = 10;
  auto inv = make("fifo", p);
  inv->warmup();
  EXPECT_EQ(inv->pool().total_containers(), 110u)
      << "11 functions x 10 cores fit into 32 GiB";
  for (const auto& spec : catalog_.specs()) {
    EXPECT_EQ(inv->pool().idle_count_of(spec.id), 10u) << spec.name;
  }
}

TEST_F(OurInvokerTest, WarmupRespectsMemoryLimit) {
  NodeParams p;
  p.cores = 10;
  p.memory_limit_mb = 8.0 * 160.0;  // room for only 8 containers
  auto inv = make("fifo", p);
  inv->warmup();
  EXPECT_EQ(inv->pool().total_containers(), 8u);
}

TEST_F(OurInvokerTest, WarmupSeedsHistory) {
  NodeParams p;
  p.cores = 10;
  auto inv = make("sept", p);
  inv->warmup();
  for (const auto& spec : catalog_.specs()) {
    EXPECT_EQ(inv->history().samples(spec.id), 10u) << spec.name;
    EXPECT_GT(inv->history().expected_runtime(spec.id), 0.0) << spec.name;
  }
}

TEST_F(OurInvokerTest, SingleWarmCallCompletes) {
  auto inv = make("fifo");
  inv->warmup();
  const auto bfs = *catalog_.find("graph-bfs");
  submit_at(*inv, 1.0, bfs, 0);
  engine_.run();
  ASSERT_EQ(delivered_.size(), 1u);
  const auto& rec = delivered_[0];
  EXPECT_EQ(rec.start_kind, metrics::StartKind::kWarm);
  EXPECT_GE(rec.exec_start, rec.received);
  EXPECT_GE(rec.exec_end, rec.exec_start);
  EXPECT_GE(rec.completion, rec.exec_end);
  EXPECT_EQ(inv->stats().warm_starts, 1u);
  EXPECT_EQ(inv->stats().cold_starts, 0u);
}

TEST_F(OurInvokerTest, IdleCallIsFast) {
  auto inv = make("fifo");
  inv->warmup();
  const auto bfs = *catalog_.find("graph-bfs");
  submit_at(*inv, 1.0, bfs, 0);
  engine_.run();
  // On an idle node the management overhead is milliseconds (Table I).
  EXPECT_LT(delivered_.at(0).completion - delivered_.at(0).received, 0.05);
}

TEST_F(OurInvokerTest, BusyContainersNeverExceedCores) {
  NodeParams p;
  p.cores = 4;
  auto inv = make("fifo", p);
  inv->warmup();
  const auto sleep = *catalog_.find("sleep");
  for (int i = 0; i < 20; ++i) {
    submit_at(*inv, 0.01 * i, sleep, i);
  }
  // Check the cap while the burst is in flight.
  for (double t = 0.1; t < 10.0; t += 0.1) {
    engine_.schedule_at(t, [&] {
      EXPECT_LE(inv->executing(), 4u);
    });
  }
  engine_.run();
  EXPECT_EQ(delivered_.size(), 20u);
}

TEST_F(OurInvokerTest, ColdStartWhenFunctionHasNoContainer) {
  NodeParams p;
  p.cores = 2;
  p.memory_limit_mb = 2.0 * 160.0;  // only 2 containers fit
  auto inv = make("fifo", p);
  inv->warmup();  // fills 2 containers (functions 0 and 1, round-robin)
  const auto bfs = *catalog_.find("graph-bfs");
  submit_at(*inv, 1.0, bfs, 0);
  engine_.run();
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].start_kind, metrics::StartKind::kCold);
  EXPECT_EQ(inv->stats().cold_starts, 1u);
  EXPECT_GE(inv->stats().evictions, 1u) << "an idle container made room";
}

TEST_F(OurInvokerTest, ColdStartIncludesInitDelay) {
  NodeParams p;
  p.cores = 2;
  p.memory_limit_mb = 2.0 * 160.0;
  auto inv = make("fifo", p);
  inv->warmup();
  const auto bfs = *catalog_.find("graph-bfs");
  submit_at(*inv, 1.0, bfs, 0);
  engine_.run();
  // Cold init is at least cold_init_min_s.
  EXPECT_GE(delivered_.at(0).exec_start - delivered_.at(0).received,
            p.cold_init_min_s);
}

TEST_F(OurInvokerTest, SeptServesShortBeforeLongUnderBacklog) {
  NodeParams p;
  p.cores = 1;
  auto inv = make("sept", p);
  inv->warmup();
  const auto dna = *catalog_.find("dna-visualisation");
  const auto bfs = *catalog_.find("graph-bfs");
  // While one sleep occupies the single slot, a dna and a (later) bfs call
  // queue up; SEPT must pick the bfs first.
  submit_at(*inv, 0.0, *catalog_.find("sleep"), 0);
  submit_at(*inv, 0.1, dna, 1);
  submit_at(*inv, 0.2, bfs, 2);
  engine_.run();
  ASSERT_EQ(delivered_.size(), 3u);
  EXPECT_EQ(delivered_[1].function, bfs);
  EXPECT_EQ(delivered_[2].function, dna);
}

TEST_F(OurInvokerTest, FifoServesInArrivalOrder) {
  NodeParams p;
  p.cores = 1;
  auto inv = make("fifo", p);
  inv->warmup();
  submit_at(*inv, 0.0, *catalog_.find("sleep"), 0);
  submit_at(*inv, 0.1, *catalog_.find("dna-visualisation"), 1);
  submit_at(*inv, 0.2, *catalog_.find("graph-bfs"), 2);
  engine_.run();
  ASSERT_EQ(delivered_.size(), 3u);
  EXPECT_EQ(delivered_[0].id, 0);
  EXPECT_EQ(delivered_[1].id, 1);
  EXPECT_EQ(delivered_[2].id, 2);
}

TEST_F(OurInvokerTest, HistoryLearnsFromExecutions) {
  auto inv = make("sept");
  inv->warmup();
  const auto bfs = *catalog_.find("graph-bfs");
  const double before = inv->history().expected_runtime(bfs);
  for (int i = 0; i < 10; ++i) submit_at(*inv, 1.0 + i, bfs, i);
  engine_.run();
  // Ten fresh samples displace the warm-up seeds entirely.
  EXPECT_EQ(inv->history().samples(bfs), 10u);
  EXPECT_GT(inv->history().expected_runtime(bfs), 0.0);
  (void)before;
}

TEST_F(OurInvokerTest, ZeroColdStartsWithAmpleMemoryUnderBurst) {
  // The paper's Fig. 2b plateau: with 32 GiB nothing is evicted and the
  // measured burst performs no cold starts.
  NodeParams p;
  p.cores = 4;
  auto inv = make("fifo", p);
  inv->warmup();
  int id = 0;
  for (const auto& spec : catalog_.specs()) {
    for (int k = 0; k < 6; ++k) {
      submit_at(*inv, 0.5 * k + 0.01 * spec.id, spec.id, id++);
    }
  }
  engine_.run();
  EXPECT_EQ(delivered_.size(), 66u);
  EXPECT_EQ(inv->stats().cold_starts, 0u);
  EXPECT_EQ(inv->stats().evictions, 0u);
}

TEST_F(OurInvokerTest, StatsCountsAreConsistent) {
  auto inv = make("fc");
  inv->warmup();
  for (int i = 0; i < 15; ++i) {
    submit_at(*inv, 0.1 * i, static_cast<workload::FunctionId>(i % 11), i);
  }
  engine_.run();
  const auto& s = inv->stats();
  EXPECT_EQ(s.calls_received, 15u);
  EXPECT_EQ(s.calls_completed, 15u);
  EXPECT_EQ(s.warm_starts + s.prewarm_starts + s.cold_starts, 15u);
}

TEST_F(OurInvokerTest, RecordsCarryNodeIndex) {
  auto inv = make("fifo");
  inv->set_node_index(3);
  inv->warmup();
  submit_at(*inv, 0.0, 0, 0);
  engine_.run();
  EXPECT_EQ(delivered_.at(0).node, 3);
}

TEST_F(OurInvokerTest, ExtremeMemoryPressureStillCompletes) {
  // Memory for a single container: every call must wait for the previous
  // one to release, evict, and cold-start — but nothing may deadlock.
  NodeParams p;
  p.cores = 4;
  p.memory_limit_mb = 160.0;
  auto inv = make("fifo", p);
  inv->warmup();
  for (int i = 0; i < 8; ++i) {
    submit_at(*inv, 0.1 * i, static_cast<workload::FunctionId>(i % 11), i);
  }
  engine_.run();
  EXPECT_EQ(delivered_.size(), 8u);
}

// Parameterized over every *registered* policy name (so new registrations
// are covered automatically): each drains an identical mixed burst
// completely and keeps the busy-slot cap.
class EveryPolicy : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryPolicy, DrainsMixedBurst) {
  sim::Engine engine;
  const auto catalog = workload::sebs_catalog();
  std::vector<metrics::CallRecord> delivered;
  NodeParams p;
  p.cores = 3;
  OurInvoker inv(
      engine, catalog, p, sim::Rng(1),
      [&](const metrics::CallRecord& rec) { delivered.push_back(rec); },
      GetParam());
  inv.warmup();
  for (int i = 0; i < 33; ++i) {
    const auto fn = static_cast<workload::FunctionId>(i % 11);
    engine.schedule_at(0.2 * i, [&inv, fn, i] {
      inv.submit(workload::CallRequest{i, fn, 0.2 * i});
    });
  }
  engine.run();
  EXPECT_EQ(delivered.size(), 33u);
  EXPECT_EQ(inv.queue_length(), 0u);
  EXPECT_EQ(inv.executing(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, EveryPolicy,
    ::testing::ValuesIn(core::PolicyRegistry::instance().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace whisk::node
