#include "node/invoker_registry.h"

#include <gtest/gtest.h>

#include <vector>

#include "node/our_invoker.h"
#include "sim/engine.h"

namespace whisk::node {
namespace {

class InvokerRegistryTest : public ::testing::Test {
 protected:
  InvokerRegistryTest() : catalog_(workload::sebs_catalog()) {}

  InvokerArgs args(std::string policy = "fifo") {
    NodeParams p;
    p.cores = 2;
    return InvokerArgs{engine_, catalog_, p, sim::Rng(1),
                       [](const metrics::CallRecord&) {}, std::move(policy)};
  }

  sim::Engine engine_;
  workload::FunctionCatalog catalog_;
};

TEST_F(InvokerRegistryTest, EveryRegisteredNameConstructs) {
  for (const auto& name : InvokerRegistry::instance().names()) {
    auto inv = InvokerRegistry::instance().create(name, args());
    ASSERT_NE(inv, nullptr) << name;
    EXPECT_FALSE(inv->approach().empty()) << name;
  }
}

TEST_F(InvokerRegistryTest, BaselineAndOursAreRegistered) {
  EXPECT_TRUE(InvokerRegistry::instance().contains("baseline"));
  EXPECT_TRUE(InvokerRegistry::instance().contains("ours"));
}

TEST_F(InvokerRegistryTest, NamesMapToTheExpectedImplementations) {
  EXPECT_EQ(InvokerRegistry::instance().create("baseline", args())->approach(),
            "baseline");
  EXPECT_EQ(InvokerRegistry::instance().create("ours", args())->approach(),
            "our");
}

TEST_F(InvokerRegistryTest, OurAliasAndCaseResolve) {
  EXPECT_EQ(InvokerRegistry::instance().resolve("our"), "ours");
  EXPECT_EQ(InvokerRegistry::instance().resolve("OURS"), "ours");
  EXPECT_EQ(InvokerRegistry::instance().create("Our", args())->approach(),
            "our");
}

TEST_F(InvokerRegistryTest, PolicyNameReachesTheInvoker) {
  auto inv = InvokerRegistry::instance().create("ours", args("sjf-aging"));
  auto* ours = dynamic_cast<OurInvoker*>(inv.get());
  ASSERT_NE(ours, nullptr);
  EXPECT_EQ(ours->policy_name(), "sjf-aging");
}

TEST_F(InvokerRegistryTest, CreatedInvokerProcessesCalls) {
  auto inv = InvokerRegistry::instance().create("ours", args());
  inv->warmup();
  const auto bfs = *catalog_.find("graph-bfs");
  std::size_t before = inv->stats().calls_completed;
  engine_.schedule_at(0.0, [&] {
    inv->submit(workload::CallRequest{0, bfs, 0.0});
  });
  engine_.run();
  EXPECT_EQ(inv->stats().calls_completed, before + 1);
}

TEST(InvokerRegistryDeath, UnknownNameEchoesInputAndListsNames) {
  sim::Engine engine;
  const auto catalog = workload::sebs_catalog();
  EXPECT_DEATH(
      (void)InvokerRegistry::instance().create(
          "warp-drive",
          InvokerArgs{engine, catalog, NodeParams{}, sim::Rng(1),
                      [](const metrics::CallRecord&) {}, "fifo"}),
      "unknown invoker \"warp-drive\".*baseline.*ours");
}

TEST(InvokerRegistryDeath, DuplicateRegistrationIsRejected) {
  EXPECT_DEATH(InvokerRegistry::instance().register_factory(
                   "baseline",
                   [](const InvokerArgs&) -> std::unique_ptr<Invoker> {
                     return nullptr;
                   }),
               "invoker \"baseline\" is already registered");
}

}  // namespace
}  // namespace whisk::node
