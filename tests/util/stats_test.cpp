#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace whisk::util {
namespace {

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Stats, MeanSimple) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanSingleElement) {
  const std::vector<double> xs = {42.0};
  EXPECT_DOUBLE_EQ(mean(xs), 42.0);
}

TEST(Stats, StddevOfConstantIsZero) {
  const std::vector<double> xs = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, StddevKnownValue) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample stddev with n-1 denominator.
  EXPECT_NEAR(stddev(xs), 2.138089935299395, 1e-12);
}

TEST(Stats, StddevNeedsTwoSamples) {
  const std::vector<double> xs = {3.0};
  EXPECT_EQ(stddev(xs), 0.0);
}

TEST(Stats, PercentileEmptyIsZero) { EXPECT_EQ(percentile({}, 50.0), 0.0); }

TEST(Stats, PercentileSingle) {
  const std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 7.0);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> xs = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Stats, PercentileMatchesNumpyConvention) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  // numpy.percentile(..., 50) == 2.5 with linear interpolation.
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 3.25);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> xs = {9.0, 1.0, 5.0, 3.0, 7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
}

TEST(Stats, PercentileSortedAgreesWithUnsorted) {
  std::vector<double> xs = {4.0, 2.0, 8.0, 6.0};
  const double q = percentile(xs, 37.0);
  std::vector<double> sorted = {2.0, 4.0, 6.0, 8.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 37.0), q);
}

TEST(Stats, SummarizeOrdersQuantiles) {
  std::vector<double> xs;
  for (int i = 100; i >= 1; --i) xs.push_back(static_cast<double>(i));
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_LE(s.p25, s.p50);
  EXPECT_LE(s.p50, s.p75);
  EXPECT_LE(s.p75, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_NEAR(s.mean, 50.5, 1e-12);
}

TEST(Stats, SummarizeEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(StreamingStats, MatchesBatchMoments) {
  const std::vector<double> xs = {1.5, -2.0, 7.25, 0.0, 3.5, 3.5};
  StreamingStats acc;
  for (double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_NEAR(acc.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(acc.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), -2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 7.25);
}

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(StreamingStats, SingleSampleVarianceZero) {
  StreamingStats acc;
  acc.add(3.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
}

// Property sweep: percentile is monotone in q for arbitrary samples.
class PercentileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotone, MonotoneInRank) {
  // Deterministic pseudo-random sample derived from the parameter.
  std::vector<double> xs;
  unsigned state = static_cast<unsigned>(GetParam()) * 2654435761u + 1u;
  for (int i = 0; i < 50; ++i) {
    state = state * 1664525u + 1013904223u;
    xs.push_back(static_cast<double>(state % 10000) / 100.0);
  }
  double prev = percentile(xs, 0.0);
  for (double q = 5.0; q <= 100.0; q += 5.0) {
    const double cur = percentile(xs, q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Samples, PercentileMonotone,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace whisk::util
