#include "util/summed_ring_buffer.h"

#include <gtest/gtest.h>

#include <vector>

namespace whisk::util {
namespace {

TEST(SummedRingBuffer, StartsEmpty) {
  SummedRingBuffer b(4);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.capacity(), 4u);
  EXPECT_EQ(b.sum(), 0.0);
  EXPECT_EQ(b.mean(), 0.0);
}

TEST(SummedRingBuffer, SumAndMeanBeforeEviction) {
  SummedRingBuffer b(4);
  b.push(1.0);
  b.push(2.0);
  b.push(3.0);
  EXPECT_DOUBLE_EQ(b.sum(), 6.0);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SummedRingBuffer, EvictionSubtractsOldest) {
  SummedRingBuffer b(3);
  for (double v : {10.0, 1.0, 2.0, 3.0}) b.push(v);
  // Window is {1, 2, 3}: the 10 has been evicted from the sum.
  EXPECT_DOUBLE_EQ(b.sum(), 6.0);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SummedRingBuffer, ClearResets) {
  SummedRingBuffer b(3);
  b.push(5.0);
  b.push(7.0);
  b.clear();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.sum(), 0.0);
  b.push(4.0);
  EXPECT_DOUBLE_EQ(b.mean(), 4.0);
  EXPECT_DOUBLE_EQ(b.newest(), 4.0);
}

// The acceptance property: the O(1) running mean must match the naive
// recomputed mean of the trailing window under heavy eviction, across
// long pseudo-random sequences.
class SummedMeanMatchesNaive : public ::testing::TestWithParam<int> {};

TEST_P(SummedMeanMatchesNaive, UnderEviction) {
  const std::size_t capacity = 10;
  SummedRingBuffer b(capacity);
  std::vector<double> all;
  unsigned state = static_cast<unsigned>(GetParam()) * 2654435761u + 1u;
  for (int i = 0; i < 100000; ++i) {
    state = state * 1664525u + 1013904223u;
    // Values spanning several orders of magnitude to stress the running
    // sum's numerical stability.
    const double v =
        (0.001 + static_cast<double>(state % 100000) / 100.0) *
        ((state >> 16) % 3 == 0 ? 1e-3 : 1.0);
    b.push(v);
    all.push_back(v);

    if (i % 997 != 0) continue;  // checking every step is O(n^2)-slow
    const std::size_t n = std::min(all.size(), capacity);
    double naive = 0.0;
    for (std::size_t k = all.size() - n; k < all.size(); ++k) {
      naive += all[k];
    }
    naive /= static_cast<double>(n);
    ASSERT_NEAR(b.mean(), naive, 1e-12 * std::max(1.0, naive));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummedMeanMatchesNaive,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace whisk::util
